package apsmonitor_test

import (
	"context"
	"testing"
	"time"

	apsmonitor "repro"
)

func TestFacadePlatforms(t *testing.T) {
	for _, name := range []string{"glucosym", "t1ds2013"} {
		p, err := apsmonitor.PlatformByName(name)
		if err != nil {
			t.Fatalf("PlatformByName(%q): %v", name, err)
		}
		if p.NumPatients != 10 {
			t.Errorf("%s cohort size %d, want 10", name, p.NumPatients)
		}
	}
	if _, err := apsmonitor.PlatformByName("bogus"); err == nil {
		t.Error("unknown platform should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPlatform should panic on unknown name")
		}
	}()
	apsmonitor.MustPlatform("bogus")
}

func TestFacadeCampaignScaling(t *testing.T) {
	if n := len(apsmonitor.FullCampaign()); n != 882 {
		t.Errorf("full campaign %d scenarios, want 882", n)
	}
	if n := len(apsmonitor.QuickScenarios(100)); n != 9 {
		t.Errorf("quick campaign %d scenarios, want 9", n)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	attack := apsmonitor.Fault{
		Kind: apsmonitor.FaultMax, Target: "glucose", Value: 400,
		StartStep: 10, Duration: 60,
	}
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  apsmonitor.MustPlatform("glucosym"),
		Patients:  []int{0},
		Scenarios: []apsmonitor.Scenario{{Fault: attack, InitialBG: 140}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("%d traces", len(traces))
	}
	tr := traces[0]
	if !tr.Hazardous() {
		t.Fatal("max-glucose attack should cause a hazard on this patient")
	}
	if tr.DominantHazard() != apsmonitor.HazardH1 {
		t.Errorf("hazard %v, want H1", tr.DominantHazard())
	}

	mon, err := apsmonitor.NewCAWOTMonitor(apsmonitor.TableI())
	if err != nil {
		t.Fatal(err)
	}
	apsmonitor.AnnotateMonitor(mon, tr)
	d, h := tr.FirstAlarmStep(), tr.FirstHazardStep()
	if d < 0 {
		t.Fatal("monitor never alarmed on a detected attack scenario")
	}
	if d >= h {
		t.Errorf("alarm at %d not before hazard at %d", d, h)
	}

	c := apsmonitor.SampleLevelMetrics(tr, 0)
	if c.TP == 0 {
		t.Error("no true positives on an early-detected attack")
	}
	sim := apsmonitor.SimulationLevelMetrics(tr)
	if sim.TP == 0 {
		t.Error("simulation-level TP missing")
	}
	if rt := apsmonitor.ReactionTime(traces); rt.Count == 0 || rt.MeanMin <= 0 {
		t.Errorf("reaction stats %+v, want early detection", rt)
	}
}

func TestFacadeLearning(t *testing.T) {
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  apsmonitor.MustPlatform("glucosym"),
		Patients:  []int{0},
		Scenarios: apsmonitor.QuickScenarios(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	rules := apsmonitor.TableI()
	th, report, err := apsmonitor.LearnThresholds(rules, traces, apsmonitor.LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 12 {
		t.Fatalf("%d thresholds", len(th))
	}
	if report.TotalExamples == 0 {
		t.Error("no examples harvested from campaign")
	}
	if _, err := apsmonitor.NewCAWTMonitor(rules, th); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSTL(t *testing.T) {
	f, err := apsmonitor.ParseSTL("G[0,60] (BG > 70 and BG < 180)")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := apsmonitor.NewSTLTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Set("BG", []float64{120, 130, 140, 150, 160}); err != nil {
		t.Fatal(err)
	}
	sat, err := f.Sat(tr, 0)
	if err != nil || !sat {
		t.Errorf("in-range trace should satisfy: %v %v", sat, err)
	}
}

// TestFacadeContinuousShardedSinks drives the continuous-serving shape
// through the public API: a serving fleet with sharded sink delivery
// paced by SinkEpoch must run (the finite-run restriction is lifted),
// persist telemetry while live, and shut down cleanly on deadline.
func TestFacadeContinuousShardedSinks(t *testing.T) {
	hist, err := apsmonitor.NewFleetHistSink(-5, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := apsmonitor.NewFleetRingSink(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := apsmonitor.RunFleet(ctx, apsmonitor.FleetConfig{
		Platform:     apsmonitor.FleetPlatform(apsmonitor.MustPlatform("glucosym")),
		Patients:     []int{0},
		Scenarios:    apsmonitor.Programs(apsmonitor.QuickScenarios(300)),
		Steps:        5,
		Continuous:   true,
		Telemetry:    &apsmonitor.FleetTelemetryConfig{},
		Sinks:        []apsmonitor.FleetSink{hist, ring},
		ShardedSinks: true,
		SinkEpoch:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed <= int64(res.Sessions) {
		t.Fatalf("no replica restarts (completed %d of %d slots)", res.Completed, res.Sessions)
	}
	if ring.Total() == 0 {
		t.Fatal("sharded continuous delivery reached no sink")
	}
	if len(hist.Patients()) == 0 {
		t.Fatal("no margins aggregated from the serving fleet")
	}
}

func TestFacadeRiskAndLabeling(t *testing.T) {
	if apsmonitor.RiskIndex(112.5) > 0.01 {
		t.Error("risk at 112.5 should be ~0")
	}
	if apsmonitor.RiskIndex(40) < 20 {
		t.Error("severe hypo should carry high risk")
	}
	tr := &apsmonitor.Trace{CycleMin: 5}
	for i := 0; i < 20; i++ {
		tr.Samples = append(tr.Samples, apsmonitor.Sample{Step: i, BG: 45})
	}
	apsmonitor.LabelHazards(tr)
	if !tr.Hazardous() {
		t.Error("sustained severe hypo should label hazardous")
	}
}
