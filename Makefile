GO ?= go

# Every library package (everything except commands and examples) holds
# the documentation contract (package comment + doc comments on all
# exported APIs). The list is derived, so new packages cannot escape
# the gate; filtering happens on module import paths (anchored), so a
# checkout path containing /cmd/ or /examples/ cannot empty the list.
DOC_PKGS = $(shell $(GO) list -f '{{.ImportPath}} {{.Dir}}' ./... \
	| grep -v '^repro/cmd/' | grep -v '^repro/examples/' \
	| awk '{print $$2}')

.PHONY: build test race bench bench-smoke smoke-fleetd smoke-snapshot smoke-falsify fuzz-snapshot fuzz-scenario short vet fmt lint docs ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 verify — build plus the full test suite
test: build
	$(GO) test ./...

## short: the fast subset (skips seconds-long suite training)
short:
	$(GO) test -short ./...

## race: full suite under the race detector (the fleet engine's
## concurrency tests run ≥1000 sessions here)
race:
	$(GO) test -race ./...

## bench: every benchmark with allocation stats; doubles as the paper's
## results summary (see bench_test.go) and the fleet throughput report
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

## bench-smoke: the fast hot-path benchmarks CI tracks per commit — the
## streaming STL push, the streaming-vs-legacy CAWT step (the redesign's
## "streaming no slower than legacy" guard), the per-session-vs-batched
## rule-evaluation kernel, the per-session-vs-batched patient stepping
## kernel (the SoA speedup guard; fewer iterations — each op steps a
## 128-lane bank), and the sink delivery shapes (collector vs run-end
## merge vs epoch merge; fewer iterations — each op is a whole
## 100-session fleet). Output lands in bench-smoke.txt for the CI
## artifact.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSTLOnlinePush|BenchmarkCAWTStep|BenchmarkSCSBatchPush' \
		-benchtime 1000x -benchmem . > bench-smoke.txt || { cat bench-smoke.txt; exit 1; }
	$(GO) test -run '^$$' -bench 'BenchmarkBatchPatientStep' \
		-benchtime 100x -benchmem . >> bench-smoke.txt || { cat bench-smoke.txt; exit 1; }
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSinkEpochMerge' \
		-benchtime 10x -benchmem . >> bench-smoke.txt || { cat bench-smoke.txt; exit 1; }
	@cat bench-smoke.txt

## smoke-fleetd: end-to-end control-plane smoke — start fleetd, admit a
## tenant over HTTP, read one telemetry line off its stream, and drain
## with SIGTERM (see scripts/fleetd_smoke.sh)
smoke-fleetd:
	sh scripts/fleetd_smoke.sh

## smoke-snapshot: end-to-end drain/restore smoke — start fleetd with
## -snapshot-file, admit a tenant, SIGTERM to an epoch-aligned drain
## that writes the sealed control-plane snapshot, restart with
## -restore, and check the tenant and its telemetry stream resume
## without a re-PUT (see scripts/snapshot_smoke.sh)
smoke-snapshot:
	sh scripts/snapshot_smoke.sh

## fuzz-snapshot: short fuzz pass over the snapshot codec — the sealed
## envelope opener (arbitrary bytes must error or round-trip, never
## panic) and the primitive decoder (truncation/corruption must fail
## sticky). Go allows one -fuzz pattern per invocation, so two runs.
FUZZTIME ?= 10s
fuzz-snapshot:
	$(GO) test -run '^$$' -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzDecoder$$' -fuzztime $(FUZZTIME) ./internal/snapshot

## fuzz-scenario: short fuzz pass over the scenario-program codecs —
## the canonical text parser (accepted text must re-encode and reparse
## to the identical program) and the tenant JSON wire codec (accepted
## valid programs must round-trip bit-exactly). One -fuzz pattern per
## invocation, so two runs.
fuzz-scenario:
	$(GO) test -run '^$$' -fuzz '^FuzzParseProgram$$' -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz '^FuzzProgramJSON$$' -fuzztime $(FUZZTIME) ./internal/fault

## smoke-falsify: end-to-end falsifier smoke — search the built-in
## meal+occlusion space with a small fixed-seed budget and write the
## ranked corpus. The command itself replays the hardest scenario from
## scratch and fails unless the replay reproduces the recorded minimum
## margin exactly, so a green run certifies a non-empty trustworthy
## corpus.
smoke-falsify:
	$(GO) run ./cmd/falsify -steps 60 -samples 8 -refine 2 -sweeps 1 -seed 1 -polish -out falsify-corpus.json

## vet: static checks
vet:
	$(GO) vet ./...

## fmt: fail if any file is not gofmt-formatted
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

## lint: the fleetvet multichecker — determinism, hot-path noalloc,
## enum exhaustiveness, and the doc-comment contract, over every
## package (see internal/analysis and DESIGN.md "Static invariants")
lint:
	$(GO) run ./cmd/fleetvet ./...

## docs: documentation gate — vet plus the doc-comment lint. The lint
## target runs the same doclint rules as one fleetvet pass; this target
## remains for linting documentation in isolation via cmd/doclint.
docs: vet
	$(GO) run ./cmd/doclint $(DOC_PKGS)

## ci: what a gate should run
ci: fmt vet lint test race
