GO ?= go

.PHONY: build test race bench short vet ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 verify — build plus the full test suite
test: build
	$(GO) test ./...

## short: the fast subset (skips seconds-long suite training)
short:
	$(GO) test -short ./...

## race: full suite under the race detector (the fleet engine's
## concurrency tests run ≥1000 sessions here)
race:
	$(GO) test -race ./...

## bench: every benchmark with allocation stats; doubles as the paper's
## results summary (see bench_test.go) and the fleet throughput report
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

## vet: static checks
vet:
	$(GO) vet ./...

## fmt: fail if any file is not gofmt-formatted
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

## ci: what a gate should run
ci: fmt vet test race
