#!/bin/sh
# fleetd smoke: build the control plane, start it, admit a tenant over
# HTTP, read one telemetry line off the tenant's stream, check the
# alerts and status surfaces, and drain with SIGTERM. Exercises the
# full serve path (reconcile loop, admission gates, epoch-merged sink
# fan-out, graceful drain) in a few seconds; CI runs it after the unit
# suites.
set -eu

ADDR="${FLEETD_SMOKE_ADDR:-127.0.0.1:8344}"
TOKEN=smoke-token
AUTH="Authorization: Bearer $TOKEN"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'status=$?; [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null; rm -rf "$TMP"; exit $status' EXIT INT TERM

echo "fleetd-smoke: building"
go build -o "$TMP/fleetd" ./cmd/fleetd

"$TMP/fleetd" -addr "$ADDR" -scenarios 40 -max-sessions 16 -parallel 2 \
  -steps 10 -seed 1 -token "$TOKEN" -alert-floor -0.5 2>"$TMP/fleetd.log" &
PID=$!

echo "fleetd-smoke: waiting for /healthz"
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "fleetd-smoke: server never came up" >&2
    cat "$TMP/fleetd.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "fleetd-smoke: auth is enforced"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/status")
[ "$code" = 401 ] || { echo "unauthenticated status gave $code, want 401" >&2; exit 1; }

echo "fleetd-smoke: admitting tenant"
code=$(curl -s -o "$TMP/put.json" -w '%{http_code}' -X PUT -H "$AUTH" \
  -d '{"patients":[0,1],"scenarios":[0,1],"mitigate":true}' "$BASE/v1/tenants/smoke")
[ "$code" = 201 ] || { echo "PUT gave $code: $(cat "$TMP/put.json")" >&2; exit 1; }

echo "fleetd-smoke: reading one telemetry line"
curl -sN -m 30 -H "$AUTH" "$BASE/v1/tenants/smoke/telemetry" | head -n 1 >"$TMP/line.json" || true
[ -s "$TMP/line.json" ] || { echo "no telemetry line arrived" >&2; cat "$TMP/fleetd.log" >&2; exit 1; }
grep -q '"group":"smoke"' "$TMP/line.json" || {
  echo "telemetry line lacks the tenant tag: $(cat "$TMP/line.json")" >&2; exit 1
}
echo "fleetd-smoke: got $(cat "$TMP/line.json")"

echo "fleetd-smoke: status and alerts respond"
curl -sf -H "$AUTH" "$BASE/v1/status" | grep -q '"live":' || { echo "bad status body" >&2; exit 1; }
curl -sf -H "$AUTH" "$BASE/v1/tenants/smoke/alerts" | grep -q '"enabled":true' || {
  echo "alerts surface not armed" >&2; exit 1
}

echo "fleetd-smoke: evicting tenant"
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE -H "$AUTH" "$BASE/v1/tenants/smoke")
[ "$code" = 204 ] || { echo "DELETE gave $code, want 204" >&2; exit 1; }

echo "fleetd-smoke: draining (SIGTERM)"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 150 ]; then
    echo "fleetd-smoke: server ignored SIGTERM" >&2
    cat "$TMP/fleetd.log" >&2
    exit 1
  fi
  sleep 0.1
done
PID=
grep -q 'fleetd: stopped' "$TMP/fleetd.log" || {
  echo "drain did not complete cleanly:" >&2
  cat "$TMP/fleetd.log" >&2
  exit 1
}
echo "fleetd-smoke: PASS"
