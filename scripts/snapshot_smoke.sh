#!/bin/sh
# snapshot smoke: the drain/restore loop end to end. Build fleetd,
# start it with -snapshot-file, admit a tenant, read one telemetry
# line, then SIGTERM: the server drains at an epoch-aligned gate and
# writes the sealed control-plane snapshot. Restart with -restore and
# check the tenant is live again WITHOUT a re-PUT (the registry rode
# along in the snapshot) and its telemetry stream resumes. Exercises
# the full checkpoint path (drain-to-snapshot, atomic write, decode,
# config guard, slot-preserving restore, reconciler convergence) in a
# few seconds; CI runs it after the unit suites.
set -eu

ADDR="${SNAPSHOT_SMOKE_ADDR:-127.0.0.1:8346}"
TOKEN=smoke-token
AUTH="Authorization: Bearer $TOKEN"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SNAP="$TMP/fleetd.snap"
trap 'status=$?; [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null; rm -rf "$TMP"; exit $status' EXIT INT TERM

# Both runs must share the deterministic geometry (platform, steps,
# seed, sink-epoch, admit-every); -restore validates exactly that.
FLAGS="-addr $ADDR -scenarios 40 -max-sessions 16 -parallel 2 -steps 10 -seed 1 -token $TOKEN"

echo "snapshot-smoke: building"
go build -o "$TMP/fleetd" ./cmd/fleetd

wait_healthy() {
  i=0
  until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "snapshot-smoke: server never came up" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
}

wait_exit() {
  i=0
  while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
      echo "snapshot-smoke: server ignored SIGTERM" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
  PID=
}

read_line() {
  curl -sN -m 30 -H "$AUTH" "$BASE/v1/tenants/smoke/telemetry" | head -n 1 >"$1" || true
  [ -s "$1" ] || { echo "snapshot-smoke: no telemetry line arrived" >&2; cat "$2" >&2; exit 1; }
  grep -q '"group":"smoke"' "$1" || {
    echo "snapshot-smoke: telemetry line lacks the tenant tag: $(cat "$1")" >&2; exit 1
  }
}

echo "snapshot-smoke: starting (run 1, -snapshot-file)"
# shellcheck disable=SC2086
"$TMP/fleetd" $FLAGS -snapshot-file "$SNAP" 2>"$TMP/run1.log" &
PID=$!
wait_healthy "$TMP/run1.log"

echo "snapshot-smoke: admitting tenant"
code=$(curl -s -o "$TMP/put.json" -w '%{http_code}' -X PUT -H "$AUTH" \
  -d '{"patients":[0,1],"scenarios":[0,1],"mitigate":true}' "$BASE/v1/tenants/smoke")
[ "$code" = 201 ] || { echo "PUT gave $code: $(cat "$TMP/put.json")" >&2; exit 1; }

echo "snapshot-smoke: reading one telemetry line"
read_line "$TMP/line1.json" "$TMP/run1.log"
echo "snapshot-smoke: got $(cat "$TMP/line1.json")"

echo "snapshot-smoke: draining to snapshot (SIGTERM)"
kill -TERM "$PID"
wait_exit "$TMP/run1.log"
grep -q 'fleetd: snapshot:' "$TMP/run1.log" || {
  echo "snapshot-smoke: drain did not write a snapshot:" >&2
  cat "$TMP/run1.log" >&2
  exit 1
}
[ -s "$SNAP" ] || { echo "snapshot-smoke: snapshot file missing or empty" >&2; exit 1; }
echo "snapshot-smoke: snapshot is $(wc -c <"$SNAP") bytes"

echo "snapshot-smoke: starting (run 2, -restore)"
# shellcheck disable=SC2086
"$TMP/fleetd" $FLAGS -restore "$SNAP" 2>"$TMP/run2.log" &
PID=$!
wait_healthy "$TMP/run2.log"

echo "snapshot-smoke: tenant resumed without a re-PUT"
code=$(curl -s -o "$TMP/get.json" -w '%{http_code}' -H "$AUTH" "$BASE/v1/tenants/smoke")
[ "$code" = 200 ] || { echo "restored GET gave $code: $(cat "$TMP/get.json")" >&2; exit 1; }
grep -q '"live":[1-9]' "$TMP/get.json" || {
  echo "snapshot-smoke: restored tenant has no live sessions: $(cat "$TMP/get.json")" >&2
  cat "$TMP/run2.log" >&2
  exit 1
}
echo "snapshot-smoke: restored tenant: $(cat "$TMP/get.json")"

echo "snapshot-smoke: restored telemetry stream flows"
read_line "$TMP/line2.json" "$TMP/run2.log"
echo "snapshot-smoke: got $(cat "$TMP/line2.json")"

echo "snapshot-smoke: draining restored server (SIGTERM)"
kill -TERM "$PID"
wait_exit "$TMP/run2.log"
grep -q 'fleetd: stopped' "$TMP/run2.log" || {
  echo "snapshot-smoke: restored server did not drain cleanly:" >&2
  cat "$TMP/run2.log" >&2
  exit 1
}
echo "snapshot-smoke: PASS"
