// Package apsmonitor is a Go implementation of "Data-driven Design of
// Context-aware Monitors for Hazard Prediction in Artificial Pancreas
// Systems" (Zhou et al., DSN 2021): context-aware safety monitors for
// closed-loop insulin delivery that detect unsafe control actions before
// they become hypo-/hyperglycemia hazards, with their decision thresholds
// learned from fault-injected simulation traces.
//
// The package is a facade over the full system:
//
//   - two virtual-patient simulators (a Glucosym-style Medtronic Virtual
//     Patient model and a UVA-Padova S2013-style model) with ten-patient
//     synthetic cohorts;
//   - two controllers (OpenAPS-style temp-basal and hospital basal-bolus);
//   - a closed-loop engine, source-level fault-injection campaigns, and
//     risk-index hazard labeling;
//   - a bounded-time STL engine with robustness semantics and a parser;
//   - L-BFGS-B threshold learning with the TMEE tightness loss;
//   - the full monitor suite (CAWT, CAWOT, Guideline, MPC, DT, MLP, LSTM)
//     plus hazard mitigation, and the paper's evaluation metrics.
//
// # Quick start
//
//	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
//		Platform:  apsmonitor.MustPlatform("glucosym"),
//		Patients:  []int{0},
//		Scenarios: apsmonitor.QuickScenarios(20),
//	})
//
// then learn a monitor with BuildSuite and evaluate it with EvaluateAll.
// See examples/ for runnable programs and DESIGN.md for the experiment
// index.
package apsmonitor

import (
	"context"
	"io"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/risk"
	"repro/internal/scs"
	"repro/internal/stl"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

// Core data model.
type (
	// Trace is one closed-loop simulation run with per-cycle samples.
	Trace = trace.Trace
	// Sample is one control-cycle record.
	Sample = trace.Sample
	// Action is the discrete control-action vocabulary u1..u4.
	Action = trace.Action
	// HazardType distinguishes H1 (hypo) from H2 (hyper).
	HazardType = trace.HazardType
	// FaultInfo annotates a trace with its injection scenario.
	FaultInfo = trace.FaultInfo
)

// Control actions and hazard types.
const (
	ActionDecrease = trace.ActionDecrease
	ActionIncrease = trace.ActionIncrease
	ActionStop     = trace.ActionStop
	ActionKeep     = trace.ActionKeep

	HazardNone = trace.HazardNone
	HazardH1   = trace.HazardH1
	HazardH2   = trace.HazardH2
)

// Closed-loop simulation.
type (
	// LoopConfig assembles one simulation run.
	LoopConfig = closedloop.Config
	// MitigationConfig enables Algorithm 1 hazard mitigation.
	MitigationConfig = closedloop.MitigationConfig
	// Monitor is the safety-monitor contract.
	Monitor = closedloop.Monitor
	// Observation is the per-cycle monitor input.
	Observation = closedloop.Observation
	// Verdict is the per-cycle monitor output.
	Verdict = closedloop.Verdict
	// Patient is the virtual-patient surface.
	Patient = closedloop.Patient
	// Controller is the APS controller surface.
	Controller = control.Controller
)

// RunLoop executes one closed-loop simulation.
func RunLoop(cfg LoopConfig) (*Trace, error) { return closedloop.Run(cfg) }

// Fault injection.
type (
	// Fault describes one injection scenario (Table II).
	Fault = fault.Fault
	// FaultKind enumerates truncate/hold/max/min/add/sub.
	FaultKind = fault.Kind
	// Scenario couples a fault with an initial condition.
	Scenario = fault.Scenario
	// Program is a scenario program: an ordered timeline of typed
	// disturbance segments (the fleet's native scenario form).
	Program = fault.Program
	// ProgramSegment is one typed entry of a program timeline.
	ProgramSegment = fault.Segment
)

// Fault kinds of Table II.
const (
	FaultTruncate = fault.KindTruncate
	FaultHold     = fault.KindHold
	FaultMax      = fault.KindMax
	FaultMin      = fault.KindMin
	FaultAdd      = fault.KindAdd
	FaultSub      = fault.KindSub
)

// FullCampaign enumerates the paper's 882-scenario per-patient matrix.
func FullCampaign() []Scenario { return fault.Campaign(nil) }

// QuickScenarios thins the full campaign to one in k scenarios.
func QuickScenarios(k int) []Scenario { return experiment.ScenarioSubset(k) }

// Programs bridges enum scenarios into scenario-program form — the type
// FleetConfig.Scenarios takes. The bridged programs execute
// bit-identically to the enum path.
func Programs(scs []Scenario) []Program { return fault.Programs(scs) }

// ParsePrograms parses scenario programs from their canonical text form
// (the fleetsim -scenario-file format; see internal/fault).
func ParsePrograms(text string) ([]Program, error) { return fault.ParsePrograms(text) }

// Platforms and campaigns.
type (
	// Platform couples a patient cohort with its controller.
	Platform = experiment.Platform
	// CampaignConfig describes a fault-injection campaign.
	CampaignConfig = experiment.CampaignConfig
	// Suite holds the trained monitor collection for one platform.
	Suite = experiment.Suite
	// SuiteConfig tunes monitor training.
	SuiteConfig = experiment.SuiteConfig
	// Eval is one monitor's metric bundle.
	Eval = experiment.Eval
)

// GlucosymPlatform is the MVP-cohort + OpenAPS test bed.
func GlucosymPlatform() Platform { return experiment.Glucosym() }

// T1DS2013Platform is the Dalla Man cohort + Basal-Bolus test bed.
func T1DS2013Platform() Platform { return experiment.T1DS2013() }

// PlatformByName resolves "glucosym" or "t1ds2013".
func PlatformByName(name string) (Platform, error) { return experiment.PlatformByName(name) }

// MustPlatform is PlatformByName for statically known names.
func MustPlatform(name string) Platform {
	p, err := experiment.PlatformByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// RunCampaign executes a fault-injection campaign and returns labeled
// traces in deterministic order. Campaigns run on the fleet engine with
// one run-to-completion session per patient x scenario pair.
func RunCampaign(cfg CampaignConfig) ([]*Trace, error) { return experiment.Run(cfg) }

// Fleet engine: streaming concurrent sessions (see internal/fleet and
// DESIGN.md). RunCampaign is the batch special case; RunFleet exposes
// the full engine — session replication, continuous serving mode,
// per-session sensor noise, event streaming, per-shard batched monitor
// inference, and sharded sink delivery (FleetConfig.ShardedSinks with
// FleetConfig.SinkEpoch: per-worker buffers merged in canonical
// parallelism-independent order at epoch barriers, so continuous
// serving fleets get contention-free sinks with bounded memory).
type (
	// FleetConfig describes a fleet run.
	FleetConfig = fleet.Config
	// FleetResult aggregates a fleet run's traces and counters.
	FleetResult = fleet.Result
	// FleetEvent is one entry of the progress/hazard event stream.
	FleetEvent = fleet.Event
	// FleetEventKind enumerates fleet lifecycle events.
	FleetEventKind = fleet.EventKind
	// FleetTelemetryConfig attaches streaming STL hazard telemetry to
	// every fleet session.
	FleetTelemetryConfig = fleet.TelemetryConfig
	// BatchMonitor is the batched-inference monitor contract.
	BatchMonitor = monitor.BatchMonitor
	// FleetSink persists the fleet's event stream (FleetConfig.Sinks):
	// Emit receives every event serially — from one collector goroutine,
	// or in canonical merged order under sharded delivery — and Flush
	// runs when the fleet stops. See NewFleetLogSink, NewFleetRingSink,
	// and NewFleetHistSink for the shipped implementations.
	FleetSink = fleet.Sink
	// FleetLogSink appends events as JSON lines to a writer.
	FleetLogSink = fleet.LogSink
	// FleetRingSink retains the newest N events in a fixed-size ring.
	FleetRingSink = fleet.RingSink
	// FleetHistSink aggregates robustness margins into per-patient
	// histograms.
	FleetHistSink = fleet.HistSink
	// FleetAlert records one margin sample below a FleetHistSink's
	// configured alert floor (FleetHistSink.SetAlertFloor).
	FleetAlert = fleet.Alert
	// FleetAdmissions is the runtime admission/eviction controller of a
	// continuous fleet (FleetConfig.Admissions): Admit/Evict/EvictGroup
	// grow and shrink the live slot set at lock-step admission gates
	// while the fleet runs.
	FleetAdmissions = fleet.Admissions
	// FleetAdmitSpec describes one session to admit into a running
	// fleet.
	FleetAdmitSpec = fleet.AdmitSpec
	// FleetLiveSession is one live slot of an admission-controlled
	// fleet.
	FleetLiveSession = fleet.LiveSession
	// FleetReject records an admission the gate refused.
	FleetReject = fleet.Reject
	// FleetSessionSnapshot is one live session's bit-exact checkpoint
	// (FleetAdmitSpec.Restore migrates one into a running fleet).
	FleetSessionSnapshot = fleet.SessionSnapshot
	// FleetSnapshot is a drained fleet's checkpoint: every live session
	// at its exact cycle plus the sink completion cursor. Produce one
	// with FleetAdmissions.Drain / DrainAt; resume it with
	// FleetConfig.Restore under the same master seed and scenario table
	// and the sink stream continues byte-identically.
	FleetSnapshot = fleet.FleetSnapshot
	// FleetDrainResult is the outcome of a fleet drain or group-snapshot
	// request (FleetAdmissions.Drain / SnapshotGroup).
	FleetDrainResult = fleet.DrainResult
)

// DecodeFleetSnapshot opens and parses a sealed fleet snapshot
// (FleetSnapshot.Encode), failing loudly on corruption or a
// format-version mismatch.
func DecodeFleetSnapshot(data []byte) (*FleetSnapshot, error) {
	return fleet.DecodeFleetSnapshot(data)
}

// NewFleetAdmissions creates a runtime admission controller to set on
// FleetConfig.Admissions (requires FleetConfig.Continuous and
// FleetConfig.MaxSessions).
func NewFleetAdmissions() *FleetAdmissions { return fleet.NewAdmissions() }

// NewFleetLogSink creates an append-only JSONL sink over a writer (a
// file, a pipe, a network connection). The caller closes the writer
// after RunFleet returns.
func NewFleetLogSink(w io.Writer) *FleetLogSink { return fleet.NewLogSink(w) }

// FleetLogRotation bounds a file-backed log sink: size/age rotation
// triggers and a retained-file count, so continuous serving never grows
// one JSONL file forever.
type FleetLogRotation = fleet.RotationPolicy

// NewRotatingFleetLogSink opens (or resumes) a JSONL file owned by the
// sink, rotating and retiring it per the policy. Close the sink after
// RunFleet returns.
func NewRotatingFleetLogSink(path string, pol FleetLogRotation) (*FleetLogSink, error) {
	return fleet.NewRotatingLogSink(path, pol)
}

// NewFleetRingSink creates a bounded snapshot sink retaining the last n
// events.
func NewFleetRingSink(n int) (*FleetRingSink, error) { return fleet.NewRingSink(n) }

// NewFleetHistSink creates a per-patient margin-histogram sink over the
// range [lo, hi) with the given bin count.
func NewFleetHistSink(lo, hi float64, bins int) (*FleetHistSink, error) {
	return fleet.NewHistSink(lo, hi, bins)
}

// Fleet event kinds.
const (
	FleetSessionStart = fleet.EventSessionStart
	FleetAlarm        = fleet.EventAlarm
	FleetHazard       = fleet.EventHazard
	FleetSessionDone  = fleet.EventSessionDone
	FleetProgress     = fleet.EventProgress
	FleetRobustness   = fleet.EventRobustness
	FleetSessionEvict = fleet.EventSessionEvict
)

// RunFleet executes a fleet of concurrent closed-loop sessions.
func RunFleet(ctx context.Context, cfg FleetConfig) (FleetResult, error) {
	return fleet.Run(ctx, cfg)
}

// FleetPlatform adapts a campaign platform for the fleet engine.
func FleetPlatform(p Platform) fleet.Platform { return fleet.Platform(p) }

// RunFaultFree runs the fault-free scenario set for a platform.
func RunFaultFree(p Platform, patients []int) ([]*Trace, error) {
	return experiment.FaultFree(p, patients, 0)
}

// BuildSuite trains the full monitor suite from labeled traces.
func BuildSuite(p Platform, training, faultFree []*Trace, cfg SuiteConfig) (*Suite, error) {
	return experiment.BuildSuite(p, training, faultFree, cfg)
}

// MonitorNames lists the suite's monitors in the paper's order.
var MonitorNames = experiment.MonitorNames

// Safety Context Specification and learning.
type (
	// Rule is one Table I Safety Context Specification row.
	Rule = scs.Rule
	// SCSState is the per-cycle context vector µ(x) plus the issued
	// action, the input of rule evaluation and SCSStreamSet.Push.
	SCSState = scs.State
	// Thresholds maps rule IDs to learned β values.
	Thresholds = scs.Thresholds
	// LearnConfig tunes threshold learning.
	LearnConfig = stllearn.Config
	// LearnReport summarizes a learning run.
	LearnReport = stllearn.Report
)

// TableI returns the twelve Safety Context Specification rules.
func TableI() []Rule { return scs.TableI() }

// SCSStateFromSample converts a recorded sample to a rule-evaluation
// state (sensed CGM as the observable glucose).
func SCSStateFromSample(s *Sample) SCSState { return scs.StateFromSample(s) }

// LearnThresholds fits rule thresholds from labeled traces with
// L-BFGS-B under the configured tightness loss (TMEE by default).
func LearnThresholds(rules []Rule, traces []*Trace, cfg LearnConfig) (Thresholds, LearnReport, error) {
	return stllearn.Learn(rules, traces, cfg)
}

// NewCAWTMonitor builds the context-aware monitor with learned
// thresholds.
func NewCAWTMonitor(rules []Rule, th Thresholds) (Monitor, error) {
	return monitor.NewCAWT(rules, th, scs.Params{})
}

// NewCAWOTMonitor builds the context-aware baseline with default
// thresholds.
func NewCAWOTMonitor(rules []Rule) (Monitor, error) {
	return monitor.NewCAWOT(rules, scs.Params{})
}

// NewBatchCAWTMonitor builds the shard-batched context-aware monitor
// with learned thresholds: one struct-of-arrays rule evaluation per
// control cycle serves a whole fleet shard, bit-identical per lane to
// NewCAWTMonitor (use via FleetConfig.NewBatchMonitor).
func NewBatchCAWTMonitor(rules []Rule, th Thresholds) (BatchMonitor, error) {
	return monitor.NewBatchCAWT(rules, th, scs.Params{})
}

// NewBatchCAWOTMonitor is the shard-batched context-aware baseline with
// default thresholds.
func NewBatchCAWOTMonitor(rules []Rule) (BatchMonitor, error) {
	return monitor.NewBatchCAWOT(rules, scs.Params{})
}

// STL.
type (
	// STLFormula is a bounded-time STL formula.
	STLFormula = stl.Formula
	// STLTrace is a sampled multi-variable signal.
	STLTrace = stl.Trace
	// STLStream is the incremental streaming evaluator for past-only
	// formulas: O(1) amortized per pushed sample, O(window) state.
	STLStream = stl.Stream
	// STLStreamGroup evaluates many past-only formulas over one shared
	// sample stream with a hash-consed node DAG: identical subformulas
	// share one stateful node, evaluated once per push.
	STLStreamGroup = stl.StreamGroup
	// STLMonitor evaluates a past-only formula online, one sample per
	// control cycle, on the streaming engine.
	STLMonitor = stl.OnlineMonitor
	// SCSStreamSet renders a Safety Context Specification through the
	// streaming engine, yielding per-cycle minimum robustness margins.
	SCSStreamSet = scs.StreamSet
	// SCSStreamVerdict is the per-cycle aggregate of an SCSStreamSet.
	SCSStreamVerdict = scs.StreamVerdict
	// STLBatchStreamGroup evaluates many past-only formulas across a
	// whole shard of independent sessions in one struct-of-arrays push,
	// bit-identical per lane to STLStreamGroup.
	STLBatchStreamGroup = stl.BatchStreamGroup
	// SCSBatchStreamSet evaluates a Safety Context Specification across
	// many session lanes in one batched push, bit-identical per lane to
	// SCSStreamSet.
	SCSBatchStreamSet = scs.BatchStreamSet
)

// ParseSTL parses the package's STL concrete syntax.
func ParseSTL(src string) (STLFormula, error) { return stl.Parse(src) }

// MustParseSTL is ParseSTL for statically known formulas.
func MustParseSTL(src string) STLFormula { return stl.MustParse(src) }

// NewSTLTrace creates an empty signal trace with the given sampling
// period in minutes.
func NewSTLTrace(dtMin float64) (*STLTrace, error) { return stl.NewTrace(dtMin) }

// NewSTLStream compiles a past-only formula for incremental streaming
// evaluation at sampling period dtMin minutes.
func NewSTLStream(f STLFormula, dtMin float64) (*STLStream, error) {
	return stl.NewStream(f, dtMin)
}

// NewSTLStreamGroup creates an empty hash-consed stream group at
// sampling period dtMin minutes; add formulas with Add, advance all of
// them together with Push.
func NewSTLStreamGroup(dtMin float64) (*STLStreamGroup, error) {
	return stl.NewStreamGroup(dtMin)
}

// NewSTLMonitor builds an online monitor for a past-only formula.
func NewSTLMonitor(f STLFormula, dtMin float64) (*STLMonitor, error) {
	return stl.NewOnlineMonitor(f, dtMin)
}

// NewSCSStreamSet compiles a rule set's STL bodies for streaming
// evaluation (nil thresholds select the rules' defaults).
func NewSCSStreamSet(rules []Rule, th Thresholds, dtMin float64) (*SCSStreamSet, error) {
	return scs.NewStreamSet(rules, th, scs.Params{}, dtMin)
}

// NewSTLBatchStreamGroup creates an empty batched stream group at
// sampling period dtMin minutes with the given session-lane count.
func NewSTLBatchStreamGroup(dtMin float64, width int) (*STLBatchStreamGroup, error) {
	return stl.NewBatchStreamGroup(dtMin, width)
}

// NewSCSBatchStreamSet compiles a rule set's STL bodies for batched
// evaluation across width session lanes (nil thresholds select the
// rules' defaults).
func NewSCSBatchStreamSet(rules []Rule, th Thresholds, dtMin float64, width int) (*SCSBatchStreamSet, error) {
	return scs.NewBatchStreamSet(rules, th, scs.Params{}, dtMin, width)
}

// Metrics.
type (
	// Confusion is a binary confusion matrix with FPR/FNR/ACC/F1.
	Confusion = metrics.Confusion
	// TTHStats summarizes the time-to-hazard distribution.
	TTHStats = metrics.TTHStats
	// ReactionStats summarizes monitor timeliness.
	ReactionStats = metrics.ReactionStats
	// MitigationOutcome is a Table VII row.
	MitigationOutcome = metrics.MitigationOutcome
)

// SampleLevelMetrics scores per-sample predictions with the tolerance
// window (0 selects the default one-hour window).
func SampleLevelMetrics(tr *Trace, deltaCycles int) Confusion {
	return metrics.SampleLevel(tr, deltaCycles)
}

// SimulationLevelMetrics scores a whole trace with the two-region scheme.
func SimulationLevelMetrics(tr *Trace) Confusion { return metrics.SimulationLevel(tr) }

// HazardCoverage is the fraction of faulty traces that became hazardous.
func HazardCoverage(traces []*Trace) float64 { return metrics.HazardCoverage(traces) }

// TimeToHazard summarizes the TTH distribution (Fig. 7b).
func TimeToHazard(traces []*Trace) TTHStats { return metrics.TTH(traces) }

// ReactionTime summarizes monitor timeliness (Fig. 9).
func ReactionTime(traces []*Trace) ReactionStats { return metrics.ReactionTime(traces) }

// LabelHazards assigns risk-index hazard labels to a trace
// (Section IV-C2).
func LabelHazards(tr *Trace) { risk.Labeler{}.Label(tr) }

// RiskIndex returns the BG risk function of Eq. 5.
func RiskIndex(bg float64) float64 { return risk.Value(bg) }

// AnnotateMonitor replays a monitor over a recorded trace, writing
// alarms into the samples.
func AnnotateMonitor(m Monitor, tr *Trace) { monitor.Annotate(m, tr) }

// ReadTraceCSV parses a trace previously serialized with Trace.WriteCSV
// (accepting both the current and the pre-basal meta layout).
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }
