// Command apsim runs one closed-loop APS simulation, optionally with an
// injected fault, and prints the trace as a summary or CSV.
//
// Usage:
//
//	apsim -platform glucosym -patient 0 -bg 140 \
//	      -fault max:glucose -start 10 -duration 60 [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	apsmonitor "repro"
	"repro/internal/fault"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		patientIdx   = flag.Int("patient", 0, "cohort patient index (0-9)")
		initialBG    = flag.Float64("bg", 120, "initial blood glucose, mg/dL")
		steps        = flag.Int("steps", 150, "control cycles (5 minutes each)")
		faultSpec    = flag.String("fault", "", "fault as kind:target (e.g. max:glucose); empty for fault-free")
		faultStart   = flag.Int("start", 10, "fault start cycle")
		faultDur     = flag.Int("duration", 60, "fault duration in cycles")
		faultValue   = flag.Float64("value", 0, "fault magnitude (0 = kind/target default)")
		asCSV        = flag.Bool("csv", false, "emit the full trace as CSV")
	)
	flag.Parse()

	tr, err := run(*platformName, *patientIdx, *initialBG, *steps,
		*faultSpec, *faultStart, *faultDur, *faultValue)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsim:", err)
		os.Exit(1)
	}
	if *asCSV {
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "apsim:", err)
			os.Exit(1)
		}
		return
	}
	printSummary(tr)
}

func run(platformName string, patientIdx int, initialBG float64, steps int,
	faultSpec string, start, dur int, value float64) (*apsmonitor.Trace, error) {
	platform, err := apsmonitor.PlatformByName(platformName)
	if err != nil {
		return nil, err
	}
	scenario := apsmonitor.Scenario{InitialBG: initialBG}
	if faultSpec != "" {
		parts := strings.SplitN(faultSpec, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("fault %q is not kind:target", faultSpec)
		}
		kind, err := fault.ParseKind(parts[0])
		if err != nil {
			return nil, err
		}
		if value == 0 {
			value = fault.DefaultValue(kind, parts[1])
		}
		scenario.Fault = apsmonitor.Fault{
			Kind: kind, Target: parts[1], Value: value,
			StartStep: start, Duration: dur,
		}
	}
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  platform,
		Patients:  []int{patientIdx},
		Scenarios: []apsmonitor.Scenario{scenario},
		Steps:     steps,
	})
	if err != nil {
		return nil, err
	}
	return traces[0], nil
}

func printSummary(tr *apsmonitor.Trace) {
	fmt.Printf("platform   %s\n", tr.Platform)
	fmt.Printf("patient    %s\n", tr.PatientID)
	fmt.Printf("initial BG %.0f mg/dL\n", tr.InitialBG)
	if tr.Faulty() {
		fmt.Printf("fault      %s value=%g cycles [%d,%d)\n",
			tr.Fault.Name, tr.Fault.Value, tr.Fault.StartStep, tr.Fault.StartStep+tr.Fault.Duration)
	} else {
		fmt.Println("fault      none")
	}
	minBG, maxBG := tr.Samples[0].BG, tr.Samples[0].BG
	var insulin float64
	for _, s := range tr.Samples {
		if s.BG < minBG {
			minBG = s.BG
		}
		if s.BG > maxBG {
			maxBG = s.BG
		}
		insulin += s.Delivered * tr.CycleMin / 60
	}
	fmt.Printf("BG range   [%.0f, %.0f] mg/dL over %.1f h\n",
		minBG, maxBG, float64(tr.Len())*tr.CycleMin/60)
	fmt.Printf("insulin    %.1f U total\n", insulin)
	if tr.Hazardous() {
		tth, _ := tr.TimeToHazardMin()
		fmt.Printf("hazard     %s at cycle %d (TTH %.0f min)\n",
			tr.DominantHazard(), tr.FirstHazardStep(), tth)
	} else {
		fmt.Println("hazard     none")
	}
	// Compact BG strip chart, one row per hour.
	fmt.Println("\n  t(h)   BG trace (one column per cycle, * = hazard)")
	for row := 0; row*12 < tr.Len(); row++ {
		fmt.Printf("  %4.0f   ", float64(row))
		for i := row * 12; i < (row+1)*12 && i < tr.Len(); i++ {
			s := tr.Samples[i]
			mark := glyph(s.BG)
			if s.Hazard != apsmonitor.HazardNone {
				mark = "*"
			}
			fmt.Printf("%4.0f%s", s.BG, mark)
		}
		fmt.Println()
	}
}

func glyph(bg float64) string {
	switch {
	case bg < 70:
		return "v"
	case bg > 180:
		return "^"
	default:
		return " "
	}
}
