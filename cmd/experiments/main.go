// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V) on both closed-loop platforms: the resilience
// analysis (Figs. 7a, 7b, 8), the loss-function comparison (Fig. 3), the
// monitor-accuracy tables (V and VI), the reaction-time comparison
// (Fig. 9), the mitigation study (Table VII), the patient-specific vs
// population comparison (Table VIII), resource utilization (Section
// V-E6), and the Section VI ablations.
//
// The full campaign (-thin 1) is the paper's 8,820 simulations per
// platform; -thin 4 reproduces the same shapes in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	apsmonitor "repro"
	"repro/internal/experiment"
	"repro/internal/stllearn"
)

func main() {
	var (
		thin    = flag.Int("thin", 4, "run every k-th campaign scenario (1 = full paper scale)")
		seed    = flag.Int64("seed", 1, "training seed")
		mitThin = flag.Int("mitigation-thin", 0, "scenario thinning for the mitigation rerun (0 = 4x the campaign thinning)")
		only    = flag.String("platform", "", "restrict to one platform (glucosym or t1ds2013)")
	)
	flag.Parse()
	if *mitThin == 0 {
		*mitThin = *thin * 4
	}
	platforms := experiment.Platforms()
	if *only != "" {
		p, err := apsmonitor.PlatformByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		platforms = []experiment.Platform{p}
	}

	fmt.Print(experiment.LossCurves(-2, 4, 31).Render())
	fmt.Println()

	for _, platform := range platforms {
		if err := runPlatform(platform, *thin, *mitThin, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func runPlatform(platform experiment.Platform, thin, mitThin int, seed int64) error {
	banner := fmt.Sprintf("================ platform %s ================", platform.Name)
	fmt.Println(banner)
	start := time.Now()
	scenarios := experiment.ScenarioSubset(thin)
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  platform,
		Scenarios: scenarios,
	})
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d simulations, %.1f%% hazard coverage (%v)\n\n",
		len(traces), 100*apsmonitor.HazardCoverage(traces), time.Since(start).Round(time.Millisecond))

	fmt.Print(experiment.HazardCoverageByPatient(traces).Render())
	fmt.Println()
	fmt.Print(experiment.RenderTTH(experiment.TTHDistribution(traces)))
	fmt.Println()
	fmt.Print(experiment.CoverageByFaultAndBG(traces).Render())
	fmt.Println()

	folds := stllearn.Folds(traces, 4)
	train := stllearn.TrainingSet(folds, 0)
	test := folds[0]
	faultFree, err := apsmonitor.RunFaultFree(platform, nil)
	if err != nil {
		return err
	}
	suite, err := apsmonitor.BuildSuite(platform, train, faultFree, apsmonitor.SuiteConfig{Seed: seed})
	if err != nil {
		return err
	}
	evals, err := suite.EvaluateAll(nil, test)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderEvals(
		fmt.Sprintf("Tables V & VI — monitor accuracy on %s (held-out fold)", platform.Name), evals))
	fmt.Println()
	fmt.Print(experiment.RenderReaction(evals))
	fmt.Println()

	fmt.Println("Section V-E6 — per-cycle monitor overhead")
	for _, e := range evals {
		fmt.Printf("  %-10s %v\n", e.Monitor, e.StepTime)
	}
	fmt.Println()

	// Table VII on a thinned scenario set (each monitor requires a full
	// rerun of the campaign with mitigation in the loop).
	mitScenarios := experiment.ScenarioSubset(mitThin)
	baseline, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform: platform, Scenarios: mitScenarios,
	})
	if err != nil {
		return err
	}
	var mitResults []experiment.MitigationResult
	for _, name := range []string{"CAWT", "DT", "MLP", "MPC"} {
		res, err := suite.EvaluateMitigation(name, baseline, apsmonitor.CampaignConfig{
			Scenarios: mitScenarios,
		})
		if err != nil {
			return err
		}
		mitResults = append(mitResults, res)
	}
	fmt.Print(experiment.RenderMitigation(mitResults))
	fmt.Println()

	rows, err := suite.TableVIII(test, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderTableVIII(rows))
	fmt.Println()

	lossRows, err := experiment.LossAblation(train, test)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderLossAblation(lossRows))
	fmt.Println()

	adv, err := experiment.AdversarialAblation(faultFree, train, test)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderAdversarialAblation(adv))
	fmt.Println()

	gen, err := suite.EvaluateFaultFreeGeneralization([]string{"CAWT", "DT", "MLP", "LSTM"}, test, faultFree)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderFaultFreeGeneralization(gen))
	fmt.Printf("\nplatform %s done in %v\n\n", platform.Name, time.Since(start).Round(time.Second))
	return nil
}
