// Command falsify searches a scenario-program parameter space for the
// executions that drive the safety monitor's robustness margin lowest:
// seeded random exploration, coordinate descent from the hardest
// seeds, and an optional projected-L-BFGS polish over the continuous
// magnitudes (see internal/falsify).
//
//	falsify -platform glucosym -patient 0 -steps 150 \
//	        -samples 32 -refine 3 -polish -out corpus.json
//
// The space defaults to a built-in meal+occlusion template; pass
// -space-file to search your own (JSON: {"base": <program>, "params":
// [{"seg":0,"field":"value","lo":100,"hi":180}, ...]}). After the
// search the hardest scenario is replayed from scratch and the command
// fails unless the replay reproduces the recorded minimum margin
// exactly — the corpus is only written if it is trustworthy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/falsify"
	"repro/internal/fault"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		patient      = flag.Int("patient", 0, "cohort patient index")
		steps        = flag.Int("steps", 150, "run horizon in control cycles")
		seed         = flag.Int64("seed", 1, "search seed (fixed seed = reproducible corpus)")
		samples      = flag.Int("samples", 32, "random exploration budget")
		refine       = flag.Int("refine", 3, "hardest random seeds continued into coordinate descent")
		sweeps       = flag.Int("sweeps", 2, "coordinate-descent sweeps per refined seed")
		polish       = flag.Bool("polish", false, "L-BFGS polish over continuous magnitude coordinates")
		keep         = flag.Int("keep", 16, "ranked corpus size")
		spaceFile    = flag.String("space-file", "", "JSON search-space file (default: built-in meal+occlusion template)")
		out          = flag.String("out", "", "write the ranked corpus JSON here")
		top          = flag.Int("top", 5, "print the N hardest scenarios")
	)
	flag.Parse()

	platform, err := experiment.PlatformByName(*platformName)
	if err != nil {
		fail(err)
	}
	space := defaultSpace()
	if *spaceFile != "" {
		data, err := os.ReadFile(*spaceFile)
		if err != nil {
			fail(err)
		}
		space = falsify.Space{}
		if err := json.Unmarshal(data, &space); err != nil {
			fail(fmt.Errorf("space file %s: %w", *spaceFile, err))
		}
	}
	cfg := falsify.Config{
		Space:    space,
		Platform: platform,
		Patient:  *patient,
		Steps:    *steps,
		Seed:     *seed,
		Samples:  *samples,
		Refine:   *refine,
		Sweeps:   *sweeps,
		Polish:   *polish,
		Keep:     *keep,
	}
	corpus, err := falsify.Search(cfg)
	if err != nil {
		fail(err)
	}

	// Replay gate: the hardest scenario must reproduce its recorded
	// minimum margin from a fresh run before the corpus is trusted.
	hardest := corpus.Evals[0]
	replay, err := falsify.EvalProgram(cfg, hardest.Program)
	if err != nil {
		fail(fmt.Errorf("replay: %w", err))
	}
	if replay.MinMargin != hardest.MinMargin || replay.MinStep != hardest.MinStep {
		fail(fmt.Errorf("replay margin %v@%d diverges from corpus %v@%d",
			replay.MinMargin, replay.MinStep, hardest.MinMargin, hardest.MinStep))
	}

	fmt.Printf("falsify: %s patient %d, %d steps: %d evaluated, %d skipped, corpus %d\n",
		corpus.Platform, corpus.Patient, corpus.Steps, corpus.Visited, corpus.Skipped, len(corpus.Evals))
	fmt.Printf("falsify: hardest margin %.4f at step %d (replay verified)\n", hardest.MinMargin, hardest.MinStep)
	for i, ev := range corpus.Top(*top) {
		fmt.Printf("#%d margin %.4f @%d alarms=%d hazard=%v\n%s\n", i+1, ev.MinMargin, ev.MinStep, ev.Alarms, ev.Hazard, ev.Text)
	}
	if *out != "" {
		data, err := corpus.EncodeJSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("falsify: corpus -> %s\n", *out)
	}
}

// defaultSpace is the built-in template: initial glucose, an
// unannounced meal, and a pump occlusion, all free — disturbances the
// legacy single-fault matrix cannot express together.
func defaultSpace() falsify.Space {
	return falsify.Space{
		Base: fault.Program{Name: "meal-occlusion", Segments: []fault.Segment{
			{Kind: fault.SegInitBG, Value: 140},
			{Kind: fault.SegMeal, Value: 60, Start: 10, Duration: 6},
			{Kind: fault.SegOcclusion, Start: 20, Duration: 12},
		}},
		Params: []falsify.Param{
			{Seg: 0, Field: falsify.FieldValue, Lo: 90, Hi: 180},
			{Seg: 1, Field: falsify.FieldValue, Lo: 20, Hi: 120},
			{Seg: 1, Field: falsify.FieldStart, Lo: 0, Hi: 60},
			{Seg: 2, Field: falsify.FieldStart, Lo: 0, Hi: 90},
			{Seg: 2, Field: falsify.FieldDuration, Lo: 6, Hi: 36},
		},
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "falsify:", err)
	os.Exit(1)
}
