// Command faultcampaign runs the fault-injection campaign of Section V-B
// against a platform and reports the resilience analysis of Section V-E1:
// hazard coverage per patient (Fig. 7a), the time-to-hazard distribution
// (Fig. 7b), and coverage by fault type and initial glucose (Fig. 8).
package main

import (
	"flag"
	"fmt"
	"os"

	apsmonitor "repro"
	"repro/internal/experiment"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		thin         = flag.Int("thin", 1, "run every k-th scenario (1 = full 882-per-patient campaign)")
		patients     = flag.Int("patients", 0, "limit to the first N patients (0 = all)")
	)
	flag.Parse()

	platform, err := apsmonitor.PlatformByName(*platformName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
	cfg := apsmonitor.CampaignConfig{
		Platform:  platform,
		Scenarios: apsmonitor.QuickScenarios(*thin),
	}
	if *patients > 0 {
		for i := 0; i < *patients; i++ {
			cfg.Patients = append(cfg.Patients, i)
		}
	}
	traces, err := apsmonitor.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %d simulations on %s (%d samples)\n\n",
		len(traces), platform.Name, totalSamples(traces))
	fmt.Print(experiment.HazardCoverageByPatient(traces).Render())
	fmt.Println()
	fmt.Print(experiment.RenderTTH(experiment.TTHDistribution(traces)))
	fmt.Println()
	fmt.Print(experiment.CoverageByFaultAndBG(traces).Render())
}

func totalSamples(traces []*apsmonitor.Trace) int {
	var n int
	for _, tr := range traces {
		n += tr.Len()
	}
	return n
}
