// Command fleetd serves the fleet control plane: one continuously
// running admission-controlled fleet behind a multi-tenant HTTP API.
// Tenants declare desired state (patients x fault scenarios, monitor
// and mitigation config) with PUT /v1/tenants/{id}; a reconcile loop
// admits and evicts sessions at the fleet's deterministic admission
// gates, and per-tenant telemetry streams back as JSONL or SSE from
// the epoch-merged sharded sinks.
//
//	fleetd -addr :8344 -platform glucosym -max-sessions 256 \
//	       -parallel 8 -seed 1 -token secret -alert-floor -0.5
//
//	curl -H 'Authorization: Bearer secret' -X PUT -d \
//	  '{"patients":[0,1],"scenarios":[3,4],"mitigate":true}' \
//	  localhost:8344/v1/tenants/acme
//	curl -N -H 'Authorization: Bearer secret' \
//	  localhost:8344/v1/tenants/acme/telemetry
//
// On SIGINT/SIGTERM the server drains: the fleet stops at its next
// gate, telemetry streams end, and in-flight requests finish before
// exit. With -snapshot-file the drain instead lands on an epoch-aligned
// admission gate and serializes the whole control plane — tenant
// registry plus every live session at its exact cycle — into a sealed
// snapshot; a later run started with -restore (and the same platform,
// steps, seed, sink-epoch, and admit-every) resumes the fleet
// bit-exactly, continuing every tenant's telemetry stream where the
// drained run cut it. POST /v1/tenants/{id}/snapshot captures a single
// tenant the same way without stopping the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/fleetd"
)

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		scenarios    = flag.Int("scenarios", 0, "limit the scenario table to the first M entries (0 = full 882 matrix)")
		maxSessions  = flag.Int("max-sessions", 256, "fleet-wide live session capacity")
		parallel     = flag.Int("parallel", 0, "worker shards (0 = NumCPU)")
		steps        = flag.Int("steps", 288, "control cycles per session replica")
		seed         = flag.Int64("seed", 1, "master seed for per-session RNG streams")
		sinkEpoch    = flag.Int("sink-epoch", 8, "merge and deliver telemetry every k lock-step rounds")
		admitEvery   = flag.Int("admit-every", 0, "admission-gate period in rounds (0 = fleet default)")
		token        = flag.String("token", "", "require this bearer token on /v1/ endpoints (empty = no auth)")
		alertFloor   = flag.Float64("alert-floor", math.NaN(), "record per-tenant alerts when a robustness margin falls below this floor (NaN = off)")
		alertPct     = flag.Float64("alert-pct", math.NaN(), "record per-tenant alerts below this adaptive quantile of each tenant's own margin distribution, in (0,1) (NaN = off)")
		streamBuffer = flag.Int("stream-buffer", 0, "per-subscriber telemetry buffer in events (0 = default 256)")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget after SIGTERM")
		snapshotFile = flag.String("snapshot-file", "", "on SIGTERM, drain the fleet at an epoch-aligned gate and write the control-plane snapshot here instead of discarding state")
		restoreFile  = flag.String("restore", "", "seed the server from a control-plane snapshot written by -snapshot-file (requires the same platform/steps/seed/sink-epoch/admit-every)")
	)
	flag.Parse()

	platform, err := experiment.PlatformByName(*platformName)
	if err != nil {
		fail(err)
	}
	table := fault.CampaignPrograms(nil)
	if *scenarios > 0 && *scenarios < len(table) {
		table = table[:*scenarios]
	}
	cfg := fleetd.Config{
		Platform:     fleet.Platform(platform),
		Scenarios:    table,
		MaxSessions:  *maxSessions,
		Parallel:     *parallel,
		Steps:        *steps,
		Seed:         *seed,
		SinkEpoch:    *sinkEpoch,
		AdmitEvery:   *admitEvery,
		Token:        *token,
		AlertFloor:   *alertFloor,
		AlertPct:     *alertPct,
		StreamBuffer: *streamBuffer,
	}
	if *restoreFile != "" {
		data, err := os.ReadFile(*restoreFile)
		if err != nil {
			fail(err)
		}
		snap, err := fleetd.DecodeSnapshot(data)
		if err != nil {
			fail(err)
		}
		cfg.Restore = snap
		fmt.Fprintf(os.Stderr, "fleetd: restoring %d sessions across %d tenants from %s\n",
			len(snap.Fleet.Sessions), len(snap.Tenants), *restoreFile)
	}
	srv, err := fleetd.New(cfg)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Start(context.Background()); err != nil {
		fail(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	httpErr := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fleetd: serving %s on %s (%d scenarios, capacity %d)\n",
			*platformName, *addr, len(table), *maxSessions)
		httpErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-httpErr:
		fail(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fleetd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Order matters: ending the fleet first closes telemetry streams,
	// so Shutdown's wait for in-flight requests can complete.
	if *snapshotFile != "" {
		snap, err := srv.DrainToSnapshot(drainCtx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetd: snapshot drain: %v\n", err)
		} else if err := writeSnapshot(*snapshotFile, snap.Encode()); err != nil {
			fmt.Fprintf(os.Stderr, "fleetd: snapshot write: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "fleetd: snapshot: %d sessions across %d tenants -> %s\n",
				len(snap.Fleet.Sessions), len(snap.Tenants), *snapshotFile)
		}
	} else if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "fleetd: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "fleetd: stopped")
}

// writeSnapshot lands the sealed snapshot atomically: a crash mid-write
// must never leave a truncated envelope where the next -restore expects
// a valid one.
func writeSnapshot(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}
