// Command fleetd serves the fleet control plane: one continuously
// running admission-controlled fleet behind a multi-tenant HTTP API.
// Tenants declare desired state (patients x fault scenarios, monitor
// and mitigation config) with PUT /v1/tenants/{id}; a reconcile loop
// admits and evicts sessions at the fleet's deterministic admission
// gates, and per-tenant telemetry streams back as JSONL or SSE from
// the epoch-merged sharded sinks.
//
//	fleetd -addr :8344 -platform glucosym -max-sessions 256 \
//	       -parallel 8 -seed 1 -token secret -alert-floor -0.5
//
//	curl -H 'Authorization: Bearer secret' -X PUT -d \
//	  '{"patients":[0,1],"scenarios":[3,4],"mitigate":true}' \
//	  localhost:8344/v1/tenants/acme
//	curl -N -H 'Authorization: Bearer secret' \
//	  localhost:8344/v1/tenants/acme/telemetry
//
// On SIGINT/SIGTERM the server drains: the fleet stops at its next
// gate, telemetry streams end, and in-flight requests finish before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/fleetd"
)

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		scenarios    = flag.Int("scenarios", 0, "limit the scenario table to the first M entries (0 = full 882 matrix)")
		maxSessions  = flag.Int("max-sessions", 256, "fleet-wide live session capacity")
		parallel     = flag.Int("parallel", 0, "worker shards (0 = NumCPU)")
		steps        = flag.Int("steps", 288, "control cycles per session replica")
		seed         = flag.Int64("seed", 1, "master seed for per-session RNG streams")
		sinkEpoch    = flag.Int("sink-epoch", 8, "merge and deliver telemetry every k lock-step rounds")
		admitEvery   = flag.Int("admit-every", 0, "admission-gate period in rounds (0 = fleet default)")
		token        = flag.String("token", "", "require this bearer token on /v1/ endpoints (empty = no auth)")
		alertFloor   = flag.Float64("alert-floor", math.NaN(), "record per-tenant alerts when a robustness margin falls below this floor (NaN = off)")
		streamBuffer = flag.Int("stream-buffer", 0, "per-subscriber telemetry buffer in events (0 = default 256)")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget after SIGTERM")
	)
	flag.Parse()

	platform, err := experiment.PlatformByName(*platformName)
	if err != nil {
		fail(err)
	}
	table := fault.Campaign(nil)
	if *scenarios > 0 && *scenarios < len(table) {
		table = table[:*scenarios]
	}
	srv, err := fleetd.New(fleetd.Config{
		Platform:     fleet.Platform(platform),
		Scenarios:    table,
		MaxSessions:  *maxSessions,
		Parallel:     *parallel,
		Steps:        *steps,
		Seed:         *seed,
		SinkEpoch:    *sinkEpoch,
		AdmitEvery:   *admitEvery,
		Token:        *token,
		AlertFloor:   *alertFloor,
		StreamBuffer: *streamBuffer,
	})
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Start(context.Background()); err != nil {
		fail(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	httpErr := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fleetd: serving %s on %s (%d scenarios, capacity %d)\n",
			*platformName, *addr, len(table), *maxSessions)
		httpErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-httpErr:
		fail(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fleetd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Order matters: ending the fleet first closes telemetry streams,
	// so Shutdown's wait for in-flight requests can complete.
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "fleetd: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "fleetd: stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}
