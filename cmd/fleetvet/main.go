// Command fleetvet is the repo's single lint entry point: it runs the
// project-invariant static-analysis suite of internal/analysis — the
// determinism, noalloc, and exhaustive passes plus the documentation
// lint formerly run as cmd/doclint — over Go package patterns and
// prints findings in clickable file:line:col format.
//
// Usage:
//
//	fleetvet [packages]
//
// With no arguments it vets ./... . Exit status is 1 when findings
// were reported, 2 on a loading or analysis failure. `make lint` runs
// it over the whole module, and the CI lint step fails a change that
// violates any declared invariant; see DESIGN.md "Static invariants"
// for the pass catalog and the //fleetvet: directive grammar.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if len(patterns) == 1 && (patterns[0] == "-h" || patterns[0] == "-help" || patterns[0] == "--help") {
		fmt.Fprintln(os.Stderr, "usage: fleetvet [packages]")
		fmt.Fprintln(os.Stderr, "passes:")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analysis.Suite(), pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Printf("fleetvet: %d findings\n", n)
		os.Exit(1)
	}
}

// relPath renders a finding path relative to the working directory so
// CI log lines are clickable from the repo root.
func relPath(cwd, path string) string {
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
