// Command doclint enforces the repo's documentation contract: every
// listed package must carry a package-level doc comment, and every
// exported top-level declaration (functions, methods on exported
// receivers, types, constants, and variables) must carry a doc comment.
// It exits non-zero listing each violation, which is how `make docs`
// and the CI docs job fail a change that adds an undocumented API.
//
// Usage:
//
//	doclint ./internal/fleet ./internal/stl ...
//
// Each argument is a package directory; files are parsed directly (no
// build), test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doclint: %d undocumented exported declarations\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file of one package directory and
// returns a problem line per undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	var problems []string
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}

	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, files[0].Name.Name))
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				problems = append(problems, fmt.Sprintf("%s: %s lacks a doc comment", pos(d), declName(d)))
			case *ast.GenDecl:
				if d.Doc != nil && len(d.Specs) == 1 {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && (d.Doc == nil || len(d.Specs) > 1) {
							problems = append(problems, fmt.Sprintf("%s: type %s lacks a doc comment", pos(s), s.Name.Name))
						}
					case *ast.ValueSpec:
						if s.Doc != nil || d.Doc != nil && len(d.Specs) == 1 {
							continue
						}
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							// Inside a documented const/var block, individual
							// specs may ride on the block comment only when
							// the block as a whole is documented.
							if d.Doc != nil {
								continue
							}
							problems = append(problems, fmt.Sprintf("%s: %s lacks a doc comment", pos(s), n.Name))
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// exportedReceiver reports whether a method's receiver base type is
// exported (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch n := t.(type) {
		case *ast.StarExpr:
			t = n.X
		case *ast.IndexExpr: // generic receiver, one type parameter
			t = n.X
		case *ast.IndexListExpr: // generic receiver, two or more type parameters
			t = n.X
		case *ast.Ident:
			return n.IsExported()
		default:
			return false
		}
	}
}

// declName renders a function or method name for the problem line.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}
