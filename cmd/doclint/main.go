// Command doclint enforces the repo's documentation contract: every
// listed package must carry a package-level doc comment, and every
// exported top-level declaration (functions, methods on exported
// receivers, types, constants, and variables) must carry a doc comment.
// It exits non-zero listing each violation.
//
// The rules live in internal/analysis as the doclint pass of the
// fleetvet multichecker; this command is a thin parse-only wrapper kept
// for scripts that lint documentation in isolation. Prefer
// `go run ./cmd/fleetvet ./...` (or `make lint`), which runs doclint
// alongside the determinism, noalloc, and exhaustive passes.
//
// Usage:
//
//	doclint ./internal/fleet ./internal/stl ...
//
// Each argument is a package directory; files are parsed directly (no
// build), test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	pass := analysis.NewDocLint()
	total := 0
	for _, dir := range os.Args[1:] {
		diags, err := lintDir(pass, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Printf("doclint: %d undocumented exported declarations\n", total)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file of one package directory and
// runs the shared doclint pass over them.
func lintDir(pass *analysis.Analyzer, dir string) ([]analysis.Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return analysis.RunSyntactic(pass, fset, files, dir, files[0].Name.Name)
}
