// Command fleetsim drives the streaming fleet engine: N patients x M
// scenarios as concurrent closed-loop sessions on a sharded worker pool,
// with per-session deterministic RNGs, optional CGM sensor noise, and a
// live progress/hazard event stream. With -duration it runs in
// continuous serving mode — completed sessions restart as fresh replicas
// and trace buffers are recycled — and reports sustained throughput;
// without it, the session matrix runs once to completion. With -stl,
// every session streams its per-cycle STL robustness margin (Table I
// rules through the incremental streaming engine, O(window) state per
// session) as hazard telemetry.
//
//	fleetsim -platform glucosym -patients 5 -scenarios 88 -sessions 2000 \
//	         -parallel 8 -duration 30s -seed 1 -noise 2.5 -stl
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	apsmonitor "repro"
	"repro/internal/sensor"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		patients     = flag.Int("patients", 0, "limit to the first N patients (0 = whole cohort)")
		scenarios    = flag.Int("scenarios", 0, "limit to the first M fault scenarios (0 = full 882 matrix)")
		sessions     = flag.Int("sessions", 0, "concurrent session slots (0 = one per patient x scenario)")
		parallel     = flag.Int("parallel", 0, "worker shards (0 = NumCPU)")
		duration     = flag.Duration("duration", 0, "continuous serving mode: run for this long, recycling sessions (0 = run the matrix once)")
		seed         = flag.Int64("seed", 1, "master seed for per-session RNG streams")
		steps        = flag.Int("steps", 150, "control cycles per session")
		noise        = flag.Float64("noise", 0, "CGM sensor noise SD in mg/dL (0 = clean sensor)")
		progress     = flag.Int("progress", 0, "print a progress line every k completed sessions")
		stlTelem     = flag.Bool("stl", false, "stream per-cycle STL robustness margins (Table I rules, streaming engine)")
		stlEvery     = flag.Int("stl-every", 1, "emit a robustness event every k cycles per session")
		verbose      = flag.Bool("v", false, "stream alarm/hazard events (with -stl: also rule-violation margins)")
	)
	flag.Parse()

	platform, err := apsmonitor.PlatformByName(*platformName)
	if err != nil {
		fail(err)
	}
	cfg := apsmonitor.FleetConfig{
		Platform:      apsmonitor.FleetPlatform(platform),
		Sessions:      *sessions,
		Steps:         *steps,
		Parallel:      *parallel,
		Seed:          *seed,
		ProgressEvery: *progress,
	}
	if *patients > 0 {
		for i := 0; i < *patients && i < platform.NumPatients; i++ {
			cfg.Patients = append(cfg.Patients, i)
		}
	}
	if *scenarios > 0 {
		all := apsmonitor.FullCampaign()
		if *scenarios < len(all) {
			all = all[:*scenarios]
		}
		cfg.Scenarios = all
	}
	if *noise > 0 {
		cfg.Sensor = &sensor.Config{NoiseSD: *noise}
	}
	if *stlTelem {
		cfg.Telemetry = &apsmonitor.FleetTelemetryConfig{Every: *stlEvery}
	}

	ctx := context.Background()
	if *duration > 0 {
		cfg.Continuous = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	} else {
		// One-shot fleets can be huge; traces are only summarized here,
		// so recycle them instead of retaining the full matrix.
		cfg.DiscardTraces = true
	}

	events := make(chan apsmonitor.FleetEvent, 256)
	cfg.Events = events
	var telem struct {
		events     int64
		violations int64
		minRob     float64
		minRule    int
	}
	telem.minRob = math.Inf(1)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			switch ev.Kind {
			case apsmonitor.FleetProgress:
				fmt.Println(ev)
			case apsmonitor.FleetAlarm, apsmonitor.FleetHazard:
				if *verbose {
					fmt.Println(ev)
				}
			case apsmonitor.FleetRobustness:
				telem.events++
				if ev.Robustness < 0 {
					telem.violations++
					if *verbose {
						fmt.Println(ev)
					}
				}
				if ev.Robustness < telem.minRob {
					telem.minRob = ev.Robustness
					telem.minRule = ev.Rule
				}
			}
		}
	}()

	start := time.Now()
	res, err := apsmonitor.RunFleet(ctx, cfg)
	close(events)
	<-drained
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	mode := "one-shot"
	if cfg.Continuous {
		mode = "continuous"
	}
	fmt.Printf("fleet: %s on %s, %d session slots, seed %d\n",
		mode, platform.Name, res.Sessions, *seed)
	fmt.Printf("  completed:  %d sessions (%d hazardous, %d alarmed)\n",
		res.Completed, res.Hazardous, res.Alarmed)
	fmt.Printf("  steps:      %d control cycles in %v\n", res.Steps, elapsed.Round(time.Millisecond))
	secs := elapsed.Seconds()
	if secs > 0 {
		fmt.Printf("  throughput: %.0f steps/s, %.1f sessions/s\n",
			float64(res.Steps)/secs, float64(res.Completed)/secs)
	}
	if *stlTelem && telem.events > 0 {
		fmt.Printf("  stl:        %d margins streamed, %d rule violations, min robustness %.3f (rule %d)\n",
			telem.events, telem.violations, telem.minRob, telem.minRule)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
