// Command fleetsim drives the streaming fleet engine: N patients x M
// scenarios as concurrent closed-loop sessions on a sharded worker pool,
// with per-session deterministic RNGs, optional CGM sensor noise, and a
// live progress/hazard event stream. With -duration it runs in
// continuous serving mode — completed sessions restart as fresh replicas
// and trace buffers are recycled — and reports sustained throughput;
// without it, the session matrix runs once to completion.
//
// Each worker shard advances its whole live window's physiology through
// one shard-batched struct-of-arrays integration per control cycle
// (sim.BatchPatient); -step-per-session selects the scalar
// one-integrator-per-session path instead, which is bit-identical per
// session and serves as the differential oracle.
//
// Telemetry: with -stl every session streams its per-cycle STL
// robustness margin — by default each worker shard evaluates its whole
// live window through one shard-batched rule-stream push per cycle
// (bit-identical to the per-session path, which -stl-per-session
// selects). With -monitor cawot the streaming context-aware monitor
// rides in the loop (-monitor cawot-batch evaluates it shard-batched;
// add -mitigate for Algorithm 1, -scale-margin to scale corrections by
// violation depth), and -stl-from-monitor emits the monitor's own
// margins instead of a second rule evaluation. -sink persists the event
// stream: an append-only JSONL log (rotated and retired per
// -sink-rotate-bytes/-sink-rotate-age/-sink-keep), a fixed-size ring
// snapshot, and per-patient margin histograms, in any combination;
// -sharded-sinks buffers events per worker and merges them in canonical
// (parallelism-independent) order — at every -sink-epoch rounds, so
// delivery stays live with bounded buffers (the default for continuous
// serving), or once at completion for finite runs with -sink-epoch 0.
//
// Checkpointing: with -duration, -snapshot drains the fleet at an
// epoch-aligned admission gate when the duration elapses and writes
// every live session's bit-exact state to a sealed file; -restore
// resumes such a file — run with the same seed, platform, and telemetry
// flags, the resumed sink stream continues byte-identically where the
// drained run cut it.
//
//	fleetsim -platform glucosym -patients 5 -scenarios 88 -sessions 2000 \
//	         -parallel 8 -duration 30s -seed 1 -noise 2.5 \
//	         -monitor cawot-batch -mitigate -scale-margin -stl-from-monitor \
//	         -sink log,hist -sink-path events.jsonl \
//	         -sink-rotate-bytes 10000000 -sink-keep 5 \
//	         -sharded-sinks -sink-epoch 64
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	apsmonitor "repro"
	"repro/internal/fault"
	"repro/internal/sensor"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		patients     = flag.Int("patients", 0, "limit to the first N patients (0 = whole cohort)")
		scenarios    = flag.Int("scenarios", 0, "limit to the first M fault scenarios (0 = full 882 matrix)")
		scenarioFile = flag.String("scenario-file", "", "run the scenario programs declared in this file (canonical text form, see internal/fault) instead of the campaign matrix")
		sessions     = flag.Int("sessions", 0, "concurrent session slots (0 = one per patient x scenario)")
		parallel     = flag.Int("parallel", 0, "worker shards (0 = NumCPU)")
		duration     = flag.Duration("duration", 0, "continuous serving mode: run for this long, recycling sessions (0 = run the matrix once)")
		seed         = flag.Int64("seed", 1, "master seed for per-session RNG streams")
		steps        = flag.Int("steps", 150, "control cycles per session")
		noise        = flag.Float64("noise", 0, "CGM sensor noise SD in mg/dL (0 = clean sensor; negative = sensor error channel with AR(1) noise explicitly disabled)")
		stepPerSess  = flag.Bool("step-per-session", false, "advance each session's physiology with its own scalar integrator instead of the shard-batched SoA stepper (bit-identical oracle path)")
		progress     = flag.Int("progress", 0, "print a progress line every k completed sessions")
		monitorName  = flag.String("monitor", "", "attach a safety monitor: cawot (per-session streaming context-aware) or cawot-batch (shard-batched, bit-identical)")
		mitigate     = flag.Bool("mitigate", false, "enable Algorithm 1 mitigation (requires -monitor)")
		scaleMargin  = flag.Bool("scale-margin", false, "scale mitigation corrections by the verdict's violation depth (requires -mitigate)")
		stlTelem     = flag.Bool("stl", false, "stream per-cycle STL robustness margins (Table I rules, shard-batched streaming engine)")
		stlPerSess   = flag.Bool("stl-per-session", false, "evaluate telemetry with one rule set per session instead of the shard-batched engine (requires -stl)")
		stlFromMon   = flag.Bool("stl-from-monitor", false, "emit the monitor's own streaming margins instead of a separate rule set (requires -monitor; implies -stl)")
		stlEvery     = flag.Int("stl-every", 1, "emit a robustness event every k cycles per session")
		sinkList     = flag.String("sink", "", "comma-separated telemetry sinks: log (JSONL append), ring (snapshot buffer), hist (per-patient margin histograms)")
		sinkPath     = flag.String("sink-path", "fleet-events.jsonl", "output path for the log sink")
		sinkRotBytes = flag.Int64("sink-rotate-bytes", 0, "rotate the log sink once the file reaches this many bytes (0 = no size trigger)")
		sinkRotAge   = flag.Duration("sink-rotate-age", 0, "rotate the log sink once the file is this old (0 = no age trigger)")
		sinkKeep     = flag.Int("sink-keep", 0, "retain at most this many rotated log files, deleting older ones (0 = keep all)")
		shardedSinks = flag.Bool("sharded-sinks", false, "buffer sink events per worker and merge in canonical parallelism-independent order")
		sinkEpoch    = flag.Int("sink-epoch", 0, "with -sharded-sinks: merge and deliver buffers every k lock-step rounds (0 = at completion for finite runs; continuous runs default to 64)")
		ringSize     = flag.Int("ring-size", 1024, "ring sink capacity (events)")
		alertFloor   = flag.Float64("alert-floor", math.NaN(), "with -sink hist: record an alert whenever a robustness margin falls below this floor (NaN = off)")
		alertPct     = flag.Float64("alert-pct", math.NaN(), "with -sink hist: record an alert whenever a margin falls below this percentile of the observed distribution, e.g. 0.05 for a p05 floor (NaN = off)")
		verbose      = flag.Bool("v", false, "stream alarm/hazard events (with -stl: also rule-violation margins)")
		snapshotPath = flag.String("snapshot", "", "with -duration: drain the fleet at an epoch-aligned admission gate when the duration elapses and write the sealed snapshot here")
		restorePath  = flag.String("restore", "", "with -duration: resume a fleet from a -snapshot file instead of dealing fresh sessions (requires the same seed, platform, and telemetry flags as the drained run)")
	)
	flag.Parse()

	platform, err := apsmonitor.PlatformByName(*platformName)
	if err != nil {
		fail(err)
	}
	cfg := apsmonitor.FleetConfig{
		Platform:      apsmonitor.FleetPlatform(platform),
		Sessions:      *sessions,
		Steps:         *steps,
		Parallel:      *parallel,
		Seed:          *seed,
		ProgressEvery: *progress,
	}
	if *patients > 0 {
		for i := 0; i < *patients && i < platform.NumPatients; i++ {
			cfg.Patients = append(cfg.Patients, i)
		}
	}
	// The scenario table is always declared explicitly — continuous mode
	// (fleet.Config.Validate) refuses to default a serving fleet to the
	// full 882-scenario campaign silently.
	if *scenarioFile != "" {
		if *scenarios > 0 {
			fail(fmt.Errorf("-scenario-file replaces the campaign matrix; drop -scenarios"))
		}
		text, err := os.ReadFile(*scenarioFile)
		if err != nil {
			fail(err)
		}
		progs, err := fault.ParsePrograms(string(text))
		if err != nil {
			fail(fmt.Errorf("%s: %w", *scenarioFile, err))
		}
		cfg.Scenarios = progs
	} else {
		table := fault.CampaignPrograms(nil)
		if *scenarios > 0 && *scenarios < len(table) {
			table = table[:*scenarios]
		}
		cfg.Scenarios = table
	}
	if *noise != 0 {
		// Negative means "sensor model on, AR(1) noise explicitly off":
		// calibration gain/drift and dropout behavior still apply, which
		// is distinct from the clean pass-through sensor at 0.
		cfg.Sensor = &sensor.Config{NoiseSD: *noise}
	}
	cfg.PerSessionStepping = *stepPerSess
	switch *monitorName {
	case "":
		if *mitigate || *stlFromMon {
			fail(fmt.Errorf("-mitigate and -stl-from-monitor require -monitor"))
		}
	case "cawot":
		cfg.NewMonitor = func(int) (apsmonitor.Monitor, error) {
			return apsmonitor.NewCAWOTMonitor(apsmonitor.TableI())
		}
	case "cawot-batch":
		cfg.NewBatchMonitor = func() (apsmonitor.BatchMonitor, error) {
			return apsmonitor.NewBatchCAWOTMonitor(apsmonitor.TableI())
		}
	default:
		fail(fmt.Errorf("unknown monitor %q (want cawot or cawot-batch)", *monitorName))
	}
	cfg.Mitigate = *mitigate
	if *scaleMargin {
		if !*mitigate {
			fail(fmt.Errorf("-scale-margin requires -mitigate"))
		}
		cfg.Mitigation.ScaleByMargin = true
	}
	if *stlPerSess && !*stlTelem {
		fail(fmt.Errorf("-stl-per-session requires -stl"))
	}
	if *sinkEpoch != 0 && !*shardedSinks {
		fail(fmt.Errorf("-sink-epoch requires -sharded-sinks (it paces sharded delivery)"))
	}
	if *sinkKeep > 0 && *sinkRotBytes <= 0 && *sinkRotAge <= 0 {
		fail(fmt.Errorf("-sink-keep requires a rotation trigger (-sink-rotate-bytes or -sink-rotate-age)"))
	}
	if *shardedSinks && *sinkList == "" {
		fail(fmt.Errorf("-sharded-sinks requires -sink (it shards sink delivery)"))
	}
	if (*sinkRotBytes > 0 || *sinkRotAge > 0) && !sinkSelected(*sinkList, "log") {
		fail(fmt.Errorf("-sink-rotate-bytes/-sink-rotate-age apply to the log sink; add -sink log"))
	}
	if !math.IsNaN(*alertFloor) && !sinkSelected(*sinkList, "hist") {
		fail(fmt.Errorf("-alert-floor applies to the histogram sink; add -sink hist"))
	}
	if !math.IsNaN(*alertPct) && !sinkSelected(*sinkList, "hist") {
		fail(fmt.Errorf("-alert-pct applies to the histogram sink; add -sink hist"))
	}
	if *stlTelem || *stlFromMon {
		cfg.Telemetry = &apsmonitor.FleetTelemetryConfig{
			Every:       *stlEvery,
			FromMonitor: *stlFromMon,
			PerSession:  *stlPerSess,
		}
	}

	var (
		logSink  *apsmonitor.FleetLogSink
		logFile  *os.File
		ringSink *apsmonitor.FleetRingSink
		histSink *apsmonitor.FleetHistSink
	)
	cfg.ShardedSinks = *shardedSinks
	cfg.SinkEpoch = *sinkEpoch
	if *sinkList != "" {
		for _, name := range strings.Split(*sinkList, ",") {
			switch strings.TrimSpace(name) {
			case "log":
				if *sinkRotBytes > 0 || *sinkRotAge > 0 {
					// With a rotation policy the sink owns its file: it
					// appends across restarts (numbering resumes past
					// existing rotated files) and rotates/retires per the
					// policy, bounding disk for continuous serving.
					logSink, err = apsmonitor.NewRotatingFleetLogSink(*sinkPath, apsmonitor.FleetLogRotation{
						MaxBytes: *sinkRotBytes,
						MaxAge:   *sinkRotAge,
						Keep:     *sinkKeep,
					})
					if err != nil {
						fail(err)
					}
				} else {
					// Without rotation each run replaces the file, so the
					// artifact is exactly one run's event stream.
					if logFile, err = os.Create(*sinkPath); err != nil {
						fail(err)
					}
					logSink = apsmonitor.NewFleetLogSink(logFile)
				}
				cfg.Sinks = append(cfg.Sinks, logSink)
			case "ring":
				if ringSink, err = apsmonitor.NewFleetRingSink(*ringSize); err != nil {
					fail(err)
				}
				cfg.Sinks = append(cfg.Sinks, ringSink)
			case "hist":
				// Margins are robustness units (min across mg/dL-, mg/dL/min-
				// and U-scaled atoms); the serving distribution concentrates
				// in single digits.
				if histSink, err = apsmonitor.NewFleetHistSink(-5, 5, 50); err != nil {
					fail(err)
				}
				if !math.IsNaN(*alertFloor) {
					histSink.SetAlertFloor(*alertFloor, nil)
				}
				if !math.IsNaN(*alertPct) {
					if err := histSink.SetAlertPercentile(*alertPct, 0, nil); err != nil {
						fail(err)
					}
				}
				cfg.Sinks = append(cfg.Sinks, histSink)
			default:
				fail(fmt.Errorf("unknown sink %q (want log, ring, or hist)", name))
			}
		}
	}

	// Checkpointing rides the admission-gate protocol: -snapshot drains
	// the fleet at an epoch-aligned gate into a sealed file, -restore
	// resumes one. Both therefore attach an admission controller and
	// require continuous mode, and with sharded sinks the gate period is
	// pinned to the sink epoch so every gate is drain-aligned.
	var adm *apsmonitor.FleetAdmissions
	var restored *apsmonitor.FleetSnapshot
	if *snapshotPath != "" || *restorePath != "" {
		if *duration <= 0 {
			fail(fmt.Errorf("-snapshot and -restore require -duration (the drain lands on a continuous fleet's admission gate)"))
		}
		adm = apsmonitor.NewFleetAdmissions()
		cfg.Admissions = adm
		if *shardedSinks {
			epoch := *sinkEpoch
			if epoch == 0 {
				epoch = 64 // the continuous-mode default the fleet would pick
			}
			cfg.AdmitEvery = epoch
		}
		if *restorePath != "" {
			data, err := os.ReadFile(*restorePath)
			if err != nil {
				fail(err)
			}
			if restored, err = apsmonitor.DecodeFleetSnapshot(data); err != nil {
				fail(err)
			}
			cfg.Restore = restored
			cfg.Sessions = 0 // the snapshot replaces the static slot set
		} else if cfg.Sessions == 0 {
			// An admission-controlled fleet does not default to the full
			// matrix on its own; mirror the one-per-pair default here.
			nP := len(cfg.Patients)
			if nP == 0 {
				nP = platform.NumPatients
			}
			cfg.Sessions = nP * len(cfg.Scenarios)
		}
		cfg.MaxSessions = cfg.Sessions
		if restored != nil && len(restored.Sessions) > cfg.MaxSessions {
			cfg.MaxSessions = len(restored.Sessions)
		}
		if cfg.MaxSessions == 0 {
			cfg.MaxSessions = 1
		}
	}

	ctx := context.Background()
	if *duration > 0 {
		cfg.Continuous = true
		if *snapshotPath == "" {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *duration)
			defer cancel()
		}
	} else {
		// One-shot fleets can be huge; traces are only summarized here,
		// so recycle them instead of retaining the full matrix.
		cfg.DiscardTraces = true
	}

	// With -snapshot the duration ends the run through a terminal drain
	// instead of a context cancellation: the drain gate serializes every
	// live session and RunFleet returns cleanly.
	var snapCh chan *apsmonitor.FleetSnapshot
	if *snapshotPath != "" {
		snapCh = make(chan *apsmonitor.FleetSnapshot, 1)
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			time.Sleep(*duration)
			dr := <-adm.Drain()
			if dr.Err != nil {
				fmt.Fprintln(os.Stderr, "fleetsim: snapshot drain:", dr.Err)
				snapCh <- nil
				cancel() // the fleet kept running; stop it the plain way
				return
			}
			snapCh <- dr.Snapshot
		}()
	}

	events := make(chan apsmonitor.FleetEvent, 256)
	cfg.Events = events
	var telem struct {
		events     int64
		violations int64
		minMargin  float64
		minRule    int
	}
	telem.minMargin = math.Inf(1)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			switch ev.Kind {
			case apsmonitor.FleetSessionStart, apsmonitor.FleetSessionDone, apsmonitor.FleetSessionEvict:
				// Lifecycle events are summarized from FleetResult after
				// the run; streaming them would drown the progress log.
				// (Evictions only occur on admission-controlled fleets —
				// fleetd's territory — never in this CLI.)
			case apsmonitor.FleetProgress:
				fmt.Println(ev)
			case apsmonitor.FleetAlarm, apsmonitor.FleetHazard:
				if *verbose {
					fmt.Println(ev)
				}
			case apsmonitor.FleetRobustness:
				telem.events++
				if ev.Margin < 0 {
					telem.violations++
					if *verbose {
						fmt.Println(ev)
					}
				}
				if ev.Margin < telem.minMargin {
					telem.minMargin = ev.Margin
					telem.minRule = ev.MarginRule
				}
			}
		}
	}()

	start := time.Now()
	res, err := apsmonitor.RunFleet(ctx, cfg)
	close(events)
	<-drained
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	mode := "one-shot"
	if cfg.Continuous {
		mode = "continuous"
	}
	fmt.Printf("fleet: %s on %s, %d session slots, seed %d\n",
		mode, platform.Name, res.Sessions, *seed)
	fmt.Printf("  completed:  %d sessions (%d hazardous, %d alarmed)\n",
		res.Completed, res.Hazardous, res.Alarmed)
	fmt.Printf("  steps:      %d control cycles in %v\n", res.Steps, elapsed.Round(time.Millisecond))
	secs := elapsed.Seconds()
	if secs > 0 {
		fmt.Printf("  throughput: %.0f steps/s, %.1f sessions/s\n",
			float64(res.Steps)/secs, float64(res.Completed)/secs)
	}
	if cfg.Telemetry != nil && telem.events > 0 {
		fmt.Printf("  stl:        %d margins streamed, %d rule violations, min margin %.3f (rule %d)\n",
			telem.events, telem.violations, telem.minMargin, telem.minRule)
	}
	if restored != nil {
		fmt.Printf("  restored:   %d sessions from %s\n", len(restored.Sessions), *restorePath)
	}
	if snapCh != nil {
		if snap := <-snapCh; snap != nil {
			sealed := snap.Encode()
			if err := os.WriteFile(*snapshotPath, sealed, 0o600); err != nil {
				fail(err)
			}
			fmt.Printf("  snapshot:   %d sessions (%d bytes) -> %s\n", len(snap.Sessions), len(sealed), *snapshotPath)
		}
	}
	if logSink != nil {
		fmt.Printf("  log sink:   %d events -> %s", logSink.Written(), *sinkPath)
		if n := logSink.Rotations(); n > 0 {
			fmt.Printf(" (%d rotations, %d rotated files retained)", n, len(logSink.RotatedFiles()))
		}
		fmt.Println()
		if err := logSink.Close(); err != nil {
			fail(err)
		}
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				fail(err)
			}
		}
	}
	if ringSink != nil {
		snap := ringSink.Snapshot()
		fmt.Printf("  ring sink:  %d events retained of %d seen; newest:\n", len(snap), ringSink.Total())
		for i := len(snap) - 3; i < len(snap); i++ {
			if i >= 0 {
				fmt.Printf("    %s\n", snap[i])
			}
		}
	}
	if histSink != nil {
		fmt.Printf("  hist sink:\n")
		for _, line := range strings.Split(strings.TrimRight(histSink.Render(), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
		if !math.IsNaN(*alertFloor) || !math.IsNaN(*alertPct) {
			var floors []string
			if !math.IsNaN(*alertFloor) {
				floors = append(floors, fmt.Sprintf("floor %.3f", *alertFloor))
			}
			if !math.IsNaN(*alertPct) {
				if f, live := histSink.AlertPercentileFloor(); live {
					floors = append(floors, fmt.Sprintf("p%g floor %.3f", *alertPct*100, f))
				} else {
					floors = append(floors, fmt.Sprintf("p%g floor (not enough samples)", *alertPct*100))
				}
			}
			fmt.Printf("  alerts:     %d margins below %s\n", histSink.AlertCount(), strings.Join(floors, ", "))
			alerts := histSink.Alerts()
			for i := len(alerts) - 3; i < len(alerts); i++ {
				if i >= 0 {
					a := alerts[i]
					fmt.Printf("    session %d (patient %d) margin %.3f (rule %d) at step %d\n",
						a.Session, a.PatientIdx, a.Margin, a.Rule, a.Step)
				}
			}
		}
	}
}

// sinkSelected reports whether the comma-separated -sink list names the
// given sink.
func sinkSelected(list, name string) bool {
	for _, s := range strings.Split(list, ",") {
		if strings.TrimSpace(s) == name {
			return true
		}
	}
	return false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
