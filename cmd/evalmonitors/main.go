// Command evalmonitors reproduces the monitor-accuracy comparison of
// Tables V and VI and the reaction-time analysis of Fig. 9 for one
// platform: it runs the campaign, trains the monitor suite on the
// training folds, and evaluates every monitor on the held-out fold.
package main

import (
	"flag"
	"fmt"
	"os"

	apsmonitor "repro"
	"repro/internal/experiment"
	"repro/internal/stllearn"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		thin         = flag.Int("thin", 1, "run every k-th campaign scenario")
		seed         = flag.Int64("seed", 1, "training seed")
	)
	flag.Parse()
	if err := run(*platformName, *thin, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "evalmonitors:", err)
		os.Exit(1)
	}
}

func run(platformName string, thin int, seed int64) error {
	platform, err := apsmonitor.PlatformByName(platformName)
	if err != nil {
		return err
	}
	fmt.Printf("running campaign on %s...\n", platform.Name)
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  platform,
		Scenarios: apsmonitor.QuickScenarios(thin),
	})
	if err != nil {
		return err
	}
	folds := stllearn.Folds(traces, 4)
	train := stllearn.TrainingSet(folds, 0)
	test := folds[0]
	faultFree, err := apsmonitor.RunFaultFree(platform, nil)
	if err != nil {
		return err
	}
	fmt.Printf("training monitor suite on %d traces...\n", len(train))
	suite, err := apsmonitor.BuildSuite(platform, train, faultFree, apsmonitor.SuiteConfig{Seed: seed})
	if err != nil {
		return err
	}
	evals, err := suite.EvaluateAll(nil, test)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(experiment.RenderEvals(
		fmt.Sprintf("Tables V & VI — monitors on %s (held-out fold, %d traces)", platform.Name, len(test)),
		evals))
	fmt.Println()
	fmt.Print(experiment.RenderReaction(evals))
	fmt.Println()
	fmt.Print(experiment.RenderRuleAttribution(evals))
	return nil
}
