// Command learnmonitor runs a fault-injection campaign and learns the
// patient-specific STL thresholds of the CAWT monitor (Section III-C2),
// printing each Table I rule with its learned β and the resulting STL
// formula.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	apsmonitor "repro"
	"repro/internal/scs"
	"repro/internal/stllearn"
)

func main() {
	var (
		platformName = flag.String("platform", "glucosym", "platform: glucosym or t1ds2013")
		thin         = flag.Int("thin", 4, "run every k-th campaign scenario")
		patient      = flag.Int("patient", -1, "learn for one patient (-1 = population)")
		lossName     = flag.String("loss", "TMEE", "tightness loss: TMEE, TeLEx, MSE, MAE")
	)
	flag.Parse()

	if err := run(*platformName, *thin, *patient, *lossName); err != nil {
		fmt.Fprintln(os.Stderr, "learnmonitor:", err)
		os.Exit(1)
	}
}

func run(platformName string, thin, patient int, lossName string) error {
	platform, err := apsmonitor.PlatformByName(platformName)
	if err != nil {
		return err
	}
	loss, err := stllearn.LossByName(lossName)
	if err != nil {
		return err
	}
	cfg := apsmonitor.CampaignConfig{
		Platform:  platform,
		Scenarios: apsmonitor.QuickScenarios(thin),
	}
	if patient >= 0 {
		cfg.Patients = []int{patient}
	}
	fmt.Printf("running campaign on %s...\n", platform.Name)
	traces, err := apsmonitor.RunCampaign(cfg)
	if err != nil {
		return err
	}
	hazardous := 0
	for _, tr := range traces {
		if tr.Hazardous() {
			hazardous++
		}
	}
	fmt.Printf("%d simulations, %d hazardous (%.1f%% coverage)\n\n",
		len(traces), hazardous, 100*apsmonitor.HazardCoverage(traces))

	rules := apsmonitor.TableI()
	th, report, err := apsmonitor.LearnThresholds(rules, traces, apsmonitor.LearnConfig{Loss: loss})
	if err != nil {
		return err
	}
	sort.Slice(report.Rules, func(i, j int) bool { return report.Rules[i].RuleID < report.Rules[j].RuleID })
	fmt.Printf("learned thresholds (%s loss, %d examples total):\n\n", loss.Name(), report.TotalExamples)
	params := scs.Params{}.WithDefaults()
	for _, r := range rules {
		rr := report.Rules[r.ID-1]
		origin := "learned"
		if rr.UsedDefault {
			origin = "default (no matching examples)"
		}
		fmt.Printf("rule %-2d  β = %8.3f  (%s, n=%d)\n", r.ID, th[r.ID], origin, rr.Examples)
		fmt.Printf("         %s\n\n", r.GlobalSTL(params, th[r.ID]))
	}
	return nil
}
