// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark measures
// the cost of reproducing its artifact from a prepared campaign fixture
// and reports the headline numbers via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a results summary:
//
//   - Fig. 3: loss-function curves
//   - Figs. 7a/7b, 8: baseline resilience analysis
//   - Tables V/VI, Fig. 9: monitor accuracy and timeliness
//   - Table VII: mitigation study
//   - Table VIII: patient-specific vs population thresholds
//   - Section V-E6: per-cycle monitor overhead (the ns/op of
//     BenchmarkMonitorOverhead/* is the paper's resource-utilization row)
//   - Section VI: ablations
//
// Campaign scale: the fixture thins the 882-scenario matrix by 8 to keep
// a full bench run in minutes; cmd/experiments -thin 1 runs paper scale.
package apsmonitor_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	apsmonitor "repro"
	"repro/internal/closedloop"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/ml"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sim"
	"repro/internal/sim/glucosym"
	"repro/internal/sim/uvapadova"
	"repro/internal/stl"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

type fixture struct {
	platform  experiment.Platform
	traces    []*trace.Trace
	train     []*trace.Trace
	test      []*trace.Trace
	faultFree []*trace.Trace
	suite     *experiment.Suite
}

var (
	fixtures  = map[string]*fixture{}
	fixtureMu sync.Mutex
	benchSeed = int64(1)
	benchThin = 8
)

// getFixture lazily builds the campaign + suite for a platform.
func getFixture(b *testing.B, platformName string) *fixture {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[platformName]; ok {
		return f
	}
	platform, err := experiment.PlatformByName(platformName)
	if err != nil {
		b.Fatal(err)
	}
	traces, err := experiment.Run(experiment.CampaignConfig{
		Platform:  platform,
		Scenarios: experiment.ScenarioSubset(benchThin),
	})
	if err != nil {
		b.Fatal(err)
	}
	folds := stllearn.Folds(traces, 4)
	train := stllearn.TrainingSet(folds, 0)
	test := folds[0]
	faultFree, err := experiment.FaultFree(platform, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	suite, err := experiment.BuildSuite(platform, train, faultFree, experiment.SuiteConfig{
		Seed: benchSeed, MaxMLSamples: 10000, MaxLSTMWindows: 2000,
		MLPEpochs: 8, LSTMEpochs: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{
		platform: platform, traces: traces, train: train, test: test,
		faultFree: faultFree, suite: suite,
	}
	fixtures[platformName] = f
	return f
}

func BenchmarkFig3LossFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := experiment.LossCurves(-2, 4, 121)
		if len(curves.Curves) != 4 {
			b.Fatal("missing curves")
		}
	}
}

func BenchmarkFig7aHazardCoverage(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	var overall float64
	for i := 0; i < b.N; i++ {
		overall = experiment.HazardCoverageByPatient(f.traces).Overall
	}
	b.ReportMetric(100*overall, "coverage_%")
}

func BenchmarkFig7bTTH(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	var st apsmonitor.TTHStats
	for i := 0; i < b.N; i++ {
		st = experiment.TTHDistribution(f.traces)
	}
	b.ReportMetric(st.MeanMin, "mean_TTH_min")
	b.ReportMetric(100*st.NegativeFrac, "negative_TTH_%")
}

func BenchmarkFig8FaultTypes(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiment.CoverageByFaultAndBG(f.traces)
		if len(m.Faults) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// benchTableV measures the non-ML monitor comparison on one platform.
func benchTableV(b *testing.B, platformName string) {
	f := getFixture(b, platformName)
	names := []string{"Guideline", "MPC", "CAWOT", "CAWT"}
	b.ResetTimer()
	var evals []experiment.Eval
	for i := 0; i < b.N; i++ {
		var err error
		evals, err = f.suite.EvaluateAll(names, f.test)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, ev := range evals {
		if ev.Monitor == "CAWT" {
			b.ReportMetric(ev.Sample.F1(), "CAWT_F1")
			b.ReportMetric(ev.Sample.FPR(), "CAWT_FPR")
		}
		if ev.Monitor == "Guideline" {
			b.ReportMetric(ev.Sample.F1(), "Guideline_F1")
		}
	}
}

func BenchmarkTableVNonMLGlucosym(b *testing.B) { benchTableV(b, "glucosym") }
func BenchmarkTableVNonMLT1DS2013(b *testing.B) { benchTableV(b, "t1ds2013") }

func BenchmarkTableVIML(b *testing.B) {
	f := getFixture(b, "glucosym")
	names := []string{"CAWT", "DT", "MLP", "LSTM"}
	b.ResetTimer()
	var evals []experiment.Eval
	for i := 0; i < b.N; i++ {
		var err error
		evals, err = f.suite.EvaluateAll(names, f.test)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, ev := range evals {
		switch ev.Monitor {
		case "CAWT":
			b.ReportMetric(ev.Simulation.F1(), "CAWT_simF1")
		case "DT":
			b.ReportMetric(ev.Simulation.FPR(), "DT_simFPR")
		case "LSTM":
			b.ReportMetric(ev.Sample.F1(), "LSTM_F1")
		}
	}
}

func BenchmarkFig9ReactionTime(b *testing.B) {
	f := getFixture(b, "glucosym")
	m, err := f.suite.NewMonitor("CAWT", f.test[0].PatientID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rt apsmonitor.ReactionStats
	for i := 0; i < b.N; i++ {
		for _, tr := range f.test {
			monitor.Annotate(m, tr)
		}
		rt = apsmonitor.ReactionTime(f.test)
	}
	b.ReportMetric(rt.MeanMin, "CAWT_reaction_min")
	b.ReportMetric(100*rt.EarlyRate, "CAWT_EDR_%")
}

func BenchmarkTableVIIMitigation(b *testing.B) {
	f := getFixture(b, "glucosym")
	scenarios := experiment.ScenarioSubset(benchThin * 8)
	baseline, err := experiment.Run(experiment.CampaignConfig{
		Platform: f.platform, Scenarios: scenarios,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res experiment.MitigationResult
	for i := 0; i < b.N; i++ {
		res, err = f.suite.EvaluateMitigation("CAWT", baseline, experiment.CampaignConfig{
			Scenarios: scenarios,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Outcome.RecoveryRate, "recovery_%")
	b.ReportMetric(float64(res.Outcome.NewHazards), "new_hazards")
	b.ReportMetric(res.Outcome.AverageRisk, "avg_risk")
}

func BenchmarkTableVIIIPatientSpecific(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	var rows []experiment.PatientVsPopulation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = f.suite.TableVIII(f.test, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	var specF1, popF1 float64
	for _, r := range rows {
		specF1 += r.Specific.Sample.F1()
		popF1 += r.Pop.Sample.F1()
	}
	if n := float64(len(rows)); n > 0 {
		b.ReportMetric(specF1/n, "specific_F1")
		b.ReportMetric(popF1/n, "population_F1")
	}
}

// BenchmarkMonitorOverhead is the Section V-E6 resource-utilization
// comparison: ns/op is the per-cycle decision cost of each monitor.
func BenchmarkMonitorOverhead(b *testing.B) {
	f := getFixture(b, "glucosym")
	obs := experiment.ObservationForBench()
	for _, name := range experiment.MonitorNames {
		b.Run(name, func(b *testing.B) {
			m, err := f.suite.NewMonitor(name, "glucosym-0")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(obs)
			}
		})
	}
}

func BenchmarkAblationLossFunctions(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	var rows []experiment.LossAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.LossAblation(f.train, f.test)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Loss == "TMEE" {
			b.ReportMetric(r.Eval.Sample.F1(), "TMEE_F1")
		}
		if r.Loss == "TeLEx" {
			b.ReportMetric(r.Eval.Sample.F1(), "TeLEx_F1")
		}
	}
}

func BenchmarkAblationAdversarialTraining(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	var res experiment.AdversarialAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.AdversarialAblation(f.faultFree, f.train, f.test)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Adversarial.Sample.F1(), "adversarial_F1")
	b.ReportMetric(res.FaultFreeTrained.Sample.F1(), "faultfree_F1")
}

func BenchmarkAblationFaultFreeGeneralization(b *testing.B) {
	f := getFixture(b, "glucosym")
	names := []string{"CAWT", "DT"}
	b.ResetTimer()
	var rows []experiment.FaultFreeGeneralization
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = f.suite.EvaluateFaultFreeGeneralization(names, f.test, f.faultFree)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Monitor == "DT" {
			b.ReportMetric(r.FaultFreeFPR, "DT_cleanFPR")
		}
		if r.Monitor == "CAWT" {
			b.ReportMetric(r.FaultFreeFPR, "CAWT_cleanFPR")
		}
	}
}

// BenchmarkClosedLoopSimulation measures one full 150-cycle simulation —
// the unit of work behind every campaign number.
func BenchmarkClosedLoopSimulation(b *testing.B) {
	platform := experiment.Glucosym()
	scenario := experiment.ScenarioSubset(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiment.Run(experiment.CampaignConfig{
			Platform:  platform,
			Patients:  []int{0},
			Scenarios: []apsmonitor.Scenario{scenario},
			Parallel:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSessionStep measures the fleet session hot path: one
// control cycle of a streaming closed-loop session (sensor read,
// controller decision, patient step, IOB bookkeeping) with pooled
// sample buffers. ns/op is the per-cycle cost behind every fleet
// throughput number.
func BenchmarkFleetSessionStep(b *testing.B) {
	platform := experiment.Glucosym()
	scenario := experiment.ScenarioSubset(1)[0]
	cfg := fleet.Config{
		Platform:      fleet.Platform(platform),
		Patients:      []int{0},
		Scenarios:     []apsmonitor.Program{scenario.Program()},
		Steps:         b.N,
		Parallel:      1,
		DiscardTraces: true,
	}
	b.ResetTimer()
	if _, err := fleet.Run(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
}

// benchPaperMLP trains the paper's 256-128 MLP architecture on a small
// synthetic feature set (the benchmark measures inference, not training
// quality).
func benchPaperMLP(b *testing.B) *ml.MLP {
	b.Helper()
	rng := rand.New(rand.NewSource(benchSeed))
	X := make([][]float64, 512)
	y := make([]int, len(X))
	for i := range X {
		row := make([]float64, monitor.FeatureDim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = rng.Intn(2)
	}
	m, err := ml.FitMLP(X, y, ml.MLPConfig{Epochs: 1, Patience: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFleetMonitorInference100 is the batching payoff at fleet
// scale: evaluating one control cycle of 100 concurrent sessions with
// the paper's MLP monitor, per-session (100 forward passes, each
// streaming the full weight matrices) versus batched (one tiled
// inference call per shard). The batched path is the fleet engine's
// NewBatchMonitor mode; verdicts are bit-identical.
func BenchmarkFleetMonitorInference100(b *testing.B) {
	const sessions = 100
	mlp := benchPaperMLP(b)
	obs := make([]monitor.Observation, sessions)
	rng := rand.New(rand.NewSource(2))
	for k := range obs {
		obs[k] = monitor.Observation{
			CGM: 60 + 250*rng.Float64(), BGPrime: rng.NormFloat64(),
			IOB: 5 * rng.Float64(), IOBPrime: rng.NormFloat64() * 0.1,
			Rate: 4 * rng.Float64(), Action: trace.ActionKeep,
		}
	}

	b.Run("per-session", func(b *testing.B) {
		mons := make([]monitor.Monitor, sessions)
		for k := range mons {
			m, err := monitor.NewMLMonitor("MLP", mlp)
			if err != nil {
				b.Fatal(err)
			}
			mons[k] = m
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k, m := range mons {
				m.Step(obs[k])
			}
		}
		b.ReportMetric(float64(b.N)*sessions/b.Elapsed().Seconds(), "inferences/s")
	})
	b.Run("batched", func(b *testing.B) {
		bm, err := monitor.NewBatchML("MLP", mlp.NewBatch())
		if err != nil {
			b.Fatal(err)
		}
		bm.ResetLanes(sessions)
		lanes := make([]int, sessions)
		for k := range lanes {
			lanes[k] = k
		}
		out := make([]monitor.Verdict, sessions)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bm.StepBatch(lanes, obs, out)
		}
		b.ReportMetric(float64(b.N)*sessions/b.Elapsed().Seconds(), "inferences/s")
	})
}

// BenchmarkFleetEngine100Sessions measures end-to-end engine throughput
// (steps/s) for a 100-session fleet with the MLP monitor attached,
// per-session versus batched per shard.
func BenchmarkFleetEngine100Sessions(b *testing.B) {
	mlp := benchPaperMLP(b)
	platform := experiment.Glucosym()
	base := fleet.Config{
		Platform:      fleet.Platform(platform),
		Patients:      []int{0, 1, 2, 3},
		Scenarios:     apsmonitor.Programs(experiment.ScenarioSubset(36)), // 25 scenarios
		Sessions:      100,
		Steps:         50,
		DiscardTraces: true,
	}
	run := func(b *testing.B, cfg fleet.Config) {
		var steps int64
		for i := 0; i < b.N; i++ {
			res, err := fleet.Run(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("per-session", func(b *testing.B) {
		cfg := base
		cfg.NewMonitor = func(int) (monitor.Monitor, error) {
			return monitor.NewMLMonitor("MLP", mlp)
		}
		run(b, cfg)
	})
	b.Run("batched", func(b *testing.B) {
		cfg := base
		cfg.NewBatchMonitor = func() (monitor.BatchMonitor, error) {
			return monitor.NewBatchML("MLP", mlp.NewBatch())
		}
		run(b, cfg)
	})
}

// stlPusher is the shared surface of the streaming OnlineMonitor and
// the legacy trace-backed TraceMonitor.
type stlPusher interface {
	Push(sample map[string]float64) (bool, error)
	Len() int
	Reset()
}

// stlBenchFormula mixes unbounded and bounded past operators: the
// unbounded Historically forces the legacy monitor to rescan the whole
// trace on every push, while the streaming engine keeps O(1) state
// recursions and O(window) deques.
var stlBenchFormula = apsmonitor.MustParseSTL(
	"(H (BG > 10)) and ((BG > 150) S[0,180] (IOB < 0.5)) and O[0,60] (BG > 180)")

// benchSTLOnlinePush measures the per-push cost of an online STL
// monitor at session length ~n: the monitor is warmed with n pushes
// (untimed) and rewarmed whenever the session grows 25% past n, so
// ns/op is the marginal cost of one control cycle at that length.
func benchSTLOnlinePush(b *testing.B, m stlPusher, n int) {
	sample := make(map[string]float64, 2)
	push := func() {
		i := m.Len()
		sample["BG"] = 60 + float64((i*7919)%240)
		sample["IOB"] = float64((i*104729)%60)/10 - 1
		if _, err := m.Push(sample); err != nil {
			b.Fatal(err)
		}
	}
	warm := func() {
		m.Reset()
		for m.Len() < n {
			push()
		}
	}
	warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Len() > n+n/4 {
			b.StopTimer()
			warm()
			b.StartTimer()
		}
		push()
	}
}

// BenchmarkCAWTStep compares the streaming context-aware monitor (one
// hash-consed scs.StreamSet push per cycle, yielding alarm + margin +
// rule attribution) against the legacy eager per-rule evaluator (alarm
// only). The acceptance bar for the verdict-API redesign is streaming
// no slower than legacy while carrying strictly more information.
func BenchmarkCAWTStep(b *testing.B) {
	rules := apsmonitor.TableI()
	// A deterministic observation stream covering safe and violating
	// contexts (same sequence for both monitors).
	rng := rand.New(rand.NewSource(9))
	obs := make([]monitor.Observation, 512)
	for i := range obs {
		obs[i] = monitor.Observation{
			Step: i, TimeMin: float64(i) * 5, CycleMin: 5,
			CGM:     40 + 300*rng.Float64(),
			BGPrime: -6 + 12*rng.Float64(),
			IOB:     -2 + 10*rng.Float64(), IOBPrime: -0.05 + 0.1*rng.Float64(),
			Action: trace.Action(1 + rng.Intn(4)),
		}
	}
	b.Run("streaming", func(b *testing.B) {
		m, err := monitor.NewCAWOT(rules, scs.Params{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		alarms := 0
		for i := 0; i < b.N; i++ {
			if m.Step(obs[i%len(obs)]).Alarm {
				alarms++
			}
		}
		_ = alarms
	})
	b.Run("legacy", func(b *testing.B) {
		m, err := monitor.NewContextAwareLegacy("CAWOT", rules, nil, scs.Params{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		alarms := 0
		for i := 0; i < b.N; i++ {
			if m.Step(obs[i%len(obs)]).Alarm {
				alarms++
			}
		}
		_ = alarms
	})
}

// BenchmarkSTLOnlinePush is the before/after comparison of the
// streaming STL engine against the legacy grow-forever-trace monitor:
// streaming ns/op stays flat from 1k-push to 100k-push sessions, while
// the legacy monitor's per-push cost grows linearly with session length
// (its sizes stop at 8k because even warming it up is quadratic work).
func BenchmarkSTLOnlinePush(b *testing.B) {
	streaming := func(b *testing.B) stlPusher {
		m, err := stl.NewOnlineMonitor(stlBenchFormula, 5)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	legacy := func(b *testing.B) stlPusher {
		m, err := stl.NewTraceMonitor(stlBenchFormula, 5)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("streaming-%d", n), func(b *testing.B) {
			benchSTLOnlinePush(b, streaming(b), n)
		})
	}
	for _, n := range []int{1_000, 8_000} {
		b.Run(fmt.Sprintf("legacy-%d", n), func(b *testing.B) {
			benchSTLOnlinePush(b, legacy(b), n)
		})
	}
}

// nullSink counts events and discards them — the cheapest possible
// consumer, isolating delivery cost from serialization cost.
type nullSink struct{ n int64 }

func (s *nullSink) Emit(fleet.Event) error { s.n++; return nil }
func (s *nullSink) Flush() error           { return nil }

// BenchmarkFleetTelemetry measures the marginal cost of streaming STL
// hazard telemetry on a 100-session fleet against the no-telemetry
// baseline, across the delivery/evaluation shapes:
//
//   - per-session: one scs.StreamSet per session, events over the
//     channel (the pre-batching shape, kept as the oracle);
//   - stl-telemetry: the default shard-batched scs.BatchStreamSet, same
//     channel delivery — isolates the evaluation batching win;
//   - sharded-sink: batched evaluation plus per-worker sink buffers
//     (Config.ShardedSinks) instead of any channel — the serving shape,
//     isolating the delivery win.
//
// The steps/s gap between baseline and each variant is the telemetry
// tax the ROADMAP tracks.
func BenchmarkFleetTelemetry(b *testing.B) {
	platform := experiment.Glucosym()
	base := fleet.Config{
		Platform:      fleet.Platform(platform),
		Patients:      []int{0, 1, 2, 3},
		Scenarios:     apsmonitor.Programs(experiment.ScenarioSubset(36)),
		Sessions:      100,
		Steps:         50,
		DiscardTraces: true,
	}
	runEvents := func(b *testing.B, cfg fleet.Config) {
		var steps int64
		for i := 0; i < b.N; i++ {
			events := make(chan fleet.Event, 4096)
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for range events {
				}
			}()
			c := cfg
			c.Events = events
			res, err := fleet.Run(context.Background(), c)
			close(events)
			<-drained
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("baseline", func(b *testing.B) { runEvents(b, base) })
	b.Run("stl-telemetry", func(b *testing.B) {
		cfg := base
		cfg.Telemetry = &fleet.TelemetryConfig{}
		runEvents(b, cfg)
	})
	b.Run("per-session", func(b *testing.B) {
		cfg := base
		cfg.Telemetry = &fleet.TelemetryConfig{PerSession: true}
		runEvents(b, cfg)
	})
	b.Run("sharded-sink", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Telemetry = &fleet.TelemetryConfig{}
			cfg.Sinks = []fleet.Sink{&nullSink{}}
			cfg.ShardedSinks = true
			res, err := fleet.Run(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	})
}

// BenchmarkShardedSinkEpochMerge prices the sink delivery shapes on a
// telemetry-heavy 100-session fleet, all into the same null sink:
//
//   - collector: the single collector goroutine (channel per event) —
//     the streaming default;
//   - run-end: ShardedSinks with SinkEpoch=0 — per-worker buffers, one
//     canonical merge at completion (finite runs only, O(run) memory);
//   - epoch-16: ShardedSinks with SinkEpoch=16 — the same canonical
//     stream delivered incrementally at epoch barriers, the shape that
//     serves continuous fleets with O(epoch) memory.
//
// steps/s gaps between the three are the cost of the channel hop
// (collector vs run-end) and of the barrier quiesce (run-end vs epoch).
// BENCH_sinks.json tracks the trajectory.
func BenchmarkShardedSinkEpochMerge(b *testing.B) {
	platform := experiment.Glucosym()
	base := fleet.Config{
		Platform:      fleet.Platform(platform),
		Patients:      []int{0, 1, 2, 3},
		Scenarios:     apsmonitor.Programs(experiment.ScenarioSubset(36)),
		Sessions:      100,
		Steps:         50,
		DiscardTraces: true,
		Telemetry:     &fleet.TelemetryConfig{},
	}
	run := func(b *testing.B, sharded bool, sinkEpoch int) {
		var steps int64
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Sinks = []fleet.Sink{&nullSink{}}
			cfg.ShardedSinks = sharded
			cfg.SinkEpoch = sinkEpoch
			res, err := fleet.Run(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("collector", func(b *testing.B) { run(b, false, 0) })
	b.Run("run-end", func(b *testing.B) { run(b, true, 0) })
	b.Run("epoch-16", func(b *testing.B) { run(b, true, 16) })
}

// BenchmarkSCSBatchPush is the kernel-level view of telemetry batching:
// one control cycle of Table I rule evaluation for 128 sessions, as 128
// per-session StreamSet pushes versus one BatchStreamSet push.
// verdicts/s is the shard's rule-evaluation throughput; the two paths
// are bit-identical (TestBatchStreamSetMatchesPerSession).
func BenchmarkSCSBatchPush(b *testing.B) {
	const lanes = 128
	rules := apsmonitor.TableI()
	rng := rand.New(rand.NewSource(11))
	states := make([]scs.State, lanes)
	for k := range states {
		states[k] = scs.State{
			BG:       40 + 300*rng.Float64(),
			BGPrime:  -6 + 12*rng.Float64(),
			IOB:      -2 + 10*rng.Float64(),
			IOBPrime: -0.05 + 0.1*rng.Float64(),
			Action:   trace.Action(1 + rng.Intn(4)),
		}
	}
	b.Run("per-session", func(b *testing.B) {
		sets := make([]*scs.StreamSet, lanes)
		for k := range sets {
			ss, err := scs.NewStreamSet(rules, nil, scs.Params{}, 5)
			if err != nil {
				b.Fatal(err)
			}
			sets[k] = ss
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k, ss := range sets {
				if _, err := ss.Push(states[k]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*lanes/b.Elapsed().Seconds(), "verdicts/s")
	})
	b.Run("batched", func(b *testing.B) {
		bs, err := scs.NewBatchStreamSet(rules, nil, scs.Params{}, 5, lanes)
		if err != nil {
			b.Fatal(err)
		}
		laneIDs := make([]int, lanes)
		for k := range laneIDs {
			laneIDs[k] = k
		}
		out := make([]scs.StreamVerdict, lanes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bs.PushLanes(laneIDs, states, out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*lanes/b.Elapsed().Seconds(), "verdicts/s")
	})
}

// BenchmarkThresholdLearning measures one full L-BFGS-B threshold fit
// over the training fold (the Section III-C2 refinement step).
func BenchmarkThresholdLearning(b *testing.B) {
	f := getFixture(b, "glucosym")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := stllearn.Learn(apsmonitor.TableI(), f.train, stllearn.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPatientStep is the kernel-level view of physiology
// batching: one 5-minute control cycle of ODE integration for 128
// sessions, as 128 scalar Patient.Step calls versus one
// BatchPatient.StepLanes sweep, on both cohort models. lane-steps/s is
// the shard's physiology throughput; the two paths are bit-identical
// per lane (TestBatchMatchesScalarDifferential).
func BenchmarkBatchPatientStep(b *testing.B) {
	const lanes = 128
	backends := []struct {
		name   string
		cohort int
		scalar func(idx int) (closedloop.Patient, error)
		batch  func(lanes int) (sim.BatchPatient, error)
	}{
		{"glucosym", glucosym.NumPatients,
			func(idx int) (closedloop.Patient, error) { return glucosym.New(idx) },
			func(lanes int) (sim.BatchPatient, error) { return glucosym.NewBatch(lanes) }},
		{"uvapadova", uvapadova.NumPatients,
			func(idx int) (closedloop.Patient, error) { return uvapadova.New(idx) },
			func(lanes int) (sim.BatchPatient, error) { return uvapadova.NewBatch(lanes) }},
	}
	rng := rand.New(rand.NewSource(23))
	ins := make([]float64, lanes)
	for k := range ins {
		ins[k] = rng.Float64() * 4
	}
	for _, be := range backends {
		b.Run(be.name+"/per-session", func(b *testing.B) {
			pts := make([]closedloop.Patient, lanes)
			for k := range pts {
				p, err := be.scalar(k % be.cohort)
				if err != nil {
					b.Fatal(err)
				}
				pts[k] = p
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, p := range pts {
					p.Step(ins[k], 0, 5)
				}
			}
			b.ReportMetric(float64(b.N)*lanes/b.Elapsed().Seconds(), "lane-steps/s")
		})
		b.Run(be.name+"/batched", func(b *testing.B) {
			bp, err := be.batch(lanes)
			if err != nil {
				b.Fatal(err)
			}
			laneIDs := make([]int, lanes)
			for k := range laneIDs {
				laneIDs[k] = k
				if err := bp.ConfigureLane(k, k%be.cohort); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bp.StepLanes(laneIDs, ins, nil, 5)
			}
			b.ReportMetric(float64(b.N)*lanes/b.Elapsed().Seconds(), "lane-steps/s")
		})
	}
}
