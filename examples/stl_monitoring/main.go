// STL monitoring: author a safety property in the package's Signal
// Temporal Logic syntax, check it online against a streaming closed-loop
// simulation, and inspect quantitative robustness margins — the formal
// machinery underneath the context-aware monitor.
package main

import (
	"fmt"
	"log"

	apsmonitor "repro"
	"repro/internal/stl"
)

func main() {
	// Rule 9 of Table I in concrete syntax: in hyperglycemia, do not stop
	// insulin while the insulin-on-board estimate is low.
	src := "(BG > 180 and IOB < 0.5) => not (u == 3)"
	formula, err := apsmonitor.ParseSTL(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("property: %s\n", formula)

	online, err := stl.NewOnlineMonitor(formula, 5) // 5-minute sampling
	if err != nil {
		log.Fatal(err)
	}

	// Drive a closed-loop run with a "truncate glucose" availability
	// attack: the controller sees 0 mg/dL, engages low-glucose suspend,
	// and stops insulin while the patient is actually hyperglycemic.
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform: apsmonitor.MustPlatform("glucosym"),
		Patients: []int{2},
		Scenarios: []apsmonitor.Scenario{{
			Fault: apsmonitor.Fault{
				Kind: apsmonitor.FaultTruncate, Target: "glucose",
				StartStep: 20, Duration: 80,
			},
			InitialBG: 170,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := traces[0]

	fmt.Println("\n  time    BG    IOB   action   satisfied   robustness")
	var firstViolation int = -1
	for _, s := range tr.Samples {
		sat, err := online.Push(map[string]float64{
			"BG": s.CGM, "IOB": s.IOB, "u": float64(s.Action),
		})
		if err != nil {
			log.Fatal(err)
		}
		rob, err := online.Robustness()
		if err != nil {
			log.Fatal(err)
		}
		if !sat && firstViolation < 0 {
			firstViolation = s.Step
		}
		if s.Step%10 == 0 || (!sat && s.Step == firstViolation) {
			fmt.Printf("  %4.0fm %5.0f %6.2f   %-7s %-10v %10.2f\n",
				s.TimeMin, s.CGM, s.IOB, s.Action.Short(), sat, rob)
		}
	}
	violations, evaluated := online.Violations()
	fmt.Printf("\nG[t0,te] verdict: %d of %d cycles violated the property\n", violations, evaluated)
	if firstViolation >= 0 {
		fmt.Printf("first unsafe control action at t=%.0f min — %.0f min before the hazard\n",
			float64(firstViolation)*tr.CycleMin,
			float64(tr.FirstHazardStep()-firstViolation)*tr.CycleMin)
	}
}
