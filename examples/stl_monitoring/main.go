// STL monitoring: author a safety property in the package's Signal
// Temporal Logic syntax, check it online against a streaming closed-loop
// simulation, and inspect quantitative robustness margins — the formal
// machinery underneath the context-aware monitor.
//
// Monitors run on the incremental streaming engine: each Push is O(1)
// amortized and the monitor retains O(window) state no matter how long
// the session runs, so the same code path serves the fleet engine's
// continuous serving mode (see fleet.TelemetryConfig).
package main

import (
	"fmt"
	"log"

	apsmonitor "repro"
)

func main() {
	// Rule 9 of Table I in concrete syntax: in hyperglycemia, do not stop
	// insulin while the insulin-on-board estimate is low.
	src := "(BG > 180 and IOB < 0.5) => not (u == 3)"
	formula, err := apsmonitor.ParseSTL(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("property: %s\n", formula)

	online, err := apsmonitor.NewSTLMonitor(formula, 5) // 5-minute sampling
	if err != nil {
		log.Fatal(err)
	}

	// A second, past-time property of the kind only a streaming engine
	// evaluates cheaply: "an unsafe stop-insulin happened within the
	// last 30 minutes" — a sticky alarm window over the rule body.
	recentSrc := "O[0,30] (not ((BG > 180 and IOB < 0.5) => not (u == 3)))"
	recent, err := apsmonitor.NewSTLMonitor(apsmonitor.MustParseSTL(recentSrc), 5)
	if err != nil {
		log.Fatal(err)
	}

	// Drive a closed-loop run with a "truncate glucose" availability
	// attack: the controller sees 0 mg/dL, engages low-glucose suspend,
	// and stops insulin while the patient is actually hyperglycemic.
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform: apsmonitor.MustPlatform("glucosym"),
		Patients: []int{2},
		Scenarios: []apsmonitor.Scenario{{
			Fault: apsmonitor.Fault{
				Kind: apsmonitor.FaultTruncate, Target: "glucose",
				StartStep: 20, Duration: 80,
			},
			InitialBG: 170,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := traces[0]

	fmt.Println("\n  time    BG    IOB   action   satisfied   robustness   recent-UCA")
	var firstViolation int = -1
	for _, s := range tr.Samples {
		sample := map[string]float64{
			"BG": s.CGM, "IOB": s.IOB, "u": float64(s.Action),
		}
		sat, err := online.Push(sample)
		if err != nil {
			log.Fatal(err)
		}
		rob, err := online.Robustness()
		if err != nil {
			log.Fatal(err)
		}
		recentUCA, err := recent.Push(sample)
		if err != nil {
			log.Fatal(err)
		}
		if !sat && firstViolation < 0 {
			firstViolation = s.Step
		}
		if s.Step%10 == 0 || (!sat && s.Step == firstViolation) {
			fmt.Printf("  %4.0fm %5.0f %6.2f   %-7s %-10v %10.2f   %v\n",
				s.TimeMin, s.CGM, s.IOB, s.Action.Short(), sat, rob, recentUCA)
		}
	}
	violations, evaluated := online.Violations()
	fmt.Printf("\nG[t0,te] verdict: %d of %d cycles violated the property\n", violations, evaluated)
	if firstViolation >= 0 {
		fmt.Printf("first unsafe control action at t=%.0f min — %.0f min before the hazard\n",
			float64(firstViolation)*tr.CycleMin,
			float64(tr.FirstHazardStep()-firstViolation)*tr.CycleMin)
	}
	fmt.Printf("monitor state after %d pushes: %d buffered samples (bounded by the 30-minute window, not the session)\n",
		recent.Len(), recent.StateSamples())

	// The full Table I rule set evaluates the same way, through one
	// hash-consed streaming rule set per monitor: the CAWOT monitor's
	// verdicts carry the alarm, the signed robustness margin, and the
	// arg-min rule from a single incremental evaluation per cycle.
	fmt.Println("\nstreaming context-aware monitor over the same trace:")
	fmt.Println("  time    alarm   margin   rule   confidence")
	mon, err := apsmonitor.NewCAWOTMonitor(apsmonitor.TableI())
	if err != nil {
		log.Fatal(err)
	}
	prevRate := tr.Basal
	for _, s := range tr.Samples {
		v := mon.Step(apsmonitor.Observation{
			Step: s.Step, TimeMin: s.TimeMin, CycleMin: tr.CycleMin,
			CGM: s.CGM, BGPrime: s.BGPrime, IOB: s.IOB, IOBPrime: s.IOBPrime,
			Rate: s.Rate, PrevRate: prevRate, Action: s.Action, Basal: tr.Basal,
		})
		prevRate = s.Delivered
		if s.Step%20 == 0 || (v.Alarm && s.Step == firstViolation) {
			fmt.Printf("  %4.0fm  %-6v %8.3f   %4d   %10.2f\n",
				s.TimeMin, v.Alarm, v.Margin, v.Rule, v.Confidence)
		}
	}
}
