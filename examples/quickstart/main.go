// Quickstart: run one closed-loop APS simulation with an injected sensor
// attack, attach the context-aware safety monitor with its default
// thresholds, and print what happens.
package main

import (
	"fmt"
	"log"

	apsmonitor "repro"
)

func main() {
	// A "max glucose" integrity attack on the controller's glucose input:
	// the control software believes the patient is at 400 mg/dL for five
	// hours and delivers insulin accordingly.
	attack := apsmonitor.Fault{
		Kind:      apsmonitor.FaultMax,
		Target:    "glucose",
		Value:     400,
		StartStep: 10,
		Duration:  60,
	}

	// The context-aware monitor (CAWOT flavor: Table I rules with generic
	// thresholds — no training data needed).
	mon, err := apsmonitor.NewCAWOTMonitor(apsmonitor.TableI())
	if err != nil {
		log.Fatal(err)
	}

	platform := apsmonitor.MustPlatform("glucosym")
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  platform,
		Patients:  []int{0},
		Scenarios: []apsmonitor.Scenario{{Fault: attack, InitialBG: 140}},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := traces[0]
	apsmonitor.AnnotateMonitor(mon, tr)

	fmt.Printf("patient %s, attack %s for %d cycles\n", tr.PatientID, tr.Fault.Name, tr.Fault.Duration)
	if h := tr.FirstHazardStep(); h >= 0 {
		fmt.Printf("hazard:  %s begins at t=%.0f min\n", tr.DominantHazard(), float64(h)*tr.CycleMin)
	} else {
		fmt.Println("hazard:  none (the controller absorbed this attack)")
	}
	if d := tr.FirstAlarmStep(); d >= 0 {
		fmt.Printf("monitor: first alarm at t=%.0f min (%s predicted)\n",
			float64(d)*tr.CycleMin, tr.Samples[d].AlarmHazard)
	} else {
		fmt.Println("monitor: never alarmed")
	}
	if rt := apsmonitor.ReactionTime([]*apsmonitor.Trace{tr}); rt.Count > 0 {
		fmt.Printf("reaction time: %.0f minutes before the hazard\n", rt.MeanMin)
	}

	fmt.Println("\n  time   true BG   controller-seen   insulin U/h   alarm")
	for i := 0; i < tr.Len(); i += 6 {
		s := tr.Samples[i]
		seen := s.CGM
		if s.FaultActive {
			seen = 400
		}
		alarm := ""
		if s.Alarm {
			alarm = "ALARM " + s.AlarmHazard.String()
		}
		fmt.Printf("  %4.0fm %8.0f %12.0f %13.2f   %s\n", s.TimeMin, s.BG, seen, s.Rate, alarm)
	}
}
