// Threshold learning: run a fault-injection campaign on one virtual
// patient, learn the patient-specific STL thresholds with L-BFGS-B and
// the TMEE tightness loss, and compare the learned monitor against the
// generic-threshold baseline on held-out traces — the core loop of the
// paper's Section III-C2.
package main

import (
	"fmt"
	"log"

	apsmonitor "repro"
)

func main() {
	platform := apsmonitor.MustPlatform("glucosym")

	// A thinned campaign against patient 0 (every 6th scenario of the
	// 882-run matrix: still ~147 fault-injected simulations).
	fmt.Println("running fault-injection campaign on glucosym-0...")
	traces, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform:  platform,
		Patients:  []int{0},
		Scenarios: apsmonitor.QuickScenarios(6),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d traces, hazard coverage %.1f%%\n\n",
		len(traces), 100*apsmonitor.HazardCoverage(traces))

	// Hold out every 4th trace for evaluation.
	var train, test []*apsmonitor.Trace
	for i, tr := range traces {
		if i%4 == 0 {
			test = append(test, tr)
		} else {
			train = append(train, tr)
		}
	}

	rules := apsmonitor.TableI()
	thresholds, report, err := apsmonitor.LearnThresholds(rules, train, apsmonitor.LearnConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned from %d negative examples:\n", report.TotalExamples)
	fmt.Printf("  %-6s %10s %10s %9s\n", "rule", "default β", "learned β", "examples")
	for _, rr := range report.Rules {
		var def float64
		for _, r := range rules {
			if r.ID == rr.RuleID {
				def = r.Default
			}
		}
		fmt.Printf("  %-6d %10.2f %10.2f %9d\n", rr.RuleID, def, rr.Beta, rr.Examples)
	}

	// Evaluate learned vs default thresholds on the held-out traces.
	cawt, err := apsmonitor.NewCAWTMonitor(rules, thresholds)
	if err != nil {
		log.Fatal(err)
	}
	cawot, err := apsmonitor.NewCAWOTMonitor(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  %-24s %6s %6s %6s %6s\n", "monitor", "FPR", "FNR", "ACC", "F1")
	for _, m := range []struct {
		name string
		mon  apsmonitor.Monitor
	}{
		{"CAWT (learned)", cawt},
		{"CAWOT (defaults)", cawot},
	} {
		var c apsmonitor.Confusion
		for _, tr := range test {
			apsmonitor.AnnotateMonitor(m.mon, tr)
			c.Add(apsmonitor.SampleLevelMetrics(tr, 0))
		}
		fmt.Printf("  %-24s %6.3f %6.3f %6.3f %6.3f\n",
			m.name, c.FPR(), c.FNR(), c.Accuracy(), c.F1())
	}
}
