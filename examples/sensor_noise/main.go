// Sensor noise + context-dependent mitigation: relax the paper's
// fault-free-sensor assumption by passing the CGM through a realistic
// error model (calibration drift, autocorrelated noise), and replace the
// fixed Algorithm 1 correction with the formal Hazard Mitigation
// Specification (Eq. 2) so the corrective insulin rate depends on the
// hazard context.
package main

import (
	"fmt"
	"log"
	"math/rand"

	apsmonitor "repro"
	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/sim/glucosym"
	"repro/internal/trace"
)

func main() {
	inner, err := glucosym.New(2)
	if err != nil {
		log.Fatal(err)
	}
	model, err := sensor.New(sensor.Config{
		Gain: 1.04, Offset: 2, NoiseSD: 3, DropoutProb: 0.01,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	patient := &sensor.NoisyPatient{Patient: inner, Model: model}

	ctrl, err := control.NewOpenAPS(control.OpenAPSConfig{
		Basal: inner.Basal(), ISF: 35,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := apsmonitor.NewCAWOTMonitor(apsmonitor.TableI())
	if err != nil {
		log.Fatal(err)
	}

	// Context-dependent mitigation from the HMS of Section III-B2.
	hms := scs.DefaultHMS()
	if err := hms.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hazard mitigation specification (Eq. 2 formulas):")
	for _, r := range hms.Rules {
		fmt.Printf("  %-38s %s\n", r, r.STL(scs.Params{}))
	}

	// A min-glucose integrity attack forcing insulin suspension while
	// the patient drifts hyperglycemic.
	f := apsmonitor.Fault{
		Kind: apsmonitor.FaultMin, Target: "glucose", Value: 40,
		StartStep: 10, Duration: 80,
	}
	tr, err := closedloop.Run(closedloop.Config{
		Platform: "glucosym+cgm-error/openaps",
		Patient:  patient, Controller: ctrl, Monitor: mon,
		InitialBG: 160, Fault: &f,
		Mitigation: closedloop.MitigationConfig{
			Enabled: true,
			Corrective: func(h trace.HazardType, obs closedloop.Observation) (float64, bool) {
				rate, rule, ok := hms.Select(h, scs.State{
					BG: obs.CGM, BGPrime: obs.BGPrime,
					IOB: obs.IOB, IOBPrime: obs.IOBPrime,
					Action: obs.Action,
				}, obs.Basal)
				if ok {
					_ = rule // rule.ID identifies which HMS row acted
				}
				return rate, ok
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var mitigated int
	maxBG := 0.0
	for _, s := range tr.Samples {
		if s.Mitigated {
			mitigated++
		}
		if s.BG > maxBG {
			maxBG = s.BG
		}
	}
	fmt.Printf("\nattack %s with CGM error model in the loop:\n", tr.Fault.Name)
	fmt.Printf("  peak BG      %.0f mg/dL\n", maxBG)
	fmt.Printf("  hazardous    %v\n", tr.Hazardous())
	fmt.Printf("  mitigated    %d of %d cycles overridden by HMS\n", mitigated, tr.Len())

	// Sensor accuracy actually experienced during the run.
	mard, err := sensor.MARD(tr.BGSeries(), tr.CGMSeries())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sensor MARD  %.1f%% (true BG vs sensed, incl. interstitial lag)\n", 100*mard)
}
