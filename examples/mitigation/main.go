// Mitigation: rerun attack scenarios with the safety monitor wired into
// the actuation path (Algorithm 1) — when the monitor predicts H1 the
// unsafe command is replaced with zero insulin, and for H2 with a fixed
// corrective maximum — and measure how many hazards are prevented.
package main

import (
	"fmt"
	"log"

	apsmonitor "repro"
)

func main() {
	platform := apsmonitor.MustPlatform("glucosym")

	// Attack scenarios: every 12th scenario of the full campaign matrix
	// against two patients.
	scenarios := apsmonitor.QuickScenarios(12)
	patients := []int{0, 4}

	fmt.Println("baseline campaign (no monitor)...")
	baseline, err := apsmonitor.RunCampaign(apsmonitor.CampaignConfig{
		Platform: platform, Patients: patients, Scenarios: scenarios,
	})
	if err != nil {
		log.Fatal(err)
	}
	var baseHazards int
	for _, tr := range baseline {
		if tr.Hazardous() {
			baseHazards++
		}
	}
	fmt.Printf("%d simulations, %d hazardous\n\n", len(baseline), baseHazards)

	// Learn patient-specific thresholds from the baseline traces, then
	// rerun the same scenarios with the monitor mitigating in-loop.
	rules := apsmonitor.TableI()
	thresholds, _, err := apsmonitor.LearnThresholds(rules, baseline, apsmonitor.LearnConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Rerun the same scenarios twice: the paper's fixed Algorithm 1
	// corrective action, and the margin-scaled variant — the monitor's
	// verdicts carry a signed robustness margin (one streaming rule
	// evaluation yields alarm, margin, and rule attribution), and the
	// correction is blended toward the issued command in proportion to
	// how shallow the violation is, so false alarms at the rule boundary
	// barely perturb delivery.
	mitigatedCfg := apsmonitor.CampaignConfig{
		Platform: platform, Patients: patients, Scenarios: scenarios,
		Mitigate: true,
		NewMonitor: func(int) (apsmonitor.Monitor, error) {
			return apsmonitor.NewCAWTMonitor(rules, thresholds)
		},
	}
	fmt.Println("rerunning with CAWT monitor + Algorithm 1 mitigation (fixed)...")
	mitigated, err := apsmonitor.RunCampaign(mitigatedCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rerunning with margin-scaled mitigation (ScaleByMargin)...")
	scaledCfg := mitigatedCfg
	scaledCfg.Mitigation = apsmonitor.MitigationConfig{ScaleByMargin: true}
	scaled, err := apsmonitor.RunCampaign(scaledCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %14s %12s %12s\n", "strategy", "recovery rate", "new hazards", "unprevented")
	for _, row := range []struct {
		name   string
		traces []*apsmonitor.Trace
	}{{"fixed", mitigated}, {"margin-scaled", scaled}} {
		var prevented, newHazards, stillHazard int
		for i := range baseline {
			was, is := baseline[i].Hazardous(), row.traces[i].Hazardous()
			switch {
			case was && !is:
				prevented++
			case was && is:
				stillHazard++
			case !was && is:
				newHazards++
			}
		}
		fmt.Printf("%-14s %13.1f%% %12d %12d\n", row.name,
			100*float64(prevented)/float64(baseHazards), newHazards, stillHazard)
	}

	// Show one prevented case in detail.
	for i := range baseline {
		if baseline[i].Hazardous() && !mitigated[i].Hazardous() {
			b, m := baseline[i], mitigated[i]
			fmt.Printf("\nexample: %s on %s starting at %.0f mg/dL\n",
				b.Fault.Name, b.PatientID, b.InitialBG)
			fmt.Printf("  without monitor: %s hazard at t=%.0f min, BG nadir/peak %s\n",
				b.DominantHazard(), float64(b.FirstHazardStep())*b.CycleMin, extremes(b))
			fmt.Printf("  with mitigation: no hazard, BG stayed %s; %d cycles overridden\n",
				extremes(m), overridden(m))
			break
		}
	}
}

func extremes(tr *apsmonitor.Trace) string {
	lo, hi := tr.Samples[0].BG, tr.Samples[0].BG
	for _, s := range tr.Samples {
		if s.BG < lo {
			lo = s.BG
		}
		if s.BG > hi {
			hi = s.BG
		}
	}
	return fmt.Sprintf("[%.0f, %.0f]", lo, hi)
}

func overridden(tr *apsmonitor.Trace) int {
	var n int
	for _, s := range tr.Samples {
		if s.Mitigated {
			n++
		}
	}
	return n
}
