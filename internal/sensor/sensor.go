// Package sensor implements continuous glucose monitor (CGM) error
// models in the family the paper's Threats-to-Validity section cites
// (Facchinetti et al., Biagi et al., Vettoretti et al.): a calibration
// gain/offset that drifts between calibrations, a first-order
// autoregressive noise process, and dropout/spike artifacts.
//
// The paper assumes the sensor channel is fault-free or protected by
// existing detectors; this package makes that assumption testable — the
// evaluation can re-run with realistic sensor error and measure how much
// monitor accuracy degrades.
//
//fleetvet:deterministic
package sensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes the CGM error model.
type Config struct {
	// Gain and Offset are the initial calibration error: the sensor
	// reports Gain*BG + Offset before noise. Defaults 1.0 and 0.
	Gain   float64
	Offset float64
	// GainDriftPerDay is the relative gain drift per 24h (sensor aging).
	// Zero selects the default 0.02 (2%/day); any negative value
	// explicitly disables drift.
	GainDriftPerDay float64
	// CalibrationIntervalMin resets the drift (fingerstick calibration).
	// Zero selects the default 720 (12 h); any negative value explicitly
	// disables calibration.
	CalibrationIntervalMin float64
	// NoiseSD is the standard deviation of the AR(1) noise process in
	// mg/dL. Zero selects the default 2.5; any negative value explicitly
	// disables additive noise (the RNG stream still advances so traces
	// stay comparable across configurations).
	NoiseSD float64
	// NoisePhi is the AR(1) coefficient. Zero selects the default 0.7
	// (CGM noise is strongly autocorrelated); any negative value
	// explicitly selects white noise (phi = 0).
	NoisePhi float64
	// DropoutProb is the per-sample probability of a missed reading
	// (the model holds the previous value); default 0.
	DropoutProb float64
	// SpikeProb and SpikeSD model pressure-induced artifacts: with
	// probability SpikeProb a sample gets an extra N(0, SpikeSD) error.
	SpikeProb float64
	SpikeSD   float64
	// Floor and Ceiling clamp the reported value to the hardware range;
	// defaults 40 and 400 mg/dL.
	Floor, Ceiling float64
}

func (c Config) withDefaults() Config {
	if c.Gain == 0 {
		c.Gain = 1
	}
	// For the drift/noise knobs the zero value means "unset, take the
	// default" (so Config{} stays a realistic sensor), while a negative
	// value is an explicit "off". Without the negative branch a caller
	// writing NoiseSD: 0 to ask for a noise-free sensor silently got the
	// 2.5 mg/dL default back.
	switch {
	case c.GainDriftPerDay == 0:
		c.GainDriftPerDay = 0.02
	case c.GainDriftPerDay < 0:
		c.GainDriftPerDay = 0
	}
	if c.CalibrationIntervalMin == 0 {
		c.CalibrationIntervalMin = 720
	}
	switch {
	case c.NoiseSD == 0:
		c.NoiseSD = 2.5
	case c.NoiseSD < 0:
		c.NoiseSD = 0
	}
	switch {
	case c.NoisePhi == 0:
		c.NoisePhi = 0.7
	case c.NoisePhi < 0:
		c.NoisePhi = 0
	}
	if c.SpikeSD == 0 {
		c.SpikeSD = 15
	}
	if c.Floor == 0 {
		c.Floor = 40
	}
	if c.Ceiling == 0 {
		c.Ceiling = 400
	}
	return c
}

// Model is a stateful CGM error model. It is not safe for concurrent
// use; create one per simulated sensor.
type Model struct {
	cfg Config
	rng *rand.Rand

	noise       float64 // AR(1) state
	drift       float64 // accumulated relative gain drift
	lastCalMin  float64
	lastReading float64
	haveReading bool
}

// New builds a model with an explicit random source (required: sensor
// error is the only stochastic element of a simulation, and campaigns
// must stay reproducible).
func New(cfg Config, rng *rand.Rand) (*Model, error) {
	if rng == nil {
		return nil, fmt.Errorf("sensor: nil rng")
	}
	cfg = cfg.withDefaults()
	if cfg.NoisePhi < 0 || cfg.NoisePhi >= 1 {
		return nil, fmt.Errorf("sensor: AR coefficient %v outside [0,1)", cfg.NoisePhi)
	}
	if cfg.Floor >= cfg.Ceiling {
		return nil, fmt.Errorf("sensor: floor %v >= ceiling %v", cfg.Floor, cfg.Ceiling)
	}
	if cfg.DropoutProb < 0 || cfg.DropoutProb >= 1 {
		return nil, fmt.Errorf("sensor: dropout probability %v outside [0,1)", cfg.DropoutProb)
	}
	return &Model{cfg: cfg, rng: rng}, nil
}

// Read converts a true interstitial glucose value into a sensor reading
// at time tMin minutes.
func (m *Model) Read(trueGlucose, tMin float64) float64 {
	c := &m.cfg
	// Calibration resets drift.
	if c.CalibrationIntervalMin > 0 && tMin-m.lastCalMin >= c.CalibrationIntervalMin {
		m.drift = 0
		m.lastCalMin = tMin
	}
	// Dropout: hold the previous value.
	if m.haveReading && c.DropoutProb > 0 && m.rng.Float64() < c.DropoutProb {
		return m.lastReading
	}
	// Gain drift accrues linearly between calibrations.
	sinceCal := tMin - m.lastCalMin
	gain := c.Gain * (1 + c.GainDriftPerDay*sinceCal/1440)

	// AR(1) noise.
	innovSD := c.NoiseSD * math.Sqrt(1-c.NoisePhi*c.NoisePhi)
	m.noise = c.NoisePhi*m.noise + m.rng.NormFloat64()*innovSD

	v := gain*trueGlucose + c.Offset + m.noise
	if c.SpikeProb > 0 && m.rng.Float64() < c.SpikeProb {
		v += m.rng.NormFloat64() * c.SpikeSD
	}
	if v < c.Floor {
		v = c.Floor
	}
	if v > c.Ceiling {
		v = c.Ceiling
	}
	m.lastReading = v
	m.haveReading = true
	return v
}

// Reset rewinds the model state (same configuration, same rng stream).
func (m *Model) Reset() {
	m.noise = 0
	m.drift = 0
	m.lastCalMin = 0
	m.lastReading = 0
	m.haveReading = false
}

// MARD computes the mean absolute relative difference between paired
// true and sensed series — the standard CGM accuracy metric, useful for
// validating a configuration against published sensor specs (Dexcom G4
// ~13%, G5 ~9%).
func MARD(trueBG, sensed []float64) (float64, error) {
	if len(trueBG) != len(sensed) || len(trueBG) == 0 {
		return 0, fmt.Errorf("sensor: MARD needs equal non-empty series (%d vs %d)", len(trueBG), len(sensed))
	}
	var sum float64
	for i := range trueBG {
		if trueBG[i] <= 0 {
			return 0, fmt.Errorf("sensor: non-positive reference BG at %d", i)
		}
		sum += math.Abs(sensed[i]-trueBG[i]) / trueBG[i]
	}
	return sum / float64(len(trueBG)), nil
}

// NoisyPatient wraps a virtual patient so its CGM output passes through
// the error model. It satisfies the closed-loop Patient surface by
// embedding.
type NoisyPatient struct {
	Patient interface {
		ID() string
		Step(insulinUPerH, carbGPerMin, dtMin float64)
		BG() float64
		CGM() float64
		Basal() float64
		Reset(initialBG float64)
	}
	Model *Model

	timeMin float64
}

// ID delegates to the wrapped patient.
func (p *NoisyPatient) ID() string { return p.Patient.ID() }

// Basal delegates to the wrapped patient.
func (p *NoisyPatient) Basal() float64 { return p.Patient.Basal() }

// BG delegates to the wrapped patient (the true value is unaffected).
func (p *NoisyPatient) BG() float64 { return p.Patient.BG() }

// CGM returns the error-model view of the wrapped patient's sensor.
func (p *NoisyPatient) CGM() float64 {
	return p.Model.Read(p.Patient.CGM(), p.timeMin)
}

// Step advances the wrapped patient and the sensor clock.
func (p *NoisyPatient) Step(insulinUPerH, carbGPerMin, dtMin float64) {
	p.Patient.Step(insulinUPerH, carbGPerMin, dtMin)
	p.timeMin += dtMin
}

// Reset rewinds both the patient and the sensor model.
func (p *NoisyPatient) Reset(initialBG float64) {
	p.Patient.Reset(initialBG)
	p.Model.Reset()
	p.timeMin = 0
}
