// Snapshot/restore of CGM error-model state. The model's noise source
// (*rand.Rand) is owned by the session and its stream position is
// serialized at the session level; the model itself serializes only the
// AR(1)/drift/calibration state. A batched lane's bytes are identical
// to the scalar model's because a lane IS a scalar Model value.

package sensor

import "repro/internal/snapshot"

var (
	_ snapshot.Snapshotter     = (*Model)(nil)
	_ snapshot.LaneSnapshotter = (*BatchModel)(nil)
)

// SnapshotState implements snapshot.Snapshotter.
func (m *Model) SnapshotState(enc *snapshot.Encoder) {
	enc.Float64(m.noise)
	enc.Float64(m.drift)
	enc.Float64(m.lastCalMin)
	enc.Float64(m.lastReading)
	enc.Bool(m.haveReading)
}

// RestoreState implements snapshot.Snapshotter. The model keeps its
// configuration and rng; callers restore the rng stream separately.
func (m *Model) RestoreState(dec *snapshot.Decoder) error {
	noise := dec.Float64()
	drift := dec.Float64()
	lastCalMin := dec.Float64()
	lastReading := dec.Float64()
	haveReading := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	m.noise = noise
	m.drift = drift
	m.lastCalMin = lastCalMin
	m.lastReading = lastReading
	m.haveReading = haveReading
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter.
func (b *BatchModel) SnapshotLane(lane int, enc *snapshot.Encoder) {
	b.models[lane].SnapshotState(enc)
}

// RestoreLane implements snapshot.LaneSnapshotter. The lane must have
// been configured (SetLane) with the session's config and rng first.
func (b *BatchModel) RestoreLane(lane int, dec *snapshot.Decoder) error {
	return b.models[lane].RestoreState(dec)
}
