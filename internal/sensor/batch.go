// Shard-batched CGM error modeling: a BatchModel is a bank of per-lane
// Models read in one sweep per fleet round. Each lane keeps its own
// Model value — its own config, AR(1) state, and *rand.Rand — and
// ReadLane delegates to exactly the scalar Model.Read, so a lane's
// reading sequence and RNG stream are bit-identical to a standalone
// Model consuming the same (trueGlucose, tMin) series.

package sensor

import (
	"fmt"
	"math/rand"
)

// BatchModel is a bank of independent CGM error models, one per fleet
// lane. It is not safe for concurrent use; create one per shard.
type BatchModel struct {
	models []Model
}

// NewBatchModel builds a bank with capacity for lanes sensors. Lanes
// start unconfigured; install one with SetLane before reading it.
func NewBatchModel(lanes int) (*BatchModel, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("sensor: batch model needs at least one lane, got %d", lanes)
	}
	return &BatchModel{models: make([]Model, lanes)}, nil
}

// NumLanes returns the bank's capacity.
func (b *BatchModel) NumLanes() int { return len(b.models) }

// SetLane installs a fresh error model on the lane, validated and
// defaulted exactly like New. The rng becomes the lane's private noise
// stream — hand each lane its own deterministic source.
func (b *BatchModel) SetLane(lane int, cfg Config, rng *rand.Rand) error {
	m, err := New(cfg, rng)
	if err != nil {
		return err
	}
	b.models[lane] = *m
	return nil
}

// ReadLane converts the lane's true glucose into a sensor reading at
// tMin minutes, via the scalar Model.Read on the lane's own state.
func (b *BatchModel) ReadLane(lane int, trueGlucose, tMin float64) float64 {
	return b.models[lane].Read(trueGlucose, tMin)
}

// ReadLanes reads every listed lane in one sweep: lanes[i] converts
// trueGlucose[i] at time tMin[i] into out[i]. Times are per lane because
// fleet sessions refill at different rounds and each session's sensor
// clock starts at zero.
func (b *BatchModel) ReadLanes(lanes []int, trueGlucose, tMin, out []float64) {
	for i, l := range lanes {
		out[i] = b.models[l].Read(trueGlucose[i], tMin[i])
	}
}

// ResetLane rewinds the lane's model state (same configuration, same
// rng stream), like the scalar Model.Reset.
func (b *BatchModel) ResetLane(lane int) { b.models[lane].Reset() }
