package sensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/sim/glucosym"
)

func newModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := New(Config{NoisePhi: 1.5}, rng); err == nil {
		t.Error("AR coefficient >= 1 should fail")
	}
	if _, err := New(Config{Floor: 400, Ceiling: 40}, rng); err == nil {
		t.Error("inverted clamp range should fail")
	}
	if _, err := New(Config{DropoutProb: 2}, rng); err == nil {
		t.Error("dropout prob > 1 should fail")
	}
}

func TestReadTracksTrueValue(t *testing.T) {
	m := newModel(t, Config{NoiseSD: 1})
	var worst float64
	for i := 0; i < 200; i++ {
		v := m.Read(120, float64(i)*5)
		worst = math.Max(worst, math.Abs(v-120))
	}
	if worst > 20 {
		t.Errorf("max deviation %v mg/dL with 1 mg/dL noise", worst)
	}
}

func TestCalibrationErrorBiases(t *testing.T) {
	m := newModel(t, Config{Gain: 1.1, Offset: 5, NoiseSD: 0.001})
	v := m.Read(100, 0)
	if math.Abs(v-115) > 1 {
		t.Errorf("reading %v, want ~115 (gain 1.1, offset 5)", v)
	}
}

func TestDriftAccruesAndCalibrationResets(t *testing.T) {
	m := newModel(t, Config{GainDriftPerDay: 0.10, CalibrationIntervalMin: 720, NoiseSD: 0.001})
	v0 := m.Read(150, 0)
	v12h := m.Read(150, 719) // just before calibration: 5% drift on 150 = +7.5
	if v12h-v0 < 5 {
		t.Errorf("drift too small: %v -> %v", v0, v12h)
	}
	vCal := m.Read(150, 720) // calibration resets drift
	if math.Abs(vCal-v0) > 1.5 {
		t.Errorf("calibration did not reset drift: %v vs %v", vCal, v0)
	}
}

func TestClamping(t *testing.T) {
	m := newModel(t, Config{})
	if v := m.Read(1000, 0); v != 400 {
		t.Errorf("reading %v, want ceiling 400", v)
	}
	if v := m.Read(5, 5); v != 40 {
		t.Errorf("reading %v, want floor 40", v)
	}
}

func TestDropoutHoldsLastReading(t *testing.T) {
	m := newModel(t, Config{DropoutProb: 0.999999, NoiseSD: 0.001})
	first := m.Read(100, 0)
	held := m.Read(300, 5) // dropout: still the first value
	if held != first {
		t.Errorf("dropout should hold %v, got %v", first, held)
	}
}

func TestNoiseAutocorrelation(t *testing.T) {
	// With phi=0.9 consecutive errors should correlate strongly.
	m := newModel(t, Config{NoisePhi: 0.9, NoiseSD: 5})
	var errs []float64
	for i := 0; i < 2000; i++ {
		errs = append(errs, m.Read(120, float64(i)*5)-120)
	}
	var num, den float64
	for i := 1; i < len(errs); i++ {
		num += errs[i] * errs[i-1]
		den += errs[i] * errs[i]
	}
	if corr := num / den; corr < 0.6 {
		t.Errorf("lag-1 autocorrelation %v, want > 0.6 for phi=0.9", corr)
	}
}

func TestNoiseVarianceMatchesConfig(t *testing.T) {
	m := newModel(t, Config{NoiseSD: 5, NoisePhi: 0.7, CalibrationIntervalMin: 5})
	var ss float64
	const n = 5000
	for i := 0; i < n; i++ {
		e := m.Read(120, float64(i)) - 120
		ss += e * e
	}
	sd := math.Sqrt(ss / n)
	if sd < 3.5 || sd > 6.5 {
		t.Errorf("empirical noise SD %v, want ~5", sd)
	}
}

func TestMARD(t *testing.T) {
	if _, err := MARD(nil, nil); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := MARD([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MARD([]float64{0}, []float64{1}); err == nil {
		t.Error("non-positive reference should fail")
	}
	mard, err := MARD([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mard-0.10) > 1e-12 {
		t.Errorf("MARD %v, want 0.10", mard)
	}
}

func TestDefaultConfigMARDIsRealistic(t *testing.T) {
	// The default configuration should land in the published CGM range
	// (roughly 5-15% MARD).
	m := newModel(t, Config{Gain: 1.03, Offset: 3})
	var trueBG, sensed []float64
	for i := 0; i < 1000; i++ {
		bg := 120 + 60*math.Sin(float64(i)/40)
		trueBG = append(trueBG, bg)
		sensed = append(sensed, m.Read(bg, float64(i)*5))
	}
	mard, err := MARD(trueBG, sensed)
	if err != nil {
		t.Fatal(err)
	}
	if mard < 0.005 || mard > 0.15 {
		t.Errorf("MARD %v outside the realistic CGM band", mard)
	}
}

func TestNoisyPatientInClosedLoop(t *testing.T) {
	inner, err := glucosym.New(0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(Config{Gain: 1.02, NoiseSD: 3}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	patient := &NoisyPatient{Patient: inner, Model: model}
	ctrl, err := control.NewOpenAPS(control.OpenAPSConfig{Basal: inner.Basal(), ISF: 40})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := closedloop.Run(closedloop.Config{
		Platform: "glucosym+sensor/openaps", Patient: patient, Controller: ctrl,
		InitialBG: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Control should still hold the patient in a safe band despite
	// realistic sensor error.
	last := tr.Samples[tr.Len()-1].BG
	if last < 60 || last > 250 {
		t.Errorf("final BG %v under sensor noise", last)
	}
	// And the sensed series must actually differ from the true one.
	var diff float64
	for _, s := range tr.Samples {
		diff += math.Abs(s.CGM - s.BG)
	}
	if diff/float64(tr.Len()) < 0.5 {
		t.Error("sensor model had no visible effect")
	}
}

func TestResetRestartsModel(t *testing.T) {
	m := newModel(t, Config{GainDriftPerDay: 0.5})
	m.Read(100, 1400)
	m.Reset()
	v := m.Read(100, 0)
	if math.Abs(v-100) > 10 {
		t.Errorf("post-reset reading %v, want near 100", v)
	}
}

// TestZeroKeepsDefaultsNegativeDisables pins the Config semantics fixed
// in this revision: the zero value still selects the realistic defaults
// (Config{} is a plausible CGM), while a negative value is an explicit
// "off". Before the fix, NoiseSD: 0 or GainDriftPerDay: 0 silently
// re-enabled the defaults, so a noise-free sensor was unreachable.
func TestZeroKeepsDefaultsNegativeDisables(t *testing.T) {
	def := Config{}.withDefaults()
	if def.NoiseSD != 2.5 || def.GainDriftPerDay != 0.02 || def.NoisePhi != 0.7 {
		t.Fatalf("zero config lost its defaults: %+v", def)
	}
	if def.CalibrationIntervalMin != 720 {
		t.Fatalf("zero CalibrationIntervalMin = %v, want default 720", def.CalibrationIntervalMin)
	}
	off := Config{NoiseSD: -1, GainDriftPerDay: -1, NoisePhi: -1}.withDefaults()
	if off.NoiseSD != 0 || off.GainDriftPerDay != 0 || off.NoisePhi != 0 {
		t.Fatalf("negative knobs not disabled: %+v", off)
	}

	// Behavioral check: with noise and drift explicitly off and an
	// identity calibration, the sensor is transparent.
	m := newModel(t, Config{NoiseSD: -1, GainDriftPerDay: -1})
	for i := 0; i < 50; i++ {
		tMin := float64(i) * 5
		if got := m.Read(123.25, tMin); got != 123.25 {
			t.Fatalf("disabled sensor perturbed reading at t=%v: %v", tMin, got)
		}
	}
	// And the zero-value path still perturbs (defaults re-applied).
	m = newModel(t, Config{NoiseSD: 0})
	moved := false
	for i := 0; i < 50; i++ {
		if m.Read(123.25, float64(i)*5) != 123.25 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("default-noise sensor never perturbed a reading")
	}
}

// TestBatchModelMatchesScalar: each lane of a BatchModel must reproduce
// a standalone Model with the same config and RNG stream bit-exactly —
// including dropout and spike draws — regardless of sweep order.
func TestBatchModelMatchesScalar(t *testing.T) {
	const lanesN = 4
	cfg := Config{NoiseSD: 3, DropoutProb: 0.1, SpikeProb: 0.05}
	b, err := NewBatchModel(lanesN)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*Model, lanesN)
	for l := 0; l < lanesN; l++ {
		if err := b.SetLane(l, cfg, rand.New(rand.NewSource(int64(100+l)))); err != nil {
			t.Fatal(err)
		}
		if scalars[l], err = New(cfg, rand.New(rand.NewSource(int64(100+l)))); err != nil {
			t.Fatal(err)
		}
	}
	lanes := []int{3, 1, 0, 2} // sweep order must not matter
	clean := make([]float64, lanesN)
	tMins := make([]float64, lanesN)
	out := make([]float64, lanesN)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 400; step++ {
		for i := range lanes {
			clean[i] = 80 + rng.Float64()*200
			tMins[i] = float64(step) * 5
		}
		b.ReadLanes(lanes, clean, tMins, out)
		for i, l := range lanes {
			if want := scalars[l].Read(clean[i], tMins[i]); out[i] != want {
				t.Fatalf("step %d lane %d: batched %v != scalar %v", step, l, out[i], want)
			}
		}
		if step == 200 {
			b.ResetLane(1)
			scalars[1].Reset()
		}
	}
	// ReadLane delegates identically.
	if got, want := b.ReadLane(2, 150, 2005), scalars[2].Read(150, 2005); got != want {
		t.Fatalf("ReadLane: %v != %v", got, want)
	}
}
