package risk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestValueZeroCrossing(t *testing.T) {
	// risk(112.5) should be ~0 by construction of Eq. 5.
	if v := Value(112.5); v > 0.01 {
		t.Errorf("Value(112.5) = %v, want ~0", v)
	}
}

func TestValueSymmetryDirections(t *testing.T) {
	// Risk grows as BG departs from 112.5 in either direction.
	if Value(50) <= Value(80) {
		t.Error("risk should increase as BG drops further below 112.5")
	}
	if Value(400) <= Value(200) {
		t.Error("risk should increase as BG rises further above 112.5")
	}
}

func TestValueKnownPoints(t *testing.T) {
	// Severe hypoglycemia carries very high risk; euglycemia near zero.
	if v := Value(40); v < 20 {
		t.Errorf("Value(40) = %v, want substantial risk", v)
	}
	if v := Value(110); v > 0.2 {
		t.Errorf("Value(110) = %v, want near zero", v)
	}
	if v := Value(0); v != 100 {
		t.Errorf("Value(0) = %v, want clamp 100", v)
	}
	if v := Value(-10); v != 100 {
		t.Errorf("Value(-10) = %v, want clamp 100", v)
	}
}

func TestSigned(t *testing.T) {
	if s := Signed(60); s >= 0 {
		t.Errorf("Signed(60) = %v, want negative (hypo branch)", s)
	}
	if s := Signed(300); s <= 0 {
		t.Errorf("Signed(300) = %v, want positive (hyper branch)", s)
	}
}

func TestIndices(t *testing.T) {
	// All-low window: LBGI high, HBGI zero.
	low := []float64{50, 55, 60, 52}
	lbgi, hbgi := Indices(low)
	if lbgi <= 5 {
		t.Errorf("LBGI(%v) = %v, want > 5", low, lbgi)
	}
	if hbgi != 0 {
		t.Errorf("HBGI(%v) = %v, want 0", low, hbgi)
	}
	// All-high window: HBGI high, LBGI zero.
	high := []float64{300, 320, 310, 305}
	lbgi, hbgi = Indices(high)
	if hbgi <= 9 {
		t.Errorf("HBGI(%v) = %v, want > 9", high, hbgi)
	}
	if lbgi != 0 {
		t.Errorf("LBGI(%v) = %v, want 0", high, lbgi)
	}
	// Euglycemic window: both near zero.
	eu := []float64{100, 110, 120, 115}
	lbgi, hbgi = Indices(eu)
	if lbgi > 1 || hbgi > 1 {
		t.Errorf("Indices(%v) = %v, %v, want both < 1", eu, lbgi, hbgi)
	}
	// Empty window.
	lbgi, hbgi = Indices(nil)
	if lbgi != 0 || hbgi != 0 {
		t.Error("Indices(nil) should be zero")
	}
}

func TestMeanRiskIndex(t *testing.T) {
	if v := MeanRiskIndex(nil); v != 0 {
		t.Errorf("MeanRiskIndex(nil) = %v, want 0", v)
	}
	if v := MeanRiskIndex([]float64{112.5, 112.5}); v > 0.01 {
		t.Errorf("MeanRiskIndex at zero-risk BG = %v, want ~0", v)
	}
	if MeanRiskIndex([]float64{40, 40}) <= MeanRiskIndex([]float64{90, 90}) {
		t.Error("severe hypo should carry more mean risk than mild")
	}
}

func mkTrace(bgs []float64) *trace.Trace {
	tr := &trace.Trace{PatientID: "p", CycleMin: 5}
	for i, bg := range bgs {
		tr.Samples = append(tr.Samples, trace.Sample{Step: i, BG: bg, CGM: bg})
	}
	return tr
}

func TestLabelHypoTrend(t *testing.T) {
	// BG sliding into severe hypoglycemia: H1 labels expected in the tail.
	bgs := make([]float64, 40)
	for i := range bgs {
		bgs[i] = 140 - 3*float64(i) // 140 down to 23
	}
	tr := mkTrace(bgs)
	Labeler{}.Label(tr)
	if !tr.Hazardous() {
		t.Fatal("descending-to-hypo trace should be hazardous")
	}
	if h := tr.DominantHazard(); h != trace.HazardH1 {
		t.Errorf("DominantHazard = %v, want H1", h)
	}
	// Early euglycemic samples must remain unlabeled.
	if tr.Samples[0].Hazard != trace.HazardNone || tr.Samples[5].Hazard != trace.HazardNone {
		t.Error("early euglycemic samples must not be labeled")
	}
}

func TestLabelHyperTrend(t *testing.T) {
	bgs := make([]float64, 40)
	for i := range bgs {
		bgs[i] = 150 + 8*float64(i) // 150 up to 462
	}
	tr := mkTrace(bgs)
	Labeler{}.Label(tr)
	if !tr.Hazardous() {
		t.Fatal("ascending-to-hyper trace should be hazardous")
	}
	if h := tr.DominantHazard(); h != trace.HazardH2 {
		t.Errorf("DominantHazard = %v, want H2", h)
	}
}

func TestLabelEuglycemicTraceIsClean(t *testing.T) {
	bgs := make([]float64, 40)
	for i := range bgs {
		bgs[i] = 115 + 10*math.Sin(float64(i)/5)
	}
	tr := mkTrace(bgs)
	Labeler{}.Label(tr)
	if tr.Hazardous() {
		t.Errorf("euglycemic trace labeled hazardous; first at %d", tr.FirstHazardStep())
	}
}

func TestLabelDecreasingRiskNotRelabeled(t *testing.T) {
	// Recovery from hyperglycemia: indices decrease, so beyond the first
	// window the "kept increasing" condition must suppress labels.
	bgs := make([]float64, 40)
	for i := range bgs {
		bgs[i] = 400 - 8*float64(i) // 400 down to 88
	}
	tr := mkTrace(bgs)
	Labeler{}.Label(tr)
	// The first window is allowed to be hazardous (hazard predates the
	// trace); the final samples (euglycemic, decreasing risk) must be clean.
	last := tr.Samples[len(tr.Samples)-1]
	if last.Hazard != trace.HazardNone {
		t.Errorf("recovering trace tail labeled %v", last.Hazard)
	}
}

func TestLabelIdempotentAndResets(t *testing.T) {
	bgs := make([]float64, 30)
	for i := range bgs {
		bgs[i] = 140 - 4*float64(i)
	}
	tr := mkTrace(bgs)
	l := Labeler{}
	l.Label(tr)
	first := make([]trace.HazardType, tr.Len())
	for i := range tr.Samples {
		first[i] = tr.Samples[i].Hazard
	}
	l.Label(tr)
	for i := range tr.Samples {
		if tr.Samples[i].Hazard != first[i] {
			t.Fatalf("labeling not idempotent at %d", i)
		}
	}
}

func TestLabelShortTrace(t *testing.T) {
	tr := mkTrace([]float64{45, 44, 43}) // shorter than window
	Labeler{}.Label(tr)
	if !tr.Hazardous() {
		t.Error("short severe-hypo trace should still be labeled")
	}
	Labeler{}.Label(&trace.Trace{}) // empty trace must not panic
}

func TestLabelAll(t *testing.T) {
	traces := []*trace.Trace{
		mkTrace([]float64{45, 44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34}),
		mkTrace([]float64{115, 115, 115, 115, 115, 115, 115, 115, 115, 115, 115, 115}),
	}
	Labeler{}.LabelAll(traces)
	if !traces[0].Hazardous() {
		t.Error("hypo trace should be hazardous")
	}
	if traces[1].Hazardous() {
		t.Error("euglycemic trace should be clean")
	}
}

// Property: risk is non-negative, bounded by 100, and signed risk matches
// the branch of the BG value.
func TestRiskProperties(t *testing.T) {
	f := func(raw uint16) bool {
		bg := 20 + float64(raw%600) // 20..619 mg/dL
		v := Value(bg)
		if v < 0 || v > 100 {
			return false
		}
		s := Signed(bg)
		if bg < 112.5 && s > 0 {
			return false
		}
		if bg >= 112.5 && s < 0 {
			return false
		}
		return math.Abs(math.Abs(s)-v) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LBGI and HBGI are non-negative and bounded by the max risk.
func TestIndicesProperty(t *testing.T) {
	f := func(raws []uint16) bool {
		if len(raws) == 0 {
			return true
		}
		bgs := make([]float64, len(raws))
		for i, r := range raws {
			bgs[i] = 20 + float64(r%600)
		}
		lbgi, hbgi := Indices(bgs)
		return lbgi >= 0 && hbgi >= 0 && lbgi <= 100 && hbgi <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
