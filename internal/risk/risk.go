// Package risk implements the Blood Glucose Risk Index of Kovatchev et al.
// as used by the paper (Section IV-C2, Eq. 5) to label simulation samples
// as hazardous, plus the LBGI/HBGI window statistics and the average-risk
// ingredients of Eq. 9.
package risk

import (
	"math"

	"repro/internal/trace"
)

// Default thresholds from the paper (footnote 1, citing Kovatchev):
// a window is hazardous when LBGI > 5 (hypoglycemia risk, H1) or
// HBGI > 9 (hyperglycemia risk, H2) and the index keeps increasing.
const (
	DefaultLBGIThreshold = 5.0
	DefaultHBGIThreshold = 9.0
	// DefaultWindow is the labeling window length in samples
	// (12 five-minute cycles = one hour, per Section IV-C2).
	DefaultWindow = 12
)

// riskZeroBG is the symmetrized-scale zero crossing: risk(112.5) == 0.
const riskZeroBG = 112.5

// Value computes the BG risk function of Eq. 5:
//
//	risk(BG) = 10 * (1.509 * ((ln BG)^1.084 - 5.381))^2
//
// BG is in mg/dL and must be positive; non-positive input returns the
// maximum clamped risk (100) on the hypoglycemic side semantics of Signed.
func Value(bg float64) float64 {
	if bg <= 0 {
		return 100
	}
	f := 1.509 * (math.Pow(math.Log(bg), 1.084) - 5.381)
	r := 10 * f * f
	if r > 100 {
		r = 100
	}
	return r
}

// Signed returns the signed risk: negative on the hypoglycemic branch
// (BG < 112.5 mg/dL) and positive on the hyperglycemic branch, matching
// the paper's "left and right branches of the BG risk function".
func Signed(bg float64) float64 {
	v := Value(bg)
	if bg < riskZeroBG {
		return -v
	}
	return v
}

// Indices computes the Low and High BG Indices over a window of BG
// readings: the mean of the left-branch and right-branch risks.
// Readings outside each branch contribute zero to that branch, per the
// standard Kovatchev definition.
func Indices(window []float64) (lbgi, hbgi float64) {
	if len(window) == 0 {
		return 0, 0
	}
	for _, bg := range window {
		s := Signed(bg)
		if s < 0 {
			lbgi += -s
		} else {
			hbgi += s
		}
	}
	n := float64(len(window))
	return lbgi / n, hbgi / n
}

// MeanRiskIndex returns the average (unsigned) risk index of a BG series,
// the per-simulation \bar{RI} term of the Average Risk metric (Eq. 9).
func MeanRiskIndex(bgs []float64) float64 {
	if len(bgs) == 0 {
		return 0
	}
	var sum float64
	for _, bg := range bgs {
		sum += Value(bg)
	}
	return sum / float64(len(bgs))
}

// Labeler configures hazard labeling.
type Labeler struct {
	// Window is the number of consecutive samples whose LBGI/HBGI are
	// examined (default DefaultWindow).
	Window int
	// LBGIThreshold and HBGIThreshold are the high-risk cutoffs
	// (defaults 5 and 9).
	LBGIThreshold float64
	HBGIThreshold float64
}

// fill applies defaults for zero fields.
func (l Labeler) fill() Labeler {
	if l.Window <= 0 {
		l.Window = DefaultWindow
	}
	if l.LBGIThreshold <= 0 {
		l.LBGIThreshold = DefaultLBGIThreshold
	}
	if l.HBGIThreshold <= 0 {
		l.HBGIThreshold = DefaultHBGIThreshold
	}
	return l
}

// Label assigns hazard labels to every sample of the trace, following
// Section IV-C2: a window of BG readings is marked hazardous when LBGI or
// HBGI crosses its high-risk threshold while increasing relative to the
// previous window. All samples of a flagged window receive the hazard
// label (H1 for LBGI, H2 for HBGI; H1 wins if both fire).
func (l Labeler) Label(tr *trace.Trace) {
	l = l.fill()
	n := tr.Len()
	if n == 0 {
		return
	}
	for i := range tr.Samples {
		tr.Samples[i].Hazard = trace.HazardNone
	}
	bgs := tr.BGSeries()
	w := l.Window
	if w > n {
		w = n
	}
	prevL, prevH := math.Inf(1), math.Inf(1)
	for end := w; end <= n; end++ {
		lo := end - w
		lbgi, hbgi := Indices(bgs[lo:end])
		var h trace.HazardType
		switch {
		case lbgi > l.LBGIThreshold && lbgi >= prevL:
			h = trace.HazardH1
		case hbgi > l.HBGIThreshold && hbgi >= prevH:
			h = trace.HazardH2
		}
		if end == w {
			// First window has no predecessor: threshold crossing alone
			// is enough (the hazard may predate the simulation window).
			switch {
			case lbgi > l.LBGIThreshold:
				h = trace.HazardH1
			case hbgi > l.HBGIThreshold:
				h = trace.HazardH2
			}
		}
		if h != trace.HazardNone {
			for i := lo; i < end; i++ {
				if tr.Samples[i].Hazard == trace.HazardNone {
					tr.Samples[i].Hazard = h
				}
			}
		}
		prevL, prevH = lbgi, hbgi
	}
}

// LabelAll labels a batch of traces.
func (l Labeler) LabelAll(traces []*trace.Trace) {
	for _, tr := range traces {
		l.Label(tr)
	}
}
