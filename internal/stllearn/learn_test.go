package stllearn

import (
	"math"
	"testing"

	"repro/internal/scs"
	"repro/internal/stl"
	"repro/internal/trace"
)

func TestLossShapes(t *testing.T) {
	tmee := TMEE{}
	telex := TeLEx{}
	// Both have exponential walls for violations.
	if tmee.Value(-3) < 10 || telex.Value(-3) < 10 {
		t.Error("losses should explode for negative margins")
	}
	// TMEE's minimum sits at a small positive margin (~0.45).
	best, bestR := math.Inf(1), 0.0
	for r := -1.0; r <= 5; r += 0.01 {
		if v := tmee.Value(r); v < best {
			best, bestR = v, r
		}
	}
	if bestR < 0.1 || bestR > 1.0 {
		t.Errorf("TMEE minimum at r=%v, want small positive", bestR)
	}
	// TeLEx's minimum is farther out: looser thresholds (Fig. 3b).
	bestT, bestTR := math.Inf(1), 0.0
	for r := -1.0; r <= 10; r += 0.01 {
		if v := telex.Value(r); v < bestT {
			bestT, bestTR = v, r
		}
	}
	if bestTR <= bestR {
		t.Errorf("TeLEx minimum r=%v should exceed TMEE's %v (less tight)", bestTR, bestR)
	}
	// MSE/MAE are symmetric: equal penalty for violation and slack.
	if (MSE{}).Value(-2) != (MSE{}).Value(2) || (MAE{}).Value(-2) != (MAE{}).Value(2) {
		t.Error("MSE/MAE should be symmetric")
	}
}

func TestLossByName(t *testing.T) {
	for _, name := range []string{"TMEE", "TeLEx", "MSE", "MAE", "tmee", "mse"} {
		if _, err := LossByName(name); err != nil {
			t.Errorf("LossByName(%q): %v", name, err)
		}
	}
	if _, err := LossByName("huber"); err == nil {
		t.Error("unknown loss should fail")
	}
}

func TestCurve(t *testing.T) {
	rs, vs := Curve(TMEE{}, -2, 4, 61)
	if len(rs) != 61 || len(vs) != 61 {
		t.Fatalf("lengths %d/%d", len(rs), len(vs))
	}
	if rs[0] != -2 || rs[60] != 4 {
		t.Errorf("range [%v,%v]", rs[0], rs[60])
	}
	// Degenerate n.
	rs, _ = Curve(MAE{}, 0, 1, 1)
	if len(rs) != 2 {
		t.Errorf("n<2 should clamp to 2, got %d", len(rs))
	}
}

// hazardTrace builds a synthetic H2-hazard trace where rule 9's context
// (BG > BGT, u3 issued) holds with a chosen IOB value before the hazard.
func hazardTrace(patient string, iob float64) *trace.Trace {
	tr := &trace.Trace{PatientID: patient, CycleMin: 5}
	for i := 0; i < 40; i++ {
		s := trace.Sample{
			Step: i, TimeMin: float64(i) * 5,
			BG: 200, CGM: 200, IOB: iob,
			Action: trace.ActionStop,
		}
		if i >= 20 {
			s.Hazard = trace.HazardH2
			s.BG, s.CGM = 300, 300
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

func rule9(t *testing.T) scs.Rule {
	t.Helper()
	for _, r := range scs.TableI() {
		if r.ID == 9 {
			return r
		}
	}
	t.Fatal("rule 9 missing")
	return scs.Rule{}
}

func TestExtractExamples(t *testing.T) {
	r := rule9(t)
	traces := []*trace.Trace{
		hazardTrace("p1", 0.8),
		hazardTrace("p1", 1.2),
	}
	cfg := Config{}
	examples := ExtractExamples(r, traces, cfg)
	if len(examples) == 0 {
		t.Fatal("no examples harvested")
	}
	for _, mu := range examples {
		if mu != 0.8 && mu != 1.2 {
			t.Errorf("unexpected example %v", mu)
		}
	}
	// A hazard-free trace contributes nothing.
	clean := &trace.Trace{PatientID: "p2", CycleMin: 5}
	for i := 0; i < 40; i++ {
		clean.Samples = append(clean.Samples, trace.Sample{Step: i, BG: 120, CGM: 120, Action: trace.ActionKeep})
	}
	if got := ExtractExamples(r, []*trace.Trace{clean}, cfg); len(got) != 0 {
		t.Errorf("clean trace yielded %d examples", len(got))
	}
	// A trace with the wrong hazard type contributes nothing to rule 9.
	h1 := hazardTrace("p3", 0.5)
	for i := range h1.Samples {
		if h1.Samples[i].Hazard == trace.HazardH2 {
			h1.Samples[i].Hazard = trace.HazardH1
		}
	}
	if got := ExtractExamples(r, []*trace.Trace{h1}, cfg); len(got) != 0 {
		t.Errorf("H1 trace yielded %d rule-9 examples", len(got))
	}
}

func TestLearnRuleTightensAboveExamples(t *testing.T) {
	r := rule9(t) // IOB < β rule
	examples := []float64{0.5, 0.8, 1.1, 1.3, 0.9}
	rep, err := LearnRule(r, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedDefault {
		t.Error("should not fall back to default with examples present")
	}
	// β must sit near the largest example (the TMEE wall is soft, so a
	// marginal shortfall on the single most extreme sample is allowed).
	if rep.Beta < 1.0 {
		t.Errorf("β = %v far below the largest example 1.3", rep.Beta)
	}
	if rep.Beta > 3.0 {
		t.Errorf("β = %v is not tight (max example 1.3)", rep.Beta)
	}
}

func TestLearnRuleGreaterThanDirection(t *testing.T) {
	var r6 scs.Rule
	for _, r := range scs.TableI() {
		if r.ID == 6 {
			r6 = r
		}
	}
	// IOB > β rule: β should sit just below the smallest example.
	examples := []float64{2.0, 2.5, 3.0, 3.5}
	rep, err := LearnRule(r6, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beta > 2.3 {
		t.Errorf("β = %v well above the smallest example 2.0", rep.Beta)
	}
	if rep.Beta < 0.5 {
		t.Errorf("β = %v is not tight (min example 2.0)", rep.Beta)
	}
}

func TestLearnRuleNoExamples(t *testing.T) {
	r := rule9(t)
	rep, err := LearnRule(r, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedDefault || rep.Beta != r.Default {
		t.Errorf("empty example set should keep default, got %+v", rep)
	}
}

func TestLearnRuleRespectsBounds(t *testing.T) {
	r := rule9(t)
	// Absurd examples beyond Hi: β must clamp at Hi.
	examples := []float64{100, 200}
	rep, err := LearnRule(r, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beta > r.Hi || rep.Beta < r.Lo {
		t.Errorf("β = %v escaped [%v,%v]", rep.Beta, r.Lo, r.Hi)
	}
}

func TestLearnAllRules(t *testing.T) {
	traces := []*trace.Trace{hazardTrace("p1", 0.8), hazardTrace("p1", 1.0)}
	th, report, err := Learn(scs.TableI(), traces, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 12 {
		t.Fatalf("got %d thresholds", len(th))
	}
	if report.TotalExamples == 0 {
		t.Error("no examples found")
	}
	// Rule 9 learned from data; rules with no matching context hold
	// their defaults.
	if th[9] < 1.0 {
		t.Errorf("rule 9 β = %v, want above max example 1.0", th[9])
	}
	var sawDefault bool
	for _, rr := range report.Rules {
		if rr.UsedDefault {
			sawDefault = true
		}
	}
	if !sawDefault {
		t.Error("expected some rules to keep their defaults on this narrow dataset")
	}
}

func TestLearnWithMSELandsInMiddle(t *testing.T) {
	// The Fig. 3a criticism: symmetric losses put β mid-distribution,
	// violating the formula for roughly half the examples.
	r := rule9(t)
	examples := []float64{1.0, 2.0, 3.0, 4.0}
	repMSE, err := LearnRule(r, examples, Config{Loss: MSE{}})
	if err != nil {
		t.Fatal(err)
	}
	if repMSE.Beta > 3.0 {
		t.Errorf("MSE β = %v, expected mid-distribution (~2.5)", repMSE.Beta)
	}
	repTMEE, err := LearnRule(r, examples, Config{Loss: TMEE{}})
	if err != nil {
		t.Fatal(err)
	}
	if repTMEE.Beta <= repMSE.Beta {
		t.Errorf("TMEE β %v should exceed MSE β %v", repTMEE.Beta, repMSE.Beta)
	}
}

func TestLearnPerPatient(t *testing.T) {
	traces := []*trace.Trace{
		hazardTrace("pA", 0.5),
		hazardTrace("pA", 0.7),
		hazardTrace("pB", 3.0),
		hazardTrace("pB", 3.5),
	}
	per, err := LearnPerPatient(scs.TableI(), traces, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("got %d patients", len(per))
	}
	// Patient-specific thresholds must reflect their own data.
	if per["pA"][9] >= per["pB"][9] {
		t.Errorf("patient A β9 %v should be below patient B %v", per["pA"][9], per["pB"][9])
	}
}

func TestFolds(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, &trace.Trace{PatientID: "p", CycleMin: 5})
	}
	folds := Folds(traces, 4)
	if len(folds) != 4 {
		t.Fatalf("got %d folds", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += len(f)
	}
	if total != 10 {
		t.Errorf("folds cover %d traces, want 10", total)
	}
	train := TrainingSet(folds, 0)
	if len(train)+len(folds[0]) != 10 {
		t.Error("training set + test fold should cover everything")
	}
	// k < 2 clamps to 2.
	if len(Folds(traces, 1)) != 2 {
		t.Error("k<2 should clamp")
	}
}

func TestLearnedRuleSTLIsTight(t *testing.T) {
	// End-to-end: learned β makes the rule's STL fire on hazardous
	// states and stay silent on a comfortable state.
	r := rule9(t)
	examples := []float64{0.5, 0.8, 1.1}
	rep, err := LearnRule(r, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := scs.Params{}.WithDefaults()
	hazardous := scs.State{BG: 200, IOB: 0.8, Action: trace.ActionStop}
	if !r.Violated(hazardous, p, rep.Beta) {
		t.Error("learned rule should fire on a hazardous example state")
	}
	safe := scs.State{BG: 200, IOB: rep.Beta + 2, Action: trace.ActionStop}
	if r.Violated(safe, p, rep.Beta) {
		t.Error("learned rule should not fire well above β")
	}
	_ = stl.OpLT // keep the stl import for the op reference in docs
}
