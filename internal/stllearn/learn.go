package stllearn

import (
	"fmt"
	"sort"

	"repro/internal/optimize"
	"repro/internal/scs"
	"repro/internal/stl"
	"repro/internal/trace"
)

// Config tunes threshold learning.
type Config struct {
	Loss   Loss       // default TMEE
	Params scs.Params // rule evaluation constants
	// Lookahead is the prediction horizon in control cycles: samples up
	// to Lookahead cycles before the first hazardous sample (and during
	// the hazard) count as negative examples. Zero means 24 cycles (2 h),
	// matching the paper's ~2 h average reaction time target.
	Lookahead int
	// MaxIterations bounds the per-rule L-BFGS-B run (default 150).
	MaxIterations int
	// TrimQuantile drops the most extreme fraction of examples on the
	// boundary side before optimizing (default 0.02): a single stray
	// sample far from the bulk would otherwise drag the tight threshold
	// with it. Negative disables trimming.
	TrimQuantile float64
}

func (c Config) withDefaults() Config {
	if c.Loss == nil {
		c.Loss = TMEE{}
	}
	c.Params = c.Params.WithDefaults()
	if c.Lookahead == 0 {
		c.Lookahead = 24
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 150
	}
	if c.TrimQuantile == 0 {
		c.TrimQuantile = 0.02
	}
	return c
}

// RuleReport describes the learning outcome for one rule.
type RuleReport struct {
	RuleID      int
	Examples    int
	Beta        float64
	UsedDefault bool // true when no examples matched and the default held
	Converged   bool
	LossValue   float64
}

// Report aggregates per-rule outcomes.
type Report struct {
	Rules []RuleReport
	// TotalExamples counts harvested negative examples across rules.
	TotalExamples int
}

// ExtractExamples harvests the learnable-variable values from hazardous
// traces for one rule: samples within the prediction window before (and
// during) a hazard of the rule's type, where the rule's fixed context
// holds and the constrained action was issued (or, for required-action
// rules, withheld). These are the negative examples of Section IV-C1.
func ExtractExamples(r scs.Rule, traces []*trace.Trace, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	lookback := cfg.Lookahead
	if r.HarvestLookback > 0 {
		lookback = r.HarvestLookback
	}
	var out []float64
	for _, tr := range traces {
		h := tr.FirstHazardStep()
		if h < 0 || tr.DominantHazard() != r.Hazard {
			continue
		}
		lo := h - lookback
		if lo < 0 {
			lo = 0
		}
		if r.HarvestHazardOnly {
			lo = h
		}
		for i := lo; i < tr.Len(); i++ {
			s := &tr.Samples[i]
			if s.Hazard == trace.HazardNone && s.Step > h {
				// Past the hazard and recovered: stop harvesting.
				break
			}
			if r.HarvestHazardOnly && s.Hazard == trace.HazardNone {
				continue
			}
			st := scs.StateFromSample(s)
			if !r.ContextHolds(st, cfg.Params) {
				continue
			}
			actionMatch := st.Action == r.Action
			if r.Required {
				actionMatch = st.Action != r.Action
			}
			if !actionMatch {
				continue
			}
			out = append(out, r.LearnValue(st))
		}
	}
	return out
}

// LearnRule fits one rule's β to its examples with L-BFGS-B. The margin
// convention follows the predicate direction: for "µ < β" rules the
// margin of an example µ is r = β − µ; for "µ > β" rules r = µ − β. With
// a tight loss, β lands just past the example set's extreme, so all
// hazardous contexts satisfy the predicate (and trigger the monitor)
// with minimal slack.
func LearnRule(r scs.Rule, examples []float64, cfg Config) (RuleReport, error) {
	cfg = cfg.withDefaults()
	rep := RuleReport{RuleID: r.ID, Examples: len(examples), Beta: r.Default}
	if len(examples) == 0 {
		rep.UsedDefault = true
		return rep, nil
	}
	lessThan := r.LearnOp == stl.OpLT || r.LearnOp == stl.OpLE
	trim := cfg.TrimQuantile
	if r.HarvestTrim > 0 {
		trim = r.HarvestTrim
	}
	if !lessThan && r.HarvestTrim == 0 {
		// "µ > β" rules: β sits below the example bulk, and every trimmed
		// low example is a hazardous state the monitor would then miss.
		// Missing a hazard costs more than an extra alarm, so only
		// explicit per-rule overrides trim on this side.
		trim = 0
	}
	examples = trimExtremes(examples, trim, lessThan)
	objective := func(x []float64) float64 {
		beta := x[0]
		var sum float64
		for _, mu := range examples {
			rr := beta - mu
			if !lessThan {
				rr = mu - beta
			}
			sum += cfg.Loss.Value(rr)
		}
		return sum / float64(len(examples))
	}
	// Start from the example mean, projected into bounds.
	var mean float64
	for _, mu := range examples {
		mean += mu
	}
	mean /= float64(len(examples))

	res, err := optimize.Minimize(optimize.Problem{
		F:     objective,
		Lower: []float64{r.Lo},
		Upper: []float64{r.Hi},
	}, []float64{mean}, optimize.Options{MaxIterations: cfg.MaxIterations})
	if err != nil {
		return rep, fmt.Errorf("stllearn: rule %d: %w", r.ID, err)
	}
	rep.Beta = res.X[0]
	rep.Converged = res.Converged
	rep.LossValue = res.F
	return rep, nil
}

// trimExtremes drops the q-quantile of examples on the boundary side:
// the top for "µ < β" rules (whose β sits above the examples), the
// bottom for "µ > β" rules. The input is not modified.
func trimExtremes(examples []float64, q float64, lessThan bool) []float64 {
	if q <= 0 || len(examples) < 10 {
		return examples
	}
	sorted := append([]float64(nil), examples...)
	sort.Float64s(sorted)
	drop := int(q * float64(len(sorted)))
	if drop == 0 {
		return sorted
	}
	if lessThan {
		return sorted[:len(sorted)-drop]
	}
	return sorted[drop:]
}

// Learn fits thresholds for every rule from the given labeled traces.
func Learn(rules []scs.Rule, traces []*trace.Trace, cfg Config) (scs.Thresholds, Report, error) {
	cfg = cfg.withDefaults()
	th := make(scs.Thresholds, len(rules))
	var report Report
	for _, r := range rules {
		examples := ExtractExamples(r, traces, cfg)
		rep, err := LearnRule(r, examples, cfg)
		if err != nil {
			return nil, Report{}, err
		}
		th[r.ID] = rep.Beta
		report.Rules = append(report.Rules, rep)
		report.TotalExamples += rep.Examples
	}
	sort.Slice(report.Rules, func(i, j int) bool { return report.Rules[i].RuleID < report.Rules[j].RuleID })
	return th, report, nil
}

// LearnPerPatient fits patient-specific thresholds: traces are grouped by
// PatientID and each group is learned independently, the paper's
// patient-specific CAWT configuration (Table VIII).
func LearnPerPatient(rules []scs.Rule, traces []*trace.Trace, cfg Config) (map[string]scs.Thresholds, error) {
	groups := make(map[string][]*trace.Trace)
	for _, tr := range traces {
		groups[tr.PatientID] = append(groups[tr.PatientID], tr)
	}
	out := make(map[string]scs.Thresholds, len(groups))
	for id, group := range groups {
		th, _, err := Learn(rules, group, cfg)
		if err != nil {
			return nil, fmt.Errorf("stllearn: patient %s: %w", id, err)
		}
		out[id] = th
	}
	return out, nil
}

// Folds splits traces into k cross-validation folds by round-robin,
// preserving determinism. Fold i's test set is folds[i]; its training
// set is every other fold. The paper uses 4-fold cross-validation
// (Section V-B).
func Folds(traces []*trace.Trace, k int) [][]*trace.Trace {
	if k < 2 {
		k = 2
	}
	folds := make([][]*trace.Trace, k)
	for i, tr := range traces {
		folds[i%k] = append(folds[i%k], tr)
	}
	return folds
}

// TrainingSet concatenates every fold except test.
func TrainingSet(folds [][]*trace.Trace, test int) []*trace.Trace {
	var out []*trace.Trace
	for i, f := range folds {
		if i == test {
			continue
		}
		out = append(out, f...)
	}
	return out
}
