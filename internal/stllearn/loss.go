// Package stllearn implements the paper's data-driven refinement of STL
// thresholds (Section III-C2): hazardous traces from fault-injection
// campaigns provide negative examples; per rule, a scalar boundary β is
// learned with L-BFGS-B by minimizing a tightness loss over the
// satisfaction margins r = ±(µ(d(t)) − β).
package stllearn

import (
	"fmt"
	"math"
)

// Loss is a pointwise tightness loss over the satisfaction margin r of a
// learnable predicate. Minimizing the expected loss drives thresholds to
// sit tightly above (below) the hazardous examples.
type Loss interface {
	Name() string
	Value(r float64) float64
}

// TMEE is the paper's Tight Mean Exponential Error (Eq. 4):
//
//	loss(r) = e^{−r} + (r−1)/(1 + e^{−2r})
//
// An exponential wall for r < 0 guarantees hazardous examples stay inside
// the learned boundary, while the saturating linear term for r > 0 pulls
// the boundary tight; the minimum sits at a small positive margin
// (≈ 0.45), visible in Fig. 3b.
type TMEE struct{}

// Name implements Loss.
func (TMEE) Name() string { return "TMEE" }

// Value implements Loss.
func (TMEE) Value(r float64) float64 {
	return math.Exp(-r) + (r-1)/(1+math.Exp(-2*r))
}

// TeLEx is the tightness metric of the TeLEx system (Jha et al.), which
// the paper compares against: same exponential wall for violations but a
// much shallower pull toward zero margin, so learned thresholds carry
// slack unless manually adjusted (Fig. 3b).
type TeLEx struct{}

// Name implements Loss.
func (TeLEx) Name() string { return "TeLEx" }

// Value implements Loss.
func (TeLEx) Value(r float64) float64 {
	return math.Exp(-r) + 0.1*r
}

// MSE is the mean-squared-error strawman of Fig. 3a: symmetric around
// r = 0, so minimizing it places the boundary in the middle of the
// examples and violates the STL formula on roughly half of them.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "MSE" }

// Value implements Loss.
func (MSE) Value(r float64) float64 { return r * r }

// MAE is the mean-absolute-error strawman of Fig. 3a.
type MAE struct{}

// Name implements Loss.
func (MAE) Name() string { return "MAE" }

// Value implements Loss.
func (MAE) Value(r float64) float64 { return math.Abs(r) }

// LossByName resolves a loss by its display name.
func LossByName(name string) (Loss, error) {
	switch name {
	case "TMEE", "tmee":
		return TMEE{}, nil
	case "TeLEx", "telex":
		return TeLEx{}, nil
	case "MSE", "mse":
		return MSE{}, nil
	case "MAE", "mae":
		return MAE{}, nil
	default:
		return nil, fmt.Errorf("stllearn: unknown loss %q", name)
	}
}

// Curve samples the loss over margins [lo, hi] with n points; the series
// reproduces Fig. 3.
func Curve(l Loss, lo, hi float64, n int) (rs, values []float64) {
	if n < 2 {
		n = 2
	}
	rs = make([]float64, n)
	values = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		r := lo + float64(i)*step
		rs[i] = r
		values[i] = l.Value(r)
	}
	return rs, values
}
