package control

// Input is what a controller observes at the start of a control cycle:
// the sensed glucose and the cycle timing. Controllers keep their own
// IOB estimates internally (as OpenAPS does) so that fault injection can
// perturb them.
type Input struct {
	TimeMin  float64 // minutes since simulation start
	CGM      float64 // sensed glucose, mg/dL
	CycleMin float64 // control-cycle length in minutes
}

// Output is the controller's command for the next cycle.
type Output struct {
	RateUPerH float64 // insulin infusion rate command, U/h
	IOB       float64 // controller's own IOB estimate at decision time, U
}

// Controller is a closed-loop insulin controller.
//
// Vars exposes named internal state variables for the source-level fault
// injection engine (Section IV-C1 of the paper perturbs "inputs, outputs,
// and the internal state variables of the APS control software"). The
// returned pointers remain valid until the next Reset.
type Controller interface {
	// Name identifies the control algorithm (e.g. "openaps").
	Name() string
	// Decide computes the insulin command for the cycle. Implementations
	// must first refresh their internal variables from in, then read the
	// (possibly fault-perturbed) variables to form the command.
	Decide(in Input) Output
	// RecordDelivery informs the controller what was actually delivered
	// over the elapsed cycle (the safety monitor may have overridden the
	// command), so its IOB bookkeeping tracks reality.
	RecordDelivery(rateUPerH, dtMin float64)
	// Vars returns the named fault-injectable internal variables.
	Vars() map[string]*float64
	// SetPerturb attaches a fault-injection hook invoked at StagePre and
	// StagePost of every Decide call; nil detaches.
	SetPerturb(h PerturbFunc)
	// Reset restores the controller to its initial state.
	Reset()
}
