// Snapshot/restore of controller state. Controllers serialize their IOB
// dose history and named internal variables; the fault-injection hook
// (SetPerturb) is a function pointer installed by the owning session and
// is re-attached on restore by the caller, not serialized.

package control

import (
	"fmt"

	"repro/internal/snapshot"
)

var (
	_ snapshot.Snapshotter = (*IOBTracker)(nil)
	_ snapshot.Snapshotter = (*OpenAPS)(nil)
	_ snapshot.Snapshotter = (*BasalBolus)(nil)
)

// SnapshotState implements snapshot.Snapshotter: the clock and the
// unexpired dose history in recording order.
func (t *IOBTracker) SnapshotState(enc *snapshot.Encoder) {
	enc.Float64(t.now)
	enc.Int(len(t.doses))
	for _, d := range t.doses {
		enc.Float64(d.timeMin)
		enc.Float64(d.units)
	}
}

// RestoreState implements snapshot.Snapshotter.
func (t *IOBTracker) RestoreState(dec *snapshot.Decoder) error {
	now := dec.Float64()
	n := dec.Count(16)
	if err := dec.Err(); err != nil {
		return err
	}
	doses := make([]dose, n)
	for i := range doses {
		doses[i] = dose{timeMin: dec.Float64(), units: dec.Float64()}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	t.now = now
	t.doses = doses
	return nil
}

// SnapshotState implements snapshot.Snapshotter: the IOB tracker plus
// every named internal variable and the carried-over rate memory.
func (c *OpenAPS) SnapshotState(enc *snapshot.Encoder) {
	c.tracker.SnapshotState(enc)
	enc.Float64(c.glucose)
	enc.Float64(c.prevGlucose)
	enc.Float64(c.iob)
	enc.Float64(c.isf)
	enc.Float64(c.eventualBG)
	enc.Float64(c.rate)
	enc.Bool(c.havePrev)
	enc.Float64(c.lastRate)
}

// RestoreState implements snapshot.Snapshotter. The perturb hook is
// left as-is; callers re-attach fault injection separately.
func (c *OpenAPS) RestoreState(dec *snapshot.Decoder) error {
	if err := c.tracker.RestoreState(dec); err != nil {
		return fmt.Errorf("openaps iob tracker: %w", err)
	}
	glucose := dec.Float64()
	prevGlucose := dec.Float64()
	iob := dec.Float64()
	isf := dec.Float64()
	eventualBG := dec.Float64()
	rate := dec.Float64()
	havePrev := dec.Bool()
	lastRate := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	c.glucose, c.prevGlucose = glucose, prevGlucose
	c.iob, c.isf, c.eventualBG, c.rate = iob, isf, eventualBG, rate
	c.havePrev, c.lastRate = havePrev, lastRate
	return nil
}

// SnapshotState implements snapshot.Snapshotter.
func (c *BasalBolus) SnapshotState(enc *snapshot.Encoder) {
	c.tracker.SnapshotState(enc)
	enc.Float64(c.glucose)
	enc.Float64(c.iob)
	enc.Float64(c.isf)
	enc.Float64(c.rate)
	enc.Float64(c.lastBolusMin)
	enc.Bool(c.hasBolused)
}

// RestoreState implements snapshot.Snapshotter.
func (c *BasalBolus) RestoreState(dec *snapshot.Decoder) error {
	if err := c.tracker.RestoreState(dec); err != nil {
		return fmt.Errorf("basal-bolus iob tracker: %w", err)
	}
	glucose := dec.Float64()
	iob := dec.Float64()
	isf := dec.Float64()
	rate := dec.Float64()
	lastBolusMin := dec.Float64()
	hasBolused := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	c.glucose, c.iob, c.isf, c.rate = glucose, iob, isf, rate
	c.lastBolusMin, c.hasBolused = lastBolusMin, hasBolused
	return nil
}
