package control

import (
	"fmt"
	"math"
)

// Stage marks where in a control cycle a perturbation hook runs.
type Stage int

// Perturbation stages: before the command is computed (inputs and
// internal estimates are live) and after (the output command is live).
const (
	// StagePre runs after the controller refreshed its internal
	// variables from the cycle inputs, before it computes the command.
	StagePre Stage = iota + 1
	// StagePost runs after the command has been computed, with the
	// "rate" variable holding the output.
	StagePost
)

// PerturbFunc mutates named controller variables in place. It is the
// attachment point for the fault-injection engine.
type PerturbFunc func(stage Stage, vars map[string]*float64)

// OpenAPSConfig parameterizes the OpenAPS-style controller.
type OpenAPSConfig struct {
	Basal        float64 // scheduled basal rate, U/h (required, > 0)
	ISF          float64 // insulin sensitivity factor, mg/dL per U (required)
	TargetBG     float64 // control target, mg/dL (default 110)
	TargetLow    float64 // lower bound of the target range (default 100)
	TargetHigh   float64 // upper bound of the target range (default 120)
	LGSThreshold float64 // low-glucose suspend threshold (default 70)
	MaxBasal     float64 // temp-basal ceiling, U/h (default 4x basal)
	MaxIOB       float64 // IOB ceiling for positive corrections, U (default 2x basal)
	DIA          float64 // duration of insulin action, min (default 300)
	PeakT        float64 // insulin activity peak, min (default 75)
}

func (c OpenAPSConfig) withDefaults() (OpenAPSConfig, error) {
	if c.Basal <= 0 {
		return c, fmt.Errorf("control: openaps needs positive basal, got %v", c.Basal)
	}
	if c.ISF <= 0 {
		return c, fmt.Errorf("control: openaps needs positive ISF, got %v", c.ISF)
	}
	if c.TargetBG == 0 {
		c.TargetBG = 110
	}
	if c.TargetLow == 0 {
		c.TargetLow = 100
	}
	if c.TargetHigh == 0 {
		c.TargetHigh = 120
	}
	if c.LGSThreshold == 0 {
		c.LGSThreshold = 70
	}
	if c.MaxBasal == 0 {
		c.MaxBasal = 4 * c.Basal
	}
	if c.MaxIOB == 0 {
		c.MaxIOB = 3 * c.Basal
	}
	if c.DIA == 0 {
		c.DIA = 300
	}
	if c.PeakT == 0 {
		c.PeakT = 75
	}
	return c, nil
}

// OpenAPS is a Control-to-Target temp-basal controller modeled on the
// oref0 determine-basal algorithm: it projects an eventual BG from the
// current glucose, net IOB, and the recent deviation between observed
// and insulin-explained glucose change, then adjusts a temporary basal
// rate toward the target, with low-glucose suspend, max-basal, and
// max-IOB safety clamps.
type OpenAPS struct {
	cfg     OpenAPSConfig
	tracker *IOBTracker

	vars    map[string]*float64
	perturb PerturbFunc

	// Named internal state (fault-injectable).
	glucose     float64
	prevGlucose float64
	iob         float64
	isf         float64
	eventualBG  float64
	rate        float64

	havePrev bool
	lastRate float64
}

var _ Controller = (*OpenAPS)(nil)

// NewOpenAPS constructs the controller.
func NewOpenAPS(cfg OpenAPSConfig) (*OpenAPS, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	curve, err := NewExponentialCurve(cfg.DIA, cfg.PeakT)
	if err != nil {
		return nil, fmt.Errorf("control: openaps insulin curve: %w", err)
	}
	c := &OpenAPS{
		cfg:     cfg,
		tracker: NewIOBTracker(curve, cfg.Basal),
		isf:     cfg.ISF,
	}
	c.vars = map[string]*float64{
		"glucose":     &c.glucose,
		"iob":         &c.iob,
		"isf":         &c.isf,
		"eventual_bg": &c.eventualBG,
		"rate":        &c.rate,
	}
	c.lastRate = cfg.Basal
	return c, nil
}

// Name implements Controller.
func (c *OpenAPS) Name() string { return "openaps" }

// Vars implements Controller.
func (c *OpenAPS) Vars() map[string]*float64 { return c.vars }

// SetPerturb attaches the fault-injection hook (nil detaches).
func (c *OpenAPS) SetPerturb(h PerturbFunc) { c.perturb = h }

// Decide implements Controller.
func (c *OpenAPS) Decide(in Input) Output {
	// Refresh fault-injectable inputs and estimates.
	c.glucose = in.CGM
	c.iob = c.tracker.IOB()
	c.isf = c.cfg.ISF
	if c.perturb != nil {
		c.perturb(StagePre, c.vars)
	}

	cycle := in.CycleMin
	if cycle <= 0 {
		cycle = 5
	}
	delta := 0.0
	if c.havePrev {
		delta = c.glucose - c.prevGlucose
	}
	activity := c.tracker.Activity()
	bgi := -activity * c.isf * cycle // insulin-explained change this cycle
	deviation := (30 / cycle) * (delta - bgi)
	naive := c.glucose - c.iob*c.isf
	c.eventualBG = naive + deviation

	switch {
	case c.glucose < c.cfg.LGSThreshold:
		// Low-glucose suspend.
		c.rate = 0
	case c.eventualBG < c.cfg.TargetLow:
		insulinReq := (c.eventualBG - c.cfg.TargetBG) / c.isf // negative
		r := c.cfg.Basal + 2*insulinReq
		c.rate = math.Max(0, r)
	case c.eventualBG > c.cfg.TargetHigh:
		if c.iob >= c.cfg.MaxIOB {
			c.rate = c.cfg.Basal // IOB cap reached: no extra insulin
		} else {
			insulinReq := (c.eventualBG - c.cfg.TargetBG) / c.isf
			if insulinReq+c.iob > c.cfg.MaxIOB {
				insulinReq = c.cfg.MaxIOB - c.iob
			}
			r := c.cfg.Basal + 2*insulinReq
			c.rate = math.Min(r, c.cfg.MaxBasal)
		}
	default:
		c.rate = c.cfg.Basal
	}

	if c.perturb != nil {
		c.perturb(StagePost, c.vars)
	}
	if c.rate < 0 {
		c.rate = 0
	}
	c.prevGlucose = c.glucose
	c.havePrev = true
	c.lastRate = c.rate
	return Output{RateUPerH: c.rate, IOB: c.iob}
}

// RecordDelivery implements Controller.
func (c *OpenAPS) RecordDelivery(rateUPerH, dtMin float64) {
	c.tracker.Record(rateUPerH, dtMin)
}

// Reset implements Controller.
func (c *OpenAPS) Reset() {
	c.tracker.Reset()
	c.havePrev = false
	c.prevGlucose = 0
	c.glucose = 0
	c.iob = 0
	c.isf = c.cfg.ISF
	c.eventualBG = 0
	c.rate = 0
	c.lastRate = c.cfg.Basal
}
