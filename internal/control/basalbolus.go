package control

import (
	"fmt"
	"math"
)

// BasalBolusConfig parameterizes the Basal-Bolus protocol controller.
type BasalBolusConfig struct {
	Basal        float64 // scheduled basal rate, U/h (required)
	ISF          float64 // correction factor, mg/dL per U (required)
	TargetBG     float64 // correction target, mg/dL (default 120)
	CorrectAbove float64 // give a correction bolus when CGM exceeds this (default 150)
	IntervalMin  float64 // minimum minutes between correction boluses (default 30)
	LGSThreshold float64 // low-glucose suspend threshold (default 70)
	MaxBolus     float64 // per-correction bolus cap, U (default 5)
	MaxIOB       float64 // skip corrections above this IOB, U (default 3)
	DIA          float64 // duration of insulin action, min (default 300)
	PeakT        float64 // activity peak, min (default 75)
}

func (c BasalBolusConfig) withDefaults() (BasalBolusConfig, error) {
	if c.Basal <= 0 {
		return c, fmt.Errorf("control: basal-bolus needs positive basal, got %v", c.Basal)
	}
	if c.ISF <= 0 {
		return c, fmt.Errorf("control: basal-bolus needs positive ISF, got %v", c.ISF)
	}
	// Defaults follow the hospital basal-bolus protocol the paper cites
	// (Chertok Shacham et al.): corrections toward a conservative
	// 140 mg/dL target, issued at most every 4 hours when BG exceeds
	// 180 mg/dL — far looser than closed-loop control, which is what
	// differentiates this platform's dynamics.
	if c.TargetBG == 0 {
		c.TargetBG = 140
	}
	if c.CorrectAbove == 0 {
		c.CorrectAbove = 180
	}
	if c.IntervalMin == 0 {
		c.IntervalMin = 240
	}
	if c.LGSThreshold == 0 {
		c.LGSThreshold = 70
	}
	if c.MaxBolus == 0 {
		c.MaxBolus = 5
	}
	if c.MaxIOB == 0 {
		c.MaxIOB = 3
	}
	if c.DIA == 0 {
		c.DIA = 300
	}
	if c.PeakT == 0 {
		c.PeakT = 75
	}
	return c, nil
}

// BasalBolus is the hospital basal-bolus insulin protocol used as the
// paper's second controller: a fixed basal infusion plus periodic
// correction boluses proportional to the glucose excursion above target,
// with low-glucose suspend.
type BasalBolus struct {
	cfg     BasalBolusConfig
	tracker *IOBTracker

	vars    map[string]*float64
	perturb PerturbFunc

	glucose float64
	iob     float64
	isf     float64
	rate    float64

	lastBolusMin float64
	hasBolused   bool
}

var _ Controller = (*BasalBolus)(nil)

// NewBasalBolus constructs the controller.
func NewBasalBolus(cfg BasalBolusConfig) (*BasalBolus, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	curve, err := NewExponentialCurve(cfg.DIA, cfg.PeakT)
	if err != nil {
		return nil, fmt.Errorf("control: basal-bolus insulin curve: %w", err)
	}
	c := &BasalBolus{
		cfg:     cfg,
		tracker: NewIOBTracker(curve, cfg.Basal),
		isf:     cfg.ISF,
	}
	c.vars = map[string]*float64{
		"glucose": &c.glucose,
		"iob":     &c.iob,
		"isf":     &c.isf,
		"rate":    &c.rate,
	}
	return c, nil
}

// Name implements Controller.
func (c *BasalBolus) Name() string { return "basal-bolus" }

// Vars implements Controller.
func (c *BasalBolus) Vars() map[string]*float64 { return c.vars }

// SetPerturb attaches the fault-injection hook (nil detaches).
func (c *BasalBolus) SetPerturb(h PerturbFunc) { c.perturb = h }

// Decide implements Controller.
func (c *BasalBolus) Decide(in Input) Output {
	c.glucose = in.CGM
	c.iob = c.tracker.IOB()
	c.isf = c.cfg.ISF
	if c.perturb != nil {
		c.perturb(StagePre, c.vars)
	}

	cycle := in.CycleMin
	if cycle <= 0 {
		cycle = 5
	}
	switch {
	case c.glucose < c.cfg.LGSThreshold:
		c.rate = 0
	case c.glucose > c.cfg.CorrectAbove && c.dueForBolus(in.TimeMin) && c.iob < c.cfg.MaxIOB:
		bolus := (c.glucose - c.cfg.TargetBG) / c.isf
		bolus = math.Min(bolus, c.cfg.MaxBolus)
		bolus = math.Min(bolus, c.cfg.MaxIOB-c.iob)
		if bolus < 0 {
			bolus = 0
		}
		// Deliver the bolus spread over this cycle on top of basal.
		c.rate = c.cfg.Basal + bolus*60/cycle
		c.lastBolusMin = in.TimeMin
		c.hasBolused = true
	default:
		c.rate = c.cfg.Basal
	}

	if c.perturb != nil {
		c.perturb(StagePost, c.vars)
	}
	if c.rate < 0 {
		c.rate = 0
	}
	return Output{RateUPerH: c.rate, IOB: c.iob}
}

func (c *BasalBolus) dueForBolus(nowMin float64) bool {
	return !c.hasBolused || nowMin-c.lastBolusMin >= c.cfg.IntervalMin
}

// RecordDelivery implements Controller.
func (c *BasalBolus) RecordDelivery(rateUPerH, dtMin float64) {
	c.tracker.Record(rateUPerH, dtMin)
}

// Reset implements Controller.
func (c *BasalBolus) Reset() {
	c.tracker.Reset()
	c.glucose = 0
	c.iob = 0
	c.isf = c.cfg.ISF
	c.rate = 0
	c.lastBolusMin = 0
	c.hasBolused = false
}
