package control

import (
	"math"
	"testing"
	"testing/quick"
)

func mustExpCurve(t *testing.T) *ExponentialCurve {
	t.Helper()
	c, err := NewExponentialCurve(300, 75)
	if err != nil {
		t.Fatalf("NewExponentialCurve: %v", err)
	}
	return c
}

func TestExponentialCurveValidation(t *testing.T) {
	tests := []struct {
		name      string
		dia, peak float64
	}{
		{"zero dia", 0, 75},
		{"zero peak", 300, 0},
		{"peak at half dia", 300, 150},
		{"peak beyond half dia", 300, 200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewExponentialCurve(tt.dia, tt.peak); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestExponentialCurveBoundaries(t *testing.T) {
	c := mustExpCurve(t)
	if got := c.IOBFraction(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("IOBFraction(0) = %v, want 1", got)
	}
	if got := c.IOBFraction(300); got > 0.001 {
		t.Errorf("IOBFraction(DIA) = %v, want ~0", got)
	}
	if got := c.IOBFraction(-5); got != 1 {
		t.Errorf("IOBFraction(-5) = %v, want 1", got)
	}
	if got := c.IOBFraction(400); got != 0 {
		t.Errorf("IOBFraction(past DIA) = %v, want 0", got)
	}
	if got := c.Activity(-1); got != 0 {
		t.Errorf("Activity(-1) = %v, want 0", got)
	}
	if got := c.Activity(301); got != 0 {
		t.Errorf("Activity(past DIA) = %v, want 0", got)
	}
	if c.DIA() != 300 {
		t.Errorf("DIA = %v", c.DIA())
	}
}

func TestExponentialCurvePeak(t *testing.T) {
	c := mustExpCurve(t)
	// Activity should peak near the configured 75 minutes.
	best, bestT := 0.0, 0.0
	for tm := 1.0; tm <= 299; tm++ {
		if a := c.Activity(tm); a > best {
			best, bestT = a, tm
		}
	}
	if math.Abs(bestT-75) > 5 {
		t.Errorf("activity peak at %v min, want ~75", bestT)
	}
}

func TestExponentialCurveMonotoneIOB(t *testing.T) {
	c := mustExpCurve(t)
	prev := 1.0
	for tm := 0.0; tm <= 300; tm += 5 {
		f := c.IOBFraction(tm)
		if f > prev+1e-9 {
			t.Fatalf("IOBFraction increased at t=%v: %v > %v", tm, f, prev)
		}
		prev = f
	}
}

func TestExponentialActivityIntegratesToOne(t *testing.T) {
	c := mustExpCurve(t)
	var integral float64
	const h = 0.1
	for tm := 0.0; tm < 300; tm += h {
		integral += c.Activity(tm+h/2) * h
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("activity integral = %v, want ~1", integral)
	}
}

func TestExponentialActivityMatchesIOBDerivative(t *testing.T) {
	c := mustExpCurve(t)
	for tm := 10.0; tm < 290; tm += 20 {
		const h = 0.01
		num := -(c.IOBFraction(tm+h) - c.IOBFraction(tm-h)) / (2 * h)
		if math.Abs(num-c.Activity(tm)) > 1e-3 {
			t.Errorf("at t=%v: -dIOB/dt = %v, Activity = %v", tm, num, c.Activity(tm))
		}
	}
}

func TestBilinearCurve(t *testing.T) {
	if _, err := NewBilinearCurve(0); err == nil {
		t.Error("zero DIA should fail")
	}
	c, err := NewBilinearCurve(240)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.IOBFraction(0); got != 1 {
		t.Errorf("IOBFraction(0) = %v", got)
	}
	if got := c.IOBFraction(240); math.Abs(got) > 1e-9 {
		t.Errorf("IOBFraction(DIA) = %v, want 0", got)
	}
	// Peak at 0.25*DIA = 60.
	if c.Activity(60) <= c.Activity(30) || c.Activity(60) <= c.Activity(120) {
		t.Error("bilinear activity should peak at DIA/4")
	}
	var integral float64
	const h = 0.05
	for tm := 0.0; tm < 240; tm += h {
		integral += c.Activity(tm+h/2) * h
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("bilinear activity integral = %v, want ~1", integral)
	}
	prev := 1.0
	for tm := 0.0; tm <= 240; tm += 2 {
		f := c.IOBFraction(tm)
		if f > prev+1e-9 {
			t.Fatalf("bilinear IOBFraction increased at t=%v", tm)
		}
		prev = f
	}
}

func TestIOBTrackerBasalIsZero(t *testing.T) {
	c := mustExpCurve(t)
	tr := NewIOBTracker(c, 1.0)
	for i := 0; i < 100; i++ {
		tr.Record(1.0, 5)
	}
	if iob := tr.IOB(); math.Abs(iob) > 1e-9 {
		t.Errorf("IOB at exact basal = %v, want 0", iob)
	}
}

func TestIOBTrackerAboveBasal(t *testing.T) {
	c := mustExpCurve(t)
	tr := NewIOBTracker(c, 1.0)
	tr.Record(13.0, 5) // 1 U net over 5 min
	iob := tr.IOB()
	if iob < 0.9 || iob > 1.0 {
		t.Errorf("IOB just after 1U net dose = %v, want ~1", iob)
	}
	// Decay to ~0 after DIA.
	for i := 0; i < 61; i++ {
		tr.Record(1.0, 5)
	}
	if iob := tr.IOB(); iob > 0.01 {
		t.Errorf("IOB after DIA = %v, want ~0", iob)
	}
}

func TestIOBTrackerBelowBasal(t *testing.T) {
	c := mustExpCurve(t)
	tr := NewIOBTracker(c, 1.0)
	tr.Record(0, 30) // suspension: -0.5 U net
	if iob := tr.IOB(); iob > -0.4 {
		t.Errorf("IOB after suspension = %v, want ~-0.5", iob)
	}
}

func TestIOBTrackerActivitySign(t *testing.T) {
	c := mustExpCurve(t)
	tr := NewIOBTracker(c, 1.0)
	tr.Record(13, 5)
	tr.Record(1, 60) // let activity develop
	if a := tr.Activity(); a <= 0 {
		t.Errorf("activity after positive dose = %v, want > 0", a)
	}
	tr.Reset()
	tr.Record(0, 60)
	tr.Record(1, 30)
	if a := tr.Activity(); a >= 0 {
		t.Errorf("activity after under-dosing = %v, want < 0", a)
	}
}

func TestIOBTrackerReset(t *testing.T) {
	c := mustExpCurve(t)
	tr := NewIOBTracker(c, 1.0)
	tr.Record(10, 5)
	tr.Reset()
	if tr.IOB() != 0 || tr.Now() != 0 {
		t.Error("Reset should clear state")
	}
}

// Property: IOB is bounded by total net units delivered within DIA.
func TestIOBTrackerBoundedProperty(t *testing.T) {
	c := mustExpCurve(t)
	f := func(rates []uint8) bool {
		tr := NewIOBTracker(c, 1.0)
		var maxNet float64
		for _, r := range rates {
			rate := float64(r%80) / 10 // 0..7.9 U/h
			tr.Record(rate, 5)
			net := (rate - 1.0) * 5 / 60
			if net > 0 {
				maxNet += net
			}
		}
		iob := tr.IOB()
		return iob <= maxNet+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
