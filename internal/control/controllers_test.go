package control

import (
	"math"
	"testing"
)

func newOpenAPS(t *testing.T) *OpenAPS {
	t.Helper()
	c, err := NewOpenAPS(OpenAPSConfig{Basal: 1.0, ISF: 40})
	if err != nil {
		t.Fatalf("NewOpenAPS: %v", err)
	}
	return c
}

func TestOpenAPSValidation(t *testing.T) {
	if _, err := NewOpenAPS(OpenAPSConfig{Basal: 0, ISF: 40}); err == nil {
		t.Error("zero basal should fail")
	}
	if _, err := NewOpenAPS(OpenAPSConfig{Basal: 1, ISF: 0}); err == nil {
		t.Error("zero ISF should fail")
	}
}

func TestOpenAPSSteadyAtTarget(t *testing.T) {
	c := newOpenAPS(t)
	out := c.Decide(Input{TimeMin: 0, CGM: 110, CycleMin: 5})
	if math.Abs(out.RateUPerH-1.0) > 1e-9 {
		t.Errorf("rate at target = %v, want basal 1.0", out.RateUPerH)
	}
}

func TestOpenAPSLowGlucoseSuspend(t *testing.T) {
	c := newOpenAPS(t)
	out := c.Decide(Input{TimeMin: 0, CGM: 60, CycleMin: 5})
	if out.RateUPerH != 0 {
		t.Errorf("rate at CGM 60 = %v, want 0 (LGS)", out.RateUPerH)
	}
}

func TestOpenAPSHighGlucoseIncreases(t *testing.T) {
	c := newOpenAPS(t)
	c.Decide(Input{TimeMin: 0, CGM: 200, CycleMin: 5})
	c.RecordDelivery(1, 5)
	out := c.Decide(Input{TimeMin: 5, CGM: 205, CycleMin: 5})
	if out.RateUPerH <= 1.0 {
		t.Errorf("rate at CGM 205 rising = %v, want above basal", out.RateUPerH)
	}
	if out.RateUPerH > c.cfg.MaxBasal {
		t.Errorf("rate %v exceeds max basal %v", out.RateUPerH, c.cfg.MaxBasal)
	}
}

func TestOpenAPSLowTrendReduces(t *testing.T) {
	c := newOpenAPS(t)
	c.Decide(Input{TimeMin: 0, CGM: 100, CycleMin: 5})
	c.RecordDelivery(1, 5)
	out := c.Decide(Input{TimeMin: 5, CGM: 88, CycleMin: 5})
	if out.RateUPerH >= 1.0 {
		t.Errorf("rate while falling toward hypo = %v, want below basal", out.RateUPerH)
	}
}

func TestOpenAPSMaxIOBCap(t *testing.T) {
	c := newOpenAPS(t)
	// Build large IOB by recording heavy deliveries.
	for i := 0; i < 12; i++ {
		c.RecordDelivery(10, 5)
	}
	out := c.Decide(Input{TimeMin: 60, CGM: 250, CycleMin: 5})
	if out.IOB < c.cfg.MaxIOB {
		t.Skipf("setup did not reach IOB cap (iob=%v)", out.IOB)
	}
	if out.RateUPerH > c.cfg.Basal+1e-9 {
		t.Errorf("rate with IOB %v above cap = %v, want basal", out.IOB, out.RateUPerH)
	}
}

func TestOpenAPSPerturbGlucose(t *testing.T) {
	c := newOpenAPS(t)
	c.SetPerturb(func(stage Stage, vars map[string]*float64) {
		if stage == StagePre {
			*vars["glucose"] = 300 // spoof hyperglycemia
		}
	})
	c.Decide(Input{TimeMin: 0, CGM: 110, CycleMin: 5})
	c.RecordDelivery(1, 5)
	out := c.Decide(Input{TimeMin: 5, CGM: 110, CycleMin: 5})
	if out.RateUPerH <= 1.0 {
		t.Errorf("perturbed-glucose rate = %v, want above basal", out.RateUPerH)
	}
	c.SetPerturb(nil)
	out = c.Decide(Input{TimeMin: 10, CGM: 110, CycleMin: 5})
	if out.RateUPerH > 3 {
		t.Errorf("rate after detaching perturbation = %v, want near basal", out.RateUPerH)
	}
}

func TestOpenAPSPerturbRate(t *testing.T) {
	c := newOpenAPS(t)
	c.SetPerturb(func(stage Stage, vars map[string]*float64) {
		if stage == StagePost {
			*vars["rate"] = 12
		}
	})
	out := c.Decide(Input{TimeMin: 0, CGM: 110, CycleMin: 5})
	if out.RateUPerH != 12 {
		t.Errorf("post-stage perturbed rate = %v, want 12", out.RateUPerH)
	}
}

func TestOpenAPSNegativeRateClamped(t *testing.T) {
	c := newOpenAPS(t)
	c.SetPerturb(func(stage Stage, vars map[string]*float64) {
		if stage == StagePost {
			*vars["rate"] = -4
		}
	})
	out := c.Decide(Input{TimeMin: 0, CGM: 110, CycleMin: 5})
	if out.RateUPerH != 0 {
		t.Errorf("negative perturbed rate = %v, want clamp to 0", out.RateUPerH)
	}
}

func TestOpenAPSReset(t *testing.T) {
	c := newOpenAPS(t)
	c.Decide(Input{TimeMin: 0, CGM: 200, CycleMin: 5})
	c.RecordDelivery(4, 5)
	c.Reset()
	if c.tracker.IOB() != 0 {
		t.Error("Reset should clear IOB history")
	}
	out := c.Decide(Input{TimeMin: 0, CGM: 110, CycleMin: 5})
	if math.Abs(out.RateUPerH-1.0) > 1e-9 {
		t.Errorf("rate after reset = %v, want basal", out.RateUPerH)
	}
}

func TestOpenAPSVarsExposed(t *testing.T) {
	c := newOpenAPS(t)
	for _, name := range []string{"glucose", "iob", "isf", "eventual_bg", "rate"} {
		if _, ok := c.Vars()[name]; !ok {
			t.Errorf("missing fault-injectable var %q", name)
		}
	}
}

func newBB(t *testing.T) *BasalBolus {
	t.Helper()
	c, err := NewBasalBolus(BasalBolusConfig{Basal: 1.0, ISF: 40})
	if err != nil {
		t.Fatalf("NewBasalBolus: %v", err)
	}
	return c
}

func TestBasalBolusValidation(t *testing.T) {
	if _, err := NewBasalBolus(BasalBolusConfig{Basal: 0, ISF: 40}); err == nil {
		t.Error("zero basal should fail")
	}
	if _, err := NewBasalBolus(BasalBolusConfig{Basal: 1, ISF: 0}); err == nil {
		t.Error("zero ISF should fail")
	}
}

func TestBasalBolusDefaultsToBasal(t *testing.T) {
	c := newBB(t)
	out := c.Decide(Input{TimeMin: 0, CGM: 120, CycleMin: 5})
	if math.Abs(out.RateUPerH-1.0) > 1e-9 {
		t.Errorf("rate at 120 = %v, want basal", out.RateUPerH)
	}
}

func TestBasalBolusLGS(t *testing.T) {
	c := newBB(t)
	out := c.Decide(Input{TimeMin: 0, CGM: 55, CycleMin: 5})
	if out.RateUPerH != 0 {
		t.Errorf("rate at 55 = %v, want 0", out.RateUPerH)
	}
}

func TestBasalBolusCorrection(t *testing.T) {
	c := newBB(t)
	out := c.Decide(Input{TimeMin: 0, CGM: 240, CycleMin: 5})
	if out.RateUPerH <= 1.0 {
		t.Errorf("rate at 240 = %v, want correction above basal", out.RateUPerH)
	}
	// (240-140)/40 = 2.5 U over 5 min on top of basal.
	want := 1.0 + 2.5*60/5.0
	if math.Abs(out.RateUPerH-want) > 1e-6 {
		t.Errorf("correction rate = %v, want %v", out.RateUPerH, want)
	}
}

func TestBasalBolusIntervalGate(t *testing.T) {
	c := newBB(t)
	first := c.Decide(Input{TimeMin: 0, CGM: 240, CycleMin: 5})
	if first.RateUPerH <= 1 {
		t.Fatal("first correction should fire")
	}
	c.RecordDelivery(first.RateUPerH, 5)
	second := c.Decide(Input{TimeMin: 5, CGM: 240, CycleMin: 5})
	if second.RateUPerH > 1+1e-9 {
		t.Errorf("correction refired within interval: %v", second.RateUPerH)
	}
}

func TestBasalBolusMaxIOBSkips(t *testing.T) {
	c := newBB(t)
	for i := 0; i < 12; i++ {
		c.RecordDelivery(8, 5)
	}
	out := c.Decide(Input{TimeMin: 60, CGM: 240, CycleMin: 5})
	if out.IOB < c.cfg.MaxIOB {
		t.Skipf("setup did not reach IOB cap (iob=%v)", out.IOB)
	}
	if out.RateUPerH > 1+1e-9 {
		t.Errorf("correction fired above IOB cap: %v", out.RateUPerH)
	}
}

func TestBasalBolusPerturbAndReset(t *testing.T) {
	c := newBB(t)
	c.SetPerturb(func(stage Stage, vars map[string]*float64) {
		if stage == StagePre {
			*vars["glucose"] = 0 // spoofed sensor zero -> LGS
		}
	})
	out := c.Decide(Input{TimeMin: 0, CGM: 240, CycleMin: 5})
	if out.RateUPerH != 0 {
		t.Errorf("spoofed-zero rate = %v, want 0", out.RateUPerH)
	}
	c.Reset()
	if c.hasBolused || c.tracker.IOB() != 0 {
		t.Error("Reset should clear bolus gate and IOB")
	}
}

func TestControllersImplementInterface(t *testing.T) {
	var cs []Controller
	oa := newOpenAPS(t)
	bb := newBB(t)
	cs = append(cs, oa, bb)
	for _, c := range cs {
		if c.Name() == "" {
			t.Error("empty controller name")
		}
	}
}
