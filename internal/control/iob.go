// Package control defines the APS controller abstraction shared by the
// OpenAPS-style and Basal-Bolus controllers, plus the insulin-on-board
// (IOB) bookkeeping both the controllers and the safety monitors use.
package control

import (
	"fmt"
	"math"
)

// InsulinCurve models the residual fraction of an insulin dose that is
// still active t minutes after delivery (1 at t=0 decaying to 0 at the
// duration of insulin action), and the corresponding activity density.
type InsulinCurve interface {
	// IOBFraction returns the remaining active fraction at age t minutes.
	IOBFraction(tMin float64) float64
	// Activity returns the instantaneous activity density (fraction per
	// minute) at age t minutes; the integral of Activity over [0, DIA]
	// is 1.
	Activity(tMin float64) float64
	// DIA returns the duration of insulin action in minutes.
	DIA() float64
}

// ExponentialCurve is the oref0 exponential insulin activity model with a
// configurable peak time and duration of insulin action.
type ExponentialCurve struct {
	dia  float64 // duration of insulin action, min
	peak float64 // activity peak time, min
	tau  float64
	a    float64
	s    float64
}

var _ InsulinCurve = (*ExponentialCurve)(nil)

// NewExponentialCurve builds the oref0 exponential curve. Typical values:
// dia 300 min, peak 75 min (rapid-acting insulin).
func NewExponentialCurve(diaMin, peakMin float64) (*ExponentialCurve, error) {
	if diaMin <= 0 || peakMin <= 0 || peakMin >= diaMin/2 {
		return nil, fmt.Errorf("control: invalid curve dia=%v peak=%v (need 0 < peak < dia/2)", diaMin, peakMin)
	}
	tau := peakMin * (1 - peakMin/diaMin) / (1 - 2*peakMin/diaMin)
	a := 2 * tau / diaMin
	s := 1 / (1 - a + (1+a)*math.Exp(-diaMin/tau))
	return &ExponentialCurve{dia: diaMin, peak: peakMin, tau: tau, a: a, s: s}, nil
}

// DIA implements InsulinCurve.
func (c *ExponentialCurve) DIA() float64 { return c.dia }

// Activity implements InsulinCurve.
func (c *ExponentialCurve) Activity(t float64) float64 {
	if t < 0 || t > c.dia {
		return 0
	}
	return c.s / (c.tau * c.tau) * t * (1 - t/c.dia) * math.Exp(-t/c.tau)
}

// IOBFraction implements InsulinCurve.
func (c *ExponentialCurve) IOBFraction(t float64) float64 {
	if t < 0 {
		return 1
	}
	if t > c.dia {
		return 0
	}
	f := 1 - c.s*(1-c.a)*((t*t/(c.tau*c.dia*(1-c.a))-t/c.tau-1)*math.Exp(-t/c.tau)+1)
	// Guard the tail against floating-point underrun.
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// BilinearCurve is the legacy bilinear IOB model: activity rises linearly
// to a peak at 0.25·DIA and falls linearly to zero at DIA.
type BilinearCurve struct {
	dia float64
}

var _ InsulinCurve = (*BilinearCurve)(nil)

// NewBilinearCurve builds a bilinear curve with the given duration of
// insulin action in minutes.
func NewBilinearCurve(diaMin float64) (*BilinearCurve, error) {
	if diaMin <= 0 {
		return nil, fmt.Errorf("control: invalid bilinear dia %v", diaMin)
	}
	return &BilinearCurve{dia: diaMin}, nil
}

// DIA implements InsulinCurve.
func (c *BilinearCurve) DIA() float64 { return c.dia }

// Activity implements InsulinCurve.
func (c *BilinearCurve) Activity(t float64) float64 {
	if t < 0 || t > c.dia {
		return 0
	}
	peak := 0.25 * c.dia
	// Triangle with unit area: height = 2/dia.
	h := 2 / c.dia
	if t <= peak {
		return h * t / peak
	}
	return h * (c.dia - t) / (c.dia - peak)
}

// IOBFraction implements InsulinCurve.
func (c *BilinearCurve) IOBFraction(t float64) float64 {
	if t < 0 {
		return 1
	}
	if t > c.dia {
		return 0
	}
	peak := 0.25 * c.dia
	h := 2 / c.dia
	if t <= peak {
		// 1 - integral of rising edge.
		return 1 - h*t*t/(2*peak)
	}
	rising := h * peak / 2
	fallT := t - peak
	fallW := c.dia - peak
	fallArea := h*fallT - h*fallT*fallT/(2*fallW)
	f := 1 - rising - fallArea
	if f < 0 {
		return 0
	}
	return f
}

// dose is one net insulin delivery event relative to the scheduled basal.
type dose struct {
	timeMin float64
	units   float64 // net units (can be negative when below basal)
}

// IOBTracker accumulates insulin deliveries and reports net IOB and
// activity relative to the patient's scheduled basal rate, the same
// "net IOB" convention OpenAPS uses. Doses older than the curve's DIA
// are pruned.
type IOBTracker struct {
	curve InsulinCurve
	basal float64 // scheduled basal, U/h
	doses []dose
	now   float64
}

// NewIOBTracker returns a tracker using the given activity curve and
// scheduled basal rate (U/h).
func NewIOBTracker(curve InsulinCurve, basalUPerH float64) *IOBTracker {
	return &IOBTracker{curve: curve, basal: basalUPerH}
}

// Record adds a delivery of rate U/h sustained for dtMin minutes ending
// at the tracker's current time plus dtMin, then advances the clock.
func (t *IOBTracker) Record(rateUPerH, dtMin float64) {
	net := (rateUPerH - t.basal) * dtMin / 60 // net units over the interval
	// Attribute the dose to the midpoint of the interval.
	t.doses = append(t.doses, dose{timeMin: t.now + dtMin/2, units: net})
	t.now += dtMin
	t.prune()
}

func (t *IOBTracker) prune() {
	dia := t.curve.DIA()
	keep := t.doses[:0]
	for _, d := range t.doses {
		if t.now-d.timeMin <= dia {
			keep = append(keep, d)
		}
	}
	t.doses = keep
}

// IOB returns the current net insulin on board in units. Positive values
// mean insulin above the scheduled basal is still active; negative values
// mean the patient has been under-dosed relative to basal.
func (t *IOBTracker) IOB() float64 {
	var sum float64
	for _, d := range t.doses {
		sum += d.units * t.curve.IOBFraction(t.now-d.timeMin)
	}
	return sum
}

// Activity returns the current net insulin activity in U/min.
func (t *IOBTracker) Activity() float64 {
	var sum float64
	for _, d := range t.doses {
		sum += d.units * t.curve.Activity(t.now-d.timeMin)
	}
	return sum
}

// Now returns the tracker clock in minutes.
func (t *IOBTracker) Now() float64 { return t.now }

// Reset clears history and rewinds the clock.
func (t *IOBTracker) Reset() {
	t.doses = t.doses[:0]
	t.now = 0
}
