package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	softmax([]float64{1, 2, 3}, out)
	var sum float64
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Errorf("softmax value %v out of (0,1)", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax ordering broken: %v", out)
	}
	// Stability with huge logits.
	softmax([]float64{1000, 1001}, out[:2])
	if math.IsNaN(out[0]) || math.IsNaN(out[1]) {
		t.Error("softmax overflow")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := []float64{5, -3}
	grads := make([]float64, 2)
	opt := NewAdam(2, 0.05)
	for i := 0; i < 2000; i++ {
		grads[0] = 2 * (params[0] - 1)
		grads[1] = 2 * (params[1] + 2)
		opt.Step(params, grads)
	}
	if math.Abs(params[0]-1) > 0.01 || math.Abs(params[1]+2) > 0.01 {
		t.Errorf("Adam converged to %v, want (1,-2)", params)
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, test := TrainTestSplit(100, 0.2, rng)
	if len(train) != 80 || len(test) != 20 {
		t.Errorf("split %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	// Tiny n keeps at least one training sample.
	train, _ = TrainTestSplit(1, 0.9, rng)
	if len(train) != 1 {
		t.Error("tiny split lost all training data")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s, err := FitStandardizer(X)
	if err != nil {
		t.Fatal(err)
	}
	Xs := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var mean float64
		for i := range Xs {
			mean += Xs[i][j]
		}
		mean /= 3
		if math.Abs(mean) > 1e-12 {
			t.Errorf("feature %d mean %v", j, mean)
		}
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	// Constant features keep Std=1 (no division blowup).
	s2, err := FitStandardizer([][]float64{{5}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Std[0] != 1 {
		t.Errorf("constant feature std %v, want 1", s2.Std[0])
	}
}

// xorData is linearly inseparable: trees and MLPs must both handle it.
func xorData(n int, rng *rand.Rand) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a := rng.Float64()
		b := rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestTreeLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := xorData(600, rng)
	tree, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, X, y); acc < 0.9 {
		t.Errorf("tree XOR accuracy %v, want > 0.9", acc)
	}
	if tree.Depth() < 1 || tree.NodeCount() < 3 {
		t.Errorf("degenerate tree: %s", tree)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeConfig{}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := FitTree([][]float64{{1}}, []int{5}, TreeConfig{Classes: 2}); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, err := FitTree([][]float64{{1}, {2}}, []int{0}, TreeConfig{}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestTreePureLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{0, 0, 0, 0}
	tree, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := tree.PredictProba([]float64{2.5})
	if p[0] != 1 {
		t.Errorf("pure class proba %v", p)
	}
}

func TestTreeProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(400, rng)
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := tree.PredictProba(X[0])
	if len(p) != 2 || math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Errorf("proba %v", p)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := xorData(800, rng)
	m, err := FitMLP(X, y, MLPConfig{
		Hidden: []int{32, 16}, Epochs: 60, BatchSize: 32, Dropout: 0.1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.85 {
		t.Errorf("MLP XOR accuracy %v, want > 0.85", acc)
	}
}

func TestMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FitMLP(nil, nil, MLPConfig{}, rng); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := FitMLP([][]float64{{1}}, []int{0}, MLPConfig{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestMLPDeterministic(t *testing.T) {
	X, y := xorData(200, rand.New(rand.NewSource(5)))
	train := func() []float64 {
		rng := rand.New(rand.NewSource(42))
		m, err := FitMLP(X, y, MLPConfig{Hidden: []int{8}, Epochs: 5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m.PredictProba([]float64{0.3, 0.7})
	}
	a, b := train(), train()
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("MLP training not deterministic: %v vs %v", a, b)
	}
}

// seqData: label 1 when the first feature is increasing over the window.
func seqData(n, window int, rng *rand.Rand) ([][][]float64, []int) {
	X := make([][][]float64, n)
	y := make([]int, n)
	for i := range X {
		up := rng.Intn(2) == 1
		y[i] = 0
		if up {
			y[i] = 1
		}
		win := make([][]float64, window)
		base := rng.Float64() * 10
		for tstep := range win {
			v := base - float64(tstep)*0.5
			if up {
				v = base + float64(tstep)*0.5
			}
			v += rng.NormFloat64() * 0.05
			win[tstep] = []float64{v, rng.Float64()}
		}
		X[i] = win
	}
	return X, y
}

func TestLSTMLearnsTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := seqData(400, 6, rng)
	m, err := FitLSTM(X, y, LSTMConfig{
		Units: []int{16, 8}, Epochs: 15, BatchSize: 16,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for i, w := range X {
		if m.Predict(w) == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(X))
	if acc < 0.85 {
		t.Errorf("LSTM trend accuracy %v, want > 0.85", acc)
	}
	if m.Window() != 6 || m.Classes() != 2 {
		t.Errorf("Window=%d Classes=%d", m.Window(), m.Classes())
	}
}

func TestLSTMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FitLSTM(nil, nil, LSTMConfig{}, rng); err == nil {
		t.Error("empty data should fail")
	}
	X, y := seqData(4, 6, rng)
	if _, err := FitLSTM(X, y[:3], LSTMConfig{}, rng); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLSTM(X, y, LSTMConfig{Window: 9}, rng); err == nil {
		t.Error("window mismatch should fail")
	}
	if _, err := FitLSTM(X, y, LSTMConfig{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Numerical gradient check of one LSTM layer + head on one sequence.
	rng := rand.New(rand.NewSource(9))
	layer := newLSTMLayer(2, 3, 0.001, rng)
	head := newDenseLayer(3, 2, 0.001, rng)
	seq := [][]float64{{0.5, -0.2}, {0.1, 0.9}, {-0.4, 0.3}}
	label := 1

	loss := func() float64 {
		steps := layer.forward(seq)
		h := steps[len(steps)-1].h
		logits := make([]float64, 2)
		head.forward(h, logits)
		probs := make([]float64, 2)
		softmax(logits, probs)
		return crossEntropy(probs, label)
	}

	// Analytic gradient.
	steps := layer.forward(seq)
	h := steps[len(steps)-1].h
	logits := make([]float64, 2)
	head.forward(h, logits)
	probs := make([]float64, 2)
	softmax(logits, probs)
	deltaLogits := []float64{probs[0], probs[1]}
	deltaLogits[label]--
	dh := make([]float64, 3)
	head.backward(h, deltaLogits, dh)
	layer.backward(steps, dh, nil)

	// Compare a sample of weight gradients numerically.
	const eps = 1e-6
	checked := 0
	for _, wi := range []int{0, 5, 11, 17, 23, 31, 44, len(layer.w) - 1} {
		orig := layer.w[wi]
		layer.w[wi] = orig + eps
		fp := loss()
		layer.w[wi] = orig - eps
		fm := loss()
		layer.w[wi] = orig
		num := (fp - fm) / (2 * eps)
		ana := layer.g[wi]
		if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("weight %d: numerical %v vs analytic %v", wi, num, ana)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestMulticlass(t *testing.T) {
	// Three linearly separable blobs.
	rng := rand.New(rand.NewSource(21))
	var X [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {5, 5}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 100; i++ {
			X = append(X, []float64{ctr[0] + rng.NormFloat64()*0.5, ctr[1] + rng.NormFloat64()*0.5})
			y = append(y, c)
		}
	}
	tree, err := FitTree(X, y, TreeConfig{Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, X, y); acc < 0.95 {
		t.Errorf("3-class tree accuracy %v", acc)
	}
	m, err := FitMLP(X, y, MLPConfig{Hidden: []int{16}, Classes: 3, Epochs: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.9 {
		t.Errorf("3-class MLP accuracy %v", acc)
	}
}
