// Package ml implements the machine-learning baselines the paper compares
// the context-aware monitor against (Section IV-C): a CART decision tree,
// a multi-layer perceptron (256-128 ReLU with softmax), and a two-layer
// stacked LSTM (128, 64 units over a 6-step window) — all trained with
// Adam, dropout, and early stopping, from scratch on float64 slices.
//
// Everything is deterministic given the caller-provided *rand.Rand.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Classifier is a point-in-time classifier over feature vectors.
type Classifier interface {
	// PredictProba returns class probabilities for one feature vector.
	PredictProba(x []float64) []float64
	// Predict returns the argmax class.
	Predict(x []float64) int
	// Classes returns the number of classes.
	Classes() int
}

// SequenceClassifier classifies fixed-length windows of feature vectors.
type SequenceClassifier interface {
	// PredictProba returns class probabilities for one window
	// (timesteps x features).
	PredictProba(window [][]float64) []float64
	Predict(window [][]float64) int
	Classes() int
}

// argmax returns the index of the largest value.
func argmax(v []float64) int {
	best, idx := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// softmax writes the softmax of logits into out (stable form).
func softmax(logits, out []float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Adam is the Adam optimizer state for one flat parameter vector.
type Adam struct {
	lr    float64
	beta1 float64
	beta2 float64
	eps   float64
	m, v  []float64
	t     int
}

// NewAdam creates Adam state for n parameters. lr <= 0 selects the
// paper's 0.001.
func NewAdam(n int, lr float64) *Adam {
	if lr <= 0 {
		lr = 0.001
	}
	return &Adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n),
	}
}

// Step applies one Adam update of params using grads (both length n).
func (a *Adam) Step(params, grads []float64) {
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mh := a.m[i] / b1c
		vh := a.v[i] / b2c
		params[i] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
	}
}

// TrainTestSplit shuffles indices deterministically and splits them.
func TrainTestSplit(n int, testFraction float64, rng *rand.Rand) (train, test []int) {
	idx := rng.Perm(n)
	cut := int(float64(n) * (1 - testFraction))
	if cut < 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return idx[:cut], idx[cut:]
}

// Standardizer scales features to zero mean, unit variance.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-feature statistics.
func FitStandardizer(X [][]float64) (*Standardizer, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, fmt.Errorf("ml: empty design matrix")
	}
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("ml: ragged design matrix (%d vs %d)", len(row), d)
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes a whole matrix.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// Accuracy computes fraction of correct argmax predictions.
func Accuracy(c Classifier, X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	var correct int
	for i, x := range X {
		if c.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// crossEntropy returns -log p[label] with clamping.
func crossEntropy(p []float64, label int) float64 {
	v := p[label]
	if v < 1e-12 {
		v = 1e-12
	}
	return -math.Log(v)
}

// validateXY checks design-matrix/label consistency.
func validateXY(X [][]float64, y []int, classes int) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return fmt.Errorf("ml: ragged row %d (%d vs %d)", i, len(row), d)
		}
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return fmt.Errorf("ml: label %d at row %d outside [0,%d)", label, i, classes)
		}
	}
	return nil
}
