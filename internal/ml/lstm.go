package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTMConfig tunes the stacked-LSTM baseline. The zero value selects the
// paper's best architecture (Section IV-C4): two stacked LSTM layers of
// 128 and 64 units over a 6-step input window, a softmax head, Adam at
// 0.001, and early stopping.
type LSTMConfig struct {
	Units        []int   // default {128, 64}
	Classes      int     // default 2
	Window       int     // expected timesteps, default 6
	LearningRate float64 // default 0.001
	Epochs       int     // default 20
	BatchSize    int     // default 32
	ValFraction  float64 // default 0.1
	Patience     int     // default 4
	ClipNorm     float64 // gradient clipping, default 5
}

func (c LSTMConfig) withDefaults() LSTMConfig {
	if len(c.Units) == 0 {
		c.Units = []int{128, 64}
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.001
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.ValFraction <= 0 || c.ValFraction >= 0.5 {
		c.ValFraction = 0.1
	}
	if c.Patience <= 0 {
		c.Patience = 4
	}
	if c.ClipNorm <= 0 {
		c.ClipNorm = 5
	}
	return c
}

// lstmLayer holds one LSTM layer's parameters in four gate blocks
// (input, forget, cell, output), each sized units x (in + units + 1).
type lstmLayer struct {
	in, units int
	w         []float64 // 4 * units * (in + units + 1)
	g         []float64
	adam      *Adam
}

func newLSTMLayer(in, units int, lr float64, rng *rand.Rand) *lstmLayer {
	n := 4 * units * (in + units + 1)
	l := &lstmLayer{in: in, units: units, w: make([]float64, n), g: make([]float64, n)}
	scale := 1 / math.Sqrt(float64(in+units))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	// Forget-gate bias initialized to 1 (standard trick for gradient flow).
	stride := in + units + 1
	forgetBase := 1 * units * stride
	for u := 0; u < units; u++ {
		l.w[forgetBase+u*stride+in+units] = 1
	}
	l.adam = NewAdam(n, lr)
	return l
}

// gateWeights returns the weight row for gate g (0=i,1=f,2=g,3=o), unit u.
func (l *lstmLayer) gateRow(w []float64, gate, u int) []float64 {
	stride := l.in + l.units + 1
	base := (gate*l.units + u) * stride
	return w[base : base+stride]
}

// lstmStep is the cached forward state of one timestep.
type lstmStep struct {
	x           []float64 // input at t
	i, f, gg, o []float64 // gate activations
	c, h        []float64 // cell and hidden state after t
	cPrev       []float64
	hPrev       []float64
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// forward runs the layer over a sequence, returning cached steps.
func (l *lstmLayer) forward(seq [][]float64) []lstmStep {
	steps := make([]lstmStep, len(seq))
	hPrev := make([]float64, l.units)
	cPrev := make([]float64, l.units)
	for t, x := range seq {
		st := lstmStep{
			x: x,
			i: make([]float64, l.units), f: make([]float64, l.units),
			gg: make([]float64, l.units), o: make([]float64, l.units),
			c: make([]float64, l.units), h: make([]float64, l.units),
			cPrev: append([]float64(nil), cPrev...),
			hPrev: append([]float64(nil), hPrev...),
		}
		for u := 0; u < l.units; u++ {
			var z [4]float64
			for gate := 0; gate < 4; gate++ {
				row := l.gateRow(l.w, gate, u)
				sum := row[l.in+l.units] // bias
				for j, xj := range x {
					sum += row[j] * xj
				}
				for j, hj := range hPrev {
					sum += row[l.in+j] * hj
				}
				z[gate] = sum
			}
			st.i[u] = sigmoid(z[0])
			st.f[u] = sigmoid(z[1])
			st.gg[u] = math.Tanh(z[2])
			st.o[u] = sigmoid(z[3])
			st.c[u] = st.f[u]*cPrev[u] + st.i[u]*st.gg[u]
			st.h[u] = st.o[u] * math.Tanh(st.c[u])
		}
		copy(cPrev, st.c)
		copy(hPrev, st.h)
		steps[t] = st
	}
	return steps
}

// backward runs BPTT over cached steps. dhLast is the gradient wrt the
// final hidden state; dhSeq (optional, same length as steps) carries
// per-timestep hidden-state gradients from an upper layer. It returns
// per-timestep gradients wrt the inputs.
func (l *lstmLayer) backward(steps []lstmStep, dhLast []float64, dhSeq [][]float64) [][]float64 {
	T := len(steps)
	dx := make([][]float64, T)
	dhNext := make([]float64, l.units)
	dcNext := make([]float64, l.units)
	if dhLast != nil {
		copy(dhNext, dhLast)
	}
	for t := T - 1; t >= 0; t-- {
		st := &steps[t]
		dx[t] = make([]float64, l.in)
		if dhSeq != nil && dhSeq[t] != nil {
			for u := range dhNext {
				dhNext[u] += dhSeq[t][u]
			}
		}
		dhPrev := make([]float64, l.units)
		dcPrev := make([]float64, l.units)
		for u := 0; u < l.units; u++ {
			tanhC := math.Tanh(st.c[u])
			do := dhNext[u] * tanhC
			dc := dhNext[u]*st.o[u]*(1-tanhC*tanhC) + dcNext[u]
			di := dc * st.gg[u]
			dg := dc * st.i[u]
			df := dc * st.cPrev[u]
			dcPrev[u] = dc * st.f[u]

			// Pre-activation gradients.
			dzi := di * st.i[u] * (1 - st.i[u])
			dzf := df * st.f[u] * (1 - st.f[u])
			dzg := dg * (1 - st.gg[u]*st.gg[u])
			dzo := do * st.o[u] * (1 - st.o[u])

			for gate, dz := range [4]float64{dzi, dzf, dzg, dzo} {
				if dz == 0 {
					continue
				}
				wRow := l.gateRow(l.w, gate, u)
				gRow := l.gateRow(l.g, gate, u)
				for j, xj := range st.x {
					gRow[j] += dz * xj
					dx[t][j] += dz * wRow[j]
				}
				for j, hj := range st.hPrev {
					gRow[l.in+j] += dz * hj
					dhPrev[j] += dz * wRow[l.in+j]
				}
				gRow[l.in+l.units] += dz
			}
		}
		dhNext = dhPrev
		dcNext = dcPrev
	}
	return dx
}

func (l *lstmLayer) step(batch, clip float64) {
	inv := 1 / batch
	var norm float64
	for i := range l.g {
		l.g[i] *= inv
		norm += l.g[i] * l.g[i]
	}
	norm = math.Sqrt(norm)
	if norm > clip {
		s := clip / norm
		for i := range l.g {
			l.g[i] *= s
		}
	}
	l.adam.Step(l.w, l.g)
	for i := range l.g {
		l.g[i] = 0
	}
}

// LSTM is the stacked-LSTM baseline monitor model: LSTM layers followed
// by a dense softmax head applied to the final hidden state.
type LSTM struct {
	cfg    LSTMConfig
	layers []*lstmLayer
	head   *denseLayer
	std    *Standardizer
}

var _ SequenceClassifier = (*LSTM)(nil)

// FitLSTM trains the model on windows (samples x timesteps x features).
func FitLSTM(X [][][]float64, y []int, cfg LSTMConfig, rng *rand.Rand) (*LSTM, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("ml: %d windows but %d labels", len(X), len(y))
	}
	if rng == nil {
		return nil, fmt.Errorf("ml: nil rng")
	}
	for i, w := range X {
		if len(w) != cfg.Window {
			return nil, fmt.Errorf("ml: window %d has %d timesteps, want %d", i, len(w), cfg.Window)
		}
	}
	// Standardize over flattened frames.
	flat := make([][]float64, 0, len(X)*cfg.Window)
	for _, w := range X {
		flat = append(flat, w...)
	}
	std, err := FitStandardizer(flat)
	if err != nil {
		return nil, err
	}

	model := &LSTM{cfg: cfg, std: std}
	in := len(X[0][0])
	dims := append([]int{in}, cfg.Units...)
	for i := 0; i+1 < len(dims); i++ {
		model.layers = append(model.layers, newLSTMLayer(dims[i], dims[i+1], cfg.LearningRate, rng))
	}
	model.head = newDenseLayer(cfg.Units[len(cfg.Units)-1], cfg.Classes, cfg.LearningRate, rng)

	trainIdx, valIdx := TrainTestSplit(len(X), cfg.ValFraction, rng)
	probs := make([]float64, cfg.Classes)
	logits := make([]float64, cfg.Classes)
	deltaLogits := make([]float64, cfg.Classes)

	bestVal := math.Inf(1)
	bestW := model.snapshot()
	bad := 0

	order := append([]int(nil), trainIdx...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				seq := model.standardizeWindow(X[idx])
				// Forward through the stack, caching each layer.
				caches := make([][]lstmStep, len(model.layers))
				cur := seq
				for li, l := range model.layers {
					caches[li] = l.forward(cur)
					cur = hiddenSeq(caches[li])
				}
				hLast := cur[len(cur)-1]
				model.head.forward(hLast, logits)
				softmax(logits, probs)
				for c := range deltaLogits {
					deltaLogits[c] = probs[c]
					if c == y[idx] {
						deltaLogits[c]--
					}
				}
				dhLast := make([]float64, len(hLast))
				model.head.backward(hLast, deltaLogits, dhLast)
				// Backprop through the stack.
				var dhSeq [][]float64
				dh := dhLast
				for li := len(model.layers) - 1; li >= 0; li-- {
					dx := model.layers[li].backward(caches[li], dh, dhSeq)
					dhSeq = dx
					dh = nil
				}
			}
			batch := float64(end - start)
			for _, l := range model.layers {
				l.step(batch, cfg.ClipNorm)
			}
			model.head.step(batch)
		}
		valLoss := model.meanLoss(X, y, valIdx)
		if valLoss < bestVal-1e-6 {
			bestVal = valLoss
			bestW = model.snapshot()
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				break
			}
		}
	}
	model.restore(bestW)
	return model, nil
}

func hiddenSeq(steps []lstmStep) [][]float64 {
	out := make([][]float64, len(steps))
	for i := range steps {
		out[i] = steps[i].h
	}
	return out
}

func (m *LSTM) standardizeWindow(w [][]float64) [][]float64 {
	out := make([][]float64, len(w))
	for i, frame := range w {
		out[i] = m.std.Transform(frame)
	}
	return out
}

func (m *LSTM) meanLoss(X [][][]float64, y []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		p := m.PredictProba(X[i])
		sum += crossEntropy(p, y[i])
	}
	return sum / float64(len(idx))
}

func (m *LSTM) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		w := make([]float64, len(l.w))
		copy(w, l.w)
		out = append(out, w)
	}
	hw := make([]float64, len(m.head.w))
	copy(hw, m.head.w)
	hb := make([]float64, len(m.head.b))
	copy(hb, m.head.b)
	out = append(out, hw, hb)
	return out
}

func (m *LSTM) restore(weights [][]float64) {
	for i, l := range m.layers {
		copy(l.w, weights[i])
	}
	copy(m.head.w, weights[len(m.layers)])
	copy(m.head.b, weights[len(m.layers)+1])
}

// PredictProba implements SequenceClassifier.
func (m *LSTM) PredictProba(window [][]float64) []float64 {
	cur := m.standardizeWindow(window)
	for _, l := range m.layers {
		cur = hiddenSeq(l.forward(cur))
	}
	hLast := cur[len(cur)-1]
	logits := make([]float64, m.cfg.Classes)
	m.head.forward(hLast, logits)
	out := make([]float64, m.cfg.Classes)
	softmax(logits, out)
	return out
}

// Predict implements SequenceClassifier.
func (m *LSTM) Predict(window [][]float64) int { return argmax(m.PredictProba(window)) }

// Classes implements SequenceClassifier.
func (m *LSTM) Classes() int { return m.cfg.Classes }

// Window returns the expected number of timesteps.
func (m *LSTM) Window() int { return m.cfg.Window }
