package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLPConfig tunes the multi-layer perceptron baseline. The zero value
// selects the paper's architecture: two fully connected ReLU layers of
// 256 and 128 neurons, a softmax head, Adam at lr 0.001, dropout, and
// early stopping on a held-out validation split.
type MLPConfig struct {
	Hidden       []int   // default {256, 128}
	Classes      int     // default 2
	LearningRate float64 // default 0.001
	Epochs       int     // default 30
	BatchSize    int     // default 64
	Dropout      float64 // default 0.2
	ValFraction  float64 // default 0.1
	Patience     int     // early-stopping patience in epochs, default 5
}

func (c MLPConfig) withDefaults() MLPConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{256, 128}
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.001
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		c.Dropout = 0.2
	}
	if c.ValFraction <= 0 || c.ValFraction >= 0.5 {
		c.ValFraction = 0.1
	}
	if c.Patience <= 0 {
		c.Patience = 5
	}
	return c
}

// denseLayer is one fully connected layer with flat parameters.
type denseLayer struct {
	in, out int
	w       []float64 // out x in
	b       []float64
	gw      []float64
	gb      []float64
	adamW   *Adam
	adamB   *Adam
}

func newDenseLayer(in, out int, lr float64, rng *rand.Rand) *denseLayer {
	l := &denseLayer{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	// He initialization for ReLU networks.
	scale := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	l.adamW = NewAdam(len(l.w), lr)
	l.adamB = NewAdam(len(l.b), lr)
	return l
}

// forward computes out = W·x + b.
func (l *denseLayer) forward(x, out []float64) {
	for o := 0; o < l.out; o++ {
		sum := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, xi := range x {
			sum += row[i] * xi
		}
		out[o] = sum
	}
}

// backward accumulates gradients given upstream delta and input x, and
// writes the downstream delta into dx (may be nil for the first layer).
func (l *denseLayer) backward(x, delta, dx []float64) {
	for o := 0; o < l.out; o++ {
		d := delta[o]
		l.gb[o] += d
		row := l.gw[o*l.in : (o+1)*l.in]
		for i, xi := range x {
			row[i] += d * xi
		}
	}
	if dx != nil {
		for i := 0; i < l.in; i++ {
			var sum float64
			for o := 0; o < l.out; o++ {
				sum += l.w[o*l.in+i] * delta[o]
			}
			dx[i] = sum
		}
	}
}

func (l *denseLayer) step(batch float64) {
	inv := 1 / batch
	for i := range l.gw {
		l.gw[i] *= inv
	}
	for i := range l.gb {
		l.gb[i] *= inv
	}
	l.adamW.Step(l.w, l.gw)
	l.adamB.Step(l.b, l.gb)
	for i := range l.gw {
		l.gw[i] = 0
	}
	for i := range l.gb {
		l.gb[i] = 0
	}
}

// MLP is the multi-layer perceptron baseline monitor model.
type MLP struct {
	cfg    MLPConfig
	layers []*denseLayer
	std    *Standardizer

	// scratch buffers for inference
	acts [][]float64
}

var _ Classifier = (*MLP)(nil)

// FitMLP trains the network. Inputs are standardized internally.
func FitMLP(X [][]float64, y []int, cfg MLPConfig, rng *rand.Rand) (*MLP, error) {
	cfg = cfg.withDefaults()
	if err := validateXY(X, y, cfg.Classes); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("ml: nil rng (determinism requires an explicit source)")
	}
	std, err := FitStandardizer(X)
	if err != nil {
		return nil, err
	}
	Xs := std.TransformAll(X)

	dims := append([]int{len(X[0])}, cfg.Hidden...)
	dims = append(dims, cfg.Classes)
	m := &MLP{cfg: cfg, std: std}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, newDenseLayer(dims[i], dims[i+1], cfg.LearningRate, rng))
	}
	m.acts = make([][]float64, len(m.layers)+1)
	for i := range m.acts {
		m.acts[i] = make([]float64, dims[i])
	}

	trainIdx, valIdx := TrainTestSplit(len(Xs), cfg.ValFraction, rng)

	// Per-sample training buffers.
	nL := len(m.layers)
	acts := make([][]float64, nL+1)   // pre-dropout activations (post-ReLU)
	deltas := make([][]float64, nL+1) // gradients wrt activations
	masks := make([][]float64, nL+1)  // dropout masks for hidden layers
	for i := 0; i <= nL; i++ {
		acts[i] = make([]float64, dims[i])
		deltas[i] = make([]float64, dims[i])
		masks[i] = make([]float64, dims[i])
	}
	probs := make([]float64, cfg.Classes)

	bestValLoss := math.Inf(1)
	bestWeights := m.snapshot()
	badEpochs := 0

	order := make([]int, len(trainIdx))
	copy(order, trainIdx)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				m.forwardTrain(Xs[idx], acts, masks, rng)
				softmax(acts[nL], probs)
				// delta at logits = p - onehot(y)
				for c := 0; c < cfg.Classes; c++ {
					deltas[nL][c] = probs[c]
					if c == y[idx] {
						deltas[nL][c]--
					}
				}
				// Backprop.
				for li := nL - 1; li >= 0; li-- {
					var dx []float64
					if li > 0 {
						dx = deltas[li]
					}
					m.layers[li].backward(acts[li], deltas[li+1], dx)
					if li > 0 {
						// ReLU derivative and dropout mask.
						for i := range dx {
							if acts[li][i] <= 0 {
								dx[i] = 0
							}
							dx[i] *= masks[li][i]
						}
					}
				}
			}
			batch := float64(end - start)
			for _, l := range m.layers {
				l.step(batch)
			}
		}
		// Early stopping on held-out loss.
		valLoss := m.meanLoss(Xs, y, valIdx, probs)
		if valLoss < bestValLoss-1e-6 {
			bestValLoss = valLoss
			bestWeights = m.snapshot()
			badEpochs = 0
		} else {
			badEpochs++
			if badEpochs >= cfg.Patience {
				break
			}
		}
	}
	m.restore(bestWeights)
	return m, nil
}

// forwardTrain runs a pass with ReLU + inverted dropout, storing
// post-activation values in acts and masks.
func (m *MLP) forwardTrain(x []float64, acts, masks [][]float64, rng *rand.Rand) {
	copy(acts[0], x)
	nL := len(m.layers)
	for li, l := range m.layers {
		l.forward(acts[li], acts[li+1])
		if li != nL-1 { // hidden layers get ReLU + inverted dropout

			keep := 1 - m.cfg.Dropout
			for i := range acts[li+1] {
				if acts[li+1][i] < 0 {
					acts[li+1][i] = 0
				}
				if rng.Float64() < m.cfg.Dropout {
					masks[li+1][i] = 0
					acts[li+1][i] = 0
				} else {
					masks[li+1][i] = 1 / keep
					acts[li+1][i] *= 1 / keep
				}
			}
		}
	}
}

func (m *MLP) meanLoss(X [][]float64, y []int, idx []int, probs []float64) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		m.forwardInfer(X[i])
		softmax(m.acts[len(m.layers)], probs)
		sum += crossEntropy(probs, y[i])
	}
	return sum / float64(len(idx))
}

// forwardInfer runs a deterministic pass (no dropout) on standardized x.
func (m *MLP) forwardInfer(x []float64) {
	copy(m.acts[0], x)
	nL := len(m.layers)
	for li, l := range m.layers {
		l.forward(m.acts[li], m.acts[li+1])
		if li != nL-1 {
			for i := range m.acts[li+1] {
				if m.acts[li+1][i] < 0 {
					m.acts[li+1][i] = 0
				}
			}
		}
	}
}

func (m *MLP) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		w := make([]float64, len(l.w))
		copy(w, l.w)
		b := make([]float64, len(l.b))
		copy(b, l.b)
		out = append(out, w, b)
	}
	return out
}

func (m *MLP) restore(weights [][]float64) {
	for i, l := range m.layers {
		copy(l.w, weights[2*i])
		copy(l.b, weights[2*i+1])
	}
}

// PredictProba implements Classifier.
func (m *MLP) PredictProba(x []float64) []float64 {
	m.forwardInfer(m.std.Transform(x))
	out := make([]float64, m.cfg.Classes)
	softmax(m.acts[len(m.layers)], out)
	return out
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int { return argmax(m.PredictProba(x)) }

// Classes implements Classifier.
func (m *MLP) Classes() int { return m.cfg.Classes }
