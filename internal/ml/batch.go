package ml

import "math"

// Batched inference. The fleet engine evaluates one monitor over many
// concurrent sessions per control cycle; scoring those observations in a
// single call amortizes the model's weight traffic across the batch.
// A per-sample MLP forward streams every weight matrix once per sample
// (memory-bound for the paper's 256-128 architecture); the batch path
// tiles samples so each weight row is loaded once per tile, and reuses
// scratch buffers so the hot path allocates nothing.
//
// Batch predictions are bit-identical to their per-sample counterparts:
// the inner accumulation order is the same, so fleet traces are
// identical whether a shard runs per-session or batched inference.

// BatchClassifier scores many feature vectors in one call.
type BatchClassifier interface {
	// PredictBatchInto writes the argmax class of X[k] into out[k].
	// out must have at least len(X) elements.
	PredictBatchInto(X [][]float64, out []int)
	// PredictProbaBatchInto writes class probabilities row-major into
	// proba (at least len(X)*Classes() elements): proba[k*C+c] is X[k]'s
	// probability of class c, bit-identical to PredictProba per row.
	PredictProbaBatchInto(X [][]float64, proba []float64)
	// Classes returns the number of classes.
	Classes() int
}

// BatchSequenceClassifier scores many windows in one call.
type BatchSequenceClassifier interface {
	// PredictSeqBatchInto writes the argmax class of windows[k]
	// (timesteps x features) into out[k].
	PredictSeqBatchInto(windows [][][]float64, out []int)
	// PredictProbaSeqBatchInto writes class probabilities row-major into
	// proba (at least len(windows)*Classes() elements), bit-identical to
	// PredictProba per window.
	PredictProbaSeqBatchInto(windows [][][]float64, proba []float64)
	Classes() int
}

// forwardBatchDense computes out = act(W·x + b) for n samples stored
// row-major in `in` (n x l.in), writing row-major into `out` (n x l.out).
//
// The kernel is register-tiled over four samples: a scalar dot product
// is latency-bound on its single accumulator's FP dependency chain
// (one FMA every ~4 cycles), so per-sample inference leaves most of
// the FPU idle; four independent accumulators sharing one weight-row
// read give the instruction-level parallelism (and 4x less weight
// traffic) that makes batching pay — measured 2.0-2.3x at batch 100 on
// the paper's 256-128 MLP. (A wider 8-sample tile spills registers
// and measures slower.) Each accumulator performs the same operations
// in the same order as denseLayer.forward, so results are
// bit-identical to the per-sample path.
//
//fleetvet:noalloc
func forwardBatchDense(l *denseLayer, in, out []float64, n int, relu bool) {
	nIn, nOut := l.in, l.out
	s := 0
	for ; s+4 <= n; s += 4 {
		x0 := in[s*nIn : (s+1)*nIn]
		x1 := in[(s+1)*nIn : (s+2)*nIn]
		x2 := in[(s+2)*nIn : (s+3)*nIn]
		x3 := in[(s+3)*nIn : (s+4)*nIn]
		for o := 0; o < nOut; o++ {
			row := l.w[o*nIn : (o+1)*nIn]
			bias := l.b[o]
			a0, a1, a2, a3 := bias, bias, bias, bias
			x0 := x0[:len(row)]
			x1 := x1[:len(row)]
			x2 := x2[:len(row)]
			x3 := x3[:len(row)]
			for i, w := range row {
				a0 += w * x0[i]
				a1 += w * x1[i]
				a2 += w * x2[i]
				a3 += w * x3[i]
			}
			if relu {
				a0 = relu0(a0)
				a1 = relu0(a1)
				a2 = relu0(a2)
				a3 = relu0(a3)
			}
			out[s*nOut+o] = a0
			out[(s+1)*nOut+o] = a1
			out[(s+2)*nOut+o] = a2
			out[(s+3)*nOut+o] = a3
		}
	}
	for ; s < n; s++ {
		x := in[s*nIn : (s+1)*nIn]
		for o := 0; o < nOut; o++ {
			row := l.w[o*nIn : (o+1)*nIn]
			sum := l.b[o]
			for i, w := range row {
				sum += w * x[i]
			}
			if relu && sum < 0 {
				sum = 0
			}
			out[s*nOut+o] = sum
		}
	}
}

// relu0 matches forwardInfer's branch form exactly (preserving -0.0),
// keeping batch results bit-identical to the per-sample path.
func relu0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// PredictBatchInto implements BatchClassifier. The tree walk is cheap, so
// batching only removes the per-call probability copy of Predict.
func (t *Tree) PredictBatchInto(X [][]float64, out []int) {
	for k, x := range X {
		out[k] = argmax(t.leaf(x))
	}
}

// PredictProbaBatchInto implements BatchClassifier.
func (t *Tree) PredictProbaBatchInto(X [][]float64, proba []float64) {
	c := t.cfg.Classes
	for k, x := range X {
		copy(proba[k*c:(k+1)*c], t.leaf(x))
	}
}

// leaf descends to the leaf distribution for one feature vector.
func (t *Tree) leaf(x []float64) []float64 {
	n := t.root
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

var _ BatchClassifier = (*Tree)(nil)

// MLPBatch is a reusable batched-inference context for one MLP. It holds
// scratch activations, so it is not safe for concurrent use — create one
// per worker; the underlying MLP weights are shared and only read.
type MLPBatch struct {
	m    *MLP
	acts [][]float64 // acts[li] is n x dims[li], row-major
	cap  int
}

// NewBatch creates a batched-inference context sharing this model's
// weights.
func (m *MLP) NewBatch() *MLPBatch { return &MLPBatch{m: m} }

var _ BatchClassifier = (*MLPBatch)(nil)

// Classes implements BatchClassifier.
func (b *MLPBatch) Classes() int { return b.m.cfg.Classes }

func (b *MLPBatch) ensure(n int) {
	if n <= b.cap {
		return
	}
	layers := b.m.layers
	b.acts = make([][]float64, len(layers)+1)
	b.acts[0] = make([]float64, n*layers[0].in)
	for li, l := range layers {
		b.acts[li+1] = make([]float64, n*l.out)
	}
	b.cap = n
}

// PredictBatchInto implements BatchClassifier. Results are bit-identical
// to calling m.Predict on each row.
//
//fleetvet:noalloc
func (b *MLPBatch) PredictBatchInto(X [][]float64, out []int) {
	n := len(X)
	if n == 0 {
		return
	}
	logits := b.forward(X)
	// argmax over logits equals argmax over softmax probabilities.
	c := b.m.cfg.Classes
	for s := 0; s < n; s++ {
		out[s] = argmax(logits[s*c : (s+1)*c])
	}
}

// PredictProbaBatchInto implements BatchClassifier.
//
//fleetvet:noalloc
func (b *MLPBatch) PredictProbaBatchInto(X [][]float64, proba []float64) {
	n := len(X)
	if n == 0 {
		return
	}
	logits := b.forward(X)
	c := b.m.cfg.Classes
	for s := 0; s < n; s++ {
		softmax(logits[s*c:(s+1)*c], proba[s*c:(s+1)*c])
	}
}

// forward runs the batched layers and returns the row-major logits
// (n x Classes) in the reused scratch.
//
//fleetvet:noalloc
func (b *MLPBatch) forward(X [][]float64) []float64 {
	n := len(X)
	b.ensure(n)
	std := b.m.std
	d0 := b.m.layers[0].in
	a0 := b.acts[0]
	for s, x := range X {
		row := a0[s*d0 : (s+1)*d0]
		for j, v := range x {
			row[j] = (v - std.Mean[j]) / std.Std[j]
		}
	}
	nL := len(b.m.layers)
	for li, l := range b.m.layers {
		forwardBatchDense(l, b.acts[li], b.acts[li+1], n, li != nL-1)
	}
	return b.acts[nL]
}

// LSTMBatch is a reusable batched-inference context for one LSTM. Like
// MLPBatch it owns scratch state: one per worker, weights shared.
type LSTMBatch struct {
	m *LSTM
	// Flat scratch, all row-major per sample.
	seqA, seqB []float64 // layer input/output sequences, n x T x dim
	h, c       []float64 // running hidden/cell state, n x units
	z          []float64 // gate pre-activations, n x units x 4
	logits     []float64 // n x classes
	cap        int
}

// NewBatch creates a batched-inference context sharing this model's
// weights.
func (m *LSTM) NewBatch() *LSTMBatch { return &LSTMBatch{m: m} }

var _ BatchSequenceClassifier = (*LSTMBatch)(nil)

// Classes implements BatchSequenceClassifier.
func (b *LSTMBatch) Classes() int { return b.m.cfg.Classes }

func (b *LSTMBatch) ensure(n int) {
	if n <= b.cap {
		return
	}
	t := b.m.cfg.Window
	maxDim, maxUnits := b.m.layers[0].in, 0
	for _, l := range b.m.layers {
		maxDim = max(maxDim, l.units)
		maxUnits = max(maxUnits, l.units)
	}
	b.seqA = make([]float64, n*t*maxDim)
	b.seqB = make([]float64, n*t*maxDim)
	b.h = make([]float64, n*maxUnits)
	b.c = make([]float64, n*maxUnits)
	b.z = make([]float64, n*maxUnits*4)
	b.logits = make([]float64, n*b.m.cfg.Classes)
	b.cap = n
}

// PredictSeqBatchInto implements BatchSequenceClassifier. Results are
// bit-identical to calling m.Predict on each window.
//
//fleetvet:noalloc
func (b *LSTMBatch) PredictSeqBatchInto(windows [][][]float64, out []int) {
	n := len(windows)
	if n == 0 {
		return
	}
	logits := b.forward(windows)
	classes := b.m.cfg.Classes
	for s := 0; s < n; s++ {
		out[s] = argmax(logits[s*classes : (s+1)*classes])
	}
}

// PredictProbaSeqBatchInto implements BatchSequenceClassifier.
//
//fleetvet:noalloc
func (b *LSTMBatch) PredictProbaSeqBatchInto(windows [][][]float64, proba []float64) {
	n := len(windows)
	if n == 0 {
		return
	}
	logits := b.forward(windows)
	classes := b.m.cfg.Classes
	for s := 0; s < n; s++ {
		softmax(logits[s*classes:(s+1)*classes], proba[s*classes:(s+1)*classes])
	}
}

// forward runs the batched recurrent layers and head, returning the
// row-major logits (n x Classes) in the reused scratch.
//
//fleetvet:noalloc
func (b *LSTMBatch) forward(windows [][][]float64) []float64 {
	n := len(windows)
	b.ensure(n)
	m := b.m
	t := m.cfg.Window
	std := m.std
	in0 := m.layers[0].in
	cur, nxt := b.seqA, b.seqB
	for s, w := range windows {
		for tt, frame := range w {
			row := cur[(s*t+tt)*in0 : (s*t+tt+1)*in0]
			for j, v := range frame {
				row[j] = (v - std.Mean[j]) / std.Std[j]
			}
		}
	}
	lastUnits := 0
	for _, l := range m.layers {
		b.forwardLayer(l, cur, nxt, n, t)
		cur, nxt = nxt, cur
		lastUnits = l.units
	}
	// The head reads the final timestep's hidden state of the last layer.
	classes := m.cfg.Classes
	for s := 0; s < n; s++ {
		hLast := cur[(s*t+t-1)*lastUnits : (s*t+t)*lastUnits]
		m.head.forward(hLast, b.logits[s*classes:(s+1)*classes])
	}
	return b.logits
}

// forwardLayer runs one LSTM layer over n sequences of t steps, reading
// row-major input frames from cur (n x t x l.in) and writing hidden
// states into nxt (n x t x l.units). Gate weight rows are loaded once
// per timestep and reused across the whole batch; the per-sample
// accumulation order matches lstmLayer.forward exactly.
//
//fleetvet:noalloc
func (b *LSTMBatch) forwardLayer(l *lstmLayer, cur, nxt []float64, n, t int) {
	u := l.units
	h := b.h[:n*u]
	c := b.c[:n*u]
	for i := range h {
		h[i] = 0
		c[i] = 0
	}
	for tt := 0; tt < t; tt++ {
		// Pre-activations gate-major so each weight row is read once.
		for gate := 0; gate < 4; gate++ {
			for uu := 0; uu < u; uu++ {
				row := l.gateRow(l.w, gate, uu)
				bias := row[l.in+u]
				for s := 0; s < n; s++ {
					x := cur[(s*t+tt)*l.in : (s*t+tt+1)*l.in]
					hPrev := h[s*u : (s+1)*u]
					sum := bias
					for j, xj := range x {
						sum += row[j] * xj
					}
					for j, hj := range hPrev {
						sum += row[l.in+j] * hj
					}
					b.z[(s*u+uu)*4+gate] = sum
				}
			}
		}
		for s := 0; s < n; s++ {
			for uu := 0; uu < u; uu++ {
				z := b.z[(s*u+uu)*4 : (s*u+uu)*4+4]
				iGate := sigmoid(z[0])
				fGate := sigmoid(z[1])
				gGate := math.Tanh(z[2])
				oGate := sigmoid(z[3])
				cv := fGate*c[s*u+uu] + iGate*gGate
				hv := oGate * math.Tanh(cv)
				c[s*u+uu] = cv
				h[s*u+uu] = hv
				nxt[(s*t+tt)*u+uu] = hv
			}
		}
	}
}
