package ml

import (
	"math/rand"
	"testing"
)

// syntheticData builds a deterministic, separable-ish 3-class problem.
func syntheticData(n, d int, rng *rand.Rand) (X [][]float64, y []int) {
	X = make([][]float64, n)
	y = make([]int, n)
	for i := range X {
		cls := rng.Intn(3)
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() + float64(cls)*1.5
		}
		X[i] = row
		y[i] = cls
	}
	return X, y
}

func TestMLPBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := syntheticData(300, 6, rng)
	m, err := FitMLP(X, y, MLPConfig{Hidden: []int{32, 16}, Classes: 3, Epochs: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	Q, _ := syntheticData(157, 6, rng) // odd size exercises the partial tile
	batch := m.NewBatch()
	got := make([]int, len(Q))
	batch.PredictBatchInto(Q, got)
	for i, x := range Q {
		if want := m.Predict(x); got[i] != want {
			t.Fatalf("sample %d: batch class %d, per-sample %d", i, got[i], want)
		}
	}
	// Reuse with a smaller batch must not read stale scratch.
	got2 := make([]int, 3)
	batch.PredictBatchInto(Q[:3], got2)
	for i := range got2 {
		if got2[i] != got[i] {
			t.Fatalf("reused batch diverged at %d", i)
		}
	}
}

func TestTreeBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := syntheticData(400, 6, rng)
	tree, err := FitTree(X, y, TreeConfig{Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	Q, _ := syntheticData(101, 6, rng)
	got := make([]int, len(Q))
	tree.PredictBatchInto(Q, got)
	for i, x := range Q {
		if want := tree.Predict(x); got[i] != want {
			t.Fatalf("sample %d: batch class %d, per-sample %d", i, got[i], want)
		}
	}
}

func TestLSTMBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const window, feat = 4, 5
	n := 120
	X := make([][][]float64, n)
	y := make([]int, n)
	for i := range X {
		cls := rng.Intn(2)
		w := make([][]float64, window)
		for tt := range w {
			frame := make([]float64, feat)
			for j := range frame {
				frame[j] = rng.NormFloat64() + float64(cls)
			}
			w[tt] = frame
		}
		X[i] = w
		y[i] = cls
	}
	m, err := FitLSTM(X, y, LSTMConfig{Units: []int{12, 8}, Window: window, Epochs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.NewBatch()
	got := make([]int, 37)
	batch.PredictSeqBatchInto(X[:37], got)
	for i := 0; i < 37; i++ {
		if want := m.Predict(X[i]); got[i] != want {
			t.Fatalf("window %d: batch class %d, per-sample %d", i, got[i], want)
		}
	}
}

func TestBatchAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := syntheticData(200, 6, rng)
	m, err := FitMLP(X, y, MLPConfig{Hidden: []int{32}, Classes: 3, Epochs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.NewBatch()
	out := make([]int, 64)
	batch.PredictBatchInto(X[:64], out) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		batch.PredictBatchInto(X[:64], out)
	})
	if allocs != 0 {
		t.Errorf("warm batch predict allocates %v times per call, want 0", allocs)
	}
}
