package ml

import (
	"fmt"
	"math"
	"sort"
)

// TreeConfig tunes the CART classifier.
type TreeConfig struct {
	MaxDepth       int // default 8
	MinLeafSamples int // default 5
	Classes        int // default 2
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeafSamples <= 0 {
		c.MinLeafSamples = 5
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	return c
}

// Tree is a CART decision-tree classifier with Gini impurity, the DT
// baseline monitor of Section IV-C4.
type Tree struct {
	cfg  TreeConfig
	root *treeNode
}

var _ Classifier = (*Tree)(nil)

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	proba     []float64 // leaf class distribution (nil for internal nodes)
}

// FitTree trains a CART tree.
func FitTree(X [][]float64, y []int, cfg TreeConfig) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := validateXY(X, y, cfg.Classes); err != nil {
		return nil, err
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{cfg: cfg}
	t.root = t.build(X, y, idx, 0)
	return t, nil
}

func (t *Tree) build(X [][]float64, y []int, idx []int, depth int) *treeNode {
	counts := make([]int, t.cfg.Classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	node := &treeNode{}
	pure := false
	for _, c := range counts {
		if c == len(idx) {
			pure = true
		}
	}
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeafSamples || pure {
		node.proba = probaFromCounts(counts)
		return node
	}

	feature, threshold, gain := t.bestSplit(X, y, idx)
	if gain <= 1e-12 {
		node.proba = probaFromCounts(counts)
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeafSamples || len(right) < t.cfg.MinLeafSamples {
		node.proba = probaFromCounts(counts)
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = t.build(X, y, left, depth+1)
	node.right = t.build(X, y, right, depth+1)
	return node
}

// bestSplit scans every feature's sorted values for the split with the
// highest Gini gain.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int) (feature int, threshold, gain float64) {
	nFeatures := len(X[idx[0]])
	parent := giniOf(y, idx, t.cfg.Classes)
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0

	order := make([]int, len(idx))
	leftCounts := make([]int, t.cfg.Classes)
	rightCounts := make([]int, t.cfg.Classes)
	for f := 0; f < nFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = 0
		}
		for _, i := range order {
			rightCounts[y[i]]++
		}
		nLeft, nRight := 0, len(order)
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			nLeft++
			nRight--
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // cannot split between equal values
			}
			g := parent - (float64(nLeft)*giniCounts(leftCounts, nLeft)+
				float64(nRight)*giniCounts(rightCounts, nRight))/float64(len(order))
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0
	}
	return bestFeature, bestThreshold, bestGain
}

func giniOf(y []int, idx []int, classes int) float64 {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return giniCounts(counts, len(idx))
}

func giniCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func probaFromCounts(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(counts))
		}
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// PredictProba implements Classifier.
func (t *Tree) PredictProba(x []float64) []float64 {
	n := t.root
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	out := make([]float64, len(n.proba))
	copy(out, n.proba)
	return out
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int { return argmax(t.PredictProba(x)) }

// Classes implements Classifier.
func (t *Tree) Classes() int { return t.cfg.Classes }

// Depth returns the tree's depth (diagnostics).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.proba != nil {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// NodeCount returns the number of nodes (diagnostics).
func (t *Tree) NodeCount() int { return countNodes(t.root) }

func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("CART(depth=%d nodes=%d classes=%d)", t.Depth(), t.NodeCount(), t.cfg.Classes)
}
