// Package metrics implements the paper's evaluation metrics
// (Section V-D): hazard coverage, time-to-hazard, sample-level prediction
// accuracy with a tolerance window (Table IV / Fig. 6), simulation-level
// two-region accuracy, reaction time, early detection rate, recovery
// rate, and average risk (Eq. 9).
package metrics

import (
	"math"
	"sort"

	"repro/internal/risk"
	"repro/internal/trace"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add accumulates another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// FPR is FP / (FP + TN); zero denominators yield 0.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// FNR is FN / (FN + TP).
func (c Confusion) FNR() float64 { return ratio(c.FN, c.FN+c.TP) }

// Accuracy is (TP+TN) / total.
func (c Confusion) Accuracy() float64 {
	return ratio(c.TP+c.TN, c.TP+c.TN+c.FP+c.FN)
}

// Precision is TP / (TP + FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall is TP / (TP + FN).
func (c Confusion) Recall() float64 { return ratio(c.TP, c.TP+c.FN) }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// DefaultToleranceWindow is δ in control cycles: one hour of 5-minute
// cycles, matching the paper's hazard-labeling window.
const DefaultToleranceWindow = 12

// SampleLevel scores per-sample predictions against ground truth with
// tolerance window δ (in cycles), per Table IV / Fig. 6:
//
//   - an alarm at t is a TP if a hazard occurs in [t, t+δ], else an FP;
//   - a hazardous sample t is an FN only when no alarm has fired since δ
//     cycles before its hazard episode began (Table IV's "window ending
//     with a positive ground truth that includes t") — an alarm at or
//     ahead of the episode covers every sample of that episode;
//   - a silent sample with no hazard in [t, t+δ] is a TN.
func SampleLevel(tr *trace.Trace, delta int) Confusion {
	if delta <= 0 {
		delta = DefaultToleranceWindow
	}
	var c Confusion
	n := tr.Len()
	episode := episodeStarts(tr)
	// The prediction region runs from fault activation to the first
	// hazardous sample (Fig. 1b): erroneous control actions are live
	// there, so alarms inside it are correct early predictions even when
	// they lead the hazard by more than δ.
	predLo, predHi := -1, -1
	if h := tr.FirstHazardStep(); h >= 0 {
		predLo = 0
		if tr.Faulty() && tr.Fault.StartStep < h {
			predLo = tr.Fault.StartStep
		}
		predHi = h
	}
	for t := 0; t < n; t++ {
		s := &tr.Samples[t]
		if s.Alarm {
			if hazardWithin(tr, t, t+delta) || (t >= predLo && t <= predHi && predLo >= 0) {
				c.TP++
			} else {
				c.FP++
			}
			continue
		}
		hazardNow := s.Hazard != trace.HazardNone
		switch {
		case hazardNow && !alarmWithin(tr, episode[t]-delta, t):
			c.FN++
		case hazardNow:
			// Covered by an alarm at or ahead of the episode: the alarm
			// sample already carries the TP credit.
		case !hazardWithin(tr, t, t+delta):
			c.TN++
		default:
			// Silent sample shortly before a hazard: the alarm (if any)
			// will be scored on its own sample; no double counting.
		}
	}
	return c
}

// episodeStarts maps each sample index to the start index of the
// contiguous hazard episode containing it (or its own index when not
// hazardous).
func episodeStarts(tr *trace.Trace) []int {
	n := tr.Len()
	out := make([]int, n)
	for t := 0; t < n; t++ {
		out[t] = t
		if tr.Samples[t].Hazard != trace.HazardNone && t > 0 &&
			tr.Samples[t-1].Hazard != trace.HazardNone {
			out[t] = out[t-1]
		}
	}
	return out
}

func hazardWithin(tr *trace.Trace, lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	n := tr.Len()
	for t := lo; t <= hi && t < n; t++ {
		if tr.Samples[t].Hazard != trace.HazardNone {
			return true
		}
	}
	return false
}

func alarmWithin(tr *trace.Trace, lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	n := tr.Len()
	for t := lo; t <= hi && t < n; t++ {
		if tr.Samples[t].Alarm {
			return true
		}
	}
	return false
}

// SimulationLevel scores a whole trace using the two-region scheme of
// Section V-D: the pre-fault region [0, tf) must stay silent (any alarm
// there is an FP), and the post-fault region [tf, te] is judged by
// whether the trace is hazardous (alarm→TP, silence→FN) or not
// (alarm→FP, silence→TN). Fault-free traces have a single region.
func SimulationLevel(tr *trace.Trace) Confusion {
	var c Confusion
	tf := 0
	if tr.Faulty() {
		tf = tr.Fault.StartStep
	}
	// Region 1: before fault activation. Hazards here (hazard predates
	// fault, Section V-E1) make alarms legitimate.
	if tf > 0 {
		alarmed, hazardous := regionFlags(tr, 0, tf-1)
		switch {
		case alarmed && hazardous:
			c.TP++
		case alarmed:
			c.FP++
		case hazardous:
			c.FN++
		default:
			c.TN++
		}
	}
	// Region 2: from fault activation to the end.
	alarmed, hazardous := regionFlags(tr, tf, tr.Len()-1)
	switch {
	case alarmed && hazardous:
		c.TP++
	case alarmed:
		c.FP++
	case hazardous:
		c.FN++
	default:
		c.TN++
	}
	return c
}

func regionFlags(tr *trace.Trace, lo, hi int) (alarmed, hazardous bool) {
	for t := lo; t <= hi && t < tr.Len(); t++ {
		if t < 0 {
			continue
		}
		if tr.Samples[t].Alarm {
			alarmed = true
		}
		if tr.Samples[t].Hazard != trace.HazardNone {
			hazardous = true
		}
	}
	return alarmed, hazardous
}

// HazardCoverage is the fraction of faulty traces that became hazardous
// (Section V-D): the conditional probability that an activated fault
// leads to a hazard.
func HazardCoverage(traces []*trace.Trace) float64 {
	var faulty, hazardous int
	for _, tr := range traces {
		if !tr.Faulty() {
			continue
		}
		faulty++
		if tr.Hazardous() {
			hazardous++
		}
	}
	return ratio(hazardous, faulty)
}

// TTHStats summarizes the Time-to-Hazard distribution (Fig. 7b).
type TTHStats struct {
	Count        int
	MeanMin      float64
	MedianMin    float64
	MinMin       float64
	MaxMin       float64
	NegativeFrac float64 // fraction of hazards predating the fault
	Values       []float64
}

// TTH computes time-to-hazard statistics over hazardous traces.
func TTH(traces []*trace.Trace) TTHStats {
	var vals []float64
	neg := 0
	for _, tr := range traces {
		tth, ok := tr.TimeToHazardMin()
		if !ok {
			continue
		}
		vals = append(vals, tth)
		if tth < 0 {
			neg++
		}
	}
	st := TTHStats{Count: len(vals), Values: vals}
	if len(vals) == 0 {
		return st
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	st.MeanMin = sum / float64(len(vals))
	st.MedianMin = sorted[len(sorted)/2]
	st.MinMin = sorted[0]
	st.MaxMin = sorted[len(sorted)-1]
	st.NegativeFrac = float64(neg) / float64(len(vals))
	return st
}

// ReactionStats summarizes monitor timeliness (Fig. 9).
type ReactionStats struct {
	Count   int
	MeanMin float64
	StdMin  float64
	// EarlyRate is the fraction of hazardous traces where the first
	// alarm precedes the first hazardous sample (early detection rate).
	EarlyRate float64
}

// ReactionTime computes, over hazardous traces with at least one alarm,
// the time from the first alarm to the first hazard (positive = early).
// Hazardous traces without any alarm are missed detections and excluded
// from the mean but counted against EarlyRate's denominator.
func ReactionTime(traces []*trace.Trace) ReactionStats {
	var vals []float64
	var hazardous, early int
	for _, tr := range traces {
		h := tr.FirstHazardStep()
		if h < 0 {
			continue
		}
		hazardous++
		d := tr.FirstAlarmStep()
		if d < 0 {
			continue
		}
		rt := float64(h-d) * tr.CycleMin
		vals = append(vals, rt)
		if rt > 0 {
			early++
		}
	}
	st := ReactionStats{Count: len(vals)}
	if hazardous > 0 {
		st.EarlyRate = float64(early) / float64(hazardous)
	}
	if len(vals) == 0 {
		return st
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	st.MeanMin = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - st.MeanMin
		ss += d * d
	}
	st.StdMin = math.Sqrt(ss / float64(len(vals)))
	return st
}

// MitigationOutcome compares a baseline campaign (no mitigation) with a
// mitigated rerun of the same scenarios, keyed by scenario identity
// (Table VII).
type MitigationOutcome struct {
	BaselineHazards int
	Prevented       int     // hazardous before, clean after
	NewHazards      int     // clean before, hazardous after
	RecoveryRate    float64 // Prevented / BaselineHazards
	AverageRisk     float64 // Eq. 9
}

// Mitigation evaluates mitigation performance. baseline and mitigated
// must be parallel slices of the same scenarios in the same order.
// FN simulations are mitigated runs that stayed hazardous (patient
// endangered without effective intervention); new hazards are mitigated
// runs that became hazardous.
func Mitigation(baseline, mitigated []*trace.Trace) MitigationOutcome {
	var out MitigationOutcome
	n := len(baseline)
	if n == 0 || len(mitigated) != n {
		return out
	}
	var riskSum float64
	for i := 0; i < n; i++ {
		wasHaz := baseline[i].Hazardous()
		isHaz := mitigated[i].Hazardous()
		if wasHaz {
			out.BaselineHazards++
			if !isHaz {
				out.Prevented++
			} else {
				// Unprevented hazard: contributes its mean risk index.
				riskSum += risk.MeanRiskIndex(mitigated[i].BGSeries())
			}
		} else if isHaz {
			out.NewHazards++
			riskSum += risk.MeanRiskIndex(mitigated[i].BGSeries())
		}
	}
	out.RecoveryRate = ratio(out.Prevented, out.BaselineHazards)
	out.AverageRisk = riskSum / float64(n)
	return out
}

// AverageRisk implements Eq. 9 directly over annotated traces: the mean
// risk index of FN simulations (hazardous, never alarmed) plus new
// hazards introduced by mitigating FPs, averaged over all simulations.
func AverageRisk(traces []*trace.Trace, newHazards []*trace.Trace) float64 {
	if len(traces) == 0 {
		return 0
	}
	var sum float64
	for _, tr := range traces {
		if tr.Hazardous() && tr.FirstAlarmStep() < 0 {
			sum += risk.MeanRiskIndex(tr.BGSeries())
		}
	}
	for _, tr := range newHazards {
		sum += risk.MeanRiskIndex(tr.BGSeries())
	}
	return sum / float64(len(traces))
}
