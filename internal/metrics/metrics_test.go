package metrics

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestConfusionRatios(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 88}
	if got := c.FPR(); math.Abs(got-2.0/90) > 1e-12 {
		t.Errorf("FPR %v", got)
	}
	if got := c.FNR(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("FNR %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.96) > 1e-12 {
		t.Errorf("ACC %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("P %v", got)
	}
	if got := c.Recall(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("R %v", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("F1 %v", got)
	}
	var zero Confusion
	if zero.FPR() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero matrix should not divide by zero")
	}
	zero.Add(c)
	if zero != c {
		t.Error("Add broken")
	}
}

// mk builds a trace with hazard and alarm masks (equal length strings of
// '.', 'H' for hazard, 'A' for alarm, 'B' for both).
func mk(pattern string, fault trace.FaultInfo) *trace.Trace {
	tr := &trace.Trace{CycleMin: 5, Fault: fault}
	for i, ch := range pattern {
		s := trace.Sample{Step: i, BG: 120, CGM: 120}
		switch ch {
		case 'H':
			s.Hazard = trace.HazardH1
		case 'A':
			s.Alarm = true
		case 'B':
			s.Hazard = trace.HazardH1
			s.Alarm = true
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

func TestSampleLevelEarlyAlarmIsTP(t *testing.T) {
	// Alarm 3 cycles before the hazard, δ=12: TP.
	tr := mk("....A....HHH", trace.FaultInfo{})
	c := SampleLevel(tr, 12)
	if c.TP != 1 {
		t.Errorf("TP=%d, want 1 (early alarm within window)", c.TP)
	}
	if c.FP != 0 {
		t.Errorf("FP=%d, want 0", c.FP)
	}
	if c.FN != 0 {
		t.Errorf("FN=%d, want 0 (hazard covered by prior alarm)", c.FN)
	}
}

func TestSampleLevelEarlyAlarmInPredictionRegion(t *testing.T) {
	// Alarm 7 cycles before hazard with δ=2: the alarm sits inside the
	// prediction region (fault-to-hazard), so it is a TP even though it
	// leads the hazard by more than δ. The hazard samples themselves are
	// still FNs: no alarm within the 2-cycle episode lookback.
	tr := mk("A......HH", trace.FaultInfo{})
	c := SampleLevel(tr, 2)
	if c.TP != 1 {
		t.Errorf("TP=%d, want 1 (early alarm in prediction region)", c.TP)
	}
	if c.FN != 2 {
		t.Errorf("FN=%d, want 2", c.FN)
	}
}

func TestSampleLevelAlarmBeforeFaultIsFP(t *testing.T) {
	// Alarm before the fault even activates: nothing to predict -> FP.
	fault := trace.FaultInfo{Name: "x", StartStep: 3, Duration: 2}
	tr := mk("A.......HH", fault)
	c := SampleLevel(tr, 2)
	if c.FP != 1 {
		t.Errorf("FP=%d, want 1 (pre-fault alarm)", c.FP)
	}
	if c.TP != 0 {
		t.Errorf("TP=%d, want 0", c.TP)
	}
}

func TestSampleLevelAlarmInHazardFreeTraceIsFP(t *testing.T) {
	fault := trace.FaultInfo{Name: "x", StartStep: 1, Duration: 2}
	tr := mk("....A....", fault)
	c := SampleLevel(tr, 2)
	if c.FP != 1 || c.TP != 0 {
		t.Errorf("got %+v, want one FP", c)
	}
}

func TestSampleLevelFalseAlarm(t *testing.T) {
	tr := mk("..A.......", trace.FaultInfo{})
	c := SampleLevel(tr, 3)
	if c.FP != 1 || c.TP != 0 {
		t.Errorf("got %+v, want one FP", c)
	}
	if c.TN != 9 {
		t.Errorf("TN=%d, want 9", c.TN)
	}
}

func TestSampleLevelMissedHazard(t *testing.T) {
	tr := mk(".....HHH..", trace.FaultInfo{})
	c := SampleLevel(tr, 2)
	if c.FN != 3 {
		t.Errorf("FN=%d, want 3", c.FN)
	}
	if c.TP != 0 {
		t.Errorf("TP=%d", c.TP)
	}
}

func TestSampleLevelAlarmDuringHazard(t *testing.T) {
	tr := mk(".....HBH..", trace.FaultInfo{})
	c := SampleLevel(tr, 2)
	if c.TP != 1 {
		t.Errorf("TP=%d, want 1", c.TP)
	}
	// Hazard sample at index 5: alarm at 6 is NOT within [3,5]... so FN.
	if c.FN != 1 {
		t.Errorf("FN=%d, want 1 (first hazard sample preceded the alarm)", c.FN)
	}
}

func TestSampleLevelDefaultDelta(t *testing.T) {
	tr := mk("A...........H", trace.FaultInfo{})
	c := SampleLevel(tr, 0) // default 12
	if c.TP != 1 {
		t.Errorf("default δ should cover 12 cycles, got %+v", c)
	}
}

func TestSimulationLevelRegions(t *testing.T) {
	fault := trace.FaultInfo{Name: "max:glucose", StartStep: 4, Duration: 3}
	tests := []struct {
		name    string
		pattern string
		want    Confusion
	}{
		// Clean pre-fault region (TN) + hazardous post-fault with alarm (TP).
		{"detected hazard", "....AHHH", Confusion{TP: 1, TN: 1}},
		// Pre-fault false alarm (FP) + detected hazard (TP): the
		// pre-fault alarm cannot claim credit for the later hazard.
		{"early false alarm", "A...ABHH", Confusion{TP: 1, FP: 1}},
		// Hazard missed entirely: TN pre-fault + FN post-fault.
		{"missed hazard", ".....HHH", Confusion{FN: 1, TN: 1}},
		// No hazard, no alarm.
		{"clean", "........", Confusion{TN: 2}},
		// No hazard but post-fault alarm.
		{"false alarm post fault", "......A.", Confusion{FP: 1, TN: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := SimulationLevel(mk(tt.pattern, fault))
			if c != tt.want {
				t.Errorf("got %+v, want %+v", c, tt.want)
			}
		})
	}
}

func TestSimulationLevelFaultFree(t *testing.T) {
	c := SimulationLevel(mk("....", trace.FaultInfo{}))
	if (c != Confusion{TN: 1}) {
		t.Errorf("fault-free clean run: %+v", c)
	}
	c = SimulationLevel(mk(".A..", trace.FaultInfo{}))
	if (c != Confusion{FP: 1}) {
		t.Errorf("fault-free false alarm: %+v", c)
	}
}

func TestHazardCoverage(t *testing.T) {
	fault := trace.FaultInfo{Name: "x", StartStep: 0, Duration: 2}
	traces := []*trace.Trace{
		mk("..HH", fault),
		mk("....", fault),
		mk("..HH", fault),
		mk("HH..", trace.FaultInfo{}), // fault-free: excluded
	}
	if got := HazardCoverage(traces); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("coverage %v, want 2/3", got)
	}
	if HazardCoverage(nil) != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestTTHStats(t *testing.T) {
	fault := trace.FaultInfo{Name: "x", StartStep: 2, Duration: 2}
	traces := []*trace.Trace{
		mk("....HH", fault), // hazard at 4, fault at 2 -> +10 min
		mk("H.....", fault), // hazard at 0 -> -10 min (predates fault)
		mk("......", fault), // no hazard
	}
	st := TTH(traces)
	if st.Count != 2 {
		t.Fatalf("count %d", st.Count)
	}
	if st.MeanMin != 0 {
		t.Errorf("mean %v, want 0 ((-10+10)/2)", st.MeanMin)
	}
	if math.Abs(st.NegativeFrac-0.5) > 1e-12 {
		t.Errorf("negative frac %v", st.NegativeFrac)
	}
	if st.MinMin != -10 || st.MaxMin != 10 {
		t.Errorf("range [%v,%v]", st.MinMin, st.MaxMin)
	}
	empty := TTH(nil)
	if empty.Count != 0 {
		t.Error("empty TTH")
	}
}

func TestReactionTime(t *testing.T) {
	traces := []*trace.Trace{
		mk("..A...HH", trace.FaultInfo{}), // alarm 4 cycles early: +20 min
		mk("....HHAH", trace.FaultInfo{}), // alarm 2 cycles late: -10 min
		mk(".....HHH", trace.FaultInfo{}), // never alarmed: excluded from mean
	}
	st := ReactionTime(traces)
	if st.Count != 2 {
		t.Fatalf("count %d", st.Count)
	}
	if math.Abs(st.MeanMin-5) > 1e-12 {
		t.Errorf("mean %v, want 5", st.MeanMin)
	}
	if math.Abs(st.EarlyRate-1.0/3) > 1e-12 {
		t.Errorf("early rate %v, want 1/3", st.EarlyRate)
	}
	if st.StdMin <= 0 {
		t.Errorf("std %v", st.StdMin)
	}
}

func TestMitigation(t *testing.T) {
	fault := trace.FaultInfo{Name: "x", StartStep: 0, Duration: 1}
	baseline := []*trace.Trace{
		mk("..HH", fault), // hazard prevented
		mk("..HH", fault), // hazard persists
		mk("....", fault), // clean stays clean
		mk("....", fault), // clean becomes hazardous (mitigation harm)
	}
	mitigated := []*trace.Trace{
		mk("....", fault),
		mk("..HH", fault),
		mk("....", fault),
		mk("HH..", fault),
	}
	out := Mitigation(baseline, mitigated)
	if out.BaselineHazards != 2 || out.Prevented != 1 || out.NewHazards != 1 {
		t.Errorf("outcome %+v", out)
	}
	if math.Abs(out.RecoveryRate-0.5) > 1e-12 {
		t.Errorf("recovery %v", out.RecoveryRate)
	}
	if out.AverageRisk <= 0 {
		t.Errorf("average risk %v, want positive (unprevented + new hazards)", out.AverageRisk)
	}
	// Mismatched inputs yield zero value.
	if got := Mitigation(baseline, mitigated[:2]); got.BaselineHazards != 0 {
		t.Error("mismatched inputs should yield zero outcome")
	}
}

func TestAverageRisk(t *testing.T) {
	traces := []*trace.Trace{
		mk(".....HHH", trace.FaultInfo{}), // FN: hazardous, no alarm
		mk("..A..HHH", trace.FaultInfo{}), // detected: no contribution
		mk("........", trace.FaultInfo{}),
	}
	// Give the FN trace risky BG values.
	for i := range traces[0].Samples {
		traces[0].Samples[i].BG = 45
	}
	r := AverageRisk(traces, nil)
	if r <= 0 {
		t.Errorf("average risk %v, want positive", r)
	}
	r2 := AverageRisk(traces, []*trace.Trace{traces[0]})
	if r2 <= r {
		t.Error("new hazards should add risk")
	}
	if AverageRisk(nil, nil) != 0 {
		t.Error("empty input")
	}
}
