package fleet

import (
	"math"
	"sort"
	"sync"
)

// Sharded sink delivery. The single collector goroutine that normally
// owns Sink.Emit serializes every worker through one channel — fine for
// a handful of shards, a bottleneck on the road to million-session
// fleets. With Config.ShardedSinks each worker appends its events to a
// private buffer instead (no channel, no cross-shard contention), and
// the buffers merge into the sinks in *canonical order*: sorted by
// (Session, Replica, Step, kind rank), with completion counters
// re-stamped and progress events re-synthesized along the merged order.
// Every component of that key is a pure function of the session's
// coordinates — never of goroutine scheduling — so sharded sink output
// is byte-identical at any parallelism level, the same determinism
// contract the traces carry
// (TestShardedSinksDeterministicAcrossParallelism).
//
// # Epoch barriers
//
// Delivery is no longer deferred to run end: with Config.SinkEpoch > 0
// every worker shard reaches a generation barrier each SinkEpoch
// completed lock-step rounds. All shards quiesce, the last arriver
// merges the per-worker buffers for the closed epoch into the pending
// pool, and the deliverable part streams into the sinks immediately
// while the other shards wait — so per-worker buffering composes with
// live delivery and bounded memory:
//
//   - Finite runs deliver the *stable prefix* of the canonical order:
//     every pending event whose Session precedes the fleet frontier
//     (the smallest session slot any shard will still emit for). A
//     session below the frontier is fully finalized, so its events can
//     never be preceded by a future event, and the concatenation of
//     epoch deliveries is exactly the run-end canonical merge, chunked
//     — byte-identical at any (Parallel, SinkEpoch), including
//     SinkEpoch == 0, the run-end-only special case
//     (TestShardedSinkEpochMergeMatchesRunEnd).
//
//   - Continuous runs drain every closed epoch whole: all slots are
//     live forever and advance in lock-step with the barriers, so the
//     assignment of events to epochs is itself a pure function of the
//     session coordinates (round = Replica*Steps + Step), and each
//     chunk — sorted canonically within itself — is deterministic
//     across parallelism. Buffered memory is bounded by one epoch
//     window per shard instead of the whole run
//     (TestShardedSinksContinuousBounded).
//
// # Cancellation
//
// A shard that exits without completing its run (context cancelled, or
// a session build error) abandons its open-epoch buffer, and the
// not-yet-closed epoch is never delivered: cancelled fleets lose the
// un-barriered tail under sharded delivery exactly as channel-based
// delivery abandons in-flight events on ctx.Done (see Sink and
// fleet/doc.go for the contract). Events already held back from closed
// epochs (the finite-mode stable-prefix residue) still deliver when the
// run returns.

// kindRank orders a session's events within one step for the canonical
// merge: an alarm precedes the robustness sample of the same cycle
// (matching live emission order), and terminal events sort after the
// per-step stream at equal step numbers. Every declared EventKind must
// have an explicit rank — an unknown kind would otherwise silently get
// a merge position that changes when the enum grows
// (TestKindRankExhaustive guards this).
func kindRank(k EventKind) int {
	switch k {
	case EventSessionStart:
		return 0
	case EventAlarm:
		return 1
	case EventRobustness:
		return 2
	case EventHazard:
		return 3
	case EventSessionDone:
		return 4
	case EventSessionEvict:
		// An eviction is terminal like EventSessionDone but the session
		// never completed; at an equal step it sorts after the per-step
		// stream and after a completion (a slot cannot do both).
		return 5
	case EventProgress:
		// Progress marks are never buffered (emit excludes them); they are
		// re-synthesized during delivery. The rank exists only so the
		// exhaustiveness guard covers the whole enum.
		return 6
	default:
		return -1
	}
}

// canonicalLess is the merged delivery order over buffered shard events.
func canonicalLess(a, b *Event) bool {
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	if a.Replica != b.Replica {
		return a.Replica < b.Replica
	}
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	return kindRank(a.Kind) < kindRank(b.Kind)
}

// shardedDelivery owns sharded sink delivery for one run: the
// per-worker event buffers, the epoch barrier the worker shards
// rendezvous on, the pending pool of merged-but-not-yet-deliverable
// events, and the re-stamping cursors carried across epochs. All fields
// except bufs are guarded by mu; bufs[shard] is owned by worker shard
// between barriers and only read under mu while every participant is
// quiesced (arrived at the barrier, or left).
type shardedDelivery struct {
	cfg      *Config
	sinkErrs []error

	mu   sync.Mutex
	cond *sync.Cond

	bufs     [][]Event // per-worker open-epoch buffers
	pending  []Event   // merged events held back for canonical order (finite)
	frontier []int     // per-shard smallest session slot still unfinished

	parties int // shards still participating in the barrier
	arrived int
	phase   int  // barrier generation, for spurious-wakeup-safe waiting
	aborted bool // an open epoch was abandoned: stop epoch deliveries

	epoch     int   // closed (delivered) epochs so far
	completed int64 // re-stamp cursor for EventSessionDone, carried across epochs
}

func newShardedDelivery(cfg *Config, sinkErrs []error) *shardedDelivery {
	d := &shardedDelivery{
		cfg:      cfg,
		sinkErrs: sinkErrs,
		bufs:     make([][]Event, cfg.Parallel),
		frontier: make([]int, cfg.Parallel),
		parties:  cfg.Parallel,
	}
	if cfg.Restore != nil {
		// A restored fleet resumes the drained run's completion numbering:
		// EventSessionDone re-stamping continues from the snapshot cursor
		// so the concatenated sink streams count monotonically.
		d.completed = cfg.Restore.Completed
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// buffer appends one event to the shard's open-epoch buffer. No lock:
// the buffer is owned by the worker between barriers, and the barrier
// protocol guarantees no reader runs while any owner is appending.
func (d *shardedDelivery) buffer(shard int, ev Event) {
	d.bufs[shard] = append(d.bufs[shard], ev)
}

// await is the epoch barrier: the shard publishes its frontier (the
// smallest session slot it will still emit events for; MaxInt when
// irrelevant) and blocks until every participating shard has arrived.
// The last arriver closes the epoch — merges all buffers and delivers
// the stable prefix — before releasing the others.
func (d *shardedDelivery) await(shard, frontier int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frontier[shard] = frontier
	d.arrived++
	if d.arrived == d.parties {
		d.completeBarrier()
		return
	}
	ph := d.phase
	for ph == d.phase {
		d.cond.Wait()
	}
}

// leave withdraws a shard from the barrier. A shard that completed its
// run flushes its remaining buffer into the pending pool (flush=true);
// a shard abandoning an open epoch — cancellation or error — drops the
// buffer and poisons epoch delivery, because that epoch can never close
// for every shard (flush=false). Either way, if the departure makes the
// remaining arrivals complete, the barrier is released here.
func (d *shardedDelivery) leave(shard int, flush bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if flush {
		d.pending = append(d.pending, d.bufs[shard]...)
	} else {
		d.aborted = true
	}
	d.bufs[shard] = nil
	d.frontier[shard] = math.MaxInt
	d.parties--
	if d.parties > 0 && d.arrived == d.parties {
		d.completeBarrier()
	}
}

// completeBarrier closes the epoch (unless an open epoch was abandoned)
// and releases every waiting shard. Caller holds mu.
func (d *shardedDelivery) completeBarrier() {
	if d.aborted {
		// The abandoned epoch can never close for every shard, so barriers
		// will deliver nothing more — drop the dead buffers instead of
		// letting surviving shards grow them until the run is cancelled
		// (a continuous fleet may keep stepping long after one shard
		// errors out).
		for i, b := range d.bufs {
			if len(b) > 0 {
				d.bufs[i] = b[:0]
			}
		}
	} else {
		d.closeEpoch()
	}
	d.arrived = 0
	d.phase++
	d.cond.Broadcast()
}

// closeEpoch merges every shard buffer into the pending pool, sorts it
// canonically, and delivers the stable prefix: everything for a
// continuous fleet (the whole closed epoch), events below the fleet
// frontier for a finite one. Caller holds mu; the workers are all
// quiesced, so reading their buffers is safe.
func (d *shardedDelivery) closeEpoch() {
	for i, b := range d.bufs {
		if len(b) > 0 {
			d.pending = append(d.pending, b...)
			d.bufs[i] = b[:0]
		}
	}
	buffered := len(d.pending)
	cut := buffered
	if !d.cfg.Continuous {
		u := math.MaxInt
		for _, f := range d.frontier {
			if f < u {
				u = f
			}
		}
		// Count the deliverable events before paying for the sort: while
		// the frontier sits below every buffered session (the common case
		// between completion waves) the barrier delivers nothing, and
		// pending can stay unsorted until a barrier that does.
		cut = 0
		for i := range d.pending {
			if d.pending[i].Session < u {
				cut++
			}
		}
	}
	if cut > 0 {
		// The held-back residue is already sorted from the last delivering
		// barrier; re-sorting it with the new events trades a sorted-runs
		// merge for simplicity. Delivering barriers are rare — at most one
		// per completion wave — so stepping, not this sort, dominates.
		sort.Slice(d.pending, func(i, j int) bool { return canonicalLess(&d.pending[i], &d.pending[j]) })
		d.deliverPrefix(cut)
	}
	if h := d.cfg.sinkEpochHook; h != nil {
		h(d.epoch, buffered, cut)
	}
	d.epoch++
}

// finish delivers everything still pending once every worker has
// exited: the full run-end merge when SinkEpoch is zero, the residue of
// the last stable prefix otherwise. Open-epoch buffers of shards that
// left without flushing were already dropped.
func (d *shardedDelivery) finish() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, b := range d.bufs {
		d.pending = append(d.pending, b...)
		d.bufs[i] = nil
	}
	sort.Slice(d.pending, func(i, j int) bool { return canonicalLess(&d.pending[i], &d.pending[j]) })
	d.deliverPrefix(len(d.pending))
}

// deliverPrefix replays pending[:cut] into every sink, re-stamping
// EventSessionDone completion counts along the carried cursor and
// synthesizing EventProgress marks, then retains the rest. Sink error
// semantics match the collector: the first Emit error detaches a sink
// for the rest of the run and is reported through sinkErrs.
func (d *shardedDelivery) deliverPrefix(cut int) {
	deliver := func(ev Event) {
		for i, s := range d.cfg.Sinks {
			if d.sinkErrs[i] != nil {
				continue // detached after first error
			}
			d.sinkErrs[i] = s.Emit(ev)
		}
	}
	for k := 0; k < cut; k++ {
		ev := d.pending[k]
		if ev.Kind == EventSessionDone {
			d.completed++
			ev.Completed = d.completed
		}
		deliver(ev)
		if pe := d.cfg.ProgressEvery; ev.Kind == EventSessionDone && pe > 0 && d.completed%int64(pe) == 0 {
			deliver(Event{Kind: EventProgress, Completed: d.completed})
		}
	}
	d.pending = append(d.pending[:0], d.pending[cut:]...)
}
