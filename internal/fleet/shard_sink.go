package fleet

import "sort"

// Sharded sink delivery. The single collector goroutine that normally
// owns Sink.Emit serializes every worker through one channel — fine for
// a handful of shards, a bottleneck on the road to million-session
// fleets. With Config.ShardedSinks each worker appends its events to a
// private buffer instead (no channel, no cross-shard contention), and
// when simulation completes the buffers merge into the sinks in
// *canonical order*: sorted by (Session, Replica, Step, kind rank),
// with completion counters re-stamped and progress events re-synthesized
// along the merged order. Every component of that key is a pure
// function of the session's coordinates — never of goroutine scheduling
// — so sharded sink output is byte-identical at any parallelism level,
// the same determinism contract the traces carry
// (TestShardedSinksDeterministicAcrossParallelism).

// kindRank orders a session's events within one step for the canonical
// merge: an alarm precedes the robustness sample of the same cycle
// (matching live emission order), and terminal events sort after the
// per-step stream at equal step numbers.
func kindRank(k EventKind) int {
	switch k {
	case EventSessionStart:
		return 0
	case EventAlarm:
		return 1
	case EventRobustness:
		return 2
	case EventHazard:
		return 3
	case EventSessionDone:
		return 4
	default:
		return 5
	}
}

// canonicalLess is the merged delivery order over buffered shard events.
func canonicalLess(a, b *Event) bool {
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	if a.Replica != b.Replica {
		return a.Replica < b.Replica
	}
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	return kindRank(a.Kind) < kindRank(b.Kind)
}

// deliverSharded merges the per-worker event buffers and replays them
// into every sink in canonical order, re-stamping EventSessionDone
// completion counts and synthesizing EventProgress marks so the
// delivered stream is fully deterministic. Sink error semantics match
// the collector: the first Emit error detaches a sink for the rest of
// the delivery and is reported through sinkErrs.
func deliverSharded(bufs [][]Event, cfg *Config, sinkErrs []error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	merged := make([]Event, 0, total)
	for _, b := range bufs {
		merged = append(merged, b...)
	}
	sort.Slice(merged, func(i, j int) bool { return canonicalLess(&merged[i], &merged[j]) })

	deliver := func(ev Event) {
		for i, s := range cfg.Sinks {
			if sinkErrs[i] != nil {
				continue // detached after first error
			}
			sinkErrs[i] = s.Emit(ev)
		}
	}
	var completed int64
	for _, ev := range merged {
		if ev.Kind == EventSessionDone {
			completed++
			ev.Completed = completed
		}
		deliver(ev)
		if pe := cfg.ProgressEvery; ev.Kind == EventSessionDone && pe > 0 && completed%int64(pe) == 0 {
			deliver(Event{Kind: EventProgress, Completed: completed})
		}
	}
}
