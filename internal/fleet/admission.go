package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/monitor"
)

// Runtime session admission and eviction. A fleet's slot set was a
// run-scoped constant: the matrix was fixed when Run started and the
// only way to change the workload was to restart the world. With
// Config.Admissions the slot set becomes a first-class runtime
// operation on a continuous fleet: an Admissions controller queues
// admit/evict requests, and every AdmitEvery lock-step rounds all
// worker shards rendezvous at an admission gate where the queued
// operations are applied — new sessions start on free lanes, evicted
// sessions retire mid-flight with an EventSessionEvict.
//
// # Determinism contract
//
// Gates fire at fixed global round numbers (multiples of
// Config.AdmitEvery), and every decision taken at a gate — slot
// numbering, capacity rejection, spec validation, eviction membership
// — is a pure function of the fleet's declared state and the sequence
// of operations applied, never of goroutine scheduling or of
// Parallel. Which shard hosts a session affects only where its lane
// lives, not its content: a session's evolution remains a function of
// (seed, slot, patient, scenario, replica). Consequently, for a fixed
// admission schedule (operations pinned to rounds with AdmitAt /
// EvictGroupAt), the sharded-sink stream of every tenant group is
// byte-identical at any parallelism level
// (TestFleetAdmissionStreamDeterministicAcrossParallelism, the
// control-plane twin of TestShardedSinksDeterministicAcrossParallelism).
// Operations queued with round 0 (Admit/Evict/EvictGroup) apply at the
// next gate — the serving mode, where "which round exactly" is
// scheduling-dependent but each applied schedule still replays
// deterministically.
//
// # Capacity
//
// MaxSessions bounds the total live slot set. Each shard sizes its
// batched lane banks to MaxSessions so any admitted session can land
// on any shard — admission acceptance depends only on the total live
// count, never on Parallel. Size MaxSessions to the expected peak
// fleet, not to a million: it is a control-plane bound (per-shard bank
// memory scales with it), while the per-run Sessions matrix remains
// the bulk-campaign path.

// AdmitSpec describes one session slot to admit into a running fleet.
type AdmitSpec struct {
	// Group tags the session for filtering and collective eviction —
	// the control plane uses it as the tenant ID. Every event the
	// session emits carries it (Event.Group).
	Group string
	// PatientIdx is the cohort index of the admitted patient.
	PatientIdx int
	// ScenIdx indexes the fleet's declared scenario table
	// (Config.Scenarios or Config.LegacyScenarios) — admitted sessions
	// choose from it. Ignored when Program is set.
	ScenIdx int
	// Program, when non-nil, admits an inline scenario program instead
	// of a table index: the program is validated and compile-checked at
	// the gate against the fleet's Steps/CycleMin, and the session (and
	// its continuous-mode replicas) runs the compiled plan. Registry
	// entries record ScenIdx -1 and the program's canonical text.
	Program *fault.Program
	// NewMonitor optionally overrides Config.NewMonitor for this
	// session, so tenants can attach their own safety monitor. Invalid
	// on fleets using Config.NewBatchMonitor (the shard-batched monitor
	// serves every lane).
	NewMonitor func(patientIdx int) (monitor.Monitor, error)
	// Mitigate enables Algorithm 1 mitigation for this session even
	// when Config.Mitigate is off (requires a monitor).
	Mitigate bool
	// Restore, when set, admits a previously captured session instead of
	// a fresh one: the sealed SessionSnapshot bytes (SessionSnapshot.
	// Encode) are validated at the gate and the session resumes its run
	// bit-exactly on a fresh slot. The snapshot header supplies
	// PatientIdx, ScenIdx, Replica, and Mitigate (the fields above are
	// ignored); Group keeps the snapshot's tag unless overridden here.
	// Mutually exclusive with NewMonitor.
	Restore []byte
}

// LiveSession is one live slot of a running admission-controlled
// fleet, as recorded by the controller's registry.
type LiveSession struct {
	// Slot is the session's slot index (unique for the fleet's
	// lifetime; slots are never reused).
	Slot int
	// PatientIdx and ScenIdx are the session's coordinates; ScenIdx is
	// -1 for inline-program sessions.
	PatientIdx int
	ScenIdx    int
	// Program is the canonical text of an inline-admitted scenario
	// program ("" for table-indexed sessions).
	Program string
	// Group is the AdmitSpec tag ("" for the initial static slots).
	Group string
}

// Reject records an admission the gate refused, with the reason.
type Reject struct {
	Spec   AdmitSpec
	Reason string
}

// maxRejects bounds the retained rejection log.
const maxRejects = 64

// admissionOp is one queued admission/eviction request, or one queued
// snapshot request (snap non-nil).
type admissionOp struct {
	atRound     int // apply at the first gate whose round >= atRound
	admit       []AdmitSpec
	evictSlots  []int
	evictGroups []string
	snap        *snapshotCollector
}

// Admissions is the runtime admission/eviction controller of a
// continuous fleet. Create one with NewAdmissions, set it on
// Config.Admissions, and call Admit/Evict/EvictGroup while the fleet
// runs; operations are applied at the next admission gate (every
// Config.AdmitEvery lock-step rounds). A controller is bound to
// exactly one Run.
type Admissions struct {
	mu       sync.Mutex
	bound    bool
	nextSlot int
	queue    []admissionOp
	wake     chan struct{} // closed when the queue becomes non-empty

	live    map[int]liveSlot // slot -> coordinates + owning shard
	loads   []int            // per-shard live session counts
	alive   []bool           // shard still participating in the run
	gen     int64            // gates applied so far
	rejects []Reject
	rejectN int64
}

// liveSlot is the registry entry for one live session.
type liveSlot struct {
	spec  spec
	shard int
}

// NewAdmissions creates an unbound admission controller.
func NewAdmissions() *Admissions {
	return &Admissions{live: make(map[int]liveSlot)}
}

// bind attaches the controller to one fleet run: slot numbering starts
// past the static matrix and the registry is seeded with the initial
// slots (round-robin across shards, exactly as runShard deals them).
func (a *Admissions) bind(cfg *Config) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.bound {
		return fmt.Errorf("fleet: Admissions controller already bound to a run")
	}
	a.bound = true
	a.nextSlot = cfg.Sessions
	a.loads = make([]int, cfg.Parallel)
	a.alive = make([]bool, cfg.Parallel)
	for i := range a.alive {
		a.alive[i] = true
	}
	for slot := 0; slot < cfg.Sessions; slot++ {
		shard := slot % cfg.Parallel
		a.live[slot] = liveSlot{spec: cfg.specFor(slot, 0), shard: shard}
		a.loads[shard]++
	}
	if cfg.Restore != nil {
		// Seed the registry from the snapshot: restored sessions keep
		// their slots (shard = slot % Parallel, exactly as runShard deals
		// them) and slot numbering continues where the drained fleet left
		// off. Config validation guarantees Sessions == 0 here.
		snap := cfg.Restore
		if len(snap.Sessions) > cfg.MaxSessions {
			return fmt.Errorf("fleet: restore snapshot holds %d sessions, above MaxSessions %d", len(snap.Sessions), cfg.MaxSessions)
		}
		for i := range snap.Sessions {
			ss := &snap.Sessions[i]
			if ss.Slot < 0 || ss.Slot >= snap.NextSlot {
				return fmt.Errorf("fleet: restore snapshot slot %d outside [0, %d)", ss.Slot, snap.NextSlot)
			}
			if _, dup := a.live[ss.Slot]; dup {
				return fmt.Errorf("fleet: restore snapshot repeats slot %d", ss.Slot)
			}
			if ss.PatientIdx < 0 || ss.PatientIdx >= cfg.Platform.NumPatients {
				return fmt.Errorf("fleet: restore snapshot slot %d: patient index %d outside cohort [0, %d)", ss.Slot, ss.PatientIdx, cfg.Platform.NumPatients)
			}
			if ss.Program == "" && (ss.ScenIdx < 0 || ss.ScenIdx >= cfg.numScenarios()) {
				return fmt.Errorf("fleet: restore snapshot slot %d: scenario index %d outside the declared table [0, %d)", ss.Slot, ss.ScenIdx, cfg.numScenarios())
			}
			sp, err := restoredSpec(ss)
			if err != nil {
				return fmt.Errorf("fleet: restore snapshot slot %d: %w", ss.Slot, err)
			}
			shard := ss.Slot % cfg.Parallel
			a.live[ss.Slot] = liveSlot{spec: sp, shard: shard}
			a.loads[shard]++
		}
		a.nextSlot = snap.NextSlot
	}
	return nil
}

// enqueue appends one operation and wakes an idle fleet.
func (a *Admissions) enqueue(op admissionOp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queue = append(a.queue, op)
	if a.wake != nil {
		close(a.wake)
		a.wake = nil
	}
}

// wakeChan returns a channel closed once the queue is non-empty.
// Caller holds mu.
func (a *Admissions) wakeChan() chan struct{} {
	if len(a.queue) > 0 {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if a.wake == nil {
		a.wake = make(chan struct{})
	}
	return a.wake
}

// Admit queues sessions for admission at the next gate.
func (a *Admissions) Admit(specs ...AdmitSpec) { a.AdmitAt(0, specs...) }

// AdmitAt queues sessions for admission at the first gate whose global
// round is >= round — the fixed-schedule form the determinism contract
// is stated over.
func (a *Admissions) AdmitAt(round int, specs ...AdmitSpec) {
	if len(specs) == 0 {
		return
	}
	a.enqueue(admissionOp{atRound: round, admit: specs})
}

// Evict queues slot evictions for the next gate. Unknown or already-
// evicted slots are ignored.
func (a *Admissions) Evict(slots ...int) { a.EvictAt(0, slots...) }

// EvictAt queues slot evictions for the first gate whose global round
// is >= round.
func (a *Admissions) EvictAt(round int, slots ...int) {
	if len(slots) == 0 {
		return
	}
	a.enqueue(admissionOp{atRound: round, evictSlots: slots})
}

// EvictGroup queues eviction of every live session tagged with the
// group for the next gate.
func (a *Admissions) EvictGroup(groups ...string) { a.EvictGroupAt(0, groups...) }

// EvictGroupAt queues group evictions for the first gate whose global
// round is >= round. Eviction applies to sessions live before the
// gate; admissions of the same group applied at the same gate survive.
func (a *Admissions) EvictGroupAt(round int, groups ...string) {
	if len(groups) == 0 {
		return
	}
	a.enqueue(admissionOp{atRound: round, evictGroups: groups})
}

// takeDueLocked removes and returns the queued operations due at the
// given gate round, preserving enqueue order. Caller holds mu.
func (a *Admissions) takeDueLocked(round int) []admissionOp {
	var due []admissionOp
	rest := a.queue[:0]
	for _, op := range a.queue {
		if op.atRound <= round {
			due = append(due, op)
		} else {
			rest = append(rest, op)
		}
	}
	a.queue = rest
	return due
}

// PendingOps reports how many queued operations have not yet been
// applied by a gate. A reconcile loop diffs desired state against
// Live() only when this is zero, so in-flight operations are not
// re-issued.
func (a *Admissions) PendingOps() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Gen returns how many admission gates have applied so far.
func (a *Admissions) Gen() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// Live snapshots the registry of live sessions, sorted by slot.
func (a *Admissions) Live() []LiveSession {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]LiveSession, 0, len(a.live))
	for _, ls := range a.live { //fleetvet:nondeterministic order-independent: entries are sorted by slot before return
		prog := ""
		if ls.spec.program != nil {
			prog = ls.spec.program.Key()
		}
		out = append(out, LiveSession{
			Slot:       ls.spec.index,
			PatientIdx: ls.spec.patientIdx,
			ScenIdx:    ls.spec.scenIdx,
			Program:    prog,
			Group:      ls.spec.group,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// Rejected returns the total rejection count and the most recent
// rejections (bounded).
func (a *Admissions) Rejected() (int64, []Reject) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Reject, len(a.rejects))
	copy(out, a.rejects)
	return a.rejectN, out
}

// rejectLocked records one refused admission. Caller holds mu.
func (a *Admissions) rejectLocked(sp AdmitSpec, reason string) {
	a.rejectN++
	a.rejects = append(a.rejects, Reject{Spec: sp, Reason: reason})
	if len(a.rejects) > maxRejects {
		a.rejects = a.rejects[len(a.rejects)-maxRejects:]
	}
}

// admissionGate is the rendezvous the worker shards reach every
// Config.AdmitEvery rounds. The last arriver applies the due
// operations — assigning admitted sessions to the least-loaded shard
// and resolving group evictions to slot sets — then releases the
// barrier; every shard picks up its assigned starts and the shared
// eviction set on the way out. An idle gate (empty fleet, empty queue)
// parks the whole fleet on the controller's wake channel instead of
// spinning rounds.
type admissionGate struct {
	adm  *Admissions
	cfg  *Config
	done <-chan struct{} // the run context's Done channel

	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	phase   int
	round   int // gate round published by the arrivers

	starts [][]spec             // per-shard sessions to start this phase
	evict  map[int]bool         // slots to evict this phase (shared, read-only after release)
	snaps  []*snapshotCollector // snapshot requests granted this phase (shared, read-only after release)
}

func newAdmissionGate(done <-chan struct{}, cfg *Config) *admissionGate {
	g := &admissionGate{
		adm:     cfg.Admissions,
		cfg:     cfg,
		done:    done,
		parties: cfg.Parallel,
		starts:  make([][]spec, cfg.Parallel),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// rendezvous blocks until every participating shard arrives, applies
// the due operations (last arriver), and returns this shard's sessions
// to start, the shared eviction slot set, and any snapshot collectors
// granted at this gate (serviced by every shard before evictions and
// starts are applied).
func (g *admissionGate) rendezvous(shard, round int) ([]spec, map[int]bool, []*snapshotCollector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.round = round
	g.arrived++
	if g.arrived == g.parties {
		g.release(true)
	} else {
		ph := g.phase
		for ph == g.phase {
			g.cond.Wait()
		}
	}
	starts := g.starts[shard]
	g.starts[shard] = nil
	return starts, g.evict, g.snaps
}

// leave withdraws a shard from the gate (cancellation or error): its
// live sessions are purged from the registry so capacity frees up and
// no future admission lands on it. If the departure completes the
// barrier, it is released here. Safe to call when no gate is active.
func (g *admissionGate) leave(shard int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.adm
	a.mu.Lock()
	a.alive[shard] = false
	for sl, ls := range a.live { //fleetvet:nondeterministic order-independent: filtering one shard's entries out of the registry
		if ls.shard == shard {
			delete(a.live, sl)
		}
	}
	a.loads[shard] = 0
	a.mu.Unlock()
	g.parties--
	if g.parties > 0 && g.arrived == g.parties {
		// Release without applying: apply may park an idle fleet on the
		// controller's wake channel, which must never block an exiting
		// shard's deferred leave. The queued operations stay queued and
		// apply at the next gate the surviving shards reach.
		g.release(false)
	}
}

// release ends the current gate — applying the due operations first
// when applyOps is set — and wakes every waiting shard. Caller holds
// g.mu.
func (g *admissionGate) release(applyOps bool) {
	if applyOps {
		g.apply()
	} else {
		g.evict = nil
		g.snaps = nil
	}
	g.arrived = 0
	g.phase++
	g.cond.Broadcast()
}

// cancelled reports whether the run context is done.
func (g *admissionGate) cancelled() bool {
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// apply drains the due operations and computes this gate's starts and
// evictions. With an empty fleet and an empty queue it parks on the
// controller's wake channel — every other shard is held at the
// barrier, so blocking here idles the whole fleet without spinning
// rounds. Caller holds g.mu.
func (g *admissionGate) apply() {
	a := g.adm
	for {
		a.mu.Lock()
		if g.cancelled() {
			// A cancelled run starts nothing: leave the queue for the
			// post-mortem and release the shards so they observe ctx.Done.
			a.mu.Unlock()
			g.evict = nil
			g.snaps = nil
			return
		}
		ops := a.takeDueLocked(g.round)
		if len(ops) > 0 || len(a.queue) > 0 || len(a.live) > 0 {
			g.applyOps(ops)
			a.mu.Unlock()
			return
		}
		// Empty fleet, empty queue: park until work arrives. Every other
		// shard is quiesced at the barrier, so dropping both locks is safe
		// — nobody but the controller's producers can make progress.
		wake := a.wakeChan()
		a.mu.Unlock()
		g.mu.Unlock()
		select {
		case <-g.done:
		case <-wake:
		}
		g.mu.Lock()
	}
}

// applyOps resolves the due operations: evictions first (over sessions
// live before this gate), then admissions in order, each validated and
// assigned to the least-loaded live shard. Caller holds g.mu and
// a.mu.
func (g *admissionGate) applyOps(ops []admissionOp) {
	a := g.adm
	g.snaps = nil

	// Snapshot requests resolve first. A group snapshot rides along: the
	// shards serialize the group's pre-gate live set and the gate then
	// proceeds normally. A terminal drain preempts the gate: every other
	// due operation goes back on the queue unapplied, nothing starts or
	// evicts, and the shards serialize everything and exit.
	var drain *snapshotCollector
	rest := ops[:0]
	for _, op := range ops {
		if op.snap == nil {
			rest = append(rest, op)
			continue
		}
		col := op.snap
		switch {
		case !col.terminal:
			col.remaining = g.parties
			col.nextSlot = a.nextSlot
			g.snaps = append(g.snaps, col)
		case drain != nil:
			col.resolveErr(fmt.Errorf("fleet: drain already in progress at this gate"))
		default:
			if err := g.drainAlignmentError(); err != nil {
				col.resolveErr(err)
				continue
			}
			drain = col
		}
	}
	ops = rest
	if drain != nil {
		if len(ops) > 0 {
			a.queue = append(append([]admissionOp{}, ops...), a.queue...)
		}
		drain.remaining = g.parties
		drain.nextSlot = a.nextSlot
		g.snaps = append(g.snaps, drain)
		g.evict = nil
		a.gen++
		return
	}

	evict := make(map[int]bool)
	evictGroups := make(map[string]bool)
	for _, op := range ops {
		for _, s := range op.evictSlots {
			evict[s] = true
		}
		for _, gr := range op.evictGroups {
			evictGroups[gr] = true
		}
	}
	if len(evict) > 0 || len(evictGroups) > 0 {
		slots := make([]int, 0, len(a.live))
		for sl := range a.live { //fleetvet:nondeterministic order-independent: slots are sorted before resolving evictions
			slots = append(slots, sl)
		}
		sort.Ints(slots)
		for _, sl := range slots {
			ls := a.live[sl]
			if evict[sl] || evictGroups[ls.spec.group] {
				evict[sl] = true
				a.loads[ls.shard]--
				delete(a.live, sl)
			}
		}
	}
	for _, op := range ops {
		for _, sp := range op.admit {
			reason, snap := g.validateSpec(sp)
			if reason != "" {
				a.rejectLocked(sp, reason)
				continue
			}
			if len(a.live) >= g.cfg.MaxSessions {
				a.rejectLocked(sp, fmt.Sprintf("fleet at MaxSessions capacity (%d live)", len(a.live)))
				continue
			}
			shard := g.leastLoaded()
			if shard < 0 {
				a.rejectLocked(sp, "no live shard to host the session")
				continue
			}
			slot := a.nextSlot
			a.nextSlot++
			spc := spec{
				index:      slot,
				patientIdx: sp.PatientIdx,
				scenIdx:    sp.ScenIdx,
				program:    sp.Program,
				group:      sp.Group,
				newMonitor: sp.NewMonitor,
				mitigate:   sp.Mitigate,
			}
			if sp.Program != nil {
				spc.scenIdx = -1
			}
			if snap != nil {
				// A restored admission resumes the captured session on the
				// fresh slot: the snapshot header wins for every coordinate
				// except the group tag, which the spec may override.
				spc.patientIdx = snap.PatientIdx
				spc.scenIdx = snap.ScenIdx
				spc.replica = snap.Replica
				spc.mitigate = snap.Mitigate
				spc.program = nil
				if snap.Program != "" {
					// validateSpec already proved the text parses.
					prog, err := fault.ParseProgram(snap.Program)
					if err != nil {
						a.rejectLocked(sp, fmt.Sprintf("snapshot program: %v", err))
						a.nextSlot-- // slot was never registered; reuse it
						continue
					}
					spc.program = &prog
					spc.scenIdx = -1
				}
				if sp.Group == "" {
					spc.group = snap.Group
				}
				spc.restore = snap
			}
			a.live[slot] = liveSlot{spec: spc, shard: shard}
			a.loads[shard]++
			g.starts[shard] = append(g.starts[shard], spc)
		}
	}
	a.gen++
	g.evict = evict
}

// drainAlignmentError rejects a terminal drain at a gate round that
// would strand buffered sink events: with sharded epoch sinks attached,
// a drain must land on a round that is a multiple of SinkEpoch, where
// the per-shard buffers are empty and the completion cursors agree (the
// alignment invariant in this file's package comment).
func (g *admissionGate) drainAlignmentError() error {
	cfg := g.cfg
	if len(cfg.Sinks) > 0 && cfg.ShardedSinks && cfg.SinkEpoch > 0 && g.round%cfg.SinkEpoch != 0 {
		return fmt.Errorf(
			"%w: gate round %d is not aligned to SinkEpoch %d; schedule DrainAt on a common multiple of AdmitEvery and SinkEpoch",
			ErrDrainMisaligned, g.round, cfg.SinkEpoch)
	}
	return nil
}

// failRestore converts a restore failure at session start into a
// rejected admission: the granted slot is unregistered (slots are never
// reused, so the number is simply burned) and the failure lands in the
// rejection log. The shard keeps running — a bad snapshot must not take
// down the fleet.
func (g *admissionGate) failRestore(shard int, sp spec, err error) {
	a := g.adm
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.live, sp.index)
	a.loads[shard]--
	a.rejectLocked(AdmitSpec{
		Group:      sp.group,
		PatientIdx: sp.patientIdx,
		ScenIdx:    sp.scenIdx,
		Program:    sp.program,
		Mitigate:   sp.mitigate,
	}, fmt.Sprintf("restore failed: %v", err))
}

// validateSpec returns a non-empty rejection reason for an invalid
// admission. For a restore admission it also returns the decoded
// snapshot, whose header supplies the session coordinates.
func (g *admissionGate) validateSpec(sp AdmitSpec) (string, *SessionSnapshot) {
	if sp.Restore != nil {
		if sp.NewMonitor != nil {
			return "Restore conflicts with NewMonitor (a monitor override cannot be rebuilt from a snapshot)", nil
		}
		snap, err := DecodeSessionSnapshot(sp.Restore)
		if err != nil {
			return err.Error(), nil
		}
		if snap.PatientIdx < 0 || snap.PatientIdx >= g.cfg.Platform.NumPatients {
			return fmt.Sprintf("snapshot patient index %d outside cohort [0, %d)", snap.PatientIdx, g.cfg.Platform.NumPatients), nil
		}
		if snap.Program != "" {
			prog, err := fault.ParseProgram(snap.Program)
			if err != nil {
				return fmt.Sprintf("snapshot program: %v", err), nil
			}
			if _, err := prog.Compile(g.cfg.Steps, g.cfg.CycleMin); err != nil {
				return fmt.Sprintf("snapshot program: %v", err), nil
			}
		} else if snap.ScenIdx < 0 || snap.ScenIdx >= g.cfg.numScenarios() {
			return fmt.Sprintf("snapshot scenario index %d outside the declared table [0, %d)", snap.ScenIdx, g.cfg.numScenarios()), nil
		}
		return "", snap
	}
	if sp.PatientIdx < 0 || sp.PatientIdx >= g.cfg.Platform.NumPatients {
		return fmt.Sprintf("patient index %d outside cohort [0, %d)", sp.PatientIdx, g.cfg.Platform.NumPatients), nil
	}
	if sp.Program != nil {
		// An inline program must be executable on this fleet's horizon
		// before it takes a slot; Compile revalidates and clips windows.
		if _, err := sp.Program.Compile(g.cfg.Steps, g.cfg.CycleMin); err != nil {
			return fmt.Sprintf("inline program: %v", err), nil
		}
	} else if sp.ScenIdx < 0 || sp.ScenIdx >= g.cfg.numScenarios() {
		return fmt.Sprintf("scenario index %d outside the declared table [0, %d)", sp.ScenIdx, g.cfg.numScenarios()), nil
	}
	if sp.NewMonitor != nil && g.cfg.NewBatchMonitor != nil {
		return "per-session monitor override conflicts with Config.NewBatchMonitor", nil
	}
	return "", nil
}

// leastLoaded picks the live shard with the fewest sessions (lowest
// index on ties), or -1 when every shard has left. Caller holds a.mu.
func (g *admissionGate) leastLoaded() int {
	a := g.adm
	best := -1
	for s := 0; s < len(a.loads); s++ {
		if !a.alive[s] {
			continue
		}
		if best < 0 || a.loads[s] < a.loads[best] {
			best = s
		}
	}
	return best
}
