package fleet

import (
	"math/rand"

	"repro/internal/closedloop"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/trace"
)

// Session is one long-running closed-loop simulation inside a fleet: a
// patient, controller, and (optional) monitor advancing one control
// cycle per engine round. Its entire evolution is a function of its
// coordinates and the master seed — never of goroutine scheduling — so
// fleet results are identical at any parallelism level.
type Session struct {
	// Index is the session's slot in Result.Traces.
	Index int
	// PatientIdx is the cohort index; Program the scenario program the
	// session runs (legacy enum scenarios appear in their bridged
	// program form — display metadata, not the execution path).
	PatientIdx int
	Program    fault.Program
	// Replica numbers restarts of this slot in continuous mode; each
	// replica draws from a fresh RNG stream.
	Replica int

	scenIdx int            // scenario-table index; -1 for inline programs
	program *fault.Program // inline program (AdmitSpec.Program), carried into refills
	group   string         // AdmitSpec group tag (admitted sessions)
	// newMonitor/mitigate carry an admitted session's per-spec overrides
	// into continuous-mode replica restarts.
	newMonitor func(patientIdx int) (monitor.Monitor, error)
	mitigate   bool
	lane       int // shard-local lane for batched monitors
	rng        *rand.Rand
	// seed is the derived per-session seed and src the counting source
	// behind rng; together they pin the RNG stream position a snapshot
	// records (snapshot.go).
	seed int64
	src  *countingSource
	// mon is the session's own monitor (nil with a shard-batched one) and
	// sensorModel its scalar sensor model (nil when the shard batches
	// sensing); both retained for checkpointing.
	mon         monitor.Monitor
	sensorModel *sensor.Model
	st          *closedloop.Stepper
	alarmed     bool
	telemetry   *scs.StreamSet // streaming STL rule set (Config.Telemetry)
	margin      marginMonitor  // monitor-sourced telemetry (FromMonitor)
}

// LastVerdict returns the monitor verdict of the most recently
// completed cycle, including margin and rule attribution.
func (s *Session) LastVerdict() (closedloop.Verdict, bool) { return s.st.LastVerdict() }

// Done reports whether the session has run all its cycles.
func (s *Session) Done() bool { return s.st.Done() }

// StepIndex returns the next cycle index.
func (s *Session) StepIndex() int { return s.st.StepIndex() }

// Step runs one full cycle with the session's own monitor (if any).
func (s *Session) Step() { s.st.Step() }

// BeginStep advances to the monitor decision point and returns the
// observation for batched evaluation.
func (s *Session) BeginStep() closedloop.Observation { return s.st.BeginStep() }

// FinishStep applies an externally computed verdict (batched inference).
func (s *Session) FinishStep(v closedloop.Verdict) { s.st.FinishStep(v) }

// Finish labels and returns the session's trace.
func (s *Session) Finish() *trace.Trace { return s.st.Finish() }

// RNG exposes the session's deterministic random stream (sensor noise
// and any future stochastic session behavior draw from it).
func (s *Session) RNG() *rand.Rand { return s.rng }
