package fleet

import (
	"sync"

	"repro/internal/trace"
)

// bufferPool recycles per-session sample buffers. A continuous fleet
// churns through sessions indefinitely; reusing the sample slices keeps
// the per-session steady-state allocation at the Session struct itself
// rather than a fresh Steps-long buffer per run.
type bufferPool struct {
	pool  sync.Pool
	steps int
}

func newBufferPool(steps int) *bufferPool {
	p := &bufferPool{steps: steps}
	p.pool.New = func() any {
		buf := make([]trace.Sample, 0, steps)
		return &buf
	}
	return p
}

// get returns an empty sample buffer with capacity for a full session.
func (p *bufferPool) get() []trace.Sample {
	return (*p.pool.Get().(*[]trace.Sample))[:0]
}

// put recycles a completed session's buffer.
func (p *bufferPool) put(buf []trace.Sample) {
	buf = buf[:0]
	p.pool.Put(&buf)
}
