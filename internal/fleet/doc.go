// Package fleet is the streaming concurrent simulation engine: it runs
// N patients x M scenarios as long-running closed-loop sessions instead
// of one-shot batch jobs. The batch campaign of internal/experiment is
// the run-to-completion special case; continuous mode keeps every
// session slot busy forever, which is the serving shape the roadmap's
// million-session target grows from.
//
// # Architecture
//
// Sessions are dealt round-robin to Parallel worker shards; each shard
// owns its sessions exclusively and steps its live window in lock-step
// rounds. Workers share only atomic counters and the event channel, so
// the engine is race-free by construction. Each session is driven by a
// closedloop.Stepper — the single implementation of the simulation
// loop — with a per-session deterministic RNG and a pooled trace
// buffer.
//
// # Invariants
//
// Determinism: a session's entire evolution is a function of (master
// seed, slot, patient, scenario, replica) — never of goroutine
// scheduling — so traces, margins, and histograms are byte-identical at
// any parallelism level, with sensor noise and margin-scaled mitigation
// in the loop (TestFleetDeterministicAcrossParallelism).
//
// Batched ≡ per-session, bit-identically: the lock-step rounds let a
// shard evaluate all its sessions' monitor decisions in one call
// (Config.NewBatchMonitor) and all its sessions' hazard telemetry in
// one struct-of-arrays rule-stream push (Config.Telemetry's default;
// TelemetryConfig.PerSession keeps the per-session oracle reachable).
// Both batched paths produce exactly the verdicts and margins the
// per-session paths produce — not statistically, bit-for-bit
// (TestFleetBatchedMonitorMatchesPerSession,
// TestFleetBatchedTelemetryMatchesPerSession) — so batching is purely a
// throughput decision.
//
// One evaluation per cycle: with TelemetryConfig.FromMonitor, telemetry
// reads the monitor's own streaming verdict (per-session or per-lane),
// so alarm, Algorithm 1 mitigation, and telemetry never evaluate the
// rules twice for the same cycle.
//
// Event values are deterministic, event order is not: events from
// different shards interleave by scheduling. The deterministic
// artifacts of a run are its traces and per-(session, replica, step)
// event values — and, with Config.ShardedSinks, the sink streams too:
// per-worker buffers merge in canonical session-coordinate order,
// making sink output byte-identical across parallelism levels
// (TestShardedSinksDeterministicAcrossParallelism). With
// Config.SinkEpoch the merge happens incrementally at epoch barriers
// every SinkEpoch lock-step rounds: finite runs stream the stable
// prefix of the canonical order (concatenated epoch merges are
// byte-identical to the run-end merge at any (Parallel, SinkEpoch) —
// TestShardedSinkEpochMergeMatchesRunEnd), and continuous runs drain
// every closed epoch whole with memory bounded by one epoch window
// (TestShardedSinksContinuousBounded). See shard_sink.go.
//
// Cancellation loses only the in-flight tail, identically in both
// delivery modes: channel-based delivery (the collector goroutine and
// the Events channel) abandons sends once the context is cancelled, and
// sharded delivery skips the open — un-barriered — epoch of a cancelled
// run, delivering only epochs that closed before shutdown (plus any
// canonical-order holdback from closed epochs). Neither mode replays
// the cancelled tail as if the run had completed
// (TestShardedSinkCancelSkipsOpenEpoch); a durable record of the final
// instants before shutdown requires a clean (finite) completion.
//
// Telemetry is never silently dropped while a run is live: the
// collector goroutine backpressures workers through a bounded channel
// (a slow sink slows the fleet rather than losing events), a failing
// sink is detached and its error surfaces from Run after simulation
// completes, and LogSink rotation retires whole files without ever
// splitting or dropping a record.
//
// # Runtime admission
//
// Config.Admissions turns session arrival and departure into a
// first-class runtime operation on a continuous fleet: admission gates
// fire every Config.AdmitEvery lock-step rounds, all shards rendezvous
// on the shared round counter, and the queued operations — AdmitSpec
// admissions, slot or group evictions — apply identically for every
// shard before the barrier releases. Gates key on the round clock, not
// wall time, so the fleet-shape history joins the seed as a
// deterministic input: for a fixed admission schedule the sharded-sink
// stream is byte-identical at any Parallel
// (TestFleetAdmissionStreamDeterministicAcrossParallelism). Slots are
// never reused, acceptance depends only on the fleet-wide live count
// against Config.MaxSessions (every shard sizes its lane banks to the
// capacity), evicted sessions emit a terminal EventSessionEvict and
// are never counted completed, and an empty fleet parks at the gate
// until the controller wakes it. internal/fleetd builds the
// multi-tenant HTTP control plane on this surface; see admission.go
// and DESIGN.md "Runtime admission".
//
// # Snapshot and resume
//
// Because a session's evolution is a pure function of its coordinates
// and the round clock, a live fleet can be serialized and resumed
// bit-exactly. Admissions.Drain stops the fleet at an admission gate
// that is also a sink-epoch boundary — where the sharded sinks'
// buffers are provably empty — and captures every live session's
// component state (patient, sensor, controller, fault, mitigation,
// streaming STL nodes, monitor, RNG position) into a sealed
// FleetSnapshot; Drain at a misaligned gate fails with
// ErrDrainMisaligned and the fleet keeps running. Config.Restore
// rebuilds the fleet from a snapshot slot-for-slot, and the resumed
// sink stream continues byte-identically with a run that never
// stopped, at any Parallel (TestFleetSnapshotResumeGoldenDifferential).
// SnapshotGroup captures one group's sessions the same way without
// stopping the fleet, and AdmitSpec.Restore migrates a captured
// session onto a new slot. The byte format, its versioning rules, and
// the checked-in golden fixture guarding them live in
// internal/snapshot and DESIGN.md "Snapshot format & versioning".
//
//fleetvet:deterministic
package fleet
