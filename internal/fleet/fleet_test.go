package fleet

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/sim/glucosym"
	"repro/internal/sim/uvapadova"
	"repro/internal/stl"
	"repro/internal/trace"
)

// glucosymPlatform mirrors experiment.Glucosym without importing
// experiment (which imports fleet).
func glucosymPlatform() Platform {
	return Platform{
		Name:        "glucosym",
		NumPatients: glucosym.NumPatients,
		NewPatient: func(idx int) (closedloop.Patient, error) {
			return glucosym.New(idx)
		},
		NewBatchPatient: func(lanes int) (sim.BatchPatient, error) {
			return glucosym.NewBatch(lanes)
		},
		NewController: func(basal float64) (control.Controller, error) {
			return control.NewOpenAPS(control.OpenAPSConfig{Basal: basal, ISF: 50})
		},
	}
}

// thinScenarios picks every k-th scenario of the full campaign, in
// program form (the fleet's native scenario type).
func thinScenarios(k int) []fault.Program {
	all := fault.CampaignPrograms(nil)
	out := make([]fault.Program, 0, len(all)/k+1)
	for i := 0; i < len(all); i += k {
		out = append(out, all[i])
	}
	return out
}

// tracesCSV serializes traces to one byte stream for golden comparison.
func tracesCSV(t *testing.T, traces []*trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tr := range traces {
		if tr == nil {
			t.Fatal("nil trace in result")
		}
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSessionMatchesClosedLoopRun pins the fleet session to the one-shot
// simulator: a single session must reproduce closedloop.Run exactly.
func TestSessionMatchesClosedLoopRun(t *testing.T) {
	plat := glucosymPlatform()
	sc := fault.Campaign(nil)[97]

	res, err := Run(context.Background(), Config{
		Platform: plat, Patients: []int{2},
		Scenarios: []fault.Program{sc.Program()}, Steps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("%d traces, want 1", len(res.Traces))
	}

	patient, err := plat.NewPatient(2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := plat.NewController(patient.Basal())
	if err != nil {
		t.Fatal(err)
	}
	f := sc.Fault
	want, err := closedloop.Run(closedloop.Config{
		Platform: "glucosym/" + ctrl.Name(), Steps: 60,
		InitialBG: sc.InitialBG, Patient: patient, Controller: ctrl, Fault: &f,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Traces[0]
	if got.Len() != want.Len() {
		t.Fatalf("length %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, got.Samples[i], want.Samples[i])
		}
	}
}

// TestFleetDeterministicAcrossParallelism is the golden determinism
// guard: with sensor noise active (per-session RNG in the loop), the
// serialized traces must be byte-identical at Parallel=1 and
// Parallel=NumCPU.
func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	base := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 3},
		Scenarios: thinScenarios(40),
		Steps:     40,
		Seed:      42,
		Sensor:    &sensor.Config{NoiseSD: 3},
	}
	run := func(parallel int) []byte {
		cfg := base
		cfg.Parallel = parallel
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tracesCSV(t, res.Traces)
	}
	golden := run(1)
	for _, p := range []int{runtime.NumCPU(), 7} {
		if got := run(p); !bytes.Equal(got, golden) {
			t.Fatalf("Parallel=%d traces differ from Parallel=1 golden", p)
		}
	}

	// A different master seed must change noisy traces (the noise is
	// real, not a constant).
	cfg := base
	cfg.Seed = 43
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(tracesCSV(t, res.Traces), golden) {
		t.Fatal("seed 43 reproduced seed 42 traces — RNG not wired")
	}
}

// TestFleetThousandSessions drives ≥1000 concurrent sessions to
// completion; under -race this is the engine's race coverage.
func TestFleetThousandSessions(t *testing.T) {
	events := make(chan Event, 64)
	counts := make(map[EventKind]int)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			counts[ev.Kind]++
		}
	}()

	const sessions = 1000
	res, err := Run(context.Background(), Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 1, 2, 3, 4},
		Scenarios: thinScenarios(20), // 45 scenarios: 225-slot matrix, wrapped
		Sessions:  sessions,
		Steps:     25,
		// 4 shards x 250-session windows: all 1000 sessions are live
		// and interleaved concurrently.
		Parallel:        4,
		MaxLivePerShard: 250,
		Seed:            7,
		Sensor:          &sensor.Config{NoiseSD: 2},
		Events:          events, ProgressEvery: 250,
	})
	close(events)
	<-drained
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != sessions || res.Completed != sessions {
		t.Fatalf("sessions %d completed %d, want %d", res.Sessions, res.Completed, sessions)
	}
	if res.Steps != sessions*25 {
		t.Fatalf("steps %d, want %d", res.Steps, sessions*25)
	}
	if len(res.Traces) != sessions {
		t.Fatalf("%d traces", len(res.Traces))
	}
	for i, tr := range res.Traces {
		if tr == nil {
			t.Fatalf("trace %d missing", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
	}
	if counts[EventSessionStart] != sessions || counts[EventSessionDone] != sessions {
		t.Fatalf("events: %d starts, %d dones, want %d each",
			counts[EventSessionStart], counts[EventSessionDone], sessions)
	}
	if counts[EventProgress] != sessions/250 {
		t.Fatalf("%d progress events, want %d", counts[EventProgress], sessions/250)
	}
}

// TestFleetCancellation stops a finite run early and expects an error.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0},
		Scenarios: thinScenarios(40),
		Steps:     150,
	})
	if err == nil {
		t.Fatal("cancelled finite run should fail")
	}
}

// TestFleetContinuous runs the serving mode under a deadline: slots
// restart as replicas until cancellation, traces are recycled, and the
// deadline is not an error.
func TestFleetContinuous(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Platform:   glucosymPlatform(),
		Patients:   []int{0},
		Scenarios:  thinScenarios(200), // 5 scenarios: 5 slots
		Steps:      5,
		Parallel:   2,
		Continuous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != nil {
		t.Fatal("continuous mode must not retain traces")
	}
	if res.Completed <= int64(res.Sessions) {
		t.Fatalf("completed %d sessions across %d slots — no replica restarts in 300ms",
			res.Completed, res.Sessions)
	}
}

// trainFleetMLP fits a small MLP on traces from a monitor-less campaign.
func trainFleetMLP(t *testing.T, scenarios []fault.Program) *ml.MLP {
	t.Helper()
	res, err := Run(context.Background(), Config{
		Platform: glucosymPlatform(), Patients: []int{0},
		Scenarios: scenarios, Steps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	X, y := monitor.TrainingData(res.Traces, false)
	mlp, err := ml.FitMLP(X, y, ml.MLPConfig{Hidden: []int{16}, Epochs: 3}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return mlp
}

// TestFleetBatchedMonitorMatchesPerSession runs the same fleet with a
// per-session MLP monitor and with per-shard batched inference; the
// traces must be identical (batched inference is bit-exact).
func TestFleetBatchedMonitorMatchesPerSession(t *testing.T) {
	scenarios := thinScenarios(30)
	mlp := trainFleetMLP(t, scenarios[:10])

	base := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 1},
		Scenarios: scenarios,
		Steps:     50,
		Mitigate:  true,
	}
	perCfg := base
	perCfg.NewMonitor = func(int) (monitor.Monitor, error) {
		return monitor.NewMLMonitor("MLP", mlp)
	}
	batchCfg := base
	batchCfg.NewBatchMonitor = func() (monitor.BatchMonitor, error) {
		return monitor.NewBatchML("MLP", mlp.NewBatch())
	}

	per, err := Run(context.Background(), perCfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Run(context.Background(), batchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if per.Alarmed == 0 {
		t.Fatal("monitor never alarmed — comparison is vacuous")
	}
	if !bytes.Equal(tracesCSV(t, per.Traces), tracesCSV(t, batch.Traces)) {
		t.Fatal("batched-inference traces differ from per-session traces")
	}
	if per.Alarmed != batch.Alarmed || per.Hazardous != batch.Hazardous {
		t.Fatalf("counters differ: per %+v batch %+v", per, batch)
	}
}

// robKey locates one telemetry emission within a run.
type robKey struct {
	session, replica, step int
}

// robVal is the emitted margin and arg-min rule.
type robVal struct {
	rob  float64
	rule int
}

// collectRobustness runs a fleet with streaming STL telemetry attached
// and returns every EventRobustness keyed by (session, replica, step).
func collectRobustness(t *testing.T, cfg Config) (map[robKey]robVal, Result) {
	t.Helper()
	events := make(chan Event, 256)
	cfg.Events = events
	got := make(map[robKey]robVal)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			if ev.Kind != EventRobustness {
				continue
			}
			k := robKey{ev.Session, ev.Replica, ev.Step}
			if _, dup := got[k]; dup {
				t.Errorf("duplicate robustness event for %+v", k)
			}
			got[k] = robVal{ev.Robustness, ev.Rule}
		}
	}()
	res, err := Run(context.Background(), cfg)
	close(events)
	<-drained
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// TestFleetTelemetryMatchesOfflineSTL is the offline/online equivalence
// check for the hazard-telemetry path: the margins streamed live by the
// per-session incremental engine must exactly equal re-evaluating the
// Table I rule formulas offline on the recorded traces at every index.
func TestFleetTelemetryMatchesOfflineSTL(t *testing.T) {
	// Include the truncate-glucose availability attack from a
	// hyperglycemic start: the controller engages low-glucose suspend
	// and stops insulin while actually hyperglycemic, violating rule 9.
	scenarios := append(thinScenarios(80), fault.Scenario{
		Fault: fault.Fault{
			Kind: fault.KindTruncate, Target: "glucose",
			StartStep: 10, Duration: 40,
		},
		InitialBG: 170,
	}.Program())
	cfg := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: scenarios,
		Steps:     50,
		Telemetry: &TelemetryConfig{},
	}
	got, res := collectRobustness(t, cfg)
	if len(res.Traces) == 0 {
		t.Fatal("no traces retained")
	}
	wantEvents := len(res.Traces) * cfg.Steps
	if len(got) != wantEvents {
		t.Fatalf("%d robustness events, want %d", len(got), wantEvents)
	}

	rules := scs.TableI()
	th := scs.Defaults(rules)
	formulas := make([]stl.Formula, len(rules))
	for i, r := range rules {
		formulas[i] = r.STL(scs.Params{}, th[r.ID])
	}
	violations := 0
	for sess, tr := range res.Traces {
		offline, err := stl.NewTrace(tr.CycleMin)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Samples {
			s := &tr.Samples[i]
			offline.Append(map[string]float64{
				"BG": s.CGM, "BG'": s.BGPrime, "IOB": s.IOB, "IOB'": s.IOBPrime,
				"u": float64(s.Action),
			})
			wantRob, wantRule := 0.0, 0
			for k := range formulas {
				rob, err := formulas[k].Robustness(offline, i)
				if err != nil {
					t.Fatal(err)
				}
				if k == 0 || rob < wantRob {
					wantRob, wantRule = rob, rules[k].ID
				}
			}
			ev, ok := got[robKey{sess, 0, i}]
			if !ok {
				t.Fatalf("session %d step %d: no robustness event", sess, i)
			}
			if ev.rob != wantRob || ev.rule != wantRule {
				t.Fatalf("session %d step %d: streamed %v (rule %d), offline %v (rule %d)",
					sess, i, ev.rob, ev.rule, wantRob, wantRule)
			}
			if wantRob < 0 {
				violations++
			}
		}
	}
	if violations == 0 {
		t.Fatal("no negative margins across a fault campaign — comparison is vacuous")
	}
}

// TestFleetTelemetryDeterministicAcrossParallelism: telemetry values are
// a pure function of the session, so the (session, step) -> margin map
// must be identical at any parallelism level even though event order is
// not.
func TestFleetTelemetryDeterministicAcrossParallelism(t *testing.T) {
	base := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 3},
		Scenarios: thinScenarios(80),
		Steps:     30,
		Seed:      11,
		Sensor:    &sensor.Config{NoiseSD: 2},
		Telemetry: &TelemetryConfig{Every: 3},
	}
	run := func(parallel int) map[robKey]robVal {
		cfg := base
		cfg.Parallel = parallel
		got, res := collectRobustness(t, cfg)
		want := len(res.Traces) * base.Steps / base.Telemetry.Every
		if len(got) != want {
			t.Fatalf("Parallel=%d: %d events, want %d (Every=%d)",
				parallel, len(got), want, base.Telemetry.Every)
		}
		return got
	}
	golden := run(1)
	parallel := run(runtime.NumCPU())
	if len(golden) != len(parallel) {
		t.Fatalf("event counts differ: %d vs %d", len(golden), len(parallel))
	}
	for k, v := range golden {
		if pv, ok := parallel[k]; !ok || pv != v {
			t.Fatalf("event %+v differs across parallelism: %+v vs %+v", k, v, pv)
		}
	}
}

// TestFleetTelemetryContinuous: telemetry survives continuous-mode
// replica churn (stream sets reset and carry over between replicas).
func TestFleetTelemetryContinuous(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	events := make(chan Event, 256)
	var robCount int
	replicas := make(map[int]bool)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			if ev.Kind == EventRobustness {
				robCount++
				replicas[ev.Replica] = true
			}
		}
	}()
	res, err := Run(ctx, Config{
		Platform:   glucosymPlatform(),
		Patients:   []int{0},
		Scenarios:  thinScenarios(300), // 3 scenarios: 3 slots
		Steps:      5,
		Parallel:   2,
		Continuous: true,
		Telemetry:  &TelemetryConfig{},
		Events:     events,
	})
	close(events)
	<-drained
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed <= int64(res.Sessions) {
		t.Fatalf("no replica restarts in 300ms (completed %d)", res.Completed)
	}
	if robCount == 0 {
		t.Fatal("no robustness events in continuous mode")
	}
	if len(replicas) < 2 {
		t.Fatalf("telemetry seen for %d replica generations, want >= 2", len(replicas))
	}
}

// TestFleetValidation covers config error paths.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty platform should fail")
	}
	cfg := Config{
		Platform: glucosymPlatform(), Patients: []int{99},
		Scenarios: thinScenarios(200), Steps: 5,
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("out-of-cohort patient should fail")
	}
	both := Config{
		Platform:        glucosymPlatform(),
		NewMonitor:      func(int) (monitor.Monitor, error) { return nil, nil },
		NewBatchMonitor: func() (monitor.BatchMonitor, error) { return nil, nil },
	}
	if _, err := Run(context.Background(), both); err == nil {
		t.Error("NewMonitor + NewBatchMonitor should fail")
	}
	ring, err := NewRingSink(8)
	if err != nil {
		t.Fatal(err)
	}
	epochNoShard := Config{
		Platform:  glucosymPlatform(),
		SinkEpoch: 8,
		Sinks:     []Sink{ring},
	}
	if _, err := Run(context.Background(), epochNoShard); err == nil {
		t.Error("SinkEpoch without ShardedSinks should fail")
	}
	negEpoch := Config{
		Platform:     glucosymPlatform(),
		ShardedSinks: true,
		SinkEpoch:    -1,
		Sinks:        []Sink{ring},
	}
	if _, err := Run(context.Background(), negEpoch); err == nil {
		t.Error("negative SinkEpoch should fail")
	}
	// ShardedSinks + Continuous is no longer rejected: epoch barriers
	// bound the buffers, so serving fleets get contention-free sinks
	// (TestShardedSinksContinuousBounded exercises the run itself).
	shardedContinuous := Config{
		Platform:     glucosymPlatform(),
		Patients:     []int{0},
		Scenarios:    thinScenarios(300),
		Steps:        5,
		Continuous:   true,
		ShardedSinks: true,
		Sinks:        []Sink{ring},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, shardedContinuous); err != nil {
		t.Errorf("ShardedSinks + Continuous should run with epoch delivery: %v", err)
	}
	noEvents := Config{
		Platform:  glucosymPlatform(),
		Telemetry: &TelemetryConfig{},
	}
	if _, err := Run(context.Background(), noEvents); err == nil {
		t.Error("Telemetry without Events should fail")
	}
}

// allKindScenarios builds a scenario subset guaranteed to cover every
// fault kind in the Table II campaign, plus a handful of extras, in
// program form.
func allKindScenarios(perKind int) []fault.Program {
	all := fault.Campaign(nil)
	taken := make(map[fault.Kind]int)
	var out []fault.Scenario
	for _, sc := range all {
		if taken[sc.Fault.Kind] < perKind {
			taken[sc.Fault.Kind]++
			out = append(out, sc)
		}
	}
	if len(taken) != len(fault.Kinds) {
		panic("campaign does not cover every fault kind")
	}
	return fault.Programs(out)
}

// TestFleetBatchedTelemetryMatchesPerSession is the tentpole
// differential: the shard-batched telemetry engine (the default) must
// emit exactly the same robustness events — margin, arg-min rule,
// hazard, for every session and step — as the per-session StreamSet
// path, across every fault kind, with sensor noise, at multiple
// parallelism levels; and the traces must be byte-identical too
// (telemetry never perturbs simulation).
func TestFleetBatchedTelemetryMatchesPerSession(t *testing.T) {
	base := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: allKindScenarios(3),
		Steps:     40,
		Seed:      13,
		Sensor:    &sensor.Config{NoiseSD: 2},
		Telemetry: &TelemetryConfig{},
	}
	type robFull struct {
		rob, margin float64
		rule, mrule int
		hazard      trace.HazardType
	}
	collect := func(cfg Config) (map[robKey]robFull, []byte) {
		events := make(chan Event, 256)
		cfg.Events = events
		got := make(map[robKey]robFull)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for ev := range events {
				if ev.Kind != EventRobustness {
					continue
				}
				got[robKey{ev.Session, ev.Replica, ev.Step}] = robFull{
					rob: ev.Robustness, margin: ev.Margin,
					rule: ev.Rule, mrule: ev.MarginRule, hazard: ev.Hazard,
				}
			}
		}()
		res, err := Run(context.Background(), cfg)
		close(events)
		<-drained
		if err != nil {
			t.Fatal(err)
		}
		return got, tracesCSV(t, res.Traces)
	}

	for _, parallel := range []int{1, runtime.NumCPU()} {
		batched := base
		batched.Parallel = parallel
		perSession := base
		perSession.Parallel = parallel
		perSession.Telemetry = &TelemetryConfig{PerSession: true}

		gotB, tracesB := collect(batched)
		gotP, tracesP := collect(perSession)
		if len(gotB) == 0 || len(gotB) != len(gotP) {
			t.Fatalf("Parallel=%d: event counts differ: batched %d vs per-session %d",
				parallel, len(gotB), len(gotP))
		}
		hazards, violations := 0, 0
		for k, v := range gotB {
			pv, ok := gotP[k]
			if !ok || pv != v {
				t.Fatalf("Parallel=%d event %+v differs: batched %+v vs per-session %+v",
					parallel, k, v, pv)
			}
			if v.margin < 0 {
				violations++
			}
			if v.hazard != trace.HazardNone {
				hazards++
			}
		}
		if violations == 0 || hazards == 0 {
			t.Fatalf("Parallel=%d: %d violations, %d hazards across an all-kind fault campaign — comparison is vacuous",
				parallel, violations, hazards)
		}
		if !bytes.Equal(tracesB, tracesP) {
			t.Fatalf("Parallel=%d: traces differ between batched and per-session telemetry", parallel)
		}
	}
}

// TestFleetFromMonitorBatchedCAWT: FromMonitor telemetry served by the
// shard-batched context-aware monitor must reproduce the per-session
// CAWT fleet exactly — traces and robustness events alike — including
// under margin-scaled mitigation, where verdict margins feed back into
// insulin delivery.
func TestFleetFromMonitorBatchedCAWT(t *testing.T) {
	base := Config{
		Platform:   glucosymPlatform(),
		Patients:   []int{0, 3},
		Scenarios:  allKindScenarios(2),
		Steps:      40,
		Seed:       29,
		Sensor:     &sensor.Config{NoiseSD: 2},
		Mitigate:   true,
		Mitigation: closedloop.MitigationConfig{ScaleByMargin: true},
		Telemetry:  &TelemetryConfig{FromMonitor: true},
	}
	perCfg := base
	perCfg.NewMonitor = func(int) (monitor.Monitor, error) {
		return monitor.NewCAWOT(scs.TableI(), scs.Params{})
	}
	batchCfg := base
	batchCfg.NewBatchMonitor = func() (monitor.BatchMonitor, error) {
		return monitor.NewBatchCAWOT(scs.TableI(), scs.Params{})
	}

	runOne := func(cfg Config) (map[robKey]robVal, []byte, Result) {
		got, res := collectRobustness(t, cfg)
		return got, tracesCSV(t, res.Traces), res
	}
	gotPer, tracesPer, resPer := runOne(perCfg)
	gotBatch, tracesBatch, resBatch := runOne(batchCfg)
	if resPer.Alarmed == 0 {
		t.Fatal("monitor never alarmed — comparison is vacuous")
	}
	if resPer.Alarmed != resBatch.Alarmed || resPer.Hazardous != resBatch.Hazardous {
		t.Fatalf("counters differ: per %+v batch %+v", resPer, resBatch)
	}
	if !bytes.Equal(tracesPer, tracesBatch) {
		t.Fatal("batched-CAWT traces differ from per-session CAWT traces")
	}
	if len(gotPer) == 0 || len(gotPer) != len(gotBatch) {
		t.Fatalf("event counts differ: %d vs %d", len(gotPer), len(gotBatch))
	}
	for k, v := range gotPer {
		if bv, ok := gotBatch[k]; !ok || bv != v {
			t.Fatalf("event %+v differs: per-session %+v vs batched %+v", k, v, bv)
		}
	}
}

// TestFleetBatchedSteppingMatchesPerSession is this revision's tentpole
// differential: the shard-batched struct-of-arrays patient/sensor
// stepping (the default on platforms providing NewBatchPatient) must
// produce byte-identical traces, identical robustness telemetry, and
// identical counters to the per-session scalar oracle
// (Config.PerSessionStepping) — across every fault kind, with sensor
// noise, with margin-scaled mitigation on and off, at multiple
// parallelism levels.
func TestFleetBatchedSteppingMatchesPerSession(t *testing.T) {
	base := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: allKindScenarios(3),
		Steps:     50,
		Seed:      31,
		Sensor:    &sensor.Config{NoiseSD: 2.5},
		Telemetry: &TelemetryConfig{},
	}
	type robM struct {
		rob, margin float64
		rule        int
	}
	collect := func(cfg Config) (map[robKey]robM, Result) {
		events := make(chan Event, 256)
		cfg.Events = events
		got := make(map[robKey]robM)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for ev := range events {
				if ev.Kind != EventRobustness {
					continue
				}
				got[robKey{ev.Session, ev.Replica, ev.Step}] = robM{ev.Robustness, ev.Margin, ev.Rule}
			}
		}()
		res, err := Run(context.Background(), cfg)
		close(events)
		<-drained
		if err != nil {
			t.Fatal(err)
		}
		return got, res
	}
	for _, mitigate := range []bool{false, true} {
		cfg := base
		if mitigate {
			cfg.NewMonitor = func(int) (monitor.Monitor, error) {
				return monitor.NewCAWOT(scs.TableI(), scs.Params{})
			}
			cfg.Mitigate = true
			cfg.Mitigation = closedloop.MitigationConfig{ScaleByMargin: true}
		}
		for _, parallel := range []int{1, runtime.NumCPU()} {
			batched := cfg
			batched.Parallel = parallel
			oracle := cfg
			oracle.Parallel = parallel
			oracle.PerSessionStepping = true

			gotB, resB := collect(batched)
			gotP, resP := collect(oracle)
			tracesB := tracesCSV(t, resB.Traces)
			tracesP := tracesCSV(t, resP.Traces)

			label := "mitigate=" + map[bool]string{false: "off", true: "on"}[mitigate]
			violations := 0
			for _, v := range gotP {
				if v.margin < 0 {
					violations++
				}
			}
			if violations == 0 {
				t.Fatalf("%s Parallel=%d: no STL violations across an all-kind campaign — comparison is vacuous",
					label, parallel)
			}
			if mitigate && resP.Alarmed == 0 {
				t.Fatalf("%s Parallel=%d: monitor never alarmed — mitigation leg is vacuous", label, parallel)
			}
			if resB.Hazardous != resP.Hazardous || resB.Alarmed != resP.Alarmed || resB.Steps != resP.Steps {
				t.Fatalf("%s Parallel=%d: counters differ: batched %+v vs per-session %+v",
					label, parallel, resB, resP)
			}
			if len(gotB) == 0 || len(gotB) != len(gotP) {
				t.Fatalf("%s Parallel=%d: robustness event counts differ: %d vs %d",
					label, parallel, len(gotB), len(gotP))
			}
			for k, v := range gotB {
				if pv, ok := gotP[k]; !ok || pv != v {
					t.Fatalf("%s Parallel=%d: event %+v differs: batched %+v vs per-session %+v",
						label, parallel, k, v, pv)
				}
			}
			if !bytes.Equal(tracesB, tracesP) {
				t.Fatalf("%s Parallel=%d: traces differ between batched and per-session stepping", label, parallel)
			}
		}
	}
}

// TestFleetBatchedSteppingUVA runs the second platform's batch backend
// through the same oracle comparison (single parallelism level; the
// scheduling-independence legs above already cover parallelism).
func TestFleetBatchedSteppingUVA(t *testing.T) {
	base := Config{
		Platform: Platform{
			Name:        "t1ds2013",
			NumPatients: uvapadova.NumPatients,
			NewPatient: func(idx int) (closedloop.Patient, error) {
				return uvapadova.New(idx)
			},
			NewBatchPatient: func(lanes int) (sim.BatchPatient, error) {
				return uvapadova.NewBatch(lanes)
			},
			NewController: func(basal float64) (control.Controller, error) {
				return control.NewBasalBolus(control.BasalBolusConfig{Basal: basal, ISF: 40})
			},
		},
		Patients:  []int{0, 5},
		Scenarios: allKindScenarios(1),
		Steps:     40,
		Seed:      17,
		Sensor:    &sensor.Config{NoiseSD: 2},
	}
	oracle := base
	oracle.PerSessionStepping = true
	resB, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := Run(context.Background(), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tracesCSV(t, resB.Traces), tracesCSV(t, resP.Traces)) {
		t.Fatal("UVA-Padova batched traces differ from per-session stepping")
	}
}
