package fleet

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/sensor"
)

// TestFleetLegacyMatrixGoldenDifferential is the scenario-IR golden
// differential: driving legacy 882-matrix entries through the compiled
// program path (fault.Programs → Plan) must produce a byte-identical
// fleet — serialized traces AND the epoch-merged telemetry stream — to
// the original enum injector path (Config.LegacyScenarios), at every
// parallelism level. Sensor noise is on, so the comparison covers the
// per-session RNG threading too.
func TestFleetLegacyMatrixGoldenDifferential(t *testing.T) {
	full := fault.Campaign(nil)
	var legacy []fault.Scenario
	for _, i := range []int{0, 97, 250, 555, 881} {
		legacy = append(legacy, full[i])
	}
	base := Config{
		Platform:     glucosymPlatform(),
		Patients:     []int{0, 3},
		Steps:        40,
		Seed:         42,
		Sensor:       &sensor.Config{NoiseSD: 3},
		Telemetry:    &TelemetryConfig{},
		ShardedSinks: true,
		SinkEpoch:    4,
	}
	run := func(parallel int, enumPath bool) (traces, events []byte) {
		cfg := base
		cfg.Parallel = parallel
		if enumPath {
			cfg.LegacyScenarios = legacy
		} else {
			cfg.Scenarios = fault.Programs(legacy)
		}
		var buf bytes.Buffer
		cfg.Sinks = []Sink{NewLogSink(&buf)}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tracesCSV(t, res.Traces), buf.Bytes()
	}

	goldenTraces, goldenEvents := run(1, true)
	if len(goldenTraces) == 0 || len(goldenEvents) == 0 {
		t.Fatal("golden enum run produced no output")
	}
	for parallel := 1; parallel <= 3; parallel++ {
		for _, enumPath := range []bool{true, false} {
			if parallel == 1 && enumPath {
				continue // the golden itself
			}
			path := "program"
			if enumPath {
				path = "enum"
			}
			traces, events := run(parallel, enumPath)
			if !bytes.Equal(traces, goldenTraces) {
				t.Fatalf("Parallel=%d %s path: traces differ from enum golden", parallel, path)
			}
			if !bytes.Equal(events, goldenEvents) {
				t.Fatalf("Parallel=%d %s path: telemetry stream differs from enum golden", parallel, path)
			}
		}
	}
}
