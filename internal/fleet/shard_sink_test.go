package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
)

// TestKindRankExhaustive is the enum guard: every declared EventKind
// must carry an explicit, unique canonical-merge rank and a String
// name. A kind added without them would silently sort at an arbitrary
// position (the old default rank) and render as "unknown" — this test
// turns that into a compile-adjacent failure via the eventKindCount
// sentinel.
func TestKindRankExhaustive(t *testing.T) {
	seen := make(map[int]EventKind, eventKindCount)
	for k := EventKind(0); k < eventKindCount; k++ {
		r := kindRank(k)
		if r < 0 {
			t.Errorf("event kind %v (%d) has no explicit merge rank in kindRank", k, int(k))
		}
		if prev, dup := seen[r]; dup {
			t.Errorf("event kinds %v and %v share merge rank %d — canonical order is ambiguous", prev, k, r)
		}
		seen[r] = k
		if k.String() == "unknown" {
			t.Errorf("event kind %d has no String name", int(k))
		}
	}
	if kindRank(eventKindCount) >= 0 {
		t.Error("undeclared event kind got a merge rank — the default arm must reject it")
	}
}

// epochFleetConfig is a finite campaign rich in every event kind
// (alarms, hazards, robustness telemetry, progress marks), shared by
// the epoch-merge tests. The sink is attached by the caller.
func epochFleetConfig() Config {
	return Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: thinScenarios(90),
		Steps:     30,
		Seed:      3,
		Sensor:    &sensor.Config{NoiseSD: 2},
		NewMonitor: func(int) (monitor.Monitor, error) {
			return monitor.NewCAWOT(scs.TableI(), scs.Params{})
		},
		Telemetry:     &TelemetryConfig{FromMonitor: true},
		ShardedSinks:  true,
		ProgressEvery: 7,
	}
}

// TestShardedSinkEpochMergeMatchesRunEnd is the tentpole differential:
// for a finite run, the concatenation of epoch merges must be
// byte-identical (LogSink JSONL) to the single run-end merge at every
// tested (Parallel, SinkEpoch) — including with the live window capped
// so sessions queue and the delivery frontier advances in waves. Epoch
// chunking may only change *when* events reach the sinks, never their
// order, payloads, re-stamped completion counts, or synthesized
// progress marks.
func TestShardedSinkEpochMergeMatchesRunEnd(t *testing.T) {
	type variant struct {
		parallel  int
		sinkEpoch int
		maxLive   int
	}
	run := func(v variant) ([]byte, int) {
		var buf bytes.Buffer
		cfg := epochFleetConfig()
		cfg.Sinks = []Sink{NewLogSink(&buf)}
		cfg.Parallel = v.parallel
		cfg.SinkEpoch = v.sinkEpoch
		cfg.MaxLivePerShard = v.maxLive
		liveDelivered := 0
		cfg.sinkEpochHook = func(_, _, delivered int) { liveDelivered += delivered }
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if int(res.Completed) != len(cfg.Patients)*len(cfg.Scenarios) {
			t.Fatalf("completed %d sessions", res.Completed)
		}
		return buf.Bytes(), liveDelivered
	}

	golden, _ := run(variant{parallel: 1}) // SinkEpoch=0: the run-end merge
	if len(golden) == 0 {
		t.Fatal("run-end merge delivered nothing")
	}
	variants := []variant{}
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		for _, e := range []int{1, 7, 30 /* = Steps: run-length epochs */} {
			variants = append(variants, variant{parallel: p, sinkEpoch: e})
		}
	}
	// Cap the live window so slots queue: the frontier then advances in
	// waves and epoch barriers deliver mid-run instead of only at exit.
	queued := variant{parallel: 2, sinkEpoch: 7, maxLive: 3}
	variants = append(variants, queued)
	for _, v := range variants {
		got, live := run(v)
		if !bytes.Equal(got, golden) {
			t.Errorf("Parallel=%d SinkEpoch=%d MaxLive=%d: epoch-merged stream differs from run-end merge",
				v.parallel, v.sinkEpoch, v.maxLive)
		}
		if v == queued && live == 0 {
			t.Error("queued variant delivered nothing at epoch barriers — stable-prefix delivery is vacuous")
		}
	}
}

// TestShardedSinksContinuousBounded is the serving-mode soak: a
// continuous fleet with sharded sinks must (1) run at all — the old
// "ShardedSinks requires a finite run" rejection is lifted — (2) drain
// its buffers completely at every epoch barrier, keeping buffered
// memory bounded by one epoch window across ≥3 epochs (the StateSamples
// style of boundedness guard), (3) deliver only closed epochs, so a
// cancelled fleet loses exactly the un-barriered tail that channel
// delivery would also abandon, and (4) produce a byte-identical stream
// at every parallelism level, because event-to-epoch assignment is a
// pure function of the session coordinates in continuous mode.
func TestShardedSinksContinuousBounded(t *testing.T) {
	const (
		steps     = 5
		sinkEpoch = 4
		stopAfter = 5 // closed epochs before cancellation
	)
	type epochObs struct{ epoch, buffered, delivered int }
	run := func(parallel int) ([]byte, []epochObs) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var buf bytes.Buffer
		var obs []epochObs
		cfg := Config{
			Platform:     glucosymPlatform(),
			Patients:     []int{0},
			Scenarios:    thinScenarios(300), // 3 scenarios: 3 slots
			Steps:        steps,
			Seed:         11,
			Parallel:     parallel,
			Continuous:   true,
			Sensor:       &sensor.Config{NoiseSD: 2},
			Telemetry:    &TelemetryConfig{},
			Sinks:        []Sink{NewLogSink(&buf)},
			ShardedSinks: true,
			SinkEpoch:    sinkEpoch,
		}
		cfg.sinkEpochHook = func(epoch, buffered, delivered int) {
			// Runs under the barrier lock: appends are ordered and safe.
			obs = append(obs, epochObs{epoch, buffered, delivered})
			if len(obs) == stopAfter {
				cancel()
			}
		}
		if _, err := Run(ctx, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), obs
	}

	golden, goldenObs := run(1)
	for _, parallel := range []int{2, 3} {
		got, obs := run(parallel)
		if !bytes.Equal(got, golden) {
			t.Errorf("Parallel=%d: continuous epoch stream differs from Parallel=1", parallel)
		}
		if len(obs) != len(goldenObs) {
			t.Errorf("Parallel=%d: %d closed epochs, want %d", parallel, len(obs), len(goldenObs))
		}
	}

	if len(goldenObs) < 3 {
		t.Fatalf("only %d closed epochs — soak is vacuous", len(goldenObs))
	}
	// Buffer boundedness: each barrier drains everything it merged, and
	// what it merged is one epoch window of events — per session, at most
	// one robustness event per round plus the per-replica boundary events
	// (start, alarm, hazard, done) for every replica the window touches.
	const slots = 3
	bound := slots * (sinkEpoch + 4*(sinkEpoch/steps+2))
	for _, o := range goldenObs {
		if o.delivered != o.buffered {
			t.Fatalf("epoch %d: delivered %d of %d buffered — continuous epochs must drain whole",
				o.epoch, o.delivered, o.buffered)
		}
		if o.buffered == 0 || o.buffered > bound {
			t.Fatalf("epoch %d buffered %d events, want (0, %d] — sharded buffers are not bounded by the epoch window",
				o.epoch, o.buffered, bound)
		}
	}

	// Closed-epoch-only delivery: every delivered event was emitted in a
	// lock-step round strictly before the cancellation cut, and replica
	// churn is visible (the stream really spans generations).
	horizon := len(goldenObs) * sinkEpoch
	replicas := make(map[int]bool)
	sc := bufio.NewScanner(bytes.NewReader(golden))
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Kind    string `json:"kind"`
			Replica int    `json:"replica"`
			Step    int    `json:"step"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		replicas[rec.Replica] = true
		round := 0
		switch rec.Kind {
		case "robustness", "alarm":
			round = rec.Replica*steps + rec.Step
		case "done", "hazard":
			round = rec.Replica*steps + steps - 1
		case "start":
			if rec.Replica > 0 {
				round = rec.Replica*steps - 1
			}
		case "progress":
			continue // synthesized at delivery, no emission round
		default:
			t.Fatalf("unexpected event kind %q", rec.Kind)
		}
		if round >= horizon {
			t.Fatalf("delivered %s event from round %d, but only %d epochs (%d rounds) closed before cancellation",
				rec.Kind, round, len(goldenObs), horizon)
		}
	}
	if lines == 0 {
		t.Fatal("continuous sharded sinks delivered nothing")
	}
	if len(replicas) < 2 {
		t.Fatalf("delivered events span %d replica generations, want >= 2", len(replicas))
	}
}

// TestShardedSinkCancelSkipsOpenEpoch pins the cancellation contract
// from the sink side: sharded delivery must not replay the open
// (un-barriered) epoch of a cancelled run. With SinkEpoch=0 the whole
// run is one open epoch, so a run cancelled before any barrier delivers
// nothing — the same events channel-based delivery abandons in flight —
// instead of the old behavior of persisting the full buffered stream as
// if the run had completed.
func TestShardedSinkCancelSkipsOpenEpoch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sharded := range []bool{true, false} {
		sink := NewLogSink(&bytes.Buffer{})
		cfg := sinkFleetConfig()
		cfg.Sinks = []Sink{sink}
		cfg.ShardedSinks = sharded
		if _, err := Run(ctx, cfg); err == nil {
			t.Fatalf("sharded=%v: cancelled finite run should fail", sharded)
		}
		if sharded && sink.Written() != 0 {
			t.Fatalf("sharded delivery persisted %d events from a run cancelled before any epoch closed", sink.Written())
		}
	}
}

// TestShardedDeliveryAbortDropsDeadBuffers: once a shard abandons an
// open epoch (cancellation or error), barriers deliver nothing more —
// but surviving shards may keep stepping for a long time (a continuous
// fleet errors out of one shard and runs until external cancellation),
// so aborted barriers must also truncate the dead buffers instead of
// growing them unboundedly, and neither the barrier nor finish may leak
// the abandoned epoch to the sinks.
func TestShardedDeliveryAbortDropsDeadBuffers(t *testing.T) {
	ring, err := NewRingSink(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Parallel: 2, SinkEpoch: 4, Continuous: true, Sinks: []Sink{ring}}
	d := newShardedDelivery(cfg, make([]error, 1))
	d.buffer(0, Event{Kind: EventRobustness, Session: 0})
	d.buffer(1, Event{Kind: EventRobustness, Session: 1})
	d.leave(1, false) // shard 1 aborts mid-epoch
	d.buffer(0, Event{Kind: EventRobustness, Session: 0, Step: 1})
	d.await(0, 0) // shard 0 completes the barrier alone: aborted, no delivery
	if got := len(d.bufs[0]); got != 0 {
		t.Fatalf("aborted barrier left %d buffered events — dead buffers would grow unboundedly", got)
	}
	if ring.Total() != 0 {
		t.Fatalf("aborted barrier delivered %d events", ring.Total())
	}
	d.leave(0, false)
	d.finish()
	if ring.Total() != 0 {
		t.Fatalf("finish delivered %d abandoned open-epoch events", ring.Total())
	}
}

// TestShardedSinkEpochRestampsAcrossEpochs: the completion counter and
// progress marks must be re-stamped with a cursor carried across epoch
// deliveries, not restarted per epoch — dones count 1..N along the
// concatenated stream and every progress mark trails a
// multiple-of-ProgressEvery done, exactly as in the run-end merge.
func TestShardedSinkEpochRestampsAcrossEpochs(t *testing.T) {
	var buf bytes.Buffer
	cfg := epochFleetConfig()
	cfg.Sinks = []Sink{NewLogSink(&buf)}
	cfg.Parallel = 2
	cfg.SinkEpoch = 7
	cfg.MaxLivePerShard = 3 // queue slots so multiple epochs deliver dones
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var dones, progress int64
	scanner := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for scanner.Scan() {
		var rec struct {
			Kind      string `json:"kind"`
			Completed int64  `json:"completed"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Kind {
		case "done":
			dones++
			if rec.Completed != dones {
				t.Fatalf("done #%d carries completed=%d — cursor not carried across epochs", dones, rec.Completed)
			}
		case "progress":
			progress++
			if rec.Completed%int64(cfg.ProgressEvery) != 0 {
				t.Fatalf("progress at completed=%d, want multiples of %d", rec.Completed, cfg.ProgressEvery)
			}
		}
	}
	if dones == 0 || progress != dones/int64(cfg.ProgressEvery) {
		t.Fatalf("%d dones, %d progress marks, want %d", dones, progress, dones/int64(cfg.ProgressEvery))
	}
}

// TestShardedSinksContinuousProgressMonotone pins progress
// re-synthesis across epochs in continuous mode: replica completions
// re-stamped at epoch merges must form one strictly increasing
// completion sequence spanning every delivered epoch, with a progress
// mark at exactly each ProgressEvery-th completion — the continuous
// stream must be indistinguishable from a single infinite merge.
func TestShardedSinksContinuousProgressMonotone(t *testing.T) {
	const stopAfter = 6 // closed epochs before cancellation
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	cfg := Config{
		Platform:      glucosymPlatform(),
		Patients:      []int{0},
		Scenarios:     thinScenarios(300), // 3 scenarios: 3 slots
		Steps:         3,                  // fast replica churn: dones in every epoch
		Seed:          11,
		Parallel:      2,
		Continuous:    true,
		Telemetry:     &TelemetryConfig{},
		Sinks:         []Sink{NewLogSink(&buf)},
		ShardedSinks:  true,
		SinkEpoch:     4,
		ProgressEvery: 2,
	}
	closed := 0
	cfg.sinkEpochHook = func(int, int, int) {
		if closed++; closed == stopAfter {
			cancel()
		}
	}
	if _, err := Run(ctx, cfg); err != nil {
		t.Fatal(err)
	}

	var dones, progress int64
	lastProgressAt := int64(0)
	scanner := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for scanner.Scan() {
		var rec struct {
			Kind      string `json:"kind"`
			Completed int64  `json:"completed"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Kind {
		case "done":
			dones++
			if rec.Completed != dones {
				t.Fatalf("done #%d carries completed=%d — completion cursor reset between continuous epochs", dones, rec.Completed)
			}
		case "progress":
			progress++
			if rec.Completed%int64(cfg.ProgressEvery) != 0 || rec.Completed <= lastProgressAt {
				t.Fatalf("progress at completed=%d after mark at %d — marks must be strictly increasing multiples of %d",
					rec.Completed, lastProgressAt, cfg.ProgressEvery)
			}
			lastProgressAt = rec.Completed
		}
	}
	// 3 slots churning every 3 rounds over ~24 rounds: dones must span
	// several epochs, not pile into one merge.
	minDones := int64(2 * cfg.SinkEpoch)
	if dones < minDones {
		t.Fatalf("%d dones delivered, want at least %d spanning multiple epochs", dones, minDones)
	}
	if progress != dones/int64(cfg.ProgressEvery) {
		t.Fatalf("%d progress marks for %d dones, want %d", progress, dones, dones/int64(cfg.ProgressEvery))
	}
}
