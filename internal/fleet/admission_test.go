package fleet

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/closedloop"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
)

// admissionFleetConfig is a continuous admission-controlled fleet rich
// in every event kind; the sinks and the Admissions controller are
// attached by the caller.
func admissionFleetConfig() Config {
	return Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: thinScenarios(90),
		Sessions:  2, // static slots 0..1; the rest arrive at runtime
		Steps:     5,
		Seed:      3,
		Sensor:    &sensor.Config{NoiseSD: 2},
		NewMonitor: func(int) (monitor.Monitor, error) {
			return monitor.NewCAWOT(scs.TableI(), scs.Params{})
		},
		Telemetry:     &TelemetryConfig{FromMonitor: true},
		Continuous:    true,
		MaxSessions:   8,
		AdmitEvery:    4,
		ShardedSinks:  true,
		SinkEpoch:     4,
		ProgressEvery: 3,
	}
}

// TestFleetAdmissionStreamDeterministicAcrossParallelism is the
// control-plane determinism contract: for a FIXED admission schedule
// (operations pinned to gate rounds), the delivered sharded-sink
// stream of a runtime-growing-and-shrinking fleet must be
// byte-identical at every parallelism level — which also makes every
// tenant group's filtered stream byte-identical. The schedule admits
// two tenant groups at different gates, evicts one wholesale, and
// re-admits it, while static slots and replica churn run underneath.
func TestFleetAdmissionStreamDeterministicAcrossParallelism(t *testing.T) {
	const stopAfter = 9 // closed sink epochs before cancellation
	run := func(parallel int) []byte {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		adm := NewAdmissions()
		// The fixed schedule, queued before the run starts.
		adm.AdmitAt(0,
			AdmitSpec{Group: "acme", PatientIdx: 0, ScenIdx: 1},
			AdmitSpec{Group: "acme", PatientIdx: 2, ScenIdx: 2},
		)
		adm.AdmitAt(8,
			AdmitSpec{Group: "zen", PatientIdx: 2, ScenIdx: 0},
			AdmitSpec{Group: "zen", PatientIdx: 0, ScenIdx: 3},
		)
		adm.EvictGroupAt(16, "acme")
		adm.AdmitAt(20, AdmitSpec{Group: "acme", PatientIdx: 0, ScenIdx: 4})

		var buf bytes.Buffer
		cfg := admissionFleetConfig()
		cfg.Parallel = parallel
		cfg.Admissions = adm
		cfg.Sinks = []Sink{NewLogSink(&buf)}
		closed := 0
		cfg.sinkEpochHook = func(epoch, _, _ int) {
			if closed++; closed == stopAfter {
				cancel() // deterministic cut: exactly stopAfter closed epochs deliver
			}
		}
		if _, err := Run(ctx, cfg); err != nil {
			t.Fatalf("Parallel=%d: %v", parallel, err)
		}
		if n, _ := adm.Rejected(); n != 0 {
			t.Fatalf("Parallel=%d: %d unexpected rejections", parallel, n)
		}
		return buf.Bytes()
	}

	golden := run(1)
	if len(golden) == 0 {
		t.Fatal("no events delivered")
	}
	lines := strings.Split(strings.TrimRight(string(golden), "\n"), "\n")
	var evicts, acme, zen, replicas int
	for _, ln := range lines {
		if strings.Contains(ln, `"kind":"evict"`) {
			evicts++
			if !strings.Contains(ln, `"group":"acme"`) {
				t.Errorf("eviction outside the evicted group: %s", ln)
			}
		}
		if strings.Contains(ln, `"group":"acme"`) {
			acme++
		}
		if strings.Contains(ln, `"group":"zen"`) {
			zen++
		}
		if strings.Contains(ln, `"kind":"start"`) && strings.Contains(ln, `"replica":`) {
			replicas++
		}
	}
	if evicts != 2 {
		t.Errorf("%d evict events, want 2 (the first acme admission wave)", evicts)
	}
	if acme == 0 || zen == 0 {
		t.Errorf("tenant streams missing: %d acme, %d zen events", acme, zen)
	}
	if replicas == 0 {
		t.Error("no replica churn in the stream")
	}

	for _, parallel := range []int{2, 3} {
		if got := run(parallel); !bytes.Equal(got, golden) {
			t.Errorf("Parallel=%d: delivered stream differs from Parallel=1 for the same admission schedule", parallel)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetAdmissionCapacityAndSpecRejects pins the gate's admission
// validation: the fleet bound rejects (not queues) admissions beyond
// MaxSessions, out-of-range coordinates reject with a reason, and
// acceptance is first-come in operation order.
func TestFleetAdmissionCapacityAndSpecRejects(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := NewAdmissions()
	cfg := admissionFleetConfig()
	cfg.Telemetry = nil
	cfg.Sensor = nil
	cfg.NewMonitor = nil
	cfg.MaxSessions = 3 // 2 static slots + 1 free
	cfg.AdmitEvery = 2
	cfg.ShardedSinks = false
	cfg.SinkEpoch = 0
	cfg.ProgressEvery = 0
	cfg.Admissions = adm

	adm.Admit(
		AdmitSpec{Group: "a", PatientIdx: 0, ScenIdx: 0}, // fills the fleet
		AdmitSpec{Group: "a", PatientIdx: 2, ScenIdx: 1}, // over capacity
	)
	adm.Admit(AdmitSpec{Group: "b", PatientIdx: 99, ScenIdx: 0}) // bad patient
	adm.Admit(AdmitSpec{Group: "b", PatientIdx: 0, ScenIdx: -1}) // bad scenario

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	waitFor(t, "admission ops to apply", func() bool { return adm.PendingOps() == 0 && adm.Gen() > 0 })
	waitFor(t, "fleet at capacity", func() bool { return len(adm.Live()) == 3 })

	n, rejects := adm.Rejected()
	if n != 3 {
		t.Fatalf("%d rejections, want 3: %+v", n, rejects)
	}
	for i, want := range []string{"MaxSessions", "patient index 99", "scenario index -1"} {
		if !strings.Contains(rejects[i].Reason, want) {
			t.Errorf("reject %d reason %q does not mention %q", i, rejects[i].Reason, want)
		}
	}
	live := adm.Live()
	if live[2].Group != "a" || live[2].Slot != 2 {
		t.Errorf("accepted admission got %+v, want group a at slot 2", live[2])
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestFleetAdmissionGrowShrinkIdle drives a fleet that starts EMPTY:
// admission wakes it, group eviction empties it again (the fleet parks
// at the gate instead of spinning), a second admission wakes it once
// more, and cancellation shuts it down cleanly. Evictions must surface
// as EventSessionEvict on the live event stream.
func TestFleetAdmissionGrowShrinkIdle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := NewAdmissions()
	cfg := admissionFleetConfig()
	cfg.Telemetry = nil
	cfg.Sensor = nil
	cfg.NewMonitor = nil
	cfg.Sessions = 0 // start empty
	cfg.MaxSessions = 4
	cfg.AdmitEvery = 2
	cfg.ShardedSinks = false
	cfg.SinkEpoch = 0
	cfg.ProgressEvery = 0
	cfg.Admissions = adm

	events := make(chan Event, 4096)
	cfg.Events = events
	evicted := make(chan Event, 16)
	go func() {
		for ev := range events {
			if ev.Kind == EventSessionEvict {
				evicted <- ev
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()

	adm.Admit(
		AdmitSpec{Group: "t1", PatientIdx: 0, ScenIdx: 0},
		AdmitSpec{Group: "t1", PatientIdx: 2, ScenIdx: 1},
	)
	waitFor(t, "first admission", func() bool { return len(adm.Live()) == 2 })

	adm.EvictGroup("t1")
	waitFor(t, "group eviction", func() bool { return len(adm.Live()) == 0 })
	for i := 0; i < 2; i++ {
		select {
		case ev := <-evicted:
			if ev.Group != "t1" {
				t.Errorf("evict event for group %q, want t1", ev.Group)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("no EventSessionEvict on the live stream")
		}
	}

	// The fleet is empty and parked; a fresh admission must wake it.
	adm.Admit(AdmitSpec{Group: "t2", PatientIdx: 0, ScenIdx: 2})
	waitFor(t, "post-idle admission", func() bool {
		live := adm.Live()
		return len(live) == 1 && live[0].Group == "t2"
	})

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(events)
}

// TestFleetAdmissionMonitorOverride admits a session carrying its own
// monitor and mitigation config into a fleet with no fleet-level
// monitor, and checks the override reaches the session (alarms only
// that session can raise) and survives replica churn.
func TestFleetAdmissionMonitorOverride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := NewAdmissions()
	cfg := admissionFleetConfig()
	cfg.Telemetry = nil
	cfg.Sensor = nil
	cfg.NewMonitor = nil
	cfg.Sessions = 0
	cfg.MaxSessions = 2
	cfg.AdmitEvery = 2
	cfg.ShardedSinks = false
	cfg.SinkEpoch = 0
	cfg.ProgressEvery = 0
	cfg.Admissions = adm

	events := make(chan Event, 4096)
	cfg.Events = events
	alarms := make(chan Event, 256)
	starts := make(chan Event, 256)
	go func() {
		for ev := range events {
			switch ev.Kind {
			case EventAlarm:
				select {
				case alarms <- ev:
				default:
				}
			case EventSessionStart:
				select {
				case starts <- ev:
				default:
				}
			case EventHazard, EventSessionDone, EventSessionEvict, EventProgress, EventRobustness:
			}
		}
	}()

	// The monitored session carries a monitor that alarms every cycle, so
	// alarm attribution is deterministic: any alarm from "plain" means the
	// override leaked across sessions.
	adm.Admit(
		AdmitSpec{Group: "mon", PatientIdx: 0, ScenIdx: 1, Mitigate: true,
			NewMonitor: func(int) (monitor.Monitor, error) { return alwaysAlarm{}, nil }},
		AdmitSpec{Group: "plain", PatientIdx: 0, ScenIdx: 1},
	)

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	waitFor(t, "admission", func() bool { return len(adm.Live()) == 2 })

	// Wait for replica churn (the override must survive restarts), then
	// check alarm attribution.
	churned := make(map[string]bool)
	waitFor(t, "replica churn in both groups", func() bool {
		for {
			select {
			case ev := <-starts:
				if ev.Replica > 0 {
					churned[ev.Group] = true
				}
			default:
				return churned["mon"] && churned["plain"]
			}
		}
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(events)

	sawAlarm := false
	for {
		select {
		case ev := <-alarms:
			sawAlarm = true
			if ev.Group != "mon" {
				t.Errorf("alarm from group %q: only the monitored session has a monitor", ev.Group)
			}
		default:
			if !sawAlarm {
				t.Error("no alarm from the always-alarming override monitor")
			}
			return
		}
	}
}

// alwaysAlarm is a stub monitor that alarms on every cycle — it makes
// alarm attribution in override tests independent of scenario timing.
type alwaysAlarm struct{}

func (alwaysAlarm) Name() string { return "always-alarm" }
func (alwaysAlarm) Reset()       {}
func (alwaysAlarm) Step(closedloop.Observation) closedloop.Verdict {
	return closedloop.Verdict{Alarm: true, Margin: -1}
}

// TestFleetConfigValidate is the table test over Config.Validate: every
// contradictory configuration surfaces as an error (fleetd turns these
// into 400s), and a well-formed one passes.
func TestFleetConfigValidate(t *testing.T) {
	valid := func() Config {
		return Config{
			Platform:  glucosymPlatform(),
			Patients:  []int{0},
			Scenarios: thinScenarios(300),
			Steps:     5,
		}
	}
	ring, err := NewRingSink(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error ("" = must validate)
	}{
		{"valid", func(c *Config) {}, ""},
		{"valid continuous admissions", func(c *Config) {
			c.Continuous = true
			c.Admissions = NewAdmissions()
			c.MaxSessions = 8
			c.AdmitEvery = 4
		}, ""},
		{"empty platform", func(c *Config) { c.Platform = Platform{} }, "incomplete platform"},
		{"negative sessions", func(c *Config) { c.Sessions = -1 }, "negative Sessions"},
		{"negative steps", func(c *Config) { c.Steps = -5 }, "negative Steps"},
		{"negative cycle", func(c *Config) { c.CycleMin = -1 }, "negative CycleMin"},
		{"negative parallel", func(c *Config) { c.Parallel = -2 }, "negative Parallel"},
		{"negative window", func(c *Config) { c.MaxLivePerShard = -1 }, "negative MaxLivePerShard"},
		{"negative progress", func(c *Config) { c.ProgressEvery = -1 }, "negative ProgressEvery"},
		{"both monitors", func(c *Config) {
			c.NewMonitor = func(int) (monitor.Monitor, error) { return nil, nil }
			c.NewBatchMonitor = func() (monitor.BatchMonitor, error) { return nil, nil }
		}, "mutually exclusive"},
		{"negative sink epoch", func(c *Config) {
			c.ShardedSinks = true
			c.Sinks = []Sink{ring}
			c.SinkEpoch = -1
		}, "negative SinkEpoch"},
		{"epoch without sharding", func(c *Config) {
			c.Sinks = []Sink{ring}
			c.SinkEpoch = 8
		}, "requires ShardedSinks"},
		{"continuous without scenarios", func(c *Config) {
			c.Continuous = true
			c.Scenarios = nil
		}, "explicit Scenarios"},
		{"telemetry without outputs", func(c *Config) { c.Telemetry = &TelemetryConfig{} }, "Events or Sinks"},
		{"frommonitor without monitor", func(c *Config) {
			c.Telemetry = &TelemetryConfig{FromMonitor: true}
			c.Sinks = []Sink{ring}
		}, "FromMonitor requires"},
		{"nil sink", func(c *Config) { c.Sinks = []Sink{nil} }, "nil sink"},
		{"admissions without continuous", func(c *Config) {
			c.Admissions = NewAdmissions()
			c.MaxSessions = 4
		}, "requires Continuous"},
		{"admissions without capacity", func(c *Config) {
			c.Continuous = true
			c.Admissions = NewAdmissions()
		}, "positive MaxSessions"},
		{"capacity below static slots", func(c *Config) {
			c.Continuous = true
			c.Admissions = NewAdmissions()
			c.MaxSessions = 2
			c.Sessions = 5
		}, "below the static Sessions"},
		{"capacity without admissions", func(c *Config) { c.MaxSessions = 4 }, "MaxSessions requires Admissions"},
		{"gate period without admissions", func(c *Config) { c.AdmitEvery = 4 }, "AdmitEvery requires Admissions"},
		{"negative gate period", func(c *Config) {
			c.Continuous = true
			c.Admissions = NewAdmissions()
			c.MaxSessions = 4
			c.AdmitEvery = -1
		}, "negative AdmitEvery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mut(&cfg)
			err := cfg.Validate()
			switch {
			case tc.want == "" && err != nil:
				t.Errorf("Validate() = %v, want nil", err)
			case tc.want != "" && err == nil:
				t.Errorf("Validate() = nil, want error mentioning %q", tc.want)
			case tc.want != "" && !strings.Contains(err.Error(), tc.want):
				t.Errorf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestFleetAdmissionsRebindRejected pins the one-run-per-controller
// rule: a controller bound to a finished run must refuse a second Run.
func TestFleetAdmissionsRebindRejected(t *testing.T) {
	adm := NewAdmissions()
	cfg := admissionFleetConfig()
	cfg.Telemetry = nil
	cfg.NewMonitor = nil
	cfg.Sensor = nil
	cfg.ShardedSinks = false
	cfg.SinkEpoch = 0
	cfg.ProgressEvery = 0
	cfg.Admissions = adm
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "already bound") {
		t.Errorf("second Run with the same controller: err = %v, want already-bound rejection", err)
	}
}

// ExampleAdmissions shows the runtime admission surface: a continuous
// fleet that starts empty, admits a tenant's sessions, and evicts them.
func ExampleAdmissions() {
	adm := NewAdmissions()
	adm.Admit(AdmitSpec{Group: "tenant-a", PatientIdx: 0, ScenIdx: 0})
	fmt.Println(adm.PendingOps())
	// Output: 1
}
