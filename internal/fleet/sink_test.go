package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/closedloop"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
)

// sinkFleetConfig is a small campaign with telemetry, shared by the
// sink tests.
func sinkFleetConfig() Config {
	return Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: thinScenarios(60),
		Steps:     30,
		Seed:      3,
		Telemetry: &TelemetryConfig{},
	}
}

// TestLogSinkWritesJSONL: every event reaches the log as one parseable
// JSON line, and the robustness lines carry both the raw STL minimum
// and the signed margin.
func TestLogSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewLogSink(&buf)
	cfg := sinkFleetConfig()
	cfg.Sinks = []Sink{sink}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantRob := int64(len(res.Traces) * cfg.Steps)
	sc := bufio.NewScanner(&buf)
	var lines, robLines int64
	kinds := map[string]int{}
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		kind, _ := rec["kind"].(string)
		kinds[kind]++
		if kind == "robustness" {
			robLines++
			if _, ok := rec["margin"]; !ok {
				t.Fatalf("robustness line lacks margin: %s", sc.Text())
			}
		}
	}
	if lines != sink.Written() {
		t.Fatalf("scanned %d lines, sink wrote %d", lines, sink.Written())
	}
	if robLines != wantRob {
		t.Fatalf("%d robustness lines, want %d", robLines, wantRob)
	}
	if kinds["start"] != len(res.Traces) || kinds["done"] != len(res.Traces) {
		t.Fatalf("lifecycle lines %v, want %d starts and dones", kinds, len(res.Traces))
	}
}

// TestRingSinkBoundedSnapshot: the ring retains exactly its capacity,
// newest-last, while counting the full stream.
func TestRingSinkBoundedSnapshot(t *testing.T) {
	if _, err := NewRingSink(0); err == nil {
		t.Error("zero capacity should be rejected")
	}
	sink, err := NewRingSink(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sinkFleetConfig()
	cfg.Sinks = []Sink{sink}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot has %d events, want capacity 64", len(snap))
	}
	minTotal := int64(len(res.Traces) * cfg.Steps)
	if sink.Total() < minTotal {
		t.Fatalf("ring saw %d events, want >= %d", sink.Total(), minTotal)
	}
	// The final event of a finite run is a session completion.
	last := snap[len(snap)-1]
	if last.Kind != EventSessionDone {
		t.Fatalf("newest ring event is %v, want done", last.Kind)
	}
}

// TestHistSinkAggregatesMargins: per-patient counts must equal the
// per-patient robustness-event counts, and the distribution must span
// the violation side on a fault campaign.
func TestHistSinkAggregatesMargins(t *testing.T) {
	if _, err := NewHistSink(1, 1, 10); err == nil {
		t.Error("empty range should be rejected")
	}
	if _, err := NewHistSink(-5, 5, 0); err == nil {
		t.Error("zero bins should be rejected")
	}
	sink, err := NewHistSink(-5, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sinkFleetConfig()
	cfg.Sinks = []Sink{sink}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	patients := sink.Patients()
	if len(patients) != len(cfg.Patients) {
		t.Fatalf("histograms for %v, want %v", patients, cfg.Patients)
	}
	var total, negative int64
	for _, p := range patients {
		hist, ok := sink.Histogram(p)
		if !ok {
			t.Fatalf("no histogram for patient %d", p)
		}
		for b, c := range hist {
			total += c
			if float64(b) < float64(len(hist))/2 {
				negative += c
			}
		}
		if _, n := sink.Mean(p); n == 0 {
			t.Fatalf("patient %d mean over zero samples", p)
		}
	}
	if want := int64(len(res.Traces) * cfg.Steps); total != want {
		t.Fatalf("histograms hold %d margins, want %d", total, want)
	}
	if negative == 0 {
		t.Fatal("no negative margins across a fault campaign — aggregation is vacuous")
	}
	if sink.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestHistSinkDropsNonFiniteMargins: a NaN margin makes both clamp
// comparisons false and feeds an implementation-defined float->int
// conversion; ±Inf poisons the running mean. Non-finite margins must be
// dropped and counted, never aggregated, and finite margins around them
// must keep binning exactly as before.
func TestHistSinkDropsNonFiniteMargins(t *testing.T) {
	sink, err := NewHistSink(-5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(margin float64) {
		if err := sink.Emit(Event{Kind: EventRobustness, PatientIdx: 1, Margin: margin}); err != nil {
			t.Fatal(err)
		}
	}
	emit(-1)
	emit(math.NaN())
	emit(math.Inf(1))
	emit(math.Inf(-1))
	emit(2)
	// Non-robustness events never aggregate, finite margin or not.
	if err := sink.Emit(Event{Kind: EventSessionDone, PatientIdx: 1, Margin: math.NaN()}); err != nil {
		t.Fatal(err)
	}

	if got := sink.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	hist, ok := sink.Histogram(1)
	if !ok {
		t.Fatal("no histogram for patient 1")
	}
	var total int64
	for _, c := range hist {
		if c < 0 {
			t.Fatalf("negative bin count %d — counts corrupted", c)
		}
		total += c
	}
	if total != 2 {
		t.Fatalf("histogram holds %d margins, want the 2 finite ones", total)
	}
	mean, n := sink.Mean(1)
	if n != 2 || mean != 0.5 {
		t.Fatalf("Mean() = (%v, %d), want (0.5, 2) over the finite margins only", mean, n)
	}
}

// failingSink errors on the nth emit.
type failingSink struct {
	n     int
	seen  int
	after int // emits delivered after the failure (must stay 0)
}

func (f *failingSink) Emit(Event) error {
	f.seen++
	if f.seen == f.n {
		return fmt.Errorf("sink exploded at event %d", f.n)
	}
	if f.seen > f.n {
		f.after++
	}
	return nil
}
func (f *failingSink) Flush() error { return nil }

// TestSinkErrorDetachesWithoutAbortingRun: a failing sink must not kill
// the fleet — the run completes, healthy sinks keep receiving, and the
// error surfaces from Run.
func TestSinkErrorDetachesWithoutAbortingRun(t *testing.T) {
	bad := &failingSink{n: 10}
	good, err := NewRingSink(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sinkFleetConfig()
	cfg.Sinks = []Sink{bad, good}
	res, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("sink error did not surface from Run")
	}
	if res.Completed != int64(len(cfg.Patients)*len(thinScenarios(60))) {
		t.Fatalf("run did not complete: %d sessions", res.Completed)
	}
	if bad.after != 0 {
		t.Fatalf("failing sink received %d events after its error", bad.after)
	}
	if good.Total() <= int64(bad.seen) {
		t.Fatalf("healthy sink stalled at %d events", good.Total())
	}
}

// TestTelemetryRequiresEventsOrSinks: sinks now satisfy the telemetry
// delivery requirement the Events channel used to own alone.
func TestTelemetryRequiresEventsOrSinks(t *testing.T) {
	cfg := sinkFleetConfig()
	cfg.Sinks = nil
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("telemetry without any consumer should fail")
	}
	sink, err := NewRingSink(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sinks = []Sink{sink}
	cfg.Scenarios = thinScenarios(300)
	cfg.Patients = []int{0}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("sinks alone should satisfy telemetry: %v", err)
	}
}

// TestTelemetryFromMonitor: with FromMonitor the robustness events must
// equal the monitor's own replayed streaming verdicts — one rule
// evaluation per cycle feeding alarm, mitigation, and telemetry alike.
func TestTelemetryFromMonitor(t *testing.T) {
	newMon := func(int) (monitor.Monitor, error) {
		return monitor.NewCAWOT(scs.TableI(), scs.Params{})
	}
	cfg := Config{
		Platform:   glucosymPlatform(),
		Patients:   []int{0, 2},
		Scenarios:  thinScenarios(60),
		Steps:      40,
		Seed:       3,
		NewMonitor: newMon,
		Telemetry:  &TelemetryConfig{FromMonitor: true},
	}
	got, res := collectRobustness(t, cfg)
	if len(got) != len(res.Traces)*cfg.Steps {
		t.Fatalf("%d robustness events, want %d", len(got), len(res.Traces)*cfg.Steps)
	}
	var violations int
	for sess, tr := range res.Traces {
		m, err := newMon(0)
		if err != nil {
			t.Fatal(err)
		}
		verdicts := monitor.Replay(m, tr)
		for i, v := range verdicts {
			ev, ok := got[robKey{sess, 0, i}]
			if !ok {
				t.Fatalf("session %d step %d: no robustness event", sess, i)
			}
			if ev.rob == 0 && ev.rule == 0 {
				t.Fatalf("session %d step %d: empty telemetry", sess, i)
			}
			// The emitted margin is the monitor's own verdict margin.
			if tr.Samples[i].Alarm != v.Alarm {
				t.Fatalf("session %d step %d: replay alarm %v, trace %v", sess, i, v.Alarm, tr.Samples[i].Alarm)
			}
			if v.Margin < 0 {
				violations++
			}
		}
	}
	if violations == 0 {
		t.Fatal("no violations across a fault campaign — comparison is vacuous")
	}

	// A monitor without margins must be rejected at session build.
	bad := cfg
	bad.NewMonitor = func(int) (monitor.Monitor, error) {
		return monitor.NewGuideline(monitor.GuidelineConfig{})
	}
	badEvents := make(chan Event, 16)
	bad.Events = badEvents
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range badEvents {
		}
	}()
	_, err := Run(context.Background(), bad)
	close(badEvents)
	<-done
	if err == nil {
		t.Fatal("FromMonitor with a margin-less monitor should fail")
	}
	// And FromMonitor without NewMonitor is a config error.
	noMon := cfg
	noMon.NewMonitor = nil
	ring, err := NewRingSink(8)
	if err != nil {
		t.Fatal(err)
	}
	noMon.Sinks = []Sink{ring}
	if _, err := Run(context.Background(), noMon); err == nil {
		t.Fatal("FromMonitor without NewMonitor should fail")
	}
}

// TestFromMonitorMarginsMatchSeparateStreamSet: monitor-sourced margins
// must be identical to what a dedicated telemetry StreamSet would have
// computed under the same rules and thresholds (the evaluations are
// interchangeable; FromMonitor just avoids paying for the second one).
func TestFromMonitorMarginsMatchSeparateStreamSet(t *testing.T) {
	base := Config{
		Platform:   glucosymPlatform(),
		Patients:   []int{0},
		Scenarios:  thinScenarios(80),
		Steps:      40,
		Seed:       7,
		NewMonitor: func(int) (monitor.Monitor, error) { return monitor.NewCAWOT(scs.TableI(), scs.Params{}) },
	}
	fromMon := base
	fromMon.Telemetry = &TelemetryConfig{FromMonitor: true}
	separate := base
	separate.Telemetry = &TelemetryConfig{}

	gotMon, _ := collectRobustness(t, fromMon)
	gotSep, _ := collectRobustness(t, separate)
	if len(gotMon) == 0 || len(gotMon) != len(gotSep) {
		t.Fatalf("event counts differ: %d vs %d", len(gotMon), len(gotSep))
	}
	for k, v := range gotMon {
		if sv, ok := gotSep[k]; !ok || sv != v {
			t.Fatalf("event %+v differs: monitor-sourced %+v vs stream-set %+v", k, v, sv)
		}
	}
}

// TestFleetMarginDeterministicAcrossParallelism pins the redesign's
// determinism requirement: under margin-scaled mitigation with sensor
// noise, both the traces (delivered rates depend on margins) and the
// per-patient margin histograms must be identical at any parallelism.
func TestFleetMarginDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallel int) ([]byte, string) {
		hist, err := NewHistSink(-5, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Platform:  glucosymPlatform(),
			Patients:  []int{0, 3},
			Scenarios: thinScenarios(60),
			Steps:     40,
			Seed:      42,
			Parallel:  parallel,
			Sensor:    &sensor.Config{NoiseSD: 2},
			NewMonitor: func(int) (monitor.Monitor, error) {
				return monitor.NewCAWOT(scs.TableI(), scs.Params{})
			},
			Mitigate:   true,
			Mitigation: closedloop.MitigationConfig{ScaleByMargin: true},
			Telemetry:  &TelemetryConfig{FromMonitor: true},
			Sinks:      []Sink{hist},
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var scaled int
		for _, tr := range res.Traces {
			for _, s := range tr.Samples {
				// Margin-scaled mitigation produces deliveries strictly
				// between the command and the fixed corrective action.
				if s.Mitigated && s.Delivered != 0 && s.Delivered != s.Rate {
					scaled++
				}
			}
		}
		if scaled == 0 {
			t.Fatal("no margin-scaled deliveries — determinism check is vacuous")
		}
		return tracesCSV(t, res.Traces), hist.Render()
	}
	goldenTraces, goldenHist := run(1)
	for _, p := range []int{runtime.NumCPU(), 5} {
		traces, hist := run(p)
		if !bytes.Equal(traces, goldenTraces) {
			t.Fatalf("Parallel=%d margin-scaled traces differ from Parallel=1", p)
		}
		if hist != goldenHist {
			t.Fatalf("Parallel=%d margin histograms differ from Parallel=1", p)
		}
	}
}

// countLines returns the number of newline-terminated JSON records in a
// file, failing on any non-JSON line.
func countLines(t *testing.T, path string) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var n int64
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("%s line %d is not JSON: %v", path, n+1, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestLogSinkRotationBySize: the size trigger must rotate at the bound,
// number rotated files monotonically, and lose no records — the sum of
// lines across the active and rotated files equals the emitted count.
func TestLogSinkRotationBySize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewRotatingLogSink(path, RotationPolicy{MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const events = 500
	for i := 0; i < events; i++ {
		ev := Event{Kind: EventRobustness, Session: i, PatientIdx: i % 5, Step: i, Margin: float64(i) / 7}
		if err := sink.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Rotations() == 0 {
		t.Fatal("size trigger never rotated")
	}
	total := countLines(t, path)
	for _, rf := range sink.RotatedFiles() {
		st, err := os.Stat(rf)
		if err != nil {
			t.Fatal(err)
		}
		// Files may overshoot MaxBytes by at most one record.
		if st.Size() > 2048+512 {
			t.Fatalf("rotated file %s is %d bytes, far over the 2048 bound", rf, st.Size())
		}
		total += countLines(t, rf)
	}
	if total != events {
		t.Fatalf("%d records across all files, want %d — rotation dropped records", total, events)
	}
	if got := sink.Written(); got != events {
		t.Fatalf("sink counted %d writes, want %d", got, events)
	}
}

// TestLogSinkRotationByAge: the age trigger rotates once the active
// file has been open MaxAge, using the injectable clock, and never
// rotates an empty file.
func TestLogSinkRotationByAge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewRotatingLogSink(path, RotationPolicy{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	sink.now = func() time.Time { return clock }
	sink.openedAt = clock

	// Age elapses on an empty file: no rotation (nothing to retire).
	clock = clock.Add(2 * time.Minute)
	if err := sink.Emit(Event{Kind: EventSessionStart}); err != nil {
		t.Fatal(err)
	}
	if sink.Rotations() != 0 {
		t.Fatal("rotated an empty file on the age trigger")
	}
	// Next emission after the age bound rotates first.
	clock = clock.Add(2 * time.Minute)
	if err := sink.Emit(Event{Kind: EventSessionDone, Step: 1}); err != nil {
		t.Fatal(err)
	}
	if sink.Rotations() != 1 {
		t.Fatalf("age trigger rotated %d times, want 1", sink.Rotations())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	total := countLines(t, path)
	for _, rf := range sink.RotatedFiles() {
		total += countLines(t, rf)
	}
	if total != 2 {
		t.Fatalf("%d records across files, want 2", total)
	}
}

// TestLogSinkRetentionPrunes: only the Keep newest rotated files
// survive, numbering keeps increasing, and a reopened sink resumes the
// numbering instead of overwriting history.
func TestLogSinkRetentionPrunes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewRotatingLogSink(path, RotationPolicy{MaxBytes: 256, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sink.Emit(Event{Kind: EventRobustness, Session: i, Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Rotations() < 3 {
		t.Fatalf("only %d rotations; retention path untested", sink.Rotations())
	}
	files := sink.RotatedFiles()
	if len(files) != 2 {
		t.Fatalf("retained %v, want exactly 2 rotated files", files)
	}
	// The retained files are the newest (highest-numbered) ones:
	// numbering starts at 1 with no preexisting files, so the newest
	// index equals the rotation count.
	newestIdx := int(sink.Rotations())
	if want := fmt.Sprintf("%s.%d", path, newestIdx); files[1] != want {
		t.Fatalf("newest retained file %s, want %s", files[1], want)
	}

	// Reopen: numbering resumes past the survivors.
	sink2, err := NewRotatingLogSink(path, RotationPolicy{MaxBytes: 256, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sink2.Emit(Event{Kind: EventRobustness, Session: i, Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	idxs := rotatedIndices(path)
	if len(idxs) != 2 {
		t.Fatalf("reopened sink retained indices %v, want 2", idxs)
	}
	if idxs[1] <= newestIdx {
		t.Fatalf("reopened sink numbered up to %d, want past %d", idxs[1], newestIdx)
	}
}

// TestShardedSinksDeterministicAcrossParallelism is the sharded
// delivery contract: with per-worker sink buffers merged in canonical
// order, the JSONL byte stream must be identical at any parallelism
// level — the same golden-determinism bar the traces meet — with
// completion counters re-stamped 1..N along the merged order and
// progress marks re-synthesized deterministically.
func TestShardedSinksDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallel int) []byte {
		var buf bytes.Buffer
		sink := NewLogSink(&buf)
		cfg := Config{
			Platform:  glucosymPlatform(),
			Patients:  []int{0, 2},
			Scenarios: thinScenarios(60),
			Steps:     30,
			Seed:      3,
			Parallel:  parallel,
			Sensor:    &sensor.Config{NoiseSD: 2},
			NewMonitor: func(int) (monitor.Monitor, error) {
				return monitor.NewCAWOT(scs.TableI(), scs.Params{})
			},
			Telemetry:     &TelemetryConfig{FromMonitor: true},
			Sinks:         []Sink{sink},
			ShardedSinks:  true,
			ProgressEvery: 7,
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if int(res.Completed) != len(cfg.Patients)*len(cfg.Scenarios) {
			t.Fatalf("completed %d sessions", res.Completed)
		}
		return buf.Bytes()
	}

	golden := run(1)
	for _, p := range []int{runtime.NumCPU(), 5} {
		if got := run(p); !bytes.Equal(got, golden) {
			t.Fatalf("Parallel=%d sharded sink stream differs from Parallel=1", p)
		}
	}

	// The canonical stream is session-major with re-stamped completion
	// counts: dones appear in session order carrying completed=1..N,
	// and every progress mark trails a multiple-of-7 done.
	sc := bufio.NewScanner(bytes.NewReader(golden))
	var dones, progress int64
	prevSession := -1
	for sc.Scan() {
		var rec struct {
			Kind      string `json:"kind"`
			Session   int    `json:"session"`
			Completed int64  `json:"completed"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Kind {
		case "done":
			dones++
			if rec.Completed != dones {
				t.Fatalf("done #%d carries completed=%d — not re-stamped in merge order", dones, rec.Completed)
			}
			if rec.Session < prevSession {
				t.Fatalf("done for session %d after session %d — not canonical order", rec.Session, prevSession)
			}
			prevSession = rec.Session
		case "progress":
			progress++
			if rec.Completed%7 != 0 {
				t.Fatalf("progress at completed=%d, want multiples of 7", rec.Completed)
			}
		}
	}
	if dones == 0 || progress != dones/7 {
		t.Fatalf("%d dones, %d progress marks, want %d", dones, progress, dones/7)
	}
}

// TestShardedSinkMatchesCollectorContent: sharded delivery must carry
// exactly the same event multiset as the collector goroutine — only the
// order (and the scheduling-dependent completion payloads) differ.
func TestShardedSinkMatchesCollectorContent(t *testing.T) {
	run := func(sharded bool) map[string]int {
		var buf bytes.Buffer
		sink := NewLogSink(&buf)
		cfg := sinkFleetConfig()
		cfg.Sinks = []Sink{sink}
		cfg.ShardedSinks = sharded
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatal(err)
			}
			// The completion counter is scheduling-dependent in collector
			// mode and re-stamped in sharded mode; compare everything else.
			delete(rec, "completed")
			key, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			counts[string(key)]++
		}
		return counts
	}
	collector := run(false)
	sharded := run(true)
	if len(collector) == 0 {
		t.Fatal("no events collected")
	}
	if len(sharded) != len(collector) {
		t.Fatalf("distinct events differ: sharded %d vs collector %d", len(sharded), len(collector))
	}
	for k, n := range collector {
		if sharded[k] != n {
			t.Fatalf("event %s: sharded %d vs collector %d", k, sharded[k], n)
		}
	}
}

// TestShardedSinkErrorDetaches: a failing sink under sharded delivery
// detaches at its first error, healthy sinks receive the full stream,
// and the error surfaces from Run without aborting the fleet.
func TestShardedSinkErrorDetaches(t *testing.T) {
	bad := &failingSink{n: 10}
	good, err := NewRingSink(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sinkFleetConfig()
	cfg.Sinks = []Sink{bad, good}
	cfg.ShardedSinks = true
	res, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("sink error did not surface from Run")
	}
	if res.Completed != int64(len(cfg.Patients)*len(thinScenarios(60))) {
		t.Fatalf("run did not complete: %d sessions", res.Completed)
	}
	if bad.after != 0 {
		t.Fatalf("failing sink received %d events after its error", bad.after)
	}
	if good.Total() <= int64(bad.seen) {
		t.Fatalf("healthy sink stalled at %d events", good.Total())
	}
}

// TestLogSinkAgeSurvivesReopen: an age-only policy must age a resumed
// file from its last write (ModTime), not from the reopen, so periodic
// restarts cannot postpone rotation forever.
func TestLogSinkAgeSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	first, err := NewRotatingLogSink(path, RotationPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Emit(Event{Kind: EventSessionStart}); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// Backdate the file two hours, then reopen: the resumed sink must
	// treat it as already past MaxAge and rotate before the next record.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	second, err := NewRotatingLogSink(path, RotationPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Emit(Event{Kind: EventSessionDone, Step: 1}); err != nil {
		t.Fatal(err)
	}
	if second.Rotations() != 1 {
		t.Fatalf("resumed sink rotated %d times, want 1 (aged from ModTime)", second.Rotations())
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogSinkEmitAfterCloseErrors: emitting into a closed sink must
// fail loudly instead of silently buffering records no flush will
// persist; Close is idempotent.
func TestLogSinkEmitAfterCloseErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewRotatingLogSink(path, RotationPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(Event{Kind: EventSessionStart}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(Event{Kind: EventSessionDone}); err == nil {
		t.Fatal("emit after Close succeeded silently")
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := countLines(t, path); got != 1 {
		t.Fatalf("%d records persisted, want 1", got)
	}
}

// TestHistSinkAlertFloor pins margin-floor alerting: only robustness
// margins strictly below the floor alert, the callback runs without the
// sink lock held (re-entrant reads must not deadlock), the alert log is
// bounded at maxAlerts while AlertCount keeps the lifetime total, and
// non-robustness events never alert regardless of their margin.
func TestHistSinkAlertFloor(t *testing.T) {
	sink, err := NewHistSink(-5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	var fired []Alert
	sink.SetAlertFloor(-1, func(al Alert) {
		// Re-entrant read: deadlocks if Emit fires the callback under lock.
		_ = sink.AlertCount()
		fired = append(fired, al)
	})

	emit := func(kind EventKind, margin float64) {
		if err := sink.Emit(Event{Kind: kind, Session: 7, PatientIdx: 2, Replica: 3,
			Group: "acme", Step: 11, Margin: margin, MarginRule: 4}); err != nil {
			t.Fatal(err)
		}
	}
	emit(EventRobustness, 0.5)        // healthy margin
	emit(EventRobustness, -0.5)       // negative but above the floor
	emit(EventRobustness, -1)         // exactly at the floor: not a breach
	emit(EventAlarm, -4)              // wrong kind: histograms and alerts ignore it
	emit(EventRobustness, math.NaN()) // dropped before alerting
	emit(EventRobustness, -2.5)       // breach
	if n := sink.AlertCount(); n != 1 {
		t.Fatalf("AlertCount = %d after one breach, want 1", n)
	}
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(fired))
	}
	want := Alert{Session: 7, PatientIdx: 2, Replica: 3, Group: "acme", Step: 11, Margin: -2.5, Rule: 4}
	if fired[0] != want {
		t.Errorf("callback alert = %+v, want %+v", fired[0], want)
	}
	if got := sink.Alerts(); len(got) != 1 || got[0] != want {
		t.Errorf("Alerts() = %+v, want [%+v]", got, want)
	}

	// Roll the bounded log over: the lifetime count keeps growing while
	// the retained window holds only the most recent maxAlerts breaches.
	for i := 0; i < maxAlerts+10; i++ {
		emit(EventRobustness, -3)
	}
	if n := sink.AlertCount(); n != int64(1+maxAlerts+10) {
		t.Fatalf("lifetime AlertCount = %d, want %d", n, 1+maxAlerts+10)
	}
	if got := sink.Alerts(); len(got) != maxAlerts {
		t.Fatalf("retained alert log holds %d, want bounded at %d", len(got), maxAlerts)
	}
	if len(fired) != 1+maxAlerts+10 {
		t.Fatalf("callback fired %d times, want %d", len(fired), 1+maxAlerts+10)
	}
}
