package fleet

import (
	"fmt"

	"repro/internal/trace"
)

// EventKind enumerates the fleet's lifecycle events. Every switch over
// it must cover every kind — fleetvet's exhaustive pass is the static
// twin of the TestKindRankExhaustive runtime guard.
//
//fleetvet:exhaustive
type EventKind int

const (
	// EventSessionStart marks a session (or continuous-mode replica)
	// beginning its first cycle.
	EventSessionStart EventKind = iota
	// EventAlarm streams a session's first monitor alarm, live.
	EventAlarm
	// EventHazard marks a completed session whose trace was labeled
	// hazardous (ground truth is only known after labeling).
	EventHazard
	// EventSessionDone marks a session running to completion.
	EventSessionDone
	// EventProgress is emitted every Config.ProgressEvery completions.
	EventProgress
	// EventRobustness streams a session's per-cycle STL robustness
	// margin — the minimum quantitative margin across the telemetry rule
	// set, evaluated by the incremental streaming engine (Config.Telemetry).
	EventRobustness
	// EventSessionEvict marks a session removed from a running fleet by
	// an admission-gate eviction (Config.Admissions); Step is the cycle
	// it had reached. Evicted sessions emit no EventSessionDone and are
	// not counted completed.
	EventSessionEvict

	// eventKindCount sentinels the enum. A new kind goes above this line
	// and must be given a String name and an explicit kindRank merge
	// position — fleetvet's exhaustive pass and TestKindRankExhaustive
	// fail otherwise, so a future event kind cannot silently get a
	// nondeterministic merge position.
	//fleetvet:sentinel
	eventKindCount
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSessionStart:
		return "start"
	case EventAlarm:
		return "alarm"
	case EventHazard:
		return "hazard"
	case EventSessionDone:
		return "done"
	case EventProgress:
		return "progress"
	case EventRobustness:
		return "robustness"
	case EventSessionEvict:
		return "evict"
	default:
		return "unknown"
	}
}

// Event is one entry of the fleet's progress/hazard stream. Events from
// different shards interleave nondeterministically; the deterministic
// artifact of a run is its traces, not its event order.
type Event struct {
	Kind       EventKind
	Session    int // session slot index
	PatientIdx int
	Replica    int
	// Group tags every event of an admitted session with its AdmitSpec
	// group (the control plane's tenant ID). Empty for static slots.
	Group string
	// Step is the cycle of the event: first alarm step for EventAlarm,
	// first hazard step for EventHazard, trace length for
	// EventSessionDone.
	Step   int
	Hazard trace.HazardType
	// Completed carries the global completion count on EventSessionDone
	// and EventProgress.
	Completed int64
	// Robustness carries the minimum STL robustness across the telemetry
	// rule bodies on EventRobustness; Rule is the ID of the rule
	// attaining it. Margin is the signed rule margin of the same
	// evaluation — positive: distance to the nearest unsafe-control-
	// action boundary; negative: depth of the worst violated rule, whose
	// ID is MarginRule and whose predicted hazard class is Hazard.
	Robustness float64
	Rule       int
	Margin     float64
	MarginRule int
}

// String renders a compact human-readable line for log streaming.
func (e Event) String() string {
	switch e.Kind {
	case EventProgress:
		return fmt.Sprintf("progress: %d sessions completed", e.Completed)
	case EventAlarm, EventHazard:
		return fmt.Sprintf("%s: session %d (patient %d) %s at step %d",
			e.Kind, e.Session, e.PatientIdx, e.Hazard, e.Step)
	case EventRobustness:
		return fmt.Sprintf("robustness: session %d (patient %d) margin %.3f (rule %d, min STL %.3f) at step %d",
			e.Session, e.PatientIdx, e.Margin, e.MarginRule, e.Robustness, e.Step)
	case EventSessionStart, EventSessionDone, EventSessionEvict:
		return fmt.Sprintf("%s: session %d (patient %d, replica %d)",
			e.Kind, e.Session, e.PatientIdx, e.Replica)
	default:
		return fmt.Sprintf("%s: session %d (patient %d, replica %d)",
			e.Kind, e.Session, e.PatientIdx, e.Replica)
	}
}
