package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Sink consumes the fleet's event stream so hazard telemetry survives
// the run. Sinks replace ad-hoc draining of the bare Config.Events
// channel: the engine funnels every event through one collector
// goroutine that calls Emit on each registered sink in order, so Emit
// implementations never race with themselves (reading a sink's
// accumulated state concurrently with a running fleet is the caller's
// own synchronization problem; the shipped sinks lock internally).
//
// Backpressure and cancellation: the collector applies the same
// semantics as the Events channel — a slow sink eventually blocks
// simulation workers rather than dropping events while the run is
// live, and once the context is cancelled (the normal shutdown of a
// continuous fleet) in-flight events are abandoned, so a durable sink
// may miss the final instants before shutdown, exactly as a channel
// consumer would. Sharded delivery (Config.ShardedSinks) keeps the
// same contract: a cancelled run's open — un-barriered — sink epoch is
// skipped, so only epochs closed before shutdown are persisted (see
// fleet/doc.go). A sink whose Emit returns an error is detached
// for the rest of the run and the first error per sink is reported by
// Run after the simulation completes; telemetry failure does not abort
// a serving fleet. Flush is called once for every sink (even detached
// ones) when the run ends.
type Sink interface {
	Emit(Event) error
	Flush() error
}

// jsonEvent is the JSONL wire form of an Event: the kind as its string
// name, zero-valued optional fields elided.
type jsonEvent struct {
	Kind       string  `json:"kind"`
	Session    int     `json:"session"`
	PatientIdx int     `json:"patient"`
	Group      string  `json:"group,omitempty"`
	Replica    int     `json:"replica,omitempty"`
	Step       int     `json:"step,omitempty"`
	Hazard     string  `json:"hazard,omitempty"`
	Completed  int64   `json:"completed,omitempty"`
	Robustness float64 `json:"robustness,omitempty"`
	Margin     float64 `json:"margin,omitempty"`
	Rule       int     `json:"rule,omitempty"`
	MarginRule int     `json:"margin_rule,omitempty"`
}

func toJSONEvent(ev Event) jsonEvent {
	je := jsonEvent{
		Kind:       ev.Kind.String(),
		Session:    ev.Session,
		PatientIdx: ev.PatientIdx,
		Group:      ev.Group,
		Replica:    ev.Replica,
		Step:       ev.Step,
		Completed:  ev.Completed,
	}
	if ev.Hazard != trace.HazardNone {
		je.Hazard = ev.Hazard.String()
	}
	if ev.Kind == EventRobustness {
		je.Robustness = ev.Robustness
		je.Margin = ev.Margin
		je.Rule = ev.Rule
		je.MarginRule = ev.MarginRule
	}
	return je
}

// EncodeJSON renders one event as its JSONL wire line — the exact bytes
// a LogSink would write, trailing newline included — so stream fan-outs
// (fleetd's per-tenant telemetry) stay byte-identical to a log file of
// the same events.
func EncodeJSON(ev Event) ([]byte, error) {
	b, err := json.Marshal(toJSONEvent(ev))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RotationPolicy bounds a file-backed log sink so continuous serving
// never grows one JSONL file forever. Rotation renames the active file
// to <path>.<N> (N strictly increasing across the sink's lifetime,
// resuming past the highest existing suffix on reopen) and starts a
// fresh file at <path>; records are never split across a rotation and
// none are dropped — every emitted event lands in exactly one of the
// retained files until retention deletes that whole file.
type RotationPolicy struct {
	// MaxBytes rotates once the active file reaches this size
	// (checked before each write, so files may exceed it by at most one
	// record). Zero disables the size trigger.
	MaxBytes int64
	// MaxAge rotates once the active file has been open this long.
	// Zero disables the age trigger.
	MaxAge time.Duration
	// Keep is the retention bound: after each rotation only the Keep
	// newest rotated files survive, older ones are deleted. Keep <= 0
	// retains every rotated file.
	Keep int
}

// enabled reports whether any rotation trigger is configured.
func (p RotationPolicy) enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// LogSink appends every event as one JSON line to a writer — the
// durable, replayable form of the telemetry stream (dashboards and
// alerting tail it). Writes are buffered; Flush drains the buffer.
// File-backed sinks (NewRotatingLogSink) additionally rotate and retire
// files per their RotationPolicy.
type LogSink struct {
	mu      sync.Mutex
	w       *bufio.Writer
	enc     *json.Encoder
	written int64

	closed bool

	// File-backed rotation state; zero-valued for plain writer sinks.
	path     string
	pol      RotationPolicy
	f        *os.File
	size     int64
	openedAt time.Time
	nextIdx  int
	rotated  int64
	now      func() time.Time // injectable clock for the age trigger
}

// NewLogSink wraps a writer (a file, a pipe, a network conn) in a
// JSONL sink. The caller owns closing the underlying writer after Run
// returns.
func NewLogSink(w io.Writer) *LogSink {
	s := &LogSink{w: bufio.NewWriter(w)}
	s.enc = json.NewEncoder(&countingWriter{w: s.w, n: &s.size})
	return s
}

// NewRotatingLogSink opens (or resumes appending to) a JSONL file that
// the sink owns, rotating it per the policy. Rotated files continue the
// numbering of any <path>.<N> files already on disk, so restarts of a
// continuous fleet never overwrite earlier history. Close the sink
// after Run returns.
func NewRotatingLogSink(path string, pol RotationPolicy) (*LogSink, error) {
	if pol.MaxBytes < 0 || pol.MaxAge < 0 {
		return nil, fmt.Errorf("fleet: negative rotation bounds %+v", pol)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: log sink: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: log sink: %w", err)
	}
	s := &LogSink{
		w:    bufio.NewWriter(f),
		path: path, pol: pol, f: f,
		//fleetvet:nondeterministic rotation clock only paces file rollover, never record content; tests inject a fake
		size: st.Size(), now: time.Now,
	}
	s.openedAt = s.now()
	if st.Size() > 0 {
		// Resuming a non-empty file: age it from its last write, not from
		// this open, so an age-only policy still fires across periodic
		// restarts instead of resetting its clock every reopen.
		s.openedAt = st.ModTime()
	}
	if idxs := rotatedIndices(path); len(idxs) > 0 {
		s.nextIdx = idxs[len(idxs)-1] + 1
	} else {
		s.nextIdx = 1
	}
	s.enc = json.NewEncoder(&countingWriter{w: s.w, n: &s.size})
	return s, nil
}

// countingWriter tracks the logical size of the active file, including
// bytes still sitting in the bufio layer.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// rotationDue reports whether the active file must rotate before the
// next record.
func (s *LogSink) rotationDue() bool {
	if !s.pol.enabled() || s.size == 0 {
		return false // never rotate an empty file
	}
	if s.pol.MaxBytes > 0 && s.size >= s.pol.MaxBytes {
		return true
	}
	return s.pol.MaxAge > 0 && s.now().Sub(s.openedAt) >= s.pol.MaxAge
}

// rotate retires the active file to <path>.<nextIdx>, prunes per the
// retention bound, and starts a fresh file. Caller holds the lock.
func (s *LogSink) rotate() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.nextIdx)); err != nil {
		return err
	}
	s.nextIdx++
	s.rotated++
	if s.pol.Keep > 0 {
		idxs := rotatedIndices(s.path)
		for len(idxs) > s.pol.Keep {
			// A file already gone (an external shipper consumed it) is the
			// desired end state, not a reason to detach the sink.
			if err := os.Remove(fmt.Sprintf("%s.%d", s.path, idxs[0])); err != nil && !os.IsNotExist(err) {
				return err
			}
			idxs = idxs[1:]
		}
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.size = 0
	s.openedAt = s.now()
	s.w.Reset(f)
	return nil
}

// rotatedIndices returns the numeric suffixes of existing <path>.<N>
// files, ascending (oldest first). The directory is listed and suffixes
// matched literally — not globbed — so paths containing glob
// metacharacters cannot break suffix resumption or retention.
func rotatedIndices(path string) []int {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var idxs []int
	for _, e := range entries {
		suffix, ok := strings.CutPrefix(e.Name(), base+".")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(suffix); err == nil && n > 0 {
			idxs = append(idxs, n)
		}
	}
	sort.Ints(idxs)
	return idxs
}

// RotatedFiles returns the retained rotated files, oldest first. It is
// empty for writer-backed sinks.
func (s *LogSink) RotatedFiles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return nil
	}
	idxs := rotatedIndices(s.path)
	out := make([]string, len(idxs))
	for i, n := range idxs {
		out[i] = fmt.Sprintf("%s.%d", s.path, n)
	}
	return out
}

// Rotations returns how many times the sink has rotated its file.
func (s *LogSink) Rotations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotated
}

// Emit implements Sink.
func (s *LogSink) Emit(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Buffering into a closed sink would silently lose the record.
		return fmt.Errorf("fleet: log sink: emit after Close")
	}
	if s.f != nil && s.rotationDue() {
		if err := s.rotate(); err != nil {
			return fmt.Errorf("fleet: log sink rotate: %w", err)
		}
	}
	if err := s.enc.Encode(toJSONEvent(ev)); err != nil {
		return fmt.Errorf("fleet: log sink: %w", err)
	}
	s.written++
	return nil
}

// Flush implements Sink.
func (s *LogSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("fleet: log sink flush: %w", err)
	}
	return nil
}

// Close flushes the buffer and, for file-backed sinks, closes the owned
// file. Writer-backed sinks leave closing the writer to its owner.
// Emitting after Close returns an error rather than silently buffering
// records no flush will ever persist.
func (s *LogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("fleet: log sink flush: %w", err)
	}
	s.closed = true
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("fleet: log sink close: %w", err)
		}
		s.f = nil
	}
	return nil
}

// Written returns how many events have been encoded.
func (s *LogSink) Written() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// RingSink retains the newest N events in a fixed-size ring — the
// snapshot endpoint shape: bounded memory no matter how long a
// continuous fleet serves, always holding the freshest telemetry.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRingSink creates a ring retaining the last n events.
func NewRingSink(n int) (*RingSink, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: ring sink needs positive capacity, got %d", n)
	}
	return &RingSink{buf: make([]Event, 0, n)}, nil
}

// Emit implements Sink.
func (s *RingSink) Emit(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next] = ev
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.total++
	return nil
}

// Flush implements Sink (a ring has nothing to persist).
func (s *RingSink) Flush() error { return nil }

// Total returns how many events have passed through the ring.
func (s *RingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Snapshot returns the retained events, oldest first.
func (s *RingSink) Snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	if len(s.buf) < cap(s.buf) {
		return append(out, s.buf...)
	}
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// HistSink aggregates EventRobustness margins into per-patient
// histograms — the alerting-dashboard shape: a bounded summary of how
// close each patient's sessions run to their unsafe-control-action
// boundaries. Margins below the range clamp into the first bin, above
// it into the last, so violations are never dropped; non-finite margins
// (NaN, ±Inf) have no bin or meaningful mean and are dropped and
// counted instead (Dropped), never aggregated.
type HistSink struct {
	mu   sync.Mutex
	lo   float64
	hi   float64
	bins int

	counts  map[int][]int64 // patientIdx -> bin counts
	sum     map[int]float64 // patientIdx -> margin sum (for means)
	n       map[int]int64
	dropped int64 // non-finite margins rejected

	alertOn    bool
	alertFloor float64
	alertFn    func(Alert)
	alerts     []Alert
	alertN     int64

	// Adaptive percentile-floor alerting (SetAlertPercentile): the
	// global margin distribution across every patient, in the same bin
	// grid as the per-patient histograms.
	pctOn   bool
	pct     float64
	pctMin  int64
	pctFn   func(Alert)
	gCounts []int64
	gN      int64
}

// Alert records one margin sample that fell below the sink's configured
// alert floor — the push half of the alerting dashboard: dashboards get
// told when a session runs too close to an unsafe-control-action
// boundary instead of polling histograms.
type Alert struct {
	Session    int
	PatientIdx int
	Replica    int
	// Group is the session's tenant tag (empty for static slots).
	Group string
	// Step is the control cycle of the breaching sample.
	Step int
	// Margin is the breaching signed rule margin; Rule attributes it.
	Margin float64
	Rule   int
}

// maxAlerts bounds the retained alert log; older alerts roll off while
// AlertCount keeps the lifetime total.
const maxAlerts = 64

// NewHistSink creates a histogram sink with the given margin range and
// bin count. The margin here is the signed rule margin of the telemetry
// verdict (negative = inside the unsafe context).
func NewHistSink(lo, hi float64, bins int) (*HistSink, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("fleet: histogram sink needs positive bins, got %d", bins)
	}
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("fleet: histogram sink needs lo < hi, got [%v, %v]", lo, hi)
	}
	return &HistSink{
		lo: lo, hi: hi, bins: bins,
		counts: make(map[int][]int64),
		sum:    make(map[int]float64),
		n:      make(map[int]int64),
	}, nil
}

// SetAlertFloor arms margin-floor alerting: every robustness margin
// strictly below floor records an Alert (bounded log + lifetime count)
// and invokes fn, if non-nil, synchronously from Emit with no sink lock
// held. Configure before the run starts; the callback must not block
// (it runs on the sink delivery path).
func (s *HistSink) SetAlertFloor(floor float64, fn func(Alert)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alertOn = true
	s.alertFloor = floor
	s.alertFn = fn
}

// SetAlertPercentile arms adaptive percentile-floor alerting: the sink
// tracks the global margin distribution (all patients, one grid) and,
// once at least minSamples margins have arrived, records an Alert for
// every margin strictly below the pct-quantile of that distribution —
// e.g. 0.05 arms a p05 floor that tightens or relaxes as the serving
// distribution shifts, where a fixed floor would need retuning. The
// quantile resolves to the lower edge of the first bin whose cumulative
// count reaches pct of the samples, so the floor moves in bin-width
// steps and is deterministic for a deterministic event stream.
// minSamples <= 0 defaults to 100. A margin breaching both an armed
// fixed floor and the percentile floor records one Alert (the fixed
// floor wins the callback). Configure before the run starts; fn follows
// the SetAlertFloor contract.
func (s *HistSink) SetAlertPercentile(pct float64, minSamples int64, fn func(Alert)) error {
	if math.IsNaN(pct) || !(pct > 0 && pct < 1) {
		return fmt.Errorf("fleet: alert percentile must be in (0, 1), got %v", pct)
	}
	if minSamples <= 0 {
		minSamples = 100
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pctOn = true
	s.pct = pct
	s.pctMin = minSamples
	s.pctFn = fn
	if s.gCounts == nil {
		s.gCounts = make([]int64, s.bins)
	}
	return nil
}

// AlertPercentileFloor returns the effective adaptive floor (the armed
// percentile resolved against the margins observed so far) and whether
// it is live yet (false until minSamples margins have arrived).
func (s *HistSink) AlertPercentileFloor() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pctFloorLocked()
}

// pctFloorLocked resolves the percentile floor; caller holds the lock.
func (s *HistSink) pctFloorLocked() (float64, bool) {
	if !s.pctOn || s.gN < s.pctMin {
		return 0, false
	}
	target := s.pct * float64(s.gN)
	var cum int64
	for i, c := range s.gCounts {
		cum += c
		if float64(cum) >= target {
			return s.lo + float64(i)*(s.hi-s.lo)/float64(s.bins), true
		}
	}
	return s.hi, true
}

// AlertCount returns how many margins have breached the alert floor.
func (s *HistSink) AlertCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alertN
}

// Alerts returns the most recent floor breaches, oldest first (bounded
// to the last maxAlerts).
func (s *HistSink) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, len(s.alerts))
	copy(out, s.alerts)
	return out
}

// Emit implements Sink: only robustness events aggregate, everything
// else passes through untouched.
func (s *HistSink) Emit(ev Event) error {
	if ev.Kind != EventRobustness {
		return nil
	}
	s.mu.Lock()
	if math.IsNaN(ev.Margin) || math.IsInf(ev.Margin, 0) {
		// A NaN margin would make both clamp comparisons below false and
		// feed an implementation-defined float->int conversion, corrupting
		// counts and sums; ±Inf would poison the running mean. Count the
		// drop so the gap is observable instead of silent.
		s.dropped++
		s.mu.Unlock()
		return nil
	}
	c, ok := s.counts[ev.PatientIdx]
	if !ok {
		c = make([]int64, s.bins)
		s.counts[ev.PatientIdx] = c
	}
	b := int(float64(s.bins) * (ev.Margin - s.lo) / (s.hi - s.lo))
	if b < 0 {
		b = 0
	}
	if b >= s.bins {
		b = s.bins - 1
	}
	c[b]++
	s.sum[ev.PatientIdx] += ev.Margin
	s.n[ev.PatientIdx]++
	if s.pctOn {
		// The sample joins the distribution before the quantile check, so
		// the floor at any point is a pure function of the stream so far.
		s.gCounts[b]++
		s.gN++
	}
	breach := s.alertOn && ev.Margin < s.alertFloor
	fireFn := s.alertFn
	if !breach && s.pctOn {
		if floor, live := s.pctFloorLocked(); live && ev.Margin < floor {
			breach = true
			fireFn = s.pctFn
		}
	}
	var fire func(Alert)
	var al Alert
	if breach {
		al = Alert{
			Session: ev.Session, PatientIdx: ev.PatientIdx, Replica: ev.Replica,
			Group: ev.Group, Step: ev.Step, Margin: ev.Margin, Rule: ev.MarginRule,
		}
		s.alertN++
		s.alerts = append(s.alerts, al)
		if len(s.alerts) > maxAlerts {
			s.alerts = s.alerts[len(s.alerts)-maxAlerts:]
		}
		fire = fireFn
	}
	s.mu.Unlock()
	if fire != nil {
		fire(al)
	}
	return nil
}

// Flush implements Sink (aggregation lives in memory).
func (s *HistSink) Flush() error { return nil }

// Dropped returns how many non-finite margins were rejected instead of
// aggregated.
func (s *HistSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Patients returns the patient indices seen, ascending.
func (s *HistSink) Patients() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.counts))
	for p := range s.counts { //fleetvet:nondeterministic order-independent: keys are sorted before return
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Histogram returns a copy of one patient's bin counts.
func (s *HistSink) Histogram(patientIdx int) ([]int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counts[patientIdx]
	if !ok {
		return nil, false
	}
	out := make([]int64, len(c))
	copy(out, c)
	return out, true
}

// Mean returns one patient's mean margin and sample count.
func (s *HistSink) Mean(patientIdx int) (float64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n[patientIdx]
	if n == 0 {
		return 0, 0
	}
	return s.sum[patientIdx] / float64(n), n
}

// Render prints the per-patient histograms as text bars.
func (s *HistSink) Render() string {
	var b strings.Builder
	width := (s.hi - s.lo) / float64(s.bins)
	for _, p := range s.Patients() {
		mean, n := s.Mean(p)
		fmt.Fprintf(&b, "patient %d — %d margins, mean %.3f\n", p, n, mean)
		hist, _ := s.Histogram(p)
		var maxC int64
		for _, c := range hist {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range hist {
			if c == 0 {
				continue
			}
			bar := int(40 * float64(c) / float64(maxC))
			fmt.Fprintf(&b, "  [%7.2f,%7.2f) %8d %s\n",
				s.lo+float64(i)*width, s.lo+float64(i+1)*width, c, strings.Repeat("#", bar))
		}
	}
	return b.String()
}
