// Session and fleet checkpointing. A live session serializes to
// versioned bytes at a cycle boundary — loop cursor, trace, controller,
// patient lane, sensor lane, monitor lane, telemetry lane, and the
// exact position of its RNG stream — and restores bit-exactly into a
// fresh fleet (Config.Restore, slot-preserving) or into a running one
// (AdmitSpec.Restore, migration onto a new slot). Whole-fleet snapshots
// are taken through the admission gate: Admissions.DrainAt stops the
// fleet at an epoch-aligned gate and serializes every live session;
// Admissions.SnapshotGroup serializes one tenant's sessions at a gate
// without stopping anything.
//
// # Alignment invariant
//
// A terminal drain must land on a gate round that is a multiple of
// SinkEpoch: at such a round the per-shard sink buffers are empty (the
// epoch barrier at the end of the previous round drained everything in
// continuous mode) and the sharded-delivery completion cursor equals
// the engine's completion count. Restoring the snapshot then continues
// the sink stream exactly where the drained run cut it: the
// concatenation of the two runs' epoch-merged sink bytes is identical
// to the uninterrupted run's (the golden differential tests pin this).
// The restored fleet must run the same master Seed so continuous-mode
// replica refills continue the original derived streams.

package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/snapshot"
)

// ErrDrainMisaligned reports a terminal drain that reached a gate round
// not aligned to SinkEpoch (see the alignment invariant above). The
// fleet keeps running; the caller may retry, and a later gate — at most
// lcm(AdmitEvery, SinkEpoch) rounds on — is always aligned.
var ErrDrainMisaligned = errors.New("fleet: drain gate not aligned to SinkEpoch")

// countingSource wraps a rand.Source and counts Int63 draws so a
// session's RNG stream position can be checkpointed. It deliberately
// does NOT implement rand.Source64: every math/rand method the fleet
// consumes (Float64, NormFloat64, Uint32, ...) funnels through Int63 on
// a plain Source, so wrapping leaves existing noise streams
// bit-identical to the unwrapped rand.NewSource the fleet used before.
type countingSource struct {
	src rand64Source
	n   uint64
}

// rand64Source is the subset of rand.Source the counter delegates to.
type rand64Source interface {
	Int63() int64
	Seed(seed int64)
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Seed implements rand.Source, rewinding the draw count with the
// stream.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// SessionSnapshot is one live session's checkpoint: the coordinate
// header a control plane routes on, the derived RNG stream position,
// and the opaque component state payload.
type SessionSnapshot struct {
	// Slot is the session's slot index at snapshot time. Config.Restore
	// preserves it; AdmitSpec.Restore assigns a fresh one.
	Slot int
	// PatientIdx and ScenIdx are the session's coordinates in the
	// restoring fleet's cohort and declared scenario table. ScenIdx is
	// -1 for a session running an inline program (Program below).
	PatientIdx int
	ScenIdx    int
	// Program is the canonical text of an inline-admitted scenario
	// program ("" for table-indexed sessions); a restoring fleet parses
	// and recompiles it instead of consulting its scenario table.
	Program string
	// Replica numbers the slot's continuous-mode restarts.
	Replica int
	// Group is the tenant tag the session's events carry.
	Group string
	// Mitigate records a per-session mitigation override
	// (AdmitSpec.Mitigate).
	Mitigate bool
	// Alarmed records whether the session's first-alarm event has
	// already been emitted, so a restored session never re-emits it.
	Alarmed bool
	// Seed is the derived per-session seed the RNG stream was built
	// from, and Draws how many Int63 values the session has consumed —
	// together the exact stream position, independent of the slot the
	// session restores onto.
	Seed  int64
	Draws uint64
	// State is the component payload: stepper (loop cursor, trace,
	// controller, patient), sensor, monitor, and telemetry sections, in
	// that order.
	State []byte
}

// Encode seals the session snapshot into a standalone versioned
// envelope for AdmitSpec.Restore.
func (ss *SessionSnapshot) Encode() []byte {
	enc := snapshot.NewEncoder()
	encodeSessionSnapshot(enc, ss)
	return snapshot.Seal(enc.Payload())
}

// DecodeSessionSnapshot opens and parses a sealed session snapshot.
func DecodeSessionSnapshot(data []byte) (*SessionSnapshot, error) {
	payload, err := snapshot.Open(data)
	if err != nil {
		return nil, fmt.Errorf("fleet: session snapshot: %w", err)
	}
	dec := snapshot.NewDecoder(payload)
	ss := decodeSessionSnapshot(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("fleet: session snapshot: %w", err)
	}
	return ss, nil
}

func encodeSessionSnapshot(enc *snapshot.Encoder, ss *SessionSnapshot) {
	enc.Int(ss.Slot)
	enc.Int(ss.PatientIdx)
	enc.Int(ss.ScenIdx)
	enc.String(ss.Program)
	enc.Int(ss.Replica)
	enc.String(ss.Group)
	enc.Bool(ss.Mitigate)
	enc.Bool(ss.Alarmed)
	enc.Varint(ss.Seed)
	enc.Uvarint(ss.Draws)
	enc.Bytes(ss.State)
}

func decodeSessionSnapshot(dec *snapshot.Decoder) *SessionSnapshot {
	return &SessionSnapshot{
		Slot:       dec.Int(),
		PatientIdx: dec.Int(),
		ScenIdx:    dec.Int(),
		Program:    dec.String(),
		Replica:    dec.Int(),
		Group:      dec.String(),
		Mitigate:   dec.Bool(),
		Alarmed:    dec.Bool(),
		Seed:       dec.Varint(),
		Draws:      dec.Uvarint(),
		State:      dec.Bytes(),
	}
}

// FleetSnapshot is a whole-fleet (or whole-tenant) checkpoint: the
// completion cursor the sink stream resumes from, the next slot number,
// and every captured session sorted by slot.
type FleetSnapshot struct {
	// Completed is the fleet's completion count at the drain gate; a
	// restoring fleet seeds both its completion counter and the sharded
	// sinks' re-stamp cursor from it.
	Completed int64
	// NextSlot is where the restoring fleet's slot numbering continues.
	NextSlot int
	// Sessions holds the captured sessions, sorted by Slot.
	Sessions []SessionSnapshot
}

// Encode seals the fleet snapshot into a versioned envelope.
func (fs *FleetSnapshot) Encode() []byte {
	enc := snapshot.NewEncoder()
	enc.Varint(fs.Completed)
	enc.Int(fs.NextSlot)
	enc.Int(len(fs.Sessions))
	for i := range fs.Sessions {
		encodeSessionSnapshot(enc, &fs.Sessions[i])
	}
	return snapshot.Seal(enc.Payload())
}

// DecodeFleetSnapshot opens and parses a sealed fleet snapshot,
// failing loudly on corruption or a format-version mismatch.
func DecodeFleetSnapshot(data []byte) (*FleetSnapshot, error) {
	payload, err := snapshot.Open(data)
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot: %w", err)
	}
	dec := snapshot.NewDecoder(payload)
	fs := &FleetSnapshot{
		Completed: dec.Varint(),
		NextSlot:  dec.Int(),
	}
	n := dec.Count(1)
	for i := 0; i < n; i++ {
		ss := decodeSessionSnapshot(dec)
		if dec.Err() != nil {
			break
		}
		fs.Sessions = append(fs.Sessions, *ss)
	}
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("fleet: snapshot: %w", err)
	}
	return fs, nil
}

// DrainResult is the outcome of a DrainAt or SnapshotGroup request.
type DrainResult struct {
	Snapshot *FleetSnapshot
	Err      error
}

// snapshotCollector gathers per-shard session serializations for one
// drain or group-snapshot request and resolves the requester's channel
// when the last shard contributes.
type snapshotCollector struct {
	group    string // "" captures every live session
	terminal bool   // drain: shards exit after contributing

	mu        sync.Mutex
	remaining int
	sessions  []SessionSnapshot
	err       error
	nextSlot  int
	ch        chan DrainResult
}

// resolveErr completes the request with an error (misaligned round,
// serialization failure).
func (c *snapshotCollector) resolveErr(err error) {
	c.ch <- DrainResult{Err: err}
}

// contribute folds one shard's serializations (or its failure) into the
// collector; the last contributor assembles and resolves the snapshot.
func (e *engine) contribute(c *snapshotCollector, snaps []SessionSnapshot, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && c.err == nil {
		c.err = err
	}
	c.sessions = append(c.sessions, snaps...)
	c.remaining--
	if c.remaining > 0 {
		return
	}
	if c.err != nil {
		c.resolveErr(c.err)
		return
	}
	sort.Slice(c.sessions, func(i, j int) bool { return c.sessions[i].Slot < c.sessions[j].Slot })
	c.ch <- DrainResult{Snapshot: &FleetSnapshot{
		Completed: e.completed.Load(),
		NextSlot:  c.nextSlot,
		Sessions:  c.sessions,
	}}
}

// Drain requests a terminal fleet drain at the next admission gate: see
// DrainAt.
func (a *Admissions) Drain() <-chan DrainResult { return a.DrainAt(0) }

// DrainAt requests a terminal fleet drain at the first admission gate
// whose global round is >= round. At that gate every shard serializes
// its live sessions instead of applying other queued operations (which
// stay queued, unapplied) and exits cleanly; the assembled
// FleetSnapshot arrives on the returned channel and Run returns without
// error. The gate round must be a multiple of Config.SinkEpoch when
// sharded sinks are attached — a misaligned drain resolves the channel
// with an error and the fleet keeps running.
func (a *Admissions) DrainAt(round int) <-chan DrainResult {
	return a.requestSnapshot(round, "", true)
}

// SnapshotGroup captures every live session of one tenant group at the
// next admission gate without disturbing the fleet: the sessions keep
// running, and their serialized state (suitable for AdmitSpec.Restore
// migration) arrives on the returned channel.
func (a *Admissions) SnapshotGroup(group string) <-chan DrainResult {
	return a.SnapshotGroupAt(0, group)
}

// SnapshotGroupAt is SnapshotGroup pinned to the first gate whose
// global round is >= round.
func (a *Admissions) SnapshotGroupAt(round int, group string) <-chan DrainResult {
	return a.requestSnapshot(round, group, false)
}

func (a *Admissions) requestSnapshot(round int, group string, terminal bool) <-chan DrainResult {
	col := &snapshotCollector{
		group:    group,
		terminal: terminal,
		ch:       make(chan DrainResult, 1),
	}
	a.enqueue(admissionOp{atRound: round, snap: col})
	return col.ch
}

// restoredSpec rebuilds a slot spec from a captured session's header,
// parsing an inline program's canonical text back into executable form.
func restoredSpec(ss *SessionSnapshot) (spec, error) {
	sp := spec{
		index:      ss.Slot,
		patientIdx: ss.PatientIdx,
		scenIdx:    ss.ScenIdx,
		replica:    ss.Replica,
		group:      ss.Group,
		mitigate:   ss.Mitigate,
		restore:    ss,
	}
	if ss.Program != "" {
		prog, err := fault.ParseProgram(ss.Program)
		if err != nil {
			return spec{}, fmt.Errorf("snapshot program: %w", err)
		}
		sp.program = &prog
		sp.scenIdx = -1
	}
	return sp, nil
}

// snapshotSession serializes one live session at a cycle boundary. The
// shard-batched banks are read at the session's lane; per-session
// components are read directly.
func (e *engine) snapshotSession(s *Session, bm monitor.BatchMonitor, batchTelem *scs.BatchStreamSet, batchSensor *sensor.BatchModel) (SessionSnapshot, error) {
	if s.newMonitor != nil {
		return SessionSnapshot{}, fmt.Errorf(
			"fleet: session %d: per-spec monitor overrides cannot be snapshotted (the restoring fleet cannot rebuild the monitor)", s.Index)
	}
	enc := snapshot.NewEncoder()
	if err := s.st.Snapshot(enc); err != nil {
		return SessionSnapshot{}, fmt.Errorf("fleet: session %d: %w", s.Index, err)
	}

	enc.Bool(e.cfg.Sensor != nil)
	if e.cfg.Sensor != nil {
		switch {
		case batchSensor != nil:
			batchSensor.SnapshotLane(s.lane, enc)
		case s.sensorModel != nil:
			s.sensorModel.SnapshotState(enc)
		default:
			return SessionSnapshot{}, fmt.Errorf("fleet: session %d: sensor configured but no model attached", s.Index)
		}
	}

	hasMon := bm != nil || s.mon != nil
	enc.Bool(hasMon)
	switch {
	case bm != nil:
		ls, ok := bm.(snapshot.LaneSnapshotter)
		if !ok {
			return SessionSnapshot{}, fmt.Errorf("fleet: batch monitor %T does not support snapshot", bm)
		}
		ls.SnapshotLane(s.lane, enc)
	case s.mon != nil:
		sn, ok := s.mon.(snapshot.Snapshotter)
		if !ok {
			return SessionSnapshot{}, fmt.Errorf("fleet: monitor %T does not support snapshot", s.mon)
		}
		sn.SnapshotState(enc)
	}

	hasTelem := batchTelem != nil || s.telemetry != nil
	enc.Bool(hasTelem)
	switch {
	case batchTelem != nil:
		batchTelem.SnapshotLane(s.lane, enc)
	case s.telemetry != nil:
		s.telemetry.SnapshotState(enc)
	}

	progText := ""
	if s.program != nil {
		progText = s.program.Key()
	}
	return SessionSnapshot{
		Slot:       s.Index,
		PatientIdx: s.PatientIdx,
		ScenIdx:    s.scenIdx,
		Program:    progText,
		Replica:    s.Replica,
		Group:      s.group,
		Mitigate:   s.mitigate,
		Alarmed:    s.alarmed,
		Seed:       s.seed,
		Draws:      s.src.n,
		State:      enc.Payload(),
	}, nil
}

// restoreSessionState loads a captured session's component payload into
// a freshly built session on its new lane. On error the session must be
// discarded (the lane's banks are re-reset on next use).
func (e *engine) restoreSessionState(s *Session, ss *SessionSnapshot, bm monitor.BatchMonitor, batchTelem *scs.BatchStreamSet, batchSensor *sensor.BatchModel) error {
	wrap := func(err error) error {
		return fmt.Errorf("fleet: restore session (slot %d from snapshot slot %d): %w", s.Index, ss.Slot, err)
	}
	dec := snapshot.NewDecoder(ss.State)
	if err := s.st.Restore(dec); err != nil {
		return wrap(err)
	}

	hadSensor := dec.Bool()
	if err := dec.Err(); err != nil {
		return wrap(err)
	}
	if hadSensor != (e.cfg.Sensor != nil) {
		return wrap(fmt.Errorf("sensor presence mismatch: snapshot %v, config %v", hadSensor, e.cfg.Sensor != nil))
	}
	if hadSensor {
		var err error
		switch {
		case batchSensor != nil:
			err = batchSensor.RestoreLane(s.lane, dec)
		case s.sensorModel != nil:
			err = s.sensorModel.RestoreState(dec)
		default:
			err = fmt.Errorf("sensor configured but no model attached")
		}
		if err != nil {
			return wrap(fmt.Errorf("sensor: %w", err))
		}
	}

	hadMon := dec.Bool()
	if err := dec.Err(); err != nil {
		return wrap(err)
	}
	hasMon := bm != nil || s.mon != nil
	if hadMon != hasMon {
		return wrap(fmt.Errorf("monitor presence mismatch: snapshot %v, config %v", hadMon, hasMon))
	}
	if hadMon {
		var err error
		if bm != nil {
			ls, ok := bm.(snapshot.LaneSnapshotter)
			if !ok {
				return wrap(fmt.Errorf("batch monitor %T does not support snapshot", bm))
			}
			err = ls.RestoreLane(s.lane, dec)
		} else {
			sn, ok := s.mon.(snapshot.Snapshotter)
			if !ok {
				return wrap(fmt.Errorf("monitor %T does not support snapshot", s.mon))
			}
			err = sn.RestoreState(dec)
		}
		if err != nil {
			return wrap(fmt.Errorf("monitor: %w", err))
		}
	}

	hadTelem := dec.Bool()
	if err := dec.Err(); err != nil {
		return wrap(err)
	}
	hasTelem := batchTelem != nil || s.telemetry != nil
	if hadTelem != hasTelem {
		return wrap(fmt.Errorf("telemetry presence mismatch: snapshot %v, config %v", hadTelem, hasTelem))
	}
	if hadTelem {
		var err error
		if batchTelem != nil {
			err = batchTelem.RestoreLane(s.lane, dec)
		} else {
			err = s.telemetry.RestoreState(dec)
		}
		if err != nil {
			return wrap(fmt.Errorf("telemetry: %w", err))
		}
	}

	if err := dec.Finish(); err != nil {
		return wrap(err)
	}
	s.alarmed = ss.Alarmed
	return nil
}

// shardSnapshots serializes this shard's live sessions matched by the
// collector's group filter (slot order) and contributes the result.
func (e *engine) shardSnapshots(col *snapshotCollector, live []*Session, bm monitor.BatchMonitor, batchTelem *scs.BatchStreamSet, batchSensor *sensor.BatchModel) {
	ordered := make([]*Session, 0, len(live))
	for _, s := range live {
		if col.group == "" || s.group == col.group {
			ordered = append(ordered, s)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	var snaps []SessionSnapshot
	var err error
	for _, s := range ordered {
		var ss SessionSnapshot
		if ss, err = e.snapshotSession(s, bm, batchTelem, batchSensor); err != nil {
			break
		}
		snaps = append(snaps, ss)
	}
	e.contribute(col, snaps, err)
}
