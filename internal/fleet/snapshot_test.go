package fleet

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/snapshot"
)

// updateGolden rewrites the checked-in snapshot fixture. Run
//
//	go test ./internal/fleet -run GoldenFixture -update
//
// after an intentional format change — and bump snapshot.Version with
// it, or the cross-version guard has nothing to catch.
var updateGolden = flag.Bool("update", false, "rewrite golden snapshot fixtures")

// kindScenarios builds one scenario per fault kind so a small session
// matrix still exercises every injection mode.
func kindScenarios() []fault.Program {
	all := fault.Campaign(nil)
	seen := make(map[fault.Kind]bool)
	var out []fault.Scenario
	for _, sc := range all {
		if !seen[sc.Fault.Kind] {
			seen[sc.Fault.Kind] = true
			out = append(out, sc)
		}
	}
	return fault.Programs(out)
}

// snapshotFleetConfig is the golden-differential fleet: continuous and
// admission-controlled with shard-batched monitors, sensor noise, and
// mitigation on — every stateful component the snapshot must capture.
func snapshotFleetConfig(noise bool) Config {
	cfg := Config{
		Platform:  glucosymPlatform(),
		Patients:  []int{0, 2},
		Scenarios: kindScenarios(), // all six fault kinds
		Sessions:  6,               // static slots cover every kind (patient 0)
		Steps:     5,
		Seed:      7,
		Mitigate:  true,
		NewBatchMonitor: func() (monitor.BatchMonitor, error) {
			return monitor.NewBatchCAWOT(scs.TableI(), scs.Params{})
		},
		Telemetry:    &TelemetryConfig{Every: 2}, // shard-batched STL lanes
		Continuous:   true,
		MaxSessions:  10,
		AdmitEvery:   4,
		ShardedSinks: true,
		SinkEpoch:    4,
	}
	if noise {
		cfg.Sensor = &sensor.Config{NoiseSD: 2}
	}
	return cfg
}

// snapshotSchedule queues the fixed admission schedule shifted left by
// base rounds: the drained-and-restored half of the differential re-runs
// the post-drain tail of the same schedule at original-round minus the
// drain round.
func snapshotSchedule(adm *Admissions, base int) {
	at := func(round int) int { return round - base }
	if at(0) >= 0 {
		adm.AdmitAt(at(0),
			AdmitSpec{Group: "acme", PatientIdx: 0, ScenIdx: 1},
			AdmitSpec{Group: "acme", PatientIdx: 2, ScenIdx: 2},
		)
	}
	if at(8) >= 0 {
		adm.AdmitAt(at(8), AdmitSpec{Group: "zen", PatientIdx: 2, ScenIdx: 0})
	}
	if at(16) >= 0 {
		adm.EvictGroupAt(at(16), "acme")
	}
	if at(20) >= 0 {
		adm.AdmitAt(at(20), AdmitSpec{Group: "acme", PatientIdx: 0, ScenIdx: 4})
	}
}

// runEpochs runs cfg until closed sink epochs deliver, then cancels;
// returns the delivered stream bytes.
func runEpochs(t *testing.T, cfg Config, adm *Admissions, epochs int) []byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	cfg.Admissions = adm
	cfg.Sinks = []Sink{NewLogSink(&buf)}
	closed := 0
	cfg.sinkEpochHook = func(epoch, _, _ int) {
		if closed++; closed == epochs {
			cancel()
		}
	}
	if _, err := Run(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetSnapshotResumeGoldenDifferential is the headline resume
// contract: drain a mid-flight fleet to a snapshot at an epoch-aligned
// gate, restore it into a fresh fleet (same Seed, tail of the same
// admission schedule), and the concatenation of the two delivered sink
// streams must be byte-identical to the uninterrupted run — across
// parallelism levels, with and without sensor noise, over all six fault
// kinds with mitigation on.
func TestFleetSnapshotResumeGoldenDifferential(t *testing.T) {
	const (
		drainRound  = 16 // multiple of AdmitEvery (4) and SinkEpoch (4)
		totalEpochs = 9
		preEpochs   = drainRound / 4 // epochs closed before the drain gate
	)
	for _, noise := range []bool{true, false} {
		name := "noise"
		if !noise {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			uninterrupted := func(parallel int) []byte {
				adm := NewAdmissions()
				snapshotSchedule(adm, 0)
				cfg := snapshotFleetConfig(noise)
				cfg.Parallel = parallel
				return runEpochs(t, cfg, adm, totalEpochs)
			}
			golden := uninterrupted(1)
			if len(golden) == 0 {
				t.Fatal("no events delivered")
			}
			for p := 2; p <= 3; p++ {
				if got := uninterrupted(p); !bytes.Equal(got, golden) {
					t.Fatalf("uninterrupted Parallel=%d stream differs from Parallel=1", p)
				}
			}

			resumed := func(drainParallel, restoreParallel int) []byte {
				// First half: run to the drain gate and capture the fleet.
				adm := NewAdmissions()
				snapshotSchedule(adm, 0)
				res := adm.DrainAt(drainRound)
				var firstHalf bytes.Buffer
				cfg := snapshotFleetConfig(noise)
				cfg.Parallel = drainParallel
				cfg.Admissions = adm
				cfg.Sinks = []Sink{NewLogSink(&firstHalf)}
				if _, err := Run(context.Background(), cfg); err != nil {
					t.Fatalf("drain run: %v", err)
				}
				dr := <-res
				if dr.Err != nil {
					t.Fatalf("drain: %v", dr.Err)
				}
				snap := dr.Snapshot
				if len(snap.Sessions) == 0 {
					t.Fatal("drain captured no sessions")
				}
				midFlight := false
				for _, ss := range snap.Sessions {
					if len(ss.State) == 0 {
						t.Fatalf("slot %d: empty state payload", ss.Slot)
					}
					if noise && ss.Draws == 0 {
						t.Fatalf("slot %d: no RNG draws recorded with sensor noise on", ss.Slot)
					}
					if ss.Replica > 0 {
						midFlight = true
					}
				}
				if !midFlight {
					t.Fatal("no replica churn before the drain; the differential would not cover refill continuity")
				}

				// Second half: restore into a fresh fleet and finish the
				// schedule.
				adm2 := NewAdmissions()
				snapshotSchedule(adm2, drainRound)
				cfg2 := snapshotFleetConfig(noise)
				cfg2.Parallel = restoreParallel
				cfg2.Sessions = 0
				cfg2.Restore = snap
				secondHalf := runEpochs(t, cfg2, adm2, totalEpochs-preEpochs)
				return append(firstHalf.Bytes(), secondHalf...)
			}

			for _, pair := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {2, 3}} {
				if got := resumed(pair[0], pair[1]); !bytes.Equal(got, golden) {
					t.Errorf("drain@P=%d restore@P=%d: concatenated stream differs from the uninterrupted run", pair[0], pair[1])
				}
			}
		})
	}
}

// TestFleetSnapshotEncodingRoundTrip pins the snapshot containers: a
// fleet snapshot and a session snapshot survive Encode/Decode exactly,
// and corrupt or wrong-version envelopes fail loudly.
func TestFleetSnapshotEncodingRoundTrip(t *testing.T) {
	fs := &FleetSnapshot{
		Completed: 42,
		NextSlot:  9,
		Sessions: []SessionSnapshot{
			{Slot: 3, PatientIdx: 1, ScenIdx: 2, Replica: 4, Group: "acme",
				Mitigate: true, Alarmed: true, Seed: -77, Draws: 123, State: []byte{1, 2, 3}},
			{Slot: 8, PatientIdx: 0, ScenIdx: 0, Group: "", State: []byte{}},
		},
	}
	data := fs.Encode()
	got, err := DecodeFleetSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != fs.Completed || got.NextSlot != fs.NextSlot || len(got.Sessions) != 2 {
		t.Fatalf("fleet header round-trip: got %+v", got)
	}
	a, b := got.Sessions[0], fs.Sessions[0]
	if a.Slot != b.Slot || a.Group != b.Group || a.Seed != b.Seed || a.Draws != b.Draws ||
		!a.Mitigate || !a.Alarmed || !bytes.Equal(a.State, b.State) {
		t.Fatalf("session round-trip: got %+v want %+v", a, b)
	}

	// Bit flip inside the payload: the checksum must catch it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodeFleetSnapshot(flipped); err == nil {
		t.Error("bit-flipped snapshot decoded without error")
	}

	// Truncation never panics and always errors.
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeFleetSnapshot(data[:n]); err == nil {
			t.Errorf("truncated snapshot (%d bytes) decoded without error", n)
		}
	}

	ss := &fs.Sessions[0]
	sdata := ss.Encode()
	sgot, err := DecodeSessionSnapshot(sdata)
	if err != nil {
		t.Fatal(err)
	}
	if sgot.Slot != ss.Slot || sgot.Seed != ss.Seed || !bytes.Equal(sgot.State, ss.State) {
		t.Fatalf("session envelope round-trip: got %+v", sgot)
	}
}

// TestFleetSnapshotGroupMigration captures one tenant's sessions from a
// live fleet without stopping it, then admits them into a second fleet
// via AdmitSpec.Restore: the migrated sessions resume on fresh slots
// with no duplicate start events, and a corrupted snapshot is rejected
// at the gate with a reason — never fatally.
func TestFleetSnapshotGroupMigration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := NewAdmissions()
	cfg := snapshotFleetConfig(true)
	cfg.Telemetry = nil // no sinks in this test
	cfg.Sessions = 2
	adm.AdmitAt(0, AdmitSpec{Group: "mig", PatientIdx: 2, ScenIdx: 3})
	res := adm.SnapshotGroupAt(8, "mig")
	cfg.Admissions = adm
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	var dr DrainResult
	select {
	case dr = <-res:
	case err := <-done:
		t.Fatalf("run exited before the group snapshot resolved: %v", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if dr.Err != nil {
		t.Fatal(dr.Err)
	}
	if len(dr.Snapshot.Sessions) != 1 || dr.Snapshot.Sessions[0].Group != "mig" {
		t.Fatalf("group snapshot: %+v", dr.Snapshot.Sessions)
	}
	sealed := dr.Snapshot.Sessions[0].Encode()

	// Second fleet: admit the captured session plus a corrupt copy.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	corrupt := append([]byte(nil), sealed...)
	corrupt[len(corrupt)-1] ^= 0x01
	adm2 := NewAdmissions()
	adm2.AdmitAt(0,
		AdmitSpec{Group: "migrated", Restore: sealed},
		AdmitSpec{Restore: corrupt},
	)
	cfg2 := snapshotFleetConfig(true)
	cfg2.Telemetry = nil
	cfg2.Sessions = 0
	cfg2.Admissions = adm2

	events := make(chan Event, 4096)
	cfg2.Events = events
	starts := make(chan Event, 64)
	go func() {
		for ev := range events {
			if ev.Kind == EventSessionStart {
				select {
				case starts <- ev:
				default:
				}
			}
		}
	}()
	done2 := make(chan error, 1)
	go func() {
		_, err := Run(ctx2, cfg2)
		done2 <- err
	}()
	waitFor(t, "migration to apply", func() bool { return adm2.PendingOps() == 0 && adm2.Gen() > 0 })
	waitFor(t, "migrated session live", func() bool {
		live := adm2.Live()
		return len(live) == 1 && live[0].Group == "migrated"
	})
	n, rejects := adm2.Rejected()
	if n != 1 || !strings.Contains(rejects[0].Reason, "corrupt") {
		t.Fatalf("corrupt restore: %d rejections %+v, want 1 mentioning corruption", n, rejects)
	}
	// The migrated session must resume, not restart: its first replica
	// start event (if any churn happened yet) carries Replica > 0, and
	// no Replica == 0 start for the restored slot may appear.
	waitFor(t, "replica churn on the migrated slot", func() bool {
		for {
			select {
			case ev := <-starts:
				if ev.Group == "migrated" && ev.Replica == 0 {
					t.Fatal("restored session emitted a fresh start event")
				}
				if ev.Group == "migrated" && ev.Replica > 0 {
					return true
				}
			default:
				return false
			}
		}
	})
	cancel2()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	close(events)
}

// TestFleetSnapshotDrainMisaligned pins the alignment invariant: a
// terminal drain at a gate that is not a multiple of SinkEpoch must
// resolve with an error and leave the fleet running.
func TestFleetSnapshotDrainMisaligned(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := NewAdmissions()
	cfg := snapshotFleetConfig(false)
	cfg.AdmitEvery = 2 // gates at odd multiples of 2 misalign with SinkEpoch 4
	res := adm.DrainAt(2)
	ok := adm.DrainAt(4)
	cfg.Admissions = adm
	var buf bytes.Buffer
	cfg.Sinks = []Sink{NewLogSink(&buf)}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	dr := <-res
	if dr.Err == nil || !strings.Contains(dr.Err.Error(), "not aligned") {
		t.Fatalf("misaligned drain: %+v, want alignment error", dr)
	}
	dr = <-ok
	if dr.Err != nil {
		t.Fatalf("aligned drain after misaligned request: %v", dr.Err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestFleetRestoreValidation pins the Config.Restore guard rails:
// restore without admissions, restore with static sessions, and a
// snapshot exceeding MaxSessions all fail loudly before any shard runs.
func TestFleetRestoreValidation(t *testing.T) {
	snap := &FleetSnapshot{NextSlot: 1, Sessions: []SessionSnapshot{{Slot: 0}}}
	base := func() Config {
		cfg := snapshotFleetConfig(false)
		cfg.Telemetry = nil // no sinks attached in this test
		cfg.Sessions = 0
		cfg.Restore = snap
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"without admissions", func(c *Config) {}, "requires Admissions"},
		{"with static sessions", func(c *Config) {
			c.Admissions = NewAdmissions()
			c.Sessions = 3
		}, "leave Sessions zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}

	t.Run("beyond capacity", func(t *testing.T) {
		big := &FleetSnapshot{NextSlot: 99}
		for i := 0; i < 11; i++ {
			big.Sessions = append(big.Sessions, SessionSnapshot{Slot: i})
		}
		cfg := base()
		cfg.Admissions = NewAdmissions()
		cfg.Restore = big // MaxSessions is 10
		_, err := Run(context.Background(), cfg)
		if err == nil || !strings.Contains(err.Error(), "MaxSessions") {
			t.Errorf("Run() = %v, want capacity error", err)
		}
	})

	t.Run("duplicate slot", func(t *testing.T) {
		dup := &FleetSnapshot{NextSlot: 5, Sessions: []SessionSnapshot{{Slot: 2}, {Slot: 2}}}
		cfg := base()
		cfg.Admissions = NewAdmissions()
		cfg.Restore = dup
		_, err := Run(context.Background(), cfg)
		if err == nil || !strings.Contains(err.Error(), "repeats slot") {
			t.Errorf("Run() = %v, want duplicate-slot error", err)
		}
	})
}

// goldenFleetSnapshot drains the reference fleet at gate round 8 and
// returns the captured snapshot.
func goldenFleetSnapshot(t *testing.T, parallel int) *FleetSnapshot {
	t.Helper()
	adm := NewAdmissions()
	snapshotSchedule(adm, 0)
	res := adm.DrainAt(8)
	cfg := snapshotFleetConfig(true)
	cfg.Parallel = parallel
	cfg.Admissions = adm
	var buf bytes.Buffer
	cfg.Sinks = []Sink{NewLogSink(&buf)}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	dr := <-res
	if dr.Err != nil {
		t.Fatal(dr.Err)
	}
	return dr.Snapshot
}

// TestFleetSnapshotGoldenFixture pins the on-disk encoding with a
// checked-in fixture: the reference drain must reproduce the fixture
// byte-for-byte (any layout drift fails here and demands a Version
// bump), snapshot bytes must not depend on Parallel (the canonical
// cross-lane encoding), decode→encode must be the identity, and the
// checked-in snapshot must remain restorable.
func TestFleetSnapshotGoldenFixture(t *testing.T) {
	const path = "testdata/fleet_snapshot_v2.bin"
	data := goldenFleetSnapshot(t, 1).Encode()
	if p3 := goldenFleetSnapshot(t, 3).Encode(); !bytes.Equal(p3, data) {
		t.Fatal("snapshot bytes depend on Parallel; lane layout leaked into the canonical encoding")
	}
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("snapshot encoding drifted from the checked-in v2 fixture; bump snapshot.Version and regenerate with -update")
	}

	fs, err := DecodeFleetSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fs.Encode(), want) {
		t.Fatal("decode->encode of the fixture is not the identity")
	}
	if len(fs.Sessions) == 0 || fs.NextSlot == 0 {
		t.Fatalf("implausible fixture: %d sessions, next slot %d", len(fs.Sessions), fs.NextSlot)
	}

	// The checked-in snapshot must restore into a running fleet.
	adm := NewAdmissions()
	snapshotSchedule(adm, 8)
	cfg := snapshotFleetConfig(true)
	cfg.Sessions = 0
	cfg.Restore = fs
	if got := runEpochs(t, cfg, adm, 2); len(got) == 0 {
		t.Fatal("restored fixture fleet delivered no events")
	}
}

// TestFleetSnapshotVersionGuard pins the cross-version contract at the
// fleet layer: a snapshot stamped with a different format version is
// refused with an error naming both versions.
func TestFleetSnapshotVersionGuard(t *testing.T) {
	data := (&FleetSnapshot{NextSlot: 1}).Encode()
	// The version uvarint sits right after the 4-byte magic; small
	// versions occupy one byte, so bumping it in place (and fixing the
	// checksum) forges a future-format snapshot.
	forged := append([]byte(nil), data...)
	forged[4] = snapshot.Version + 1
	forged = snapshot.Reseal(forged)
	_, err := DecodeFleetSnapshot(forged)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("v%d", snapshot.Version+1)) {
		t.Fatalf("forged version: err = %v, want version mismatch naming v%d", err, snapshot.Version+1)
	}
}
