package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TelemetryConfig attaches streaming STL hazard telemetry to every
// session: each control cycle yields an EventRobustness carrying the
// minimum STL robustness across the rule set plus the signed rule
// margin and its attribution, delivered over Config.Events and/or
// Config.Sinks.
//
// By default every worker shard evaluates its whole live window through
// one shard-batched scs.BatchStreamSet — a single struct-of-arrays push
// per cycle, bit-identical per lane to a dedicated per-session
// scs.StreamSet (which PerSession selects explicitly). With FromMonitor
// the verdicts instead come from the session monitor's own single
// streaming evaluation, so a fleet serving margin-carrying monitors
// (the streaming CAWT/CAWOT, per-session or shard-batched) pays for
// exactly one rule evaluation per cycle.
type TelemetryConfig struct {
	// Rules is the Safety Context Specification to stream; nil selects
	// the paper's Table I. Ignored with FromMonitor.
	Rules []scs.Rule
	// Thresholds maps rule IDs to β values; nil selects the rules'
	// defaults (the CAWOT thresholds). Ignored with FromMonitor.
	Thresholds scs.Thresholds
	// Params carries the shared evaluation constants. Ignored with
	// FromMonitor.
	Params scs.Params
	// Every emits a robustness event every k cycles per session
	// (default 1: every cycle).
	Every int
	// FromMonitor emits the session monitor's own streaming verdict
	// instead of attaching a separate telemetry rule set — the
	// one-evaluation invariant for serving fleets. Requires NewMonitor
	// building margin-carrying monitors (monitors exposing
	// StreamVerdict, e.g. monitor.ContextAware) or NewBatchMonitor
	// building lane-margin monitors (monitor.BatchContextAware).
	FromMonitor bool
	// PerSession evaluates telemetry with one scs.StreamSet per session
	// instead of the shard-batched engine. The two paths are
	// bit-identical (the differential tests compare them); this is the
	// escape hatch that keeps the per-session oracle reachable. Ignored
	// with FromMonitor.
	PerSession bool
}

// marginMonitor is the capability FromMonitor telemetry needs: access
// to the monitor's full streaming verdict for the last step.
// monitor.ContextAware implements it.
type marginMonitor interface {
	StreamVerdict() (scs.StreamVerdict, bool)
}

// laneMarginMonitor is the batched counterpart of marginMonitor: a
// BatchMonitor exposing each lane's full streaming verdict.
// monitor.BatchContextAware implements it.
type laneMarginMonitor interface {
	StreamVerdictLane(lane int) (scs.StreamVerdict, bool)
}

// laneMargin adapts one lane of a laneMarginMonitor to the per-session
// marginMonitor surface, so FromMonitor telemetry reads batched and
// per-session monitors through one code path.
type laneMargin struct {
	m    laneMarginMonitor
	lane int
}

// StreamVerdict implements marginMonitor for one lane.
func (a laneMargin) StreamVerdict() (scs.StreamVerdict, bool) {
	return a.m.StreamVerdictLane(a.lane)
}

// Platform couples a patient cohort with its controller. It is
// structurally identical to experiment.Platform so the campaign layer
// converts with a plain type conversion (fleet cannot import experiment:
// experiment delegates to fleet).
type Platform struct {
	Name        string
	NumPatients int
	// NewPatient builds cohort patient idx.
	NewPatient func(idx int) (closedloop.Patient, error)
	// NewBatchPatient, when non-nil, builds a struct-of-arrays bank of
	// lanes patients and enables shard-batched physiology/sensor stepping:
	// each worker advances its whole live window's ODE state through one
	// batched RK4 call per round, bit-identical per lane to the scalar
	// NewPatient path (which Config.PerSessionStepping selects
	// explicitly).
	NewBatchPatient func(lanes int) (sim.BatchPatient, error)
	// NewController builds the platform's controller for a patient with
	// the given basal rate.
	NewController func(basalUPerH float64) (control.Controller, error)
}

// Config describes one fleet run.
type Config struct {
	Platform Platform
	// Patients selects cohort indices; nil means the whole cohort.
	Patients []int
	// Scenarios is the fleet's scenario-program table; nil (with
	// LegacyScenarios also empty) means the full 882-per-patient campaign
	// compiled through the program IR. Every program is validated and
	// compiled once, before any session starts.
	Scenarios []fault.Program
	// LegacyScenarios selects the fault matrix through the original
	// single-fault enum path instead of compiled programs. Mutually
	// exclusive with Scenarios; this is the oracle the compiled-legacy
	// golden differential compares against.
	LegacyScenarios []fault.Scenario
	// Sessions is the number of concurrent session slots. Zero means one
	// per patient x scenario pair; larger values wrap around the matrix
	// with fresh RNG replicas.
	Sessions int
	// Steps per session (default 150 five-minute cycles).
	Steps int
	// CycleMin is the control-cycle length (default 5 minutes).
	CycleMin float64
	// Parallel bounds worker shards (default NumCPU). Sessions are
	// sharded round-robin; each shard is owned by one goroutine.
	Parallel int
	// MaxLivePerShard caps how many of a shard's sessions are resident
	// and interleaved at once (default 128); remaining slots queue until
	// a live session completes, bounding memory on full-matrix
	// campaigns. It also sets the batched-inference width. Continuous
	// mode ignores the cap: Sessions *is* the requested live fleet size.
	MaxLivePerShard int
	// Seed is the master seed: session i's RNG stream is derived from
	// (Seed, patient, scenario, replica), never from scheduling.
	Seed int64
	// Sensor optionally attaches a CGM error model per session, driven
	// by the session RNG. Nil reads the clean CGM.
	Sensor *sensor.Config
	// PerSessionStepping disables shard-batched physiology/sensor
	// stepping on platforms that provide NewBatchPatient, building each
	// session its own scalar patient (and sensor closure) instead. The
	// two paths are bit-identical per session (the differential tests
	// compare them); this is the escape hatch that keeps the per-session
	// oracle reachable, mirroring TelemetryConfig.PerSession.
	PerSessionStepping bool
	// NewMonitor optionally builds a per-session safety monitor.
	NewMonitor func(patientIdx int) (monitor.Monitor, error)
	// NewBatchMonitor optionally builds one batched monitor per shard;
	// the shard then evaluates all its sessions' observations in a
	// single inference call per cycle. Mutually exclusive with
	// NewMonitor.
	NewBatchMonitor func() (monitor.BatchMonitor, error)
	// Mitigate enables Algorithm 1 when a monitor is attached.
	Mitigate bool
	// Mitigation tunes the enabled mitigation (margin scaling, corrective
	// ceiling); the Enabled flag itself is owned by Mitigate.
	Mitigation closedloop.MitigationConfig
	// DiscardTraces recycles completed traces through the buffer pool
	// after summarizing them into Result counters and events, instead of
	// retaining them. Continuous mode forces this on.
	DiscardTraces bool
	// Continuous restarts each completed session with a fresh replica
	// RNG stream until the context is cancelled (run-forever serving
	// mode). The context deadline/cancellation is the normal way to stop
	// a continuous fleet and is not reported as an error.
	Continuous bool
	// Admissions attaches a runtime admission/eviction controller
	// (NewAdmissions): the fleet grows and shrinks its live slot set at
	// admission gates every AdmitEvery lock-step rounds (see
	// admission.go for the protocol and determinism contract). Requires
	// Continuous and MaxSessions; Sessions then defaults to zero (start
	// empty) instead of the full matrix, and an explicit Scenarios table
	// declares what admitted sessions may run.
	Admissions *Admissions
	// MaxSessions bounds the total live slot set of an
	// admission-controlled fleet; admissions beyond it are rejected (not
	// queued). Each shard sizes its batched lane banks to MaxSessions so
	// acceptance never depends on Parallel. Required with Admissions.
	MaxSessions int
	// AdmitEvery is the admission-gate period in lock-step rounds
	// (default 16). Queued admissions/evictions apply only at gate
	// rounds, which is what keeps runtime fleet-shape changes
	// deterministic.
	AdmitEvery int
	// Restore seeds the fleet from a drained snapshot instead of a
	// static slot set: every captured session resumes on its original
	// slot at its exact cycle, the completion cursor continues, and —
	// run with the same master Seed and scenario table — the sink stream
	// continues byte-identically where the drained run cut it (see
	// snapshot.go). Requires Admissions; Sessions must stay zero.
	Restore *FleetSnapshot
	// Telemetry optionally streams per-cycle STL robustness margins for
	// every session as EventRobustness events. Requires Events or Sinks.
	Telemetry *TelemetryConfig
	// Events optionally streams lifecycle events. The caller must drain
	// the channel; sends are abandoned when the context is cancelled.
	Events chan<- Event
	// Sinks optionally persist the event stream: every event is delivered
	// to each sink in order by one collector goroutine (see Sink for the
	// backpressure and error semantics). Sinks and Events may be combined;
	// sinks are flushed when Run returns.
	Sinks []Sink
	// ShardedSinks replaces the collector goroutine with per-worker
	// event buffers merged into the sinks in canonical order (see
	// shard_sink.go): workers append events locally — no channel, no
	// cross-shard contention — and the merged delivery order is a pure
	// function of the session coordinates, so sink output is
	// byte-identical at any parallelism level, like traces. With
	// SinkEpoch == 0 the merge happens once, when the run completes
	// (finite runs only); with SinkEpoch > 0 the buffers drain at epoch
	// barriers, so delivery is live and memory is bounded by one epoch
	// window. Events still stream live either way.
	ShardedSinks bool
	// SinkEpoch (with ShardedSinks) drains the per-worker buffers at an
	// epoch barrier every SinkEpoch completed lock-step rounds: all
	// shards quiesce, the closed epoch merges in canonical order, and
	// the deliverable prefix streams to the sinks immediately, with
	// completion counts and progress marks re-stamped incrementally
	// across epochs. For finite runs the concatenation of epoch merges
	// is byte-identical to the single run-end merge at any (Parallel,
	// SinkEpoch). Zero defers delivery to run end (finite runs;
	// continuous fleets require epochs and default to 64).
	SinkEpoch int
	// sinkEpochHook, when set (tests only), observes each closed epoch:
	// the epoch index, how many events were buffered at the barrier, and
	// how many of them were delivered.
	sinkEpochHook func(epoch, buffered, delivered int)
	// ProgressEvery emits an EventProgress every k completed sessions
	// (default 0: no progress events).
	ProgressEvery int

	// plans caches the compiled form of Scenarios, one *fault.Plan per
	// program, built by withDefaults once Steps/CycleMin are known.
	plans []*fault.Plan
}

// numScenarios is the size of whichever scenario table is in force.
func (c *Config) numScenarios() int {
	if len(c.LegacyScenarios) > 0 {
		return len(c.LegacyScenarios)
	}
	return len(c.Scenarios)
}

// Validate surfaces contradictory configurations as errors without
// normalizing anything — the checks Run applies before filling
// defaults, exposed so a control plane can reject a bad declared spec
// up front (fleetd turns these into 400s) instead of discovering the
// contradiction when the fleet starts.
func (c Config) Validate() error {
	if c.Platform.NewPatient == nil || c.Platform.NewController == nil {
		return fmt.Errorf("fleet: incomplete platform")
	}
	if c.Sessions < 0 {
		return fmt.Errorf("fleet: negative Sessions %d", c.Sessions)
	}
	if c.Steps < 0 {
		return fmt.Errorf("fleet: negative Steps %d", c.Steps)
	}
	if c.CycleMin < 0 {
		return fmt.Errorf("fleet: negative CycleMin %v", c.CycleMin)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("fleet: negative Parallel %d", c.Parallel)
	}
	if c.MaxLivePerShard < 0 {
		return fmt.Errorf("fleet: negative MaxLivePerShard %d", c.MaxLivePerShard)
	}
	if c.ProgressEvery < 0 {
		return fmt.Errorf("fleet: negative ProgressEvery %d", c.ProgressEvery)
	}
	if c.NewMonitor != nil && c.NewBatchMonitor != nil {
		return fmt.Errorf("fleet: NewMonitor and NewBatchMonitor are mutually exclusive")
	}
	if len(c.Scenarios) > 0 && len(c.LegacyScenarios) > 0 {
		return fmt.Errorf("fleet: Scenarios and LegacyScenarios are mutually exclusive")
	}
	// Duplicate entries in either axis of the patient x scenario matrix
	// would run indistinguishable sessions on distinct slots — almost
	// always a config bug (a tenant admitting the same pair twice), and
	// one that silently skews completion counts. Reject them up front.
	patSeen := make(map[int]int, len(c.Patients))
	for i, p := range c.Patients {
		if j, dup := patSeen[p]; dup {
			return fmt.Errorf("fleet: duplicate patient %d at Patients[%d] and [%d]", p, j, i)
		}
		patSeen[p] = i
	}
	progSeen := make(map[string]int, len(c.Scenarios))
	for i, p := range c.Scenarios {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("fleet: Scenarios[%d]: %w", i, err)
		}
		if j, dup := progSeen[p.Key()]; dup {
			return fmt.Errorf("fleet: duplicate scenario program %q at Scenarios[%d] and [%d]", p.Name, j, i)
		}
		progSeen[p.Key()] = i
	}
	scSeen := make(map[fault.Scenario]int, len(c.LegacyScenarios))
	for i, sc := range c.LegacyScenarios {
		if j, dup := scSeen[sc]; dup {
			return fmt.Errorf("fleet: duplicate scenario %s at LegacyScenarios[%d] and [%d]", sc.Fault.Name(), j, i)
		}
		scSeen[sc] = i
	}
	if c.SinkEpoch < 0 {
		return fmt.Errorf("fleet: negative SinkEpoch %d", c.SinkEpoch)
	}
	if c.SinkEpoch > 0 && !c.ShardedSinks {
		return fmt.Errorf("fleet: SinkEpoch requires ShardedSinks")
	}
	if c.Continuous && c.numScenarios() == 0 {
		// A serving fleet runs its scenario table forever; defaulting to
		// the full 882-scenario campaign is never what a continuous
		// deployment meant — declare the table explicitly.
		return fmt.Errorf("fleet: Continuous requires an explicit Scenarios table")
	}
	if c.Telemetry != nil {
		if c.Events == nil && len(c.Sinks) == 0 {
			return fmt.Errorf("fleet: Telemetry requires Events or Sinks")
		}
		if c.Telemetry.FromMonitor && c.NewMonitor == nil && c.NewBatchMonitor == nil {
			return fmt.Errorf("fleet: Telemetry.FromMonitor requires NewMonitor or NewBatchMonitor")
		}
	}
	for i, s := range c.Sinks {
		if s == nil {
			return fmt.Errorf("fleet: nil sink at index %d", i)
		}
	}
	if c.Admissions != nil {
		if !c.Continuous {
			return fmt.Errorf("fleet: Admissions requires Continuous")
		}
		if c.MaxSessions <= 0 {
			return fmt.Errorf("fleet: Admissions requires positive MaxSessions, got %d", c.MaxSessions)
		}
		if c.MaxSessions < c.Sessions {
			return fmt.Errorf("fleet: MaxSessions %d below the static Sessions %d", c.MaxSessions, c.Sessions)
		}
	} else {
		if c.MaxSessions != 0 {
			return fmt.Errorf("fleet: MaxSessions requires Admissions")
		}
		if c.AdmitEvery != 0 {
			return fmt.Errorf("fleet: AdmitEvery requires Admissions")
		}
	}
	if c.AdmitEvery < 0 {
		return fmt.Errorf("fleet: negative AdmitEvery %d", c.AdmitEvery)
	}
	if c.Restore != nil {
		if c.Admissions == nil {
			return fmt.Errorf("fleet: Restore requires Admissions")
		}
		if c.Sessions != 0 {
			return fmt.Errorf("fleet: Restore replaces the static slot set; leave Sessions zero")
		}
	}
	return nil
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.ShardedSinks && c.Continuous && c.SinkEpoch == 0 {
		// Run-end-only merge never happens on a serving fleet; epoch
		// barriers keep delivery live and the buffers bounded.
		c.SinkEpoch = 64
	}
	if len(c.Patients) == 0 {
		c.Patients = make([]int, c.Platform.NumPatients)
		for i := range c.Patients {
			c.Patients[i] = i
		}
	}
	if c.numScenarios() == 0 {
		c.Scenarios = fault.CampaignPrograms(nil)
	}
	if c.Sessions <= 0 && c.Admissions == nil {
		// An admission-controlled fleet starts with exactly the declared
		// static slots (possibly none); only batch runs default to the
		// full matrix.
		c.Sessions = len(c.Patients) * c.numScenarios()
	}
	if c.Steps == 0 {
		c.Steps = 150
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	switch {
	case c.Admissions != nil:
		// Shards outlive any static slot set; bound them by the fleet
		// capacity instead.
		if c.Parallel > c.MaxSessions {
			c.Parallel = c.MaxSessions
		}
		if c.AdmitEvery == 0 {
			c.AdmitEvery = 16
		}
	case c.Parallel > c.Sessions:
		c.Parallel = c.Sessions
	}
	if c.MaxLivePerShard <= 0 {
		c.MaxLivePerShard = 128
	}
	if c.Continuous {
		c.DiscardTraces = true
	}
	if c.CycleMin == 0 {
		c.CycleMin = 5
	}
	if c.Telemetry != nil {
		t := *c.Telemetry // defaults must not mutate the caller's config
		if len(t.Rules) == 0 {
			t.Rules = scs.TableI()
		}
		if t.Every <= 0 {
			t.Every = 1
		}
		c.Telemetry = &t
	}
	// Compile the program table once, now that the loop horizon is known;
	// every session indexing Scenarios shares these plans.
	if len(c.LegacyScenarios) == 0 {
		c.plans = make([]*fault.Plan, len(c.Scenarios))
		for i := range c.Scenarios {
			pl, err := c.Scenarios[i].Compile(c.Steps, c.CycleMin)
			if err != nil {
				return c, fmt.Errorf("fleet: Scenarios[%d] (%s): %w", i, c.Scenarios[i].Name, err)
			}
			c.plans[i] = pl
		}
	}
	return c, nil
}

// spec pins one session slot to its patient/scenario/replica
// coordinates, plus — for admitted sessions — the tenant group tag and
// any per-session monitor/mitigation overrides from the AdmitSpec.
type spec struct {
	index      int // slot index: result slice position
	patientIdx int
	scenIdx    int // index into the scenario table; -1 with program set
	replica    int
	// program, when non-nil, is an inline scenario program
	// (AdmitSpec.Program) the session runs instead of a table entry; it
	// compiles at session start and rides along into replica refills.
	program *fault.Program

	group      string
	newMonitor func(patientIdx int) (monitor.Monitor, error)
	mitigate   bool
	// restore, when non-nil, resumes the slot from a captured session
	// instead of starting it fresh (Config.Restore or AdmitSpec.Restore).
	restore *SessionSnapshot
}

func (c *Config) specFor(slot, replica int) spec {
	n := c.numScenarios()
	matrix := len(c.Patients) * n
	rem := slot % matrix
	return spec{
		index:      slot,
		patientIdx: c.Patients[rem/n],
		scenIdx:    rem % n,
		replica:    slot/matrix + replica,
	}
}

// Result summarizes a fleet run.
type Result struct {
	// Traces holds one labeled trace per session slot in deterministic
	// order (patients outer, scenarios inner, then replicas). Nil when
	// DiscardTraces is set.
	Traces []*trace.Trace
	// Sessions is the number of session slots.
	Sessions int
	// Completed counts sessions run to completion (> Sessions in
	// continuous mode).
	Completed int64
	// Steps counts control cycles executed across all sessions.
	Steps int64
	// Hazardous counts completed sessions whose trace carries a hazard
	// label; Alarmed counts sessions whose monitor raised an alarm.
	Hazardous int64
	Alarmed   int64
}

// Run executes the fleet until every session completes (or forever, in
// continuous mode) and returns the aggregate result. Cancelling the
// context stops a finite run with the context's error; for a continuous
// fleet cancellation is the normal shutdown path and returns nil.
// Registered sinks are drained and flushed before Run returns; the
// first Emit error per sink (which detaches that sink) and any flush
// errors surface as the returned error once simulation has completed.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	eng := &engine{ctx: ctx, cfg: cfg, pool: newBufferPool(cfg.Steps)}
	if cfg.Restore != nil {
		// The completion cursor continues from the drained run, so
		// EventSessionDone re-stamping and Result.Completed count from
		// where the snapshot cut.
		eng.completed.Store(cfg.Restore.Completed)
	}
	if !cfg.DiscardTraces {
		eng.traces = make([]*trace.Trace, cfg.Sessions)
	}
	eng.errs = make([]error, cfg.Parallel)
	if cfg.Admissions != nil {
		if err := cfg.Admissions.bind(&eng.cfg); err != nil {
			return Result{}, err
		}
		eng.gate = newAdmissionGate(ctx.Done(), &eng.cfg)
	}

	// Sink delivery: by default one collector goroutine owns it — Emit
	// never races with itself, and a slow sink backpressures the workers
	// through the bounded channel instead of dropping telemetry. With
	// ShardedSinks each worker buffers its own events instead, and the
	// buffers merge into the sinks in canonical order — at every
	// SinkEpoch barrier, and once more when the workers exit.
	var collectorDone chan struct{}
	sinkErrs := make([]error, len(cfg.Sinks))
	if len(cfg.Sinks) > 0 {
		if cfg.ShardedSinks {
			eng.sinks = newShardedDelivery(&eng.cfg, sinkErrs)
		} else {
			eng.sinkCh = make(chan Event, 256)
			collectorDone = make(chan struct{})
			go func() {
				defer close(collectorDone)
				for ev := range eng.sinkCh {
					for i, s := range cfg.Sinks {
						if sinkErrs[i] != nil {
							continue // detached after first error
						}
						sinkErrs[i] = s.Emit(ev)
					}
				}
			}()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			eng.runShard(shard)
		}(w)
	}
	wg.Wait()

	if eng.sinkCh != nil {
		close(eng.sinkCh)
		<-collectorDone
	}
	if eng.sinks != nil {
		eng.sinks.finish()
	}
	var flushErrs []error
	for _, s := range cfg.Sinks {
		flushErrs = append(flushErrs, s.Flush())
	}

	for _, err := range eng.errs {
		if err != nil {
			return Result{}, err
		}
	}
	if err := ctx.Err(); err != nil && !cfg.Continuous {
		return Result{}, fmt.Errorf("fleet: run cancelled: %w", err)
	}
	res := Result{
		Traces:    eng.traces,
		Sessions:  cfg.Sessions,
		Completed: eng.completed.Load(),
		Steps:     eng.steps.Load(),
		Hazardous: eng.hazardous.Load(),
		Alarmed:   eng.alarmed.Load(),
	}
	return res, errors.Join(errors.Join(sinkErrs...), errors.Join(flushErrs...))
}

// engine is the shared state of one fleet run. Workers touch disjoint
// trace slots and communicate only through the atomic counters and the
// event channel, so the whole run is data-race free by construction.
type engine struct {
	ctx    context.Context
	cfg    Config
	pool   *bufferPool
	traces []*trace.Trace
	errs   []error
	sinkCh chan Event
	sinks  *shardedDelivery // per-worker sink buffers + epoch barrier (ShardedSinks)
	gate   *admissionGate   // runtime admission/eviction barrier (Config.Admissions)

	steps     atomic.Int64
	completed atomic.Int64
	hazardous atomic.Int64
	alarmed   atomic.Int64
}

// emit streams an event from one worker shard to the Events channel and
// the sink layer (the collector channel, or the shard's own buffer when
// sinks are sharded) unless the run is shutting down.
func (e *engine) emit(shard int, ev Event) {
	if e.cfg.Events != nil {
		select {
		case e.cfg.Events <- ev:
		case <-e.ctx.Done():
		}
	}
	if e.sinkCh != nil {
		select {
		case e.sinkCh <- ev:
		case <-e.ctx.Done():
		}
	}
	if e.sinks != nil && ev.Kind != EventProgress {
		// Progress events are a live-streaming affordance whose payload
		// (the global completion count) is scheduling-dependent; the
		// canonical merge re-synthesizes them deterministically.
		e.sinks.buffer(shard, ev)
	}
}

// runShard owns sessions slot ≡ shard (mod Parallel), stepping its live
// window in lock-step rounds so a batched monitor can serve the whole
// window with one inference call per cycle. At most MaxLivePerShard
// sessions are resident at once; queued slots start as live ones
// complete, reusing their lane (and its recycled buffers).
func (e *engine) runShard(shard int) {
	cfg := &e.cfg
	cleanExit := false
	if e.sinks != nil {
		// A shard leaving the run withdraws from the epoch barrier so the
		// others never wait on it; a clean exit flushes its remaining
		// buffer, an aborted one (cancellation, error) drops the open
		// epoch — see shard_sink.go for the cancellation contract.
		defer func() { e.sinks.leave(shard, cleanExit) }()
	}
	if e.gate != nil {
		// A departing shard withdraws from the admission gate too: its
		// registry entries purge (capacity frees up), no future admission
		// lands on it, and a gate it would have completed releases.
		defer e.gate.leave(shard)
	}
	var slots []int
	for slot := shard; slot < cfg.Sessions; slot += cfg.Parallel {
		slots = append(slots, slot)
	}
	window := len(slots)
	if !cfg.Continuous && window > cfg.MaxLivePerShard {
		window = cfg.MaxLivePerShard
	}
	// capLanes is how many batched-bank lanes the shard owns. An
	// admission-controlled shard sizes them to the whole fleet bound so
	// admission acceptance depends only on the total live count — never
	// on Parallel or on which shard hosts the session; a fixed fleet
	// sizes exactly its live window.
	capLanes := window
	if e.gate != nil {
		capLanes = cfg.MaxSessions
	}

	// Shard-batched physiology: the whole live window's ODE state lives
	// in one struct-of-arrays bank advanced by a single batched RK4 call
	// per round, with a matching per-lane sensor bank when a CGM error
	// model is attached. Bit-identical per lane to the per-session path
	// (Config.PerSessionStepping).
	var batchPat sim.BatchPatient
	var batchSensor *sensor.BatchModel
	if cfg.Platform.NewBatchPatient != nil && !cfg.PerSessionStepping {
		var err error
		if batchPat, err = cfg.Platform.NewBatchPatient(capLanes); err != nil {
			e.errs[shard] = fmt.Errorf("fleet: shard %d batch patient: %w", shard, err)
			return
		}
		if cfg.Sensor != nil {
			if batchSensor, err = sensor.NewBatchModel(capLanes); err != nil {
				e.errs[shard] = fmt.Errorf("fleet: shard %d batch sensor: %w", shard, err)
				return
			}
		}
	}

	var bm monitor.BatchMonitor
	var laneMargins laneMarginMonitor
	if cfg.NewBatchMonitor != nil {
		var err error
		if bm, err = cfg.NewBatchMonitor(); err != nil {
			e.errs[shard] = fmt.Errorf("fleet: shard %d batch monitor: %w", shard, err)
			return
		}
		bm.ResetLanes(capLanes)
		if t := cfg.Telemetry; t != nil && t.FromMonitor {
			lm, ok := bm.(laneMarginMonitor)
			if !ok {
				e.errs[shard] = fmt.Errorf(
					"fleet: Telemetry.FromMonitor requires a lane-margin batch monitor, got %T", bm)
				return
			}
			laneMargins = lm
		}
	}

	// Shard-batched telemetry: the whole live window's rule streams
	// advance in one struct-of-arrays push per cycle, bit-identical per
	// lane to the per-session StreamSet path (TelemetryConfig.PerSession).
	var batchTelem *scs.BatchStreamSet
	var telemSamples []trace.Sample
	var telemStates []scs.State
	var telemLanes []int
	var telemVerdicts []scs.StreamVerdict
	if t := cfg.Telemetry; t != nil && !t.FromMonitor && !t.PerSession {
		var err error
		batchTelem, err = scs.NewBatchStreamSet(t.Rules, t.Thresholds, t.Params, cfg.CycleMin, capLanes)
		if err != nil {
			e.errs[shard] = fmt.Errorf("fleet: shard %d telemetry: %w", shard, err)
			return
		}
		telemSamples = make([]trace.Sample, 0, capLanes)
		telemStates = make([]scs.State, 0, capLanes)
		telemLanes = make([]int, 0, capLanes)
		telemVerdicts = make([]scs.StreamVerdict, capLanes)
	}

	// laneUsed tracks the free lanes of an admission-controlled shard;
	// admitted sessions take the lowest free lane. (Fixed fleets reuse a
	// retiring session's lane directly and never consult it.)
	laneUsed := make([]bool, capLanes)
	freeLane := func() int {
		for i, u := range laneUsed {
			if !u {
				return i
			}
		}
		return -1
	}
	next := 0 // next queued slot
	start := func(sp spec, lane int, telem *scs.StreamSet) (*Session, error) {
		s, err := e.newSession(sp, lane, telem, batchPat, batchSensor)
		if err != nil {
			return nil, err
		}
		if sp.restore != nil {
			// A restored session resumes mid-flight: load every component's
			// captured state onto the fresh lane and emit no start event —
			// its original admission already did.
			if err := e.restoreSessionState(s, sp.restore, bm, batchTelem, batchSensor); err != nil {
				return nil, err
			}
		}
		laneUsed[lane] = true
		if laneMargins != nil {
			// FromMonitor telemetry reads the shard's batched monitor at
			// this session's lane.
			s.margin = laneMargin{m: laneMargins, lane: lane}
		}
		if sp.restore == nil {
			e.emit(shard, Event{Kind: EventSessionStart, Session: s.Index, PatientIdx: s.PatientIdx, Replica: s.Replica, Group: s.group})
		}
		return s, nil
	}
	live := make([]*Session, 0, window)
	if cfg.Restore != nil {
		// Restored deal: this shard resumes the snapshot sessions whose
		// slot maps to it, lanes assigned in slot order. A restore failure
		// here is fatal — a fleet-level restore must be all-or-nothing.
		for i := range cfg.Restore.Sessions {
			ss := &cfg.Restore.Sessions[i]
			if ss.Slot%cfg.Parallel != shard {
				continue
			}
			lane := freeLane()
			if lane < 0 {
				e.errs[shard] = fmt.Errorf("fleet: shard %d has no free lane for restored session %d", shard, ss.Slot)
				return
			}
			sp, err := restoredSpec(ss)
			if err != nil {
				e.errs[shard] = fmt.Errorf("fleet: restore slot %d: %w", ss.Slot, err)
				return
			}
			s, err := start(sp, lane, nil)
			if err != nil {
				e.errs[shard] = err
				return
			}
			live = append(live, s)
		}
	}
	for lane := 0; lane < window; lane++ {
		s, err := start(cfg.specFor(slots[next], 0), lane, nil)
		if err != nil {
			e.errs[shard] = err
			return
		}
		next++
		live = append(live, s)
	}

	// Per-round scratch for the batched paths.
	lanes := make([]int, 0, capLanes)
	obs := make([]closedloop.Observation, 0, capLanes)
	verdicts := make([]closedloop.Verdict, capLanes)
	var cleanCGM, sensedCGM, tMins, delivered, carbs []float64
	if batchPat != nil {
		sensedCGM = make([]float64, capLanes)
		delivered = make([]float64, capLanes)
		carbs = make([]float64, capLanes)
		if batchSensor != nil {
			cleanCGM = make([]float64, 0, capLanes)
			tMins = make([]float64, 0, capLanes)
		}
	}

	round := 0  // global lock-step round: the shared clock admission gates key on
	rounds := 0 // completed lock-step rounds since the last epoch barrier
	for len(live) > 0 || e.gate != nil {
		if e.gate != nil && round%cfg.AdmitEvery == 0 {
			// Admission gate: all shards rendezvous, the queued operations
			// apply, and this shard picks up its assigned starts plus the
			// fleet-wide eviction set. Gates fire at fixed global rounds, so
			// fleet-shape changes are lock-step and — for a fixed schedule —
			// deterministic at any parallelism (admission.go).
			starts, evict, snaps := e.gate.rendezvous(shard, round)
			terminal := false
			for _, col := range snaps {
				// Snapshot collectors see the pre-gate live set: a group
				// snapshot captures the tenant as it ran into this gate, and
				// a terminal drain captures everything before exiting.
				e.shardSnapshots(col, live, bm, batchTelem, batchSensor)
				terminal = terminal || col.terminal
			}
			if terminal {
				// Drained: the fleet stops here by design, so this is a clean
				// exit — the sink epoch buffers are empty at an aligned drain
				// gate (the alignment invariant in snapshot.go).
				cleanExit = true
				return
			}
			for i := len(live) - 1; i >= 0; i-- {
				s := live[i]
				if !evict[s.Index] {
					continue
				}
				e.emit(shard, Event{
					Kind: EventSessionEvict, Session: s.Index, PatientIdx: s.PatientIdx,
					Replica: s.Replica, Group: s.group, Step: s.StepIndex(),
				})
				e.pool.put(s.Finish().Samples)
				laneUsed[s.lane] = false
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			for _, sp := range starts {
				lane := freeLane()
				if lane < 0 {
					// Unreachable while the gate's capacity check holds (lanes
					// are sized to MaxSessions); fail loudly rather than step a
					// corrupt bank.
					e.errs[shard] = fmt.Errorf("fleet: shard %d has no free lane for admitted session %d", shard, sp.index)
					return
				}
				if bm != nil {
					bm.ResetLane(lane)
				}
				if batchTelem != nil {
					batchTelem.ResetLane(lane)
				}
				s, err := start(sp, lane, nil)
				if err != nil {
					if sp.restore != nil {
						// A bad session snapshot rejects that admission, not
						// the fleet: unregister the slot (the lane was never
						// marked used and its banks re-reset on next use).
						e.gate.failRestore(shard, sp, err)
						continue
					}
					e.errs[shard] = err
					return
				}
				live = append(live, s)
			}
		}

		select {
		case <-e.ctx.Done():
			if !cfg.Continuous {
				e.errs[shard] = fmt.Errorf("fleet: run cancelled: %w", e.ctx.Err())
			}
			return
		default:
		}

		switch {
		case len(live) == 0:
			// An empty admission-controlled shard still walks the round
			// clock (and the sink barriers below) so it stays lock-step
			// with the fleet.
		case batchPat != nil:
			// Fully batched round: one sensor sweep, the monitor decision
			// (batched or per-session), then one struct-of-arrays ODE step
			// advances every live session's physiology together. Each
			// stage runs per lane in the same order with the same
			// arithmetic as the scalar cycle, so traces stay identical.
			lanes = lanes[:0]
			for _, s := range live {
				lanes = append(lanes, s.lane)
			}
			if batchSensor != nil {
				cleanCGM, tMins = cleanCGM[:0], tMins[:0]
				for _, s := range live {
					cleanCGM = append(cleanCGM, s.st.CleanCGM())
					tMins = append(tMins, s.st.CycleTime())
				}
				batchSensor.ReadLanes(lanes, cleanCGM, tMins, sensedCGM[:len(live)])
			} else {
				for i, s := range live {
					sensedCGM[i] = s.st.CleanCGM()
				}
			}
			obs = obs[:0]
			for i, s := range live {
				obs = append(obs, s.st.BeginStepSensed(sensedCGM[i]))
			}
			if bm != nil {
				bm.StepBatch(lanes, obs, verdicts[:len(live)])
			} else {
				for i, s := range live {
					verdicts[i] = s.st.MonitorVerdict(obs[i])
				}
			}
			for i, s := range live {
				// The plan's scheduled meal for this cycle rides the same
				// batched ODE step as the insulin; an explicit zero is
				// bit-identical to the nil carb path.
				carbs[i] = s.st.PendingCarb()
				delivered[i] = s.st.FinishStepDeferred(verdicts[i])
			}
			batchPat.StepLanes(lanes, delivered[:len(live)], carbs[:len(live)], cfg.CycleMin)
		case bm != nil:
			lanes, obs = lanes[:0], obs[:0]
			for _, s := range live {
				lanes = append(lanes, s.lane)
				obs = append(obs, s.BeginStep())
			}
			bm.StepBatch(lanes, obs, verdicts[:len(live)])
			for i, s := range live {
				s.FinishStep(verdicts[i])
			}
		default:
			for _, s := range live {
				s.Step()
			}
		}
		if batchTelem != nil && len(live) > 0 {
			// One batched rule-stream push covers the whole window's
			// telemetry for this cycle. The samples are copied once here
			// and shared with noteStep below.
			telemSamples, telemStates, telemLanes = telemSamples[:0], telemStates[:0], telemLanes[:0]
			for _, s := range live {
				sample, ok := s.st.LastSample()
				if !ok {
					e.errs[shard] = fmt.Errorf("fleet: session %d stepped without a sample", s.Index)
					return
				}
				telemSamples = append(telemSamples, sample)
				telemLanes = append(telemLanes, s.lane)
			}
			for i := range telemSamples {
				telemStates = append(telemStates, scs.StateFromSample(&telemSamples[i]))
			}
			if err := batchTelem.PushLanes(telemLanes, telemStates, telemVerdicts[:len(live)]); err != nil {
				e.errs[shard] = fmt.Errorf("fleet: shard %d telemetry: %w", shard, err)
				return
			}
		}
		for i, s := range live {
			var sample *trace.Sample
			var bv *scs.StreamVerdict
			if batchTelem != nil {
				sample, bv = &telemSamples[i], &telemVerdicts[i]
			}
			if err := e.noteStep(shard, s, sample, bv); err != nil {
				e.errs[shard] = err
				return
			}
		}
		e.steps.Add(int64(len(live)))

		// Retire finished sessions, refilling their lane from the queue
		// (finite mode) or with the next replica (continuous mode).
		for i := len(live) - 1; i >= 0; i-- {
			s := live[i]
			if !s.Done() {
				continue
			}
			e.finalize(shard, s)
			var refill *spec
			switch {
			case cfg.Continuous && e.ctx.Err() == nil:
				refill = &spec{
					index: s.Index, patientIdx: s.PatientIdx,
					scenIdx: s.scenIdx, replica: s.Replica + 1, program: s.program,
					group: s.group, newMonitor: s.newMonitor, mitigate: s.mitigate,
				}
			case !cfg.Continuous && next < len(slots):
				sp := cfg.specFor(slots[next], 0)
				next++
				refill = &sp
			}
			if refill == nil {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			if bm != nil {
				bm.ResetLane(s.lane)
			}
			if batchTelem != nil {
				batchTelem.ResetLane(s.lane)
			}
			// The retired session's telemetry streams reset and carry
			// over, so continuous-mode replica churn does not rebuild
			// rule sets.
			ns, err := start(*refill, s.lane, s.telemetry)
			if err != nil {
				e.errs[shard] = err
				return
			}
			live[i] = ns
		}

		if e.sinks != nil && cfg.SinkEpoch > 0 {
			rounds++
			if rounds == cfg.SinkEpoch {
				rounds = 0
				frontier := math.MaxInt
				if !cfg.Continuous {
					// The smallest session slot this shard will still emit
					// events for: the live window always holds the shard's
					// lowest unfinished slots (queued ones are all higher),
					// so its minimum is the shard's frontier.
					for _, s := range live {
						if s.Index < frontier {
							frontier = s.Index
						}
					}
				}
				e.sinks.await(shard, frontier)
			}
		}
		round++
	}
	// A continuous shard only drains its live window when cancellation
	// stopped the refills mid-round — that exit abandons an open epoch
	// and must not flush it (the cancellation contract in shard_sink.go);
	// checking the context rather than the mode also keeps a finite run
	// that was cancelled on its final round from flushing.
	cleanExit = e.ctx.Err() == nil
}

// noteStep streams the session's first monitor alarm as a live event
// and, when telemetry is attached, emits the cycle's robustness margin
// — from the shard-batched push (bv), the session's own streaming STL
// rule set, or (FromMonitor) the monitor's single evaluation, so alarm
// and telemetry never evaluate the rules twice. A non-nil sample is the
// cycle's already-copied last sample (the batched path shares the copy
// it made for the rule push); nil makes noteStep fetch it.
func (e *engine) noteStep(shard int, s *Session, preSample *trace.Sample, bv *scs.StreamVerdict) error {
	hasTelemetry := bv != nil || s.telemetry != nil || s.margin != nil
	if !hasTelemetry && s.alarmed {
		return nil // nothing left to observe: skip the sample copy
	}
	sample := preSample
	if sample == nil {
		sm, ok := s.st.LastSample()
		if !ok {
			return nil
		}
		sample = &sm
	}
	if !s.alarmed && sample.Alarm {
		s.alarmed = true
		e.emit(shard, Event{
			Kind: EventAlarm, Session: s.Index, PatientIdx: s.PatientIdx,
			Replica: s.Replica, Group: s.group, Step: sample.Step, Hazard: sample.AlarmHazard,
		})
	}
	if !hasTelemetry {
		return nil
	}
	var v scs.StreamVerdict
	switch {
	case bv != nil:
		v = *bv
	case s.margin != nil:
		sv, ok := s.margin.StreamVerdict()
		if !ok {
			return fmt.Errorf("fleet: session %d: monitor produced no streaming verdict", s.Index)
		}
		v = sv
	default:
		var err error
		if v, err = s.telemetry.Push(scs.StateFromSample(sample)); err != nil {
			return fmt.Errorf("fleet: session %d telemetry: %w", s.Index, err)
		}
	}
	if every := e.cfg.Telemetry.Every; every == 1 || (sample.Step+1)%every == 0 {
		e.emit(shard, Event{
			Kind: EventRobustness, Session: s.Index, PatientIdx: s.PatientIdx,
			Replica: s.Replica, Group: s.group, Step: sample.Step,
			Robustness: v.MinRobust, Rule: v.WorstRule,
			Margin: v.Margin, MarginRule: v.Rule, Hazard: v.Hazard,
		})
	}
	return nil
}

// finalize labels a completed session, folds it into the counters,
// streams its terminal events, and either retains or recycles the trace.
func (e *engine) finalize(shard int, s *Session) {
	tr := s.Finish()
	if s.alarmed {
		e.alarmed.Add(1)
	}
	hazard := tr.DominantHazard()
	if hazard != trace.HazardNone {
		e.hazardous.Add(1)
		e.emit(shard, Event{
			Kind: EventHazard, Session: s.Index, PatientIdx: s.PatientIdx,
			Replica: s.Replica, Group: s.group, Step: tr.FirstHazardStep(), Hazard: hazard,
		})
	}
	done := e.completed.Add(1)
	e.emit(shard, Event{
		Kind: EventSessionDone, Session: s.Index, PatientIdx: s.PatientIdx,
		Replica: s.Replica, Group: s.group, Step: tr.Len(), Hazard: hazard, Completed: done,
	})
	if pe := e.cfg.ProgressEvery; pe > 0 && done%int64(pe) == 0 {
		e.emit(shard, Event{Kind: EventProgress, Completed: done})
	}
	if e.traces != nil {
		e.traces[s.Index] = tr
	} else {
		e.pool.put(tr.Samples)
	}
}

// newSession builds the patient, controller, monitor, sensor, telemetry,
// and stepper for one session slot. A telemetry stream set handed in
// from a retired session is reset and reused. With a batched patient
// bank the session's physiology is its lane of the bank (configured
// here) and its sensor joins the shard's batched sensor sweep; the
// session RNG seeds the lane's noise stream exactly as the scalar path
// would, so the two paths draw identical noise.
func (e *engine) newSession(sp spec, lane int, telem *scs.StreamSet, batchPat sim.BatchPatient, batchSensor *sensor.BatchModel) (*Session, error) {
	cfg := &e.cfg

	// Resolve the session's scenario: an inline program (admitted with
	// AdmitSpec.Program, compiled here against the fleet horizon), a
	// compiled table entry (the default), or a legacy enum scenario (the
	// differential oracle, stepped through the original Fault path).
	var prog fault.Program
	var plan *fault.Plan
	var legacy *fault.Scenario
	switch {
	case sp.program != nil:
		prog = *sp.program
		pl, err := prog.Compile(cfg.Steps, cfg.CycleMin)
		if err != nil {
			return nil, fmt.Errorf("fleet: session %d (patient %d): %w", sp.index, sp.patientIdx, err)
		}
		plan = pl
	case len(cfg.LegacyScenarios) > 0:
		sc := cfg.LegacyScenarios[sp.scenIdx]
		legacy = &sc
		prog = sc.Program()
	default:
		prog = cfg.Scenarios[sp.scenIdx]
		plan = cfg.plans[sp.scenIdx]
	}
	wrap := func(err error) error {
		return fmt.Errorf("fleet: session %d (patient %d, %s): %w",
			sp.index, sp.patientIdx, prog.Name, err)
	}
	var patient closedloop.Patient
	if batchPat != nil {
		if err := batchPat.ConfigureLane(lane, sp.patientIdx); err != nil {
			return nil, wrap(err)
		}
		patient = sim.LaneView{B: batchPat, Lane: lane}
	} else {
		p, err := cfg.Platform.NewPatient(sp.patientIdx)
		if err != nil {
			return nil, wrap(err)
		}
		patient = p
	}
	ctrl, err := cfg.Platform.NewController(patient.Basal())
	if err != nil {
		return nil, wrap(err)
	}
	nm := cfg.NewMonitor
	if sp.newMonitor != nil {
		// An admitted session's monitor override (AdmitSpec.NewMonitor).
		nm = sp.newMonitor
	}
	var mon monitor.Monitor
	if nm != nil {
		if mon, err = nm(sp.patientIdx); err != nil {
			return nil, wrap(err)
		}
	}
	seed := sessionSeed(cfg.Seed, sp)
	if sp.restore != nil {
		// A restored session keeps the seed its stream was built from —
		// its trajectory must not depend on the slot it lands on.
		seed = sp.restore.Seed
	}
	src := &countingSource{src: rand.NewSource(seed)}
	rng := rand.New(src)
	opts := closedloop.StepperOptions{Samples: e.pool.get()}
	var sensorModel *sensor.Model
	if cfg.Sensor != nil {
		if batchSensor != nil {
			// The lane joins the shard's batched sensor sweep instead of
			// hooking the stepper: same config, same per-session RNG, so
			// the lane's noise stream is the scalar model's stream.
			if err := batchSensor.SetLane(lane, *cfg.Sensor, rng); err != nil {
				return nil, wrap(err)
			}
		} else {
			sensorModel, err = sensor.New(*cfg.Sensor, rng)
			if err != nil {
				return nil, wrap(err)
			}
			opts.Sensor = sensorModel.Read
		}
	}
	mitigation := cfg.Mitigation
	mitigation.Enabled = (cfg.Mitigate || sp.mitigate) && (mon != nil || cfg.NewBatchMonitor != nil)
	loopCfg := closedloop.Config{
		Platform:   cfg.Platform.Name + "/" + ctrl.Name(),
		Steps:      cfg.Steps,
		CycleMin:   cfg.CycleMin,
		Patient:    patient,
		Controller: ctrl,
		Monitor:    mon,
		Mitigation: mitigation,
	}
	if legacy != nil {
		loopCfg.InitialBG = legacy.InitialBG
		if legacy.Fault.Duration > 0 {
			f := legacy.Fault
			loopCfg.Fault = &f
		}
	} else {
		loopCfg.Plan = plan // InitialBG resolves from the plan
	}
	st, err := closedloop.NewStepper(loopCfg, opts)
	if err != nil {
		return nil, wrap(err)
	}
	var margin marginMonitor
	if t := cfg.Telemetry; t != nil {
		switch {
		case t.FromMonitor:
			// One-evaluation invariant: telemetry reads the monitor's own
			// streaming verdicts instead of attaching a second rule set.
			// With a batched monitor the shard assigns the lane adapter
			// after construction.
			if nm != nil {
				mm, ok := mon.(marginMonitor)
				if !ok {
					return nil, wrap(fmt.Errorf(
						"fleet: Telemetry.FromMonitor requires a margin-carrying monitor, got %T", mon))
				}
				margin = mm
			}
		case !t.PerSession:
			// Default: the shard evaluates telemetry batched across its
			// whole live window; nothing to attach per session.
		case telem != nil:
			telem.Reset()
		default:
			telem, err = scs.NewStreamSet(t.Rules, t.Thresholds, t.Params, cfg.CycleMin)
			if err != nil {
				return nil, wrap(err)
			}
		}
	}
	if sp.restore != nil {
		// Fast-forward the fresh stream to the captured draw position: no
		// construction above consumes the RNG, so burning Draws values
		// leaves the stream exactly where the snapshot cut it.
		for i := uint64(0); i < sp.restore.Draws; i++ {
			src.src.Int63()
		}
		src.n = sp.restore.Draws
	}
	return &Session{
		Index: sp.index, PatientIdx: sp.patientIdx, Replica: sp.replica,
		Program: prog, scenIdx: sp.scenIdx, program: sp.program, group: sp.group,
		newMonitor: sp.newMonitor, mitigate: sp.mitigate,
		lane: lane, rng: rng, seed: seed, src: src,
		mon: mon, sensorModel: sensorModel, st: st,
		telemetry: telem, margin: margin,
	}, nil
}

// sessionSeed derives a session's RNG stream from its coordinates with a
// splitmix64-style mix, so streams are decorrelated, unique per
// slot x replica, and independent of scheduling.
func sessionSeed(seed int64, sp spec) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [4]uint64{
		uint64(sp.index) + 1,
		uint64(sp.patientIdx) + 1,
		uint64(sp.scenIdx) + 1,
		uint64(sp.replica) + 1,
	} {
		z += v * 0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
