package stl

import (
	"math"
	"testing"
	"testing/quick"
)

// randTrace builds a trace over one variable from raw int8 values.
func randTrace(vals []int8) *Trace {
	tr, _ := NewTrace(1)
	series := make([]float64, len(vals))
	for i, v := range vals {
		series[i] = float64(v)
	}
	_ = tr.Set("x", series)
	return tr
}

// Property: F φ ≡ true U φ (eventually is until with a trivial left arm).
func TestEventuallyIsTrivialUntil(t *testing.T) {
	f := func(vals []int8, th int8) bool {
		if len(vals) == 0 {
			return true
		}
		tr := randTrace(vals)
		atom := &Atom{Var: "x", Op: OpGT, Threshold: float64(th)}
		ev := &Eventually{Bounds: Unbounded, Child: atom}
		until := &Until{Bounds: Unbounded, L: Const(true), R: atom}
		for i := range vals {
			s1, e1 := ev.Sat(tr, i)
			s2, e2 := until.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: O φ ≡ true S φ (once is since with a trivial left arm).
func TestOnceIsTrivialSince(t *testing.T) {
	f := func(vals []int8, th int8) bool {
		if len(vals) == 0 {
			return true
		}
		tr := randTrace(vals)
		atom := &Atom{Var: "x", Op: OpLT, Threshold: float64(th)}
		once := &Once{Bounds: Unbounded, Child: atom}
		since := &Since{Bounds: Unbounded, L: Const(true), R: atom}
		for i := range vals {
			s1, e1 := once.Sat(tr, i)
			s2, e2 := since.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: H φ ≡ not O not φ (past-time De Morgan duality), including
// robustness values.
func TestHistoricallyOnceDuality(t *testing.T) {
	f := func(vals []int8, th int8) bool {
		if len(vals) == 0 {
			return true
		}
		tr := randTrace(vals)
		atom := &Atom{Var: "x", Op: OpGE, Threshold: float64(th)}
		h := &Historically{Bounds: Unbounded, Child: atom}
		dual := &Not{Child: &Once{Bounds: Unbounded, Child: &Not{Child: atom}}}
		for i := range vals {
			s1, e1 := h.Sat(tr, i)
			s2, e2 := dual.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				return false
			}
			r1, _ := h.Robustness(tr, i)
			r2, _ := dual.Robustness(tr, i)
			if math.Abs(r1-r2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: implication agrees with its ¬L ∨ R encoding.
func TestImplicationEncoding(t *testing.T) {
	f := func(vals []int8, a, b int8) bool {
		if len(vals) == 0 {
			return true
		}
		tr := randTrace(vals)
		l := &Atom{Var: "x", Op: OpGT, Threshold: float64(a)}
		r := &Atom{Var: "x", Op: OpLT, Threshold: float64(b)}
		imp := &Implies{L: l, R: r}
		enc := NewOr(&Not{Child: l}, r)
		for i := range vals {
			s1, e1 := imp.Sat(tr, i)
			s2, e2 := enc.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				return false
			}
			r1, _ := imp.Robustness(tr, i)
			r2, _ := enc.Robustness(tr, i)
			if math.Abs(r1-r2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: narrowing a Globally window never turns satisfaction into
// violation (G over a superset window is at least as strong).
func TestGloballyWindowMonotone(t *testing.T) {
	f := func(vals []int8, th int8, cut uint8) bool {
		if len(vals) < 2 {
			return true
		}
		tr := randTrace(vals)
		atom := &Atom{Var: "x", Op: OpGT, Threshold: float64(th)}
		full := float64(len(vals) - 1)
		narrow := float64(int(cut) % len(vals))
		gFull := &Globally{Bounds: Bounds{A: 0, B: full}, Child: atom}
		gNarrow := &Globally{Bounds: Bounds{A: 0, B: narrow}, Child: atom}
		sFull, err := gFull.Sat(tr, 0)
		if err != nil {
			return false
		}
		sNarrow, err := gNarrow.Sat(tr, 0)
		if err != nil {
			return false
		}
		// full window satisfied implies narrow window satisfied.
		return !sFull || sNarrow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every formula the rule tables produce re-parses to an
// equivalent formula through its String rendering (printer/parser
// agreement on randomized atoms).
func TestPrinterParserAgreement(t *testing.T) {
	f := func(vals []int8, th int8, opRaw, shape uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tr := randTrace(vals)
		ops := []CmpOp{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}
		atom := &Atom{Var: "x", Op: ops[int(opRaw)%len(ops)], Threshold: float64(th)}
		var formula Formula
		switch shape % 5 {
		case 0:
			formula = atom
		case 1:
			formula = &Globally{Bounds: Bounds{A: 0, B: 3}, Child: atom}
		case 2:
			formula = &Not{Child: atom}
		case 3:
			formula = &Implies{L: atom, R: Const(true)}
		default:
			formula = &Once{Bounds: Bounds{A: 0, B: 5}, Child: atom}
		}
		reparsed, err := Parse(formula.String())
		if err != nil {
			return false
		}
		for i := range vals {
			s1, e1 := formula.Sat(tr, i)
			s2, e2 := reparsed.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
