package stl

import (
	"fmt"
	"math"
)

// Stream is the incremental streaming evaluator for past-only formulas:
// each temporal operator compiles to a stateful node — ring buffers for
// the bounded-history delay lines, monotonic (Lemire) deques for the
// Once/Historically window extrema, and a clamp-merge candidate deque
// for bounded Since — so every Push costs O(1) amortized and the total
// retained state is O(sum of window lengths), independent of how long
// the session runs. Verdicts and robustness are exactly equal, sample
// for sample, to evaluating the formula's Sat/Robustness on the full
// recorded trace (the differential property tests in prop_test.go
// enforce this on randomized formulas).
//
// Every variable the formula references must be present in every pushed
// sample; a missing variable is an error (the offline trace semantics
// backfill NaN, which silently poisons windowed extrema — a streaming
// hazard monitor should fail loudly instead).
type Stream struct {
	formula Formula
	root    streamNode
	vars    []string // every variable the formula references
	dt      float64
	n       int

	lastSat bool
	lastRob float64

	// ctx is reused across pushes so the hot path stays allocation-free
	// (a per-push context would escape through the node interface).
	ctx stepCtx
}

// NewStream compiles a past-only formula for streaming evaluation at
// sampling period dtMin minutes.
func NewStream(f Formula, dtMin float64) (*Stream, error) {
	if f == nil {
		return nil, fmt.Errorf("stl: nil formula")
	}
	if dtMin <= 0 {
		return nil, fmt.Errorf("stl: non-positive sampling period %v", dtMin)
	}
	if !PastOnly(f) {
		return nil, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	root, err := compileStream(f, dtMin)
	if err != nil {
		return nil, err
	}
	return &Stream{formula: f, root: root, vars: formulaVars(f), dt: dtMin}, nil
}

// formulaVars collects the distinct variable names a formula reads, in
// first-occurrence order.
func formulaVars(f Formula) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch n := f.(type) {
		case *Atom:
			if !seen[n.Var] {
				seen[n.Var] = true
				out = append(out, n.Var)
			}
		case *Not:
			walk(n.Child)
		case *And:
			for _, c := range n.Children {
				walk(c)
			}
		case *Or:
			for _, c := range n.Children {
				walk(c)
			}
		case *Implies:
			walk(n.L)
			walk(n.R)
		case *Globally:
			walk(n.Child)
		case *Eventually:
			walk(n.Child)
		case *Until:
			walk(n.L)
			walk(n.R)
		case *Once:
			walk(n.Child)
		case *Historically:
			walk(n.Child)
		case *Since:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(f)
	return out
}

// Formula returns the compiled formula.
func (s *Stream) Formula() Formula { return s.formula }

// Dt returns the sampling period in minutes.
func (s *Stream) Dt() float64 { return s.dt }

// Len returns the number of samples pushed.
func (s *Stream) Len() int { return s.n }

// Push consumes one sample and returns boolean satisfaction and the
// robustness margin at that sample. A sample missing a referenced
// variable is rejected before any operator state advances, so the
// stream stays consistent and the caller may push a corrected sample.
func (s *Stream) Push(sample map[string]float64) (bool, float64, error) {
	for _, v := range s.vars {
		if _, ok := sample[v]; !ok {
			return false, 0, fmt.Errorf("stl: unknown variable %q", v)
		}
	}
	s.ctx.sample, s.ctx.err = sample, nil
	sat, rob := s.root.step(&s.ctx)
	s.ctx.sample = nil
	if s.ctx.err != nil {
		return false, 0, s.ctx.err
	}
	s.n++
	s.lastSat, s.lastRob = sat, rob
	return sat, rob, nil
}

// Last returns the verdict and robustness at the newest sample.
func (s *Stream) Last() (sat bool, rob float64, err error) {
	if s.n == 0 {
		return false, 0, fmt.Errorf("stl: no samples pushed")
	}
	return s.lastSat, s.lastRob, nil
}

// StateSamples returns the total number of buffered per-sample entries
// across all operator nodes — the quantity that must stay O(window)
// regardless of how many samples have been pushed (asserted by the
// boundedness tests).
func (s *Stream) StateSamples() int { return s.root.state() }

// Reset clears all operator state, as if no samples had been pushed.
func (s *Stream) Reset() {
	s.root.reset()
	s.n = 0
	s.lastSat, s.lastRob = false, 0
}

// stepCtx carries the current sample through one recursive step.
type stepCtx struct {
	sample map[string]float64
	err    error
}

// streamNode is one compiled operator. step consumes the newest sample
// (via ctx) and returns satisfaction and robustness at that sample.
type streamNode interface {
	step(ctx *stepCtx) (bool, float64)
	state() int
	reset()
}

// compileStream lowers a past-only formula to its stateful node tree.
// Minute bounds convert to inclusive sample offsets exactly as
// Bounds.window does, so streaming and offline evaluation agree on
// window edges (including empty fractional windows).
func compileStream(f Formula, dt float64) (streamNode, error) {
	switch n := f.(type) {
	case *Atom:
		if n.Op < OpLT || n.Op > OpNE {
			return nil, fmt.Errorf("stl: invalid comparison op %d", int(n.Op))
		}
		return &atomNode{atom: *n}, nil
	case Const:
		return &constNode{value: bool(n)}, nil
	case *Not:
		c, err := compileStream(n.Child, dt)
		if err != nil {
			return nil, err
		}
		return &notNode{child: c}, nil
	case *And:
		cs, err := compileChildren(n.Children, dt)
		if err != nil {
			return nil, err
		}
		return &andNode{children: cs}, nil
	case *Or:
		cs, err := compileChildren(n.Children, dt)
		if err != nil {
			return nil, err
		}
		return &orNode{children: cs}, nil
	case *Implies:
		l, err := compileStream(n.L, dt)
		if err != nil {
			return nil, err
		}
		r, err := compileStream(n.R, dt)
		if err != nil {
			return nil, err
		}
		return &impliesNode{l: l, r: r}, nil
	case *Once:
		c, err := compileStream(n.Child, dt)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, dt)
		if err != nil {
			return nil, err
		}
		return newWindowNode(c, lo, hi, false), nil
	case *Historically:
		c, err := compileStream(n.Child, dt)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, dt)
		if err != nil {
			return nil, err
		}
		return newWindowNode(c, lo, hi, true), nil
	case *Since:
		l, err := compileStream(n.L, dt)
		if err != nil {
			return nil, err
		}
		r, err := compileStream(n.R, dt)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, dt)
		if err != nil {
			return nil, err
		}
		return newSinceNode(l, r, lo, hi), nil
	default:
		return nil, fmt.Errorf("stl: cannot stream %T", f)
	}
}

func compileChildren(children []Formula, dt float64) ([]streamNode, error) {
	out := make([]streamNode, len(children))
	for i, c := range children {
		n, err := compileStream(c, dt)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// pastWindow converts minute bounds to inclusive sample offsets; hi < 0
// encodes an unbounded window (back to the first sample). It delegates
// to the same Bounds.window conversion the offline evaluator uses —
// with horizon -1 an unbounded B comes back as exactly that sentinel —
// so streaming and offline can never disagree on window edges.
func pastWindow(b Bounds, dt float64) (lo, hi int, err error) {
	return b.window(dt, -1)
}

// --- stateless nodes -------------------------------------------------

type atomNode struct{ atom Atom }

func (a *atomNode) step(ctx *stepCtx) (bool, float64) {
	v, ok := ctx.sample[a.atom.Var]
	if !ok {
		if ctx.err == nil {
			ctx.err = fmt.Errorf("stl: unknown variable %q", a.atom.Var)
		}
		return false, math.NaN()
	}
	var sat bool
	var rob float64
	switch a.atom.Op {
	case OpLT:
		sat, rob = v < a.atom.Threshold, a.atom.Threshold-v
	case OpLE:
		sat, rob = v <= a.atom.Threshold, a.atom.Threshold-v
	case OpGT:
		sat, rob = v > a.atom.Threshold, v-a.atom.Threshold
	case OpGE:
		sat, rob = v >= a.atom.Threshold, v-a.atom.Threshold
	case OpEQ:
		sat, rob = v == a.atom.Threshold, -math.Abs(v-a.atom.Threshold)
	case OpNE:
		sat, rob = v != a.atom.Threshold, math.Abs(v-a.atom.Threshold)
	}
	return sat, rob
}

func (a *atomNode) state() int { return 0 }
func (a *atomNode) reset()     {}

type constNode struct{ value bool }

func (c *constNode) step(*stepCtx) (bool, float64) {
	if c.value {
		return true, math.Inf(1)
	}
	return false, math.Inf(-1)
}

func (c *constNode) state() int { return 0 }
func (c *constNode) reset()     {}

type notNode struct{ child streamNode }

func (n *notNode) step(ctx *stepCtx) (bool, float64) {
	sat, rob := n.child.step(ctx)
	return !sat, -rob
}

func (n *notNode) state() int { return n.child.state() }
func (n *notNode) reset()     { n.child.reset() }

type andNode struct{ children []streamNode }

func (a *andNode) step(ctx *stepCtx) (bool, float64) {
	sat := true
	rob := math.Inf(1)
	for _, c := range a.children {
		cs, cr := c.step(ctx)
		sat = sat && cs
		rob = math.Min(rob, cr)
	}
	return sat, rob
}

func (a *andNode) state() int { return childrenState(a.children) }
func (a *andNode) reset()     { resetChildren(a.children) }

type orNode struct{ children []streamNode }

func (o *orNode) step(ctx *stepCtx) (bool, float64) {
	sat := false
	rob := math.Inf(-1)
	for _, c := range o.children {
		cs, cr := c.step(ctx)
		sat = sat || cs
		rob = math.Max(rob, cr)
	}
	return sat, rob
}

func (o *orNode) state() int { return childrenState(o.children) }
func (o *orNode) reset()     { resetChildren(o.children) }

type impliesNode struct{ l, r streamNode }

func (im *impliesNode) step(ctx *stepCtx) (bool, float64) {
	ls, lr := im.l.step(ctx)
	rs, rr := im.r.step(ctx)
	return !ls || rs, math.Max(-lr, rr)
}

func (im *impliesNode) state() int { return im.l.state() + im.r.state() }
func (im *impliesNode) reset()     { im.l.reset(); im.r.reset() }

func childrenState(cs []streamNode) int {
	t := 0
	for _, c := range cs {
		t += c.state()
	}
	return t
}

func resetChildren(cs []streamNode) {
	for _, c := range cs {
		c.reset()
	}
}

// --- shared stateful machinery ---------------------------------------

// delayLine is a fixed-size FIFO that releases each pushed value after
// exactly `size` further pushes: the [A, ...] lower bound of a past
// window delays the child stream by lo samples.
type delayLine struct {
	buf  []float64
	head int
	n    int
}

func newDelayLine(size int) *delayLine {
	return &delayLine{buf: make([]float64, size)}
}

// push inserts v and returns the value falling out of the line, if any.
// A zero-size line passes v straight through.
func (d *delayLine) push(v float64) (out float64, ok bool) {
	if len(d.buf) == 0 {
		return v, true
	}
	if d.n < len(d.buf) {
		d.buf[(d.head+d.n)%len(d.buf)] = v
		d.n++
		return 0, false
	}
	out = d.buf[d.head]
	d.buf[d.head] = v
	d.head = (d.head + 1) % len(d.buf)
	return out, true
}

func (d *delayLine) state() int { return d.n }

func (d *delayLine) reset() {
	d.head, d.n = 0, 0
}

// monoDeque is a Lemire sliding-window extremum deque: values are kept
// monotonic (non-increasing for max, non-decreasing for min) from front
// to back, with indices increasing, so the window extremum is always at
// the front. Pushes are O(1) amortized; memory is O(window).
type monoDeque struct {
	idx   []int
	val   []float64
	head  int
	isMin bool
}

func newMonoDeque(capacity int, isMin bool) *monoDeque {
	if capacity < 1 {
		capacity = 1
	}
	return &monoDeque{
		idx:   make([]int, 0, capacity),
		val:   make([]float64, 0, capacity),
		isMin: isMin,
	}
}

// dominates reports whether a new value v makes an older value u
// redundant (the new index is larger, so on ties the new entry wins).
func (q *monoDeque) dominates(v, u float64) bool {
	if q.isMin {
		return v <= u
	}
	return v >= u
}

func (q *monoDeque) push(i int, v float64) {
	for q.len() > 0 && q.dominates(v, q.val[len(q.val)-1]) {
		q.idx = q.idx[:len(q.idx)-1]
		q.val = q.val[:len(q.val)-1]
	}
	if q.head > 0 && q.len() == 0 {
		// Compact so the slices do not creep rightward forever.
		q.idx = q.idx[:0]
		q.val = q.val[:0]
		q.head = 0
	}
	if q.head > 0 && len(q.idx) == cap(q.idx) {
		n := copy(q.idx[:q.len()], q.idx[q.head:])
		copy(q.val[:n], q.val[q.head:])
		q.idx = q.idx[:n]
		q.val = q.val[:n]
		q.head = 0
	}
	q.idx = append(q.idx, i)
	q.val = append(q.val, v)
}

// evictBefore drops front entries with index < minIdx.
func (q *monoDeque) evictBefore(minIdx int) {
	for q.len() > 0 && q.idx[q.head] < minIdx {
		q.head++
	}
}

func (q *monoDeque) len() int { return len(q.idx) - q.head }

// front returns the window extremum.
func (q *monoDeque) front() float64 { return q.val[q.head] }

// frontIdx returns the index of the extremum entry.
func (q *monoDeque) frontIdx() int { return q.idx[q.head] }

// popFront removes the extremum entry.
func (q *monoDeque) popFront() { q.head++ }

// pushFront reinserts a merged entry at the extremum end (clamp-merge of
// the bounded-Since candidate deque). The caller guarantees v keeps the
// monotonic invariant and that at least one popFront preceded this call,
// so there is always slack at the front.
func (q *monoDeque) pushFront(i int, v float64) {
	if q.head == 0 {
		panic("stl: pushFront without a preceding popFront")
	}
	q.head--
	q.idx[q.head], q.val[q.head] = i, v
}

func (q *monoDeque) reset() {
	q.idx = q.idx[:0]
	q.val = q.val[:0]
	q.head = 0
}

// --- Once / Historically ---------------------------------------------

// extremumCore computes the sliding extremum of one float64 stream over
// the past window [lo, hi] in sample offsets (hi < 0: unbounded). It is
// instantiated twice per temporal node: once over robustness values and
// once over satisfaction encoded as 0/1 (min = and, max = or), so both
// semantics stream through identical machinery.
type extremumCore struct {
	lo, hi int
	isMin  bool
	i      int // samples consumed

	delay *delayLine
	dq    *monoDeque // bounded window
	agg   float64    // unbounded window running extremum
}

func newExtremumCore(lo, hi int, isMin bool) *extremumCore {
	c := &extremumCore{lo: lo, hi: hi, isMin: isMin, delay: newDelayLine(lo)}
	if hi >= 0 {
		c.dq = newMonoDeque(hi-lo+1, isMin)
	}
	c.resetAgg()
	return c
}

func (c *extremumCore) resetAgg() {
	if c.isMin {
		c.agg = math.Inf(1)
	} else {
		c.agg = math.Inf(-1)
	}
}

// empty is the extremum of an empty window: -Inf for max (Once of
// nothing is false), +Inf for min (Historically of nothing is true).
func (c *extremumCore) empty() float64 {
	if c.isMin {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

func (c *extremumCore) push(v float64) float64 {
	i := c.i
	c.i++
	if c.hi >= 0 && c.lo > c.hi {
		return c.empty() // fractional bounds with no sample offsets
	}
	dv, ok := c.delay.push(v)
	if !ok {
		return c.empty() // window has not reached the first sample yet
	}
	d := i - c.lo // index of the delayed sample
	if c.hi < 0 {
		if c.isMin {
			c.agg = math.Min(c.agg, dv)
		} else {
			c.agg = math.Max(c.agg, dv)
		}
		return c.agg
	}
	c.dq.push(d, dv)
	c.dq.evictBefore(i - c.hi)
	return c.dq.front()
}

func (c *extremumCore) state() int {
	n := c.delay.state()
	if c.dq != nil {
		n += c.dq.len()
	}
	return n
}

func (c *extremumCore) reset() {
	c.i = 0
	c.delay.reset()
	if c.dq != nil {
		c.dq.reset()
	}
	c.resetAgg()
}

// windowNode is Once (max) or Historically (min) over its child.
type windowNode struct {
	child streamNode
	rob   *extremumCore
	sat   *extremumCore
}

func newWindowNode(child streamNode, lo, hi int, isMin bool) *windowNode {
	return &windowNode{
		child: child,
		rob:   newExtremumCore(lo, hi, isMin),
		sat:   newExtremumCore(lo, hi, isMin),
	}
}

func (w *windowNode) step(ctx *stepCtx) (bool, float64) {
	cs, cr := w.child.step(ctx)
	rob := w.rob.push(cr)
	sat := w.sat.push(boolToFloat(cs))
	return sat > 0.5, rob
}

func (w *windowNode) state() int {
	return w.child.state() + w.rob.state() + w.sat.state()
}

func (w *windowNode) reset() {
	w.child.reset()
	w.rob.reset()
	w.sat.reset()
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- Since -----------------------------------------------------------

// sinceCore streams the quantitative Since semantics over one pair of
// float64 streams (phi = left operand, psi = right operand):
//
//	out_i = max over j in [i-hi, i-lo] of
//	        min( psi_j, min over k in (j, i] of phi_k )
//
// Each candidate witness j carries the running value A_i(j) =
// min(psi_j, min phi over (j, i]). On every push all candidates are
// clamped by min(·, phi_i); because min distributes over max, the
// candidates can live in a max-deque where the clamp collapses the
// strictly-greater front prefix into a single entry keeping the newest
// index (clamp-merge), preserving both dominance order and expiry
// correctness. A candidate enters the deque lo pushes after its psi
// sample, pre-clamped with the sliding minimum of phi over the samples
// it skipped, so the [lo, hi] offset window needs no per-step rescans.
// With hi unbounded the whole deque degenerates to one scalar
// recursion: z_i = max(min(z_{i-1}, phi_i), candidate_i).
//
// Boolean Since runs the identical algorithm over {0,1} (min = and,
// max = or). Every push is O(1) amortized; state is O(window).
type sinceCore struct {
	lo, hi int
	i      int

	phiWin   *monoDeque // sliding min of phi over the last lo samples
	psiDelay *delayLine // psi values waiting to become candidates

	cand *monoDeque // bounded hi: candidate max-deque
	z    float64    // unbounded hi: running max
}

func newSinceCore(lo, hi int) *sinceCore {
	c := &sinceCore{lo: lo, hi: hi, psiDelay: newDelayLine(lo)}
	if lo > 0 {
		c.phiWin = newMonoDeque(lo, true)
	}
	if hi >= 0 {
		c.cand = newMonoDeque(hi-lo+1, false)
	}
	c.z = math.Inf(-1)
	return c
}

func (c *sinceCore) push(phi, psi float64) float64 {
	i := c.i
	c.i++
	if c.hi >= 0 && c.lo > c.hi {
		return math.Inf(-1) // fractional bounds with no sample offsets
	}

	// Sliding min of phi over the last lo samples (k in [i-lo+1, i]):
	// the pre-clamp applied to a candidate the moment it enters.
	if c.phiWin != nil {
		c.phiWin.push(i, phi)
		c.phiWin.evictBefore(i - c.lo + 1)
	}

	// The candidate maturing now, if the window reaches back to it.
	dpsi, mature := c.psiDelay.push(psi)
	cv := math.Inf(-1)
	if mature {
		cv = dpsi
		if c.phiWin != nil {
			cv = math.Min(cv, c.phiWin.front())
		}
	}

	if c.hi < 0 {
		// Unbounded window: clamp the running max, fold the candidate.
		c.z = math.Min(c.z, phi)
		if mature {
			c.z = math.Max(c.z, cv)
		}
		return c.z
	}

	// Clamp-merge: every stored candidate predates this sample, so all
	// of them take min(·, phi). Entries strictly above phi form the
	// front prefix of the max-deque; they collapse to value phi, and
	// only the newest (latest-expiring) index needs to survive.
	if c.cand.len() > 0 && c.cand.front() > phi {
		merged := c.cand.frontIdx()
		for c.cand.len() > 0 && c.cand.front() > phi {
			merged = c.cand.frontIdx()
			c.cand.popFront()
		}
		c.cand.pushFront(merged, phi)
	}
	// Expire witnesses older than the window, then admit the new one.
	c.cand.evictBefore(i - c.hi)
	if mature {
		c.cand.push(i-c.lo, cv)
	}
	if c.cand.len() == 0 {
		return math.Inf(-1)
	}
	return c.cand.front()
}

func (c *sinceCore) state() int {
	n := c.psiDelay.state()
	if c.phiWin != nil {
		n += c.phiWin.len()
	}
	if c.cand != nil {
		n += c.cand.len()
	}
	return n
}

func (c *sinceCore) reset() {
	c.i = 0
	c.psiDelay.reset()
	if c.phiWin != nil {
		c.phiWin.reset()
	}
	if c.cand != nil {
		c.cand.reset()
	}
	c.z = math.Inf(-1)
}

// sinceNode is  L S[a,b] R  over its children.
type sinceNode struct {
	l, r streamNode
	rob  *sinceCore
	sat  *sinceCore
}

func newSinceNode(l, r streamNode, lo, hi int) *sinceNode {
	return &sinceNode{
		l: l, r: r,
		rob: newSinceCore(lo, hi),
		sat: newSinceCore(lo, hi),
	}
}

func (s *sinceNode) step(ctx *stepCtx) (bool, float64) {
	ls, lr := s.l.step(ctx)
	rs, rr := s.r.step(ctx)
	rob := s.rob.push(lr, rr)
	sat := s.sat.push(boolToFloat(ls), boolToFloat(rs))
	return sat > 0.5, rob
}

func (s *sinceNode) state() int {
	return s.l.state() + s.r.state() + s.rob.state() + s.sat.state()
}

func (s *sinceNode) reset() {
	s.l.reset()
	s.r.reset()
	s.rob.reset()
	s.sat.reset()
}
