package stl

import (
	"fmt"
	"math"
)

// Stream is the incremental streaming evaluator for past-only formulas:
// each temporal operator compiles to a stateful node — ring buffers for
// the bounded-history delay lines, monotonic (Lemire) deques for the
// Once/Historically window extrema, and a clamp-merge candidate deque
// for bounded Since — so every Push costs O(1) amortized and the total
// retained state is O(sum of window lengths), independent of how long
// the session runs. Verdicts and robustness are exactly equal, sample
// for sample, to evaluating the formula's Sat/Robustness on the full
// recorded trace (the differential property tests in prop_test.go
// enforce this on randomized formulas).
//
// Every variable the formula references must be present in every pushed
// sample; a missing variable is an error (the offline trace semantics
// backfill NaN, which silently poisons windowed extrema — a streaming
// hazard monitor should fail loudly instead).
type Stream struct {
	formula Formula
	root    streamNode
	comp    *compiler
	vals    []float64
	dt      float64
	n       int

	lastSat bool
	lastRob float64

	// ctx is reused across pushes so the hot path stays allocation-free
	// (a per-push context would escape through the node interface).
	ctx stepCtx
}

// NewStream compiles a past-only formula for streaming evaluation at
// sampling period dtMin minutes.
func NewStream(f Formula, dtMin float64) (*Stream, error) {
	if f == nil {
		return nil, fmt.Errorf("stl: nil formula")
	}
	if dtMin <= 0 {
		return nil, fmt.Errorf("stl: non-positive sampling period %v", dtMin)
	}
	if !PastOnly(f) {
		return nil, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	comp := newCompiler(dtMin, false)
	root, err := comp.compile(f)
	if err != nil {
		return nil, err
	}
	return &Stream{
		formula: f, root: root, comp: comp,
		vals: make([]float64, len(comp.vars)), dt: dtMin,
	}, nil
}

// Formula returns the compiled formula.
func (s *Stream) Formula() Formula { return s.formula }

// Dt returns the sampling period in minutes.
func (s *Stream) Dt() float64 { return s.dt }

// Len returns the number of samples pushed.
func (s *Stream) Len() int { return s.n }

// Push consumes one sample and returns boolean satisfaction and the
// robustness margin at that sample. A sample missing a referenced
// variable is rejected before any operator state advances, so the
// stream stays consistent and the caller may push a corrected sample.
//
//fleetvet:noalloc
func (s *Stream) Push(sample map[string]float64) (bool, float64, error) {
	for i, v := range s.comp.vars {
		val, ok := sample[v]
		if !ok {
			return false, 0, fmt.Errorf("stl: unknown variable %q", v)
		}
		s.vals[i] = val
	}
	s.ctx.vals = s.vals
	s.ctx.seq = uint64(s.n) + 1
	sat, rob := s.root.step(&s.ctx)
	s.ctx.vals = nil
	s.n++
	s.lastSat, s.lastRob = sat, rob
	return sat, rob, nil
}

// Last returns the verdict and robustness at the newest sample.
func (s *Stream) Last() (sat bool, rob float64, err error) {
	if s.n == 0 {
		return false, 0, fmt.Errorf("stl: no samples pushed")
	}
	return s.lastSat, s.lastRob, nil
}

// StateSamples returns the total number of buffered per-sample entries
// across all operator nodes — the quantity that must stay O(window)
// regardless of how many samples have been pushed (asserted by the
// boundedness tests).
func (s *Stream) StateSamples() int { return s.root.state() }

// Reset clears all operator state, as if no samples had been pushed.
func (s *Stream) Reset() {
	s.root.reset()
	s.n = 0
	s.lastSat, s.lastRob = false, 0
}

// stepCtx carries the current sample through one recursive step: the
// value vector (indexed by the compiler's variable table) and a push
// sequence number that memoized shared nodes key their caches on.
type stepCtx struct {
	vals []float64
	seq  uint64
}

// streamNode is one compiled operator. step consumes the newest sample
// (via ctx) and returns satisfaction and robustness at that sample.
type streamNode interface {
	step(ctx *stepCtx) (bool, float64)
	state() int
	reset()
}

// compiler lowers past-only formulas to stateful node trees, resolving
// variable names to dense value-vector indices. With interning enabled
// (stream groups) it hash-conses the compiled tree: structurally
// identical subformulas — same atoms, same windows — compile to one
// shared node whose operator state and per-push work exist once per
// group, guarded by a per-push memo so a shared stateful node advances
// exactly once per sample no matter how many formulas contain it.
type compiler struct {
	dt     float64
	vars   []string
	varIdx map[string]int
	cache  map[string]streamNode // canonical rendering -> shared node
	memos  []*memoNode
}

func newCompiler(dt float64, intern bool) *compiler {
	c := &compiler{dt: dt, varIdx: make(map[string]int)}
	if intern {
		c.cache = make(map[string]streamNode)
	}
	return c
}

// varIndex interns a variable name into the value vector.
func (c *compiler) varIndex(name string) int {
	if i, ok := c.varIdx[name]; ok {
		return i
	}
	i := len(c.vars)
	c.vars = append(c.vars, name)
	c.varIdx[name] = i
	return i
}

// compile lowers one formula, sharing previously compiled identical
// subformulas when interning is on. The canonical key is the parser
// syntax rendering, which is injective on the AST (thresholds print at
// shortest-round-trip precision).
func (c *compiler) compile(f Formula) (streamNode, error) {
	if c.cache == nil {
		return c.lower(f)
	}
	key := f.String()
	if n, ok := c.cache[key]; ok {
		return n, nil
	}
	inner, err := c.lower(f)
	if err != nil {
		return nil, err
	}
	out := inner
	if hasState(f) {
		// Only stateful subtrees need the per-push memo: sharing one
		// delay line or window deque between formulas is what must not
		// double-advance. Stateless subtrees are shared bare — a repeated
		// comparison is cheaper than a memo check.
		m := &memoNode{inner: inner}
		c.memos = append(c.memos, m)
		out = m
	}
	c.cache[key] = out
	return out, nil
}

// hasState reports whether a formula's compiled form buffers samples
// (contains a past-time temporal operator).
func hasState(f Formula) bool {
	switch n := f.(type) {
	case *Once, *Historically, *Since:
		return true
	case *Not:
		return hasState(n.Child)
	case *And:
		for _, c := range n.Children {
			if hasState(c) {
				return true
			}
		}
		return false
	case *Or:
		for _, c := range n.Children {
			if hasState(c) {
				return true
			}
		}
		return false
	case *Implies:
		return hasState(n.L) || hasState(n.R)
	default:
		return false
	}
}

// lower compiles one operator, recursing through compile so every
// subformula takes part in sharing. Minute bounds convert to inclusive
// sample offsets exactly as Bounds.window does, so streaming and offline
// evaluation agree on window edges (including empty fractional windows).
func (c *compiler) lower(f Formula) (streamNode, error) {
	switch n := f.(type) {
	case *Atom:
		if n.Op < OpLT || n.Op > OpNE {
			return nil, fmt.Errorf("stl: invalid comparison op %d", int(n.Op))
		}
		return &atomNode{varIdx: c.varIndex(n.Var), op: n.Op, threshold: n.Threshold}, nil
	case Const:
		return &constNode{value: bool(n)}, nil
	case *Not:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		return &notNode{child: child}, nil
	case *And:
		if atoms, ok := flatOrderAtoms(n.Children); ok {
			// Kernel fusion for the dominant rule shape — a flat
			// conjunction of ordering predicates — evaluates as a
			// dispatch- and switch-free linear form per atom.
			fa := &flatAndNode{atoms: make([]fusedAtom, len(atoms))}
			for i, a := range atoms {
				fa.atoms[i] = newFusedAtom(c.varIndex(a.Var), a.Op, a.Threshold)
			}
			return fa, nil
		}
		cs, err := c.compileChildren(n.Children)
		if err != nil {
			return nil, err
		}
		return &andNode{children: cs}, nil
	case *Or:
		cs, err := c.compileChildren(n.Children)
		if err != nil {
			return nil, err
		}
		return &orNode{children: cs}, nil
	case *Implies:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &impliesNode{l: l, r: r}, nil
	case *Once:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newWindowNode(child, lo, hi, false), nil
	case *Historically:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newWindowNode(child, lo, hi, true), nil
	case *Since:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newSinceNode(l, r, lo, hi), nil
	default:
		return nil, fmt.Errorf("stl: cannot stream %T", f)
	}
}

func (c *compiler) compileChildren(children []Formula) ([]streamNode, error) {
	out := make([]streamNode, len(children))
	for i, child := range children {
		n, err := c.compile(child)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// memoNode guards a node shared between formulas of one group: the
// first step of a push advances the inner node, later steps within the
// same push return the cached verdict, so shared stateful operators
// consume each sample exactly once.
type memoNode struct {
	inner   streamNode
	seq     uint64
	sat     bool
	rob     float64
	visited bool // StateSamples dedup walk marker
}

//fleetvet:noalloc
func (m *memoNode) step(ctx *stepCtx) (bool, float64) {
	if m.seq == ctx.seq {
		return m.sat, m.rob
	}
	m.seq = ctx.seq
	m.sat, m.rob = m.inner.step(ctx)
	return m.sat, m.rob
}

// state counts the subtree once per dedup walk: the owning group clears
// every memo's visited flag before walking its roots.
func (m *memoNode) state() int {
	if m.visited {
		return 0
	}
	m.visited = true
	return m.inner.state()
}

func (m *memoNode) reset() {
	m.seq = 0
	m.inner.reset()
}

// StreamGroup evaluates many past-only formulas over one shared sample
// stream with a hash-consed node DAG: identical subformulas (same
// atoms, same windows) compile to a single stateful node shared by
// every formula that contains it, cutting both per-push work and
// retained operator state by the overlap factor. All formulas advance
// together — one Push moves the whole group one sample — which is what
// keeps sharing sound.
type StreamGroup struct {
	comp     *compiler
	formulas []Formula
	roots    []streamNode
	vals     []float64
	sats     []bool
	robs     []float64
	n        int
	ctx      stepCtx
}

// NewStreamGroup creates an empty group at sampling period dtMin
// minutes.
func NewStreamGroup(dtMin float64) (*StreamGroup, error) {
	if dtMin <= 0 {
		return nil, fmt.Errorf("stl: non-positive sampling period %v", dtMin)
	}
	return &StreamGroup{comp: newCompiler(dtMin, true)}, nil
}

// Add compiles a past-only formula into the group and returns its
// index. Formulas may only be added before the first Push (operator
// state of shared nodes would otherwise be mid-stream).
func (g *StreamGroup) Add(f Formula) (int, error) {
	if f == nil {
		return 0, fmt.Errorf("stl: nil formula")
	}
	if g.n > 0 {
		return 0, fmt.Errorf("stl: cannot add formulas to a running group")
	}
	if !PastOnly(f) {
		return 0, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	root, err := g.comp.compile(f)
	if err != nil {
		return 0, err
	}
	g.formulas = append(g.formulas, f)
	g.roots = append(g.roots, root)
	g.sats = append(g.sats, false)
	g.robs = append(g.robs, 0)
	for len(g.vals) < len(g.comp.vars) {
		g.vals = append(g.vals, 0)
	}
	return len(g.roots) - 1, nil
}

// Size returns the number of formulas in the group.
func (g *StreamGroup) Size() int { return len(g.roots) }

// Len returns the number of samples pushed.
func (g *StreamGroup) Len() int { return g.n }

// Dt returns the sampling period in minutes.
func (g *StreamGroup) Dt() float64 { return g.comp.dt }

// Vars returns the variable table: PushVector values are indexed by
// this order. The table grows only in Add, never during pushes.
func (g *StreamGroup) Vars() []string { return g.comp.vars }

// VarIndex resolves a variable name to its PushVector slot.
func (g *StreamGroup) VarIndex(name string) (int, bool) {
	i, ok := g.comp.varIdx[name]
	return i, ok
}

// Push consumes one sample for every formula in the group. A sample
// missing a referenced variable is rejected before any operator state
// advances.
//
//fleetvet:noalloc
func (g *StreamGroup) Push(sample map[string]float64) error {
	for i, name := range g.comp.vars {
		v, ok := sample[name]
		if !ok {
			return fmt.Errorf("stl: unknown variable %q", name)
		}
		g.vals[i] = v
	}
	return g.PushVector(g.vals)
}

// PushVector is the allocation- and map-free push: vals must hold one
// value per Vars() entry, in table order. It is the hot path for
// callers with a fixed vocabulary (e.g. the per-monitor rule sets).
//
//fleetvet:noalloc
func (g *StreamGroup) PushVector(vals []float64) error {
	if len(vals) != len(g.comp.vars) {
		return fmt.Errorf("stl: value vector has %d entries, group reads %d variables",
			len(vals), len(g.comp.vars))
	}
	g.ctx.vals = vals
	g.ctx.seq = uint64(g.n) + 1
	for i, r := range g.roots {
		g.sats[i], g.robs[i] = r.step(&g.ctx)
	}
	g.ctx.vals = nil
	g.n++
	return nil
}

// Sat returns formula i's satisfaction at the newest sample.
func (g *StreamGroup) Sat(i int) bool { return g.sats[i] }

// Rob returns formula i's robustness margin at the newest sample.
func (g *StreamGroup) Rob(i int) float64 { return g.robs[i] }

// Results returns the satisfaction and robustness of every formula at
// the newest sample, indexed by Add order. The slices are reused by the
// next Push; callers that retain them must copy.
func (g *StreamGroup) Results() (sats []bool, robs []float64) { return g.sats, g.robs }

// StateSamples returns the total buffered per-sample entries across the
// group's unique operator nodes: shared windows count once, which is
// the hash-consing saving the boundedness tests assert.
func (g *StreamGroup) StateSamples() int {
	for _, m := range g.comp.memos {
		m.visited = false
	}
	t := 0
	for _, r := range g.roots {
		t += r.state()
	}
	return t
}

// Reset clears all operator state, as if no samples had been pushed.
func (g *StreamGroup) Reset() {
	for _, r := range g.roots {
		r.reset()
	}
	g.n = 0
	for i := range g.sats {
		g.sats[i], g.robs[i] = false, 0
	}
}

// pastWindow converts minute bounds to inclusive sample offsets; hi < 0
// encodes an unbounded window (back to the first sample). It delegates
// to the same Bounds.window conversion the offline evaluator uses —
// with horizon -1 an unbounded B comes back as exactly that sentinel —
// so streaming and offline can never disagree on window edges.
func pastWindow(b Bounds, dt float64) (lo, hi int, err error) {
	return b.window(dt, -1)
}

// --- stateless nodes -------------------------------------------------

type atomNode struct {
	varIdx    int
	op        CmpOp
	threshold float64
}

//fleetvet:noalloc
func (a *atomNode) step(ctx *stepCtx) (bool, float64) {
	v := ctx.vals[a.varIdx]
	var sat bool
	var rob float64
	switch a.op {
	case OpLT:
		sat, rob = v < a.threshold, a.threshold-v
	case OpLE:
		sat, rob = v <= a.threshold, a.threshold-v
	case OpGT:
		sat, rob = v > a.threshold, v-a.threshold
	case OpGE:
		sat, rob = v >= a.threshold, v-a.threshold
	case OpEQ:
		sat, rob = v == a.threshold, -math.Abs(v-a.threshold)
	case OpNE:
		sat, rob = v != a.threshold, math.Abs(v-a.threshold)
	}
	return sat, rob
}

func (a *atomNode) state() int { return 0 }
func (a *atomNode) reset()     {}

type constNode struct{ value bool }

//fleetvet:noalloc
func (c *constNode) step(*stepCtx) (bool, float64) {
	if c.value {
		return true, math.Inf(1)
	}
	return false, math.Inf(-1)
}

func (c *constNode) state() int { return 0 }
func (c *constNode) reset()     {}

type notNode struct{ child streamNode }

//fleetvet:noalloc
func (n *notNode) step(ctx *stepCtx) (bool, float64) {
	sat, rob := n.child.step(ctx)
	return !sat, -rob
}

func (n *notNode) state() int { return n.child.state() }
func (n *notNode) reset()     { n.child.reset() }

// flatOrderAtoms reports whether every child is an ordering predicate
// (<, <=, >, >=) — the shapes that reduce to a linear robustness form.
func flatOrderAtoms(children []Formula) ([]*Atom, bool) {
	out := make([]*Atom, len(children))
	for i, c := range children {
		a, ok := c.(*Atom)
		if !ok || a.Op < OpLT || a.Op > OpGE {
			return nil, false
		}
		out[i] = a
	}
	return out, true
}

// fusedAtom is an ordering predicate precompiled to rob = v·mul + add:
// mul = -1, add = θ for v < θ / v <= θ (rob = θ - v) and mul = 1,
// add = -θ for v > θ / v >= θ (rob = v - θ), exactly the atomNode
// arithmetic with the comparison switch folded away. strict
// distinguishes satisfaction rob > 0 from rob >= 0.
type fusedAtom struct {
	varIdx   int
	mul, add float64
	strict   bool
}

func newFusedAtom(varIdx int, op CmpOp, threshold float64) fusedAtom {
	f := fusedAtom{varIdx: varIdx, mul: 1, add: -threshold, strict: op == OpLT || op == OpGT}
	if op == OpLT || op == OpLE {
		f.mul, f.add = -1, threshold
	}
	return f
}

// flatAndNode is a conjunction of ordering predicates fused into one
// node: the common Safety Context Specification antecedent shape, hot
// enough in per-cycle monitoring to deserve a dispatch- and branch-lean
// loop. Semantics are exactly andNode over the same atoms.
type flatAndNode struct{ atoms []fusedAtom }

//fleetvet:noalloc
func (a *flatAndNode) step(ctx *stepCtx) (bool, float64) {
	sat := true
	rob := math.Inf(1)
	for i := range a.atoms {
		at := &a.atoms[i]
		cr := ctx.vals[at.varIdx]*at.mul + at.add
		// Negated comparisons so a NaN input reads unsatisfied, exactly
		// like the unfused atom's direct v-vs-θ comparison.
		if at.strict {
			if !(cr > 0) {
				sat = false
			}
		} else if !(cr >= 0) {
			sat = false
		}
		// Compare-based min with explicit NaN propagation: equal to the
		// math.Min fold of andNode (a NaN input poisons the conjunction's
		// robustness there too), minus its ±0 branches.
		if cr < rob || cr != cr {
			rob = cr
		}
	}
	return sat, rob
}

func (a *flatAndNode) state() int { return 0 }
func (a *flatAndNode) reset()     {}

type andNode struct{ children []streamNode }

//fleetvet:noalloc
func (a *andNode) step(ctx *stepCtx) (bool, float64) {
	sat := true
	rob := math.Inf(1)
	for _, c := range a.children {
		cs, cr := c.step(ctx)
		sat = sat && cs
		rob = math.Min(rob, cr)
	}
	return sat, rob
}

func (a *andNode) state() int { return childrenState(a.children) }
func (a *andNode) reset()     { resetChildren(a.children) }

type orNode struct{ children []streamNode }

//fleetvet:noalloc
func (o *orNode) step(ctx *stepCtx) (bool, float64) {
	sat := false
	rob := math.Inf(-1)
	for _, c := range o.children {
		cs, cr := c.step(ctx)
		sat = sat || cs
		rob = math.Max(rob, cr)
	}
	return sat, rob
}

func (o *orNode) state() int { return childrenState(o.children) }
func (o *orNode) reset()     { resetChildren(o.children) }

type impliesNode struct{ l, r streamNode }

//fleetvet:noalloc
func (im *impliesNode) step(ctx *stepCtx) (bool, float64) {
	ls, lr := im.l.step(ctx)
	rs, rr := im.r.step(ctx)
	return !ls || rs, math.Max(-lr, rr)
}

func (im *impliesNode) state() int { return im.l.state() + im.r.state() }
func (im *impliesNode) reset()     { im.l.reset(); im.r.reset() }

func childrenState(cs []streamNode) int {
	t := 0
	for _, c := range cs {
		t += c.state()
	}
	return t
}

func resetChildren(cs []streamNode) {
	for _, c := range cs {
		c.reset()
	}
}

// --- shared stateful machinery ---------------------------------------

// delayLine is a fixed-size FIFO that releases each pushed value after
// exactly `size` further pushes: the [A, ...] lower bound of a past
// window delays the child stream by lo samples.
type delayLine struct {
	buf  []float64
	head int
	n    int
}

func newDelayLine(size int) *delayLine {
	return &delayLine{buf: make([]float64, size)}
}

// push inserts v and returns the value falling out of the line, if any.
// A zero-size line passes v straight through.
//
//fleetvet:noalloc
func (d *delayLine) push(v float64) (out float64, ok bool) {
	if len(d.buf) == 0 {
		return v, true
	}
	if d.n < len(d.buf) {
		d.buf[(d.head+d.n)%len(d.buf)] = v
		d.n++
		return 0, false
	}
	out = d.buf[d.head]
	d.buf[d.head] = v
	d.head = (d.head + 1) % len(d.buf)
	return out, true
}

func (d *delayLine) state() int { return d.n }

func (d *delayLine) reset() {
	d.head, d.n = 0, 0
}

// monoDeque is a Lemire sliding-window extremum deque: values are kept
// monotonic (non-increasing for max, non-decreasing for min) from front
// to back, with indices increasing, so the window extremum is always at
// the front. Pushes are O(1) amortized; memory is O(window).
type monoDeque struct {
	idx   []int
	val   []float64
	head  int
	isMin bool
}

func newMonoDeque(capacity int, isMin bool) *monoDeque {
	if capacity < 1 {
		capacity = 1
	}
	return &monoDeque{
		idx:   make([]int, 0, capacity),
		val:   make([]float64, 0, capacity),
		isMin: isMin,
	}
}

// dominates reports whether a new value v makes an older value u
// redundant (the new index is larger, so on ties the new entry wins).
func (q *monoDeque) dominates(v, u float64) bool {
	if q.isMin {
		return v <= u
	}
	return v >= u
}

//fleetvet:noalloc
func (q *monoDeque) push(i int, v float64) {
	for q.len() > 0 && q.dominates(v, q.val[len(q.val)-1]) {
		q.idx = q.idx[:len(q.idx)-1]
		q.val = q.val[:len(q.val)-1]
	}
	if q.head > 0 && q.len() == 0 {
		// Compact so the slices do not creep rightward forever.
		q.idx = q.idx[:0]
		q.val = q.val[:0]
		q.head = 0
	}
	if q.head > 0 && len(q.idx) == cap(q.idx) {
		n := copy(q.idx[:q.len()], q.idx[q.head:])
		copy(q.val[:n], q.val[q.head:])
		q.idx = q.idx[:n]
		q.val = q.val[:n]
		q.head = 0
	}
	q.idx = append(q.idx, i) //fleetvet:alloc capacity preallocated for the window bound at construction
	q.val = append(q.val, v) //fleetvet:alloc capacity preallocated for the window bound at construction
}

// evictBefore drops front entries with index < minIdx.
func (q *monoDeque) evictBefore(minIdx int) {
	for q.len() > 0 && q.idx[q.head] < minIdx {
		q.head++
	}
}

func (q *monoDeque) len() int { return len(q.idx) - q.head }

// front returns the window extremum.
func (q *monoDeque) front() float64 { return q.val[q.head] }

// frontIdx returns the index of the extremum entry.
func (q *monoDeque) frontIdx() int { return q.idx[q.head] }

// popFront removes the extremum entry.
func (q *monoDeque) popFront() { q.head++ }

// pushFront reinserts a merged entry at the extremum end (clamp-merge of
// the bounded-Since candidate deque). The caller guarantees v keeps the
// monotonic invariant and that at least one popFront preceded this call,
// so there is always slack at the front.
func (q *monoDeque) pushFront(i int, v float64) {
	if q.head == 0 {
		panic("stl: pushFront without a preceding popFront")
	}
	q.head--
	q.idx[q.head], q.val[q.head] = i, v
}

func (q *monoDeque) reset() {
	q.idx = q.idx[:0]
	q.val = q.val[:0]
	q.head = 0
}

// --- Once / Historically ---------------------------------------------

// extremumCore computes the sliding extremum of one float64 stream over
// the past window [lo, hi] in sample offsets (hi < 0: unbounded). It is
// instantiated twice per temporal node: once over robustness values and
// once over satisfaction encoded as 0/1 (min = and, max = or), so both
// semantics stream through identical machinery.
type extremumCore struct {
	lo, hi int
	isMin  bool
	i      int // samples consumed

	delay *delayLine
	dq    *monoDeque // bounded window
	agg   float64    // unbounded window running extremum
}

func newExtremumCore(lo, hi int, isMin bool) *extremumCore {
	c := &extremumCore{lo: lo, hi: hi, isMin: isMin, delay: newDelayLine(lo)}
	if hi >= 0 {
		c.dq = newMonoDeque(hi-lo+1, isMin)
	}
	c.resetAgg()
	return c
}

func (c *extremumCore) resetAgg() {
	if c.isMin {
		c.agg = math.Inf(1)
	} else {
		c.agg = math.Inf(-1)
	}
}

// empty is the extremum of an empty window: -Inf for max (Once of
// nothing is false), +Inf for min (Historically of nothing is true).
func (c *extremumCore) empty() float64 {
	if c.isMin {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

//fleetvet:noalloc
func (c *extremumCore) push(v float64) float64 {
	i := c.i
	c.i++
	if c.hi >= 0 && c.lo > c.hi {
		return c.empty() // fractional bounds with no sample offsets
	}
	dv, ok := c.delay.push(v)
	if !ok {
		return c.empty() // window has not reached the first sample yet
	}
	d := i - c.lo // index of the delayed sample
	if c.hi < 0 {
		if c.isMin {
			c.agg = math.Min(c.agg, dv)
		} else {
			c.agg = math.Max(c.agg, dv)
		}
		return c.agg
	}
	c.dq.push(d, dv)
	c.dq.evictBefore(i - c.hi)
	return c.dq.front()
}

func (c *extremumCore) state() int {
	n := c.delay.state()
	if c.dq != nil {
		n += c.dq.len()
	}
	return n
}

func (c *extremumCore) reset() {
	c.i = 0
	c.delay.reset()
	if c.dq != nil {
		c.dq.reset()
	}
	c.resetAgg()
}

// windowNode is Once (max) or Historically (min) over its child.
type windowNode struct {
	child streamNode
	rob   *extremumCore
	sat   *extremumCore
}

func newWindowNode(child streamNode, lo, hi int, isMin bool) *windowNode {
	return &windowNode{
		child: child,
		rob:   newExtremumCore(lo, hi, isMin),
		sat:   newExtremumCore(lo, hi, isMin),
	}
}

//fleetvet:noalloc
func (w *windowNode) step(ctx *stepCtx) (bool, float64) {
	cs, cr := w.child.step(ctx)
	rob := w.rob.push(cr)
	sat := w.sat.push(boolToFloat(cs))
	return sat > 0.5, rob
}

func (w *windowNode) state() int {
	return w.child.state() + w.rob.state() + w.sat.state()
}

func (w *windowNode) reset() {
	w.child.reset()
	w.rob.reset()
	w.sat.reset()
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- Since -----------------------------------------------------------

// sinceCore streams the quantitative Since semantics over one pair of
// float64 streams (phi = left operand, psi = right operand):
//
//	out_i = max over j in [i-hi, i-lo] of
//	        min( psi_j, min over k in (j, i] of phi_k )
//
// Each candidate witness j carries the running value A_i(j) =
// min(psi_j, min phi over (j, i]). On every push all candidates are
// clamped by min(·, phi_i); because min distributes over max, the
// candidates can live in a max-deque where the clamp collapses the
// strictly-greater front prefix into a single entry keeping the newest
// index (clamp-merge), preserving both dominance order and expiry
// correctness. A candidate enters the deque lo pushes after its psi
// sample, pre-clamped with the sliding minimum of phi over the samples
// it skipped, so the [lo, hi] offset window needs no per-step rescans.
// With hi unbounded the whole deque degenerates to one scalar
// recursion: z_i = max(min(z_{i-1}, phi_i), candidate_i).
//
// Boolean Since runs the identical algorithm over {0,1} (min = and,
// max = or). Every push is O(1) amortized; state is O(window).
type sinceCore struct {
	lo, hi int
	i      int

	phiWin   *monoDeque // sliding min of phi over the last lo samples
	psiDelay *delayLine // psi values waiting to become candidates

	cand *monoDeque // bounded hi: candidate max-deque
	z    float64    // unbounded hi: running max
}

func newSinceCore(lo, hi int) *sinceCore {
	c := &sinceCore{lo: lo, hi: hi, psiDelay: newDelayLine(lo)}
	if lo > 0 {
		c.phiWin = newMonoDeque(lo, true)
	}
	if hi >= 0 {
		c.cand = newMonoDeque(hi-lo+1, false)
	}
	c.z = math.Inf(-1)
	return c
}

//fleetvet:noalloc
func (c *sinceCore) push(phi, psi float64) float64 {
	i := c.i
	c.i++
	if c.hi >= 0 && c.lo > c.hi {
		return math.Inf(-1) // fractional bounds with no sample offsets
	}

	// Sliding min of phi over the last lo samples (k in [i-lo+1, i]):
	// the pre-clamp applied to a candidate the moment it enters.
	if c.phiWin != nil {
		c.phiWin.push(i, phi)
		c.phiWin.evictBefore(i - c.lo + 1)
	}

	// The candidate maturing now, if the window reaches back to it.
	dpsi, mature := c.psiDelay.push(psi)
	cv := math.Inf(-1)
	if mature {
		cv = dpsi
		if c.phiWin != nil {
			cv = math.Min(cv, c.phiWin.front())
		}
	}

	if c.hi < 0 {
		// Unbounded window: clamp the running max, fold the candidate.
		c.z = math.Min(c.z, phi)
		if mature {
			c.z = math.Max(c.z, cv)
		}
		return c.z
	}

	// Clamp-merge: every stored candidate predates this sample, so all
	// of them take min(·, phi). Entries strictly above phi form the
	// front prefix of the max-deque; they collapse to value phi, and
	// only the newest (latest-expiring) index needs to survive.
	if c.cand.len() > 0 && c.cand.front() > phi {
		merged := c.cand.frontIdx()
		for c.cand.len() > 0 && c.cand.front() > phi {
			merged = c.cand.frontIdx()
			c.cand.popFront()
		}
		c.cand.pushFront(merged, phi)
	}
	// Expire witnesses older than the window, then admit the new one.
	c.cand.evictBefore(i - c.hi)
	if mature {
		c.cand.push(i-c.lo, cv)
	}
	if c.cand.len() == 0 {
		return math.Inf(-1)
	}
	return c.cand.front()
}

func (c *sinceCore) state() int {
	n := c.psiDelay.state()
	if c.phiWin != nil {
		n += c.phiWin.len()
	}
	if c.cand != nil {
		n += c.cand.len()
	}
	return n
}

func (c *sinceCore) reset() {
	c.i = 0
	c.psiDelay.reset()
	if c.phiWin != nil {
		c.phiWin.reset()
	}
	if c.cand != nil {
		c.cand.reset()
	}
	c.z = math.Inf(-1)
}

// sinceNode is  L S[a,b] R  over its children.
type sinceNode struct {
	l, r streamNode
	rob  *sinceCore
	sat  *sinceCore
}

func newSinceNode(l, r streamNode, lo, hi int) *sinceNode {
	return &sinceNode{
		l: l, r: r,
		rob: newSinceCore(lo, hi),
		sat: newSinceCore(lo, hi),
	}
}

//fleetvet:noalloc
func (s *sinceNode) step(ctx *stepCtx) (bool, float64) {
	ls, lr := s.l.step(ctx)
	rs, rr := s.r.step(ctx)
	rob := s.rob.push(lr, rr)
	sat := s.sat.push(boolToFloat(ls), boolToFloat(rs))
	return sat > 0.5, rob
}

func (s *sinceNode) state() int {
	return s.l.state() + s.r.state() + s.rob.state() + s.sat.state()
}

func (s *sinceNode) reset() {
	s.l.reset()
	s.r.reset()
	s.rob.reset()
	s.sat.reset()
}
