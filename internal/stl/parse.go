package stl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds a Formula from the package's concrete syntax:
//
//	formula  := implies
//	implies  := temporal ( '=>' implies )?            (right-assoc)
//	temporal := or ( ('U'|'S') bounds? or )?
//	or       := and ( ('or'|'||') and )*
//	and      := unary ( ('and'|'&&') unary )*
//	unary    := ('not'|'!') unary
//	          | ('G'|'F'|'O'|'H') bounds? unary
//	          | atom | 'true' | 'false' | '(' formula ')'
//	atom     := ident cmp number
//	cmp      := '<' | '<=' | '>' | '>=' | '==' | '!='
//	bounds   := '[' number ',' (number|'inf') ']'
//
// Identifiers may contain letters, digits, underscores, and primes
// (e.g. BG', IOB'). Bounds are in minutes.
func Parse(input string) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("stl: unexpected trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse for statically known formulas; it panics on error
// and is intended for tests and package-level rule tables.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokNumber
	tokCmp
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokImplies
	tokAnd
	tokOr
	tokNot
	tokTemporal // G F O H U S
)

type token struct {
	kind tokKind
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	rs := []rune(input)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case r == '[':
			toks = append(toks, token{tokLBracket, "["})
			i++
		case r == ']':
			toks = append(toks, token{tokRBracket, "]"})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case r == '=':
			switch {
			case i+1 < len(rs) && rs[i+1] == '>':
				toks = append(toks, token{tokImplies, "=>"})
				i += 2
			case i+1 < len(rs) && rs[i+1] == '=':
				toks = append(toks, token{tokCmp, "=="})
				i += 2
			default:
				return nil, fmt.Errorf("stl: lone '=' at offset %d (use '==' or '=>')", i)
			}
		case r == '<' || r == '>':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{tokCmp, string(r) + "="})
				i += 2
			} else {
				toks = append(toks, token{tokCmp, string(r)})
				i++
			}
		case r == '!':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{tokCmp, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokNot, "!"})
				i++
			}
		case r == '&':
			if i+1 < len(rs) && rs[i+1] == '&' {
				toks = append(toks, token{tokAnd, "&&"})
				i += 2
			} else {
				return nil, fmt.Errorf("stl: lone '&' at offset %d", i)
			}
		case r == '|':
			if i+1 < len(rs) && rs[i+1] == '|' {
				toks = append(toks, token{tokOr, "||"})
				i += 2
			} else {
				return nil, fmt.Errorf("stl: lone '|' at offset %d", i)
			}
		case r == '-' || r == '.' || unicode.IsDigit(r):
			j := i + 1
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == 'e' ||
				rs[j] == 'E' || ((rs[j] == '+' || rs[j] == '-') && (rs[j-1] == 'e' || rs[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '\'') {
				j++
			}
			word := string(rs[i:j])
			switch strings.ToLower(word) {
			case "and":
				toks = append(toks, token{tokAnd, word})
			case "or":
				toks = append(toks, token{tokOr, word})
			case "not":
				toks = append(toks, token{tokNot, word})
			default:
				if len(word) == 1 && strings.ContainsAny(word, "GFOHUS") {
					toks = append(toks, token{tokTemporal, word})
				} else {
					toks = append(toks, token{tokIdent, word})
				}
			}
			i = j
		default:
			return nil, fmt.Errorf("stl: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(kind tokKind) (token, bool) {
	if !p.eof() && p.toks[p.pos].kind == kind {
		return p.next(), true
	}
	return token{}, false
}

func (p *parser) parseImplies() (Formula, error) {
	l, err := p.parseTemporalBinary()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(tokImplies); ok {
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return &Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseTemporalBinary() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() && p.peek().kind == tokTemporal && (p.peek().text == "U" || p.peek().text == "S") {
		op := p.next().text
		bounds, err := p.parseOptionalBounds()
		if err != nil {
			return nil, err
		}
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if op == "U" {
			return &Until{Bounds: bounds, L: l, R: r}, nil
		}
		return &Since{Bounds: bounds, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Formula{l}
	for {
		if _, ok := p.accept(tokOr); !ok {
			break
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, r)
	}
	if len(children) == 1 {
		return l, nil
	}
	return &Or{Children: children}, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Formula{l}
	for {
		if _, ok := p.accept(tokAnd); !ok {
			break
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, r)
	}
	if len(children) == 1 {
		return l, nil
	}
	return &And{Children: children}, nil
}

func (p *parser) parseUnary() (Formula, error) {
	if _, ok := p.accept(tokNot); ok {
		c, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Child: c}, nil
	}
	if !p.eof() && p.peek().kind == tokTemporal {
		op := p.peek().text
		switch op {
		case "G", "F", "O", "H":
			p.next()
			bounds, err := p.parseOptionalBounds()
			if err != nil {
				return nil, err
			}
			c, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			switch op {
			case "G":
				return &Globally{Bounds: bounds, Child: c}, nil
			case "F":
				return &Eventually{Bounds: bounds, Child: c}, nil
			case "O":
				return &Once{Bounds: bounds, Child: c}, nil
			default:
				return &Historically{Bounds: bounds, Child: c}, nil
			}
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Formula, error) {
	if _, ok := p.accept(tokLParen); ok {
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(tokRParen); !ok {
			return nil, fmt.Errorf("stl: missing ')' near %q", p.peek().text)
		}
		return f, nil
	}
	tok, ok := p.accept(tokIdent)
	if !ok {
		return nil, fmt.Errorf("stl: expected atom or '(' near %q", p.peek().text)
	}
	switch strings.ToLower(tok.text) {
	case "true":
		return Const(true), nil
	case "false":
		return Const(false), nil
	}
	cmp, ok := p.accept(tokCmp)
	if !ok {
		return nil, fmt.Errorf("stl: expected comparison after %q", tok.text)
	}
	num, ok := p.accept(tokNumber)
	if !ok {
		return nil, fmt.Errorf("stl: expected number after %q %s", tok.text, cmp.text)
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return nil, fmt.Errorf("stl: bad number %q: %w", num.text, err)
	}
	var op CmpOp
	switch cmp.text {
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	case "==":
		op = OpEQ
	case "!=":
		op = OpNE
	}
	return &Atom{Var: tok.text, Op: op, Threshold: v}, nil
}

func (p *parser) parseOptionalBounds() (Bounds, error) {
	if _, ok := p.accept(tokLBracket); !ok {
		return Unbounded, nil
	}
	aTok, ok := p.accept(tokNumber)
	if !ok {
		return Bounds{}, fmt.Errorf("stl: expected lower bound near %q", p.peek().text)
	}
	a, err := strconv.ParseFloat(aTok.text, 64)
	if err != nil {
		return Bounds{}, fmt.Errorf("stl: bad lower bound %q: %w", aTok.text, err)
	}
	if _, ok := p.accept(tokComma); !ok {
		return Bounds{}, fmt.Errorf("stl: expected ',' in bounds near %q", p.peek().text)
	}
	var b float64
	if id, ok := p.accept(tokIdent); ok && strings.EqualFold(id.text, "inf") {
		b = math.Inf(1)
	} else if num, ok := p.accept(tokNumber); ok {
		if b, err = strconv.ParseFloat(num.text, 64); err != nil {
			return Bounds{}, fmt.Errorf("stl: bad upper bound %q: %w", num.text, err)
		}
	} else {
		return Bounds{}, fmt.Errorf("stl: expected upper bound near %q", p.peek().text)
	}
	if _, ok := p.accept(tokRBracket); !ok {
		return Bounds{}, fmt.Errorf("stl: expected ']' near %q", p.peek().text)
	}
	bounds := Bounds{A: a, B: b}
	if err := bounds.valid(); err != nil {
		return Bounds{}, err
	}
	return bounds, nil
}
