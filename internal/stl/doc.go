// Package stl implements bounded-time Signal Temporal Logic over
// sampled multi-variable traces: the formula AST, boolean satisfaction,
// the standard quantitative (robustness) semantics used by the paper's
// threshold-learning step, a text parser, and two online evaluation
// engines — per-session streaming and shard-batched — for past-only
// formulas.
//
// Time bounds are expressed in minutes and converted to sample indices
// through the trace's sampling period, so the same formula evaluates on
// traces of any uniform rate, and the streaming compilers delegate to
// the same Bounds conversion the offline evaluator uses, so window
// edges can never disagree between paths.
//
// # Evaluation paths and their invariants
//
// The package maintains four evaluation paths that must agree exactly:
//
//   - Offline: Formula.Sat / Formula.Robustness over a recorded Trace —
//     the reference semantics.
//   - Streaming (Stream, OnlineMonitor): past-only formulas compile to
//     stateful operator nodes (delay lines, Lemire window-extremum
//     deques, clamp-merge Since deques); each Push is O(1) amortized
//     with O(sum of window lengths) retained state, independent of
//     session length. Verdict and robustness are exactly equal (==) to
//     the offline semantics at every index — not approximately: the
//     streaming engine reorders min/max folds but never changes
//     operands (TestPropStreamingMatchesOffline).
//   - Grouped (StreamGroup): many formulas over one shared sample
//     stream, hash-consed into a DAG keyed on the canonical formula
//     rendering. The sharing invariant: a shared stateful node advances
//     exactly once per push no matter how many formulas contain it,
//     enforced by a per-push sequence memo; StateSamples counts
//     deduplicated state.
//   - Batched (BatchStreamGroup): the grouped DAG evaluated across a
//     whole shard of independent sessions (lanes) in one
//     struct-of-arrays push — per-node state and outputs are
//     [lanes]-wide vectors iterated session-major. The batching
//     invariant: every lane's results are bit-identical to pushing that
//     lane's samples through its own StreamGroup
//     (TestBatchStreamGroupMatchesPerLane), because the per-lane
//     stateful cores are literally the scalar cores and the stateless
//     kernels reuse the scalar expressions with only the loop order
//     changed — arithmetic within a lane never reorders. Lanes reset
//     independently (ResetLane), which is what lets a fleet shard
//     recycle a lane for a fresh session mid-run.
//
// Because the batched compiler interns with the same canonical keys as
// the per-session group compiler, the two DAGs share structure
// one-for-one: anything proven about sharing or state bounds on one
// path transfers to the other.
//
//fleetvet:deterministic
package stl
