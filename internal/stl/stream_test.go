package stl

import (
	"math"
	"testing"
)

func TestStreamRejectsInvalid(t *testing.T) {
	if _, err := NewStream(nil, 5); err == nil {
		t.Error("nil formula should be rejected")
	}
	if _, err := NewStream(MustParse("x > 1"), 0); err == nil {
		t.Error("zero dt should be rejected")
	}
	if _, err := NewStream(MustParse("F (x > 1)"), 5); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := NewStream(MustParse("G (x > 1)"), 5); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := NewStream(&Since{Bounds: Bounds{A: 3, B: 1}, L: Const(true), R: Const(true)}, 5); err == nil {
		t.Error("invalid bounds should be rejected")
	}
}

func TestStreamMissingVariable(t *testing.T) {
	s, err := NewStream(MustParse("O[0,30] (x > 1 and y < 2)"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Push(map[string]float64{"x": 3}); err == nil {
		t.Error("missing variable should error")
	}
	// The rejected sample must not have advanced any operator state:
	// a corrected push behaves as the first sample of the stream.
	if s.Len() != 0 {
		t.Errorf("Len after rejected push = %d, want 0", s.Len())
	}
	sat, rob, err := s.Push(map[string]float64{"x": 3, "y": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sat || rob != 1 {
		t.Errorf("corrected push: sat=%v rob=%v, want true/1 (state was poisoned)", sat, rob)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStreamOnceBounded(t *testing.T) {
	// O[5,10] (x > 0) at dt=5: sample offsets [1,2].
	s, err := NewStream(MustParse("O[5,10] (x > 0)"), 5)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{1, -1, -1, -1, 1, -1, -1}
	want := []bool{false, true, true, false, false, true, true}
	for i, x := range xs {
		sat, _, err := s.Push(map[string]float64{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if sat != want[i] {
			t.Errorf("step %d: sat=%v, want %v", i, sat, want[i])
		}
	}
}

func TestStreamEmptyFractionalWindow(t *testing.T) {
	// [1.2,1.4] minutes at dt=1 has no sample offsets: Once is always
	// false (-Inf), Historically always true (+Inf) — exactly the
	// offline empty-window semantics.
	once, err := NewStream(&Once{Bounds: Bounds{A: 1.2, B: 1.4}, Child: MustParse("x > 0")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := NewStream(&Historically{Bounds: Bounds{A: 1.2, B: 1.4}, Child: MustParse("x > 0")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	since, err := NewStream(&Since{Bounds: Bounds{A: 1.2, B: 1.4}, L: MustParse("x > 0"), R: MustParse("x > 0")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sample := map[string]float64{"x": 1}
		if sat, rob, _ := once.Push(sample); sat || !math.IsInf(rob, -1) {
			t.Errorf("once over empty window: sat=%v rob=%v", sat, rob)
		}
		if sat, rob, _ := hist.Push(sample); !sat || !math.IsInf(rob, 1) {
			t.Errorf("historically over empty window: sat=%v rob=%v", sat, rob)
		}
		if sat, rob, _ := since.Push(sample); sat || !math.IsInf(rob, -1) {
			t.Errorf("since over empty window: sat=%v rob=%v", sat, rob)
		}
	}
}

func TestStreamReset(t *testing.T) {
	s, err := NewStream(MustParse("(x > 5) S (y == 1)"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Push(map[string]float64{"x": 9, "y": 1}); err != nil {
		t.Fatal(err)
	}
	sat, _, err := s.Push(map[string]float64{"x": 9, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Fatal("since should hold before reset")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after reset = %d", s.Len())
	}
	if _, _, err := s.Last(); err == nil {
		t.Error("Last after reset should error")
	}
	// The witness from before the reset must be gone.
	sat, _, err = s.Push(map[string]float64{"x": 9, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("since held across Reset: stale operator state")
	}
}

// boundedStateFormula mixes every stateful operator shape: bounded and
// unbounded windows, nested temporal operators, and Since with a
// nonzero lower bound.
const boundedStateFormula = "(H[0,120] (x > 0)) and ((x > 2) S (y < 1)) " +
	"and O[15,45] (y > 3) and ((y < 8) S[10,90] (O[0,30] (x > 5)))"

// TestStreamBoundedStateLongSession is the continuous-serving-mode
// memory contract: after the windows saturate, pushing 100x more
// samples must not grow operator state at all, and the steady-state
// push path must not allocate.
func TestStreamBoundedStateLongSession(t *testing.T) {
	m, err := NewOnlineMonitor(MustParse(boundedStateFormula), 5)
	if err != nil {
		t.Fatal(err)
	}
	sample := make(map[string]float64, 2)
	push := func(i int) {
		sample["x"] = float64((i*7919)%23) - 10
		sample["y"] = float64((i*104729)%19) - 9
		if _, err := m.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1_000; i++ {
		push(i)
	}
	stateAt1k := m.StateSamples()
	allocsAt1k := testing.AllocsPerRun(200, func() { push(m.Len()) })

	for m.Len() < 100_000 {
		push(m.Len())
	}
	stateAt100k := m.StateSamples()
	allocsAt100k := testing.AllocsPerRun(200, func() { push(m.Len()) })

	// Deque occupancy is data-dependent within the window bound, so the
	// invariant is a cap, not exact equality: the formula's widest
	// window is 120 min = 24 samples and a handful of operator cores
	// each hold at most O(window) entries — after 100x more pushes the
	// state must still sit under that same small constant.
	const stateCap = 400
	if stateAt1k > stateCap || stateAt100k > stateCap {
		t.Errorf("state is not O(window): %d samples at 1k pushes, %d at 100k",
			stateAt1k, stateAt100k)
	}
	if allocsAt1k != 0 || allocsAt100k != 0 {
		t.Errorf("steady-state push allocates: %.1f allocs/push at 1k, %.1f at 100k",
			allocsAt1k, allocsAt100k)
	}
}

// TestStreamMatchesTraceMonitor pins the rewired OnlineMonitor to the
// legacy trace-backed monitor on a shared sample stream.
func TestStreamMatchesTraceMonitor(t *testing.T) {
	f := MustParse("((x > 2) S[0,30] (y < 1)) and H[0,20] (x > -8)")
	stream, err := NewOnlineMonitor(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewTraceMonitor(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sample := map[string]float64{
			"x": float64((i*31)%17) - 8,
			"y": float64((i*17)%13) - 6,
		}
		gotSat, err := stream.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		wantSat, err := legacy.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if gotSat != wantSat {
			t.Fatalf("step %d: streaming sat=%v, legacy %v", i, gotSat, wantSat)
		}
		gotRob, err := stream.Robustness()
		if err != nil {
			t.Fatal(err)
		}
		wantRob, err := legacy.Robustness()
		if err != nil {
			t.Fatal(err)
		}
		if gotRob != wantRob {
			t.Fatalf("step %d: streaming rob=%v, legacy %v", i, gotRob, wantRob)
		}
	}
	gv, ge := stream.Violations()
	wv, we := legacy.Violations()
	if gv != wv || ge != we {
		t.Errorf("violations %d/%d, legacy %d/%d", gv, ge, wv, we)
	}
}

// groupFormulas is a formula family with heavy subformula overlap: the
// same bounded windows and Since terms appear across members, so the
// hash-consed group must hold their operator state exactly once.
var groupFormulas = []string{
	"(O[0,60] (x > 5)) and (y < 2)",
	"(O[0,60] (x > 5)) and (y > -4)",
	"not (O[0,60] (x > 5))",
	"((x > 2) S[0,45] (y < 1)) and (O[0,60] (x > 5))",
	"((x > 2) S[0,45] (y < 1)) or (H[0,30] (y < 8))",
	"H[0,30] (y < 8)",
}

// TestStreamGroupMatchesIndividualStreams: hash-consing must not change
// a single verdict or margin — every group member must equal its own
// standalone Stream at every pushed sample.
func TestStreamGroupMatchesIndividualStreams(t *testing.T) {
	g, err := NewStreamGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	var solo []*Stream
	for _, src := range groupFormulas {
		f := MustParse(src)
		idx, err := g.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if idx != len(solo) {
			t.Fatalf("Add returned %d, want %d", idx, len(solo))
		}
		s, err := NewStream(f, 5)
		if err != nil {
			t.Fatal(err)
		}
		solo = append(solo, s)
	}
	for i := 0; i < 500; i++ {
		sample := map[string]float64{
			"x": float64((i*7919)%23) - 10,
			"y": float64((i*104729)%19) - 9,
		}
		if err := g.Push(sample); err != nil {
			t.Fatal(err)
		}
		for k, s := range solo {
			wantSat, wantRob, err := s.Push(sample)
			if err != nil {
				t.Fatal(err)
			}
			if g.Sat(k) != wantSat || g.Rob(k) != wantRob {
				t.Fatalf("step %d formula %d: group (%v, %v), solo (%v, %v)",
					i, k, g.Sat(k), g.Rob(k), wantSat, wantRob)
			}
		}
	}
}

// TestStreamGroupSharesState: the group's total buffered state must be
// well below the sum of the standalone streams' — identical windowed
// subformulas hold one stateful node (ROADMAP "Multi-formula sharing").
func TestStreamGroupSharesState(t *testing.T) {
	g, err := NewStreamGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	var solo []*Stream
	for _, src := range groupFormulas {
		f := MustParse(src)
		if _, err := g.Add(f); err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(f, 5)
		if err != nil {
			t.Fatal(err)
		}
		solo = append(solo, s)
	}
	sample := make(map[string]float64, 2)
	for i := 0; i < 200; i++ { // saturate every window
		sample["x"] = float64((i*31)%17) - 8
		sample["y"] = float64((i*17)%13) - 6
		if err := g.Push(sample); err != nil {
			t.Fatal(err)
		}
		for _, s := range solo {
			if _, _, err := s.Push(sample); err != nil {
				t.Fatal(err)
			}
		}
	}
	soloTotal := 0
	for _, s := range solo {
		soloTotal += s.StateSamples()
	}
	shared := g.StateSamples()
	if shared <= 0 {
		t.Fatal("group reports no state despite windowed formulas")
	}
	// O[0,60](x>5) appears in 4 formulas, (x>2)S[0,45](y<1) in 2,
	// H[0,30](y<8) in 2: the dedup factor must be clearly visible, not
	// marginal.
	if shared*3 > soloTotal*2 {
		t.Errorf("hash-consing saved too little state: group %d vs solo sum %d", shared, soloTotal)
	}
	// And the group must stay allocation-free and bounded like a single
	// stream.
	allocs := testing.AllocsPerRun(200, func() {
		if err := g.Push(sample); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("group push allocates %.1f allocs", allocs)
	}
}

// TestStreamGroupValidation covers the group's error paths.
func TestStreamGroupValidation(t *testing.T) {
	if _, err := NewStreamGroup(0); err == nil {
		t.Error("zero dt should be rejected")
	}
	g, err := NewStreamGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(nil); err == nil {
		t.Error("nil formula should be rejected")
	}
	if _, err := g.Add(MustParse("F (x > 1)")); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := g.Add(MustParse("x > 1")); err != nil {
		t.Fatal(err)
	}
	if err := g.Push(map[string]float64{"y": 1}); err == nil {
		t.Error("missing variable should error")
	}
	if err := g.PushVector([]float64{1, 2}); err == nil {
		t.Error("wrong vector width should error")
	}
	if err := g.Push(map[string]float64{"x": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(MustParse("x > 2")); err == nil {
		t.Error("Add after Push should be rejected")
	}
}

// TestStreamGroupReset: reset must clear shared operator state exactly
// once and leave the group replayable from scratch.
func TestStreamGroupReset(t *testing.T) {
	g, err := NewStreamGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	// Two formulas sharing one Since witness.
	if _, err := g.Add(MustParse("(x > 5) S (y == 1)")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(MustParse("not ((x > 5) S (y == 1))")); err != nil {
		t.Fatal(err)
	}
	if err := g.Push(map[string]float64{"x": 9, "y": 1}); err != nil {
		t.Fatal(err)
	}
	if !g.Sat(0) || g.Sat(1) {
		t.Fatal("since should hold before reset")
	}
	g.Reset()
	if g.Len() != 0 {
		t.Errorf("Len after reset = %d", g.Len())
	}
	if err := g.Push(map[string]float64{"x": 9, "y": 0}); err != nil {
		t.Fatal(err)
	}
	if g.Sat(0) {
		t.Error("since held across Reset: stale shared operator state")
	}
}
