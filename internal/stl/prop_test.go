package stl

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests of the robustness semantics: random bounded
// formulas over random signals, checked against the defining properties
// of quantitative STL rather than hand-picked cases.

// propVars are the signal names the generators draw from.
var propVars = []string{"x", "y"}

// randPropTrace builds a random 2-variable trace.
func randPropTrace(rng *rand.Rand) *Trace {
	tr, err := NewTrace(1)
	if err != nil {
		panic(err)
	}
	n := 8 + rng.Intn(12)
	for _, v := range propVars {
		series := make([]float64, n)
		for i := range series {
			series[i] = -10 + 20*rng.Float64()
		}
		if err := tr.Set(v, series); err != nil {
			panic(err)
		}
	}
	return tr
}

// shiftTrace returns a copy with every sample of every variable moved by
// delta[var][i].
func shiftTrace(tr *Trace, shift func(v string, i int) float64) *Trace {
	out, err := NewTrace(tr.Dt())
	if err != nil {
		panic(err)
	}
	for _, v := range tr.Names() {
		series := make([]float64, tr.Len())
		for i := range series {
			val, err := tr.Value(v, i)
			if err != nil {
				panic(err)
			}
			series[i] = val + shift(v, i)
		}
		if err := out.Set(v, series); err != nil {
			panic(err)
		}
	}
	return out
}

func randBounds(rng *rand.Rand) Bounds {
	if rng.Intn(4) == 0 {
		return Unbounded
	}
	a := float64(rng.Intn(5))
	return Bounds{A: a, B: a + float64(rng.Intn(8))}
}

func randAtom(rng *rand.Rand, ops []CmpOp) *Atom {
	return &Atom{
		Var:       propVars[rng.Intn(len(propVars))],
		Op:        ops[rng.Intn(len(ops))],
		Threshold: -10 + 20*rng.Float64(),
	}
}

// randFormula generates an arbitrary bounded formula of the given depth.
func randFormula(rng *rand.Rand, depth int) Formula {
	if depth <= 0 {
		return randAtom(rng, []CmpOp{OpLT, OpLE, OpGT, OpGE})
	}
	switch rng.Intn(7) {
	case 0:
		return &Not{Child: randFormula(rng, depth-1)}
	case 1:
		return NewAnd(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 2:
		return NewOr(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 3:
		return &Implies{L: randFormula(rng, depth-1), R: randFormula(rng, depth-1)}
	case 4:
		return &Globally{Bounds: randBounds(rng), Child: randFormula(rng, depth-1)}
	case 5:
		return &Eventually{Bounds: randBounds(rng), Child: randFormula(rng, depth-1)}
	default:
		return &Until{Bounds: randBounds(rng), L: randFormula(rng, depth-1), R: randFormula(rng, depth-1)}
	}
}

// randMonotoneFormula generates a formula that is monotone in every
// signal: atoms are lower bounds only and the combinators (and/or/G/F/U)
// all preserve monotonicity.
func randMonotoneFormula(rng *rand.Rand, depth int) Formula {
	if depth <= 0 {
		return randAtom(rng, []CmpOp{OpGT, OpGE})
	}
	switch rng.Intn(5) {
	case 0:
		return NewAnd(randMonotoneFormula(rng, depth-1), randMonotoneFormula(rng, depth-1))
	case 1:
		return NewOr(randMonotoneFormula(rng, depth-1), randMonotoneFormula(rng, depth-1))
	case 2:
		return &Globally{Bounds: randBounds(rng), Child: randMonotoneFormula(rng, depth-1)}
	case 3:
		return &Eventually{Bounds: randBounds(rng), Child: randMonotoneFormula(rng, depth-1)}
	default:
		return &Until{Bounds: randBounds(rng), L: randMonotoneFormula(rng, depth-1), R: randMonotoneFormula(rng, depth-1)}
	}
}

// randPastBounds generates past-operator bounds: unbounded, aligned,
// and fractional ones (whose ceil/floor conversion can produce empty
// sample windows — an edge the streaming compiler must reproduce).
func randPastBounds(rng *rand.Rand) Bounds {
	switch rng.Intn(4) {
	case 0:
		return Unbounded
	case 1:
		a := float64(rng.Intn(4))
		return Bounds{A: a, B: a + float64(rng.Intn(6))}
	default:
		a := 4 * rng.Float64()
		return Bounds{A: a, B: a + 3*rng.Float64()}
	}
}

// randPastFormula generates a random past-only formula of the given
// depth, exercising every streamable operator.
func randPastFormula(rng *rand.Rand, depth int) Formula {
	if depth <= 0 {
		if rng.Intn(8) == 0 {
			return Const(rng.Intn(2) == 0)
		}
		return randAtom(rng, []CmpOp{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE})
	}
	switch rng.Intn(8) {
	case 0:
		return &Not{Child: randPastFormula(rng, depth-1)}
	case 1:
		return NewAnd(randPastFormula(rng, depth-1), randPastFormula(rng, depth-1))
	case 2:
		return NewOr(randPastFormula(rng, depth-1), randPastFormula(rng, depth-1))
	case 3:
		return &Implies{L: randPastFormula(rng, depth-1), R: randPastFormula(rng, depth-1)}
	case 4:
		return &Once{Bounds: randPastBounds(rng), Child: randPastFormula(rng, depth-1)}
	case 5:
		return &Historically{Bounds: randPastBounds(rng), Child: randPastFormula(rng, depth-1)}
	default:
		return &Since{Bounds: randPastBounds(rng), L: randPastFormula(rng, depth-1), R: randPastFormula(rng, depth-1)}
	}
}

// streamTrace pushes every sample of tr through a fresh Stream for f,
// comparing verdict and robustness against the offline Sat/Robustness
// at every index. Equality is exact (==), not approximate: the
// streaming engine reorders min/max folds but never changes operands.
func streamTrace(t *testing.T, trial int, f Formula, tr *Trace) {
	t.Helper()
	s, err := NewStream(f, tr.Dt())
	if err != nil {
		t.Fatalf("trial %d: compile %s: %v", trial, f, err)
	}
	sample := make(map[string]float64, len(propVars))
	for i := 0; i < tr.Len(); i++ {
		for _, v := range tr.Names() {
			val, err := tr.Value(v, i)
			if err != nil {
				t.Fatal(err)
			}
			sample[v] = val
		}
		gotSat, gotRob, err := s.Push(sample)
		if err != nil {
			t.Fatalf("trial %d: push %d of %s: %v", trial, i, f, err)
		}
		wantSat, err := f.Sat(tr, i)
		if err != nil {
			t.Fatalf("trial %d: offline sat of %s at %d: %v", trial, f, i, err)
		}
		wantRob, err := f.Robustness(tr, i)
		if err != nil {
			t.Fatalf("trial %d: offline robustness of %s at %d: %v", trial, f, i, err)
		}
		if gotSat != wantSat {
			t.Fatalf("trial %d: %s at %d: streaming sat=%v, offline %v", trial, f, i, gotSat, wantSat)
		}
		if gotRob != wantRob {
			t.Fatalf("trial %d: %s at %d: streaming rob=%v, offline %v", trial, f, i, gotRob, wantRob)
		}
	}
}

// TestPropStreamingMatchesOffline is the differential correctness
// contract of the streaming engine: on randomized past-only formulas
// and randomized signals, the incremental evaluation must produce
// verdicts and robustness exactly equal to the offline trace semantics
// at every index.
func TestPropStreamingMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 1200; trial++ {
		f := randPastFormula(rng, 1+rng.Intn(3))
		tr := randPropTrace(rng)
		streamTrace(t, trial, f, tr)
	}
}

// TestPropStreamingMatchesOfflineLongTraces repeats the differential
// check on traces long enough for every window to saturate, candidates
// to expire, and the deque compaction paths to run.
func TestPropStreamingMatchesOfflineLongTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 60; trial++ {
		f := randPastFormula(rng, 2+rng.Intn(2))
		tr, err := NewTrace(1)
		if err != nil {
			t.Fatal(err)
		}
		n := 200 + rng.Intn(200)
		for _, v := range propVars {
			series := make([]float64, n)
			for i := range series {
				series[i] = -10 + 20*rng.Float64()
			}
			if err := tr.Set(v, series); err != nil {
				t.Fatal(err)
			}
		}
		streamTrace(t, trial, f, tr)
	}
}

// TestPropRobustnessSignAgreesWithSat: strictly positive robustness
// implies boolean satisfaction, strictly negative implies violation
// (soundness of the quantitative semantics).
func TestPropRobustnessSignAgreesWithSat(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const eps = 1e-9
	for trial := 0; trial < 1500; trial++ {
		f := randFormula(rng, 1+rng.Intn(3))
		tr := randPropTrace(rng)
		i := rng.Intn(tr.Len())
		rob, err := f.Robustness(tr, i)
		if err != nil {
			t.Fatalf("trial %d: robustness of %s: %v", trial, f, err)
		}
		sat, err := f.Sat(tr, i)
		if err != nil {
			t.Fatalf("trial %d: sat of %s: %v", trial, f, err)
		}
		if rob > eps && !sat {
			t.Fatalf("trial %d: %s has robustness %v at %d but Sat=false", trial, f, rob, i)
		}
		if rob < -eps && sat {
			t.Fatalf("trial %d: %s has robustness %v at %d but Sat=true", trial, f, rob, i)
		}
	}
}

// TestPropMonotoneShift: for formulas built from lower-bound atoms and
// monotone combinators, shifting every signal upward can only increase
// robustness, and satisfaction is preserved.
func TestPropMonotoneShift(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 800; trial++ {
		f := randMonotoneFormula(rng, 1+rng.Intn(3))
		tr := randPropTrace(rng)
		i := rng.Intn(tr.Len())
		d := 5 * rng.Float64()
		up := shiftTrace(tr, func(string, int) float64 { return d })

		r1, err := f.Robustness(tr, i)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := f.Robustness(up, i)
		if err != nil {
			t.Fatal(err)
		}
		if r2 < r1-1e-9 {
			t.Fatalf("trial %d: %s robustness dropped %v -> %v under +%v shift", trial, f, r1, r2, d)
		}
		sat1, err := f.Sat(tr, i)
		if err != nil {
			t.Fatal(err)
		}
		sat2, err := f.Sat(up, i)
		if err != nil {
			t.Fatal(err)
		}
		if sat1 && !sat2 {
			t.Fatalf("trial %d: %s satisfaction lost under upward shift", trial, f)
		}
	}
}

// TestPropLipschitz: every atom is a unit-coefficient bound, and min,
// max, and negation are 1-Lipschitz, so robustness can move by at most
// the sup-norm of the signal perturbation.
func TestPropLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 800; trial++ {
		f := randFormula(rng, 1+rng.Intn(3))
		tr := randPropTrace(rng)
		i := rng.Intn(tr.Len())
		maxD := 3 * rng.Float64()
		perturbed := shiftTrace(tr, func(string, int) float64 {
			return maxD * (2*rng.Float64() - 1)
		})

		r1, err := f.Robustness(tr, i)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := f.Robustness(perturbed, i)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(r1, 0) || math.IsInf(r2, 0) {
			// Empty temporal windows yield ±Inf on both traces; the
			// Lipschitz bound is about finite robustness.
			continue
		}
		if diff := math.Abs(r2 - r1); diff > maxD+1e-9 {
			t.Fatalf("trial %d: %s robustness moved %v under perturbation ≤ %v", trial, f, diff, maxD)
		}
	}
}
