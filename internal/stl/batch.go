package stl

import (
	"fmt"
	"math"
)

// batchCtx carries one batched push through the node DAG: the active
// lane list, the struct-of-arrays value matrix (vals[v*n+k] holds
// variable v of active lane k), and the push sequence number that
// memoized shared nodes key their caches on.
type batchCtx struct {
	lanes []int
	vals  []float64
	n     int
	seq   uint64
}

// batchNode is one compiled operator evaluated across a whole shard of
// sessions at once: step consumes the newest sample of every active
// lane and returns satisfaction and robustness vectors indexed like
// ctx.lanes. The returned slices are owned by the node and stay valid
// until its next step; aliasing between parents is safe because a
// bare-shared stateless node rewrites identical values and stateful
// shared nodes are memo-guarded.
type batchNode interface {
	step(ctx *batchCtx) (sat []bool, rob []float64)
	state() int
	reset()
	resetLane(lane int)
}

// batchCompiler mirrors compiler for the batched engine: it lowers
// past-only formulas to nodes whose per-operator state is a
// [lanes]-wide vector of the scalar cores, hash-consing structurally
// identical subformulas exactly like the per-session group compiler.
type batchCompiler struct {
	dt     float64
	width  int
	vars   []string
	varIdx map[string]int
	cache  map[string]batchNode
	memos  []*batchMemoNode
}

func newBatchCompiler(dt float64, width int) *batchCompiler {
	return &batchCompiler{
		dt: dt, width: width,
		varIdx: make(map[string]int),
		cache:  make(map[string]batchNode),
	}
}

func (c *batchCompiler) varIndex(name string) int {
	if i, ok := c.varIdx[name]; ok {
		return i
	}
	i := len(c.vars)
	c.vars = append(c.vars, name)
	c.varIdx[name] = i
	return i
}

// compile lowers one formula with hash-consed sharing: the canonical
// key and the memo policy (only stateful subtrees are seq-guarded) are
// identical to the per-session compiler, so the batched DAG has exactly
// the same sharing structure and per-push advance discipline.
func (c *batchCompiler) compile(f Formula) (batchNode, error) {
	key := f.String()
	if n, ok := c.cache[key]; ok {
		return n, nil
	}
	inner, err := c.lower(f)
	if err != nil {
		return nil, err
	}
	out := inner
	if hasState(f) {
		m := &batchMemoNode{inner: inner}
		c.memos = append(c.memos, m)
		out = m
	}
	c.cache[key] = out
	return out, nil
}

func (c *batchCompiler) lower(f Formula) (batchNode, error) {
	switch n := f.(type) {
	case *Atom:
		if n.Op < OpLT || n.Op > OpNE {
			return nil, fmt.Errorf("stl: invalid comparison op %d", int(n.Op))
		}
		return &batchAtomNode{
			varIdx: c.varIndex(n.Var), op: n.Op, threshold: n.Threshold,
			out: newBatchOut(c.width),
		}, nil
	case Const:
		bc := &batchConstNode{out: newBatchOut(c.width)}
		rob := math.Inf(-1)
		if bool(n) {
			rob = math.Inf(1)
		}
		for k := 0; k < c.width; k++ {
			bc.out.sat[k] = bool(n)
			bc.out.rob[k] = rob
		}
		return bc, nil
	case *Not:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		return &batchNotNode{child: child, out: newBatchOut(c.width)}, nil
	case *And:
		if atoms, ok := flatOrderAtoms(n.Children); ok {
			fa := &batchFlatAndNode{
				atoms: make([]fusedAtom, len(atoms)),
				out:   newBatchOut(c.width),
			}
			for i, a := range atoms {
				fa.atoms[i] = newFusedAtom(c.varIndex(a.Var), a.Op, a.Threshold)
			}
			return fa, nil
		}
		cs, err := c.compileChildren(n.Children)
		if err != nil {
			return nil, err
		}
		return &batchAndNode{children: cs, out: newBatchOut(c.width)}, nil
	case *Or:
		cs, err := c.compileChildren(n.Children)
		if err != nil {
			return nil, err
		}
		return &batchOrNode{children: cs, out: newBatchOut(c.width)}, nil
	case *Implies:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &batchImpliesNode{l: l, r: r, out: newBatchOut(c.width)}, nil
	case *Once:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newBatchWindowNode(child, lo, hi, false, c.width), nil
	case *Historically:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newBatchWindowNode(child, lo, hi, true, c.width), nil
	case *Since:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		lo, hi, err := pastWindow(n.Bounds, c.dt)
		if err != nil {
			return nil, err
		}
		return newBatchSinceNode(l, r, lo, hi, c.width), nil
	default:
		return nil, fmt.Errorf("stl: cannot stream %T", f)
	}
}

func (c *batchCompiler) compileChildren(children []Formula) ([]batchNode, error) {
	out := make([]batchNode, len(children))
	for i, child := range children {
		n, err := c.compile(child)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// batchOut is a node's output vector pair, sized to the group width at
// construction so the hot path never allocates.
type batchOut struct {
	sat []bool
	rob []float64
}

func newBatchOut(width int) batchOut {
	return batchOut{sat: make([]bool, width), rob: make([]float64, width)}
}

// batchMemoNode guards a stateful node shared between formulas: the
// first step of a push advances the inner node across all active lanes,
// later steps within the same push return the cached vectors, so shared
// operator state consumes each batched sample exactly once.
type batchMemoNode struct {
	inner   batchNode
	seq     uint64
	sat     []bool
	rob     []float64
	visited bool // StateSamples dedup walk marker
}

//fleetvet:noalloc
func (m *batchMemoNode) step(ctx *batchCtx) ([]bool, []float64) {
	if m.seq == ctx.seq {
		return m.sat, m.rob
	}
	m.seq = ctx.seq
	m.sat, m.rob = m.inner.step(ctx)
	return m.sat, m.rob
}

func (m *batchMemoNode) state() int {
	if m.visited {
		return 0
	}
	m.visited = true
	return m.inner.state()
}

func (m *batchMemoNode) reset() {
	m.seq = 0
	m.inner.reset()
}

func (m *batchMemoNode) resetLane(lane int) { m.inner.resetLane(lane) }

// --- stateless batch nodes -------------------------------------------

type batchAtomNode struct {
	varIdx    int
	op        CmpOp
	threshold float64
	out       batchOut
}

//fleetvet:noalloc
func (a *batchAtomNode) step(ctx *batchCtx) ([]bool, []float64) {
	n := ctx.n
	vals := ctx.vals[a.varIdx*n : (a.varIdx+1)*n]
	sat, rob := a.out.sat[:n], a.out.rob[:n]
	th := a.threshold
	// One loop per comparison op: the per-lane arithmetic is exactly the
	// scalar atomNode switch with the dispatch hoisted out of the lane
	// loop.
	switch a.op {
	case OpLT:
		for k, v := range vals {
			sat[k], rob[k] = v < th, th-v
		}
	case OpLE:
		for k, v := range vals {
			sat[k], rob[k] = v <= th, th-v
		}
	case OpGT:
		for k, v := range vals {
			sat[k], rob[k] = v > th, v-th
		}
	case OpGE:
		for k, v := range vals {
			sat[k], rob[k] = v >= th, v-th
		}
	case OpEQ:
		for k, v := range vals {
			sat[k], rob[k] = v == th, -math.Abs(v-th)
		}
	case OpNE:
		for k, v := range vals {
			sat[k], rob[k] = v != th, math.Abs(v-th)
		}
	}
	return sat, rob
}

func (a *batchAtomNode) state() int    { return 0 }
func (a *batchAtomNode) reset()        {}
func (a *batchAtomNode) resetLane(int) {}

type batchConstNode struct{ out batchOut }

//fleetvet:noalloc
func (c *batchConstNode) step(ctx *batchCtx) ([]bool, []float64) {
	return c.out.sat[:ctx.n], c.out.rob[:ctx.n]
}

func (c *batchConstNode) state() int    { return 0 }
func (c *batchConstNode) reset()        {}
func (c *batchConstNode) resetLane(int) {}

type batchNotNode struct {
	child batchNode
	out   batchOut
}

//fleetvet:noalloc
func (nn *batchNotNode) step(ctx *batchCtx) ([]bool, []float64) {
	cs, cr := nn.child.step(ctx)
	sat, rob := nn.out.sat[:ctx.n], nn.out.rob[:ctx.n]
	for k := range cs {
		sat[k], rob[k] = !cs[k], -cr[k]
	}
	return sat, rob
}

func (nn *batchNotNode) state() int         { return nn.child.state() }
func (nn *batchNotNode) reset()             { nn.child.reset() }
func (nn *batchNotNode) resetLane(lane int) { nn.child.resetLane(lane) }

// batchFlatAndNode is the fused conjunction-of-ordering-predicates
// kernel iterated session-major: the atom loop is outer, the lane loop
// inner, so each linear form streams through the whole shard's values
// contiguously. Per-lane fold order equals flatAndNode exactly.
type batchFlatAndNode struct {
	atoms []fusedAtom
	out   batchOut
}

//fleetvet:noalloc
func (a *batchFlatAndNode) step(ctx *batchCtx) ([]bool, []float64) {
	n := ctx.n
	sat, rob := a.out.sat[:n], a.out.rob[:n]
	for k := range sat {
		sat[k], rob[k] = true, math.Inf(1)
	}
	for i := range a.atoms {
		at := &a.atoms[i]
		vals := ctx.vals[at.varIdx*n : (at.varIdx+1)*n]
		if at.strict {
			for k, v := range vals {
				cr := v*at.mul + at.add
				if !(cr > 0) {
					sat[k] = false
				}
				if cr < rob[k] || cr != cr {
					rob[k] = cr
				}
			}
		} else {
			for k, v := range vals {
				cr := v*at.mul + at.add
				if !(cr >= 0) {
					sat[k] = false
				}
				if cr < rob[k] || cr != cr {
					rob[k] = cr
				}
			}
		}
	}
	return sat, rob
}

func (a *batchFlatAndNode) state() int    { return 0 }
func (a *batchFlatAndNode) reset()        {}
func (a *batchFlatAndNode) resetLane(int) {}

type batchAndNode struct {
	children []batchNode
	out      batchOut
}

//fleetvet:noalloc
func (a *batchAndNode) step(ctx *batchCtx) ([]bool, []float64) {
	n := ctx.n
	sat, rob := a.out.sat[:n], a.out.rob[:n]
	for k := range sat {
		sat[k], rob[k] = true, math.Inf(1)
	}
	for _, c := range a.children {
		cs, cr := c.step(ctx)
		for k := range cs {
			sat[k] = sat[k] && cs[k]
			rob[k] = math.Min(rob[k], cr[k])
		}
	}
	return sat, rob
}

func (a *batchAndNode) state() int         { return batchChildrenState(a.children) }
func (a *batchAndNode) reset()             { batchResetChildren(a.children) }
func (a *batchAndNode) resetLane(lane int) { batchResetChildrenLane(a.children, lane) }

type batchOrNode struct {
	children []batchNode
	out      batchOut
}

//fleetvet:noalloc
func (o *batchOrNode) step(ctx *batchCtx) ([]bool, []float64) {
	n := ctx.n
	sat, rob := o.out.sat[:n], o.out.rob[:n]
	for k := range sat {
		sat[k], rob[k] = false, math.Inf(-1)
	}
	for _, c := range o.children {
		cs, cr := c.step(ctx)
		for k := range cs {
			sat[k] = sat[k] || cs[k]
			rob[k] = math.Max(rob[k], cr[k])
		}
	}
	return sat, rob
}

func (o *batchOrNode) state() int         { return batchChildrenState(o.children) }
func (o *batchOrNode) reset()             { batchResetChildren(o.children) }
func (o *batchOrNode) resetLane(lane int) { batchResetChildrenLane(o.children, lane) }

type batchImpliesNode struct {
	l, r batchNode
	out  batchOut
}

//fleetvet:noalloc
func (im *batchImpliesNode) step(ctx *batchCtx) ([]bool, []float64) {
	ls, lr := im.l.step(ctx)
	rs, rr := im.r.step(ctx)
	sat, rob := im.out.sat[:ctx.n], im.out.rob[:ctx.n]
	for k := range ls {
		sat[k] = !ls[k] || rs[k]
		rob[k] = math.Max(-lr[k], rr[k])
	}
	return sat, rob
}

func (im *batchImpliesNode) state() int { return im.l.state() + im.r.state() }
func (im *batchImpliesNode) reset()     { im.l.reset(); im.r.reset() }
func (im *batchImpliesNode) resetLane(lane int) {
	im.l.resetLane(lane)
	im.r.resetLane(lane)
}

func batchChildrenState(cs []batchNode) int {
	t := 0
	for _, c := range cs {
		t += c.state()
	}
	return t
}

func batchResetChildren(cs []batchNode) {
	for _, c := range cs {
		c.reset()
	}
}

func batchResetChildrenLane(cs []batchNode, lane int) {
	for _, c := range cs {
		c.resetLane(lane)
	}
}

// --- stateful batch nodes --------------------------------------------

// batchWindowNode is Once/Historically across the shard: per-node state
// is a [lanes]-wide vector of the scalar extremum cores (delay line +
// Lemire deque each), iterated session-major per push, so every lane's
// arithmetic is bit-identical to the per-session windowNode while the
// node's dispatch and the child's vector stay hot across the shard.
type batchWindowNode struct {
	child batchNode
	robC  []*extremumCore
	satC  []*extremumCore
	out   batchOut
}

func newBatchWindowNode(child batchNode, lo, hi int, isMin bool, width int) *batchWindowNode {
	w := &batchWindowNode{
		child: child,
		robC:  make([]*extremumCore, width),
		satC:  make([]*extremumCore, width),
		out:   newBatchOut(width),
	}
	for i := range w.robC {
		w.robC[i] = newExtremumCore(lo, hi, isMin)
		w.satC[i] = newExtremumCore(lo, hi, isMin)
	}
	return w
}

//fleetvet:noalloc
func (w *batchWindowNode) step(ctx *batchCtx) ([]bool, []float64) {
	cs, cr := w.child.step(ctx)
	sat, rob := w.out.sat[:ctx.n], w.out.rob[:ctx.n]
	for k := 0; k < ctx.n; k++ {
		lane := ctx.lanes[k]
		rob[k] = w.robC[lane].push(cr[k])
		sat[k] = w.satC[lane].push(boolToFloat(cs[k])) > 0.5
	}
	return sat, rob
}

func (w *batchWindowNode) state() int {
	t := w.child.state()
	for i := range w.robC {
		t += w.robC[i].state() + w.satC[i].state()
	}
	return t
}

func (w *batchWindowNode) reset() {
	w.child.reset()
	for i := range w.robC {
		w.robC[i].reset()
		w.satC[i].reset()
	}
}

func (w *batchWindowNode) resetLane(lane int) {
	w.child.resetLane(lane)
	w.robC[lane].reset()
	w.satC[lane].reset()
}

// batchSinceNode is L S[a,b] R across the shard, one pair of scalar
// since cores per lane.
type batchSinceNode struct {
	l, r batchNode
	robC []*sinceCore
	satC []*sinceCore
	out  batchOut
}

func newBatchSinceNode(l, r batchNode, lo, hi, width int) *batchSinceNode {
	s := &batchSinceNode{
		l: l, r: r,
		robC: make([]*sinceCore, width),
		satC: make([]*sinceCore, width),
		out:  newBatchOut(width),
	}
	for i := range s.robC {
		s.robC[i] = newSinceCore(lo, hi)
		s.satC[i] = newSinceCore(lo, hi)
	}
	return s
}

//fleetvet:noalloc
func (s *batchSinceNode) step(ctx *batchCtx) ([]bool, []float64) {
	ls, lr := s.l.step(ctx)
	rs, rr := s.r.step(ctx)
	sat, rob := s.out.sat[:ctx.n], s.out.rob[:ctx.n]
	for k := 0; k < ctx.n; k++ {
		lane := ctx.lanes[k]
		rob[k] = s.robC[lane].push(lr[k], rr[k])
		sat[k] = s.satC[lane].push(boolToFloat(ls[k]), boolToFloat(rs[k])) > 0.5
	}
	return sat, rob
}

func (s *batchSinceNode) state() int {
	t := s.l.state() + s.r.state()
	for i := range s.robC {
		t += s.robC[i].state() + s.satC[i].state()
	}
	return t
}

func (s *batchSinceNode) reset() {
	s.l.reset()
	s.r.reset()
	for i := range s.robC {
		s.robC[i].reset()
		s.satC[i].reset()
	}
}

func (s *batchSinceNode) resetLane(lane int) {
	s.l.resetLane(lane)
	s.r.resetLane(lane)
	s.robC[lane].reset()
	s.satC[lane].reset()
}

// --- group -----------------------------------------------------------

// BatchStreamGroup evaluates many past-only formulas across a whole
// shard of independent sessions (lanes) in one struct-of-arrays push:
// the formulas compile into the same hash-consed node DAG as
// StreamGroup, but every node carries [lanes]-wide state and output
// vectors and iterates session-major, so per-push dispatch, memo
// checks, and value loads amortize across the shard instead of being
// paid once per session. Per-lane results are bit-identical to pushing
// each lane's samples through its own StreamGroup (the batched
// differential tests enforce exact equality), and lanes reset
// independently, which is what lets a fleet shard recycle a lane for a
// fresh session without touching its neighbors.
type BatchStreamGroup struct {
	comp     *batchCompiler
	formulas []Formula
	roots    []batchNode
	outSat   [][]bool
	outRob   [][]float64
	width    int
	pushes   uint64
	laneN    []int // per-lane sample counts (snapshot/restore cursor)
	ctx      batchCtx
	seen     []bool // per-lane duplicate check scratch
}

// NewBatchStreamGroup creates an empty batched group at sampling period
// dtMin minutes with the given lane count.
func NewBatchStreamGroup(dtMin float64, width int) (*BatchStreamGroup, error) {
	if dtMin <= 0 {
		return nil, fmt.Errorf("stl: non-positive sampling period %v", dtMin)
	}
	if width <= 0 {
		return nil, fmt.Errorf("stl: batch group needs positive width, got %d", width)
	}
	return &BatchStreamGroup{
		comp:  newBatchCompiler(dtMin, width),
		width: width,
		laneN: make([]int, width),
		seen:  make([]bool, width),
	}, nil
}

// Add compiles a past-only formula into the group and returns its
// index. Formulas may only be added before the first push.
func (g *BatchStreamGroup) Add(f Formula) (int, error) {
	if f == nil {
		return 0, fmt.Errorf("stl: nil formula")
	}
	if g.pushes > 0 {
		return 0, fmt.Errorf("stl: cannot add formulas to a running group")
	}
	if !PastOnly(f) {
		return 0, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	root, err := g.comp.compile(f)
	if err != nil {
		return 0, err
	}
	g.formulas = append(g.formulas, f)
	g.roots = append(g.roots, root)
	g.outSat = append(g.outSat, nil)
	g.outRob = append(g.outRob, nil)
	return len(g.roots) - 1, nil
}

// Size returns the number of formulas in the group.
func (g *BatchStreamGroup) Size() int { return len(g.roots) }

// Width returns the lane count.
func (g *BatchStreamGroup) Width() int { return g.width }

// Len returns the number of batched pushes consumed.
func (g *BatchStreamGroup) Len() int { return int(g.pushes) }

// Dt returns the sampling period in minutes.
func (g *BatchStreamGroup) Dt() float64 { return g.comp.dt }

// Vars returns the variable table: PushLanes values are indexed by this
// order. The table grows only in Add, never during pushes.
func (g *BatchStreamGroup) Vars() []string { return g.comp.vars }

// VarIndex resolves a variable name to its value-matrix row.
func (g *BatchStreamGroup) VarIndex(name string) (int, bool) {
	i, ok := g.comp.varIdx[name]
	return i, ok
}

// PushLanes consumes one sample for each of the given lanes: vals is
// the struct-of-arrays value matrix, vals[v*len(lanes)+k] holding
// variable v (in Vars order) of lane lanes[k]. Lanes absent from the
// call do not advance. A duplicated lane ID is rejected before any
// operator state advances — it would double-advance that lane's
// operator state, silently corrupting its windows.
//
//fleetvet:noalloc
func (g *BatchStreamGroup) PushLanes(lanes []int, vals []float64) error {
	n := len(lanes)
	if n == 0 {
		return fmt.Errorf("stl: empty batch push")
	}
	for i, lane := range lanes {
		if lane < 0 || lane >= g.width {
			g.clearSeen(lanes[:i])
			return fmt.Errorf("stl: lane %d out of range [0, %d)", lane, g.width)
		}
		if g.seen[lane] {
			g.clearSeen(lanes[:i])
			return fmt.Errorf("stl: duplicate lane %d in one push", lane)
		}
		g.seen[lane] = true
	}
	g.clearSeen(lanes)
	if want := len(g.comp.vars) * n; len(vals) != want {
		return fmt.Errorf("stl: value matrix has %d entries, want %d (%d variables x %d lanes)",
			len(vals), want, len(g.comp.vars), n)
	}
	g.pushes++
	for _, lane := range lanes {
		g.laneN[lane]++
	}
	g.ctx = batchCtx{lanes: lanes, vals: vals, n: n, seq: g.pushes}
	for i, r := range g.roots {
		g.outSat[i], g.outRob[i] = r.step(&g.ctx)
	}
	g.ctx.vals = nil
	return nil
}

// clearSeen unmarks the duplicate-check scratch for the given lanes
// (only touched entries, so the check stays O(len(lanes)) per push).
func (g *BatchStreamGroup) clearSeen(lanes []int) {
	for _, lane := range lanes {
		g.seen[lane] = false
	}
}

// Sats returns formula i's satisfaction vector at the last push,
// indexed like the lanes slice that push was called with. The slice is
// reused by the next push; callers that retain it must copy.
func (g *BatchStreamGroup) Sats(i int) []bool { return g.outSat[i] }

// Robs returns formula i's robustness vector at the last push, indexed
// like the lanes slice that push was called with. The slice is reused
// by the next push; callers that retain it must copy.
func (g *BatchStreamGroup) Robs(i int) []float64 { return g.outRob[i] }

// StateSamples returns the total buffered per-sample entries across the
// group's unique operator nodes, summed over all lanes (hash-consed
// subformulas count once).
func (g *BatchStreamGroup) StateSamples() int {
	for _, m := range g.comp.memos {
		m.visited = false
	}
	t := 0
	for _, r := range g.roots {
		t += r.state()
	}
	return t
}

// ResetLane clears one lane's operator state, as if that lane had seen
// no samples; other lanes are untouched.
func (g *BatchStreamGroup) ResetLane(lane int) {
	for _, r := range g.roots {
		r.resetLane(lane)
	}
	g.laneN[lane] = 0
}

// LaneLen returns the number of samples lane has consumed since its
// last reset — the per-lane analogue of StreamGroup.Len, and the cursor
// a lane snapshot records.
func (g *BatchStreamGroup) LaneLen(lane int) int { return g.laneN[lane] }

// Reset clears all operator state in every lane. Sats/Robs return nil
// again until the next push, as on a fresh group.
func (g *BatchStreamGroup) Reset() {
	for _, r := range g.roots {
		r.reset()
	}
	for i := range g.outSat {
		g.outSat[i], g.outRob[i] = nil, nil
	}
	for i := range g.laneN {
		g.laneN[i] = 0
	}
	g.pushes = 0
}
