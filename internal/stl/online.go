package stl

import "fmt"

// PastOnly reports whether the formula can be evaluated online at the
// newest sample without future knowledge, i.e. it contains no
// future-time temporal operators (G, F, U).
func PastOnly(f Formula) bool {
	switch n := f.(type) {
	case *Atom, Const, nil:
		return true
	case *Not:
		return PastOnly(n.Child)
	case *And:
		for _, c := range n.Children {
			if !PastOnly(c) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range n.Children {
			if !PastOnly(c) {
				return false
			}
		}
		return true
	case *Implies:
		return PastOnly(n.L) && PastOnly(n.R)
	case *Globally, *Eventually, *Until:
		return false
	case *Once:
		return PastOnly(n.Child)
	case *Historically:
		return PastOnly(n.Child)
	case *Since:
		return PastOnly(n.L) && PastOnly(n.R)
	default:
		return false
	}
}

// OnlineMonitor incrementally evaluates a past-time-safe formula on a
// growing trace, one sample per control cycle. This is the run-time form
// of the paper's safety-context rules: each Table I rule body is a pure
// state predicate (derivatives are precomputed into trace variables), so
// checking "G[t0,te] body" online reduces to evaluating the body at each
// new sample.
type OnlineMonitor struct {
	formula Formula
	tr      *Trace

	violations int
	evaluated  int
}

// NewOnlineMonitor builds a monitor for the formula at sampling period
// dtMin. The formula must be past-only.
func NewOnlineMonitor(f Formula, dtMin float64) (*OnlineMonitor, error) {
	if f == nil {
		return nil, fmt.Errorf("stl: nil formula")
	}
	if !PastOnly(f) {
		return nil, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	tr, err := NewTrace(dtMin)
	if err != nil {
		return nil, err
	}
	return &OnlineMonitor{formula: f, tr: tr}, nil
}

// Push appends one sample and returns satisfaction at the new sample.
func (m *OnlineMonitor) Push(sample map[string]float64) (bool, error) {
	m.tr.Append(sample)
	sat, err := m.formula.Sat(m.tr, m.tr.Len()-1)
	if err != nil {
		return false, err
	}
	m.evaluated++
	if !sat {
		m.violations++
	}
	return sat, nil
}

// Robustness returns the quantitative margin at the newest sample.
func (m *OnlineMonitor) Robustness() (float64, error) {
	if m.tr.Len() == 0 {
		return 0, fmt.Errorf("stl: no samples pushed")
	}
	return m.formula.Robustness(m.tr, m.tr.Len()-1)
}

// Violations returns how many pushed samples violated the formula, and
// how many were evaluated — the running view of "G[t0,te] body".
func (m *OnlineMonitor) Violations() (violations, evaluated int) {
	return m.violations, m.evaluated
}

// Len returns the number of samples seen.
func (m *OnlineMonitor) Len() int { return m.tr.Len() }

// Reset clears the accumulated trace.
func (m *OnlineMonitor) Reset() {
	tr, err := NewTrace(m.tr.Dt())
	if err != nil {
		// Dt was validated at construction; this cannot happen.
		panic(err)
	}
	m.tr = tr
	m.violations = 0
	m.evaluated = 0
}
