package stl

import "fmt"

// PastOnly reports whether the formula can be evaluated online at the
// newest sample without future knowledge, i.e. it contains no
// future-time temporal operators (G, F, U).
func PastOnly(f Formula) bool {
	switch n := f.(type) {
	case *Atom, Const, nil:
		return true
	case *Not:
		return PastOnly(n.Child)
	case *And:
		for _, c := range n.Children {
			if !PastOnly(c) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range n.Children {
			if !PastOnly(c) {
				return false
			}
		}
		return true
	case *Implies:
		return PastOnly(n.L) && PastOnly(n.R)
	case *Globally, *Eventually, *Until:
		return false
	case *Once:
		return PastOnly(n.Child)
	case *Historically:
		return PastOnly(n.Child)
	case *Since:
		return PastOnly(n.L) && PastOnly(n.R)
	default:
		return false
	}
}

// OnlineMonitor incrementally evaluates a past-time-safe formula one
// sample per control cycle. This is the run-time form of the paper's
// safety-context rules: checking "G[t0,te] body" online reduces to
// evaluating the body at each new sample.
//
// The monitor runs on the incremental streaming engine (see Stream):
// every Push costs O(1) amortized and retained state is bounded by the
// formula's window lengths, never by session length, so a monitor can
// stay attached to a continuous serving session indefinitely. Verdicts
// and robustness are exactly those of evaluating the formula offline on
// the full recorded trace at each index.
type OnlineMonitor struct {
	stream *Stream

	violations int
	evaluated  int
}

// NewOnlineMonitor builds a monitor for the formula at sampling period
// dtMin. The formula must be past-only.
func NewOnlineMonitor(f Formula, dtMin float64) (*OnlineMonitor, error) {
	s, err := NewStream(f, dtMin)
	if err != nil {
		return nil, err
	}
	return &OnlineMonitor{stream: s}, nil
}

// Push appends one sample and returns satisfaction at the new sample.
// Every variable the formula references must be present in the sample.
func (m *OnlineMonitor) Push(sample map[string]float64) (bool, error) {
	sat, _, err := m.stream.Push(sample)
	if err != nil {
		return false, err
	}
	m.evaluated++
	if !sat {
		m.violations++
	}
	return sat, nil
}

// Robustness returns the quantitative margin at the newest sample.
func (m *OnlineMonitor) Robustness() (float64, error) {
	_, rob, err := m.stream.Last()
	return rob, err
}

// Violations returns how many pushed samples violated the formula, and
// how many were evaluated — the running view of "G[t0,te] body".
func (m *OnlineMonitor) Violations() (violations, evaluated int) {
	return m.violations, m.evaluated
}

// Len returns the number of samples seen.
func (m *OnlineMonitor) Len() int { return m.stream.Len() }

// StateSamples returns the number of per-sample entries currently
// buffered by the monitor's operator windows — bounded by the formula's
// windows, independent of Len.
func (m *OnlineMonitor) StateSamples() int { return m.stream.StateSamples() }

// Reset clears all operator state.
func (m *OnlineMonitor) Reset() {
	m.stream.Reset()
	m.violations = 0
	m.evaluated = 0
}

// TraceMonitor is the pre-streaming online monitor: it appends every
// sample to a grow-forever trace and re-evaluates the formula over it
// on each Push, which is O(n) per step and unbounded memory for
// unbounded-window formulas.
//
// Deprecated: use OnlineMonitor, which now runs on the incremental
// streaming engine with O(1) amortized pushes and O(window) state.
// TraceMonitor is retained as the baseline for the before/after
// benchmarks in bench_test.go and will be removed once they have a
// recorded history.
type TraceMonitor struct {
	formula Formula
	tr      *Trace

	violations int
	evaluated  int
}

// NewTraceMonitor builds the legacy trace-backed monitor.
func NewTraceMonitor(f Formula, dtMin float64) (*TraceMonitor, error) {
	if f == nil {
		return nil, fmt.Errorf("stl: nil formula")
	}
	if !PastOnly(f) {
		return nil, fmt.Errorf("stl: formula %q needs future knowledge; cannot monitor online", f)
	}
	tr, err := NewTrace(dtMin)
	if err != nil {
		return nil, err
	}
	return &TraceMonitor{formula: f, tr: tr}, nil
}

// Push appends one sample and returns satisfaction at the new sample.
func (m *TraceMonitor) Push(sample map[string]float64) (bool, error) {
	m.tr.Append(sample)
	sat, err := m.formula.Sat(m.tr, m.tr.Len()-1)
	if err != nil {
		return false, err
	}
	m.evaluated++
	if !sat {
		m.violations++
	}
	return sat, nil
}

// Robustness returns the quantitative margin at the newest sample.
func (m *TraceMonitor) Robustness() (float64, error) {
	if m.tr.Len() == 0 {
		return 0, fmt.Errorf("stl: no samples pushed")
	}
	return m.formula.Robustness(m.tr, m.tr.Len()-1)
}

// Violations returns the running violation/evaluation counters.
func (m *TraceMonitor) Violations() (violations, evaluated int) {
	return m.violations, m.evaluated
}

// Len returns the number of samples seen.
func (m *TraceMonitor) Len() int { return m.tr.Len() }

// Reset clears the accumulated trace.
func (m *TraceMonitor) Reset() {
	tr, err := NewTrace(m.tr.Dt())
	if err != nil {
		// Dt was validated at construction; this cannot happen.
		panic(err)
	}
	m.tr = tr
	m.violations = 0
	m.evaluated = 0
}
