package stl

import (
	"math/rand"
	"testing"
)

// TestBatchStreamGroupMatchesPerLane is the differential correctness
// contract of the batched engine: randomized past-only formulas pushed
// through one BatchStreamGroup across many lanes — with randomized
// active-lane subsets per push and staggered lane resets — must produce
// satisfaction and robustness exactly equal (==) to pushing each lane's
// sample stream through its own per-session StreamGroup.
func TestBatchStreamGroupMatchesPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 250; trial++ {
		nf := 1 + rng.Intn(4)
		formulas := make([]Formula, nf)
		for i := range formulas {
			formulas[i] = randPastFormula(rng, 1+rng.Intn(3))
		}
		width := 1 + rng.Intn(8)

		batch, err := NewBatchStreamGroup(1, width)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*StreamGroup, width)
		for lane := range refs {
			if refs[lane], err = NewStreamGroup(1); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range formulas {
			bi, err := batch.Add(f)
			if err != nil {
				t.Fatalf("trial %d: batch add %s: %v", trial, f, err)
			}
			if bi != i {
				t.Fatalf("trial %d: batch index %d, want %d", trial, bi, i)
			}
			for _, ref := range refs {
				if _, err := ref.Add(f); err != nil {
					t.Fatalf("trial %d: ref add %s: %v", trial, f, err)
				}
			}
		}
		// The batched and per-session compilers intern identically, so
		// the variable tables must agree position for position.
		vars := batch.Vars()
		refVars := refs[0].Vars()
		if len(vars) != len(refVars) {
			t.Fatalf("trial %d: var tables differ: %v vs %v", trial, vars, refVars)
		}
		for i := range vars {
			if vars[i] != refVars[i] {
				t.Fatalf("trial %d: var tables differ: %v vs %v", trial, vars, refVars)
			}
		}

		steps := 20 + rng.Intn(40)
		lanes := make([]int, 0, width)
		vals := make([]float64, 0, len(vars)*width)
		refVals := make([]float64, len(vars))
		for s := 0; s < steps; s++ {
			// Occasionally recycle a lane mid-run, as a fleet shard does
			// when a session completes and its lane restarts.
			if rng.Intn(8) == 0 {
				lane := rng.Intn(width)
				batch.ResetLane(lane)
				refs[lane].Reset()
			}
			// A random non-empty subset of lanes advances this push.
			lanes = lanes[:0]
			for lane := 0; lane < width; lane++ {
				if rng.Intn(4) > 0 {
					lanes = append(lanes, lane)
				}
			}
			if len(lanes) == 0 {
				lanes = append(lanes, rng.Intn(width))
			}
			n := len(lanes)
			vals = vals[:len(vars)*n]
			for k := range lanes {
				for v := range vars {
					vals[v*n+k] = -10 + 20*rng.Float64()
				}
			}
			if err := batch.PushLanes(lanes, vals); err != nil {
				t.Fatalf("trial %d step %d: batch push: %v", trial, s, err)
			}
			for k, lane := range lanes {
				for v := range vars {
					refVals[v] = vals[v*n+k]
				}
				if err := refs[lane].PushVector(refVals); err != nil {
					t.Fatalf("trial %d step %d: ref push lane %d: %v", trial, s, lane, err)
				}
			}
			for i := range formulas {
				sats, robs := batch.Sats(i), batch.Robs(i)
				for k, lane := range lanes {
					wantSat, wantRob := refs[lane].Sat(i), refs[lane].Rob(i)
					if sats[k] != wantSat || robs[k] != wantRob {
						t.Fatalf("trial %d step %d formula %d (%s) lane %d: batched (%v, %v), per-lane (%v, %v)",
							trial, s, i, formulas[i], lane, sats[k], robs[k], wantSat, wantRob)
					}
				}
			}
		}
	}
}

// TestBatchStreamGroupSharesState: hash-consing must dedup shared
// stateful subformulas across formulas exactly like the per-session
// group — total state equals one lane-vector of the shared window, not
// one per containing formula.
func TestBatchStreamGroupSharesState(t *testing.T) {
	shared := &Once{Bounds: Bounds{A: 0, B: 10}, Child: &Atom{Var: "x", Op: OpGT, Threshold: 1}}
	f1 := NewAnd(shared, &Atom{Var: "y", Op: OpLT, Threshold: 0})
	f2 := NewOr(shared, &Atom{Var: "y", Op: OpGT, Threshold: 5})

	const width = 4
	g, err := NewBatchStreamGroup(1, width)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Formula{f1, f2} {
		if _, err := g.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	solo, err := NewBatchStreamGroup(1, width)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Add(f1); err != nil {
		t.Fatal(err)
	}

	lanes := []int{0, 1, 2, 3}
	vals := make([]float64, 2*width)
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 50; s++ {
		for i := range vals {
			vals[i] = -5 + 10*rng.Float64()
		}
		if err := g.PushLanes(lanes, vals); err != nil {
			t.Fatal(err)
		}
		if err := solo.PushLanes(lanes, vals); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := g.StateSamples(), solo.StateSamples(); got != want {
		t.Fatalf("shared-window group holds %d state samples, want %d (the single shared window)", got, want)
	}
}

// TestBatchStreamGroupBoundedStateZeroAllocs: steady-state pushes must
// not allocate, and retained state must stay O(width x window) however
// long the lanes run.
func TestBatchStreamGroupBoundedStateZeroAllocs(t *testing.T) {
	f := MustParse("(H[0,30] (x > 0)) and ((x > 1) S[0,60] (y < 0))")
	const width = 16
	g, err := NewBatchStreamGroup(1, width)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(f); err != nil {
		t.Fatal(err)
	}
	lanes := make([]int, width)
	for i := range lanes {
		lanes[i] = i
	}
	vals := make([]float64, 2*width)
	rng := rand.New(rand.NewSource(8))
	push := func() {
		for i := range vals {
			vals[i] = -5 + 10*rng.Float64()
		}
		if err := g.PushLanes(lanes, vals); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		push()
	}
	if allocs := testing.AllocsPerRun(200, push); allocs != 0 {
		t.Fatalf("steady-state batched push allocates %v times", allocs)
	}
	for i := 0; i < 2000; i++ {
		push()
	}
	// Deque occupancy is data-dependent within the window bound, so the
	// invariant is a cap, not exact equality: each lane holds at most
	// O(sum of window lengths) entries — 31+31 for the Historically
	// cores, 61+61 for the Since candidate deques — no matter how long
	// the lanes run.
	const perLaneCap = 31 + 31 + 61 + 61
	if got := g.StateSamples(); got > width*perLaneCap {
		t.Fatalf("state is not O(width x window): %d samples, cap %d", got, width*perLaneCap)
	}
}

// TestBatchStreamGroupValidation covers the construction and push error
// paths.
func TestBatchStreamGroupValidation(t *testing.T) {
	if _, err := NewBatchStreamGroup(0, 4); err == nil {
		t.Error("zero dt should be rejected")
	}
	if _, err := NewBatchStreamGroup(1, 0); err == nil {
		t.Error("zero width should be rejected")
	}
	g, err := NewBatchStreamGroup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(nil); err == nil {
		t.Error("nil formula should be rejected")
	}
	future := MustParse("F[0,10] (x > 0)")
	if _, err := g.Add(future); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := g.Add(MustParse("x > 0")); err != nil {
		t.Fatal(err)
	}
	if err := g.PushLanes(nil, nil); err == nil {
		t.Error("empty lane set should be rejected")
	}
	if err := g.PushLanes([]int{2}, []float64{1}); err == nil {
		t.Error("out-of-range lane should be rejected")
	}
	if err := g.PushLanes([]int{0}, []float64{1, 2}); err == nil {
		t.Error("wrong value-matrix size should be rejected")
	}
	if err := g.PushLanes([]int{0, 1}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(MustParse("y > 0")); err == nil {
		t.Error("adding to a running group should be rejected")
	}
}

// TestBatchStreamGroupRejectsDuplicateLanes: a duplicated lane ID in
// one push would double-advance that lane's operator state; it must be
// rejected before anything advances, and the group must stay usable.
func TestBatchStreamGroupRejectsDuplicateLanes(t *testing.T) {
	g, err := NewBatchStreamGroup(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(MustParse("H[0,5] (x > 0)")); err != nil {
		t.Fatal(err)
	}
	if err := g.PushLanes([]int{0, 1, 0}, make([]float64, 3)); err == nil {
		t.Fatal("duplicate lane accepted")
	}
	if g.Len() != 0 {
		t.Fatalf("rejected push advanced the group to %d", g.Len())
	}
	// The duplicate-check scratch must be clean: a valid push using the
	// same lanes succeeds afterwards.
	if err := g.PushLanes([]int{0, 1, 2}, make([]float64, 3)); err != nil {
		t.Fatalf("valid push after rejection: %v", err)
	}
}
