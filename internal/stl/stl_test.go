package stl

import (
	"math"
	"testing"
	"testing/quick"
)

// testTrace builds a 1-minute-sampled trace from named series.
func testTrace(t *testing.T, series map[string][]float64) *Trace {
	t.Helper()
	tr, err := NewTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range series {
		if err := tr.Set(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func mustSat(t *testing.T, f Formula, tr *Trace, i int) bool {
	t.Helper()
	s, err := f.Sat(tr, i)
	if err != nil {
		t.Fatalf("Sat(%s, %d): %v", f, i, err)
	}
	return s
}

func mustRob(t *testing.T, f Formula, tr *Trace, i int) float64 {
	t.Helper()
	r, err := f.Robustness(tr, i)
	if err != nil {
		t.Fatalf("Robustness(%s, %d): %v", f, i, err)
	}
	return r
}

func TestTraceBasics(t *testing.T) {
	if _, err := NewTrace(0); err == nil {
		t.Error("zero dt should fail")
	}
	tr := testTrace(t, map[string][]float64{"x": {1, 2, 3}})
	if tr.Len() != 3 || tr.Dt() != 1 {
		t.Errorf("Len=%d Dt=%v", tr.Len(), tr.Dt())
	}
	if err := tr.Set("y", []float64{1, 2}); err == nil {
		t.Error("mismatched series length should fail")
	}
	if _, err := tr.Value("zzz", 0); err == nil {
		t.Error("unknown variable should fail")
	}
	if _, err := tr.Value("x", 5); err == nil {
		t.Error("out-of-range index should fail")
	}
	v, err := tr.Value("x", 1)
	if err != nil || v != 2 {
		t.Errorf("Value(x,1) = %v, %v", v, err)
	}
}

func TestTraceAppend(t *testing.T) {
	tr, err := NewTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(map[string]float64{"a": 1, "b": 10})
	tr.Append(map[string]float64{"a": 2, "b": 20})
	tr.Append(map[string]float64{"a": 3}) // b missing -> NaN
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	b2, err := tr.Value("b", 2)
	if err != nil || !math.IsNaN(b2) {
		t.Errorf("missing value should be NaN, got %v", b2)
	}
	// Late-added variable backfills NaN.
	tr.Append(map[string]float64{"a": 4, "c": 100})
	c0, err := tr.Value("c", 0)
	if err != nil || !math.IsNaN(c0) {
		t.Errorf("backfill should be NaN, got %v (%v)", c0, err)
	}
	names := tr.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestAtomOps(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {5}})
	tests := []struct {
		op  CmpOp
		th  float64
		sat bool
		rob float64
	}{
		{OpLT, 6, true, 1},
		{OpLT, 5, false, 0},
		{OpLE, 5, true, 0},
		{OpGT, 4, true, 1},
		{OpGT, 5, false, 0},
		{OpGE, 5, true, 0},
		{OpEQ, 5, true, 0},
		{OpEQ, 7, false, -2},
		{OpNE, 7, true, 2},
		{OpNE, 5, false, 0},
	}
	for _, tt := range tests {
		a := &Atom{Var: "x", Op: tt.op, Threshold: tt.th}
		if got := mustSat(t, a, tr, 0); got != tt.sat {
			t.Errorf("%s: sat %v, want %v", a, got, tt.sat)
		}
		if got := mustRob(t, a, tr, 0); math.Abs(got-tt.rob) > 1e-12 {
			t.Errorf("%s: rob %v, want %v", a, got, tt.rob)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {5}, "y": {10}})
	xBig := &Atom{Var: "x", Op: OpGT, Threshold: 3}    // rob 2
	ySmall := &Atom{Var: "y", Op: OpLT, Threshold: 12} // rob 2
	yBig := &Atom{Var: "y", Op: OpGT, Threshold: 20}   // rob -10

	and := NewAnd(xBig, ySmall)
	if !mustSat(t, and, tr, 0) || mustRob(t, and, tr, 0) != 2 {
		t.Errorf("and: %v %v", mustSat(t, and, tr, 0), mustRob(t, and, tr, 0))
	}
	and2 := NewAnd(xBig, yBig)
	if mustSat(t, and2, tr, 0) || mustRob(t, and2, tr, 0) != -10 {
		t.Error("and with false conjunct should be false with min robustness")
	}
	or := NewOr(yBig, xBig)
	if !mustSat(t, or, tr, 0) || mustRob(t, or, tr, 0) != 2 {
		t.Error("or should take max robustness")
	}
	not := &Not{Child: yBig}
	if !mustSat(t, not, tr, 0) || mustRob(t, not, tr, 0) != 10 {
		t.Error("not should negate robustness")
	}
	imp := &Implies{L: yBig, R: xBig}
	if !mustSat(t, imp, tr, 0) {
		t.Error("false antecedent implies anything")
	}
	if r := mustRob(t, imp, tr, 0); r != 10 {
		t.Errorf("implication robustness %v, want max(-(-10), 2) = 10", r)
	}
	imp2 := &Implies{L: xBig, R: yBig}
	if mustSat(t, imp2, tr, 0) {
		t.Error("true antecedent, false consequent should fail")
	}
}

func TestConst(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {0}})
	if !mustSat(t, Const(true), tr, 0) || mustSat(t, Const(false), tr, 0) {
		t.Error("const sat broken")
	}
	if !math.IsInf(mustRob(t, Const(true), tr, 0), 1) {
		t.Error("true robustness should be +inf")
	}
	if !math.IsInf(mustRob(t, Const(false), tr, 0), -1) {
		t.Error("false robustness should be -inf")
	}
}

func TestGloballyAndEventually(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {1, 2, 3, 4, 5, 6}})
	pos := &Atom{Var: "x", Op: OpGT, Threshold: 0}
	big := &Atom{Var: "x", Op: OpGT, Threshold: 4}

	g := &Globally{Bounds: Unbounded, Child: pos}
	if !mustSat(t, g, tr, 0) {
		t.Error("G(x>0) should hold")
	}
	if r := mustRob(t, g, tr, 0); r != 1 {
		t.Errorf("G robustness %v, want min margin 1", r)
	}
	g2 := &Globally{Bounds: Unbounded, Child: big}
	if mustSat(t, g2, tr, 0) {
		t.Error("G(x>4) should fail")
	}
	// Windowed: x>4 holds on [4,5] minutes (samples 4,5).
	g3 := &Globally{Bounds: Bounds{A: 4, B: 5}, Child: big}
	if !mustSat(t, g3, tr, 0) {
		t.Error("G[4,5](x>4) should hold from sample 0")
	}
	f := &Eventually{Bounds: Unbounded, Child: big}
	if !mustSat(t, f, tr, 0) {
		t.Error("F(x>4) should hold")
	}
	if r := mustRob(t, f, tr, 0); r != 2 {
		t.Errorf("F robustness %v, want max margin 2", r)
	}
	f2 := &Eventually{Bounds: Bounds{A: 0, B: 2}, Child: big}
	if mustSat(t, f2, tr, 0) {
		t.Error("F[0,2](x>4) should fail (x<=3 there)")
	}
}

func TestUntil(t *testing.T) {
	// x stays low until y fires at sample 3.
	tr := testTrace(t, map[string][]float64{
		"x": {1, 1, 1, 9, 9},
		"y": {0, 0, 0, 1, 0},
	})
	low := &Atom{Var: "x", Op: OpLT, Threshold: 5}
	fire := &Atom{Var: "y", Op: OpEQ, Threshold: 1}
	u := &Until{Bounds: Unbounded, L: low, R: fire}
	if !mustSat(t, u, tr, 0) {
		t.Error("low U fire should hold at 0")
	}
	if mustSat(t, u, tr, 4) {
		t.Error("low U fire should fail at 4 (no future fire)")
	}
	// Bounded until that excludes the fire sample.
	u2 := &Until{Bounds: Bounds{A: 0, B: 2}, L: low, R: fire}
	if mustSat(t, u2, tr, 0) {
		t.Error("bounded until should miss the fire at sample 3")
	}
	if r := mustRob(t, u, tr, 0); r < 0 {
		t.Errorf("until robustness %v, want non-negative (equality atom caps margin at 0)", r)
	}
}

func TestSince(t *testing.T) {
	// Context fires at sample 1; x stays high afterwards.
	tr := testTrace(t, map[string][]float64{
		"ctx": {0, 1, 0, 0, 0},
		"x":   {0, 9, 9, 9, 2},
	})
	high := &Atom{Var: "x", Op: OpGT, Threshold: 5}
	ctx := &Atom{Var: "ctx", Op: OpEQ, Threshold: 1}
	s := &Since{Bounds: Unbounded, L: high, R: ctx}
	if !mustSat(t, s, tr, 3) {
		t.Error("high S ctx should hold at 3")
	}
	if mustSat(t, s, tr, 4) {
		t.Error("high S ctx should fail at 4 (x dropped)")
	}
	if mustSat(t, s, tr, 0) {
		t.Error("high S ctx should fail at 0 (ctx never fired)")
	}
	// Bounded since: window too short to reach the ctx sample.
	s2 := &Since{Bounds: Bounds{A: 0, B: 1}, L: high, R: ctx}
	if mustSat(t, s2, tr, 3) {
		t.Error("S[0,1] should not reach ctx two samples back")
	}
	if r := mustRob(t, s, tr, 3); r < 0 {
		t.Errorf("since robustness %v, want non-negative (equality atom caps margin at 0)", r)
	}
}

func TestOnceAndHistorically(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {1, 5, 1, 1}})
	big := &Atom{Var: "x", Op: OpGT, Threshold: 4}
	pos := &Atom{Var: "x", Op: OpGT, Threshold: 0}
	o := &Once{Bounds: Unbounded, Child: big}
	if !mustSat(t, o, tr, 3) {
		t.Error("O(x>4) should remember sample 1")
	}
	o2 := &Once{Bounds: Bounds{A: 0, B: 1}, Child: big}
	if mustSat(t, o2, tr, 3) {
		t.Error("O[0,1] should forget sample 1 at sample 3")
	}
	h := &Historically{Bounds: Unbounded, Child: pos}
	if !mustSat(t, h, tr, 3) {
		t.Error("H(x>0) should hold")
	}
	h2 := &Historically{Bounds: Unbounded, Child: big}
	if mustSat(t, h2, tr, 3) {
		t.Error("H(x>4) should fail")
	}
}

func TestBoundsValidation(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {1, 2}})
	g := &Globally{Bounds: Bounds{A: 5, B: 2}, Child: &Atom{Var: "x", Op: OpGT, Threshold: 0}}
	if _, err := g.Sat(tr, 0); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := g.Robustness(tr, 0); err == nil {
		t.Error("inverted bounds should error in robustness")
	}
}

func TestSatTraceHelpers(t *testing.T) {
	tr := testTrace(t, map[string][]float64{"x": {1, 2, 3}})
	pos := &Atom{Var: "x", Op: OpGT, Threshold: 0}
	ok, err := SatTrace(pos, tr)
	if err != nil || !ok {
		t.Errorf("SatTrace: %v %v", ok, err)
	}
	r, err := RobustnessTrace(pos, tr)
	if err != nil || r != 1 {
		t.Errorf("RobustnessTrace = %v, %v; want 1", r, err)
	}
}

func TestDtScaling(t *testing.T) {
	// Same physical window, different sampling rates.
	tr5, _ := NewTrace(5)
	_ = tr5.Set("x", []float64{0, 0, 1, 0})
	fire := &Atom{Var: "x", Op: OpEQ, Threshold: 1}
	// x fires at minute 10 -> F[0,10] should catch it, F[0,5] should not.
	f10 := &Eventually{Bounds: Bounds{A: 0, B: 10}, Child: fire}
	f5 := &Eventually{Bounds: Bounds{A: 0, B: 5}, Child: fire}
	if s, _ := f10.Sat(tr5, 0); !s {
		t.Error("F[0,10] at 5-min sampling should include sample 2")
	}
	if s, _ := f5.Sat(tr5, 0); s {
		t.Error("F[0,5] at 5-min sampling should exclude sample 2")
	}
}

// Property: robustness sign agrees with boolean satisfaction for random
// atoms and random traces (the fundamental soundness of quantitative
// semantics). Zero robustness is the boundary and excluded.
func TestRobustnessSignProperty(t *testing.T) {
	f := func(vals []int8, th int8, opRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tr, _ := NewTrace(1)
		series := make([]float64, len(vals))
		for i, v := range vals {
			series[i] = float64(v)
		}
		_ = tr.Set("x", series)
		ops := []CmpOp{OpLT, OpLE, OpGT, OpGE}
		atom := &Atom{Var: "x", Op: ops[int(opRaw)%len(ops)], Threshold: float64(th)}
		for _, wrap := range []Formula{
			atom,
			&Globally{Bounds: Unbounded, Child: atom},
			&Eventually{Bounds: Unbounded, Child: atom},
			&Once{Bounds: Unbounded, Child: atom},
			&Historically{Bounds: Unbounded, Child: atom},
		} {
			i := len(vals) / 2
			sat, err := wrap.Sat(tr, i)
			if err != nil {
				return false
			}
			rob, err := wrap.Robustness(tr, i)
			if err != nil {
				return false
			}
			if rob > 0 && !sat {
				return false
			}
			if rob < 0 && sat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan duality  G φ == not F not φ  on random traces.
func TestGloballyEventuallyDuality(t *testing.T) {
	f := func(vals []int8, th int8) bool {
		if len(vals) == 0 {
			return true
		}
		tr, _ := NewTrace(1)
		series := make([]float64, len(vals))
		for i, v := range vals {
			series[i] = float64(v)
		}
		_ = tr.Set("x", series)
		atom := &Atom{Var: "x", Op: OpGT, Threshold: float64(th)}
		g := &Globally{Bounds: Unbounded, Child: atom}
		dual := &Not{Child: &Eventually{Bounds: Unbounded, Child: &Not{Child: atom}}}
		for i := 0; i < len(vals); i++ {
			s1, err1 := g.Sat(tr, i)
			s2, err2 := dual.Sat(tr, i)
			if err1 != nil || err2 != nil || s1 != s2 {
				return false
			}
			r1, _ := g.Robustness(tr, i)
			r2, _ := dual.Robustness(tr, i)
			if math.Abs(r1-r2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
