// Snapshot/restore of streaming operator state. A StreamGroup and a
// BatchStreamGroup compiled from the same formulas in the same Add
// order build isomorphic hash-consed DAGs (same canonical cache keys,
// same memo policy, same compile recursion), so walking the compiler's
// memo list in creation order visits corresponding stateful nodes in
// both engines. Only the stateful cores (delay lines, extremum deques,
// Since recursions) are serialized, in canonical logical order — ring
// buffers oldest-first, deques front-to-back — which makes a scalar
// group's bytes identical to a batched lane's bytes for the same
// logical state, and makes re-encoding a restored group reproduce the
// original bytes exactly.
//
// Per-push memo caches (seq/sat/rob) are deliberately not serialized:
// a memo only short-circuits while its seq equals the current push's
// sequence number, and every push after a restore uses a strictly
// larger sequence, so stale caches can never be read.

package stl

import (
	"fmt"

	"repro/internal/snapshot"
)

var (
	_ snapshot.Snapshotter     = (*StreamGroup)(nil)
	_ snapshot.LaneSnapshotter = (*BatchStreamGroup)(nil)
)

// SnapshotState implements snapshot.Snapshotter: the push count plus
// every unique stateful operator core in compile order.
func (g *StreamGroup) SnapshotState(enc *snapshot.Encoder) {
	enc.Int(g.n)
	for _, m := range g.comp.memos {
		switch t := m.inner.(type) {
		case *windowNode:
			snapshotExtremum(enc, t.rob)
			snapshotExtremum(enc, t.sat)
		case *sinceNode:
			snapshotSince(enc, t.rob)
			snapshotSince(enc, t.sat)
		}
	}
}

// RestoreState implements snapshot.Snapshotter. The group must have
// been built from the same formulas in the same Add order as the one
// that produced the bytes; a shape mismatch surfaces as a decode error.
func (g *StreamGroup) RestoreState(dec *snapshot.Decoder) error {
	n := dec.Int()
	if dec.Err() == nil && n < 0 {
		return fmt.Errorf("stl: negative restored sample count %d", n)
	}
	for _, m := range g.comp.memos {
		m.seq = 0
		switch t := m.inner.(type) {
		case *windowNode:
			restoreExtremum(dec, t.rob)
			restoreExtremum(dec, t.sat)
		case *sinceNode:
			restoreSince(dec, t.rob)
			restoreSince(dec, t.sat)
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	g.n = n
	for i := range g.sats {
		g.sats[i], g.robs[i] = false, 0
	}
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter: the lane's sample
// count plus its slice of every unique stateful operator, in the same
// compile order — and therefore the same bytes — as the scalar
// SnapshotState of an identically built StreamGroup.
func (g *BatchStreamGroup) SnapshotLane(lane int, enc *snapshot.Encoder) {
	enc.Int(g.laneN[lane])
	for _, m := range g.comp.memos {
		switch t := m.inner.(type) {
		case *batchWindowNode:
			snapshotExtremum(enc, t.robC[lane])
			snapshotExtremum(enc, t.satC[lane])
		case *batchSinceNode:
			snapshotSince(enc, t.robC[lane])
			snapshotSince(enc, t.satC[lane])
		}
	}
}

// RestoreLane implements snapshot.LaneSnapshotter, accepting bytes from
// either SnapshotLane or a scalar group's SnapshotState. Other lanes
// are untouched.
func (g *BatchStreamGroup) RestoreLane(lane int, dec *snapshot.Decoder) error {
	n := dec.Int()
	if dec.Err() == nil && n < 0 {
		return fmt.Errorf("stl: negative restored sample count %d", n)
	}
	for _, m := range g.comp.memos {
		switch t := m.inner.(type) {
		case *batchWindowNode:
			restoreExtremum(dec, t.robC[lane])
			restoreExtremum(dec, t.satC[lane])
		case *batchSinceNode:
			restoreSince(dec, t.robC[lane])
			restoreSince(dec, t.satC[lane])
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	g.laneN[lane] = n
	// The group-global push sequence must stay ahead of the restored
	// lane so the running-group guards (Add rejection, recompile checks)
	// see a live stream; it never rewinds, so memo seq guards stay sound.
	if uint64(n) > g.pushes {
		g.pushes = uint64(n)
	}
	return nil
}

// snapshotDelay writes a delay line as its fill count followed by the
// buffered values oldest-first — the canonical logical order, so the
// encoding is independent of the ring's physical head position.
func snapshotDelay(enc *snapshot.Encoder, d *delayLine) {
	enc.Int(d.n)
	for k := 0; k < d.n; k++ {
		enc.Float64(d.buf[(d.head+k)%len(d.buf)])
	}
}

func restoreDelay(dec *snapshot.Decoder, d *delayLine) {
	n := dec.Count(8)
	if dec.Err() != nil {
		return
	}
	if n > len(d.buf) {
		dec.Fail(fmt.Sprintf("delay line holds %d values, capacity %d", n, len(d.buf)))
		return
	}
	d.head = 0
	d.n = n
	for k := 0; k < n; k++ {
		d.buf[k] = dec.Float64()
	}
}

// snapshotDeque writes a monotonic deque front-to-back as (index,
// value) pairs — again canonical, independent of physical layout.
func snapshotDeque(enc *snapshot.Encoder, q *monoDeque) {
	enc.Int(q.len())
	for k := q.head; k < len(q.idx); k++ {
		enc.Int(q.idx[k])
		enc.Float64(q.val[k])
	}
}

func restoreDeque(dec *snapshot.Decoder, q *monoDeque) {
	n := dec.Count(9)
	if dec.Err() != nil {
		return
	}
	if n > cap(q.idx) {
		dec.Fail(fmt.Sprintf("deque holds %d entries, capacity %d", n, cap(q.idx)))
		return
	}
	q.reset()
	for k := 0; k < n; k++ {
		q.idx = append(q.idx, dec.Int())
		q.val = append(q.val, dec.Float64())
	}
}

func snapshotExtremum(enc *snapshot.Encoder, c *extremumCore) {
	enc.Int(c.i)
	snapshotDelay(enc, c.delay)
	if c.hi < 0 {
		enc.Float64(c.agg)
	} else {
		snapshotDeque(enc, c.dq)
	}
}

func restoreExtremum(dec *snapshot.Decoder, c *extremumCore) {
	i := dec.Int()
	if dec.Err() == nil && i < 0 {
		dec.Fail("negative extremum sample index")
		return
	}
	c.reset()
	c.i = i
	restoreDelay(dec, c.delay)
	if c.hi < 0 {
		c.agg = dec.Float64()
	} else {
		restoreDeque(dec, c.dq)
	}
}

func snapshotSince(enc *snapshot.Encoder, c *sinceCore) {
	enc.Int(c.i)
	snapshotDelay(enc, c.psiDelay)
	if c.phiWin != nil {
		snapshotDeque(enc, c.phiWin)
	}
	if c.hi < 0 {
		enc.Float64(c.z)
	} else {
		snapshotDeque(enc, c.cand)
	}
}

func restoreSince(dec *snapshot.Decoder, c *sinceCore) {
	i := dec.Int()
	if dec.Err() == nil && i < 0 {
		dec.Fail("negative since sample index")
		return
	}
	c.reset()
	c.i = i
	restoreDelay(dec, c.psiDelay)
	if c.phiWin != nil {
		restoreDeque(dec, c.phiWin)
	}
	if c.hi < 0 {
		c.z = dec.Float64()
	} else {
		restoreDeque(dec, c.cand)
	}
}
