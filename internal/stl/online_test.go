package stl

import "testing"

func TestPastOnly(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"BG > 180", true},
		{"x > 1 and y < 2", true},
		{"not (x > 1) => y < 2", true},
		{"O[0,60] (x > 1)", true},
		{"H (x > 0)", true},
		{"(x > 0) S (y == 1)", true},
		{"G (x > 0)", false},
		{"F[0,25] (x > 0)", false},
		{"(x > 0) U (y == 1)", false},
		{"x > 1 and F (y > 0)", false},
		{"true", true},
	}
	for _, tt := range tests {
		f := MustParse(tt.src)
		if got := PastOnly(f); got != tt.want {
			t.Errorf("PastOnly(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestOnlineMonitorRejectsFuture(t *testing.T) {
	if _, err := NewOnlineMonitor(MustParse("F (x > 1)"), 5); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := NewOnlineMonitor(nil, 5); err == nil {
		t.Error("nil formula should be rejected")
	}
	if _, err := NewOnlineMonitor(MustParse("x > 1"), 0); err == nil {
		t.Error("zero dt should be rejected")
	}
}

func TestOnlineMonitorStreams(t *testing.T) {
	// Rule: in hyper context with rising BG, do not decrease insulin.
	f := MustParse("(BG > 120 and BG' > 0) => not (u == 1)")
	m, err := NewOnlineMonitor(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		bg, dbg, u float64
		wantSat    bool
	}{
		{110, 0, 4, true},  // in range
		{130, 4, 2, true},  // hyper rising but increasing insulin: fine
		{150, 4, 1, false}, // hyper rising and decreasing insulin: UCA
		{160, 2, 4, true},
	}
	for i, s := range steps {
		sat, err := m.Push(map[string]float64{"BG": s.bg, "BG'": s.dbg, "u": s.u})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if sat != s.wantSat {
			t.Errorf("step %d: sat=%v, want %v", i, sat, s.wantSat)
		}
	}
	v, e := m.Violations()
	if v != 1 || e != 4 {
		t.Errorf("violations=%d/%d, want 1/4", v, e)
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d", m.Len())
	}
	r, err := m.Robustness()
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 {
		t.Errorf("robustness at last (satisfied) sample = %v, want positive", r)
	}
}

func TestOnlineMonitorSince(t *testing.T) {
	// Once the context fired, x must have stayed high since then.
	f := MustParse("(x > 5) S (ctx == 1)")
	m, err := NewOnlineMonitor(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	push := func(x, ctx float64) bool {
		t.Helper()
		sat, err := m.Push(map[string]float64{"x": x, "ctx": ctx})
		if err != nil {
			t.Fatal(err)
		}
		return sat
	}
	if push(0, 0) {
		t.Error("no ctx yet: since should be false")
	}
	if !push(9, 1) {
		t.Error("ctx fires now: since should hold")
	}
	if !push(8, 0) {
		t.Error("x stayed high: since should hold")
	}
	if push(2, 0) {
		t.Error("x dropped: since should fail")
	}
}

func TestOnlineMonitorRobustnessEmpty(t *testing.T) {
	m, err := NewOnlineMonitor(MustParse("x > 0"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Robustness(); err == nil {
		t.Error("robustness with no samples should error")
	}
}

func TestOnlineMonitorReset(t *testing.T) {
	m, err := NewOnlineMonitor(MustParse("x > 0"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(map[string]float64{"x": -1}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Error("Reset should clear trace")
	}
	v, e := m.Violations()
	if v != 0 || e != 0 {
		t.Error("Reset should clear counters")
	}
}
