package stl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Trace is a uniformly sampled multi-variable signal.
type Trace struct {
	dt   float64
	n    int
	vars map[string][]float64
}

// NewTrace creates an empty trace with sampling period dtMin minutes.
func NewTrace(dtMin float64) (*Trace, error) {
	if dtMin <= 0 {
		return nil, fmt.Errorf("stl: non-positive sampling period %v", dtMin)
	}
	return &Trace{dt: dtMin, vars: make(map[string][]float64)}, nil
}

// Dt returns the sampling period in minutes.
func (t *Trace) Dt() float64 { return t.dt }

// Len returns the number of samples.
func (t *Trace) Len() int { return t.n }

// Set installs a named series. All series must share one length.
func (t *Trace) Set(name string, values []float64) error {
	if len(t.vars) > 0 && t.n != len(values) {
		return fmt.Errorf("stl: series %q has %d samples, trace has %d", name, len(values), t.n)
	}
	t.vars[name] = values
	t.n = len(values)
	return nil
}

// Append extends every named series by one sample. Missing names get NaN.
func (t *Trace) Append(sample map[string]float64) {
	for name := range sample { //fleetvet:nondeterministic order-independent: each new name is backfilled in isolation
		if _, ok := t.vars[name]; !ok {
			// Backfill a new variable with NaN for earlier samples.
			t.vars[name] = make([]float64, t.n)
			for i := range t.vars[name] {
				t.vars[name][i] = math.NaN()
			}
		}
	}
	for name, series := range t.vars { //fleetvet:nondeterministic order-independent: each series is extended in isolation
		v, ok := sample[name]
		if !ok {
			v = math.NaN()
		}
		t.vars[name] = append(series, v)
	}
	t.n++
}

// Value returns the value of a variable at sample i.
func (t *Trace) Value(name string, i int) (float64, error) {
	series, ok := t.vars[name]
	if !ok {
		return 0, fmt.Errorf("stl: unknown variable %q", name)
	}
	if i < 0 || i >= len(series) {
		return 0, fmt.Errorf("stl: index %d out of range for %q (len %d)", i, name, len(series))
	}
	return series[i], nil
}

// Names returns the sorted variable names.
func (t *Trace) Names() []string {
	names := make([]string, 0, len(t.vars))
	for n := range t.vars { //fleetvet:nondeterministic order-independent: names are sorted before return
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Formula is a bounded-time STL formula node.
type Formula interface {
	// Sat evaluates boolean satisfaction at sample i.
	Sat(tr *Trace, i int) (bool, error)
	// Robustness evaluates the quantitative semantics at sample i;
	// positive means satisfied with margin, negative violated.
	Robustness(tr *Trace, i int) (float64, error)
	// String renders the formula in the parser's concrete syntax.
	String() string
}

// CmpOp is a comparison operator of an atomic predicate.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota + 1
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	default:
		return "?"
	}
}

// Atom is the atomic predicate  var op threshold.
type Atom struct {
	Var       string
	Op        CmpOp
	Threshold float64
}

// Sat implements Formula.
func (a *Atom) Sat(tr *Trace, i int) (bool, error) {
	v, err := tr.Value(a.Var, i)
	if err != nil {
		return false, err
	}
	switch a.Op {
	case OpLT:
		return v < a.Threshold, nil
	case OpLE:
		return v <= a.Threshold, nil
	case OpGT:
		return v > a.Threshold, nil
	case OpGE:
		return v >= a.Threshold, nil
	case OpEQ:
		return v == a.Threshold, nil
	case OpNE:
		return v != a.Threshold, nil
	default:
		return false, fmt.Errorf("stl: invalid comparison op %d", int(a.Op))
	}
}

// Robustness implements Formula. Equality atoms use the standard
// -|v-θ| encoding (and its negation for !=).
func (a *Atom) Robustness(tr *Trace, i int) (float64, error) {
	v, err := tr.Value(a.Var, i)
	if err != nil {
		return 0, err
	}
	switch a.Op {
	case OpLT, OpLE:
		return a.Threshold - v, nil
	case OpGT, OpGE:
		return v - a.Threshold, nil
	case OpEQ:
		return -math.Abs(v - a.Threshold), nil
	case OpNE:
		return math.Abs(v - a.Threshold), nil
	default:
		return 0, fmt.Errorf("stl: invalid comparison op %d", int(a.Op))
	}
}

// String implements Formula.
func (a *Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Var, a.Op, trimFloat(a.Threshold))
}

// Const is the constant true/false formula.
type Const bool

// Sat implements Formula.
func (c Const) Sat(*Trace, int) (bool, error) { return bool(c), nil }

// Robustness implements Formula.
func (c Const) Robustness(*Trace, int) (float64, error) {
	if c {
		return math.Inf(1), nil
	}
	return math.Inf(-1), nil
}

// String implements Formula.
func (c Const) String() string {
	if c {
		return "true"
	}
	return "false"
}

// Not negates a formula.
type Not struct{ Child Formula }

// Sat implements Formula.
func (n *Not) Sat(tr *Trace, i int) (bool, error) {
	s, err := n.Child.Sat(tr, i)
	return !s, err
}

// Robustness implements Formula.
func (n *Not) Robustness(tr *Trace, i int) (float64, error) {
	r, err := n.Child.Robustness(tr, i)
	return -r, err
}

// String implements Formula.
func (n *Not) String() string { return "not (" + n.Child.String() + ")" }

// And is n-ary conjunction.
type And struct{ Children []Formula }

// NewAnd builds a conjunction.
func NewAnd(children ...Formula) *And { return &And{Children: children} }

// Sat implements Formula.
func (a *And) Sat(tr *Trace, i int) (bool, error) {
	for _, c := range a.Children {
		s, err := c.Sat(tr, i)
		if err != nil {
			return false, err
		}
		if !s {
			return false, nil
		}
	}
	return true, nil
}

// Robustness implements Formula (minimum over conjuncts).
func (a *And) Robustness(tr *Trace, i int) (float64, error) {
	r := math.Inf(1)
	for _, c := range a.Children {
		cr, err := c.Robustness(tr, i)
		if err != nil {
			return 0, err
		}
		r = math.Min(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (a *And) String() string { return joinChildren(a.Children, " and ") }

// Or is n-ary disjunction.
type Or struct{ Children []Formula }

// NewOr builds a disjunction.
func NewOr(children ...Formula) *Or { return &Or{Children: children} }

// Sat implements Formula.
func (o *Or) Sat(tr *Trace, i int) (bool, error) {
	for _, c := range o.Children {
		s, err := c.Sat(tr, i)
		if err != nil {
			return false, err
		}
		if s {
			return true, nil
		}
	}
	return false, nil
}

// Robustness implements Formula (maximum over disjuncts).
func (o *Or) Robustness(tr *Trace, i int) (float64, error) {
	r := math.Inf(-1)
	for _, c := range o.Children {
		cr, err := c.Robustness(tr, i)
		if err != nil {
			return 0, err
		}
		r = math.Max(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (o *Or) String() string { return joinChildren(o.Children, " or ") }

// Implies is material implication, encoded as ¬L ∨ R.
type Implies struct{ L, R Formula }

// Sat implements Formula.
func (im *Implies) Sat(tr *Trace, i int) (bool, error) {
	l, err := im.L.Sat(tr, i)
	if err != nil {
		return false, err
	}
	if !l {
		return true, nil
	}
	return im.R.Sat(tr, i)
}

// Robustness implements Formula.
func (im *Implies) Robustness(tr *Trace, i int) (float64, error) {
	lr, err := im.L.Robustness(tr, i)
	if err != nil {
		return 0, err
	}
	rr, err := im.R.Robustness(tr, i)
	if err != nil {
		return 0, err
	}
	return math.Max(-lr, rr), nil
}

// String implements Formula.
func (im *Implies) String() string {
	return "(" + im.L.String() + ") => (" + im.R.String() + ")"
}

// Bounds is a temporal interval [A,B] in minutes. B may be +Inf, which
// clamps to the end (future operators) or start (past operators) of the
// trace.
type Bounds struct{ A, B float64 }

// Unbounded is [0, +inf).
var Unbounded = Bounds{A: 0, B: math.Inf(1)}

func (b Bounds) valid() error {
	if b.A < 0 || b.B < b.A {
		return fmt.Errorf("stl: invalid bounds [%v,%v]", b.A, b.B)
	}
	return nil
}

// window converts the minute bounds to inclusive sample offsets.
func (b Bounds) window(dt float64, horizon int) (lo, hi int, err error) {
	if err := b.valid(); err != nil {
		return 0, 0, err
	}
	lo = int(math.Ceil(b.A/dt - 1e-9))
	if math.IsInf(b.B, 1) {
		return lo, horizon, nil
	}
	hi = int(math.Floor(b.B/dt + 1e-9))
	return lo, hi, nil
}

// String renders the bounds.
func (b Bounds) String() string {
	if b.A == 0 && math.IsInf(b.B, 1) {
		return ""
	}
	hi := "inf"
	if !math.IsInf(b.B, 1) {
		hi = trimFloat(b.B)
	}
	return "[" + trimFloat(b.A) + "," + hi + "]"
}

// Globally is  G[a,b] φ : φ holds at every sample within the window.
type Globally struct {
	Bounds Bounds
	Child  Formula
}

// Sat implements Formula.
func (g *Globally) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := g.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return false, err
	}
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < 0 {
			continue
		}
		s, err := g.Child.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if !s {
			return false, nil
		}
	}
	return true, nil
}

// Robustness implements Formula.
func (g *Globally) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := g.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return 0, err
	}
	r := math.Inf(1)
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < 0 {
			continue
		}
		cr, err := g.Child.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		r = math.Min(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (g *Globally) String() string {
	return "G" + g.Bounds.String() + " (" + g.Child.String() + ")"
}

// Eventually is  F[a,b] φ : φ holds at some sample within the window.
type Eventually struct {
	Bounds Bounds
	Child  Formula
}

// Sat implements Formula.
func (f *Eventually) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := f.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return false, err
	}
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < 0 {
			continue
		}
		s, err := f.Child.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if s {
			return true, nil
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (f *Eventually) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := f.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return 0, err
	}
	r := math.Inf(-1)
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < 0 {
			continue
		}
		cr, err := f.Child.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		r = math.Max(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (f *Eventually) String() string {
	return "F" + f.Bounds.String() + " (" + f.Child.String() + ")"
}

// Until is  L U[a,b] R : R holds at some j in the window and L holds at
// every sample from i+1 through j.
type Until struct {
	Bounds Bounds
	L, R   Formula
}

// Sat implements Formula.
func (u *Until) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := u.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return false, err
	}
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < i {
			continue
		}
		rs, err := u.R.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if rs {
			ok := true
			for k := i; k < j; k++ {
				ls, err := u.L.Sat(tr, k)
				if err != nil {
					return false, err
				}
				if !ls {
					ok = false
					break
				}
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (u *Until) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := u.Bounds.window(tr.Dt(), tr.Len()-1-i)
	if err != nil {
		return 0, err
	}
	best := math.Inf(-1)
	for j := i + lo; j <= i+hi && j < tr.Len(); j++ {
		if j < i {
			continue
		}
		rr, err := u.R.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		m := rr
		for k := i; k < j; k++ {
			lr, err := u.L.Robustness(tr, k)
			if err != nil {
				return 0, err
			}
			m = math.Min(m, lr)
		}
		best = math.Max(best, m)
	}
	return best, nil
}

// String implements Formula.
func (u *Until) String() string {
	return "(" + u.L.String() + ") U" + u.Bounds.String() + " (" + u.R.String() + ")"
}

// Since is the past-time dual  L S[a,b] R : R held at some j ≤ i within
// the window, and L has held at every sample after j through i. It is
// the operator of the paper's HMS formula (Eq. 2).
type Since struct {
	Bounds Bounds
	L, R   Formula
}

// Sat implements Formula.
func (s *Since) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := s.Bounds.window(tr.Dt(), i)
	if err != nil {
		return false, err
	}
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		rs, err := s.R.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if rs {
			ok := true
			for k := j + 1; k <= i; k++ {
				ls, err := s.L.Sat(tr, k)
				if err != nil {
					return false, err
				}
				if !ls {
					ok = false
					break
				}
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (s *Since) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := s.Bounds.window(tr.Dt(), i)
	if err != nil {
		return 0, err
	}
	best := math.Inf(-1)
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		rr, err := s.R.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		m := rr
		for k := j + 1; k <= i; k++ {
			lr, err := s.L.Robustness(tr, k)
			if err != nil {
				return 0, err
			}
			m = math.Min(m, lr)
		}
		best = math.Max(best, m)
	}
	return best, nil
}

// String implements Formula.
func (s *Since) String() string {
	return "(" + s.L.String() + ") S" + s.Bounds.String() + " (" + s.R.String() + ")"
}

// Once is the past-time eventually  O[a,b] φ.
type Once struct {
	Bounds Bounds
	Child  Formula
}

// Sat implements Formula.
func (o *Once) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := o.Bounds.window(tr.Dt(), i)
	if err != nil {
		return false, err
	}
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		s, err := o.Child.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if s {
			return true, nil
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (o *Once) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := o.Bounds.window(tr.Dt(), i)
	if err != nil {
		return 0, err
	}
	r := math.Inf(-1)
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		cr, err := o.Child.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		r = math.Max(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (o *Once) String() string {
	return "O" + o.Bounds.String() + " (" + o.Child.String() + ")"
}

// Historically is the past-time globally  H[a,b] φ.
type Historically struct {
	Bounds Bounds
	Child  Formula
}

// Sat implements Formula.
func (h *Historically) Sat(tr *Trace, i int) (bool, error) {
	lo, hi, err := h.Bounds.window(tr.Dt(), i)
	if err != nil {
		return false, err
	}
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		s, err := h.Child.Sat(tr, j)
		if err != nil {
			return false, err
		}
		if !s {
			return false, nil
		}
	}
	return true, nil
}

// Robustness implements Formula.
func (h *Historically) Robustness(tr *Trace, i int) (float64, error) {
	lo, hi, err := h.Bounds.window(tr.Dt(), i)
	if err != nil {
		return 0, err
	}
	r := math.Inf(1)
	for off := lo; off <= hi; off++ {
		j := i - off
		if j < 0 {
			break
		}
		cr, err := h.Child.Robustness(tr, j)
		if err != nil {
			return 0, err
		}
		r = math.Min(r, cr)
	}
	return r, nil
}

// String implements Formula.
func (h *Historically) String() string {
	return "H" + h.Bounds.String() + " (" + h.Child.String() + ")"
}

// SatTrace evaluates G[0,end] φ over the whole trace: the trace-level
// satisfaction used when checking SCS rules offline.
func SatTrace(f Formula, tr *Trace) (bool, error) {
	g := &Globally{Bounds: Unbounded, Child: f}
	return g.Sat(tr, 0)
}

// RobustnessTrace evaluates the robustness of G[0,end] φ over the trace.
func RobustnessTrace(f Formula, tr *Trace) (float64, error) {
	g := &Globally{Bounds: Unbounded, Child: f}
	return g.Robustness(tr, 0)
}

func joinChildren(children []Formula, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, sep)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
