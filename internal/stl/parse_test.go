package stl

import (
	"math"
	"strings"
	"testing"
)

func TestParseAtom(t *testing.T) {
	f, err := Parse("BG > 180")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := f.(*Atom)
	if !ok {
		t.Fatalf("got %T", f)
	}
	if a.Var != "BG" || a.Op != OpGT || a.Threshold != 180 {
		t.Errorf("parsed %+v", a)
	}
}

func TestParsePrimedIdentifiers(t *testing.T) {
	f, err := Parse("BG' > 0 and IOB' <= 0")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := f.(*And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("got %T: %v", f, f)
	}
	if a := and.Children[0].(*Atom); a.Var != "BG'" {
		t.Errorf("first var %q, want BG'", a.Var)
	}
}

func TestParseTableIRule(t *testing.T) {
	// Rule 1 of Table I: G((BG>BGT ∧ BG'>0) ∧ (IOB'<0 ∧ IOB<β1) ⇒ ¬u1)
	src := "G ((BG > 120 and BG' > 0) and (IOB' < 0 and IOB < 2.5) => not (u == 1))"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := f.(*Globally)
	if !ok {
		t.Fatalf("top-level %T, want *Globally", f)
	}
	if _, ok := g.Child.(*Implies); !ok {
		t.Fatalf("child %T, want *Implies", g.Child)
	}
	// Evaluate: context true + u1 issued -> violation.
	tr, _ := NewTrace(5)
	_ = tr.Set("BG", []float64{150})
	_ = tr.Set("BG'", []float64{1})
	_ = tr.Set("IOB'", []float64{-0.1})
	_ = tr.Set("IOB", []float64{1.0})
	_ = tr.Set("u", []float64{1})
	sat, err := f.Sat(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("rule should be violated when UCA issued in context")
	}
	// Different action: satisfied.
	_ = tr.Set("u", []float64{4})
	if sat, _ := f.Sat(tr, 0); !sat {
		t.Error("rule should hold for a different action")
	}
}

func TestParseBounds(t *testing.T) {
	f, err := Parse("F[0,25] (BG > 70)")
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := f.(*Eventually)
	if !ok {
		t.Fatalf("got %T", f)
	}
	if ev.Bounds.A != 0 || ev.Bounds.B != 25 {
		t.Errorf("bounds %+v", ev.Bounds)
	}
	f2, err := Parse("G[0,inf] (BG > 40)")
	if err != nil {
		t.Fatal(err)
	}
	g := f2.(*Globally)
	if !math.IsInf(g.Bounds.B, 1) {
		t.Errorf("inf bound parsed as %v", g.Bounds.B)
	}
}

func TestParseSinceUntil(t *testing.T) {
	f, err := Parse("(x > 0) S[0,30] (y == 1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*Since); !ok {
		t.Fatalf("got %T, want *Since", f)
	}
	f2, err := Parse("(x > 0) U (y == 1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.(*Until); !ok {
		t.Fatalf("got %T, want *Until", f2)
	}
}

func TestParseHMSFormula(t *testing.T) {
	// Eq. 2 shape: G((F[0,ts] u3) S context)
	src := "G ((F[0,30] (u == 3)) S ((BG < 120 and BG' < 0) and IOB > 3))"
	if _, err := Parse(src); err != nil {
		t.Fatalf("HMS formula should parse: %v", err)
	}
}

func TestParseOperatorsAndSymbols(t *testing.T) {
	tests := []string{
		"x > 1 && y < 2",
		"x > 1 || y < 2",
		"!(x > 1)",
		"not x > 1",
		"x != 5",
		"x == 5 => y >= 2",
		"true",
		"false",
		"O[0,60] (x > 1)",
		"H (x > 0)",
		"x > -3.5",
		"x < 1e3",
	}
	for _, src := range tests {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"x >",
		"> 5",
		"x = 5",
		"x & y",
		"x | y",
		"(x > 1",
		"x > 1)",
		"G[5,2] (x > 1)",
		"G[-1,2] (x > 1)",
		"F[0,] (x > 1)",
		"F[0 5] (x > 1)",
		"x > 1 extra",
		"x @ 5",
		"x > 1 and",
	}
	for _, src := range tests {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestImpliesRightAssociative(t *testing.T) {
	f, err := Parse("x > 1 => y > 2 => z > 3")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := f.(*Implies)
	if !ok {
		t.Fatalf("got %T", f)
	}
	if _, ok := top.R.(*Implies); !ok {
		t.Error("=> should be right-associative")
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Every formula's String() must re-parse to an equivalent formula.
	sources := []string{
		"BG > 180",
		"(BG > 120 and BG' > 0) => not (u == 1)",
		"G[0,60] (x > 1 or y <= 2)",
		"F[5,25] (BG > 70)",
		"(x > 0) S[0,30] (y == 1)",
		"(x > 0) U[0,30] (y == 1)",
		"O[0,60] (x != 3)",
		"H[0,10] (x >= 0)",
		"true and not false",
	}
	tr, _ := NewTrace(5)
	_ = tr.Set("BG", []float64{150, 160, 170, 165, 150, 140})
	_ = tr.Set("BG'", []float64{0, 2, 2, -1, -3, -2})
	_ = tr.Set("x", []float64{1, 2, 3, 0, 1, 2})
	_ = tr.Set("y", []float64{0, 1, 0, 2, 1, 0})
	_ = tr.Set("u", []float64{4, 1, 4, 3, 2, 4})
	for _, src := range sources {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, f1.String(), err)
		}
		for i := 0; i < tr.Len(); i++ {
			s1, e1 := f1.Sat(tr, i)
			s2, e2 := f2.Sat(tr, i)
			if e1 != nil || e2 != nil || s1 != s2 {
				t.Errorf("%q: divergence at %d (%v/%v, %v/%v)", src, i, s1, s2, e1, e2)
			}
		}
	}
}

func TestLexErrorMessages(t *testing.T) {
	_, err := Parse("x = 5")
	if err == nil || !strings.Contains(err.Error(), "'='") {
		t.Errorf("want helpful '=' error, got %v", err)
	}
}
