// Package optimize implements the bound-constrained limited-memory
// quasi-Newton optimizer the paper uses to learn STL thresholds
// (Section III-C2): L-BFGS-B style, with the inverse Hessian estimated by
// two-loop recursion rather than formed explicitly, box constraints
// handled by gradient projection, and a backtracking Armijo line search
// over projected iterates.
//
// This is the projected-LBFGS variant — adequate for the low-dimensional
// threshold problems here; the deviation from the full
// Byrd-Lu-Nocedal-Zhu subspace algorithm is documented in DESIGN.md.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// Objective evaluates f(x). Gradient fills grad with ∇f(x); it may be nil
// in Problem, in which case central finite differences are used.
type Objective func(x []float64) float64

// Gradient fills grad with ∇f(x).
type Gradient func(x, grad []float64)

// Problem describes a box-constrained minimization.
type Problem struct {
	F     Objective
	Grad  Gradient  // optional; nil selects numerical differentiation
	Lower []float64 // optional; nil means -inf for every coordinate
	Upper []float64 // optional; nil means +inf
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	Memory        int     // history pairs for two-loop recursion (default 10)
	MaxIterations int     // default 200
	GradTolerance float64 // stop when the projected gradient inf-norm falls below (default 1e-8)
	FTolerance    float64 // stop on relative objective change below (default 1e-12)
	StepTolerance float64 // line-search floor (default 1e-14)
}

func (o Options) withDefaults() Options {
	if o.Memory <= 0 {
		o.Memory = 10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.GradTolerance <= 0 {
		o.GradTolerance = 1e-8
	}
	if o.FTolerance <= 0 {
		o.FTolerance = 1e-12
	}
	if o.StepTolerance <= 0 {
		o.StepTolerance = 1e-14
	}
	return o
}

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64
	F          float64
	Iterations int
	Evals      int
	Converged  bool
	// Status describes which criterion stopped the solver.
	Status string
}

// ErrInvalidProblem reports a structurally invalid problem definition.
var ErrInvalidProblem = errors.New("optimize: invalid problem")

// Minimize runs projected L-BFGS from x0.
func Minimize(p Problem, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("%w: empty start point", ErrInvalidProblem)
	}
	if p.F == nil {
		return Result{}, fmt.Errorf("%w: nil objective", ErrInvalidProblem)
	}
	if p.Lower != nil && len(p.Lower) != n {
		return Result{}, fmt.Errorf("%w: lower bounds have %d entries, want %d", ErrInvalidProblem, len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return Result{}, fmt.Errorf("%w: upper bounds have %d entries, want %d", ErrInvalidProblem, len(p.Upper), n)
	}
	for i := 0; i < n; i++ {
		if lo, hi := p.lower(i), p.upper(i); lo > hi {
			return Result{}, fmt.Errorf("%w: lower[%d]=%v > upper[%d]=%v", ErrInvalidProblem, i, lo, i, hi)
		}
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return p.F(x)
	}
	grad := func(x, g []float64) {
		if p.Grad != nil {
			p.Grad(x, g)
			return
		}
		numGrad(eval, x, g)
	}

	x := make([]float64, n)
	copy(x, x0)
	p.project(x)

	g := make([]float64, n)
	fx := eval(x)
	grad(x, g)

	// Limited-memory history.
	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	alphaBuf := make([]float64, opts.Memory)

	res := Result{X: x, F: fx}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter
		// Convergence on projected gradient.
		if pg := p.projGradNorm(x, g); pg < opts.GradTolerance {
			res.Converged = true
			res.Status = "projected gradient below tolerance"
			break
		}

		// Two-loop recursion for the search direction d = -H·g.
		copy(dir, g)
		m := len(hist)
		for i := m - 1; i >= 0; i-- {
			h := hist[i]
			alphaBuf[i] = h.rho * dot(h.s, dir)
			axpy(-alphaBuf[i], h.y, dir)
		}
		if m > 0 {
			last := hist[m-1]
			gamma := dot(last.s, last.y) / dot(last.y, last.y)
			scale(gamma, dir)
		}
		for i := 0; i < m; i++ {
			h := hist[i]
			beta := h.rho * dot(h.y, dir)
			axpy(alphaBuf[i]-beta, h.s, dir)
		}
		neg(dir)

		// Descent check; fall back to steepest descent when the
		// curvature history misleads.
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
		}

		// Weak-Wolfe line search (Lewis-Overton bisection): Armijo for
		// sufficient decrease, plus a curvature condition that
		// guarantees s·y > 0 so the quasi-Newton update stays well
		// posed. Iterates are projected into the box after stepping;
		// when the projection is active the curvature condition is
		// waived (bounds truncate the line).
		const (
			c1 = 1e-4
			c2 = 0.9
		)
		g0d := dot(g, dir)
		step, lo, hi := 1.0, 0.0, math.Inf(1)
		var fNew float64
		ok := false
		for ls := 0; ls < 60; ls++ {
			projected := false
			for i := range xNew {
				xNew[i] = x[i] + step*dir[i]
			}
			p.project(xNew)
			for i := range xNew {
				if xNew[i] != x[i]+step*dir[i] {
					projected = true
					break
				}
			}
			fNew = eval(xNew)
			var dg float64
			for i := range xNew {
				dg += g[i] * (xNew[i] - x[i])
			}
			switch {
			case fNew > fx+c1*dg || (dg >= 0 && fNew >= fx):
				// Insufficient decrease: shrink.
				hi = step
				step = (lo + hi) / 2
			default:
				grad(xNew, gNew)
				if !projected && dot(gNew, dir) < c2*g0d {
					// Curvature too negative: lengthen.
					lo = step
					if math.IsInf(hi, 1) {
						step *= 2
					} else {
						step = (lo + hi) / 2
					}
					continue
				}
				ok = true
			}
			if ok || step < opts.StepTolerance {
				break
			}
		}
		if !ok {
			res.Converged = true
			res.Status = "line search could not improve (stationary under bounds)"
			break
		}

		// Update history with the curvature pair.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		// Keep the pair only under a relative curvature condition:
		// an absolute floor would freeze the history once steps become
		// small, stalling convergence with a stale Hessian model.
		if sy := dot(s, y); sy > 1e-10*math.Sqrt(dot(s, s))*math.Sqrt(dot(y, y)) {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > opts.Memory {
				hist = hist[1:]
			}
		}

		fPrev := fx
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew

		if math.Abs(fPrev-fx) <= opts.FTolerance*(1+math.Abs(fx)) {
			res.Iterations = iter + 1
			res.Converged = true
			res.Status = "objective change below tolerance"
			break
		}
	}
	if !res.Converged {
		res.Status = "iteration limit reached"
	}
	res.X = x
	res.F = fx
	res.Evals = evals
	return res, nil
}

func (p *Problem) lower(i int) float64 {
	if p.Lower == nil {
		return math.Inf(-1)
	}
	return p.Lower[i]
}

func (p *Problem) upper(i int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[i]
}

// project clamps x into the box.
func (p *Problem) project(x []float64) {
	for i := range x {
		if lo := p.lower(i); x[i] < lo {
			x[i] = lo
		}
		if hi := p.upper(i); x[i] > hi {
			x[i] = hi
		}
	}
}

// projGradNorm is the inf-norm of the projected gradient: components
// pushing against an active bound are ignored.
func (p *Problem) projGradNorm(x, g []float64) float64 {
	var norm float64
	for i := range x {
		gi := g[i]
		if x[i] <= p.lower(i) && gi > 0 {
			gi = 0
		}
		if x[i] >= p.upper(i) && gi < 0 {
			gi = 0
		}
		norm = math.Max(norm, math.Abs(gi))
	}
	return norm
}

// numGrad fills g with a central-difference gradient estimate.
func numGrad(f func([]float64) float64, x, g []float64) {
	const eps = 1e-6
	for i := range x {
		h := eps * math.Max(1, math.Abs(x[i]))
		orig := x[i]
		x[i] = orig + h
		fp := f(x)
		x[i] = orig - h
		fm := f(x)
		x[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func neg(x []float64) {
	for i := range x {
		x[i] = -x[i]
	}
}
