package optimize

import (
	"math"
	"testing"
)

func TestValidation(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	if _, err := Minimize(Problem{F: f}, nil, Options{}); err == nil {
		t.Error("empty start should fail")
	}
	if _, err := Minimize(Problem{}, []float64{1}, Options{}); err == nil {
		t.Error("nil objective should fail")
	}
	if _, err := Minimize(Problem{F: f, Lower: []float64{0, 0}}, []float64{1}, Options{}); err == nil {
		t.Error("bound length mismatch should fail")
	}
	if _, err := Minimize(Problem{F: f, Lower: []float64{2}, Upper: []float64{1}}, []float64{1}, Options{}); err == nil {
		t.Error("crossed bounds should fail")
	}
}

func TestQuadratic1D(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	res, err := Minimize(Problem{F: f}, []float64{-10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: %s", res.Status)
	}
	if math.Abs(res.X[0]-3) > 1e-5 {
		t.Errorf("x = %v, want 3", res.X[0])
	}
}

func TestQuadraticND(t *testing.T) {
	// f = sum (x_i - i)^2 with analytic gradient.
	f := func(x []float64) float64 {
		var s float64
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	g := func(x, grad []float64) {
		for i, v := range x {
			grad[i] = 2 * (v - float64(i))
		}
	}
	x0 := make([]float64, 10)
	res, err := Minimize(Problem{F: f, Grad: g}, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-5 {
			t.Errorf("x[%d] = %v, want %d", i, v, i)
		}
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	g := func(x, grad []float64) {
		grad[0] = -2*(1-x[0]) - 400*x[0]*(x[1]-x[0]*x[0])
		grad[1] = 200 * (x[1] - x[0]*x[0])
	}
	res, err := Minimize(Problem{F: f, Grad: g}, []float64{-1.2, 1}, Options{MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1,1); status %s after %d iters", res.X, res.Status, res.Iterations)
	}
}

func TestRosenbrockNumericalGradient(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(Problem{F: f}, []float64{-1.2, 1}, Options{MaxIterations: 800})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("x = %v, want (1,1) with numerical gradient", res.X)
	}
}

func TestActiveBound(t *testing.T) {
	// Unconstrained minimum at 3; box [5,10] makes 5 the solution.
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	res, err := Minimize(Problem{
		F:     f,
		Lower: []float64{5},
		Upper: []float64{10},
	}, []float64{8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-5) > 1e-8 {
		t.Errorf("x = %v, want bound 5", res.X[0])
	}
	if !res.Converged {
		t.Errorf("should converge at active bound: %s", res.Status)
	}
}

func TestStartOutsideBoxIsProjected(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := Minimize(Problem{
		F:     f,
		Lower: []float64{-1},
		Upper: []float64{1},
	}, []float64{100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-6 {
		t.Errorf("x = %v, want 0", res.X[0])
	}
}

func TestMixedBounds(t *testing.T) {
	// Minimize sum of shifted quadratics with some active constraints.
	f := func(x []float64) float64 {
		targets := []float64{-5, 0.5, 7}
		var s float64
		for i, v := range x {
			d := v - targets[i]
			s += d * d
		}
		return s
	}
	res, err := Minimize(Problem{
		F:     f,
		Lower: []float64{0, 0, 0},
		Upper: []float64{1, 1, 1},
	}, []float64{0.5, 0.5, 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}

func TestNonSmoothAbs(t *testing.T) {
	// |x - 2| is non-smooth at the solution; solver should still get close.
	f := func(x []float64) float64 { return math.Abs(x[0] - 2) }
	res, err := Minimize(Problem{F: f}, []float64{-7}, Options{MaxIterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-3 {
		t.Errorf("x = %v, want ~2", res.X[0])
	}
}

func TestExponentialLossShape(t *testing.T) {
	// The package's actual workload: a TMEE-style tight loss
	// loss(b) = mean over data of (e^{-r} + r - 1)/(1 + e^{-2r}), r = b - mu.
	data := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	loss := func(x []float64) float64 {
		var s float64
		for _, mu := range data {
			r := x[0] - mu
			s += math.Exp(-r) + (r-1)/(1+math.Exp(-2*r))
		}
		return s / float64(len(data))
	}
	res, err := Minimize(Problem{
		F:     loss,
		Lower: []float64{0},
		Upper: []float64{50},
	}, []float64{10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The tight threshold should sit near the data's upper range: above
	// the mean, not far above the max.
	if res.X[0] < 2.0 || res.X[0] > 4.5 {
		t.Errorf("tight threshold = %v, want within (2.0, 4.5] near max(data)=3", res.X[0])
	}
}

func TestIterationLimit(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(Problem{F: f}, []float64{-1.2, 1}, Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("2 iterations should not converge on Rosenbrock")
	}
	if res.Status != "iteration limit reached" {
		t.Errorf("status %q", res.Status)
	}
}

func TestEvalsCounted(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := Minimize(Problem{F: f}, []float64{4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals <= 0 {
		t.Error("evaluation count missing")
	}
}

func TestDeterministic(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r1, err := Minimize(Problem{F: f}, []float64{-1.2, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(Problem{F: f}, []float64{-1.2, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.X[0] != r2.X[0] || r1.X[1] != r2.X[1] || r1.Evals != r2.Evals {
		t.Error("optimizer is not deterministic")
	}
}
