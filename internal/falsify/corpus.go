package falsify

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fault"
)

// Eval is one evaluated scenario: the instantiated program and the
// margin trajectory summary of its closed-loop run.
type Eval struct {
	// Program is the instantiated scenario.
	Program fault.Program `json:"program"`
	// Text is the program's canonical text encoding (its identity).
	Text string `json:"text"`
	// X is the search vector that produced the program; nil for direct
	// replays.
	X []float64 `json:"x,omitempty"`
	// MinMargin is the lowest robustness margin the monitor reported
	// over the run — the falsification objective. Negative means the
	// monitor saw a rule violation.
	MinMargin float64 `json:"min_margin"`
	// MinStep is the control cycle attaining MinMargin.
	MinStep int `json:"min_step"`
	// Alarms counts monitor alarm cycles over the run.
	Alarms int `json:"alarms"`
	// Hazard reports whether the run's trace carries a ground-truth
	// hazard label (the search found an actual safety violation, not
	// just a near-miss).
	Hazard bool `json:"hazard"`
}

// Corpus is a ranked scenario collection: the hardest (lowest-margin)
// programs a search visited, hardest first, deduplicated by canonical
// program text.
type Corpus struct {
	// Platform and Patient identify the closed loop the corpus was
	// searched against; Steps is the run horizon in control cycles.
	Platform string `json:"platform"`
	Patient  int    `json:"patient"`
	Steps    int    `json:"steps"`
	// Seed is the search seed; a corpus regenerates exactly from it.
	Seed int64 `json:"seed"`
	// Evals is the ranked scenario list, ascending MinMargin.
	Evals []Eval `json:"evals"`
	// Visited counts objective evaluations; Skipped counts search
	// vectors that instantiated to invalid programs.
	Visited int `json:"visited"`
	Skipped int `json:"skipped"`

	keep int
	seen map[string]int // canonical text -> index in Evals
}

// newCorpus builds an empty corpus retaining the keep hardest entries.
func newCorpus(keep int) *Corpus {
	return &Corpus{Evals: []Eval{}, keep: keep, seen: make(map[string]int)}
}

// add ranks an evaluation into the corpus. A re-visit of a program
// already held keeps the existing entry (evaluations are deterministic,
// so the margins are identical).
func (c *Corpus) add(ev Eval) {
	if i, dup := c.seen[ev.Text]; dup {
		_ = i
		return
	}
	c.Evals = append(c.Evals, ev)
	sort.SliceStable(c.Evals, func(i, j int) bool { return c.Evals[i].MinMargin < c.Evals[j].MinMargin })
	if c.keep > 0 && len(c.Evals) > c.keep {
		c.Evals = c.Evals[:c.keep]
	}
	for k := range c.seen {
		delete(c.seen, k)
	}
	for i, e := range c.Evals {
		c.seen[e.Text] = i
	}
}

// Top returns the n hardest scenarios (fewer when the corpus is
// smaller).
func (c *Corpus) Top(n int) []Eval {
	if n > len(c.Evals) {
		n = len(c.Evals)
	}
	return append([]Eval(nil), c.Evals[:n]...)
}

// EncodeJSON serializes the corpus for regression suites and tooling.
func (c *Corpus) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// DecodeCorpus parses a corpus written by EncodeJSON.
func DecodeCorpus(data []byte) (*Corpus, error) {
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("falsify: corpus: %w", err)
	}
	c.seen = make(map[string]int)
	for i, e := range c.Evals {
		c.seen[e.Text] = i
	}
	return &c, nil
}
