package falsify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/closedloop"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/optimize"
	"repro/internal/scs"
)

// Config parameterizes one falsification search.
type Config struct {
	// Space is the scenario parameter space to search.
	Space Space
	// Platform is the closed-loop test bed; Patient indexes its cohort.
	Platform experiment.Platform
	Patient  int
	// Steps is the run horizon in control cycles (default 150);
	// CycleMin the cycle length in minutes (default 5).
	Steps    int
	CycleMin float64
	// Seed drives the random exploration stage; a fixed seed makes the
	// whole search deterministic.
	Seed int64
	// Samples is the random-exploration budget (default 32).
	Samples int
	// Refine is how many of the hardest random seeds continue into
	// coordinate descent (default 3).
	Refine int
	// Sweeps bounds coordinate-descent passes per refined seed
	// (default 2); each sweep probes every coordinate at a shrinking
	// step.
	Sweeps int
	// Polish runs a projected-L-BFGS pass (finite-difference gradients,
	// bounds from the space) over the continuous FieldValue coordinates
	// of the best point. Integer coordinates stay fixed; spaces without
	// FieldValue parameters skip the stage.
	Polish bool
	// Keep bounds the corpus size (default 16).
	Keep int
	// NewMonitor builds the margin-reporting safety monitor; the
	// default is the streaming CAWOT over the paper's Table I rules.
	NewMonitor func() (monitor.Monitor, error)
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Space.Validate(); err != nil {
		return c, err
	}
	if c.Platform.NewPatient == nil || c.Platform.NewController == nil {
		return c, fmt.Errorf("falsify: config has no platform")
	}
	if c.Patient < 0 || c.Patient >= c.Platform.NumPatients {
		return c, fmt.Errorf("falsify: patient %d outside %s cohort of %d", c.Patient, c.Platform.Name, c.Platform.NumPatients)
	}
	if c.Steps == 0 {
		c.Steps = 150
	}
	if c.Steps < 1 {
		return c, fmt.Errorf("falsify: invalid step count %d", c.Steps)
	}
	if c.CycleMin == 0 {
		c.CycleMin = 5
	}
	if c.CycleMin <= 0 {
		return c, fmt.Errorf("falsify: invalid cycle length %v", c.CycleMin)
	}
	if c.Samples == 0 {
		c.Samples = 32
	}
	if c.Samples < 1 {
		return c, fmt.Errorf("falsify: invalid sample budget %d", c.Samples)
	}
	if c.Refine == 0 {
		c.Refine = 3
	}
	if c.Sweeps == 0 {
		c.Sweeps = 2
	}
	if c.Keep == 0 {
		c.Keep = 16
	}
	if c.NewMonitor == nil {
		c.NewMonitor = func() (monitor.Monitor, error) {
			return monitor.NewCAWOT(scs.TableI(), scs.Params{})
		}
	}
	return c, nil
}

// marginRecorder wraps the safety monitor and records the running
// minimum of its reported robustness margins — the falsification
// objective — without changing any verdict the loop sees.
type marginRecorder struct {
	inner  monitor.Monitor
	min    float64
	step   int
	alarms int
}

func newMarginRecorder(inner monitor.Monitor) *marginRecorder {
	return &marginRecorder{inner: inner, min: math.Inf(1), step: -1}
}

// Name implements closedloop.Monitor.
func (r *marginRecorder) Name() string { return r.inner.Name() }

// Reset implements closedloop.Monitor.
func (r *marginRecorder) Reset() {
	r.inner.Reset()
	r.min, r.step, r.alarms = math.Inf(1), -1, 0
}

// Step implements closedloop.Monitor, forwarding the verdict verbatim.
func (r *marginRecorder) Step(obs closedloop.Observation) closedloop.Verdict {
	v := r.inner.Step(obs)
	if v.Margin < r.min {
		r.min, r.step = v.Margin, obs.Step
	}
	if v.Alarm {
		r.alarms++
	}
	return v
}

// EvalProgram runs one scenario program through the configured closed
// loop and reports its margin summary. It is the search objective and
// the replay primitive: the run is deterministic, so re-evaluating a
// corpus entry reproduces its recorded MinMargin exactly.
func EvalProgram(cfg Config, prog fault.Program) (Eval, error) {
	if err := prog.Validate(); err != nil {
		return Eval{}, err
	}
	c, err := cfg.fill()
	if err != nil {
		return Eval{}, err
	}
	return c.eval(prog, nil)
}

// fill applies defaults without requiring a searchable space, for
// replay-only uses.
func (c Config) fill() (Config, error) {
	tmp := c
	tmp.Space = Space{
		Base:   fault.Program{Segments: []fault.Segment{{Kind: fault.SegInitBG, Value: 120}}},
		Params: []Param{{Seg: 0, Field: FieldValue, Lo: 120, Hi: 120}},
	}
	tmp, err := tmp.withDefaults()
	if err != nil {
		return tmp, err
	}
	tmp.Space = c.Space
	return tmp, nil
}

// eval compiles and runs one instantiated program.
func (c Config) eval(prog fault.Program, x []float64) (Eval, error) {
	plan, err := prog.Compile(c.Steps, c.CycleMin)
	if err != nil {
		return Eval{}, err
	}
	patient, err := c.Platform.NewPatient(c.Patient)
	if err != nil {
		return Eval{}, err
	}
	ctrl, err := c.Platform.NewController(patient.Basal())
	if err != nil {
		return Eval{}, err
	}
	mon, err := c.NewMonitor()
	if err != nil {
		return Eval{}, err
	}
	rec := newMarginRecorder(mon)
	tr, err := closedloop.Run(closedloop.Config{
		Platform:   c.Platform.Name + "/falsify",
		Steps:      c.Steps,
		CycleMin:   c.CycleMin,
		Patient:    patient,
		Controller: ctrl,
		Plan:       plan,
		Monitor:    rec,
	})
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Program:   prog,
		Text:      prog.Key(),
		X:         append([]float64(nil), x...),
		MinMargin: rec.min,
		MinStep:   rec.step,
		Alarms:    rec.alarms,
		Hazard:    tr.Hazardous(),
	}, nil
}

// Search runs the falsification loop: random exploration, coordinate
// descent from the hardest seeds, and an optional L-BFGS polish. The
// returned corpus is ranked hardest-first and never empty on a nil
// error.
func Search(cfg Config) (*Corpus, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := newCorpus(cfg.Keep)
	corpus.Platform, corpus.Patient, corpus.Steps, corpus.Seed = cfg.Platform.Name, cfg.Patient, cfg.Steps, cfg.Seed

	try := func(x []float64) (Eval, bool) {
		prog, err := cfg.Space.Instantiate(x)
		if err != nil {
			corpus.Skipped++
			return Eval{}, false
		}
		ev, err := cfg.eval(prog, x)
		if err != nil {
			corpus.Skipped++
			return Eval{}, false
		}
		corpus.Visited++
		corpus.add(ev)
		return ev, true
	}

	// Stage 1: uniform random exploration over the box.
	for i := 0; i < cfg.Samples; i++ {
		x := make([]float64, len(cfg.Space.Params))
		for j, p := range cfg.Space.Params {
			x[j] = p.Lo + rng.Float64()*(p.Hi-p.Lo)
		}
		try(x)
	}
	if len(corpus.Evals) == 0 {
		return nil, fmt.Errorf("falsify: no valid scenario in %d samples (all instantiations rejected)", cfg.Samples)
	}

	// Stage 2: coordinate descent from the hardest random seeds.
	for _, seed := range corpus.Top(cfg.Refine) {
		cur := seed
		if cur.X == nil {
			continue
		}
		for sweep := 0; sweep < cfg.Sweeps; sweep++ {
			frac := 0.25 / float64(uint(1)<<uint(sweep))
			improved := false
			for j, p := range cfg.Space.Params {
				span := (p.Hi - p.Lo) * frac
				if span == 0 {
					continue
				}
				for _, cand := range []float64{cur.X[j] - span, cur.X[j] + span} {
					x := append([]float64(nil), cur.X...)
					x[j] = clamp(cand, p.Lo, p.Hi)
					if ev, ok := try(x); ok && ev.MinMargin < cur.MinMargin {
						cur, improved = ev, true
					}
				}
			}
			if !improved && sweep > 0 {
				break
			}
		}

		// Stage 3: polish the continuous coordinates with projected
		// L-BFGS; the integer window coordinates stay fixed (the
		// objective is piecewise constant in them).
		if cfg.Polish && cur.X != nil {
			polish(cfg, corpus, cur, try)
		}
	}
	return corpus, nil
}

// polish refines the FieldValue coordinates of one point with the
// bound-constrained quasi-Newton solver from internal/optimize.
func polish(cfg Config, corpus *Corpus, cur Eval, try func([]float64) (Eval, bool)) {
	var idx []int
	for j, p := range cfg.Space.Params {
		if p.Field == FieldValue && p.Hi > p.Lo {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return
	}
	x0 := make([]float64, len(idx))
	lo := make([]float64, len(idx))
	hi := make([]float64, len(idx))
	for i, j := range idx {
		x0[i] = cur.X[j]
		lo[i] = cfg.Space.Params[j].Lo
		hi[i] = cfg.Space.Params[j].Hi
	}
	expand := func(sub []float64) []float64 {
		x := append([]float64(nil), cur.X...)
		for i, j := range idx {
			x[j] = clamp(sub[i], lo[i], hi[i])
		}
		return x
	}
	const rejected = 1e6 // finite sentinel: invalid points must not poison the line search
	res, err := optimize.Minimize(optimize.Problem{
		F: func(sub []float64) float64 {
			prog, err := cfg.Space.Instantiate(expand(sub))
			if err != nil {
				return rejected
			}
			ev, err := cfg.eval(prog, nil)
			if err != nil {
				return rejected
			}
			return ev.MinMargin
		},
		Lower: lo,
		Upper: hi,
	}, x0, optimize.Options{MaxIterations: 12, Memory: 5})
	if err != nil {
		return
	}
	try(expand(res.X))
}
