// Package falsify searches scenario-program parameter spaces for the
// executions that drive the safety monitor's robustness margin lowest —
// the falsification loop of STL-guided testing: treat the streaming
// monitor's margin as a quantitative objective, and search the
// continuous scenario parameters (injection magnitudes, window starts
// and durations, meal sizes, initial glucose) for near-violations and
// outright hazards.
//
// A search runs in three stages over a Space (a base fault.Program plus
// bounded free parameters): seeded uniform random exploration, then
// coordinate descent from the hardest random seeds, then an optional
// projected-L-BFGS polish over the continuous magnitude coordinates
// (reusing internal/optimize with finite-difference gradients). Every
// evaluation is one deterministic closed-loop run — compile the
// instantiated program to a fault.Plan, run it through
// internal/closedloop with a margin-recording monitor wrapper — so a
// search with a fixed Config.Seed is reproducible run to run, and any
// corpus entry replays to exactly its recorded margin.
//
// Results accumulate in a ranked Corpus (hardest scenario first,
// deduplicated by canonical program text) that serializes to JSON for
// regression suites: re-run the corpus after a controller or monitor
// change and diff the margins.
package falsify

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// Field selects which Segment field a search parameter varies.
type Field int

// Searchable segment fields. Value is continuous; Start and Duration
// are control-cycle counts, rounded to the nearest integer at
// instantiation time.
const (
	// FieldValue varies the segment's kind-specific magnitude.
	FieldValue Field = iota + 1
	// FieldStart varies the segment window's first active cycle.
	FieldStart
	// FieldDuration varies the segment window's length in cycles.
	FieldDuration
)

// String implements fmt.Stringer; the names double as the JSON
// encoding.
func (f Field) String() string {
	switch f {
	case FieldValue:
		return "value"
	case FieldStart:
		return "start"
	case FieldDuration:
		return "dur"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}

// MarshalJSON encodes the field selector as its keyword string.
func (f Field) MarshalJSON() ([]byte, error) {
	switch f {
	case FieldValue, FieldStart, FieldDuration:
		return []byte(`"` + f.String() + `"`), nil
	default:
		return nil, fmt.Errorf("falsify: cannot marshal invalid field %d", int(f))
	}
}

// UnmarshalJSON decodes a field-selector keyword string.
func (f *Field) UnmarshalJSON(data []byte) error {
	for _, k := range []Field{FieldValue, FieldStart, FieldDuration} {
		if string(data) == `"`+k.String()+`"` {
			*f = k
			return nil
		}
	}
	return fmt.Errorf("falsify: unknown field %s", data)
}

// Param is one free coordinate of a search space: segment Seg's Field
// varies over [Lo, Hi].
type Param struct {
	// Seg indexes Space.Base.Segments.
	Seg int `json:"seg"`
	// Field selects the varied segment field.
	Field Field `json:"field"`
	// Lo and Hi bound the coordinate (inclusive).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Space is a scenario-program parameter space: a base program plus the
// bounded coordinates the search may vary. Segments not named by any
// Param are fixed at their base values.
type Space struct {
	// Base is the program template.
	Base fault.Program `json:"base"`
	// Params are the free coordinates, in search-vector order.
	Params []Param `json:"params"`
}

// Validate checks the base program and every parameter's bounds.
func (s Space) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("falsify: base program: %w", err)
	}
	if len(s.Params) == 0 {
		return fmt.Errorf("falsify: space has no free parameters")
	}
	for i, p := range s.Params {
		if p.Seg < 0 || p.Seg >= len(s.Base.Segments) {
			return fmt.Errorf("falsify: param %d: segment index %d outside base program (%d segments)",
				i, p.Seg, len(s.Base.Segments))
		}
		switch p.Field {
		case FieldValue, FieldStart, FieldDuration:
		default:
			return fmt.Errorf("falsify: param %d: invalid field %d", i, int(p.Field))
		}
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || math.IsInf(p.Lo, 0) || math.IsInf(p.Hi, 0) {
			return fmt.Errorf("falsify: param %d: non-finite bounds [%v, %v]", i, p.Lo, p.Hi)
		}
		if p.Lo > p.Hi {
			return fmt.Errorf("falsify: param %d: lower bound %v above upper %v", i, p.Lo, p.Hi)
		}
		if p.Field == FieldStart && p.Lo < 0 {
			return fmt.Errorf("falsify: param %d: negative start bound %v", i, p.Lo)
		}
		if p.Field == FieldDuration && p.Hi < 1 {
			return fmt.Errorf("falsify: param %d: duration bound [%v, %v] admits no window", i, p.Lo, p.Hi)
		}
	}
	return nil
}

// Instantiate applies a search vector to the base program: each
// coordinate is clamped to its bounds and written into its segment
// field (integer fields round to the nearest cycle, durations to at
// least one). The instantiated program is validated, so a vector that
// lands on a structurally invalid program (say, a zero bias ramp)
// returns an error rather than a program the compiler would reject
// later.
func (s Space) Instantiate(x []float64) (fault.Program, error) {
	if len(x) != len(s.Params) {
		return fault.Program{}, fmt.Errorf("falsify: vector has %d coordinates, space has %d", len(x), len(s.Params))
	}
	prog := fault.Program{Name: s.Base.Name, Segments: append([]fault.Segment(nil), s.Base.Segments...)}
	for i, p := range s.Params {
		v := clamp(x[i], p.Lo, p.Hi)
		seg := &prog.Segments[p.Seg]
		switch p.Field {
		case FieldValue:
			seg.Value = v
		case FieldStart:
			seg.Start = int(math.Round(math.Max(v, 0)))
		case FieldDuration:
			seg.Duration = int(math.Round(math.Max(v, 1)))
		}
	}
	if err := prog.Validate(); err != nil {
		return fault.Program{}, err
	}
	return prog, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
