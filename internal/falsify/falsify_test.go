package falsify

import (
	"reflect"
	"testing"

	"repro/internal/experiment"
	"repro/internal/fault"
)

// testSpace is a small occlusion+meal space over the glucosym loop:
// both disturbances push glucose up, so margins vary strongly with the
// parameters and the search has real gradients to follow.
func testSpace() Space {
	return Space{
		Base: fault.Program{Name: "falsify-test", Segments: []fault.Segment{
			{Kind: fault.SegInitBG, Value: 140},
			{Kind: fault.SegMeal, Value: 60, Start: 5, Duration: 6},
			{Kind: fault.SegOcclusion, Start: 10, Duration: 12},
		}},
		Params: []Param{
			{Seg: 0, Field: FieldValue, Lo: 100, Hi: 180},
			{Seg: 1, Field: FieldValue, Lo: 20, Hi: 120},
			{Seg: 2, Field: FieldStart, Lo: 0, Hi: 30},
			{Seg: 2, Field: FieldDuration, Lo: 4, Hi: 24},
		},
	}
}

func testSearchConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Space:    testSpace(),
		Platform: experiment.Glucosym(),
		Steps:    60,
		Seed:     7,
		Samples:  6,
		Refine:   1,
		Sweeps:   1,
		Keep:     8,
	}
}

func TestSpaceValidateRejects(t *testing.T) {
	base := testSpace().Base
	cases := map[string]Space{
		"no params":        {Base: base},
		"seg out of range": {Base: base, Params: []Param{{Seg: 9, Field: FieldValue, Lo: 0, Hi: 1}}},
		"bad field":        {Base: base, Params: []Param{{Seg: 0, Field: 0, Lo: 0, Hi: 1}}},
		"inverted bounds":  {Base: base, Params: []Param{{Seg: 0, Field: FieldValue, Lo: 2, Hi: 1}}},
		"negative start":   {Base: base, Params: []Param{{Seg: 2, Field: FieldStart, Lo: -3, Hi: 1}}},
		"empty duration":   {Base: base, Params: []Param{{Seg: 2, Field: FieldDuration, Lo: 0, Hi: 0.2}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s.Params)
		}
	}
	if err := testSpace().Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
}

func TestSpaceInstantiate(t *testing.T) {
	s := testSpace()
	prog, err := s.Instantiate([]float64{500, 33.3, 12.6, 7.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Segments[0].Value; got != 180 {
		t.Errorf("init BG %v, want clamp to 180", got)
	}
	if got := prog.Segments[1].Value; got != 33.3 {
		t.Errorf("meal grams %v, want 33.3 untouched", got)
	}
	if got := prog.Segments[2].Start; got != 13 {
		t.Errorf("occlusion start %d, want round(12.6) = 13", got)
	}
	if got := prog.Segments[2].Duration; got != 7 {
		t.Errorf("occlusion duration %d, want round(7.4) = 7", got)
	}
	// The base must not be mutated by instantiation.
	if s.Base.Segments[0].Value != 140 || s.Base.Segments[2].Start != 10 {
		t.Fatal("Instantiate mutated the base program")
	}
	if _, err := s.Instantiate([]float64{140, 60}); err == nil {
		t.Error("short vector accepted")
	}
}

// TestSearchRanksAndReplays is the falsifier's core contract: the
// search returns a non-empty hardest-first corpus, and its top entry
// replays through EvalProgram to exactly the recorded minimum margin.
func TestSearchRanksAndReplays(t *testing.T) {
	cfg := testSearchConfig(t)
	corpus, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Evals) == 0 {
		t.Fatal("empty corpus")
	}
	if corpus.Visited == 0 {
		t.Fatal("corpus claims zero evaluations")
	}
	for i := 1; i < len(corpus.Evals); i++ {
		if corpus.Evals[i-1].MinMargin > corpus.Evals[i].MinMargin {
			t.Fatalf("corpus not ranked: entry %d margin %v above entry %d margin %v",
				i-1, corpus.Evals[i-1].MinMargin, i, corpus.Evals[i].MinMargin)
		}
	}
	top := corpus.Evals[0]
	replay, err := EvalProgram(cfg, top.Program)
	if err != nil {
		t.Fatal(err)
	}
	if replay.MinMargin != top.MinMargin || replay.MinStep != top.MinStep {
		t.Fatalf("replay margin %v@%d, corpus recorded %v@%d",
			replay.MinMargin, replay.MinStep, top.MinMargin, top.MinStep)
	}
}

// TestSearchDeterministic pins reproducibility: the same seed yields
// byte-identical corpora.
func TestSearchDeterministic(t *testing.T) {
	a, err := Search(testSearchConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(testSearchConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different corpora")
	}
}

func TestCorpusJSONRoundTrip(t *testing.T) {
	corpus, err := Search(testSearchConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	data, err := corpus.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCorpus(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Evals, corpus.Evals) {
		t.Fatal("corpus evals did not survive the JSON round trip")
	}
	if back.Platform != corpus.Platform || back.Seed != corpus.Seed {
		t.Fatal("corpus metadata did not survive the JSON round trip")
	}
	if _, err := DecodeCorpus([]byte("{")); err == nil {
		t.Fatal("truncated corpus accepted")
	}
}

// TestPolishDoesNotRegress runs the L-BFGS stage and checks the corpus
// minimum never worsens relative to the unpolished search.
func TestPolishDoesNotRegress(t *testing.T) {
	plain := testSearchConfig(t)
	polished := testSearchConfig(t)
	polished.Polish = true
	a, err := Search(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(polished)
	if err != nil {
		t.Fatal(err)
	}
	if b.Evals[0].MinMargin > a.Evals[0].MinMargin {
		t.Fatalf("polish worsened the best margin: %v > %v", b.Evals[0].MinMargin, a.Evals[0].MinMargin)
	}
}
