// Package analysis implements fleetvet, the repo's project-invariant
// static-analysis suite: a multichecker of custom passes that enforce,
// at compile time, the invariants the differential and AllocsPerRun
// tests enforce at run time — determinism of the fault-injection
// engine, allocation-freedom of the streaming hot paths, and
// exhaustiveness of switches over the fleet's enumerations — plus the
// documentation contract previously checked by cmd/doclint alone.
//
// The suite is self-contained on the Go standard library: packages are
// loaded with `go list -export -deps -json` and type-checked with the
// stdlib gc importer against the build cache's export data, so no
// third-party analysis framework is required. Each pass mirrors the
// golang.org/x/tools/go/analysis shape (Analyzer, Pass, Reportf) and is
// exercised by golden packages under testdata/src via the analysistest
// subpackage.
//
// # Directive grammar
//
// Passes are driven by //fleetvet: comment directives:
//
//	//fleetvet:deterministic
//	    Package marker (conventionally in doc.go). The determinism
//	    pass checks only marked packages.
//
//	//fleetvet:nondeterministic <reason>
//	    Statement waiver for the determinism pass: suppresses findings
//	    on its own line or on the single line directly below — exactly
//	    one statement, never a whole file. The reason is mandatory; a
//	    bare waiver is itself a finding.
//
//	//fleetvet:noalloc
//	    Function marker (in the doc comment). The noalloc pass flags
//	    allocation-prone constructs inside marked functions.
//
//	//fleetvet:alloc <reason>
//	    Statement waiver for the noalloc pass, with the same one-
//	    statement scope and mandatory reason as nondeterministic.
//
//	//fleetvet:exhaustive
//	    Type marker (on the enum type declaration). Every switch over
//	    the marked type, in any vetted package, must cover all of its
//	    declared enumerator constants.
//
//	//fleetvet:sentinel
//	    Constant marker (on a const spec): excludes a count/limit
//	    sentinel from the enumerator set of its exhaustive type.
//
// # Adding a pass
//
// Write a `func NewFoo() *Analyzer` constructor whose Run inspects
// pass.Files with pass.TypesInfo and calls pass.Reportf for each
// finding, append it to the slice returned by Suite, add golden
// packages under testdata/src/foo, and test it with analysistest.Run.
// Passes needing cross-package state (like exhaustive's enum registry)
// close over it in the constructor; the driver analyzes packages in
// dependency order, so a dependency's declarations are always
// registered before its importers are checked.
package analysis
