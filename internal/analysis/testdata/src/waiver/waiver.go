// Package waiver is a fleetvet golden package pinning the waiver
// directive's contract: a waiver suppresses exactly one statement line
// — trailing for its own line, standalone for the single line below —
// and a waiver without a reason is itself a finding that suppresses
// nothing.
//
//fleetvet:deterministic
package waiver

// Scope shows each waiver form covering exactly one following range.
func Scope(m map[string]int) int {
	t := 0
	for range m { //fleetvet:nondeterministic audited: order-independent count
		t++
	}
	for range m { // want `range over map`
		t++
	}
	//fleetvet:nondeterministic audited: order-independent count
	for range m {
		t++
	}
	for range m { // want `range over map`
		t++
	}
	return t
}

// Trailing proves a trailing waiver covers only its own line, not the
// statement on the next one.
func Trailing(m map[string]int) int {
	t := 0
	for range m { //fleetvet:nondeterministic audited: outer count only
		for range m { // want `range over map`
			t++
		}
	}
	return t
}

// Standalone proves a standalone waiver line covers only the next
// line, not itself two statements down.
func Standalone(m map[string]int) int {
	t := 0
	//fleetvet:nondeterministic audited: first loop only
	for range m {
		t++
	}
	for range m { // want `range over map`
		t++
	}
	return t
}

// Reasonless proves a bare waiver is a finding and waives nothing.
func Reasonless(m map[string]int) int {
	t := 0
	//fleetvet:nondeterministic
	// want-1 `//fleetvet:nondeterministic waiver requires a reason`
	for range m { // want `range over map`
		t++
	}
	return t
}
