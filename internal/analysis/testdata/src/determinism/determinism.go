// Package determinism is a fleetvet golden package: each construct
// below either seeds an expected determinism finding or proves a
// negative.
//
//fleetvet:deterministic
package determinism

import (
	"math/rand"
	"time"
)

// Iterate ranges over a map (flagged) and a slice (ordered, clean).
func Iterate(m map[string]int, s []int) int {
	t := 0
	for _, v := range m { // want `range over map map\[string\]int: iteration order is nondeterministic`
		t += v
	}
	for _, v := range s {
		t += v
	}
	return t
}

// Clocks reads the wall clock as a call and as a stored function
// value; both leak wall time into the run.
func Clocks() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	clock := time.Now   // want `time\.Now reads the wall clock`
	_ = clock
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Draw contrasts the process-global source with a seeded generator.
func Draw() float64 {
	r := rand.New(rand.NewSource(1))
	if r.Float64() > 0.5 {
		return rand.Float64() // want `rand\.Float64 draws from the process-global source`
	}
	return r.ExpFloat64()
}

// Waived holds audited sites suppressed by trailing and standalone
// waivers.
func Waived(m map[string]int) int {
	t := 0
	for _, v := range m { //fleetvet:nondeterministic audited: order-independent sum
		t += v
	}
	//fleetvet:nondeterministic audited: order-independent sum
	for _, v := range m {
		t += v
	}
	return t
}
