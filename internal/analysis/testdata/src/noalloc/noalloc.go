// Package noalloc is a fleetvet golden package for the hot-path
// allocation pass: the marked functions seed one finding per
// allocation-prone construct; the unmarked twin proves the pass only
// applies under the //fleetvet:noalloc directive.
package noalloc

import (
	"errors"
	"fmt"
)

// Sink consumes boxed values.
type Sink interface {
	// Accept consumes one value.
	Accept(v any)
}

// point is scratch geometry.
type point struct{ x, y int }

// Hot is marked allocation-free and violates every rule once.
//
//fleetvet:noalloc
func Hot(xs []int, s Sink) string {
	msg := fmt.Sprintf("%d", len(xs)) // want `call to fmt\.Sprintf allocates`
	err := errors.New("boom")         // want `call to errors\.New allocates`
	_ = err
	m := map[int]int{} // want `map literal allocates`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates its backing array`
	_ = sl
	b := make([]byte, 8) // want `make allocates`
	_ = b
	xs = append(xs, 1) // want `append may grow its backing array`
	p := &point{}      // want `address of composite literal escapes to the heap`
	_ = p
	f := func() {} // want `function literal allocates its closure`
	_ = f
	s.Accept(len(xs)) // want `int value boxes into interface`
	var box any
	box = xs[0] // want `int value boxes into interface`
	_ = box
	return msg
}

// Warm has one audited allocation site under a reasoned waiver.
//
//fleetvet:noalloc
func Warm(buf []int) []int {
	buf = append(buf, 1) //fleetvet:alloc capacity preallocated at construction
	return buf
}

// Cold allocates only while constructing its error result, the exempt
// cold exit; the non-error results are still checked.
//
//fleetvet:noalloc
func Cold(n int, s Sink) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative count %d", n)
	}
	return n, nil
}

// Unmarked repeats the violations without the directive: no findings.
func Unmarked(xs []int) string {
	m := map[int]int{}
	_ = m
	xs = append(xs, 1)
	return fmt.Sprintf("%d", len(xs))
}
