// Package exhaustive is a fleetvet golden package for the enum
// exhaustiveness pass: switches over the marked Kind must cover every
// non-sentinel enumerator, with or without a default clause; unmarked
// types and tagless switches are ignored.
package exhaustive

// Kind enumerates golden cases.
//
//fleetvet:exhaustive
type Kind int

// Kind enumerators; kindCount is the excluded sentinel.
const (
	A Kind = iota
	B
	C
	//fleetvet:sentinel
	kindCount
)

// Plain is an unmarked enum look-alike.
type Plain int

// Plain enumerators.
const (
	P Plain = iota
	Q
)

// Full covers every enumerator.
func Full(k Kind) int {
	switch k {
	case A:
		return 1
	case B, C:
		return 2
	}
	return 0
}

// Missing lacks C.
func Missing(k Kind) int {
	switch k { // want `switch over testdata/exhaustive\.Kind is missing cases: C`
	case A, B:
		return 1
	}
	return 0
}

// Defaulted has a default clause but still lacks B and C: a default is
// not a decision about each enumerator.
func Defaulted(k Kind) int {
	switch k { // want `switch over testdata/exhaustive\.Kind is missing cases: B, C`
	case A:
		return 1
	default:
		return 0
	}
}

// Ignored shows tagless switches and unmarked types stay unchecked.
func Ignored(k Kind, p Plain, n int) int {
	switch {
	case k == A:
		return 1
	}
	switch p {
	case P:
		return 2
	}
	switch n {
	case 3:
		return 3
	}
	return 0
}
