// Package determinismoff is a fleetvet golden package proving the
// determinism pass only applies to packages carrying the
// //fleetvet:deterministic marker: the constructs below would all be
// findings in a marked package.
package determinismoff

import "time"

// Unchecked ranges over a map and reads the clock without findings.
func Unchecked(m map[string]int) time.Time {
	for range m {
	}
	return time.Now()
}
