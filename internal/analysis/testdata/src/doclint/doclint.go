package doclint // want `package doclint has no package comment`

// Documented carries its contract.
func Documented() {}

func Exported() {} // want `func Exported lacks a doc comment`

type T struct{} // want `type T lacks a doc comment`

// Method docs hang off exported receivers.
func (T) Documented() {}

func (T) Bare() {} // want `method Bare lacks a doc comment`

var Value = 3 // want `Value lacks a doc comment`

type hidden struct{}

func (hidden) Bare() {}

func helper() {}

var small = 1
