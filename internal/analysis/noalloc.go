package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allocPkgs are packages whose exported functions allocate by
// construction (formatting buffers, error values); any call into them
// from a //fleetvet:noalloc function is a finding.
var allocPkgs = map[string]bool{
	"fmt":    true,
	"errors": true,
}

// NewNoAlloc returns the hot-path allocation pass: inside functions
// marked //fleetvet:noalloc it flags allocation-prone constructs —
// fmt/errors calls, map and slice composite literals, make/new, append
// (growth unless capacity was preallocated, which is what the waiver
// states), function literals (closure capture), taking the address of a
// composite literal, and boxing a concrete value into an interface.
// The static check is the compile-time twin of the AllocsPerRun == 0
// tests, and like them it covers the success path: constructs inside
// the error result of a return statement are exempt (the 0-alloc
// contract is steady-state, and error construction is the cold exit).
// A remaining finding is suppressed only by a //fleetvet:alloc waiver
// with a reason, scoped to one statement line.
func NewNoAlloc() *Analyzer {
	a := &Analyzer{
		Name:       "noalloc",
		Doc:        "flag allocation-prone constructs inside //fleetvet:noalloc functions",
		NeedsTypes: true,
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ws := collectWaivers(pass, f, "alloc")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(pass.Fset, fd.Doc, "noalloc") {
					continue
				}
				w := &allocWalker{pass: pass, ws: ws, sig: funcSignature(pass, fd)}
				w.walk(fd.Body)
			}
		}
		return nil
	}
	return a
}

// funcSignature resolves a declared function's type-checked signature.
func funcSignature(pass *Pass, fd *ast.FuncDecl) *types.Signature {
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

// allocWalker traverses one noalloc function body reporting
// allocation-prone constructs.
type allocWalker struct {
	pass *Pass
	ws   waiverSet
	sig  *types.Signature
}

// walk inspects one subtree.
func (w *allocWalker) walk(n ast.Node) {
	ast.Inspect(n, w.visit)
}

// reportAt files a finding at pos unless a waiver covers its line.
func (w *allocWalker) reportAt(pos token.Pos, format string, args ...any) {
	if w.ws.waived(w.pass.Fset, pos) {
		return
	}
	w.pass.Reportf(pos, format, args...)
}

// visit handles one node; returning false prunes the subtree.
func (w *allocWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		// The final result of an error-returning function is the cold
		// exit: error construction there (fmt.Errorf and friends) is
		// exempt, mirroring what the AllocsPerRun tests measure. All
		// other result expressions are checked normally.
		if w.sig != nil && len(n.Results) > 0 && resultsEndInError(w.sig) && len(n.Results) == w.sig.Results().Len() {
			for _, res := range n.Results[:len(n.Results)-1] {
				w.walk(res)
			}
			return false
		}
	case *ast.FuncLit:
		w.reportAt(n.Pos(), "function literal allocates its closure")
		return false // the literal's body runs elsewhere; the capture is the cost here
	case *ast.CompositeLit:
		t := w.pass.TypesInfo.TypeOf(n)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.reportAt(n.Pos(), "map literal allocates")
			case *types.Slice:
				w.reportAt(n.Pos(), "slice literal allocates its backing array")
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.reportAt(n.Pos(), "address of composite literal escapes to the heap")
			}
		}
	case *ast.CallExpr:
		w.visitCall(n)
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				w.checkBox(n.Rhs[i], w.pass.TypesInfo.TypeOf(n.Lhs[i]))
			}
		}
	}
	return true
}

// visitCall classifies one call expression: allocating builtins, calls
// into allocating packages, and interface boxing of arguments.
func (w *allocWalker) visitCall(call *ast.CallExpr) {
	// Type conversions: only interface targets box.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			w.checkBox(call.Args[0], tv.Type)
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.reportAt(call.Pos(), "append may grow its backing array: preallocate capacity (and waive) or restructure")
			case "make":
				w.reportAt(call.Pos(), "make allocates")
			case "new":
				w.reportAt(call.Pos(), "new allocates")
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
			w.reportAt(call.Pos(), "call to %s.%s allocates", fn.Pkg().Name(), fn.Name())
			return // the call is the finding; boxing of its arguments is implied
		}
	}
	// Interface boxing of arguments to ordinary calls.
	t := w.pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a ...spread passes the slice through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		w.checkBox(arg, pt)
	}
}

// checkBox reports a concrete value converted to an interface type: the
// conversion boxes the value, which escapes to the heap unless the
// compiler proves otherwise — not a bet a noalloc path takes.
func (w *allocWalker) checkBox(expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	at := w.pass.TypesInfo.TypeOf(expr)
	if at == nil {
		return
	}
	if _, isIface := at.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing box
	}
	if basic, ok := at.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	w.reportAt(expr.Pos(), "%s value boxes into interface %s",
		types.TypeString(at, types.RelativeTo(w.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(w.pass.Pkg)))
}

// resultsEndInError reports whether a signature's final result is the
// error interface.
func resultsEndInError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}
