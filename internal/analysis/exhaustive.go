package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// enumInfo records one //fleetvet:exhaustive enum: its declared
// enumerator constants in declaration order, minus sentinels. Members
// are identified by constant value, so a re-exported alias in another
// package (const Other = pkg.Member) is the same enumerator, and a
// case listing either name covers it.
type enumInfo struct {
	pkgPath string
	name    string
	members []enumMember
	byValue map[string]bool
}

// enumMember is one enumerator: its first-declared name (deps are
// analyzed before importers, so that is the defining package's name)
// and its exact constant value.
type enumMember struct {
	name  string
	value string
}

// key identifies the enum across packages.
func (e *enumInfo) key() string { return e.pkgPath + "." + e.name }

// NewExhaustive returns the enum-exhaustiveness pass: a type marked
// //fleetvet:exhaustive registers its package-level constants (minus
// //fleetvet:sentinel ones) as the enumerator set, and every switch
// statement over the type — in any vetted package — must list every
// enumerator in its cases. A default clause does not substitute: the
// point is that adding an enumerator breaks the build of every switch
// that has not decided what to do with it, which is the static twin of
// the runtime TestKindRankExhaustive guard. The pass carries its
// registry across packages, so the driver must analyze dependencies
// before their importers (go list -deps order).
func NewExhaustive() *Analyzer {
	registry := make(map[string]*enumInfo)
	a := &Analyzer{
		Name:       "exhaustive",
		Doc:        "flag switches over //fleetvet:exhaustive enums that miss enumerators",
		NeedsTypes: true,
	}
	a.Run = func(pass *Pass) error {
		registerEnums(pass, registry)
		checkSwitches(pass, registry)
		return nil
	}
	return a
}

// registerEnums scans one package's declarations for exhaustive enum
// types and their enumerator constants.
func registerEnums(pass *Pass, registry map[string]*enumInfo) {
	// Types first: the const specs may precede the type declaration in
	// file order.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(pass.Fset, gd.Doc, "exhaustive") &&
					!hasDirective(pass.Fset, ts.Doc, "exhaustive") &&
					!hasDirective(pass.Fset, ts.Comment, "exhaustive") {
					continue
				}
				info := &enumInfo{
					pkgPath: pass.Pkg.Path(),
					name:    ts.Name.Name,
					byValue: make(map[string]bool),
				}
				registry[info.key()] = info
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				sentinel := hasDirective(pass.Fset, vs.Doc, "sentinel") ||
					hasDirective(pass.Fset, vs.Comment, "sentinel")
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					info := registry[namedKey(obj.Type())]
					if info == nil || sentinel {
						continue
					}
					val := obj.Val().ExactString()
					if info.byValue[val] {
						continue // alias of an already-registered member
					}
					info.byValue[val] = true
					info.members = append(info.members, enumMember{name: name.Name, value: val})
				}
			}
		}
	}
}

// namedKey renders a type's registry key, or "" for unnamed types.
func namedKey(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// checkSwitches verifies every switch over a registered enum covers all
// of its enumerators.
func checkSwitches(pass *Pass, registry map[string]*enumInfo) {
	samePkg := func(info *enumInfo) bool { return info.pkgPath == pass.Pkg.Path() }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			info := registry[namedKey(t)]
			if info == nil {
				return true
			}
			covered := make(map[string]bool)
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					// Coverage is by constant value, so a case naming a
					// re-exported alias covers the original enumerator.
					if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			var missing []string
			for _, m := range info.members {
				// From another package only the exported enumerators
				// are nameable, so only those are required.
				if !samePkg(info) && !ast.IsExported(m.name) {
					continue
				}
				if !covered[m.value] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s is missing cases: %s",
					info.pkgPath, info.name, strings.Join(missing, ", "))
			}
			return true
		})
	}
}
