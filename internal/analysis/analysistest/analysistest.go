// Package analysistest runs fleetvet analyzers over golden packages
// and checks their findings against // want "regexp" comment
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// on the repo's stdlib-only analysis framework. A want comment
// attaches to its own source line; every finding must match exactly
// one want on its line and every want must be matched, so both false
// positives and false negatives fail the test. A want with a line
// offset (`// want-1 "pat"`) expects the finding that many lines away,
// which lets expectations anchor to findings reported at comment
// positions — a line comment cannot carry a second line comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted expectation patterns of a want comment —
// interpreted double-quoted strings or raw backquoted ones.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// wantHeadRe matches the want marker and its optional line offset.
var wantHeadRe = regexp.MustCompile(`^want([+-]\d+)? `)

// expectation is one // want pattern awaiting a matching finding.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the single golden package in dir with the given passes
// and reports every mismatch between findings and want comments as a
// test error.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.CheckDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}
	diags, err := analysis.Run(analyzers, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding at %s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Pass)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no finding matched want %q at %s:%d", w.pattern, w.file, w.line)
		}
	}
}

// claim marks the first unmatched want satisfied by a finding.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment of the package.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				head := wantHeadRe.FindStringSubmatch(text)
				if head == nil {
					continue
				}
				offset := 0
				if head[1] != "" {
					offset, _ = strconv.Atoi(head[1])
				}
				pos := fset.Position(c.Pos())
				quoted := wantRe.FindAllString(text[len(head[0]):], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line + offset, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
