package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static-analysis pass of the fleetvet suite. It is
// deliberately shaped like golang.org/x/tools/go/analysis.Analyzer so
// the passes could migrate to the upstream framework without rewrites.
type Analyzer struct {
	// Name identifies the pass in diagnostics and test expectations.
	Name string
	// Doc is a one-line description printed by fleetvet's usage text.
	Doc string
	// NeedsTypes reports whether Run requires Pass.TypesInfo; the
	// doclint pass is purely syntactic and runs without a type-checked
	// package (cmd/doclint uses that to keep its parse-only contract).
	NeedsTypes bool
	// Run inspects one package and reports findings via Pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package: the parsed files,
// the type-checked package, and the diagnostic sink.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps AST positions to file:line.
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package; nil iff the driver skipped type
	// checking for a pass with NeedsTypes == false.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files; nil iff Pkg
	// is nil.
	TypesInfo *types.Info
	// Dir is the package directory, used by path-keyed messages.
	Dir string
	// PkgName is the package name (doclint skips "main" packages, the
	// commands and examples, matching the historical doclint scope).
	PkgName string

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one pass.
type Diagnostic struct {
	// Pos locates the finding (file:line:column).
	Pos token.Position
	// Pass names the analyzer that produced the finding.
	Pass string
	// Message describes the violated invariant.
	Message string
}

// String renders the finding in the clickable file:line:col format the
// CI logs rely on.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Pass)
}

// Suite returns the full fleetvet pass list: determinism, noalloc,
// exhaustive (with a fresh enum registry), and doclint. A fresh suite
// must be created per driver run — the exhaustive pass accumulates
// cross-package enum state.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewNoAlloc(),
		NewExhaustive(),
		NewDocLint(),
	}
}

// RunSyntactic runs one syntax-only pass (NeedsTypes == false) over an
// already-parsed file set, without type checking. cmd/doclint uses this
// to keep its historical parse-only contract while delegating the rules
// to the shared doclint pass.
func RunSyntactic(a *Analyzer, fset *token.FileSet, files []*ast.File, dir, pkgName string) ([]Diagnostic, error) {
	if a.NeedsTypes {
		return nil, fmt.Errorf("analysis: pass %s needs type information", a.Name)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Dir:      dir,
		PkgName:  pkgName,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	SortDiagnostics(diags)
	return diags, nil
}

// directivePrefix introduces every fleetvet comment directive.
const directivePrefix = "//fleetvet:"

// A directive is one parsed //fleetvet: comment line.
type directive struct {
	name string // e.g. "noalloc", "nondeterministic"
	arg  string // rest of the line, trimmed
	pos  token.Pos
	line int
}

// parseDirectives extracts the //fleetvet: lines of one comment group.
func parseDirectives(fset *token.FileSet, cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text := c.Text
		if !strings.HasPrefix(text, directivePrefix) {
			continue
		}
		rest := text[len(directivePrefix):]
		name, arg, _ := strings.Cut(rest, " ")
		out = append(out, directive{
			name: strings.TrimSpace(name),
			arg:  strings.TrimSpace(arg),
			pos:  c.Pos(),
			line: fset.Position(c.Pos()).Line,
		})
	}
	return out
}

// fileDirectives extracts every //fleetvet: line of one file, in source
// order (File.Comments holds all comment groups, including doc
// comments, when parsed with parser.ParseComments).
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		out = append(out, parseDirectives(fset, cg)...)
	}
	return out
}

// hasDirective reports whether a comment group carries the named
// directive.
func hasDirective(fset *token.FileSet, cg *ast.CommentGroup, name string) bool {
	for _, d := range parseDirectives(fset, cg) {
		if d.name == name {
			return true
		}
	}
	return false
}

// packageMarked reports whether any file of the package carries the
// named package-level directive (conventionally in the doc.go package
// comment).
func packageMarked(fset *token.FileSet, files []*ast.File, name string) bool {
	for _, f := range files {
		for _, d := range fileDirectives(fset, f) {
			if d.name == name {
				return true
			}
		}
	}
	return false
}

// waiverSet indexes one file's statement waivers of one directive name
// by line. A trailing waiver (sharing its line with code) covers the
// findings of that one line; a standalone waiver line covers the
// findings of the single line directly below. Either way the scope is
// exactly one statement line, never a region or a file.
type waiverSet struct {
	byLine   map[int]directive
	codeLine map[int]bool
}

// collectWaivers builds the waiver table for one file and reports each
// waiver lacking the mandatory reason string as a finding of its own.
func collectWaivers(pass *Pass, f *ast.File, name string) waiverSet {
	ws := waiverSet{byLine: make(map[int]directive), codeLine: codeLines(pass.Fset, f)}
	for _, d := range fileDirectives(pass.Fset, f) {
		if d.name != name {
			continue
		}
		if d.arg == "" {
			pass.Reportf(d.pos, "//fleetvet:%s waiver requires a reason", name)
			continue
		}
		ws.byLine[d.line] = d
	}
	return ws
}

// waived reports whether a finding at pos is covered by a waiver.
func (ws waiverSet) waived(fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	if _, ok := ws.byLine[line]; ok && ws.codeLine[line] {
		return true // trailing waiver on the finding's own line
	}
	if _, ok := ws.byLine[line-1]; ok && !ws.codeLine[line-1] {
		return true // standalone waiver line directly above
	}
	return false
}

// codeLines marks every line on which a non-comment syntax node starts,
// distinguishing trailing waivers from standalone waiver lines.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
