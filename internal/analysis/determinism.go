package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time package functions that read the wall
// clock: any of them in a determinism-critical package makes a run
// unreproducible from its seed. Referencing the function as a value
// (e.g. storing time.Now as an injectable clock) counts — that is
// exactly how a hidden clock dependency enters a hot path.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// seededRandConstructors are the math/rand package-level functions that
// build an explicitly seeded generator rather than drawing from the
// process-wide source; these are the only package-level rand calls a
// deterministic package may make.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"NewZipf":    true,
}

// NewDeterminism returns the determinism pass: inside packages marked
// //fleetvet:deterministic it flags unordered map iteration, wall-clock
// reads (time.Now/Since/Until), and draws from the process-global
// math/rand source — the three constructs that make a fault-injection
// run irreproducible from its seed. A finding is suppressed only by a
// //fleetvet:nondeterministic waiver with a reason, scoped to one
// statement line.
func NewDeterminism() *Analyzer {
	a := &Analyzer{
		Name:       "determinism",
		Doc:        "flag map-order, wall-clock, and global-rand nondeterminism in marked packages",
		NeedsTypes: true,
	}
	a.Run = func(pass *Pass) error {
		marked := packageMarked(pass.Fset, pass.Files, "deterministic")
		for _, f := range pass.Files {
			// Waivers are collected even in unmarked packages so a
			// malformed (reasonless) waiver is a finding anywhere.
			ws := collectWaivers(pass, f, "nondeterministic")
			if !marked {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					t := pass.TypesInfo.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap && !ws.waived(pass.Fset, n.Pos()) {
						pass.Reportf(n.Pos(), "range over map %s: iteration order is nondeterministic", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				case *ast.SelectorExpr:
					fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() != nil {
						return true // methods (e.g. (*rand.Rand).Intn) are per-instance
					}
					switch fn.Pkg().Path() {
					case "time":
						if wallClockFuncs[fn.Name()] && !ws.waived(pass.Fset, n.Pos()) {
							pass.Reportf(n.Pos(), "time.%s reads the wall clock: nondeterministic across runs", fn.Name())
						}
					case "math/rand", "math/rand/v2":
						if !seededRandConstructors[fn.Name()] && !ws.waived(pass.Fset, n.Pos()) {
							pass.Reportf(n.Pos(), "%s.%s draws from the process-global source: use a per-session seeded generator", fn.Pkg().Name(), fn.Name())
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
