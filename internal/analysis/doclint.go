package analysis

import (
	"go/ast"
)

// NewDocLint returns the documentation-contract pass, the former
// cmd/doclint folded into the multichecker: every library package must
// carry a package comment, and every exported top-level declaration
// (functions, methods on exported receivers, types, constants,
// variables) must carry a doc comment. Commands and examples (package
// main) are exempt, matching the historical `make docs` scope. The
// pass is purely syntactic (NeedsTypes == false), so cmd/doclint can
// keep its parse-only contract while delegating here.
func NewDocLint() *Analyzer {
	a := &Analyzer{
		Name:       "doclint",
		Doc:        "flag missing package comments and undocumented exported APIs",
		NeedsTypes: false,
	}
	a.Run = func(pass *Pass) error {
		if pass.PkgName == "main" || len(pass.Files) == 0 {
			return nil
		}
		hasPkgDoc := false
		for _, f := range pass.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package comment", pass.PkgName)
		}
		for _, f := range pass.Files {
			lintFileDocs(pass, f)
		}
		return nil
	}
	return a
}

// lintFileDocs reports each undocumented exported declaration of one
// file.
func lintFileDocs(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			pass.Reportf(d.Pos(), "%s lacks a doc comment", funcDeclName(d))
		case *ast.GenDecl:
			if d.Doc != nil && len(d.Specs) == 1 {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && (d.Doc == nil || len(d.Specs) > 1) {
						pass.Reportf(s.Pos(), "type %s lacks a doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || d.Doc != nil && len(d.Specs) == 1 {
						continue
					}
					for _, n := range s.Names {
						if !n.IsExported() {
							continue
						}
						// Inside a documented const/var block, individual
						// specs may ride on the block comment.
						if d.Doc != nil {
							continue
						}
						pass.Reportf(s.Pos(), "%s lacks a doc comment", n.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver base type is
// exported (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch n := t.(type) {
		case *ast.StarExpr:
			t = n.X
		case *ast.IndexExpr: // generic receiver, one type parameter
			t = n.X
		case *ast.IndexListExpr: // generic receiver, two or more type parameters
			t = n.X
		case *ast.Ident:
			return n.IsExported()
		default:
			return false
		}
	}
}

// funcDeclName renders a function or method name for the finding.
func funcDeclName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}
