package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func golden(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestDeterminismPass(t *testing.T) {
	analysistest.Run(t, golden("determinism"), analysis.NewDeterminism())
}

func TestDeterminismUnmarkedPackage(t *testing.T) {
	analysistest.Run(t, golden("determinismoff"), analysis.NewDeterminism())
}

func TestNoAllocPass(t *testing.T) {
	analysistest.Run(t, golden("noalloc"), analysis.NewNoAlloc())
}

func TestExhaustivePass(t *testing.T) {
	analysistest.Run(t, golden("exhaustive"), analysis.NewExhaustive())
}

func TestDocLintPass(t *testing.T) {
	analysistest.Run(t, golden("doclint"), analysis.NewDocLint())
}

// TestWaiverScope pins the satellite contract: a waiver suppresses
// exactly one statement line (trailing or standalone), and a waiver
// without a reason is itself a finding.
func TestWaiverScope(t *testing.T) {
	analysistest.Run(t, golden("waiver"), analysis.NewDeterminism())
}

// TestLoadRealPackage exercises the go list -export loader against a
// real module package with module-internal imports.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := analysis.Load(".", []string{"repro/internal/scs"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var found bool
	for _, p := range pkgs {
		if p.ImportPath == "repro/internal/scs" {
			found = true
			if !p.Target {
				t.Errorf("requested package not marked Target")
			}
			if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
				t.Errorf("package loaded without syntax or types")
			}
		}
	}
	if !found {
		t.Fatalf("repro/internal/scs not in loaded set")
	}
}

// TestSuiteCleanOnModule is the in-suite twin of `make lint`: the
// whole module must be free of fleetvet findings, so a change that
// violates a declared invariant fails tier-1 tests even before CI's
// lint step runs.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is seconds-long; covered by make lint")
	}
	pkgs, err := analysis.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := analysis.Run(analysis.Suite(), pkgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
