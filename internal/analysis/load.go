package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed, and type-checked package ready for
// the analyzers.
type Package struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Name is the package name ("main" for commands and examples).
	Name string
	// Dir is the source directory.
	Dir string
	// Fset maps the package's positions.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in go list order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Target reports whether the package was requested on the command
	// line (false for dependencies pulled in only for analysis order).
	Target bool
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// goList runs `go list -export -deps -json` on the patterns from dir
// and decodes the package stream. The -deps closure arrives in
// dependency order (imports before importers), which the driver relies
// on for the exhaustive pass's cross-package enum registry.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer resolving import
// paths through the files recorded by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists, parses, and type-checks the packages matching patterns
// (resolved relative to dir), plus their in-module dependencies, in
// dependency order. Standard-library dependencies are consumed as
// export data only.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkg.Target = !lp.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

// checkFiles parses and type-checks one listed package from source.
func checkFiles(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// CheckDir parses and type-checks the single package in dir, resolving
// its imports through `go list -export` run from dir (so module-local
// import paths work). It exists for the analysistest harness, whose
// golden packages live under testdata/ where the go tool's pattern
// matching cannot see them.
func CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path := spec.Path.Value
			imports = append(imports, path[1:len(path)-1])
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newTypesInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	importPath := "testdata/" + filepath.Base(dir)
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       files[0].Name.Name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		Target:     true,
	}, nil
}

// newTypesInfo allocates the resolution maps the passes read.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Run executes every analyzer over every package, in the given package
// order (dependencies first), and returns the findings of target
// packages sorted by position. Non-target dependencies are still
// analyzed so cross-package state (the exhaustive enum registry)
// observes their declarations, but their findings are dropped.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		target := pkg.Target
		sink := func(d Diagnostic) {
			if target {
				diags = append(diags, d)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dir:       pkg.Dir,
				PkgName:   pkg.Name,
				report:    sink,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, pass.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
