package fault

// Campaign generation matching the paper's arithmetic (Section V-B): for
// each patient, 6 fault kinds x 3 target variables x 7 start/duration
// pairs x 7 initial glucose values = 882 fault injections, i.e. 8,820
// simulations per 10-patient platform.

// Targets are the perturbed controller variables: the glucose input as
// received by the control software, the internal IOB estimate, and the
// output insulin rate command.
var Targets = []string{"glucose", "iob", "rate"}

// DefaultInitialBGs are the seven initial glucose values of Section V-A
// (simulations begin between 80 and 200 mg/dL).
var DefaultInitialBGs = []float64{80, 100, 120, 140, 160, 180, 200}

// window is an injection start/duration pair in control cycles.
type window struct{ start, duration int }

// defaultWindows are the seven start/duration combinations (5-minute
// cycles). Durations span 2.5-10 hours: the human glucose system is slow
// (hours from fault activation to hazard, Fig. 7b), so short glitches
// are absorbed by the controller and only sustained faults exercise the
// hazard space — including the hyperglycemic drift, which needs the
// longest exposures.
var defaultWindows = []window{
	{10, 120},
	{10, 60},
	{25, 100},
	{40, 80},
	{55, 60},
	{70, 50},
	{90, 40},
}

// DefaultValue returns the campaign's injected magnitude for a
// kind/target pair (zero for kinds that ignore the magnitude).
func DefaultValue(kind Kind, target string) float64 { return valueFor(kind, target) }

// valueFor returns the injected magnitude for a kind/target pair.
// Magnitudes stay inside each variable's "acceptable range" as the
// paper's source-level FI does: CGM hardware reports 40-400 mg/dL,
// net IOB estimates live within roughly +-10 U, and pump rates within
// [0, 30] U/h.
func valueFor(kind Kind, target string) float64 {
	switch kind {
	case KindTruncate, KindHold:
		// No magnitude: truncate zeroes the variable, hold freezes it.
	case KindMax:
		switch target {
		case "glucose":
			return 400
		case "iob":
			return 10
		case "rate":
			return 30
		}
	case KindMin:
		switch target {
		case "glucose":
			return 40
		case "iob":
			return -10
		case "rate":
			return 0
		}
	case KindAdd:
		switch target {
		case "glucose":
			return 75
		case "iob":
			return 3
		case "rate":
			return 4
		}
	case KindSub:
		switch target {
		case "glucose":
			return 75
		case "iob":
			return 3
		case "rate":
			return 4
		}
	}
	return 0
}

// Scenario couples one fault with the initial condition of the run.
type Scenario struct {
	Fault     Fault
	InitialBG float64
}

// Campaign enumerates the full per-patient scenario matrix. With the
// default seven initial BGs it yields exactly 882 scenarios.
func Campaign(initialBGs []float64) []Scenario {
	if len(initialBGs) == 0 {
		initialBGs = DefaultInitialBGs
	}
	out := make([]Scenario, 0, len(Kinds)*len(Targets)*len(defaultWindows)*len(initialBGs))
	for _, kind := range Kinds {
		for _, target := range Targets {
			for _, w := range defaultWindows {
				for _, bg := range initialBGs {
					out = append(out, Scenario{
						Fault: Fault{
							Kind:      kind,
							Target:    target,
							Value:     valueFor(kind, target),
							StartStep: w.start,
							Duration:  w.duration,
						},
						InitialBG: bg,
					})
				}
			}
		}
	}
	return out
}

// FaultFreeScenarios returns one fault-free run per initial BG, used for
// baseline resilience measurements and fault-free training data.
func FaultFreeScenarios(initialBGs []float64) []Scenario {
	if len(initialBGs) == 0 {
		initialBGs = DefaultInitialBGs
	}
	out := make([]Scenario, 0, len(initialBGs))
	for _, bg := range initialBGs {
		out = append(out, Scenario{InitialBG: bg})
	}
	return out
}
