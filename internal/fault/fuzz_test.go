package fault

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseProgram fuzzes the scenario-file parser: it must never
// panic, and every text it accepts must re-encode canonically — Format
// of the parse reparses to the identical program (the parser and
// printer agree on the grammar).
func FuzzParseProgram(f *testing.F) {
	f.Add("scenario -\n")
	f.Add("scenario max:glucose/s10d120/bg160\n  init bg=160\n  inject max glucose value=400 start=10 dur=120\n")
	f.Add("scenario storm\n  dropout start=20 dur=12\n  bias value=40 start=40 dur=30\n  meal grams=85 start=10 dur=8\n")
	f.Add("# comment\nscenario x\n  exercise intensity=0.013 start=60 dur=24\n  occlude start=70 dur=6\n")
	f.Add("scenario a\n  init bg=1e2\nscenario b\n  meal grams=1.5 start=0 dur=1\n")
	f.Fuzz(func(t *testing.T, text string) {
		progs, err := ParsePrograms(text)
		if err != nil {
			return
		}
		for _, p := range progs {
			if err := p.Validate(); err != nil {
				t.Fatalf("parser returned invalid program %+v: %v", p, err)
			}
			back, err := ParseProgram(p.Format())
			if err != nil {
				t.Fatalf("canonical form does not reparse: %v\n%s", err, p.Format())
			}
			if !reflect.DeepEqual(back, p) {
				t.Fatalf("canonical round trip diverged:\n%s\n%+v != %+v", p.Format(), back, p)
			}
			if back.Key() != p.Key() {
				t.Fatalf("key instability: %q != %q", back.Key(), p.Key())
			}
		}
	})
}

// FuzzProgramJSON fuzzes the tenant wire codec: arbitrary JSON must
// never panic, and any accepted valid program must survive a
// marshal/unmarshal round trip bit-exactly.
func FuzzProgramJSON(f *testing.F) {
	for _, p := range CampaignPrograms(nil)[:8] {
		seed, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte(`{"name":"x","segments":[{"kind":"meal","value":30,"start":2,"dur":4}]}`))
	f.Add([]byte(`{"segments":[{"kind":"volcano"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Program
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			return // structurally invalid programs are rejected downstream
		}
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("valid program does not marshal: %v (%+v)", err, p)
		}
		var back Program
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("re-decode: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("JSON round trip diverged: %+v != %+v", back, p)
		}
	})
}
