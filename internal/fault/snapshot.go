// Snapshot/restore of fault-injection state. The fault definition
// itself is configuration (rebuilt from the scenario on restore); only
// the injector's progress through it — the step counter and the
// held-value latch — is serialized.

package fault

import "repro/internal/snapshot"

var _ snapshot.Snapshotter = (*Injector)(nil)

// SnapshotState implements snapshot.Snapshotter.
func (inj *Injector) SnapshotState(enc *snapshot.Encoder) {
	enc.Int(inj.step)
	enc.Float64(inj.held)
	enc.Bool(inj.holdSet)
}

// RestoreState implements snapshot.Snapshotter.
func (inj *Injector) RestoreState(dec *snapshot.Decoder) error {
	step := dec.Int()
	held := dec.Float64()
	holdSet := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	inj.step = step
	inj.held = held
	inj.holdSet = holdSet
	return nil
}
