// Package fault implements the source-level fault-injection engine of
// Section IV-C1 and the scenario program IR built on top of it.
//
// The original engine perturbs named internal variables of the APS
// control software (inputs, estimates, outputs) for a bounded window of
// control cycles, simulating the accidental faults and attacks of
// Table II (truncate, hold, max, min, add, sub). A Scenario couples one
// such Fault with the run's initial glucose — the paper's fixed
// 6 kinds x 3 targets x 7 windows x 7 initial BGs = 882 matrix.
//
// A Program generalizes the Scenario into an ordered timeline of typed
// segments: controller-variable injections (the Table II faults), CGM
// disturbances (dropout, bias ramps), physiological disturbances
// (meals, exercise), pump occlusion, and initial-condition setters.
// Programs compile once (Program.Compile) into a flat per-step Plan
// that the closed-loop stepper and both fleet stepping backends
// (the scalar oracle and the SoA batched lanes) execute bit-identically.
//
// # Invariants
//
//   - Compiled-legacy equivalence: a Scenario bridged through
//     Scenario.Program and compiled executes byte-identically to the
//     legacy enum path — same trace bytes, same fleet sink stream, same
//     session snapshot bytes. The golden differential tests in
//     internal/fleet pin this at Parallel in {1,2,3}.
//   - Canonical encoding: Program.Format emits the canonical text form;
//     ParseProgram(Format(p)) round-trips every valid program, and
//     Program.Key (the canonical form) is the identity used for
//     duplicate detection across fleet.Config and fleetd tenant specs.
//   - Determinism: compiling and executing a plan consumes no RNG and
//     depends only on (program, steps, cycleMin); every per-step lookup
//     is a pure array read.
//   - Validation before execution: Program.Validate rejects every
//     structurally invalid segment, and Compile re-validates, so an
//     executing plan can assume well-formed windows.
package fault
