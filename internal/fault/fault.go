package fault

import (
	"fmt"
	"strings"

	"repro/internal/control"
	"repro/internal/trace"
)

// Kind enumerates the fault/attack types of Table II. Every switch
// over it must cover every kind (fleetvet's exhaustive pass), so a new
// fault type cannot silently fall through an injection or labeling
// switch.
//
//fleetvet:exhaustive
type Kind int

// Fault kinds from Table II of the paper.
const (
	// KindTruncate zeroes the target variable (availability attack).
	KindTruncate Kind = iota + 1
	// KindHold freezes the target at its value when the fault starts
	// (DoS attack / stale data).
	KindHold
	// KindMax forces the target to its maximum allowed value
	// (integrity attack).
	KindMax
	// KindMin forces the target to its minimum allowed value.
	KindMin
	// KindAdd adds a constant offset (memory fault / bit flip).
	KindAdd
	// KindSub subtracts a constant offset.
	KindSub
)

// Kinds lists all fault kinds in a stable order.
var Kinds = []Kind{KindTruncate, KindHold, KindMax, KindMin, KindAdd, KindSub}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTruncate:
		return "truncate"
	case KindHold:
		return "hold"
	case KindMax:
		return "max"
	case KindMin:
		return "min"
	case KindAdd:
		return "add"
	case KindSub:
		return "sub"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == strings.ToLower(s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Fault describes one injection scenario.
type Fault struct {
	Kind      Kind
	Target    string  // controller variable name, e.g. "glucose", "iob", "rate"
	Value     float64 // magnitude for max/min/add/sub
	StartStep int     // first active control cycle
	Duration  int     // active cycles
}

// Name returns a compact scenario label, e.g. "max:glucose".
func (f Fault) Name() string {
	return f.Kind.String() + ":" + f.Target
}

// Info converts the fault to a trace annotation.
func (f Fault) Info() trace.FaultInfo {
	return trace.FaultInfo{
		Name:      f.Name(),
		Kind:      f.Kind.String(),
		Target:    f.Target,
		StartStep: f.StartStep,
		Duration:  f.Duration,
		Value:     f.Value,
	}
}

// Active reports whether the fault is live at the given step.
func (f Fault) Active(step int) bool {
	return f.Duration > 0 && step >= f.StartStep && step < f.StartStep+f.Duration
}

// Validate checks the scenario for structural errors.
func (f Fault) Validate() error {
	switch f.Kind {
	case KindTruncate, KindHold, KindMax, KindMin, KindAdd, KindSub:
	default:
		return fmt.Errorf("fault: invalid kind %d", int(f.Kind))
	}
	if f.Target == "" {
		return fmt.Errorf("fault: empty target")
	}
	if f.StartStep < 0 || f.Duration <= 0 {
		return fmt.Errorf("fault: invalid window start=%d duration=%d", f.StartStep, f.Duration)
	}
	return nil
}

// stageFor returns the perturbation stage at which the target variable is
// live: the controller output ("rate") exists only after the decision,
// everything else before it.
func stageFor(target string) control.Stage {
	if target == "rate" {
		return control.StagePost
	}
	return control.StagePre
}

// Injector applies one Fault to a controller via its perturbation hook.
// The caller advances the step counter once per control cycle.
type Injector struct {
	fault   Fault
	step    int
	held    float64
	holdSet bool
}

// NewInjector validates the scenario and returns an injector.
func NewInjector(f Fault) (*Injector, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &Injector{fault: f}, nil
}

// Fault returns the injected scenario.
func (in *Injector) Fault() Fault { return in.fault }

// BeginStep sets the current control-cycle index. Call once per cycle
// before the controller decides.
func (in *Injector) BeginStep(step int) { in.step = step }

// ActiveNow reports whether the fault is live at the current step.
func (in *Injector) ActiveNow() bool { return in.fault.Active(in.step) }

// Perturb is the control.PerturbFunc for this injector.
func (in *Injector) Perturb(stage control.Stage, vars map[string]*float64) {
	if !in.ActiveNow() {
		in.holdSet = false
		return
	}
	if stage != stageFor(in.fault.Target) {
		return
	}
	v, ok := vars[in.fault.Target]
	if !ok {
		return // controller does not expose this variable
	}
	switch in.fault.Kind {
	case KindTruncate:
		*v = 0
	case KindHold:
		if !in.holdSet {
			in.held = *v
			in.holdSet = true
		}
		*v = in.held
	case KindMax, KindMin:
		*v = in.fault.Value
	case KindAdd:
		*v += in.fault.Value
	case KindSub:
		*v -= in.fault.Value
	}
}

// Reset rewinds the injector for a fresh run.
func (in *Injector) Reset() {
	in.step = 0
	in.held = 0
	in.holdSet = false
}
