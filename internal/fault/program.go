package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// SegKind enumerates the typed segments a scenario program timeline is
// built from. Every switch over it must cover every kind (fleetvet's
// exhaustive pass), so a new segment type cannot silently fall through
// the compiler, the validator, or the text codec.
//
//fleetvet:exhaustive
type SegKind int

// Segment kinds of the scenario program IR.
const (
	// SegInject perturbs a named controller variable for a window of
	// control cycles — the Table II faults (Fault/Target/Value).
	SegInject SegKind = iota + 1
	// SegDropout freezes the sensed CGM at its last value for a window
	// (sensor dropout: the loop keeps seeing stale glucose).
	SegDropout
	// SegBiasRamp adds a linearly growing bias to the sensed CGM,
	// reaching Value mg/dL at the end of the window (drifting sensor
	// calibration).
	SegBiasRamp
	// SegMeal ingests Value grams of carbohydrate spread uniformly over
	// the window (unannounced meal disturbance).
	SegMeal
	// SegExercise raises peripheral glucose clearance by Value per
	// minute for the window (exercise disturbance).
	SegExercise
	// SegOcclusion blocks the pump for the window: the controller
	// believes its commanded insulin was delivered, the patient
	// receives none.
	SegOcclusion
	// SegInitBG sets the run's initial glucose to Value mg/dL
	// (an initial-condition setter, not a timeline window).
	SegInitBG
)

// SegKinds lists all segment kinds in a stable order.
var SegKinds = []SegKind{SegInject, SegDropout, SegBiasRamp, SegMeal, SegExercise, SegOcclusion, SegInitBG}

// String implements fmt.Stringer; the names double as the text
// encoding's segment keywords.
func (k SegKind) String() string {
	switch k {
	case SegInject:
		return "inject"
	case SegDropout:
		return "dropout"
	case SegBiasRamp:
		return "bias"
	case SegMeal:
		return "meal"
	case SegExercise:
		return "exercise"
	case SegOcclusion:
		return "occlude"
	case SegInitBG:
		return "init"
	default:
		return fmt.Sprintf("segkind(%d)", int(k))
	}
}

// ParseSegKind is the inverse of SegKind.String.
func ParseSegKind(s string) (SegKind, error) {
	for _, k := range SegKinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown segment kind %q", s)
}

// MarshalJSON encodes the segment kind as its keyword string.
func (k SegKind) MarshalJSON() ([]byte, error) {
	switch k {
	case SegInject, SegDropout, SegBiasRamp, SegMeal, SegExercise, SegOcclusion, SegInitBG:
		return json.Marshal(k.String())
	default:
		return nil, fmt.Errorf("fault: cannot marshal invalid segment kind %d", int(k))
	}
}

// UnmarshalJSON decodes a segment-kind keyword string.
func (k *SegKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseSegKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// MarshalJSON encodes the fault kind as its Table II name.
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k {
	case KindTruncate, KindHold, KindMax, KindMin, KindAdd, KindSub:
		return json.Marshal(k.String())
	default:
		return nil, fmt.Errorf("fault: cannot marshal invalid kind %d", int(k))
	}
}

// UnmarshalJSON decodes a Table II fault-kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Segment is one typed entry of a scenario program timeline. The field
// set is flat and tagged by Kind: Fault/Target apply to SegInject only;
// Value is the kind-specific magnitude (injected value, bias height,
// meal grams, exercise clearance, initial BG); Start and Duration bound
// the active window in control cycles (unused by SegInitBG).
type Segment struct {
	Kind     SegKind `json:"kind"`
	Fault    Kind    `json:"fault,omitempty"`
	Target   string  `json:"target,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Start    int     `json:"start,omitempty"`
	Duration int     `json:"dur,omitempty"`
}

// Active reports whether the segment's window covers the given control
// cycle (always false for SegInitBG, which is not a timeline window).
func (s Segment) Active(step int) bool {
	if s.Kind == SegInitBG {
		return false
	}
	return s.Duration > 0 && step >= s.Start && step < s.Start+s.Duration
}

// Validate checks the segment for structural errors.
func (s Segment) Validate() error {
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return fmt.Errorf("fault: segment %s: non-finite value", s.Kind)
	}
	window := func() error {
		if s.Start < 0 || s.Duration <= 0 {
			return fmt.Errorf("fault: segment %s: invalid window start=%d dur=%d", s.Kind, s.Start, s.Duration)
		}
		return nil
	}
	switch s.Kind {
	case SegInject:
		return Fault{Kind: s.Fault, Target: s.Target, Value: s.Value, StartStep: s.Start, Duration: s.Duration}.Validate()
	case SegDropout, SegOcclusion:
		if s.Value != 0 {
			return fmt.Errorf("fault: segment %s: takes no value", s.Kind)
		}
		return window()
	case SegBiasRamp:
		if s.Value == 0 {
			return fmt.Errorf("fault: segment bias: zero ramp height")
		}
		return window()
	case SegMeal:
		if s.Value <= 0 {
			return fmt.Errorf("fault: segment meal: non-positive grams %v", s.Value)
		}
		return window()
	case SegExercise:
		if s.Value <= 0 {
			return fmt.Errorf("fault: segment exercise: non-positive intensity %v", s.Value)
		}
		return window()
	case SegInitBG:
		if s.Value <= 0 {
			return fmt.Errorf("fault: segment init: non-positive bg %v", s.Value)
		}
		if s.Start != 0 || s.Duration != 0 {
			return fmt.Errorf("fault: segment init: takes no window")
		}
		return nil
	default:
		return fmt.Errorf("fault: invalid segment kind %d", int(s.Kind))
	}
}

// Program is a scenario program: a named, ordered timeline of typed
// segments. It is the scenario currency of every layer above the
// injector — fleet.Config.Scenarios, fleet.AdmitSpec, fleetd tenant
// specs, and the fleetsim scenario file all carry Programs. Compile
// turns a program into the flat per-step Plan the steppers execute.
type Program struct {
	// Name labels the program in traces and corpora. It must be a
	// single token (no whitespace); empty names are allowed and format
	// as "-".
	Name string `json:"name,omitempty"`
	// Segments is the ordered timeline.
	Segments []Segment `json:"segments"`
}

// Validate checks every segment and the program-level constraints: at
// most one initial-condition setter, and a single-token name.
func (p Program) Validate() error {
	if strings.ContainsAny(p.Name, " \t\n\r#") {
		return fmt.Errorf("fault: program name %q contains whitespace or '#'", p.Name)
	}
	inits := 0
	for i, s := range p.Segments {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("fault: program %q segment %d: %w", p.Name, i, err)
		}
		if s.Kind == SegInitBG {
			inits++
		}
	}
	if inits > 1 {
		return fmt.Errorf("fault: program %q declares %d initial-BG setters (max one)", p.Name, inits)
	}
	return nil
}

// InitialBG returns the program's initial-condition setter value, or 0
// when the program leaves the initial glucose at the platform default.
func (p Program) InitialBG() float64 {
	for _, s := range p.Segments {
		if s.Kind == SegInitBG {
			return s.Value
		}
	}
	return 0
}

// Key returns the canonical identity of the program — its canonical
// text encoding — used for duplicate detection in fleet.Config.Validate
// and fleetd tenant-spec validation.
func (p Program) Key() string { return p.Format() }

// Program bridges the legacy enum scenario to the IR: an initial-BG
// setter (when the scenario pins one) followed by the single injection
// window (when the scenario carries a fault). The bridged program
// compiles to a plan that executes byte-identically to the legacy
// injector path.
func (sc Scenario) Program() Program {
	p := Program{Name: scenarioName(sc)}
	if sc.InitialBG != 0 {
		p.Segments = append(p.Segments, Segment{Kind: SegInitBG, Value: sc.InitialBG})
	}
	if sc.Fault.Duration > 0 {
		p.Segments = append(p.Segments, Segment{
			Kind:     SegInject,
			Fault:    sc.Fault.Kind,
			Target:   sc.Fault.Target,
			Value:    sc.Fault.Value,
			Start:    sc.Fault.StartStep,
			Duration: sc.Fault.Duration,
		})
	}
	return p
}

// scenarioName derives a stable single-token label for a bridged legacy
// scenario, e.g. "max:glucose/s10d120/bg160" or "baseline/bg120".
func scenarioName(sc Scenario) string {
	var b strings.Builder
	if sc.Fault.Duration > 0 {
		fmt.Fprintf(&b, "%s/s%dd%d", sc.Fault.Name(), sc.Fault.StartStep, sc.Fault.Duration)
	} else {
		b.WriteString("baseline")
	}
	if sc.InitialBG != 0 {
		fmt.Fprintf(&b, "/bg%g", sc.InitialBG)
	}
	return b.String()
}

// Programs bridges a legacy scenario slice to IR programs, preserving
// order.
func Programs(scs []Scenario) []Program {
	out := make([]Program, len(scs))
	for i, sc := range scs {
		out[i] = sc.Program()
	}
	return out
}

// CampaignPrograms is the paper's full 882-per-patient campaign matrix
// emitted as IR programs: the single generator the legacy enum matrix
// reduces to. Campaign(nil) bridged through Programs yields exactly
// this slice.
func CampaignPrograms(initialBGs []float64) []Program {
	return Programs(Campaign(initialBGs))
}

// FaultFreePrograms returns one fault-free program per initial BG, the
// IR form of FaultFreeScenarios.
func FaultFreePrograms(initialBGs []float64) []Program {
	return Programs(FaultFreeScenarios(initialBGs))
}
