package fault

import (
	"testing"

	"repro/internal/control"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
	if s := Kind(99).String(); s != "kind(99)" {
		t.Errorf("unknown kind string %q", s)
	}
}

func TestFaultValidate(t *testing.T) {
	good := Fault{Kind: KindMax, Target: "glucose", Value: 400, StartStep: 5, Duration: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	tests := []struct {
		name string
		f    Fault
	}{
		{"bad kind", Fault{Kind: 0, Target: "glucose", Duration: 1}},
		{"empty target", Fault{Kind: KindMax, Duration: 1}},
		{"negative start", Fault{Kind: KindMax, Target: "x", StartStep: -1, Duration: 1}},
		{"zero duration", Fault{Kind: KindMax, Target: "x", Duration: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.f.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestFaultInfoAndName(t *testing.T) {
	f := Fault{Kind: KindHold, Target: "iob", StartStep: 3, Duration: 4, Value: 1}
	if f.Name() != "hold:iob" {
		t.Errorf("Name = %q", f.Name())
	}
	info := f.Info()
	if info.Kind != "hold" || info.Target != "iob" || info.StartStep != 3 || info.Duration != 4 {
		t.Errorf("Info = %+v", info)
	}
}

// applyAt runs the injector against a variable map at a given step and
// returns the resulting value of the target.
func applyAt(t *testing.T, in *Injector, step int, stage control.Stage, name string, val float64) float64 {
	t.Helper()
	v := val
	vars := map[string]*float64{name: &v}
	in.BeginStep(step)
	in.Perturb(stage, vars)
	return v
}

func TestInjectorKinds(t *testing.T) {
	tests := []struct {
		name string
		kind Kind
		val  float64
		in   float64
		want float64
	}{
		{"truncate zeroes", KindTruncate, 0, 180, 0},
		{"max forces value", KindMax, 400, 180, 400},
		{"min forces value", KindMin, 40, 180, 40},
		{"add offsets", KindAdd, 75, 180, 255},
		{"sub offsets", KindSub, 75, 180, 105},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in, err := NewInjector(Fault{Kind: tt.kind, Target: "glucose", Value: tt.val, StartStep: 2, Duration: 3})
			if err != nil {
				t.Fatal(err)
			}
			if got := applyAt(t, in, 2, control.StagePre, "glucose", tt.in); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInjectorHold(t *testing.T) {
	in, err := NewInjector(Fault{Kind: KindHold, Target: "glucose", StartStep: 2, Duration: 3})
	if err != nil {
		t.Fatal(err)
	}
	// First active step captures the value.
	if got := applyAt(t, in, 2, control.StagePre, "glucose", 150); got != 150 {
		t.Errorf("hold first step = %v, want 150", got)
	}
	// Later steps replay the captured value.
	if got := applyAt(t, in, 3, control.StagePre, "glucose", 190); got != 150 {
		t.Errorf("hold second step = %v, want 150", got)
	}
	// After the window, pass through and forget.
	if got := applyAt(t, in, 5, control.StagePre, "glucose", 210); got != 210 {
		t.Errorf("post-window = %v, want 210", got)
	}
	// A second activation (after Reset) captures fresh.
	in.Reset()
	if got := applyAt(t, in, 2, control.StagePre, "glucose", 99); got != 99 {
		t.Errorf("hold after reset = %v, want 99", got)
	}
}

func TestInjectorWindowing(t *testing.T) {
	in, err := NewInjector(Fault{Kind: KindTruncate, Target: "glucose", StartStep: 5, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := applyAt(t, in, 4, control.StagePre, "glucose", 120); got != 120 {
		t.Error("fault fired before window")
	}
	if got := applyAt(t, in, 5, control.StagePre, "glucose", 120); got != 0 {
		t.Error("fault inactive at window start")
	}
	if got := applyAt(t, in, 6, control.StagePre, "glucose", 120); got != 0 {
		t.Error("fault inactive inside window")
	}
	if got := applyAt(t, in, 7, control.StagePre, "glucose", 120); got != 120 {
		t.Error("fault fired after window")
	}
}

func TestInjectorStageGating(t *testing.T) {
	// A rate fault must act only at StagePost.
	in, err := NewInjector(Fault{Kind: KindMax, Target: "rate", Value: 30, StartStep: 0, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := applyAt(t, in, 0, control.StagePre, "rate", 1); got != 1 {
		t.Error("rate fault fired at StagePre")
	}
	if got := applyAt(t, in, 0, control.StagePost, "rate", 1); got != 30 {
		t.Error("rate fault missing at StagePost")
	}
	// A glucose fault must act only at StagePre.
	in2, err := NewInjector(Fault{Kind: KindMax, Target: "glucose", Value: 400, StartStep: 0, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := applyAt(t, in2, 0, control.StagePost, "glucose", 100); got != 100 {
		t.Error("glucose fault fired at StagePost")
	}
}

func TestInjectorMissingTargetIsNoop(t *testing.T) {
	in, err := NewInjector(Fault{Kind: KindMax, Target: "nonexistent", Value: 1, StartStep: 0, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	v := 42.0
	in.BeginStep(0)
	in.Perturb(control.StagePre, map[string]*float64{"glucose": &v})
	if v != 42 {
		t.Errorf("missing target perturbed an unrelated var: %v", v)
	}
}

func TestCampaignArithmetic(t *testing.T) {
	scenarios := Campaign(nil)
	// 6 kinds x 3 targets x 7 windows x 7 initial BGs = 882, the paper's
	// per-patient count (Section V-B).
	if len(scenarios) != 882 {
		t.Fatalf("campaign size %d, want 882", len(scenarios))
	}
	seen := make(map[string]bool, len(scenarios))
	for _, s := range scenarios {
		if err := s.Fault.Validate(); err != nil {
			t.Fatalf("invalid campaign fault %+v: %v", s.Fault, err)
		}
		key := s.Fault.Name() + string(rune(s.Fault.StartStep)) + string(rune(int(s.InitialBG)))
		seen[key] = true
		if s.InitialBG < 80 || s.InitialBG > 200 {
			t.Errorf("initial BG %v outside [80,200]", s.InitialBG)
		}
		if s.Fault.StartStep+s.Fault.Duration > 150 {
			t.Errorf("fault window %d+%d exceeds 150-step simulation", s.Fault.StartStep, s.Fault.Duration)
		}
	}
}

func TestCampaignCustomBGs(t *testing.T) {
	scenarios := Campaign([]float64{120})
	if len(scenarios) != 126 { // 6*3*7
		t.Fatalf("campaign size %d, want 126", len(scenarios))
	}
}

func TestFaultFreeScenarios(t *testing.T) {
	ff := FaultFreeScenarios(nil)
	if len(ff) != 7 {
		t.Fatalf("got %d fault-free scenarios, want 7", len(ff))
	}
	for _, s := range ff {
		if s.Fault.Duration != 0 || s.Fault.Kind != 0 {
			t.Errorf("fault-free scenario has fault %+v", s.Fault)
		}
	}
}
