package fault

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Plan is a compiled scenario program: every disturbance resolved to a
// flat per-step schedule over a fixed horizon, plus the ordered
// controller-variable injections executed by PlanExec. A plan is
// immutable after Compile and shared freely across sessions; per-run
// mutable state (the injectors' hold latches) lives in PlanExec.
type Plan struct {
	prog     Program
	steps    int
	cycleMin float64

	initialBG float64
	injects   []Segment // SegInject segments, timeline order

	// Per-step schedules, nil when the program has no segment of that
	// class — the executing stepper skips the whole feature then, which
	// is what keeps inject-only (legacy-bridged) plans byte-identical
	// to the enum path.
	carb     []float64 // carbohydrate ingestion, g/min
	exercise []float64 // added glucose clearance, 1/min
	bias     []float64 // additive CGM bias, mg/dL
	dropout  []bool    // CGM frozen at previous sensed value
	occluded []bool    // pump blocked: commanded insulin not delivered
	active   []bool    // any timeline segment live at this step
}

// Compile validates the program and resolves it over a fixed horizon of
// steps control cycles of cycleMin minutes. Windows are clipped to the
// horizon; a window entirely past it is legal and simply never fires.
func (p Program) Compile(steps int, cycleMin float64) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steps <= 0 {
		return nil, fmt.Errorf("fault: compile %q: non-positive steps %d", p.Name, steps)
	}
	if cycleMin <= 0 {
		return nil, fmt.Errorf("fault: compile %q: non-positive cycle %v", p.Name, cycleMin)
	}
	pl := &Plan{prog: p, steps: steps, cycleMin: cycleMin, initialBG: p.InitialBG()}
	mark := func(dst *[]bool, seg Segment) {
		if *dst == nil {
			*dst = make([]bool, steps)
		}
		for s := seg.Start; s < seg.Start+seg.Duration && s < steps; s++ {
			(*dst)[s] = true
		}
	}
	addf := func(dst *[]float64, seg Segment, at func(step int) float64) {
		if *dst == nil {
			*dst = make([]float64, steps)
		}
		for s := seg.Start; s < seg.Start+seg.Duration && s < steps; s++ {
			(*dst)[s] += at(s)
		}
	}
	for _, seg := range p.Segments {
		switch seg.Kind {
		case SegInject:
			pl.injects = append(pl.injects, seg)
		case SegDropout:
			mark(&pl.dropout, seg)
		case SegBiasRamp:
			// Linear ramp reaching seg.Value at the window's last step.
			addf(&pl.bias, seg, func(s int) float64 {
				return seg.Value * float64(s-seg.Start+1) / float64(seg.Duration)
			})
		case SegMeal:
			// Value grams spread uniformly across the window.
			rate := seg.Value / (float64(seg.Duration) * cycleMin)
			addf(&pl.carb, seg, func(int) float64 { return rate })
		case SegExercise:
			addf(&pl.exercise, seg, func(int) float64 { return seg.Value })
		case SegOcclusion:
			mark(&pl.occluded, seg)
		case SegInitBG:
			// Resolved by Program.InitialBG above.
		default:
			return nil, fmt.Errorf("fault: compile %q: invalid segment kind %d", p.Name, int(seg.Kind))
		}
		if seg.Kind != SegInitBG {
			mark(&pl.active, seg)
		}
	}
	return pl, nil
}

// Program returns the source program the plan was compiled from.
func (pl *Plan) Program() Program { return pl.prog }

// Steps returns the compile horizon in control cycles.
func (pl *Plan) Steps() int { return pl.steps }

// CycleMin returns the control-cycle length the plan was compiled for.
func (pl *Plan) CycleMin() float64 { return pl.cycleMin }

// InitialBG returns the plan's initial glucose, 0 for the platform
// default.
func (pl *Plan) InitialBG() float64 { return pl.initialBG }

// CarbRate returns the carbohydrate ingestion rate (g/min) at a step.
func (pl *Plan) CarbRate(step int) float64 { return atF(pl.carb, step) }

// Exercise returns the added glucose clearance (1/min) at a step.
func (pl *Plan) Exercise(step int) float64 { return atF(pl.exercise, step) }

// Bias returns the additive CGM bias (mg/dL) at a step.
func (pl *Plan) Bias(step int) float64 { return atF(pl.bias, step) }

// Dropout reports whether the CGM is frozen at a step.
func (pl *Plan) Dropout(step int) bool { return atB(pl.dropout, step) }

// Occluded reports whether the pump is blocked at a step.
func (pl *Plan) Occluded(step int) bool { return atB(pl.occluded, step) }

// Active reports whether any timeline segment is live at a step; for a
// legacy-bridged single-injection plan this equals Fault.Active.
func (pl *Plan) Active(step int) bool { return atB(pl.active, step) }

// HasCarbs reports whether the plan schedules any carbohydrate intake.
func (pl *Plan) HasCarbs() bool { return pl.carb != nil }

// HasExercise reports whether the plan schedules any exercise.
func (pl *Plan) HasExercise() bool { return pl.exercise != nil }

// HasCGMDisturbance reports whether the plan perturbs the sensed CGM
// (dropout or bias segments).
func (pl *Plan) HasCGMDisturbance() bool { return pl.bias != nil || pl.dropout != nil }

// HasOcclusion reports whether the plan blocks the pump anywhere.
func (pl *Plan) HasOcclusion() bool { return pl.occluded != nil }

func atF(a []float64, step int) float64 {
	if a == nil || step < 0 || step >= len(a) {
		return 0
	}
	return a[step]
}

func atB(a []bool, step int) bool {
	if a == nil || step < 0 || step >= len(a) {
		return false
	}
	return a[step]
}

// FaultInfo returns the plan's trace annotation. A plan with exactly
// one timeline segment, that segment an injection, annotates exactly as
// the legacy enum path (byte-identical traces); a plan with no timeline
// segments annotates as fault-free; anything richer is summarized under
// the program's name with the timeline's overall window.
func (pl *Plan) FaultInfo() trace.FaultInfo {
	timeline := 0
	for _, s := range pl.prog.Segments {
		if s.Kind != SegInitBG {
			timeline++
		}
	}
	if timeline == 0 {
		return trace.FaultInfo{}
	}
	if timeline == 1 && len(pl.injects) == 1 {
		seg := pl.injects[0]
		return Fault{
			Kind: seg.Fault, Target: seg.Target, Value: seg.Value,
			StartStep: seg.Start, Duration: seg.Duration,
		}.Info()
	}
	start, end := -1, 0
	for _, s := range pl.prog.Segments {
		if s.Kind == SegInitBG {
			continue
		}
		if start < 0 || s.Start < start {
			start = s.Start
		}
		if s.Start+s.Duration > end {
			end = s.Start + s.Duration
		}
	}
	return trace.FaultInfo{
		Name:      "program:" + pl.prog.Name,
		Kind:      "program",
		StartStep: start,
		Duration:  end - start,
	}
}

// PlanExec is the mutable execution state of one plan run: one injector
// per injection segment, applied in timeline order. For a
// legacy-bridged single-injection plan its perturbation behavior and
// snapshot bytes are byte-identical to the legacy single Injector.
type PlanExec struct {
	injectors []*Injector
}

// NewExec builds fresh execution state for the plan.
func (pl *Plan) NewExec() (*PlanExec, error) {
	ex := &PlanExec{}
	for _, seg := range pl.injects {
		inj, err := NewInjector(Fault{
			Kind: seg.Fault, Target: seg.Target, Value: seg.Value,
			StartStep: seg.Start, Duration: seg.Duration,
		})
		if err != nil {
			return nil, fmt.Errorf("fault: plan %q: %w", pl.prog.Name, err)
		}
		ex.injectors = append(ex.injectors, inj)
	}
	return ex, nil
}

// BeginStep sets the current control-cycle index on every injector.
func (e *PlanExec) BeginStep(step int) {
	for _, inj := range e.injectors {
		inj.BeginStep(step)
	}
}

// Perturb is the control.PerturbFunc for the plan: each injection
// applies in timeline order.
func (e *PlanExec) Perturb(stage control.Stage, vars map[string]*float64) {
	for _, inj := range e.injectors {
		inj.Perturb(stage, vars)
	}
}

// HasInjectors reports whether the plan carries any controller-variable
// injections (false for disturbance-only programs).
func (e *PlanExec) HasInjectors() bool { return len(e.injectors) > 0 }

// Reset rewinds every injector for a fresh run.
func (e *PlanExec) Reset() {
	for _, inj := range e.injectors {
		inj.Reset()
	}
}

// SnapshotState serializes every injector's progress in timeline order;
// the count is implied by the plan, so a single-injection plan's bytes
// equal the legacy injector's.
func (e *PlanExec) SnapshotState(enc *snapshot.Encoder) {
	for _, inj := range e.injectors {
		inj.SnapshotState(enc)
	}
}

// RestoreState implements snapshot.Snapshotter for the injector set.
func (e *PlanExec) RestoreState(dec *snapshot.Decoder) error {
	for _, inj := range e.injectors {
		if err := inj.RestoreState(dec); err != nil {
			return err
		}
	}
	return nil
}
