// Canonical text encoding of scenario programs — the format behind
// `fleetsim -scenario-file`, the falsifier corpus, and Program.Key.
//
// Grammar (one program; a file may hold several):
//
//	scenario <name>
//	  init bg=<mg/dL>
//	  inject <kind> <target> value=<v> start=<cycle> dur=<cycles>
//	  dropout start=<cycle> dur=<cycles>
//	  bias value=<mg/dL> start=<cycle> dur=<cycles>
//	  meal grams=<g> start=<cycle> dur=<cycles>
//	  exercise intensity=<1/min> start=<cycle> dur=<cycles>
//	  occlude start=<cycle> dur=<cycles>
//
// '#' starts a comment; blank lines separate programs only visually
// (each `scenario` header opens a new program). Format emits the
// canonical form: two-space indentation, fields in the order above,
// %g floats, "-" for the empty name. ParseProgram(p.Format()) is the
// identity for every valid program.

package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Format returns the program's canonical text encoding.
func (p Program) Format() string {
	var b strings.Builder
	name := p.Name
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "scenario %s\n", name)
	for _, s := range p.Segments {
		b.WriteString("  ")
		b.WriteString(formatSegment(s))
		b.WriteByte('\n')
	}
	return b.String()
}

// formatSegment renders one canonical segment line (no indentation).
func formatSegment(s Segment) string {
	switch s.Kind {
	case SegInject:
		return fmt.Sprintf("inject %s %s value=%g start=%d dur=%d", s.Fault, s.Target, s.Value, s.Start, s.Duration)
	case SegDropout:
		return fmt.Sprintf("dropout start=%d dur=%d", s.Start, s.Duration)
	case SegBiasRamp:
		return fmt.Sprintf("bias value=%g start=%d dur=%d", s.Value, s.Start, s.Duration)
	case SegMeal:
		return fmt.Sprintf("meal grams=%g start=%d dur=%d", s.Value, s.Start, s.Duration)
	case SegExercise:
		return fmt.Sprintf("exercise intensity=%g start=%d dur=%d", s.Value, s.Start, s.Duration)
	case SegOcclusion:
		return fmt.Sprintf("occlude start=%d dur=%d", s.Start, s.Duration)
	case SegInitBG:
		return fmt.Sprintf("init bg=%g", s.Value)
	default:
		return fmt.Sprintf("segkind(%d)", int(s.Kind))
	}
}

// ParseProgram parses exactly one program from its text encoding.
func ParseProgram(text string) (Program, error) {
	progs, err := ParsePrograms(text)
	if err != nil {
		return Program{}, err
	}
	if len(progs) != 1 {
		return Program{}, fmt.Errorf("fault: expected one program, got %d", len(progs))
	}
	return progs[0], nil
}

// ParsePrograms parses a scenario file: a sequence of `scenario` blocks
// with '#' comments and arbitrary blank lines. Every parsed program is
// validated.
func ParsePrograms(text string) ([]Program, error) {
	var progs []Program
	var cur *Program
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "scenario" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: want `scenario <name>`", lineNo+1)
			}
			name := fields[1]
			if name == "-" {
				name = ""
			}
			progs = append(progs, Program{Name: name})
			cur = &progs[len(progs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fault: line %d: segment before any `scenario` header", lineNo+1)
		}
		seg, err := parseSegment(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", lineNo+1, err)
		}
		cur.Segments = append(cur.Segments, seg)
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("fault: no `scenario` blocks found")
	}
	for i := range progs {
		if err := progs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return progs, nil
}

// parseSegment parses one segment line already split into fields.
func parseSegment(fields []string) (Segment, error) {
	kind, err := ParseSegKind(fields[0])
	if err != nil {
		return Segment{}, err
	}
	seg := Segment{Kind: kind}
	rest := fields[1:]
	if kind == SegInject {
		if len(rest) < 2 {
			return Segment{}, fmt.Errorf("fault: inject needs `<kind> <target>`")
		}
		fk, err := ParseKind(rest[0])
		if err != nil {
			return Segment{}, err
		}
		seg.Fault = fk
		seg.Target = rest[1]
		rest = rest[2:]
	}
	keys, err := segKeys(kind)
	if err != nil {
		return Segment{}, err
	}
	seen := make(map[string]bool, len(rest))
	for _, kv := range rest {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Segment{}, fmt.Errorf("fault: %s: want key=value, got %q", kind, kv)
		}
		if !keys[key] {
			return Segment{}, fmt.Errorf("fault: %s: unknown key %q", kind, key)
		}
		if seen[key] {
			return Segment{}, fmt.Errorf("fault: %s: duplicate key %q", kind, key)
		}
		seen[key] = true
		switch key {
		case "start", "dur":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Segment{}, fmt.Errorf("fault: %s: bad %s %q", kind, key, val)
			}
			if key == "start" {
				seg.Start = n
			} else {
				seg.Duration = n
			}
		default: // the kind's value key
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Segment{}, fmt.Errorf("fault: %s: bad %s %q", kind, key, val)
			}
			seg.Value = v
		}
	}
	return seg, nil
}

// segKeys returns the key=value keys a segment kind accepts.
func segKeys(kind SegKind) (map[string]bool, error) {
	switch kind {
	case SegInject:
		return map[string]bool{"value": true, "start": true, "dur": true}, nil
	case SegDropout, SegOcclusion:
		return map[string]bool{"start": true, "dur": true}, nil
	case SegBiasRamp:
		return map[string]bool{"value": true, "start": true, "dur": true}, nil
	case SegMeal:
		return map[string]bool{"grams": true, "start": true, "dur": true}, nil
	case SegExercise:
		return map[string]bool{"intensity": true, "start": true, "dur": true}, nil
	case SegInitBG:
		return map[string]bool{"bg": true}, nil
	default:
		return nil, fmt.Errorf("fault: invalid segment kind %d", int(kind))
	}
}
