package fault

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioProgramBridge checks the legacy enum scenario bridges to
// exactly the IR the compiler and the rest of the stack expect: an
// optional initial-BG setter followed by the single injection window.
func TestScenarioProgramBridge(t *testing.T) {
	sc := Scenario{
		Fault:     Fault{Kind: KindMax, Target: "glucose", Value: 400, StartStep: 10, Duration: 120},
		InitialBG: 160,
	}
	p := sc.Program()
	if p.Name != "max:glucose/s10d120/bg160" {
		t.Errorf("bridged name %q", p.Name)
	}
	want := []Segment{
		{Kind: SegInitBG, Value: 160},
		{Kind: SegInject, Fault: KindMax, Target: "glucose", Value: 400, Start: 10, Duration: 120},
	}
	if !reflect.DeepEqual(p.Segments, want) {
		t.Errorf("bridged segments %+v, want %+v", p.Segments, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fault-free scenarios bridge to an init-only program named baseline.
	ff := Scenario{InitialBG: 120}.Program()
	if ff.Name != "baseline/bg120" || len(ff.Segments) != 1 || ff.Segments[0].Kind != SegInitBG {
		t.Errorf("fault-free bridge = %+v", ff)
	}
	// A fully zero scenario is a valid empty program.
	if err := (Scenario{}).Program().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignProgramsMatchLegacy is the generator identity: the 882
// matrix emitted as IR is exactly the legacy matrix bridged one
// scenario at a time, in order.
func TestCampaignProgramsMatchLegacy(t *testing.T) {
	progs := CampaignPrograms(nil)
	legacy := Campaign(nil)
	if len(progs) != len(legacy) {
		t.Fatalf("%d programs vs %d scenarios", len(progs), len(legacy))
	}
	for i := range progs {
		if !reflect.DeepEqual(progs[i], legacy[i].Program()) {
			t.Fatalf("program %d diverges from bridged scenario", i)
		}
	}
	if n := len(FaultFreePrograms(nil)); n != len(FaultFreeScenarios(nil)) {
		t.Fatalf("fault-free program count %d", n)
	}
}

// TestCompileSemantics pins the plan's per-step schedules: window
// clipping at the horizon, meal carbs spread uniformly, bias ramping
// linearly to its height, and nil schedules for unused classes.
func TestCompileSemantics(t *testing.T) {
	p := Program{Name: "mix", Segments: []Segment{
		{Kind: SegInitBG, Value: 150},
		{Kind: SegMeal, Value: 60, Start: 2, Duration: 4},
		{Kind: SegBiasRamp, Value: 30, Start: 0, Duration: 3},
		{Kind: SegDropout, Start: 8, Duration: 100},  // clips at the horizon
		{Kind: SegOcclusion, Start: 20, Duration: 5}, // entirely past it
	}}
	pl, err := p.Compile(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pl.InitialBG() != 150 || pl.Steps() != 10 || pl.CycleMin() != 5 {
		t.Fatalf("plan header %v/%d/%v", pl.InitialBG(), pl.Steps(), pl.CycleMin())
	}
	// 60 g over 4 cycles of 5 min = 3 g/min while active.
	for step := 0; step < 10; step++ {
		want := 0.0
		if step >= 2 && step < 6 {
			want = 3
		}
		if got := pl.CarbRate(step); math.Abs(got-want) > 1e-12 {
			t.Errorf("carb rate step %d = %v, want %v", step, got, want)
		}
	}
	// The ramp reaches its full height on the window's last cycle.
	if got := pl.Bias(2); math.Abs(got-30) > 1e-9 {
		t.Errorf("bias at ramp end = %v, want 30", got)
	}
	if pl.Bias(0) >= pl.Bias(1) || pl.Bias(1) >= pl.Bias(2) {
		t.Errorf("bias not ramping: %v %v %v", pl.Bias(0), pl.Bias(1), pl.Bias(2))
	}
	if pl.Bias(3) != 0 {
		t.Errorf("bias after window = %v", pl.Bias(3))
	}
	// Dropout clips to [8, 10); the occlusion never fires but the class
	// still allocates (it is declared by the program).
	if !pl.Dropout(8) || !pl.Dropout(9) || pl.Dropout(7) {
		t.Error("dropout window wrong")
	}
	for step := 0; step < 10; step++ {
		if pl.Occluded(step) {
			t.Fatalf("past-horizon occlusion fired at %d", step)
		}
	}
	if !pl.HasCarbs() || !pl.HasCGMDisturbance() || !pl.HasOcclusion() || pl.HasExercise() {
		t.Error("class flags wrong")
	}
	// Active is the union of all timeline windows.
	if !pl.Active(0) || !pl.Active(9) || pl.Active(6) != false && !pl.Dropout(6) {
		t.Errorf("active union wrong at edges")
	}

	// Inject-only programs keep every disturbance schedule nil, so the
	// bridged-legacy path stays byte-identical to the enum path.
	lp, err := Scenario{Fault: Fault{Kind: KindAdd, Target: "glucose", Value: 50, StartStep: 1, Duration: 3}}.Program().Compile(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lp.HasCarbs() || lp.HasExercise() || lp.HasCGMDisturbance() || lp.HasOcclusion() {
		t.Error("bridged inject-only plan allocated disturbance schedules")
	}
	exec, err := lp.NewExec()
	if err != nil {
		t.Fatal(err)
	}
	if !exec.HasInjectors() {
		t.Error("inject-only plan has no injectors")
	}

	if _, err := p.Compile(0, 5); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := p.Compile(10, 0); err == nil {
		t.Error("zero cycle accepted")
	}
	if _, err := (Program{Segments: []Segment{{Kind: SegMeal, Value: -1, Start: 0, Duration: 1}}}).Compile(10, 5); err == nil {
		t.Error("invalid program compiled")
	}
}

// TestPlanFaultInfo pins the trace annotation contract: single-inject
// plans annotate exactly like the legacy fault, fault-free plans are
// unannotated, and richer programs carry a program: label.
func TestPlanFaultInfo(t *testing.T) {
	f := Fault{Kind: KindMin, Target: "rate", Value: 0, StartStep: 5, Duration: 20}
	pl, err := (Scenario{Fault: f, InitialBG: 130}).Program().Compile(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.FaultInfo(), f.Info(); !reflect.DeepEqual(got, want) {
		t.Errorf("single-inject info %+v, want legacy %+v", got, want)
	}

	ffpl, err := (Scenario{InitialBG: 130}).Program().Compile(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ffpl.FaultInfo().Name != "" {
		t.Errorf("fault-free plan annotated as %q", ffpl.FaultInfo().Name)
	}

	rich, err := (Program{Name: "storm", Segments: []Segment{
		{Kind: SegMeal, Value: 40, Start: 1, Duration: 4},
		{Kind: SegDropout, Start: 2, Duration: 8},
	}}).Compile(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := rich.FaultInfo().Name; got != "program:storm" {
		t.Errorf("rich program annotated as %q", got)
	}
}

// TestProgramValidateRejects sweeps the validator's rejection surface.
func TestProgramValidateRejects(t *testing.T) {
	cases := map[string]Program{
		"name with space":  {Name: "a b"},
		"name with hash":   {Name: "a#b"},
		"two init setters": {Segments: []Segment{{Kind: SegInitBG, Value: 100}, {Kind: SegInitBG, Value: 120}}},
		"nan value":        {Segments: []Segment{{Kind: SegMeal, Value: math.NaN(), Start: 0, Duration: 1}}},
		"negative start":   {Segments: []Segment{{Kind: SegDropout, Start: -1, Duration: 5}}},
		"zero duration":    {Segments: []Segment{{Kind: SegOcclusion, Start: 0, Duration: 0}}},
		"zero bias ramp":   {Segments: []Segment{{Kind: SegBiasRamp, Value: 0, Start: 0, Duration: 5}}},
		"negative meal":    {Segments: []Segment{{Kind: SegMeal, Value: -10, Start: 0, Duration: 5}}},
		"zero exercise":    {Segments: []Segment{{Kind: SegExercise, Value: 0, Start: 0, Duration: 5}}},
		"init with window": {Segments: []Segment{{Kind: SegInitBG, Value: 120, Duration: 3}}},
		"dropout value":    {Segments: []Segment{{Kind: SegDropout, Value: 1, Start: 0, Duration: 5}}},
		"bad inject":       {Segments: []Segment{{Kind: SegInject, Fault: KindMax, Target: "", Value: 1, Start: 0, Duration: 5}}},
		"invalid kind":     {Segments: []Segment{{Kind: SegKind(99), Value: 1}}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, p)
		}
	}
}

// TestProgramJSONRoundTrip checks the JSON codec (the fleetd tenant
// wire format) preserves programs exactly, including keyword-encoded
// kinds.
func TestProgramJSONRoundTrip(t *testing.T) {
	p := Program{Name: "wire", Segments: []Segment{
		{Kind: SegInitBG, Value: 145},
		{Kind: SegInject, Fault: KindHold, Target: "insulin", Start: 3, Duration: 40},
		{Kind: SegMeal, Value: 75, Start: 12, Duration: 6},
		{Kind: SegExercise, Value: 0.02, Start: 30, Duration: 12},
	}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"meal"`) || !strings.Contains(string(data), `"fault":"hold"`) {
		t.Errorf("kinds not keyword-encoded: %s", data)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("round trip %+v != %+v", back, p)
	}
	if err := json.Unmarshal([]byte(`{"segments":[{"kind":"volcano"}]}`), &back); err == nil {
		t.Error("unknown segment kind keyword accepted")
	}
	if _, err := json.Marshal(Segment{Kind: SegKind(42)}); err == nil {
		t.Error("invalid segment kind marshaled")
	}
}

// TestTextRoundTrip checks ParseProgram(Format()) is the identity over
// a representative program set, and that Key equals Format.
func TestTextRoundTrip(t *testing.T) {
	progs := []Program{
		{Name: "", Segments: nil},
		{Name: "full", Segments: []Segment{
			{Kind: SegInitBG, Value: 137.5},
			{Kind: SegInject, Fault: KindSub, Target: "glucose", Value: 25, Start: 4, Duration: 30},
			{Kind: SegDropout, Start: 10, Duration: 8},
			{Kind: SegBiasRamp, Value: -15, Start: 0, Duration: 20},
			{Kind: SegMeal, Value: 90, Start: 50, Duration: 4},
			{Kind: SegExercise, Value: 0.013, Start: 60, Duration: 24},
			{Kind: SegOcclusion, Start: 70, Duration: 6},
		}},
	}
	progs = append(progs, CampaignPrograms(nil)[:25]...)
	for _, p := range progs {
		if p.Key() != p.Format() {
			t.Fatalf("Key diverges from Format for %q", p.Name)
		}
		back, err := ParseProgram(p.Format())
		if err != nil {
			t.Fatalf("parse %q: %v\n%s", p.Name, err, p.Format())
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("text round trip:\n%s\n-> %+v\nwant %+v", p.Format(), back, p)
		}
	}
}

// TestParseProgramsFile exercises the file-level grammar: comments,
// blank lines, multiple blocks, and the error surface.
func TestParseProgramsFile(t *testing.T) {
	text := `
# fleet scenario file
scenario lunch-crash
  init bg=110   # mid-range start
  meal grams=85 start=10 dur=8

scenario sensor-storm
  dropout start=20 dur=12
  bias value=40 start=40 dur=30
`
	progs, err := ParsePrograms(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "lunch-crash" || progs[1].Name != "sensor-storm" {
		t.Fatalf("parsed %+v", progs)
	}
	if progs[0].Segments[1].Value != 85 || progs[1].Segments[0].Duration != 12 {
		t.Fatalf("segment fields wrong: %+v", progs)
	}

	bad := []string{
		"",                            // no blocks
		"meal grams=10 start=0 dur=1", // segment before header
		"scenario a b\n",              // extra header token
		"scenario x\n  meal grams=ten start=0 dur=1",      // bad float
		"scenario x\n  meal grams=10 start=0 dur=1 dur=2", // duplicate key
		"scenario x\n  meal grams=10 bogus=1",             // unknown key
		"scenario x\n  teleport start=0 dur=1",            // unknown kind
		"scenario x\n  inject max",                        // inject missing target
		"scenario x\n  meal grams=-5 start=0 dur=1",       // validator runs
	}
	for _, text := range bad {
		if _, err := ParsePrograms(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
	if _, err := ParseProgram("scenario a\nscenario b\n"); err == nil {
		t.Error("ParseProgram accepted two blocks")
	}
}
