package fault

import (
	"testing"

	"repro/internal/control"
)

// benchProgram exercises every segment class, so the compile cost below
// is the worst case (all five schedule arrays allocated and filled).
func benchProgram() Program {
	return Program{Name: "bench", Segments: []Segment{
		{Kind: SegInitBG, Value: 160},
		{Kind: SegInject, Fault: KindMax, Target: "glucose", Value: 400, Start: 10, Duration: 120},
		{Kind: SegDropout, Start: 40, Duration: 20},
		{Kind: SegBiasRamp, Value: 30, Start: 60, Duration: 40},
		{Kind: SegMeal, Value: 75, Start: 100, Duration: 8},
		{Kind: SegExercise, Value: 0.013, Start: 150, Duration: 24},
		{Kind: SegOcclusion, Start: 200, Duration: 12},
	}}
}

// BenchmarkProgramCompile is the one-time per-session cost of compiling
// a rich (all-segment-class) program to a day-length plan.
func BenchmarkProgramCompile(b *testing.B) {
	p := benchProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile(288, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignProgramsCompile compiles the full bridged 882-matrix
// (one op = the whole table): the fleet pays this once per Config, not
// per session.
func BenchmarkCampaignProgramsCompile(b *testing.B) {
	progs := CampaignPrograms(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := p.Compile(288, 5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPlanExecPerturb is the per-cycle injection cost on the
// compiled path: BeginStep plus both perturbation stages, the work
// every session step pays. Compare BenchmarkInjectorPerturb — the plan
// path must not be slower than the legacy enum injector it replaced.
func BenchmarkPlanExecPerturb(b *testing.B) {
	plan, err := benchProgram().Compile(288, 5)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := plan.NewExec()
	if err != nil {
		b.Fatal(err)
	}
	glucose, rate := 120.0, 1.5
	vars := map[string]*float64{"glucose": &glucose, "rate": &rate}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.BeginStep(i % 288)
		exec.Perturb(control.StagePre, vars)
		exec.Perturb(control.StagePost, vars)
	}
}

// BenchmarkInjectorPerturb is the legacy enum injector's per-cycle
// cost, the baseline for BenchmarkPlanExecPerturb.
func BenchmarkInjectorPerturb(b *testing.B) {
	in, err := NewInjector(Fault{Kind: KindMax, Target: "glucose", Value: 400, StartStep: 10, Duration: 120})
	if err != nil {
		b.Fatal(err)
	}
	glucose, rate := 120.0, 1.5
	vars := map[string]*float64{"glucose": &glucose, "rate": &rate}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.BeginStep(i % 288)
		in.Perturb(control.StagePre, vars)
		in.Perturb(control.StagePost, vars)
	}
}
