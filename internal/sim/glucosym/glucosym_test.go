package glucosym

import (
	"math"
	"testing"
)

func TestCohortConstruction(t *testing.T) {
	patients, err := Cohort()
	if err != nil {
		t.Fatalf("Cohort: %v", err)
	}
	if len(patients) != NumPatients {
		t.Fatalf("cohort size %d, want %d", len(patients), NumPatients)
	}
	seen := make(map[string]bool, len(patients))
	for _, p := range patients {
		if seen[p.ID()] {
			t.Errorf("duplicate patient ID %s", p.ID())
		}
		seen[p.ID()] = true
		if p.Basal() <= 0 || p.Basal() > 10 {
			t.Errorf("%s: implausible basal %v U/h", p.ID(), p.Basal())
		}
		if p.BG() != TargetBG {
			t.Errorf("%s: initial BG %v, want %v", p.ID(), p.BG(), TargetBG)
		}
	}
}

func TestNewOutOfRange(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("New(-1) should fail")
	}
	if _, err := New(NumPatients); err == nil {
		t.Error("New(NumPatients) should fail")
	}
}

func TestNewWithParamsValidation(t *testing.T) {
	bad := profiles[0]
	bad.SI = 0
	if _, err := NewWithParams("x", bad); err == nil {
		t.Error("zero SI should fail")
	}
	bad = profiles[0]
	bad.GEZI = 1 // GEZI so large no positive basal exists
	if _, err := NewWithParams("x", bad); err == nil {
		t.Error("oversized GEZI should fail")
	}
}

func TestBasalHoldsSteadyState(t *testing.T) {
	for idx := 0; idx < NumPatients; idx++ {
		p, err := New(idx)
		if err != nil {
			t.Fatalf("New(%d): %v", idx, err)
		}
		for i := 0; i < 144; i++ { // 12 hours of 5-min steps
			p.Step(p.Basal(), 0, 5)
		}
		if math.Abs(p.BG()-TargetBG) > 2 {
			t.Errorf("%s: BG drifted to %v under basal, want ~%v", p.ID(), p.BG(), TargetBG)
		}
	}
}

func TestInsulinSuspensionRaisesBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ { // 4 hours without insulin
		p.Step(0, 0, 5)
	}
	if p.BG() <= TargetBG+30 {
		t.Errorf("BG after 4h suspension = %v, want well above %v", p.BG(), TargetBG)
	}
}

func TestInsulinOverdoseLowersBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 36; i++ { // 3 hours at 5x basal
		p.Step(5*p.Basal(), 0, 5)
	}
	if p.BG() >= TargetBG-30 {
		t.Errorf("BG after 3h of 5x basal = %v, want well below %v", p.BG(), TargetBG)
	}
}

func TestMealRaisesBG(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	// 60 g carbs over 15 minutes at basal insulin.
	for i := 0; i < 3; i++ {
		p.Step(p.Basal(), 4, 5)
	}
	for i := 0; i < 12; i++ { // 1 h absorption
		p.Step(p.Basal(), 0, 5)
	}
	if p.BG() <= TargetBG+20 {
		t.Errorf("BG 1h after 60g meal = %v, want a clear rise", p.BG())
	}
}

func TestResetRestoresState(t *testing.T) {
	p, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.Step(0, 2, 5)
	}
	p.Reset(150)
	if p.BG() != 150 || p.CGM() != 150 {
		t.Errorf("after Reset(150): BG=%v CGM=%v", p.BG(), p.CGM())
	}
	// Steady again at basal from the new starting point: BG should head
	// back toward the target, not explode.
	for i := 0; i < 72; i++ {
		p.Step(p.Basal(), 0, 5)
	}
	if p.BG() < 80 || p.BG() > 160 {
		t.Errorf("BG 6h after reset = %v, want convergence toward %v", p.BG(), TargetBG)
	}
	p.Reset(0) // invalid initial BG falls back to target
	if p.BG() != TargetBG {
		t.Errorf("Reset(0) gave BG %v, want %v", p.BG(), TargetBG)
	}
}

func TestCGMLagsBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Reset(120)
	for i := 0; i < 6; i++ {
		p.Step(0, 3, 5) // eat with no insulin: BG rises fast
	}
	if p.CGM() >= p.BG() {
		t.Errorf("CGM %v should lag rising BG %v", p.CGM(), p.BG())
	}
}

func TestBGFloorUnderExtremeOverdose(t *testing.T) {
	p, err := New(4) // most insulin-sensitive
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		p.Step(50, 0, 5) // absurd overdose
	}
	if p.BG() < 10 || math.IsNaN(p.BG()) {
		t.Errorf("BG = %v, want floor at 10", p.BG())
	}
}

func TestNegativeInputsTreatedAsZero(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	before := p.BG()
	p.Step(-5, -2, 5)
	// Negative insulin clamps to zero: same as suspension for one step.
	if math.IsNaN(p.BG()) || p.BG() < before-5 {
		t.Errorf("BG = %v after clamped negative inputs (before %v)", p.BG(), before)
	}
}

func TestPatientDiversity(t *testing.T) {
	// Suspending insulin for 2h must produce a spread of responses across
	// the cohort — this diversity drives the paper's Fig. 7a.
	var rises []float64
	patients, err := Cohort()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range patients {
		for i := 0; i < 24; i++ {
			p.Step(0, 0, 5)
		}
		rises = append(rises, p.BG()-TargetBG)
	}
	minRise, maxRise := rises[0], rises[0]
	for _, r := range rises {
		minRise = math.Min(minRise, r)
		maxRise = math.Max(maxRise, r)
	}
	if maxRise-minRise < 10 {
		t.Errorf("cohort rise spread %v..%v too uniform", minRise, maxRise)
	}
}

func TestPatientIDs(t *testing.T) {
	ids := PatientIDs()
	if len(ids) != NumPatients {
		t.Fatalf("got %d ids", len(ids))
	}
	if ids[0] != "glucosym-0" || ids[9] != "glucosym-9" {
		t.Errorf("unexpected ids %v", ids)
	}
}
