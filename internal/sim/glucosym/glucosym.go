// Package glucosym implements a Glucosym-style virtual patient: the
// Medtronic Virtual Patient (MVP) model of Kanderian et al. 2009, the same
// Bergman-family model the paper's Glucosym simulator derives its ten
// adult Type 1 profiles from, and whose glucose equation
//
//	dG/dt = -(GEZI + Ieff)·G + EGP + Ra(t)
//
// the paper's MPC baseline monitor (Eq. 6) assumes.
//
// The original Glucosym patient constants are not redistributable, so the
// ten profiles here are synthetic parameter sets spread around the
// published Kanderian population means (see DESIGN.md, substitutions).
//
//fleetvet:deterministic
package glucosym

import (
	"fmt"

	"repro/internal/sim"
)

// Params are the MVP model parameters for one patient.
type Params struct {
	SI   float64 // insulin sensitivity, mL/µU/min
	GEZI float64 // glucose effectiveness at zero insulin, 1/min
	EGP  float64 // endogenous glucose production, mg/dL/min
	CI   float64 // insulin clearance, mL/min
	Tau1 float64 // subcutaneous insulin absorption time constant, min
	Tau2 float64 // plasma insulin time constant, min
	P2   float64 // insulin action time constant, 1/min

	// Meal absorption (two-compartment): time constant and carb
	// bioavailability; VG is the glucose distribution volume in dL.
	TauMeal float64
	MealF   float64
	VG      float64

	// SensorLag is the CGM first-order lag in minutes.
	SensorLag float64
}

// defaults fills unset secondary parameters.
func (p Params) defaults() Params {
	if p.TauMeal == 0 {
		p.TauMeal = 40
	}
	if p.MealF == 0 {
		p.MealF = 0.8
	}
	if p.VG == 0 {
		p.VG = 140
	}
	if p.SensorLag == 0 {
		p.SensorLag = 8
	}
	return p
}

// TargetBG is the glucose value (mg/dL) at which the basal rate holds the
// model in steady state.
const TargetBG = 120

// profiles are the ten synthetic adult T1D parameter sets
// (Kanderian-range spread; see package comment).
var profiles = []Params{
	{SI: 4.9e-4, GEZI: 0.0031, EGP: 1.45, CI: 2010, Tau1: 49, Tau2: 47, P2: 0.0106},
	{SI: 6.8e-4, GEZI: 0.0022, EGP: 1.33, CI: 2010, Tau1: 55, Tau2: 70, P2: 0.0106},
	{SI: 2.8e-4, GEZI: 0.0060, EGP: 1.90, CI: 1500, Tau1: 40, Tau2: 40, P2: 0.0120},
	{SI: 9.1e-4, GEZI: 0.0010, EGP: 1.00, CI: 2500, Tau1: 60, Tau2: 50, P2: 0.0090},
	{SI: 1.2e-3, GEZI: 0.0015, EGP: 0.95, CI: 2200, Tau1: 45, Tau2: 55, P2: 0.0100},
	{SI: 3.5e-4, GEZI: 0.0040, EGP: 1.70, CI: 1800, Tau1: 50, Tau2: 45, P2: 0.0110},
	{SI: 7.5e-4, GEZI: 0.0025, EGP: 1.20, CI: 1900, Tau1: 52, Tau2: 60, P2: 0.0095},
	{SI: 5.5e-4, GEZI: 0.0018, EGP: 1.10, CI: 2100, Tau1: 48, Tau2: 50, P2: 0.0105},
	{SI: 1.5e-3, GEZI: 0.0008, EGP: 0.80, CI: 2400, Tau1: 58, Tau2: 65, P2: 0.0085},
	{SI: 2.2e-4, GEZI: 0.0050, EGP: 2.10, CI: 1600, Tau1: 42, Tau2: 38, P2: 0.0125},
}

// NumPatients is the size of the synthetic cohort.
const NumPatients = 10

// PatientIDs returns the cohort identifiers ("glucosym-0".."glucosym-9").
func PatientIDs() []string {
	ids := make([]string, NumPatients)
	for i := range ids {
		ids[i] = fmt.Sprintf("glucosym-%d", i)
	}
	return ids
}

// State vector layout.
const (
	iIsc  = iota // subcutaneous insulin, µU/mL-equivalent
	iIp          // plasma insulin, µU/mL
	iIeff        // insulin effect, 1/min
	iG           // plasma glucose, mg/dL
	iQ1          // meal compartment 1, mg
	iQ2          // meal compartment 2, mg
	iGs          // sensor glucose, mg/dL
	nStates
)

// Patient is an MVP-model virtual patient. It implements sim.Patient.
type Patient struct {
	id     string
	params Params
	basal  float64 // U/h holding TargetBG steady

	y   []float64
	rk4 *sim.RK4

	// step inputs captured for the derivative closure
	insulinUPerH float64
	carbGPerMin  float64
	exercise     float64 // added glucose clearance, 1/min
}

var _ sim.Patient = (*Patient)(nil)
var _ sim.ExerciseHost = (*Patient)(nil)

// New builds cohort patient idx (0..NumPatients-1) initialized at
// TargetBG.
func New(idx int) (*Patient, error) {
	if idx < 0 || idx >= NumPatients {
		return nil, fmt.Errorf("glucosym: patient index %d out of range [0,%d)", idx, NumPatients)
	}
	return NewWithParams(fmt.Sprintf("glucosym-%d", idx), profiles[idx])
}

// NewWithParams builds a patient from explicit parameters. The basal rate
// is derived from the model's steady state at TargetBG.
func NewWithParams(id string, p Params) (*Patient, error) {
	p = p.defaults()
	if p.SI <= 0 || p.CI <= 0 || p.Tau1 <= 0 || p.Tau2 <= 0 || p.P2 <= 0 {
		return nil, fmt.Errorf("glucosym: non-positive core parameter in %+v", p)
	}
	ieffStar := p.EGP/TargetBG - p.GEZI
	if ieffStar <= 0 {
		return nil, fmt.Errorf("glucosym: GEZI %v too large for EGP %v (no positive basal)", p.GEZI, p.EGP)
	}
	ipStar := ieffStar / p.SI          // µU/mL
	idMicroUPerMin := p.CI * ipStar    // µU/min
	basal := idMicroUPerMin * 60 / 1e6 // U/h
	pt := &Patient{
		id:     id,
		params: p,
		basal:  basal,
		y:      make([]float64, nStates),
		rk4:    sim.NewRK4(nStates),
	}
	pt.Reset(TargetBG)
	return pt, nil
}

// ID implements sim.Patient.
func (p *Patient) ID() string { return p.id }

// Basal implements sim.Patient.
func (p *Patient) Basal() float64 { return p.basal }

// BG implements sim.Patient.
func (p *Patient) BG() float64 { return p.y[iG] }

// CGM implements sim.Patient.
func (p *Patient) CGM() float64 { return p.y[iGs] }

// PlasmaInsulin returns the current plasma insulin concentration (µU/mL),
// exposed for tests and model-based monitors.
func (p *Patient) PlasmaInsulin() float64 { return p.y[iIp] }

// Params returns a copy of the patient's model parameters.
func (p *Patient) Params() Params { return p.params }

// Reset implements sim.Patient: glucose set to initialBG, insulin
// compartments at the basal steady state, meal compartments empty.
func (p *Patient) Reset(initialBG float64) {
	if initialBG <= 0 {
		initialBG = TargetBG
	}
	ieffStar := p.params.EGP/TargetBG - p.params.GEZI
	ipStar := ieffStar / p.params.SI
	for i := range p.y {
		p.y[i] = 0
	}
	p.y[iIsc] = ipStar
	p.y[iIp] = ipStar
	p.y[iIeff] = ieffStar
	p.y[iG] = initialBG
	p.y[iGs] = initialBG
}

// SetExercise implements sim.ExerciseHost: the rate adds to the model's
// glucose clearance until re-set.
func (p *Patient) SetExercise(perMin float64) { p.exercise = perMin }

// derivs computes the MVP model right-hand side.
func (p *Patient) derivs(_ float64, y, dydt []float64) {
	derivsAt(&p.params, p.insulinUPerH, p.carbGPerMin, p.exercise, y, dydt, 0)
}

// derivsAt evaluates the MVP right-hand side for the state window
// starting at offset o of y/dydt. Both the scalar and batched steppers
// compile through this one function, which is what makes a batch lane's
// floating-point trajectory bit-identical to a standalone patient's.
// The exercise term is guarded so an idle (zero) rate evaluates the
// literal undisturbed expression, keeping exercise-free runs bit-exact
// with the pre-hook model.
func derivsAt(prm *Params, insulinUPerH, carbGPerMin, ex float64, y, dydt []float64, o int) {
	idRate := insulinUPerH * 1e6 / 60                 // µU/min
	ra := prm.MealF * y[o+iQ2] / prm.TauMeal / prm.VG // mg/dL/min

	dydt[o+iIsc] = -y[o+iIsc]/prm.Tau1 + idRate/(prm.Tau1*prm.CI)
	dydt[o+iIp] = -(y[o+iIp] - y[o+iIsc]) / prm.Tau2
	dydt[o+iIeff] = -prm.P2*y[o+iIeff] + prm.P2*prm.SI*y[o+iIp]
	dydt[o+iG] = -(prm.GEZI+y[o+iIeff])*y[o+iG] + prm.EGP + ra
	if ex != 0 {
		dydt[o+iG] -= ex * y[o+iG]
	}
	dydt[o+iQ1] = -y[o+iQ1]/prm.TauMeal + 1000*carbGPerMin
	dydt[o+iQ2] = (y[o+iQ1] - y[o+iQ2]) / prm.TauMeal
	dydt[o+iGs] = (y[o+iG] - y[o+iGs]) / prm.SensorLag
}

// Step implements sim.Patient using RK4 with 1-minute substeps.
func (p *Patient) Step(insulinUPerH, carbGPerMin, dtMin float64) {
	if dtMin <= 0 {
		return
	}
	if insulinUPerH < 0 {
		insulinUPerH = 0
	}
	if carbGPerMin < 0 {
		carbGPerMin = 0
	}
	p.insulinUPerH = insulinUPerH
	p.carbGPerMin = carbGPerMin
	p.rk4.Integrate(p.derivs, 0, p.y, dtMin, 1.0)
	clampStates(p.y)
}

// clampStates applies the post-integration guards shared by the scalar
// and batched steppers: non-negative physiological states, and glucose
// held above a survivable floor so downstream math (risk logarithms)
// stays defined even under absurd fault magnitudes.
func clampStates(y []float64) {
	sim.ClampNonNegative(y)
	const bgFloor = 10
	if y[iG] < bgFloor {
		y[iG] = bgFloor
	}
	if y[iGs] < bgFloor {
		y[iGs] = bgFloor
	}
}

// Cohort builds all ten patients.
func Cohort() ([]*Patient, error) {
	out := make([]*Patient, 0, NumPatients)
	for i := 0; i < NumPatients; i++ {
		p, err := New(i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
