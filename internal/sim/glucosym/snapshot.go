// Snapshot/restore of Glucosym patient state. The physiological state
// is the seven-compartment y-vector; step inputs (insulin, carbs) are
// written fresh on every Step before integration and the RK4 workspace
// is pure scratch, so neither is serialized. A batched lane's bytes are
// identical to a standalone Patient's because the lane's Patient view
// aliases its window of the flat state matrix.

package glucosym

import "repro/internal/snapshot"

var (
	_ snapshot.Snapshotter     = (*Patient)(nil)
	_ snapshot.LaneSnapshotter = (*Batch)(nil)
)

// SnapshotState implements snapshot.Snapshotter: the compartment count
// followed by the state vector.
func (p *Patient) SnapshotState(enc *snapshot.Encoder) {
	enc.Int(len(p.y))
	for _, v := range p.y {
		enc.Float64(v)
	}
}

// RestoreState implements snapshot.Snapshotter. The patient keeps its
// identity and parameters; only the physiological state is replaced.
func (p *Patient) RestoreState(dec *snapshot.Decoder) error {
	n := dec.Count(8)
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(p.y) {
		dec.Fail("glucosym state-vector length mismatch")
		return dec.Err()
	}
	var y [nStates]float64
	for i := range y {
		y[i] = dec.Float64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	copy(p.y, y[:])
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter.
func (b *Batch) SnapshotLane(lane int, enc *snapshot.Encoder) {
	b.pts[lane].SnapshotState(enc)
}

// RestoreLane implements snapshot.LaneSnapshotter. The lane must have
// been configured (ConfigureLane) with the session's patient first.
func (b *Batch) RestoreLane(lane int, dec *snapshot.Decoder) error {
	return b.pts[lane].RestoreState(dec)
}
