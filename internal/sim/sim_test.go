package sim

import (
	"math"
	"testing"
)

func TestRK4Exponential(t *testing.T) {
	// dy/dt = -y, y(0)=1 -> y(t) = e^{-t}
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	y := []float64{1}
	rk := NewRK4(1)
	rk.Integrate(f, 0, y, 5, 0.1)
	want := math.Exp(-5)
	if math.Abs(y[0]-want) > 1e-6 {
		t.Errorf("y(5) = %v, want %v", y[0], want)
	}
}

func TestRK4Harmonic(t *testing.T) {
	// y'' = -y as a system; energy must be conserved to high order.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	y := []float64{1, 0}
	rk := NewRK4(2)
	rk.Integrate(f, 0, y, 2*math.Pi, 0.05)
	if math.Abs(y[0]-1) > 1e-5 || math.Abs(y[1]) > 1e-5 {
		t.Errorf("after one period: y = %v, want [1 0]", y)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving the step should reduce the error by ~16x.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -2 * y[0] }
	errAt := func(h float64) float64 {
		y := []float64{1}
		NewRK4(1).Integrate(f, 0, y, 1, h)
		return math.Abs(y[0] - math.Exp(-2))
	}
	e1 := errAt(0.1)
	e2 := errAt(0.05)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("error ratio %v, want ~16 (4th order)", ratio)
	}
}

func TestIntegrateZeroAndNegativeDuration(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y := []float64{7}
	rk := NewRK4(1)
	rk.Integrate(f, 0, y, 0, 1)
	rk.Integrate(f, 0, y, -3, 1)
	if y[0] != 7 {
		t.Errorf("state changed on zero/negative duration: %v", y[0])
	}
}

func TestIntegrateTimeArgument(t *testing.T) {
	// dy/dt = t integrated 0..2 gives 2.
	f := func(tt float64, _, dydt []float64) { dydt[0] = tt }
	y := []float64{0}
	NewRK4(1).Integrate(f, 0, y, 2, 0.1)
	if math.Abs(y[0]-2) > 1e-9 {
		t.Errorf("integral of t over [0,2] = %v, want 2", y[0])
	}
}

func TestClampNonNegative(t *testing.T) {
	y := []float64{1, -0.5, 0, -1e-9}
	ClampNonNegative(y)
	for i, v := range y {
		if v < 0 {
			t.Errorf("y[%d] = %v still negative", i, v)
		}
	}
	if y[0] != 1 {
		t.Errorf("positive value modified: %v", y[0])
	}
}
