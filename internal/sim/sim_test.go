package sim

import (
	"math"
	"testing"
)

func TestRK4Exponential(t *testing.T) {
	// dy/dt = -y, y(0)=1 -> y(t) = e^{-t}
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	y := []float64{1}
	rk := NewRK4(1)
	rk.Integrate(f, 0, y, 5, 0.1)
	want := math.Exp(-5)
	if math.Abs(y[0]-want) > 1e-6 {
		t.Errorf("y(5) = %v, want %v", y[0], want)
	}
}

func TestRK4Harmonic(t *testing.T) {
	// y'' = -y as a system; energy must be conserved to high order.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	y := []float64{1, 0}
	rk := NewRK4(2)
	rk.Integrate(f, 0, y, 2*math.Pi, 0.05)
	if math.Abs(y[0]-1) > 1e-5 || math.Abs(y[1]) > 1e-5 {
		t.Errorf("after one period: y = %v, want [1 0]", y)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving the step should reduce the error by ~16x.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -2 * y[0] }
	errAt := func(h float64) float64 {
		y := []float64{1}
		NewRK4(1).Integrate(f, 0, y, 1, h)
		return math.Abs(y[0] - math.Exp(-2))
	}
	e1 := errAt(0.1)
	e2 := errAt(0.05)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("error ratio %v, want ~16 (4th order)", ratio)
	}
}

func TestIntegrateZeroAndNegativeDuration(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y := []float64{7}
	rk := NewRK4(1)
	rk.Integrate(f, 0, y, 0, 1)
	rk.Integrate(f, 0, y, -3, 1)
	if y[0] != 7 {
		t.Errorf("state changed on zero/negative duration: %v", y[0])
	}
}

func TestIntegrateTimeArgument(t *testing.T) {
	// dy/dt = t integrated 0..2 gives 2.
	f := func(tt float64, _, dydt []float64) { dydt[0] = tt }
	y := []float64{0}
	NewRK4(1).Integrate(f, 0, y, 2, 0.1)
	if math.Abs(y[0]-2) > 1e-9 {
		t.Errorf("integral of t over [0,2] = %v, want 2", y[0])
	}
}

func TestClampNonNegative(t *testing.T) {
	y := []float64{1, -0.5, 0, -1e-9}
	ClampNonNegative(y)
	for i, v := range y {
		if v < 0 {
			t.Errorf("y[%d] = %v still negative", i, v)
		}
	}
	if y[0] != 1 {
		t.Errorf("positive value modified: %v", y[0])
	}
}

// TestIntegrateSubstepCeiling is the regression test for the historical
// rounding bug: Integrate computed its substep count by rounding
// total/maxH to nearest, so e.g. total=5, maxH=3.4 integrated as a
// single h=5 substep — violating the documented "substeps of at most
// maxH". The count must round up.
func TestIntegrateSubstepCeiling(t *testing.T) {
	cases := []struct {
		total, maxH float64
		want        int
	}{
		{5, 1, 5},      // the default cycle/substep shape: exact division,
		{5, 5, 1},      // so golden traces did not shift with the fix
		{5, 2.5, 2},    // exact division at a half-ratio
		{5, 3.4, 2},    // the bug: nearest-rounding gave 1 (h=5 > 3.4)
		{5, 4.9, 2},    // ratio just above 1 must still split
		{5, 2.49, 3},   // just under a half-ratio boundary
		{7, 3.5, 2},    // exact division
		{7.01, 3.5, 3}, // just above it
		{0.1, 1, 1},    // short totals take a single shrunken substep
	}
	for _, c := range cases {
		if got := substeps(c.total, c.maxH); got != c.want {
			t.Errorf("substeps(%v, %v) = %d, want %d", c.total, c.maxH, got, c.want)
		}
	}

	// Every substep Integrate actually takes must respect maxH: count the
	// derivative evaluations (4 per RK4 step) over a sweep of ratios.
	for _, c := range cases {
		evals := 0
		f := func(_ float64, _, dydt []float64) { evals++; dydt[0] = 1 }
		y := []float64{0}
		NewRK4(1).Integrate(f, 0, y, c.total, c.maxH)
		if steps := evals / 4; steps != c.want {
			t.Errorf("Integrate(total=%v, maxH=%v) took %d substeps, want %d", c.total, c.maxH, steps, c.want)
		}
		if h := c.total / float64(c.want); h > c.maxH+1e-12 {
			t.Errorf("Integrate(total=%v, maxH=%v): substep %v exceeds maxH", c.total, c.maxH, c.total/float64(c.want))
		}
		// dy/dt = 1 integrates exactly regardless of the schedule.
		if math.Abs(y[0]-c.total) > 1e-12 {
			t.Errorf("Integrate(total=%v, maxH=%v) advanced y by %v", c.total, c.maxH, y[0])
		}
	}
}
