package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/glucosym"
	"repro/internal/sim/uvapadova"
)

// scalarPatient is the per-session surface the differential compares
// against; both cohort models expose plasma insulin beyond sim.Patient.
type scalarPatient interface {
	sim.Patient
	PlasmaInsulin() float64
}

// plasmaBatch is the matching per-lane surface of the batch backends.
type plasmaBatch interface {
	sim.BatchPatient
	PlasmaInsulin(lane int) float64
}

// backends enumerates both cohort models for the differential tests.
var backends = []struct {
	name   string
	cohort int
	scalar func(idx int) (scalarPatient, error)
	batch  func(lanes int) (plasmaBatch, error)
}{
	{
		name: "glucosym", cohort: glucosym.NumPatients,
		scalar: func(idx int) (scalarPatient, error) { return glucosym.New(idx) },
		batch:  func(lanes int) (plasmaBatch, error) { return glucosym.NewBatch(lanes) },
	},
	{
		name: "uvapadova", cohort: uvapadova.NumPatients,
		scalar: func(idx int) (scalarPatient, error) { return uvapadova.New(idx) },
		batch:  func(lanes int) (plasmaBatch, error) { return uvapadova.NewBatch(lanes) },
	},
}

// TestBatchMatchesScalarDifferential drives a bank of lanes and a
// matching set of standalone patients through randomized insulin/carb
// schedules — including negative-input clamping, subset-lane rounds
// through LaneView, mid-run resets, and lane re-parameterization — and
// requires every lane's BG, CGM, and plasma insulin to stay bit-exactly
// equal to its scalar twin at every step.
func TestBatchMatchesScalarDifferential(t *testing.T) {
	const (
		lanes = 6
		steps = 150
		dtMin = 5.0
	)
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			b, err := be.batch(lanes)
			if err != nil {
				t.Fatal(err)
			}
			if b.NumLanes() != lanes {
				t.Fatalf("NumLanes = %d, want %d", b.NumLanes(), lanes)
			}
			scalars := make([]scalarPatient, lanes)
			configure := func(lane, idx int) {
				if err := b.ConfigureLane(lane, idx); err != nil {
					t.Fatal(err)
				}
				if scalars[lane], err = be.scalar(idx); err != nil {
					t.Fatal(err)
				}
			}
			for l := 0; l < lanes; l++ {
				configure(l, (l*3)%be.cohort)
				if b.ID(l) != scalars[l].ID() {
					t.Fatalf("lane %d ID %q != scalar %q", l, b.ID(l), scalars[l].ID())
				}
				if b.Basal(l) != scalars[l].Basal() {
					t.Fatalf("lane %d basal %v != scalar %v", l, b.Basal(l), scalars[l].Basal())
				}
			}

			rng := rand.New(rand.NewSource(99))
			allLanes := make([]int, lanes)
			ins := make([]float64, lanes)
			carb := make([]float64, lanes)
			for l := range allLanes {
				allLanes[l] = l
			}
			for step := 0; step < steps; step++ {
				for l := 0; l < lanes; l++ {
					// Occasionally negative to exercise the input clamps.
					ins[l] = rng.Float64()*6 - 0.5
					carb[l] = 0
					if step%30 == 10 {
						carb[l] = rng.Float64() * 2
					}
				}
				if step%10 == 7 {
					// Subset round: lane 1 steps through its LaneView (the
					// scalar interface adapter), the rest as one batch.
					sub := make([]int, 0, lanes-1)
					for _, l := range allLanes {
						if l != 1 {
							sub = append(sub, l)
						}
					}
					subIns := make([]float64, len(sub))
					subCarb := make([]float64, len(sub))
					for i, l := range sub {
						subIns[i], subCarb[i] = ins[l], carb[l]
					}
					sim.LaneView{B: b, Lane: 1}.Step(ins[1], carb[1], dtMin)
					b.StepLanes(sub, subIns, subCarb, dtMin)
				} else {
					b.StepLanes(allLanes, ins, carb, dtMin)
				}
				for l := 0; l < lanes; l++ {
					scalars[l].Step(ins[l], carb[l], dtMin)
				}

				for l := 0; l < lanes; l++ {
					if got, want := b.BG(l), scalars[l].BG(); got != want {
						t.Fatalf("step %d lane %d: BG %v != scalar %v", step, l, got, want)
					}
					if got, want := b.CGM(l), scalars[l].CGM(); got != want {
						t.Fatalf("step %d lane %d: CGM %v != scalar %v", step, l, got, want)
					}
					if got, want := b.PlasmaInsulin(l), scalars[l].PlasmaInsulin(); got != want {
						t.Fatalf("step %d lane %d: plasma insulin %v != scalar %v", step, l, got, want)
					}
				}

				switch step {
				case 60:
					// Mid-run session churn: lane 2 restarts at a new BG,
					// lane 4 is handed to a different cohort patient.
					b.Reset(2, 180)
					scalars[2].Reset(180)
					configure(4, (4*3+1)%be.cohort)
				case 100:
					b.Reset(0, 60)
					scalars[0].Reset(60)
				}
			}
		})
	}
}

// TestBatchLaneIndependence pins lane isolation: stepping one lane must
// leave every other lane's state untouched.
func TestBatchLaneIndependence(t *testing.T) {
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			b, err := be.batch(4)
			if err != nil {
				t.Fatal(err)
			}
			for l := 0; l < 4; l++ {
				if err := b.ConfigureLane(l, l%be.cohort); err != nil {
					t.Fatal(err)
				}
			}
			before := make([]float64, 4)
			for l := range before {
				before[l] = b.BG(l)
			}
			b.StepLane(2, 8, 1.5, 5)
			for l := 0; l < 4; l++ {
				if l == 2 {
					if b.BG(l) == before[l] {
						t.Errorf("lane 2 did not move under a large bolus+meal step")
					}
					continue
				}
				if b.BG(l) != before[l] {
					t.Errorf("lane %d moved (%v -> %v) when only lane 2 stepped", l, before[l], b.BG(l))
				}
			}
		})
	}
}
