// Shard-batched struct-of-arrays patient stepping: the whole live
// window of a fleet worker advances its ODE state through one batched
// RK4 call per control cycle instead of one interface call per session.
// The batched integrator runs the exact scalar arithmetic per lane —
// same substep count, same stage expressions, same derivative code —
// so a lane of a BatchPatient is bit-identical to a standalone Patient
// fed the same inputs (the differential tests in the backend packages
// and internal/fleet pin this).

package sim

// BatchDerivs computes dy/dt for every listed lane. y and dydt are
// lane-major flat matrices of n states per lane: lane l occupies
// [l*n, (l+1)*n). Implementations must evaluate each lane with exactly
// the scalar model's arithmetic so batched stepping stays bit-identical
// per lane.
type BatchDerivs func(t float64, lanes []int, y, dydt []float64)

// BatchRK4 advances a lane-major flat state matrix by classical
// Runge-Kutta steps, evaluating all active lanes stage by stage: one
// derivative sweep per stage across the whole batch, then one combine
// sweep. The per-lane combine expressions are copied verbatim from the
// scalar RK4, so each lane's floating-point trajectory is identical to
// stepping it alone.
type BatchRK4 struct {
	n                   int // states per lane
	k1, k2, k3, k4, tmp []float64
}

// NewBatchRK4 returns a batched integrator for lanes independent
// n-dimensional states.
func NewBatchRK4(lanes, n int) *BatchRK4 {
	size := lanes * n
	return &BatchRK4{
		n:   n,
		k1:  make([]float64, size),
		k2:  make([]float64, size),
		k3:  make([]float64, size),
		k4:  make([]float64, size),
		tmp: make([]float64, size),
	}
}

// Step advances every listed lane of y by one RK4 step of size h.
func (r *BatchRK4) Step(f BatchDerivs, t float64, lanes []int, y []float64, h float64) {
	n := r.n
	// A fleet shard's live window is almost always a contiguous ascending
	// lane range; its combine sweeps then run as single flat loops over
	// [lo, hi) instead of per-lane windows. The arithmetic is elementwise
	// and order-independent across elements, so both shapes produce the
	// same bits per lane.
	lo, hi, dense := denseRange(lanes, n)
	f(t, lanes, y, r.k1)
	if dense {
		combineFlat(r.tmp[lo:hi], y[lo:hi], r.k1[lo:hi], 0.5*h)
	} else {
		for _, l := range lanes {
			o := l * n
			combineFlat(r.tmp[o:o+n], y[o:o+n], r.k1[o:o+n], 0.5*h)
		}
	}
	f(t+0.5*h, lanes, r.tmp, r.k2)
	if dense {
		combineFlat(r.tmp[lo:hi], y[lo:hi], r.k2[lo:hi], 0.5*h)
	} else {
		for _, l := range lanes {
			o := l * n
			combineFlat(r.tmp[o:o+n], y[o:o+n], r.k2[o:o+n], 0.5*h)
		}
	}
	f(t+0.5*h, lanes, r.tmp, r.k3)
	if dense {
		combineFlat(r.tmp[lo:hi], y[lo:hi], r.k3[lo:hi], h)
	} else {
		for _, l := range lanes {
			o := l * n
			combineFlat(r.tmp[o:o+n], y[o:o+n], r.k3[o:o+n], h)
		}
	}
	f(t+h, lanes, r.tmp, r.k4)
	if dense {
		finalFlat(y[lo:hi], r.k1[lo:hi], r.k2[lo:hi], r.k3[lo:hi], r.k4[lo:hi], h)
	} else {
		for _, l := range lanes {
			o := l * n
			finalFlat(y[o:o+n], r.k1[o:o+n], r.k2[o:o+n], r.k3[o:o+n], r.k4[o:o+n], h)
		}
	}
}

// denseRange reports whether lanes is a contiguous ascending run and, if
// so, the flat element range [lo, hi) it covers.
func denseRange(lanes []int, n int) (lo, hi int, dense bool) {
	if len(lanes) == 0 {
		return 0, 0, false
	}
	for i := 1; i < len(lanes); i++ {
		if lanes[i] != lanes[i-1]+1 {
			return 0, 0, false
		}
	}
	return lanes[0] * n, (lanes[len(lanes)-1] + 1) * n, true
}

// combineFlat writes tmp = y + hf*k elementwise — the RK4 stage-combine
// expression, identical to the scalar integrator's.
func combineFlat(tmp, y, k []float64, hf float64) {
	_ = y[len(tmp)-1]
	_ = k[len(tmp)-1]
	for i := range tmp {
		tmp[i] = y[i] + hf*k[i]
	}
}

// finalFlat applies the RK4 update y += h/6*(k1 + 2*k2 + 2*k3 + k4)
// elementwise, identical to the scalar integrator's combine.
func finalFlat(y, k1, k2, k3, k4 []float64, h float64) {
	_ = k1[len(y)-1]
	_ = k2[len(y)-1]
	_ = k3[len(y)-1]
	_ = k4[len(y)-1]
	for i := range y {
		y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// Integrate advances every listed lane from t over total minutes using
// fixed substeps of at most maxH minutes — the same (ceiling) substep
// schedule as the scalar RK4.Integrate.
func (r *BatchRK4) Integrate(f BatchDerivs, t float64, lanes []int, y []float64, total, maxH float64) {
	if total <= 0 {
		return
	}
	steps := substeps(total, maxH)
	h := total / float64(steps)
	for i := 0; i < steps; i++ {
		r.Step(f, t+float64(i)*h, lanes, y, h)
	}
}

// BatchPatient is a bank of independent virtual patients stepped as one
// struct-of-arrays batch — the fleet engine's per-shard physiology
// engine. Lanes are re-parameterized per session via ConfigureLane and
// reset independently; every read/step accessor addresses one lane.
// Implemented by glucosym.Batch and uvapadova.Batch.
type BatchPatient interface {
	// NumLanes returns the bank's capacity.
	NumLanes() int
	// ConfigureLane re-parameterizes a lane as cohort patient idx and
	// resets it to the model's target glucose, exactly like constructing
	// a fresh scalar patient.
	ConfigureLane(lane, patientIdx int) error
	// ID returns the lane's patient identifier.
	ID(lane int) string
	// Basal returns the lane's steady-state basal insulin rate in U/h.
	Basal(lane int) float64
	// BG returns the lane's true plasma glucose in mg/dL.
	BG(lane int) float64
	// CGM returns the lane's sensed glucose in mg/dL (may lag BG).
	CGM(lane int) float64
	// Reset reinitializes the lane at the given starting glucose with
	// insulin compartments at their basal steady state.
	Reset(lane int, initialBG float64)
	// StepLane advances one lane exactly like the scalar Patient.Step.
	StepLane(lane int, insulinUPerH, carbGPerMin, dtMin float64)
	// StepLanes advances every listed lane by dtMin minutes in one
	// batched integration; insulinUPerH[i] (U/h) and carbGPerMin[i]
	// (g/min) feed lanes[i]. A nil carbGPerMin means no carbohydrate
	// intake on any lane (the closed-loop cycle shape).
	StepLanes(lanes []int, insulinUPerH, carbGPerMin []float64, dtMin float64)
}

// ExerciseHost is implemented by patient models that accept an exercise
// disturbance: an added fractional glucose clearance (1/min) applied on
// top of the model's insulin-dependent utilization. The rate is a
// per-cycle input like insulin and carbs — the caller re-asserts it
// before every Step, and a rate of 0 restores the undisturbed model
// exactly (the hook multiplies by the rate, so a zero rate contributes
// the literal arithmetic of the unmodified equations).
type ExerciseHost interface {
	// SetExercise sets the added glucose clearance (1/min) for
	// subsequent steps.
	SetExercise(perMin float64)
}

// BatchExerciseHost is the batched form of ExerciseHost: the exercise
// rate is set per lane.
type BatchExerciseHost interface {
	// SetLaneExercise sets the lane's added glucose clearance (1/min)
	// for subsequent steps.
	SetLaneExercise(lane int, perMin float64)
}

// LaneView adapts one lane of a BatchPatient to the scalar Patient
// interface, so a closed-loop stepper can read (and, outside the
// batched hot path, step) its session's physiology without knowing the
// state lives in a shard-wide bank.
type LaneView struct {
	// B is the underlying batch; Lane the lane this view addresses.
	B    BatchPatient
	Lane int
}

var _ Patient = LaneView{}

// ID implements Patient for the viewed lane.
func (v LaneView) ID() string { return v.B.ID(v.Lane) }

// Basal implements Patient for the viewed lane.
func (v LaneView) Basal() float64 { return v.B.Basal(v.Lane) }

// BG implements Patient for the viewed lane.
func (v LaneView) BG() float64 { return v.B.BG(v.Lane) }

// CGM implements Patient for the viewed lane.
func (v LaneView) CGM() float64 { return v.B.CGM(v.Lane) }

// Reset implements Patient for the viewed lane.
func (v LaneView) Reset(initialBG float64) { v.B.Reset(v.Lane, initialBG) }

// Step implements Patient for the viewed lane (scalar fallback; the
// batched engine advances lanes through StepLanes instead).
func (v LaneView) Step(insulinUPerH, carbGPerMin, dtMin float64) {
	v.B.StepLane(v.Lane, insulinUPerH, carbGPerMin, dtMin)
}

// SetExercise implements ExerciseHost for the viewed lane when the
// underlying batch supports exercise; otherwise it is a no-op (the
// stepper checks ExerciseHost support against the plan before running).
func (v LaneView) SetExercise(perMin float64) {
	if h, ok := v.B.(BatchExerciseHost); ok {
		h.SetLaneExercise(v.Lane, perMin)
	}
}
