// Package sim defines the virtual-patient abstraction shared by the two
// glucose simulators (Glucosym-style Medtronic Virtual Patient model and
// UVA-Padova S2013-style model) and the numerical integration helpers.
//
// A Patient is a continuous-time ODE model advanced in small internal
// steps inside each 5-minute control cycle. Insulin is commanded as a
// rate in U/h; glucose is reported in mg/dL both as the true plasma value
// and as the (possibly delayed) sensor value a CGM would show.
//
//fleetvet:deterministic
package sim

import "math"

// Patient is a virtual Type 1 diabetes patient model.
type Patient interface {
	// ID returns the stable patient identifier (e.g. "glucosym-3").
	ID() string
	// Step advances the model by dtMin minutes under a constant insulin
	// infusion rate (U/h) and carbohydrate ingestion rate (g/min).
	Step(insulinUPerH, carbGPerMin, dtMin float64)
	// BG returns the current true plasma glucose in mg/dL.
	BG() float64
	// CGM returns the current sensed glucose in mg/dL (may lag BG).
	CGM() float64
	// Basal returns the patient's steady-state basal insulin rate in U/h.
	Basal() float64
	// Reset reinitializes the model at the given starting glucose with
	// insulin compartments at their basal steady state.
	Reset(initialBG float64)
}

// Derivs computes dy/dt into dydt for state y at time t (minutes).
type Derivs func(t float64, y, dydt []float64)

// RK4 advances state y in place by one classical Runge-Kutta step of size
// h (minutes). Scratch buffers are allocated by the caller through the
// returned stepper to keep the integrator allocation-free in inner loops.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// NewRK4 returns an integrator for an n-dimensional state.
func NewRK4(n int) *RK4 {
	return &RK4{
		k1:  make([]float64, n),
		k2:  make([]float64, n),
		k3:  make([]float64, n),
		k4:  make([]float64, n),
		tmp: make([]float64, n),
	}
}

// Step advances y by h using derivative function f.
func (r *RK4) Step(f Derivs, t float64, y []float64, h float64) {
	n := len(y)
	f(t, y, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k1[i]
	}
	f(t+0.5*h, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k2[i]
	}
	f(t+0.5*h, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + h*r.k3[i]
	}
	f(t+h, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		y[i] += h / 6 * (r.k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
}

// Integrate advances y from t over total minutes using fixed substeps of
// at most maxH minutes.
func (r *RK4) Integrate(f Derivs, t float64, y []float64, total, maxH float64) {
	if total <= 0 {
		return
	}
	steps := substeps(total, maxH)
	h := total / float64(steps)
	for i := 0; i < steps; i++ {
		r.Step(f, t+float64(i)*h, y, h)
	}
}

// substeps returns the number of equal substeps needed to cover total
// minutes without any substep exceeding maxH. The count must round UP:
// rounding to nearest (the historical bug) made e.g. total=5, maxH=3.4
// integrate as a single h=5 substep, violating the "at most maxH"
// contract and silently coarsening the integration.
func substeps(total, maxH float64) int {
	steps := int(math.Ceil(total / maxH))
	if steps < 1 {
		steps = 1
	}
	return steps
}

// ClampNonNegative floors every state variable at zero. Physiological
// quantities (masses, concentrations) cannot go negative; under extreme
// injected faults the stiff ODEs can otherwise overshoot.
func ClampNonNegative(y []float64) {
	for i, v := range y {
		if v < 0 {
			y[i] = 0
		}
	}
}
