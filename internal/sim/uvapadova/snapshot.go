// Snapshot/restore of UVA/Padova patient state. As with the Glucosym
// backend, the thirteen-compartment y-vector is the whole evolving
// state: step inputs are rewritten every Step, and the RK4 workspace is
// scratch. Batched lanes alias the flat state matrix, so lane bytes
// equal standalone-patient bytes.

package uvapadova

import "repro/internal/snapshot"

var (
	_ snapshot.Snapshotter     = (*Patient)(nil)
	_ snapshot.LaneSnapshotter = (*Batch)(nil)
)

// SnapshotState implements snapshot.Snapshotter: the compartment count
// followed by the state vector.
func (p *Patient) SnapshotState(enc *snapshot.Encoder) {
	enc.Int(len(p.y))
	for _, v := range p.y {
		enc.Float64(v)
	}
}

// RestoreState implements snapshot.Snapshotter. The patient keeps its
// identity and parameters; only the physiological state is replaced.
func (p *Patient) RestoreState(dec *snapshot.Decoder) error {
	n := dec.Count(8)
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(p.y) {
		dec.Fail("uvapadova state-vector length mismatch")
		return dec.Err()
	}
	var y [nStates]float64
	for i := range y {
		y[i] = dec.Float64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	copy(p.y, y[:])
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter.
func (b *Batch) SnapshotLane(lane int, enc *snapshot.Encoder) {
	b.pts[lane].SnapshotState(enc)
}

// RestoreLane implements snapshot.LaneSnapshotter. The lane must have
// been configured (ConfigureLane) with the session's patient first.
func (b *Batch) RestoreLane(lane int, dec *snapshot.Decoder) error {
	return b.pts[lane].RestoreState(dec)
}
