// Package uvapadova implements a UVA-Padova T1DS2013-style virtual
// patient: the Dalla Man meal-simulation ODE system (glucose and insulin
// subsystems, endogenous glucose production with delayed insulin signal,
// insulin-dependent utilization, renal excretion, gastro-intestinal meal
// absorption, subcutaneous insulin transport, and interstitial sensor
// delay).
//
// The FDA-accepted simulator and its 30 in-silico subjects are
// proprietary, so the ten profiles here are synthetic adult parameter
// sets spread around the published Dalla Man averages (see DESIGN.md).
// What matters for the reproduction is that this platform has different
// dynamics from the Glucosym/MVP platform — a slower subcutaneous route
// and nonlinear utilization — which is what differentiates the monitors'
// relative performance across the paper's two test beds.
//
//fleetvet:deterministic
package uvapadova

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Params holds the per-patient Dalla Man model constants. All rate
// constants are per minute; masses are per kg of body weight.
type Params struct {
	BW float64 // body weight, kg

	// Glucose kinetics
	VG float64 // glucose distribution volume, dL/kg
	K1 float64 // Gp -> Gt transfer
	K2 float64 // Gt -> Gp transfer

	// Endogenous glucose production
	Kp1 float64 // extrapolated EGP at zero glucose and insulin, mg/kg/min
	Kp2 float64 // liver glucose effectiveness
	Kp3 float64 // amplitude of delayed insulin action on the liver
	Ki  float64 // delayed insulin signal rate

	// Utilization
	Fsnc float64 // insulin-independent (CNS) utilization, mg/kg/min
	Vm0  float64 // basal insulin-dependent utilization Vmax, mg/kg/min
	Vmx  float64 // insulin sensitivity of utilization
	Km0  float64 // Michaelis constant, mg/kg
	P2U  float64 // insulin action dynamics

	// Insulin kinetics
	VI float64 // insulin distribution volume, L/kg
	M1 float64
	M2 float64
	M3 float64
	M4 float64

	// Renal excretion
	Ke1 float64 // glomerular filtration rate
	Ke2 float64 // renal threshold, mg/kg

	// Subcutaneous insulin transport
	Kd  float64 // Isc1 -> Isc2
	Ka1 float64 // Isc1 -> plasma
	Ka2 float64 // Isc2 -> plasma

	// Gastro-intestinal tract
	Kgri float64 // grinding
	Kemp float64 // gastric emptying (constant simplification)
	Kabs float64 // intestinal absorption
	Fab  float64 // carb bioavailability

	// Sensor
	Ts float64 // interstitial glucose delay, min
}

// base is the published adult-average parameter set the synthetic cohort
// is spread around.
var base = Params{
	BW: 70,
	VG: 1.88, K1: 0.065, K2: 0.079,
	Kp1: 3.50, Kp2: 0.0021, Kp3: 0.009, Ki: 0.0079,
	Fsnc: 1.0, Vm0: 2.50, Vmx: 0.047, Km0: 225.59, P2U: 0.0331,
	VI: 0.05, M1: 0.190, M2: 0.484, M3: 0.285, M4: 0.194,
	Ke1: 0.0005, Ke2: 339,
	Kd: 0.0164, Ka1: 0.0018, Ka2: 0.0182,
	Kgri: 0.0558, Kemp: 0.028, Kabs: 0.057, Fab: 0.90,
	Ts: 10,
}

// TargetBG is the glucose (mg/dL) the derived basal rate holds steady.
const TargetBG = 120

// NumPatients is the synthetic cohort size.
const NumPatients = 10

// scale multiplies base fields to produce cohort diversity.
type scale struct {
	kp1, vmx, vm0, kd, bw, p2u, ki float64
}

var cohortScales = []scale{
	{1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00},
	{1.08, 0.70, 0.92, 0.85, 1.20, 0.90, 1.10},
	{0.94, 1.40, 1.10, 1.20, 0.80, 1.15, 0.95},
	{1.05, 0.55, 0.95, 0.95, 1.10, 0.85, 1.05},
	{0.97, 1.20, 1.05, 1.10, 0.90, 1.10, 0.90},
	{1.10, 0.85, 0.90, 0.80, 1.30, 0.95, 1.15},
	{0.92, 1.55, 1.12, 1.25, 0.75, 1.20, 0.85},
	{1.03, 0.95, 1.00, 1.05, 1.05, 1.00, 1.00},
	{0.96, 1.10, 1.08, 0.90, 0.95, 1.05, 1.08},
	{1.06, 0.65, 0.94, 1.15, 1.15, 0.88, 0.92},
}

// PatientIDs returns "uvapadova-0".."uvapadova-9".
func PatientIDs() []string {
	ids := make([]string, NumPatients)
	for i := range ids {
		ids[i] = fmt.Sprintf("uvapadova-%d", i)
	}
	return ids
}

// State vector layout.
const (
	iGp   = iota // plasma glucose mass, mg/kg
	iGt          // tissue glucose mass, mg/kg
	iIl          // liver insulin, pmol/kg
	iIp          // plasma insulin, pmol/kg
	iX           // insulin action on utilization, pmol/L (can be negative)
	iI1          // delayed insulin signal stage 1, pmol/L
	iId          // delayed insulin signal stage 2, pmol/L
	iIsc1        // subcutaneous insulin compartment 1, pmol/kg
	iIsc2        // subcutaneous insulin compartment 2, pmol/kg
	iQs1         // stomach solid, mg
	iQs2         // stomach liquid, mg
	iQgut        // gut, mg
	iGs          // sensor glucose, mg/dL
	nStates
)

// Patient is a Dalla Man-model virtual patient implementing sim.Patient.
type Patient struct {
	id     string
	params Params

	basalUPerH float64
	ib         float64 // basal plasma insulin concentration, pmol/L

	y   []float64
	rk4 *sim.RK4

	insulinPmolKgMin float64
	carbMgPerMin     float64
	exercise         float64 // added glucose clearance, 1/min
}

var _ sim.Patient = (*Patient)(nil)
var _ sim.ExerciseHost = (*Patient)(nil)

// New builds cohort patient idx initialized at TargetBG.
func New(idx int) (*Patient, error) {
	if idx < 0 || idx >= NumPatients {
		return nil, fmt.Errorf("uvapadova: patient index %d out of range [0,%d)", idx, NumPatients)
	}
	s := cohortScales[idx]
	p := base
	p.Kp1 *= s.kp1
	p.Vmx *= s.vmx
	p.Vm0 *= s.vm0
	p.Kd *= s.kd
	p.BW *= s.bw
	p.P2U *= s.p2u
	p.Ki *= s.ki
	return NewWithParams(fmt.Sprintf("uvapadova-%d", idx), p)
}

// NewWithParams builds a patient from explicit parameters, deriving the
// basal insulin rate that holds TargetBG at steady state.
func NewWithParams(id string, p Params) (*Patient, error) {
	if p.VG <= 0 || p.VI <= 0 || p.BW <= 0 || p.Kp3 <= 0 {
		return nil, fmt.Errorf("uvapadova: non-positive core parameter in %+v", p)
	}
	pt := &Patient{
		id:     id,
		params: p,
		y:      make([]float64, nStates),
		rk4:    sim.NewRK4(nStates),
	}
	gpb := TargetBG * p.VG
	gtb, err := tissueSteadyState(&p, gpb, 0)
	if err != nil {
		return nil, err
	}
	uidb := p.Vm0 * gtb / (p.Km0 + gtb)
	egpb := p.Fsnc + uidb + renal(&p, gpb)
	ib := (p.Kp1 - p.Kp2*gpb - egpb) / p.Kp3 // pmol/L
	if ib <= 0 {
		return nil, fmt.Errorf("uvapadova: parameters give non-positive basal insulin %v", ib)
	}
	ipb := ib * p.VI                   // pmol/kg
	ilb := p.M2 * ipb / (p.M1 + p.M3)  // pmol/kg
	raib := (p.M2+p.M4)*ipb - p.M1*ilb // pmol/kg/min
	if raib <= 0 {
		return nil, fmt.Errorf("uvapadova: parameters give non-positive basal delivery %v", raib)
	}
	pt.ib = ib
	pt.basalUPerH = raib * p.BW * 60 / 6000 // pmol/kg/min -> U/h (6000 pmol/U)
	pt.Reset(TargetBG)
	return pt, nil
}

// tissueSteadyState solves Vm(X)·Gt/(Km0+Gt) + K2·Gt = K1·Gp for Gt ≥ 0.
func tissueSteadyState(p *Params, gp, x float64) (float64, error) {
	vm := p.Vm0 + p.Vmx*x
	if vm < 0 {
		vm = 0
	}
	// K2·Gt² + (vm + K2·Km0 − K1·Gp)·Gt − K1·Gp·Km0 = 0
	a := p.K2
	b := vm + p.K2*p.Km0 - p.K1*gp
	c := -p.K1 * gp * p.Km0
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, fmt.Errorf("uvapadova: no real tissue steady state for Gp=%v", gp)
	}
	gt := (-b + math.Sqrt(disc)) / (2 * a)
	if gt < 0 {
		return 0, fmt.Errorf("uvapadova: negative tissue steady state %v", gt)
	}
	return gt, nil
}

func renal(p *Params, gp float64) float64 {
	if gp > p.Ke2 {
		return p.Ke1 * (gp - p.Ke2)
	}
	return 0
}

// ID implements sim.Patient.
func (p *Patient) ID() string { return p.id }

// Basal implements sim.Patient.
func (p *Patient) Basal() float64 { return p.basalUPerH }

// BG implements sim.Patient.
func (p *Patient) BG() float64 { return p.y[iGp] / p.params.VG }

// CGM implements sim.Patient.
func (p *Patient) CGM() float64 { return p.y[iGs] }

// PlasmaInsulin returns the plasma insulin concentration in pmol/L.
func (p *Patient) PlasmaInsulin() float64 { return p.y[iIp] / p.params.VI }

// Params returns a copy of the model parameters.
func (p *Patient) Params() Params { return p.params }

// Reset implements sim.Patient.
func (p *Patient) Reset(initialBG float64) {
	if initialBG <= 0 {
		initialBG = TargetBG
	}
	prm := &p.params
	for i := range p.y {
		p.y[i] = 0
	}
	gp := initialBG * prm.VG
	gt, err := tissueSteadyState(prm, gp, 0)
	if err != nil {
		// Constructor validated the parameter set at TargetBG; fall back
		// to the proportional estimate for extreme initial values.
		gt = gp * 0.76
	}
	ipb := p.ib * prm.VI
	ilb := prm.M2 * ipb / (prm.M1 + prm.M3)
	raib := (prm.M2+prm.M4)*ipb - prm.M1*ilb
	isc1 := raib / (prm.Kd + prm.Ka1)
	isc2 := prm.Kd * isc1 / prm.Ka2

	p.y[iGp] = gp
	p.y[iGt] = gt
	p.y[iIl] = ilb
	p.y[iIp] = ipb
	p.y[iX] = 0
	p.y[iI1] = p.ib
	p.y[iId] = p.ib
	p.y[iIsc1] = isc1
	p.y[iIsc2] = isc2
	p.y[iGs] = initialBG
}

// SetExercise implements sim.ExerciseHost: the rate adds to tissue
// glucose utilization until re-set.
func (p *Patient) SetExercise(perMin float64) { p.exercise = perMin }

func (p *Patient) derivs(_ float64, y, dydt []float64) {
	derivsAt(&p.params, p.ib, p.insulinPmolKgMin, p.carbMgPerMin, p.exercise, y, dydt, 0)
}

// derivsAt evaluates the Dalla Man right-hand side for the state window
// starting at offset o of y/dydt. Both the scalar and batched steppers
// compile through this one function, which is what makes a batch lane's
// floating-point trajectory bit-identical to a standalone patient's.
// The exercise term is guarded so an idle (zero) rate evaluates the
// literal undisturbed expression, keeping exercise-free runs bit-exact
// with the pre-hook model.
func derivsAt(prm *Params, ib, insulinPmolKgMin, carbMgPerMin, ex float64, y, dydt []float64, o int) {
	gp, gt := y[o+iGp], y[o+iGt]
	if gp < 0 {
		gp = 0
	}
	if gt < 0 {
		gt = 0
	}
	g := gp / prm.VG
	i := y[o+iIp] / prm.VI // plasma insulin concentration, pmol/L

	egp := prm.Kp1 - prm.Kp2*gp - prm.Kp3*y[o+iId]
	if egp < 0 {
		egp = 0
	}
	e := renal(prm, gp)
	vm := prm.Vm0 + prm.Vmx*y[o+iX]
	if vm < 0 {
		vm = 0
	}
	uid := vm * gt / (prm.Km0 + gt)
	ra := prm.Fab * prm.Kabs * y[o+iQgut] / prm.BW

	rai := prm.Ka1*y[o+iIsc1] + prm.Ka2*y[o+iIsc2]

	dydt[o+iGp] = egp + ra - prm.Fsnc - e - prm.K1*gp + prm.K2*gt
	dydt[o+iGt] = -uid + prm.K1*gp - prm.K2*gt
	if ex != 0 {
		dydt[o+iGt] -= ex * gt
	}
	dydt[o+iIl] = -(prm.M1+prm.M3)*y[o+iIl] + prm.M2*y[o+iIp]
	dydt[o+iIp] = -(prm.M2+prm.M4)*y[o+iIp] + prm.M1*y[o+iIl] + rai
	dydt[o+iX] = -prm.P2U*y[o+iX] + prm.P2U*(i-ib)
	dydt[o+iI1] = -prm.Ki * (y[o+iI1] - i)
	dydt[o+iId] = -prm.Ki * (y[o+iId] - y[o+iI1])
	dydt[o+iIsc1] = -(prm.Kd+prm.Ka1)*y[o+iIsc1] + insulinPmolKgMin
	dydt[o+iIsc2] = prm.Kd*y[o+iIsc1] - prm.Ka2*y[o+iIsc2]
	dydt[o+iQs1] = -prm.Kgri*y[o+iQs1] + carbMgPerMin
	dydt[o+iQs2] = prm.Kgri*y[o+iQs1] - prm.Kemp*y[o+iQs2]
	dydt[o+iQgut] = prm.Kemp*y[o+iQs2] - prm.Kabs*y[o+iQgut]
	dydt[o+iGs] = (g - y[o+iGs]) / prm.Ts
}

// Step implements sim.Patient using RK4 with 1-minute substeps.
func (p *Patient) Step(insulinUPerH, carbGPerMin, dtMin float64) {
	if dtMin <= 0 {
		return
	}
	if insulinUPerH < 0 {
		insulinUPerH = 0
	}
	if carbGPerMin < 0 {
		carbGPerMin = 0
	}
	p.insulinPmolKgMin = insulinUPerH * 6000 / 60 / p.params.BW
	p.carbMgPerMin = carbGPerMin * 1000
	p.rk4.Integrate(p.derivs, 0, p.y, dtMin, 1.0)
	clampStates(p.y, p.params.VG)
}

// clampStates applies the post-integration guards shared by the scalar
// and batched steppers. Physical masses clamp at zero; the
// insulin-action state X is a deviation variable and legitimately goes
// negative during insulin suspension, so it is exempt. Glucose is held
// above a survivable floor so downstream math stays defined.
func clampStates(y []float64, vg float64) {
	for idx := range y {
		if idx == iX {
			continue
		}
		if y[idx] < 0 {
			y[idx] = 0
		}
	}
	const bgFloorMass = 10 // mg/dL floor expressed on the mass state
	if y[iGp] < bgFloorMass*vg {
		y[iGp] = bgFloorMass * vg
	}
	if y[iGs] < bgFloorMass {
		y[iGs] = bgFloorMass
	}
}

// Cohort builds all ten patients.
func Cohort() ([]*Patient, error) {
	out := make([]*Patient, 0, NumPatients)
	for i := 0; i < NumPatients; i++ {
		p, err := New(i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
