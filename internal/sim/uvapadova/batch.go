// Shard-batched struct-of-arrays backend for the Dalla Man model: one
// flat [lanes x nStates] state matrix, one sim.BatchRK4 integration per
// step, per-lane derivatives evaluated by the same compiled
// Patient.derivs as the scalar path and the clamp arithmetic shared, so
// a lane is bit-identical to a standalone *Patient fed the same inputs
// (TestBatchMatchesScalarDifferential).

package uvapadova

import (
	"fmt"

	"repro/internal/sim"
)

// Batch is a struct-of-arrays bank of Dalla Man virtual patients
// implementing sim.BatchPatient. Lanes share one flat state matrix and
// one batched integrator; each lane carries its own cohort parameters
// and steps independently of the others.
type Batch struct {
	y   []float64 // [lanes*nStates], lane-major
	pts []Patient // per-lane params/inputs; y aliases the flat matrix
	rk4 *sim.BatchRK4

	// single-lane scratch so StepLane stays allocation-free
	oneLane [1]int
	oneIns  [1]float64
	oneCarb [1]float64
}

var _ sim.BatchPatient = (*Batch)(nil)
var _ sim.BatchExerciseHost = (*Batch)(nil)

// NewBatch builds a bank of lanes Dalla Man patients, every lane
// initially configured as cohort patient 0 at TargetBG; callers
// re-parameterize lanes with ConfigureLane.
func NewBatch(lanes int) (*Batch, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("uvapadova: batch needs at least one lane, got %d", lanes)
	}
	b := &Batch{
		y:   make([]float64, lanes*nStates),
		pts: make([]Patient, lanes),
		rk4: sim.NewBatchRK4(lanes, nStates),
	}
	for l := range b.pts {
		b.pts[l].y = b.laneY(l)
		if err := b.ConfigureLane(l, 0); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// laneY returns lane l's state window of the flat matrix.
func (b *Batch) laneY(l int) []float64 {
	o := l * nStates
	return b.y[o : o+nStates : o+nStates]
}

// NumLanes implements sim.BatchPatient.
func (b *Batch) NumLanes() int { return len(b.pts) }

// ConfigureLane implements sim.BatchPatient: the lane takes cohort
// patient idx's parameters (derived exactly like New, including the
// basal steady-state solve) and resets to TargetBG.
func (b *Batch) ConfigureLane(lane, patientIdx int) error {
	p, err := New(patientIdx)
	if err != nil {
		return err
	}
	lp := &b.pts[lane]
	keep := lp.y // alias into the flat matrix, preserved across configs
	*lp = *p
	lp.y = keep
	lp.rk4 = nil // lanes integrate through the shared BatchRK4
	lp.Reset(TargetBG)
	return nil
}

// ID implements sim.BatchPatient.
func (b *Batch) ID(lane int) string { return b.pts[lane].id }

// Basal implements sim.BatchPatient.
func (b *Batch) Basal(lane int) float64 { return b.pts[lane].basalUPerH }

// BG implements sim.BatchPatient.
func (b *Batch) BG(lane int) float64 { return b.pts[lane].y[iGp] / b.pts[lane].params.VG }

// CGM implements sim.BatchPatient.
func (b *Batch) CGM(lane int) float64 { return b.pts[lane].y[iGs] }

// PlasmaInsulin returns the lane's plasma insulin concentration
// (pmol/L), exposed for the differential tests.
func (b *Batch) PlasmaInsulin(lane int) float64 { return b.pts[lane].y[iIp] / b.pts[lane].params.VI }

// Reset implements sim.BatchPatient.
func (b *Batch) Reset(lane int, initialBG float64) { b.pts[lane].Reset(initialBG) }

// SetLaneExercise implements sim.BatchExerciseHost: the lane's added
// glucose clearance (1/min) for subsequent steps.
func (b *Batch) SetLaneExercise(lane int, perMin float64) { b.pts[lane].exercise = perMin }

// StepLane implements sim.BatchPatient by running the lane through the
// batched integrator alone — the same code path as StepLanes, so the
// two are trivially identical.
func (b *Batch) StepLane(lane int, insulinUPerH, carbGPerMin, dtMin float64) {
	b.oneLane[0] = lane
	b.oneIns[0] = insulinUPerH
	b.oneCarb[0] = carbGPerMin
	b.StepLanes(b.oneLane[:], b.oneIns[:], b.oneCarb[:], dtMin)
}

// StepLanes implements sim.BatchPatient: one batched RK4 integration
// (1-minute substeps, like the scalar Step) advances every listed lane.
func (b *Batch) StepLanes(lanes []int, insulinUPerH, carbGPerMin []float64, dtMin float64) {
	if dtMin <= 0 {
		return
	}
	for i, l := range lanes {
		ins := insulinUPerH[i]
		if ins < 0 {
			ins = 0
		}
		carb := 0.0
		if carbGPerMin != nil {
			carb = carbGPerMin[i]
			if carb < 0 {
				carb = 0
			}
		}
		p := &b.pts[l]
		p.insulinPmolKgMin = ins * 6000 / 60 / p.params.BW
		p.carbMgPerMin = carb * 1000
	}
	b.rk4.Integrate(b.derivs, 0, lanes, b.y, dtMin, 1.0)
	for _, l := range lanes {
		clampStates(b.laneY(l), b.pts[l].params.VG)
	}
}

// derivs evaluates the Dalla Man right-hand side for every listed lane
// by delegating to derivsAt on the lane's window of the flat matrix —
// literally the same compiled arithmetic as the per-session path.
func (b *Batch) derivs(_ float64, lanes []int, y, dydt []float64) {
	for _, l := range lanes {
		p := &b.pts[l]
		derivsAt(&p.params, p.ib, p.insulinPmolKgMin, p.carbMgPerMin, p.exercise, y, dydt, l*nStates)
	}
}
