package uvapadova

import (
	"math"
	"testing"
)

func TestCohortConstruction(t *testing.T) {
	patients, err := Cohort()
	if err != nil {
		t.Fatalf("Cohort: %v", err)
	}
	if len(patients) != NumPatients {
		t.Fatalf("cohort size %d, want %d", len(patients), NumPatients)
	}
	seen := make(map[string]bool, len(patients))
	for _, p := range patients {
		if seen[p.ID()] {
			t.Errorf("duplicate ID %s", p.ID())
		}
		seen[p.ID()] = true
		if p.Basal() <= 0 || p.Basal() > 10 {
			t.Errorf("%s: implausible basal %v U/h", p.ID(), p.Basal())
		}
		if math.Abs(p.BG()-TargetBG) > 1e-9 {
			t.Errorf("%s: initial BG %v", p.ID(), p.BG())
		}
		if p.PlasmaInsulin() <= 0 {
			t.Errorf("%s: non-positive basal plasma insulin", p.ID())
		}
	}
}

func TestNewOutOfRange(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("New(-1) should fail")
	}
	if _, err := New(NumPatients); err == nil {
		t.Error("New(NumPatients) should fail")
	}
}

func TestNewWithParamsValidation(t *testing.T) {
	bad := base
	bad.VG = 0
	if _, err := NewWithParams("x", bad); err == nil {
		t.Error("zero VG should fail")
	}
	bad = base
	bad.Kp1 = 1.0 // too little EGP for positive basal insulin
	if _, err := NewWithParams("x", bad); err == nil {
		t.Error("tiny Kp1 should fail")
	}
}

func TestBasalHoldsSteadyState(t *testing.T) {
	for idx := 0; idx < NumPatients; idx++ {
		p, err := New(idx)
		if err != nil {
			t.Fatalf("New(%d): %v", idx, err)
		}
		for i := 0; i < 144; i++ {
			p.Step(p.Basal(), 0, 5)
		}
		if math.Abs(p.BG()-TargetBG) > 3 {
			t.Errorf("%s: BG drifted to %v under basal", p.ID(), p.BG())
		}
	}
}

func TestInsulinSuspensionRaisesBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ { // 4 hours, slower SC route than MVP
		p.Step(0, 0, 5)
	}
	if p.BG() <= TargetBG+25 {
		t.Errorf("BG after 4h suspension = %v, want a clear rise", p.BG())
	}
}

func TestInsulinOverdoseLowersBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		p.Step(5*p.Basal(), 0, 5)
	}
	if p.BG() >= TargetBG-25 {
		t.Errorf("BG after 4h of 5x basal = %v, want a clear fall", p.BG())
	}
}

func TestMealRaisesBG(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.Step(p.Basal(), 4, 5) // 60 g over 15 min
	}
	for i := 0; i < 18; i++ {
		p.Step(p.Basal(), 0, 5)
	}
	if p.BG() <= TargetBG+15 {
		t.Errorf("BG 1.5h after 60g meal = %v, want a clear rise", p.BG())
	}
}

func TestRenalExcretionLimitsExtremeHyper(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Reset(200)
	// Suspend insulin for 12 h; renal excretion plus EGP clamp should
	// keep glucose finite.
	for i := 0; i < 144; i++ {
		p.Step(0, 0, 5)
	}
	if math.IsNaN(p.BG()) || p.BG() > 900 {
		t.Errorf("BG = %v, want bounded hyperglycemia", p.BG())
	}
	if p.BG() < 250 {
		t.Errorf("BG = %v, want sustained hyperglycemia under suspension", p.BG())
	}
}

func TestResetRestoresState(t *testing.T) {
	p, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p.Step(0, 1, 5)
	}
	p.Reset(90)
	if math.Abs(p.BG()-90) > 1e-9 || p.CGM() != 90 {
		t.Errorf("after Reset(90): BG=%v CGM=%v", p.BG(), p.CGM())
	}
	p.Reset(-5)
	if math.Abs(p.BG()-TargetBG) > 1e-9 {
		t.Errorf("Reset(-5) gave BG %v, want %v", p.BG(), TargetBG)
	}
}

func TestCGMLagsBG(t *testing.T) {
	p, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p.Step(0, 3, 5)
	}
	if p.CGM() >= p.BG() {
		t.Errorf("CGM %v should lag rising BG %v", p.CGM(), p.BG())
	}
}

func TestBGFloorUnderExtremeOverdose(t *testing.T) {
	p, err := New(6) // highest Vmx scale: most insulin sensitive
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		p.Step(50, 0, 5)
	}
	if p.BG() < 10-1e-9 || math.IsNaN(p.BG()) {
		t.Errorf("BG = %v, want floor at 10", p.BG())
	}
}

func TestPatientDiversity(t *testing.T) {
	patients, err := Cohort()
	if err != nil {
		t.Fatal(err)
	}
	var drops []float64
	for _, p := range patients {
		for i := 0; i < 36; i++ {
			p.Step(3*p.Basal(), 0, 5)
		}
		drops = append(drops, TargetBG-p.BG())
	}
	minD, maxD := drops[0], drops[0]
	for _, d := range drops {
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
	}
	if maxD-minD < 10 {
		t.Errorf("cohort 3x-basal drop spread %v..%v too uniform", minD, maxD)
	}
}

func TestPatientIDs(t *testing.T) {
	ids := PatientIDs()
	if len(ids) != NumPatients || ids[0] != "uvapadova-0" {
		t.Errorf("unexpected ids %v", ids)
	}
}

func TestBasalDiffersAcrossCohort(t *testing.T) {
	patients, err := Cohort()
	if err != nil {
		t.Fatal(err)
	}
	basals := make(map[float64]bool)
	for _, p := range patients {
		basals[math.Round(p.Basal()*1000)] = true
	}
	if len(basals) < 5 {
		t.Errorf("only %d distinct basal rates across cohort", len(basals))
	}
}
