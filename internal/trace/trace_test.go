package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassifyAction(t *testing.T) {
	tests := []struct {
		name  string
		rate  float64
		basal float64
		want  Action
	}{
		{"zero rate is stop", 0, 1.2, ActionStop},
		{"tiny rate is stop", 1e-12, 1.2, ActionStop},
		{"rate at basal keeps", 1.2, 1.2, ActionKeep},
		{"rate within 2pct band keeps", 1.21, 1.2, ActionKeep},
		{"sub-basal rate decreases", 0.8, 1.2, ActionDecrease},
		{"above-basal rate increases", 2.0, 1.2, ActionIncrease},
		{"above zero basal increases", 0.5, 0, ActionIncrease},
		{"stop at zero basal", 0, 0, ActionStop},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyAction(tt.rate, tt.basal); got != tt.want {
				t.Errorf("ClassifyAction(%v, %v) = %v, want %v", tt.rate, tt.basal, got, tt.want)
			}
		})
	}
}

func TestActionStrings(t *testing.T) {
	tests := []struct {
		a     Action
		str   string
		short string
	}{
		{ActionDecrease, "decrease_insulin", "u1"},
		{ActionIncrease, "increase_insulin", "u2"},
		{ActionStop, "stop_insulin", "u3"},
		{ActionKeep, "keep_insulin", "u4"},
		{ActionUnknown, "unknown", "u?"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.str {
			t.Errorf("%d.String() = %q, want %q", tt.a, got, tt.str)
		}
		if got := tt.a.Short(); got != tt.short {
			t.Errorf("%d.Short() = %q, want %q", tt.a, got, tt.short)
		}
	}
}

func TestHazardTypeString(t *testing.T) {
	if HazardH1.String() != "H1" || HazardH2.String() != "H2" || HazardNone.String() != "none" {
		t.Errorf("unexpected hazard strings: %v %v %v", HazardH1, HazardH2, HazardNone)
	}
}

func TestFaultInfoActive(t *testing.T) {
	f := FaultInfo{Name: "max:glucose", StartStep: 10, Duration: 5}
	tests := []struct {
		step int
		want bool
	}{
		{9, false}, {10, true}, {14, true}, {15, false}, {0, false},
	}
	for _, tt := range tests {
		if got := f.Active(tt.step); got != tt.want {
			t.Errorf("Active(%d) = %v, want %v", tt.step, got, tt.want)
		}
	}
	var zero FaultInfo
	if zero.Active(0) {
		t.Error("zero FaultInfo should never be active")
	}
}

func sampleTrace() *Trace {
	tr := &Trace{
		PatientID: "patientA",
		Platform:  "glucosym/openaps",
		InitialBG: 120,
		CycleMin:  5,
		Basal:     1.3,
		Fault: FaultInfo{
			Name: "max:glucose", Kind: "max", Target: "glucose",
			StartStep: 2, Duration: 3, Value: 400,
		},
	}
	for i := 0; i < 10; i++ {
		s := Sample{
			Step: i, TimeMin: float64(i) * 5, BG: 120 + float64(i),
			CGM: 119 + float64(i), IOB: 1.5, Rate: 1.0, Delivered: 1.0,
			Action: ActionKeep,
		}
		if i >= 6 {
			s.Hazard = HazardH2
		}
		if i >= 5 {
			s.Alarm = true
			s.AlarmHazard = HazardH2
		}
		s.FaultActive = tr.Fault.Active(i)
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace()
	if !tr.Faulty() {
		t.Error("trace should be faulty")
	}
	if !tr.Hazardous() {
		t.Error("trace should be hazardous")
	}
	if got := tr.FirstHazardStep(); got != 6 {
		t.Errorf("FirstHazardStep = %d, want 6", got)
	}
	if got := tr.FirstAlarmStep(); got != 5 {
		t.Errorf("FirstAlarmStep = %d, want 5", got)
	}
	if got := tr.DominantHazard(); got != HazardH2 {
		t.Errorf("DominantHazard = %v, want H2", got)
	}
	tth, ok := tr.TimeToHazardMin()
	if !ok {
		t.Fatal("TimeToHazardMin should report a hazard")
	}
	// Hazard at step 6, fault at step 2, 5-minute cycles -> 20 min.
	if tth != 20 {
		t.Errorf("TTH = %v, want 20", tth)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTraceHazardFree(t *testing.T) {
	tr := &Trace{CycleMin: 5}
	for i := 0; i < 3; i++ {
		tr.Samples = append(tr.Samples, Sample{Step: i, BG: 120})
	}
	if tr.Hazardous() {
		t.Error("trace should be hazard-free")
	}
	if got := tr.FirstHazardStep(); got != -1 {
		t.Errorf("FirstHazardStep = %d, want -1", got)
	}
	if got := tr.FirstAlarmStep(); got != -1 {
		t.Errorf("FirstAlarmStep = %d, want -1", got)
	}
	if _, ok := tr.TimeToHazardMin(); ok {
		t.Error("TimeToHazardMin should report no hazard")
	}
	if got := tr.DominantHazard(); got != HazardNone {
		t.Errorf("DominantHazard = %v, want none", got)
	}
}

func TestNegativeTTH(t *testing.T) {
	tr := &Trace{
		CycleMin: 5,
		Fault:    FaultInfo{Name: "hold:iob", StartStep: 8, Duration: 2},
	}
	for i := 0; i < 10; i++ {
		s := Sample{Step: i, BG: 60}
		if i >= 3 {
			s.Hazard = HazardH1
		}
		tr.Samples = append(tr.Samples, s)
	}
	tth, ok := tr.TimeToHazardMin()
	if !ok {
		t.Fatal("expected hazard")
	}
	if tth != -25 {
		t.Errorf("TTH = %v, want -25 (hazard before fault)", tth)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"bad cycle", func(tr *Trace) { tr.CycleMin = 0 }},
		{"step mismatch", func(tr *Trace) { tr.Samples[3].Step = 7 }},
		{"nan bg", func(tr *Trace) { tr.Samples[2].BG = math.NaN() }},
		{"negative bg", func(tr *Trace) { tr.Samples[2].BG = -5 }},
		{"negative rate", func(tr *Trace) { tr.Samples[1].Rate = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := sampleTrace()
			tt.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Error("Validate should have failed")
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.PatientID != tr.PatientID || got.Platform != tr.Platform {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if got.Basal != tr.Basal {
		t.Errorf("basal = %v, want %v", got.Basal, tr.Basal)
	}
	if got.Fault != tr.Fault {
		t.Errorf("fault mismatch: got %+v want %+v", got.Fault, tr.Fault)
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("sample count %d, want %d", len(got.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Errorf("sample %d mismatch:\n got %+v\nwant %+v", i, got.Samples[i], tr.Samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	const goodMeta = "#meta,a,b,120,5,,,,0,0,0,1.3\n"
	const goodHeader = "step,time_min,bg,cgm,iob,bg_prime,iob_prime," +
		"rate,delivered,action,fault_active,hazard,alarm,alarm_hazard,mitigated\n"
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad meta tag", "nope,a,b,1,5,,,,0,0,0\n"},
		{"short meta", "#meta,a,b\n"},
		{"overlong meta", "#meta,a,b,120,5,,,,0,0,0,1.3,extra\n"},
		{"bad float", "#meta,a,b,xx,5,,,,0,0,0\n"},
		{"bad basal", "#meta,a,b,120,5,,,,0,0,0,xx\n"},
		{"foreign header", goodMeta +
			"time,glucose,insulin,carbs,bolus,basal,temp,iob,cob,tag,a,b,c,d,e\n"},
		{"reordered header", goodMeta +
			"time_min,step,bg,cgm,iob,bg_prime,iob_prime,rate,delivered,action,fault_active,hazard,alarm,alarm_hazard,mitigated\n"},
		{"short header", goodMeta + "step,time_min,bg\n"},
		{"bad record", goodMeta + goodHeader + "0,0,xx,120,1,0,0,1,1,4,false,0,false,0,false\n"},
		{"short record", goodMeta + goodHeader + "0,0,120\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadCSV should have failed")
			}
		})
	}
}

// TestReadCSVBackwardCompatMeta: traces written before the basal was
// persisted carry an 11-field meta record; they must still parse, with
// Basal reported as zero.
func TestReadCSVBackwardCompatMeta(t *testing.T) {
	in := "#meta,patientA,glucosym/openaps,120,5,max:glucose,max,glucose,2,3,400\n" +
		"step,time_min,bg,cgm,iob,bg_prime,iob_prime,rate,delivered,action,fault_active,hazard,alarm,alarm_hazard,mitigated\n" +
		"0,0,120,119,1.5,0,0,1,1,4,false,0,false,0,false\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV on v1 meta: %v", err)
	}
	if tr.PatientID != "patientA" || tr.CycleMin != 5 || tr.Fault.Value != 400 {
		t.Errorf("v1 metadata misparsed: %+v", tr)
	}
	if tr.Basal != 0 {
		t.Errorf("v1 meta has no basal; got %v", tr.Basal)
	}
	if len(tr.Samples) != 1 {
		t.Fatalf("%d samples, want 1", len(tr.Samples))
	}
}

// Property: action classification is total — every non-negative
// rate/basal pair maps to exactly one of the four actions consistent
// with the rate's relation to the basal schedule.
func TestClassifyActionProperty(t *testing.T) {
	f := func(rate, basal uint16) bool {
		r := float64(rate) / 100
		b := float64(basal) / 100
		a := ClassifyAction(r, b)
		tol := math.Max(0.02*b, 1e-6)
		switch a {
		case ActionStop:
			return r <= 1e-6
		case ActionKeep:
			return math.Abs(r-b) <= tol && r > 1e-6
		case ActionDecrease:
			return r < b && r > 1e-6
		case ActionIncrease:
			return r > b
		default:
			return false
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CSV round-trip preserves arbitrary samples.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(bg, cgm, iob uint16, action uint8, alarm bool) bool {
		tr := &Trace{PatientID: "p", Platform: "x", CycleMin: 5, InitialBG: 120}
		tr.Samples = []Sample{{
			Step: 0, BG: float64(bg), CGM: float64(cgm),
			IOB: float64(iob) / 100, Action: Action(action % 5),
			Alarm: alarm,
		}}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return len(got.Samples) == 1 && got.Samples[0] == tr.Samples[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReRecordFixtureWithBasal is the re-record path for traces
// serialized with the old 11-field meta (ROADMAP "Re-record bundled
// traces"): parse the legacy fixture, backfill the scheduled basal it
// was recorded under, and re-serialize — the new recording must carry
// the 12-field meta and round-trip Basal exactly, so basal-sensitive
// monitors replay it with the step-0 PrevRate the live loop used.
func TestReRecordFixtureWithBasal(t *testing.T) {
	legacy := "#meta,patientA,glucosym/openaps,120,5,max:glucose,max,glucose,2,3,400\n" +
		"step,time_min,bg,cgm,iob,bg_prime,iob_prime,rate,delivered,action,fault_active,hazard,alarm,alarm_hazard,mitigated\n" +
		"0,0,120,119,1.5,0,0,1,1,4,false,0,false,0,false\n"
	tr, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Basal != 0 {
		t.Fatalf("legacy fixture should read Basal == 0, got %v", tr.Basal)
	}

	// Re-record: backfill the basal the original loop ran at.
	tr.Basal = 1.3
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	meta := strings.SplitN(buf.String(), "\n", 2)[0]
	if got := len(strings.Split(meta, ",")); got != 12 {
		t.Fatalf("re-recorded meta has %d fields, want 12: %q", got, meta)
	}

	rec, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Basal != 1.3 {
		t.Fatalf("re-recorded basal %v, want 1.3", rec.Basal)
	}
	if rec.PatientID != tr.PatientID || rec.Fault.Value != 400 || len(rec.Samples) != 1 {
		t.Fatalf("re-record lost metadata: %+v", rec)
	}
}
