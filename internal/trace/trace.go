// Package trace defines the shared data model for closed-loop APS
// simulation traces: per-cycle samples, discrete control actions, hazard
// labels, and trace-level fault annotations.
//
// Every other package in this repository (simulators, controllers, fault
// injection, monitors, metrics) communicates through these types, so the
// package is deliberately dependency-free.
//
//fleetvet:deterministic
package trace

import (
	"fmt"
	"math"
)

// Action is the discrete control-action vocabulary of the paper
// (Section III-A1 and Table I): u1..u4.
type Action int

// Control actions u1..u4 from Table I of the paper.
const (
	// ActionUnknown marks a sample before the first classified command.
	ActionUnknown Action = iota
	// ActionDecrease (u1) decreases the insulin rate relative to the
	// previous command.
	ActionDecrease
	// ActionIncrease (u2) increases the insulin rate.
	ActionIncrease
	// ActionStop (u3) sets the insulin rate to zero.
	ActionStop
	// ActionKeep (u4) keeps the insulin rate unchanged.
	ActionKeep
)

// String returns the paper's name for the action (u1..u4).
func (a Action) String() string {
	switch a {
	case ActionDecrease:
		return "decrease_insulin"
	case ActionIncrease:
		return "increase_insulin"
	case ActionStop:
		return "stop_insulin"
	case ActionKeep:
		return "keep_insulin"
	default:
		return "unknown"
	}
}

// Short returns the compact u1..u4 notation used in Table I.
func (a Action) Short() string {
	switch a {
	case ActionDecrease:
		return "u1"
	case ActionIncrease:
		return "u2"
	case ActionStop:
		return "u3"
	case ActionKeep:
		return "u4"
	default:
		return "u?"
	}
}

// ClassifyAction maps a commanded insulin rate to the discrete action
// vocabulary by comparing it against the patient's scheduled basal rate:
// zero is stop_insulin (u3), a sub-basal temp rate decreases insulin
// (u1), an above-basal rate increases it (u2), and a rate at basal keeps
// it (u4). Classifying against the schedule rather than the previous
// command makes the action a stable description of the controller's
// intent — a small dose adjustment during recovery is not an
// "insulin decrease" in the hazard-analysis sense. Rates are in U/h;
// the tolerance absorbs rounding in the controller arithmetic.
func ClassifyAction(rate, basal float64) Action {
	const eps = 1e-6
	relTol := 0.02 * basal // 2% band counts as "keep"
	if relTol < eps {
		relTol = eps
	}
	switch {
	case rate <= eps:
		return ActionStop
	case math.Abs(rate-basal) <= relTol:
		return ActionKeep
	case rate < basal:
		return ActionDecrease
	default:
		return ActionIncrease
	}
}

// HazardType identifies the safety hazard of Section IV-B.
type HazardType int

// Hazard types from the paper's hazard analysis.
const (
	// HazardNone marks a safe sample.
	HazardNone HazardType = iota
	// HazardH1 is "too much insulin infused" leading toward hypoglycemia
	// (accident A1).
	HazardH1
	// HazardH2 is "too little insulin infused" leading toward
	// hyperglycemia (accident A2).
	HazardH2
)

// String implements fmt.Stringer.
func (h HazardType) String() string {
	switch h {
	case HazardH1:
		return "H1"
	case HazardH2:
		return "H2"
	default:
		return "none"
	}
}

// Sample is one control-cycle record of a closed-loop simulation.
// BG is the simulator's true plasma glucose; CGM is the sensor value the
// controller and monitor observe. Derivatives are per-minute finite
// differences of the observed signals.
type Sample struct {
	Step      int     // control-cycle index, 0-based
	TimeMin   float64 // minutes since simulation start
	BG        float64 // true blood glucose, mg/dL
	CGM       float64 // sensed glucose, mg/dL
	IOB       float64 // insulin on board estimate, U
	BGPrime   float64 // dBG/dt from CGM differences, mg/dL/min
	IOBPrime  float64 // dIOB/dt, U/min
	Rate      float64 // insulin rate commanded by the controller, U/h
	Delivered float64 // insulin rate actually delivered after mitigation, U/h
	Action    Action  // classification of Rate vs the previous command

	FaultActive bool       // true while the injected fault is live
	Hazard      HazardType // ground-truth hazard label (risk-index based)
	Alarm       bool       // monitor alarm at this step
	AlarmHazard HazardType // hazard type predicted by the monitor
	Mitigated   bool       // true if mitigation replaced the command
}

// FaultInfo annotates a trace with the fault-injection scenario that
// produced it. A zero FaultInfo means a fault-free run.
type FaultInfo struct {
	Name      string // e.g. "max:glucose"
	Kind      string // fault kind, e.g. "max"
	Target    string // perturbed controller variable, e.g. "glucose"
	StartStep int    // first control cycle the fault is active
	Duration  int    // number of control cycles the fault stays active
	Value     float64
}

// Active reports whether the fault is live at the given control step.
func (f FaultInfo) Active(step int) bool {
	if f.Name == "" || f.Duration <= 0 {
		return false
	}
	return step >= f.StartStep && step < f.StartStep+f.Duration
}

// Trace is a full closed-loop simulation run.
type Trace struct {
	PatientID string
	Platform  string // e.g. "glucosym/openaps"
	InitialBG float64
	CycleMin  float64 // control-cycle length in minutes
	// Basal is the patient's scheduled basal rate, U/h. Monitors observe
	// it live (Observation.Basal and the step-0 PrevRate seed), so it
	// must persist with the trace for offline replay to feed monitors
	// exactly what the closed loop fed them online. Traces recorded
	// before this field round-trip with Basal == 0.
	Basal   float64
	Fault   FaultInfo
	Samples []Sample
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Faulty reports whether this trace had a fault injected.
func (t *Trace) Faulty() bool { return t.Fault.Name != "" }

// Hazardous reports whether any sample carries a hazard label.
func (t *Trace) Hazardous() bool {
	for i := range t.Samples {
		if t.Samples[i].Hazard != HazardNone {
			return true
		}
	}
	return false
}

// FirstHazardStep returns the step index of the first hazardous sample,
// or -1 if the trace is hazard-free.
func (t *Trace) FirstHazardStep() int {
	for i := range t.Samples {
		if t.Samples[i].Hazard != HazardNone {
			return t.Samples[i].Step
		}
	}
	return -1
}

// FirstAlarmStep returns the step of the first monitor alarm, or -1.
func (t *Trace) FirstAlarmStep() int {
	for i := range t.Samples {
		if t.Samples[i].Alarm {
			return t.Samples[i].Step
		}
	}
	return -1
}

// DominantHazard returns the hazard type with the most labeled samples,
// breaking ties toward H1 (the more acute hazard).
func (t *Trace) DominantHazard() HazardType {
	var h1, h2 int
	for i := range t.Samples {
		switch t.Samples[i].Hazard {
		case HazardH1:
			h1++
		case HazardH2:
			h2++
		}
	}
	switch {
	case h1 == 0 && h2 == 0:
		return HazardNone
	case h1 >= h2:
		return HazardH1
	default:
		return HazardH2
	}
}

// BGSeries returns the true-BG series of the trace.
func (t *Trace) BGSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i := range t.Samples {
		out[i] = t.Samples[i].BG
	}
	return out
}

// CGMSeries returns the sensed-glucose series of the trace.
func (t *Trace) CGMSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i := range t.Samples {
		out[i] = t.Samples[i].CGM
	}
	return out
}

// TimeToHazardMin implements the TTH metric of Section V-D: minutes from
// fault activation to the first hazardous sample. The boolean result is
// false when the trace is hazard-free. Fault-free hazardous traces return
// the time from simulation start (tf = 0). A negative TTH means the hazard
// predates the fault (Section V-E1 observes 7.1% of such runs).
func (t *Trace) TimeToHazardMin() (float64, bool) {
	h := t.FirstHazardStep()
	if h < 0 {
		return 0, false
	}
	tf := 0
	if t.Faulty() {
		tf = t.Fault.StartStep
	}
	return float64(h-tf) * t.CycleMin, true
}

// Validate performs structural sanity checks and returns a descriptive
// error for the first violation found.
func (t *Trace) Validate() error {
	if t.CycleMin <= 0 {
		return fmt.Errorf("trace %s/%s: non-positive cycle length %v", t.Platform, t.PatientID, t.CycleMin)
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		if s.Step != i {
			return fmt.Errorf("trace %s/%s: sample %d has step %d", t.Platform, t.PatientID, i, s.Step)
		}
		if math.IsNaN(s.BG) || math.IsInf(s.BG, 0) {
			return fmt.Errorf("trace %s/%s: sample %d has invalid BG %v", t.Platform, t.PatientID, i, s.BG)
		}
		if s.BG < 0 {
			return fmt.Errorf("trace %s/%s: sample %d has negative BG %v", t.Platform, t.PatientID, i, s.BG)
		}
		if s.Rate < 0 || s.Delivered < 0 {
			return fmt.Errorf("trace %s/%s: sample %d has negative insulin rate", t.Platform, t.PatientID, i)
		}
	}
	return nil
}
