package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{
	"step", "time_min", "bg", "cgm", "iob", "bg_prime", "iob_prime",
	"rate", "delivered", "action", "fault_active", "hazard", "alarm",
	"alarm_hazard", "mitigated",
}

// Meta record lengths: the original layout had 11 fields; the scheduled
// basal rate was appended as field 12 (older traces read back with
// Basal == 0).
const (
	metaFieldsV1 = 11
	metaFieldsV2 = 12
)

// WriteCSV serializes the trace samples as CSV with a header row.
// Trace-level metadata (patient, platform, basal, fault) is written as a
// leading comment-style record so a trace round-trips through ReadCSV.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{
		"#meta", t.PatientID, t.Platform,
		formatFloat(t.InitialBG), formatFloat(t.CycleMin),
		t.Fault.Name, t.Fault.Kind, t.Fault.Target,
		strconv.Itoa(t.Fault.StartStep), strconv.Itoa(t.Fault.Duration),
		formatFloat(t.Fault.Value),
		formatFloat(t.Basal),
	}
	if err := cw.Write(meta); err != nil {
		return fmt.Errorf("write meta: %w", err)
	}
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		rec := []string{
			strconv.Itoa(s.Step),
			formatFloat(s.TimeMin),
			formatFloat(s.BG),
			formatFloat(s.CGM),
			formatFloat(s.IOB),
			formatFloat(s.BGPrime),
			formatFloat(s.IOBPrime),
			formatFloat(s.Rate),
			formatFloat(s.Delivered),
			strconv.Itoa(int(s.Action)),
			strconv.FormatBool(s.FaultActive),
			strconv.Itoa(int(s.Hazard)),
			strconv.FormatBool(s.Alarm),
			strconv.Itoa(int(s.AlarmHazard)),
			strconv.FormatBool(s.Mitigated),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write sample %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read meta: %w", err)
	}
	if (len(meta) != metaFieldsV1 && len(meta) != metaFieldsV2) || meta[0] != "#meta" {
		return nil, fmt.Errorf("malformed meta record (%d fields)", len(meta))
	}
	t := &Trace{PatientID: meta[1], Platform: meta[2]}
	if t.InitialBG, err = strconv.ParseFloat(meta[3], 64); err != nil {
		return nil, fmt.Errorf("parse initial bg: %w", err)
	}
	if t.CycleMin, err = strconv.ParseFloat(meta[4], 64); err != nil {
		return nil, fmt.Errorf("parse cycle min: %w", err)
	}
	t.Fault.Name, t.Fault.Kind, t.Fault.Target = meta[5], meta[6], meta[7]
	if t.Fault.StartStep, err = strconv.Atoi(meta[8]); err != nil {
		return nil, fmt.Errorf("parse fault start: %w", err)
	}
	if t.Fault.Duration, err = strconv.Atoi(meta[9]); err != nil {
		return nil, fmt.Errorf("parse fault duration: %w", err)
	}
	if t.Fault.Value, err = strconv.ParseFloat(meta[10], 64); err != nil {
		return nil, fmt.Errorf("parse fault value: %w", err)
	}
	if len(meta) >= metaFieldsV2 {
		if t.Basal, err = strconv.ParseFloat(meta[11], 64); err != nil {
			return nil, fmt.Errorf("parse basal: %w", err)
		}
	}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("header has %d columns, want %d", len(header), len(csvHeader))
	}
	// Validate column names, not just the count: a reordered or foreign
	// CSV would otherwise parse into silently wrong fields.
	for i, name := range header {
		if name != csvHeader[i] {
			return nil, fmt.Errorf("header column %d is %q, want %q", i, name, csvHeader[i])
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read record: %w", err)
		}
		s, err := parseSample(rec)
		if err != nil {
			return nil, err
		}
		t.Samples = append(t.Samples, s)
	}
	return t, nil
}

func parseSample(rec []string) (Sample, error) {
	var s Sample
	if len(rec) != len(csvHeader) {
		return s, fmt.Errorf("record has %d columns, want %d", len(rec), len(csvHeader))
	}
	var err error
	if s.Step, err = strconv.Atoi(rec[0]); err != nil {
		return s, fmt.Errorf("parse step: %w", err)
	}
	floats := []*float64{
		&s.TimeMin, &s.BG, &s.CGM, &s.IOB, &s.BGPrime, &s.IOBPrime,
		&s.Rate, &s.Delivered,
	}
	for i, dst := range floats {
		if *dst, err = strconv.ParseFloat(rec[i+1], 64); err != nil {
			return s, fmt.Errorf("parse %s: %w", csvHeader[i+1], err)
		}
	}
	action, err := strconv.Atoi(rec[9])
	if err != nil {
		return s, fmt.Errorf("parse action: %w", err)
	}
	s.Action = Action(action)
	if s.FaultActive, err = strconv.ParseBool(rec[10]); err != nil {
		return s, fmt.Errorf("parse fault_active: %w", err)
	}
	hazard, err := strconv.Atoi(rec[11])
	if err != nil {
		return s, fmt.Errorf("parse hazard: %w", err)
	}
	s.Hazard = HazardType(hazard)
	if s.Alarm, err = strconv.ParseBool(rec[12]); err != nil {
		return s, fmt.Errorf("parse alarm: %w", err)
	}
	ah, err := strconv.Atoi(rec[13])
	if err != nil {
		return s, fmt.Errorf("parse alarm_hazard: %w", err)
	}
	s.AlarmHazard = HazardType(ah)
	if s.Mitigated, err = strconv.ParseBool(rec[14]); err != nil {
		return s, fmt.Errorf("parse mitigated: %w", err)
	}
	return s, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
