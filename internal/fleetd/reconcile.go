package fleetd

import (
	"context"
	"time"

	"repro/internal/fleet"
)

// reconcilePeriod is the fallback poll interval: the loop also wakes
// immediately on registry changes, so the ticker only covers fleet-side
// transitions (gates applying a previous batch of operations).
const reconcilePeriod = 25 * time.Millisecond

// reconcileLoop converges the fleet toward the registry until ctx is
// cancelled. It is the only writer of admission operations, so the
// "skip while a batch is pending" guard below is race-free.
func (s *Server) reconcileLoop(ctx context.Context) {
	tick := time.NewTicker(reconcilePeriod)
	defer tick.Stop()
	for {
		s.reconcile()
		select {
		case <-ctx.Done():
			return
		case <-s.reg.change:
		case <-tick.C:
		}
	}
}

// reconcile performs one level-triggered pass: diff the declared tenant
// state against the fleet's live slot set and issue the admissions and
// evictions that close the gap. Tenants are visited in sorted ID order
// and live slots in slot order, so a fixed registry history yields a
// fixed operation sequence — the fleet's gate protocol then makes the
// resulting telemetry deterministic (see internal/fleet).
func (s *Server) reconcile() {
	if s.adm.PendingOps() != 0 {
		// A previous batch has not reached a gate yet; Live() does not
		// reflect it, so diffing now would double-issue. The ticker
		// retries once the gate applies.
		return
	}
	ids, specs := s.reg.list()
	live := s.adm.Live() // sorted by slot

	// Index the live slot set by tenant coordinate (inline programs are
	// identified by their canonical text, table sessions by index). A
	// pair can appear more than once transiently (never steady-state);
	// surplus copies are evicted below.
	type pair struct {
		group   string
		patient int
		scen    int
		program string
	}
	liveAt := make(map[pair][]int, len(live))
	for _, ls := range live {
		k := pair{ls.Group, ls.PatientIdx, ls.ScenIdx, ls.Program}
		liveAt[k] = append(liveAt[k], ls.Slot)
	}

	var admits []fleet.AdmitSpec
	var evicts []int
	claimed := make(map[pair]int, len(live))
	for _, id := range ids {
		for _, as := range specSessions(id, specs[id]) {
			prog := ""
			if as.Program != nil {
				prog = as.Program.Key()
			}
			k := pair{as.Group, as.PatientIdx, as.ScenIdx, prog}
			if slots := liveAt[k]; claimed[k] < len(slots) {
				claimed[k]++ // keep the lowest-slot copy of the pair
				continue
			}
			admits = append(admits, as)
		}
	}
	// Anything live beyond a claimed desired pair — deleted tenants,
	// shrunk specs, transient duplicates — is evicted. Iteration is in
	// slot order, so the retained copy of a duplicated pair is the
	// lowest slot, matching the claim order above.
	drop := make(map[pair]int, len(live))
	for _, ls := range live {
		k := pair{ls.Group, ls.PatientIdx, ls.ScenIdx, ls.Program}
		drop[k]++
		if drop[k] > claimed[k] {
			evicts = append(evicts, ls.Slot)
		}
	}

	if len(evicts) > 0 {
		s.adm.Evict(evicts...)
	}
	if len(admits) > 0 {
		s.adm.Admit(admits...)
	}
}
