// Package fleetd is the fleet control plane: it exposes a continuously
// running admission-controlled fleet (internal/fleet) as a multi-tenant
// HTTP service. Tenants declare desired state — a set of cohort
// patients crossed with fault scenarios, plus monitor/mitigation
// config — and a reconcile loop diffs that declaration against the
// fleet's live slot set, admitting missing sessions and evicting
// surplus ones at the fleet's deterministic admission gates.
//
// # Architecture
//
//	PUT /v1/tenants/{id} ──► registry (desired state, generation counter)
//	                              │ change ping
//	                              ▼
//	                        reconciler ──► fleet.Admissions ──► gates
//	                              ▲                               │
//	                              └──── Live()/PendingOps() ◄─────┘
//	fleet sinks ──► fanout (per-tenant streams) ──► GET .../telemetry
//	           └──► alertTable (per-tenant HistSink) ──► GET .../alerts
//
// The server owns one fleet run for its lifetime. The reconciler is
// level-triggered and idempotent: every pass recomputes the full diff
// from the registry and the admission controller's live view, and only
// issues operations when no previously issued batch is still pending,
// so convergence never depends on delivery of any individual change
// event. Capacity is admission-controlled at the API: a PUT whose
// fleet-wide desired total would exceed MaxSessions is rejected with
// 409 before the reconciler ever sees it.
//
// # Determinism
//
// The reconcile core inherits the fleet's determinism contract: diffs
// iterate tenants in sorted order and live slots in slot order, so a
// fixed sequence of registry states yields a fixed sequence of
// admission operations, and the fleet's per-gate protocol makes the
// resulting per-tenant telemetry streams byte-identical at any
// Parallel (see internal/fleet: admission gates). The HTTP edge is
// inherently wall-clock scheduled; the few nondeterministic constructs
// there carry reasoned //fleetvet:nondeterministic waivers.
//
// Telemetry streaming is strictly non-blocking: the fan-out sink
// encodes each event once and offers it to every subscriber's bounded
// buffer, dropping (and counting) for slow consumers so one stalled
// client can never stall the fleet's epoch merges or other tenants'
// streams.
//
//fleetvet:deterministic
package fleetd
