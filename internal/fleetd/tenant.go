package fleetd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/scs"
)

// serverCycleMin is the control-cycle length every fleetd fleet runs at
// (the fleet default); inline tenant programs compile-check against it.
const serverCycleMin = 5

// MonitorCAWOT names the context-aware without-taper monitor, the
// paper's best-performing configuration and the server default.
const MonitorCAWOT = "cawot"

// TenantSpec is a tenant's desired state: every (patient, scenario)
// pair in the cross product runs as one continuously replicating fleet
// session tagged with the tenant's ID.
type TenantSpec struct {
	// Patients are cohort indices on the server's platform.
	Patients []int `json:"patients"`
	// Scenarios are indices into the server's scenario table
	// (GET /v1/status reports its size).
	Scenarios []int `json:"scenarios,omitempty"`
	// Programs are inline scenario programs (the IR of internal/fault)
	// submitted as JSON; each is validated and compile-checked
	// server-side against the fleet's horizon before any session is
	// admitted. A spec may mix table indices and inline programs.
	Programs []fault.Program `json:"programs,omitempty"`
	// Monitor selects the safety monitor: "" or "cawot". The empty
	// string inherits the server default (CAWOT).
	Monitor string `json:"monitor,omitempty"`
	// Mitigate turns alarm-gated mitigation on for the tenant's sessions.
	Mitigate bool `json:"mitigate,omitempty"`
}

// desired returns the number of sessions the spec asks for.
func (s TenantSpec) desired() int {
	return len(s.Patients) * (len(s.Scenarios) + len(s.Programs))
}

// validate checks the spec against the server's platform, scenario
// table, and fleet horizon; errors surface as HTTP 400s.
func (s TenantSpec) validate(numPatients, numScenarios, steps int, cycleMin float64) error {
	if len(s.Patients) == 0 {
		return fmt.Errorf("fleetd: spec declares no patients")
	}
	if len(s.Scenarios) == 0 && len(s.Programs) == 0 {
		return fmt.Errorf("fleetd: spec declares no scenarios or programs")
	}
	for _, p := range s.Patients {
		if p < 0 || p >= numPatients {
			return fmt.Errorf("fleetd: patient index %d outside cohort [0, %d)", p, numPatients)
		}
	}
	for _, sc := range s.Scenarios {
		if sc < 0 || sc >= numScenarios {
			return fmt.Errorf("fleetd: scenario index %d outside the table [0, %d)", sc, numScenarios)
		}
	}
	if steps == 0 {
		steps = 288
	}
	if cycleMin == 0 {
		cycleMin = serverCycleMin
	}
	progSeen := make(map[string]int, len(s.Programs))
	for i, pr := range s.Programs {
		// Compile revalidates the program and proves it executable on the
		// fleet horizon before the spec is accepted.
		if _, err := pr.Compile(steps, cycleMin); err != nil {
			return fmt.Errorf("fleetd: programs[%d]: %w", i, err)
		}
		if j, dup := progSeen[pr.Key()]; dup {
			return fmt.Errorf("fleetd: duplicate program %q at programs[%d] and [%d]", pr.Name, j, i)
		}
		progSeen[pr.Key()] = i
	}
	switch s.Monitor {
	case "", MonitorCAWOT:
	default:
		return fmt.Errorf("fleetd: unknown monitor %q (want %q or empty for the server default)", s.Monitor, MonitorCAWOT)
	}
	seen := make(map[[2]int]bool, s.desired())
	for _, p := range s.Patients {
		for _, sc := range s.Scenarios {
			k := [2]int{p, sc}
			if seen[k] {
				return fmt.Errorf("fleetd: duplicate (patient %d, scenario %d) in the cross product", p, sc)
			}
			seen[k] = true
		}
	}
	return nil
}

// newMonitor maps the spec's monitor name to a fleet per-session
// constructor override; nil inherits the fleet default.
func (s TenantSpec) newMonitor() func(int) (monitor.Monitor, error) {
	if s.Monitor == "" {
		return nil
	}
	return func(int) (monitor.Monitor, error) {
		return monitor.NewCAWOT(scs.TableI(), scs.Params{})
	}
}

// TenantStatus is the wire shape of GET /v1/tenants/{id}: the declared
// spec plus the reconciler's live view of it.
type TenantStatus struct {
	ID   string     `json:"id"`
	Spec TenantSpec `json:"spec"`
	// Desired and Live count sessions; the reconciler converges Live
	// toward Desired at fleet admission gates.
	Desired int `json:"desired"`
	Live    int `json:"live"`
	// Slots are the fleet slot indices currently running for the tenant.
	Slots []int `json:"slots"`
	// StreamDropped counts telemetry events dropped across the tenant's
	// (possibly slow) stream subscribers; the fleet never blocks on them.
	StreamDropped int64 `json:"stream_dropped"`
	// AlertCount is the lifetime number of margin-floor breaches
	// (0 when alerting is disabled server-side).
	AlertCount int64 `json:"alert_count"`
}

// Status is the wire shape of GET /v1/status: the fleet-wide view.
type Status struct {
	Platform    string   `json:"platform"`
	Scenarios   int      `json:"scenarios"`
	MaxSessions int      `json:"max_sessions"`
	Live        int      `json:"live"`
	Tenants     []string `json:"tenants"`
	// Desired is the fleet-wide declared session total across tenants.
	Desired int `json:"desired"`
	// Generation counts applied fleet-shape changes (admissions or
	// evictions that landed at a gate).
	Generation int64 `json:"generation"`
	// Rejected counts admissions the fleet bounced (capacity races or
	// invalid coordinates that slipped past API validation).
	Rejected int64 `json:"rejected"`
	// StreamDropped totals telemetry drops across all subscribers.
	StreamDropped int64 `json:"stream_dropped"`
	// AlertFloor echoes the armed margin floor; null when disabled.
	AlertFloor *float64 `json:"alert_floor,omitempty"`
	// AlertPct echoes the armed adaptive percentile floor; null when
	// disabled.
	AlertPct *float64 `json:"alert_pct,omitempty"`
	Draining bool     `json:"draining"`
}

// tenantIDOK constrains tenant IDs to path- and log-safe names.
func tenantIDOK(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// specSessions expands a tenant's spec into fleet admission specs in
// declaration order (patients outer; table scenarios then inline
// programs inner).
func specSessions(id string, spec TenantSpec) []fleet.AdmitSpec {
	out := make([]fleet.AdmitSpec, 0, spec.desired())
	nm := spec.newMonitor()
	for _, p := range spec.Patients {
		for _, sc := range spec.Scenarios {
			out = append(out, fleet.AdmitSpec{
				Group: id, PatientIdx: p, ScenIdx: sc,
				NewMonitor: nm, Mitigate: spec.Mitigate,
			})
		}
		for i := range spec.Programs {
			pr := spec.Programs[i]
			out = append(out, fleet.AdmitSpec{
				Group: id, PatientIdx: p, ScenIdx: -1, Program: &pr,
				NewMonitor: nm, Mitigate: spec.Mitigate,
			})
		}
	}
	return out
}
