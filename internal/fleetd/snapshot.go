package fleetd

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/snapshot"
)

// stateMarker distinguishes a control-plane snapshot from a bare fleet
// snapshot: both ride the same sealed envelope, so the payload leads
// with this tag and DecodeSnapshot can fail with a precise message when
// handed the wrong artifact.
const stateMarker = "fleetd-state"

// ServerSnapshot is a drained control plane: the tenant registry, the
// fleet snapshot its sessions resume from, and the configuration the
// resuming server must match for the telemetry stream to continue
// byte-identically. Produce one with Server.DrainToSnapshot; feed it
// back through Config.Restore.
type ServerSnapshot struct {
	// Platform is the platform name the drained fleet ran on.
	Platform string
	// Steps, Seed, SinkEpoch, and AdmitEvery pin the fleet parameters
	// that shape the resumed stream; Config.Restore rejects a mismatch
	// loudly instead of resuming a subtly different fleet.
	Steps      int
	Seed       int64
	SinkEpoch  int
	AdmitEvery int
	// Tenants is the registry at drain time: the resuming server seeds
	// its desired state from it, so the reconciler sees a converged
	// fleet and issues no operations on startup.
	Tenants map[string]TenantSpec
	// Fleet is the drained fleet state (every live session at its exact
	// cycle, plus the completion cursor the sink stream resumes from).
	Fleet *fleet.FleetSnapshot
}

// Encode seals the control-plane snapshot into a versioned envelope
// (same format family as fleet snapshots; see internal/snapshot).
func (ss *ServerSnapshot) Encode() []byte {
	enc := snapshot.NewEncoder()
	enc.String(stateMarker)
	enc.String(ss.Platform)
	enc.Int(ss.Steps)
	enc.Varint(ss.Seed)
	enc.Int(ss.SinkEpoch)
	enc.Int(ss.AdmitEvery)

	ids := make([]string, 0, len(ss.Tenants))
	for id := range ss.Tenants { //fleetvet:nondeterministic map keys are sorted before encoding
		ids = append(ids, id)
	}
	sort.Strings(ids)
	enc.Int(len(ids))
	for _, id := range ids {
		spec := ss.Tenants[id]
		enc.String(id)
		enc.Int(len(spec.Patients))
		for _, p := range spec.Patients {
			enc.Int(p)
		}
		enc.Int(len(spec.Scenarios))
		for _, sc := range spec.Scenarios {
			enc.Int(sc)
		}
		enc.Int(len(spec.Programs))
		for _, pr := range spec.Programs {
			enc.String(pr.Key())
		}
		enc.String(spec.Monitor)
		enc.Bool(spec.Mitigate)
	}
	enc.Bytes(ss.Fleet.Encode())
	return snapshot.Seal(enc.Payload())
}

// DecodeSnapshot opens and parses a sealed control-plane snapshot,
// failing loudly on corruption, a format-version mismatch, or a bare
// fleet snapshot handed in by mistake.
func DecodeSnapshot(data []byte) (*ServerSnapshot, error) {
	payload, err := snapshot.Open(data)
	if err != nil {
		return nil, fmt.Errorf("fleetd: snapshot: %w", err)
	}
	dec := snapshot.NewDecoder(payload)
	if marker := dec.String(); dec.Err() == nil && marker != stateMarker {
		return nil, fmt.Errorf("fleetd: snapshot: payload is %q, not a control-plane snapshot (want %q)", marker, stateMarker)
	}
	ss := &ServerSnapshot{
		Platform:   dec.String(),
		Steps:      dec.Int(),
		Seed:       dec.Varint(),
		SinkEpoch:  dec.Int(),
		AdmitEvery: dec.Int(),
		Tenants:    make(map[string]TenantSpec),
	}
	nTenants := dec.Count(1)
	for i := 0; i < nTenants && dec.Err() == nil; i++ {
		id := dec.String()
		var spec TenantSpec
		nP := dec.Count(1)
		for j := 0; j < nP && dec.Err() == nil; j++ {
			spec.Patients = append(spec.Patients, dec.Int())
		}
		nS := dec.Count(1)
		for j := 0; j < nS && dec.Err() == nil; j++ {
			spec.Scenarios = append(spec.Scenarios, dec.Int())
		}
		nPr := dec.Count(1)
		for j := 0; j < nPr && dec.Err() == nil; j++ {
			text := dec.String()
			if dec.Err() != nil {
				break
			}
			pr, err := fault.ParseProgram(text)
			if err != nil {
				dec.Fail(fmt.Sprintf("tenant %q program %d: %v", id, j, err))
				break
			}
			spec.Programs = append(spec.Programs, pr)
		}
		spec.Monitor = dec.String()
		spec.Mitigate = dec.Bool()
		if dec.Err() == nil {
			if !tenantIDOK(id) {
				dec.Fail(fmt.Sprintf("invalid tenant id %q", id))
				break
			}
			ss.Tenants[id] = spec
		}
	}
	fleetBytes := dec.Bytes()
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("fleetd: snapshot: %w", err)
	}
	fs, err := fleet.DecodeFleetSnapshot(fleetBytes)
	if err != nil {
		return nil, fmt.Errorf("fleetd: snapshot: %w", err)
	}
	ss.Fleet = fs
	return ss, nil
}

// validateRestore checks a snapshot against the server configuration it
// is being restored into. Every mismatch is fatal: resuming under a
// different seed, platform, or epoch geometry would not continue the
// drained stream, it would silently start a different one.
func (s *Server) validateRestore(ss *ServerSnapshot) error {
	cfg := s.cfg
	switch {
	case ss.Platform != cfg.Platform.Name:
		return fmt.Errorf("fleetd: restore: snapshot ran platform %q, server is configured for %q", ss.Platform, cfg.Platform.Name)
	case ss.Steps != cfg.Steps:
		return fmt.Errorf("fleetd: restore: snapshot ran Steps %d, server is configured for %d", ss.Steps, cfg.Steps)
	case ss.Seed != cfg.Seed:
		return fmt.Errorf("fleetd: restore: snapshot ran Seed %d, server is configured for %d (the resumed stream requires the same master seed)", ss.Seed, cfg.Seed)
	case ss.SinkEpoch != cfg.SinkEpoch:
		return fmt.Errorf("fleetd: restore: snapshot ran SinkEpoch %d, server is configured for %d", ss.SinkEpoch, cfg.SinkEpoch)
	case ss.AdmitEvery != cfg.AdmitEvery:
		return fmt.Errorf("fleetd: restore: snapshot ran AdmitEvery %d, server is configured for %d", ss.AdmitEvery, cfg.AdmitEvery)
	}
	for id, spec := range ss.Tenants { //fleetvet:nondeterministic validation only; first error wins arbitrarily but deterministically fails
		if err := spec.validate(cfg.Platform.NumPatients, len(cfg.Scenarios), cfg.Steps, serverCycleMin); err != nil {
			return fmt.Errorf("fleetd: restore: tenant %q: %w", id, err)
		}
	}
	for i := range ss.Fleet.Sessions {
		sess := &ss.Fleet.Sessions[i]
		if _, ok := ss.Tenants[sess.Group]; !ok {
			return fmt.Errorf("fleetd: restore: session slot %d belongs to group %q, which is not in the snapshot's registry", sess.Slot, sess.Group)
		}
	}
	return nil
}
