package fleetd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/sim/glucosym"
)

// testPlatform mirrors experiment.Glucosym without importing experiment.
func testPlatform() fleet.Platform {
	return fleet.Platform{
		Name:        "glucosym",
		NumPatients: glucosym.NumPatients,
		NewPatient: func(idx int) (closedloop.Patient, error) {
			return glucosym.New(idx)
		},
		NewBatchPatient: func(lanes int) (sim.BatchPatient, error) {
			return glucosym.NewBatch(lanes)
		},
		NewController: func(basal float64) (control.Controller, error) {
			return control.NewOpenAPS(control.OpenAPSConfig{Basal: basal, ISF: 50})
		},
	}
}

// thinScenarios picks every k-th scenario of the full campaign, in
// program form (the server's native scenario-table type).
func thinScenarios(k int) []fault.Program {
	all := fault.CampaignPrograms(nil)
	var out []fault.Program
	for i := 0; i < len(all); i += k {
		out = append(out, all[i])
	}
	return out
}

// testConfig is a small, fast server: short replicas, tight gates and
// epochs, margin alerting armed.
func testConfig() Config {
	return Config{
		Platform:    testPlatform(),
		Scenarios:   thinScenarios(90),
		MaxSessions: 6,
		Parallel:    2,
		Steps:       3,
		Seed:        7,
		SinkEpoch:   2,
		AdmitEvery:  2,
		AlertFloor:  -0.5,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// request performs one API call with the bearer token attached.
func request(t *testing.T, ts *httptest.Server, token, method, path, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// tenantLive polls the tenant endpoint for its live session count.
func tenantLive(t *testing.T, ts *httptest.Server, token, id string) func() int {
	return func() int {
		code, body := request(t, ts, token, http.MethodGet, "/v1/tenants/"+id, "")
		if code != http.StatusOK {
			return -1
		}
		var st TenantStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st.Live
	}
}

// TestServerEndToEnd drives the full tenant lifecycle over HTTP: auth,
// spec validation, admission, telemetry streaming (JSONL and SSE),
// capacity control, alerts, eviction, and graceful drain.
func TestServerEndToEnd(t *testing.T) {
	const token = "s3cr3t"
	cfg := testConfig()
	cfg.Token = token
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Auth: /v1 requires the bearer token, /healthz never does.
	if code, _ := request(t, ts, "", http.MethodGet, "/v1/status", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status = %d, want 401", code)
	}
	if code, _ := request(t, ts, "wrong", http.MethodGet, "/v1/status", ""); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token status = %d, want 401", code)
	}
	if code, _ := request(t, ts, "", http.MethodGet, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}

	// Contradictory specs become 400s before the fleet ever sees them.
	for _, bad := range []string{
		`{"patients":[],"scenarios":[0]}`,
		`{"patients":[0],"scenarios":[9999]}`,
		`{"patients":[-1],"scenarios":[0]}`,
		`{"patients":[0],"scenarios":[0],"monitor":"crystal-ball"}`,
		`{"patients":[0],"scenarios":[0],"bogus":true}`,
		`not json`,
	} {
		if code, _ := request(t, ts, token, http.MethodPut, "/v1/tenants/acme", bad); code != http.StatusBadRequest {
			t.Fatalf("PUT %s = %d, want 400", bad, code)
		}
	}
	if code, _ := request(t, ts, token, http.MethodPut, "/v1/tenants/bad%20id", `{"patients":[0],"scenarios":[0]}`); code != http.StatusBadRequest {
		t.Fatal("malformed tenant id accepted")
	}

	// Admit a tenant and watch the reconciler converge.
	code, body := request(t, ts, token, http.MethodPut, "/v1/tenants/acme",
		`{"patients":[0,2],"scenarios":[0,1],"mitigate":true}`)
	if code != http.StatusCreated {
		t.Fatalf("PUT acme = %d (%s), want 201", code, body)
	}
	waitFor(t, "acme sessions to admit", func() bool { return tenantLive(t, ts, token, "acme")() == 4 })

	// Capacity: a spec that would push the fleet past MaxSessions is
	// rejected with 409 and leaves the registry untouched.
	if code, _ := request(t, ts, token, http.MethodPut, "/v1/tenants/zen",
		`{"patients":[0,1,2],"scenarios":[0,1,2]}`); code != http.StatusConflict {
		t.Fatalf("over-capacity PUT = %d, want 409", code)
	}
	code, _ = request(t, ts, token, http.MethodPut, "/v1/tenants/zen", `{"patients":[1],"scenarios":[2,3]}`)
	if code != http.StatusCreated {
		t.Fatalf("PUT zen = %d, want 201", code)
	}
	waitFor(t, "zen sessions to admit", func() bool { return tenantLive(t, ts, token, "zen")() == 2 })

	// JSONL telemetry: every line is a well-formed fleet event tagged
	// with the subscribed tenant, never another tenant's.
	lines := streamLines(t, ts, token, "acme", "", 5)
	for _, ln := range lines {
		var ev struct {
			Kind  string `json:"kind"`
			Group string `json:"group"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad telemetry line %q: %v", ln, err)
		}
		if ev.Group != "acme" {
			t.Fatalf("tenant acme received group %q event", ev.Group)
		}
	}
	// SSE framing: the same stream with an event-stream Accept header.
	for _, ln := range streamLines(t, ts, token, "zen", "text/event-stream", 2) {
		if !strings.HasPrefix(ln, "data: {") {
			t.Fatalf("SSE line %q lacks data: framing", ln)
		}
	}

	// Status reflects both tenants.
	code, body = request(t, ts, token, http.MethodGet, "/v1/status", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Live != 6 || st.Desired != 6 || len(st.Tenants) != 2 || st.Tenants[0] != "acme" || st.Tenants[1] != "zen" {
		t.Fatalf("status = %+v, want 6 live across [acme zen]", st)
	}
	if st.AlertFloor == nil || *st.AlertFloor != -0.5 {
		t.Fatalf("status alert floor = %v, want -0.5", st.AlertFloor)
	}

	// Alerts endpoint: armed, and well-formed whether or not a margin
	// has breached yet.
	code, body = request(t, ts, token, http.MethodGet, "/v1/tenants/acme/alerts", "")
	if code != http.StatusOK {
		t.Fatalf("alerts = %d", code)
	}
	var alerts struct {
		Enabled bool    `json:"enabled"`
		Floor   float64 `json:"floor"`
		Count   int64   `json:"count"`
	}
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	if !alerts.Enabled || alerts.Floor != -0.5 {
		t.Fatalf("alerts = %+v, want enabled at floor -0.5", alerts)
	}

	// Shrink acme to one session, then delete it outright.
	if code, _ := request(t, ts, token, http.MethodPut, "/v1/tenants/acme", `{"patients":[0],"scenarios":[0]}`); code != http.StatusOK {
		t.Fatal("shrinking PUT should return 200 for an existing tenant")
	}
	waitFor(t, "acme to shrink", func() bool { return tenantLive(t, ts, token, "acme")() == 1 })
	if code, _ := request(t, ts, token, http.MethodDelete, "/v1/tenants/acme", ""); code != http.StatusNoContent {
		t.Fatal("DELETE acme failed")
	}
	if code, _ := request(t, ts, token, http.MethodDelete, "/v1/tenants/acme", ""); code != http.StatusNotFound {
		t.Fatal("double DELETE should 404")
	}
	waitFor(t, "acme sessions to evict", func() bool {
		code, _ := request(t, ts, token, http.MethodGet, "/v1/tenants/acme", "")
		live := 0
		for _, ls := range srv.adm.Live() {
			if ls.Group == "acme" {
				live++
			}
		}
		return code == http.StatusNotFound && live == 0
	})

	// Drain: fleet stops cleanly, health goes red, streams end.
	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := request(t, ts, token, http.MethodGet, "/healthz", ""); code != http.StatusServiceUnavailable {
		t.Fatal("healthz should report the stopped fleet")
	}
	if code, _ := request(t, ts, token, http.MethodGet, "/v1/tenants/zen/telemetry", ""); code != http.StatusServiceUnavailable {
		t.Fatal("telemetry after drain should 503")
	}
}

// TestServerPercentileAlerts arms only the adaptive percentile floor:
// status and alerts must surface the quantile (and no fixed floor),
// and a tenant's live floor must appear once its own margin
// distribution has enough samples.
func TestServerPercentileAlerts(t *testing.T) {
	if _, err := New(Config{
		Platform: testPlatform(), Scenarios: thinScenarios(90),
		MaxSessions: 2, AlertFloor: math.NaN(), AlertPct: 1.5,
	}); err == nil {
		t.Fatal("AlertPct outside (0,1) should be rejected")
	}

	cfg := testConfig()
	cfg.AlertFloor = math.NaN()
	cfg.AlertPct = 0.25
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/acme",
		`{"patients":[0,2],"scenarios":[0,1]}`); code != http.StatusCreated {
		t.Fatal("PUT acme failed")
	}
	waitFor(t, "acme sessions to admit", func() bool { return tenantLive(t, ts, "", "acme")() == 4 })

	code, body := request(t, ts, "", http.MethodGet, "/v1/status", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.AlertFloor != nil {
		t.Fatalf("fixed floor %v surfaced with only the percentile armed", *st.AlertFloor)
	}
	if st.AlertPct == nil || *st.AlertPct != 0.25 {
		t.Fatalf("status alert pct = %v, want 0.25", st.AlertPct)
	}

	// The adaptive floor goes live once the tenant's histogram holds
	// the default minimum sample count; the continuous fleet gets
	// there on its own.
	var alerts struct {
		Enabled  bool     `json:"enabled"`
		Floor    float64  `json:"floor"`
		Pct      float64  `json:"pct"`
		PctFloor *float64 `json:"pct_floor"`
	}
	waitFor(t, "adaptive floor to go live", func() bool {
		code, body := request(t, ts, "", http.MethodGet, "/v1/tenants/acme/alerts", "")
		if code != http.StatusOK {
			t.Fatalf("alerts = %d", code)
		}
		if err := json.Unmarshal(body, &alerts); err != nil {
			t.Fatal(err)
		}
		return alerts.PctFloor != nil
	})
	if !alerts.Enabled || alerts.Pct != 0.25 || alerts.Floor != 0 {
		t.Fatalf("alerts = %+v, want enabled at pct 0.25 with no fixed floor", alerts)
	}
	if h := srv.alerts.forTenant("acme"); h != nil {
		if floor, live := h.AlertPercentileFloor(); !live || floor != *alerts.PctFloor {
			t.Fatalf("wire floor %v disagrees with sink floor %v (live %v)", *alerts.PctFloor, floor, live)
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// streamLines reads n telemetry lines from a tenant's stream.
func streamLines(t *testing.T, ts *httptest.Server, token, id, accept string, n int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/tenants/"+id+"/telemetry", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry = %d", resp.StatusCode)
	}
	if accept == "" && resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("telemetry content type %q", resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)
	var out []string
	for len(out) < n && sc.Scan() {
		if sc.Text() == "" {
			continue // SSE event separator
		}
		out = append(out, sc.Text())
	}
	if len(out) < n {
		t.Fatalf("stream ended after %d/%d lines: %v", len(out), n, sc.Err())
	}
	return out
}

// TestFanoutBackpressure is the unit-level backpressure contract: with
// one stalled subscriber and one live one, Emit never blocks, the live
// subscriber's stream is byte-identical to the emitted event sequence,
// and the stalled subscriber's losses are counted.
func TestFanoutBackpressure(t *testing.T) {
	f := newFanout()
	stalled := f.subscribe("acme", 2) // tiny buffer, never drained
	live := f.subscribe("acme", 1024)
	other := f.subscribe("zen", 1024)

	var want bytes.Buffer
	const events = 100
	for i := 0; i < events; i++ {
		ev := fleet.Event{Kind: fleet.EventRobustness, Session: i, Group: "acme", Step: i, Margin: -0.25}
		line, err := fleet.EncodeJSON(ev)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(line)
		done := make(chan error, 1)
		go func() { done <- f.Emit(ev) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Emit blocked on a stalled subscriber")
		}
	}

	var got bytes.Buffer
	for len(live.ch) > 0 {
		got.Write(<-live.ch)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("live subscriber's stream is not byte-identical to the emitted sequence")
	}
	if n := f.droppedFor("acme"); n != events-2 {
		t.Errorf("dropped %d for the stalled subscriber, want %d (buffer 2)", n, events-2)
	}
	if len(stalled.ch) != 2 {
		t.Errorf("stalled subscriber buffered %d, want its full buffer of 2", len(stalled.ch))
	}
	if len(other.ch) != 0 {
		t.Error("zen subscriber received acme events")
	}
	if f.droppedTotal() != f.droppedFor("acme") {
		t.Error("fleet-wide drop total disagrees with the per-tenant counter")
	}
}

// TestServerStalledSubscriberSoak is the HTTP-level soak (satellite of
// the telemetry surface): a client that never reads its response soaks
// up its buffers and then loses events, while the fleet keeps stepping
// and a live client keeps receiving. The dead client must never stall
// either.
func TestServerStalledSubscriberSoak(t *testing.T) {
	cfg := testConfig()
	cfg.AlertFloor = math.NaN()
	cfg.StreamBuffer = 4 // drops start as soon as the response path clogs
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/soak", `{"patients":[0,1],"scenarios":[0,1]}`); code != http.StatusCreated {
		t.Fatal("PUT soak failed")
	}
	waitFor(t, "soak sessions to admit", func() bool { return tenantLive(t, ts, "", "soak")() == 4 })

	// The dead client: opens the stream, then never reads a byte.
	deadCtx, killDead := context.WithCancel(context.Background())
	defer killDead()
	deadReq, err := http.NewRequestWithContext(deadCtx, http.MethodGet, ts.URL+"/v1/tenants/soak/telemetry", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadResp, err := ts.Client().Do(deadReq)
	if err != nil {
		t.Fatal(err)
	}
	defer deadResp.Body.Close()

	// The fleet must keep advancing and dropping for the dead client...
	waitFor(t, "drops on the stalled stream", func() bool { return srv.fan.droppedFor("soak") > 0 })
	genBefore := srv.adm.Gen()
	_ = genBefore // the fleet's generation only moves on shape changes; steps prove liveness below

	// ...while a live client still receives well-formed tenant events.
	for _, ln := range streamLines(t, ts, "", "soak", "", 10) {
		var ev struct {
			Group string `json:"group"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad line on the live stream during soak: %v", err)
		}
		if ev.Group != "soak" {
			t.Fatalf("live stream crossed tenants: %q", ev.Group)
		}
	}
	if srv.fan.droppedFor("soak") == 0 {
		t.Fatal("stalled subscriber lost nothing — backpressure accounting is vacuous")
	}

	// The drop counter is visible on the tenant's status surface.
	code, body := request(t, ts, "", http.MethodGet, "/v1/tenants/soak", "")
	if code != http.StatusOK {
		t.Fatal("GET soak failed")
	}
	var st TenantStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.StreamDropped == 0 {
		t.Fatal("tenant status hides the stream drops")
	}
}

// TestTenantSpecValidate pins spec validation shapes.
func TestTenantSpecValidate(t *testing.T) {
	meal := fault.Program{Name: "lunch", Segments: []fault.Segment{
		{Kind: fault.SegMeal, Value: 45, Start: 5, Duration: 6},
	}}
	cases := []struct {
		name string
		spec TenantSpec
		ok   bool
	}{
		{"valid", TenantSpec{Patients: []int{0, 1}, Scenarios: []int{0}}, true},
		{"valid cawot", TenantSpec{Patients: []int{0}, Scenarios: []int{0}, Monitor: MonitorCAWOT}, true},
		{"no patients", TenantSpec{Scenarios: []int{0}}, false},
		{"no scenarios", TenantSpec{Patients: []int{0}}, false},
		{"patient out of cohort", TenantSpec{Patients: []int{99}, Scenarios: []int{0}}, false},
		{"negative scenario", TenantSpec{Patients: []int{0}, Scenarios: []int{-1}}, false},
		{"unknown monitor", TenantSpec{Patients: []int{0}, Scenarios: []int{0}, Monitor: "oracle"}, false},
		{"duplicate pair", TenantSpec{Patients: []int{0, 0}, Scenarios: []int{1}}, false},
		{"valid inline program", TenantSpec{Patients: []int{0}, Programs: []fault.Program{meal}}, true},
		{"mixed table and program", TenantSpec{Patients: []int{0}, Scenarios: []int{0}, Programs: []fault.Program{meal}}, true},
		{"invalid program", TenantSpec{Patients: []int{0}, Programs: []fault.Program{
			{Segments: []fault.Segment{{Kind: fault.SegMeal, Value: -1, Start: 0, Duration: 3}}},
		}}, false},
		{"duplicate program", TenantSpec{Patients: []int{0}, Programs: []fault.Program{meal, meal}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.validate(20, 10, 60, serverCycleMin); (err == nil) != tc.ok {
				t.Errorf("validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	for _, id := range []string{"acme", "a.b-c_9", strings.Repeat("x", 64)} {
		if !tenantIDOK(id) {
			t.Errorf("id %q rejected", id)
		}
	}
	for _, id := range []string{"", "a b", "a/b", strings.Repeat("x", 65), "ümlaut"} {
		if tenantIDOK(id) {
			t.Errorf("id %q accepted", id)
		}
	}
}

// TestServerRejectsBadConfig pins constructor-time validation: the
// assembled fleet config is validated before anything starts.
func TestServerRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 0
	if _, err := New(cfg); err == nil {
		t.Error("MaxSessions 0 accepted")
	}
	cfg = testConfig()
	cfg.Scenarios = nil
	if _, err := New(cfg); err == nil {
		t.Error("empty scenario table accepted")
	}
	cfg = testConfig()
	cfg.SinkEpoch = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative SinkEpoch accepted")
	}
}
